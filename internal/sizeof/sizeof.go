// Package sizeof reproduces the §4.1 object-size study (Table 1): the cost
// of learning an object's serialized size by (a) actually serializing it,
// (b) walking it reflectively computing sizes only, and (c) calling a
// compiler-generated "size self-describing" method (Appendix B). In this
// reproduction, encoding/gob plays Java serialization, package reflect
// plays reflection-based size calculation, and hand-written SizeOf methods
// play the compiler-generated self-describing methods.
package sizeof

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
)

// Header-size constants mirroring the paper's ObjectSize.* constants
// (Appendix B).
const (
	// ObjectHeaderSize is the per-object overhead in size accounting.
	ObjectHeaderSize = 16
	// StringHeaderSize is the per-string overhead.
	StringHeaderSize = 4
	// SliceHeaderSize is the per-array overhead.
	SliceHeaderSize = 4
)

// SelfSized is implemented by objects that carry a generated size method —
// the paper's SelfSizedObject interface.
type SelfSized interface {
	// SizeOf returns the object's serialized size in bytes.
	SizeOf() int
}

// SerializedSize gob-encodes v and returns the encoded length — the
// "actually serialize it" baseline.
func SerializedSize(v any) (int, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0, fmt.Errorf("sizeof: gob: %w", err)
	}
	return buf.Len(), nil
}

// ReflectSize walks v reflectively, accumulating the size its fields would
// serialize to, without producing any bytes. Shared pointers are counted
// once. This is the paper's "size calculation" column.
func ReflectSize(v any) int {
	seen := make(map[uintptr]bool)
	return reflectSize(reflect.ValueOf(v), seen)
}

func reflectSize(rv reflect.Value, seen map[uintptr]bool) int {
	switch rv.Kind() {
	case reflect.Invalid:
		return 0
	case reflect.Bool, reflect.Int8, reflect.Uint8:
		return 1
	case reflect.Int16, reflect.Uint16:
		return 2
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return 4
	case reflect.Int, reflect.Int64, reflect.Uint, reflect.Uint64, reflect.Float64:
		return 8
	case reflect.String:
		return StringHeaderSize + rv.Len()
	case reflect.Slice:
		if rv.IsNil() {
			return SliceHeaderSize
		}
		if rv.Len() > 0 {
			p := rv.Pointer()
			if seen[p] {
				return SliceHeaderSize
			}
			seen[p] = true
		}
		total := SliceHeaderSize
		// Fast path for primitive element types: O(1).
		switch rv.Type().Elem().Kind() {
		case reflect.Bool, reflect.Int8, reflect.Uint8:
			return total + rv.Len()
		case reflect.Int16, reflect.Uint16:
			return total + 2*rv.Len()
		case reflect.Int32, reflect.Uint32, reflect.Float32:
			return total + 4*rv.Len()
		case reflect.Int, reflect.Int64, reflect.Uint, reflect.Uint64, reflect.Float64:
			return total + 8*rv.Len()
		}
		for i := 0; i < rv.Len(); i++ {
			total += reflectSize(rv.Index(i), seen)
		}
		return total
	case reflect.Array:
		total := 0
		for i := 0; i < rv.Len(); i++ {
			total += reflectSize(rv.Index(i), seen)
		}
		return total
	case reflect.Ptr, reflect.Interface:
		if rv.IsNil() {
			return 1
		}
		if rv.Kind() == reflect.Ptr {
			p := rv.Pointer()
			if seen[p] {
				return 1
			}
			seen[p] = true
		}
		return reflectSize(rv.Elem(), seen)
	case reflect.Struct:
		total := ObjectHeaderSize
		for i := 0; i < rv.NumField(); i++ {
			total += reflectSize(rv.Field(i), seen)
		}
		return total
	case reflect.Map:
		total := ObjectHeaderSize
		iter := rv.MapRange()
		for iter.Next() {
			total += reflectSize(iter.Key(), seen)
			total += reflectSize(iter.Value(), seen)
		}
		return total
	default:
		return 0
	}
}

// SelfSize dispatches to the object's generated size method, falling back
// to ReflectSize for objects without one (the paper's JECho.getSize).
func SelfSize(v any) int {
	if s, ok := v.(SelfSized); ok {
		return s.SizeOf()
	}
	return ReflectSize(v)
}
