package wire

import (
	"testing"
	"testing/quick"

	"methodpart/internal/mir"
)

// TestUnmarshalNeverPanicsOnTruncation: every proper prefix of a valid
// message must fail cleanly (no panic, no bogus success with trailing
// semantics).
func TestUnmarshalNeverPanicsOnTruncation(t *testing.T) {
	ev := mir.NewObject("ImageData")
	ev.Fields["buff"] = make(mir.Bytes, 100)
	ev.Fields["width"] = mir.Int(10)
	msgs := []any{
		&Raw{Handler: "h", Seq: 1, Event: ev},
		&Continuation{Handler: "h", Seq: 2, PSEID: 1, ResumeNode: 3,
			Vars: map[string]mir.Value{"a": ev, "b": mir.Int(1)}},
		&Feedback{Handler: "h", Stats: []PSEStat{{ID: 1, Count: 5, Bytes: 10, Failures: 2}}},
		&Plan{Handler: "h", Version: 1, Split: []int32{1}, Profile: []int32{0, 1}},
		&Subscribe{Subscriber: "s", Handler: "h", Source: "src", CostModel: "datasize", Natives: []string{"n"}},
		&Nack{Handler: "h", Seq: 3, PSEID: 2, Class: NackRestore},
	}
	for _, m := range msgs {
		data, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(data); cut++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%T truncated at %d panicked: %v", m, cut, r)
					}
				}()
				_, _ = Unmarshal(data[:cut])
			}()
		}
	}
}

// TestUnmarshalNeverPanicsOnMutation: single-byte corruptions either decode
// to something or error — never panic, never allocate absurd amounts.
func TestUnmarshalNeverPanicsOnMutation(t *testing.T) {
	cont := &Continuation{Handler: "push", Seq: 9, PSEID: 2, ResumeNode: 5,
		Vars: map[string]mir.Value{"x": mir.IntArray{1, 2, 3}, "s": mir.Str("hello")}}
	data, err := Marshal(cont)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint16, val byte) bool {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[int(pos)%len(mut)] ^= val | 1
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("mutation at %d panicked: %v", int(pos)%len(mut), r)
			}
		}()
		_, _ = Unmarshal(mut)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestDecoderLengthGuards: absurd length prefixes must be rejected before
// allocation.
func TestDecoderLengthGuards(t *testing.T) {
	// tagStr with length 0xffffffff and no payload.
	d := NewDecoder([]byte{tagStr, 0xff, 0xff, 0xff, 0xff})
	if _, err := d.DecodeValue(); err == nil {
		t.Error("oversized string accepted")
	}
	d = NewDecoder([]byte{tagIntArray, 0xff, 0xff, 0xff, 0x7f})
	if _, err := d.DecodeValue(); err == nil {
		t.Error("oversized int array accepted")
	}
	d = NewDecoder([]byte{tagBytes, 0xff, 0xff, 0x00, 0x00, 1, 2})
	if _, err := d.DecodeValue(); err == nil {
		t.Error("oversized bytes accepted")
	}
}
