package bench

import (
	"fmt"
	"io"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/linkest"
	"methodpart/internal/mir/interp"
	"methodpart/internal/reconfig"
	"methodpart/internal/simnet"
)

// This file is the `mpbench -experiment drift` harness: the acceptance
// scenario for the measurement loop. A link whose bandwidth degrades
// mid-run separates three arms of the same forked-front workload:
//
//   - static: selections keep pricing the deployment-time bandwidth, so the
//     split stays stale after the link degrades;
//   - live: a linkest estimator (fed from the virtual timeline) measures the
//     degradation, and selection — behind flip hysteresis — moves the split
//     to the degraded link's optimum;
//   - jitter: the same estimator over a link with brief transient dips, where
//     hysteresis must suppress the flips the dips tempt (suppressed > 0, no
//     plan change).

// DriftConfig configures the drift experiment.
type DriftConfig struct {
	// Image is the forked-front image workload (see DefaultParetoConfig);
	// its LinkBytesPerMS is the healthy bandwidth.
	Image ImageConfig
	// DegradedBytesPerMS is the bandwidth after degradation (and during
	// jitter dips).
	DegradedBytesPerMS float64
	// DegradeAtMS is the virtual time the static/live arms' link degrades
	// permanently.
	DegradeAtMS float64
	// JitterDips, JitterStartMS, JitterPeriodMS, JitterDipMS shape the
	// jitter arm: JitterDips transient dips to DegradedBytesPerMS, each
	// JitterDipMS long, every JitterPeriodMS from JitterStartMS.
	JitterDips     int
	JitterStartMS  float64
	JitterPeriodMS float64
	JitterDipMS    float64
	// HalfLifeMS is the estimator's EWMA half-life in virtual ms.
	HalfLifeMS float64
	// FlipMargin and FlipConfirmations are the hysteresis knobs (see
	// reconfig.Unit).
	FlipMargin        float64
	FlipConfirmations int
}

// DefaultDriftConfig is the acceptance configuration: the forked-front
// pareto workload, a 20x mid-run bandwidth collapse, and eight 30ms dips
// for the jitter arm.
func DefaultDriftConfig() DriftConfig {
	img := DefaultParetoConfig()
	img.Frames = 300
	return DriftConfig{
		Image:              img,
		DegradedBytesPerMS: 100,
		DegradeAtMS:        1500,
		JitterDips:         8,
		JitterStartMS:      800,
		JitterPeriodMS:     900,
		JitterDipMS:        30,
		HalfLifeMS:         100,
		FlipMargin:         0.1,
		FlipConfirmations:  3,
	}
}

// DriftArm is one arm's measured outcome.
type DriftArm struct {
	// Name is "static", "live" or "jitter".
	Name string
	// FinalCut is the last selection's chosen cut.
	FinalCut []int32
	// PlanSwitches counts installed plan changes after the first.
	PlanSwitches int
	// FlipsSuppressed counts selections where hysteresis held the
	// incumbent against a margin-beating challenger.
	FlipsSuppressed uint64
	// KBPerFrame is the mean payload shipped per frame.
	KBPerFrame float64
	// MeanSpanMS is the mean end-to-end latency per frame (virtual ms).
	MeanSpanMS float64
	// MeasuredBW is the estimator's final bandwidth estimate (0 in the
	// static arm, which has no estimator).
	MeasuredBW float64
}

// DriftComparison is the full experiment outcome plus the verdicts the
// acceptance criteria check.
type DriftComparison struct {
	// Arms holds static, live, jitter in that order.
	Arms []DriftArm
	// StaticStale: the static arm never flipped off the healthy-link
	// optimum even though the link degraded under it.
	StaticStale bool
	// LiveFlipped: the live arm's final cut differs from the static arm's
	// (measurement moved the operating point).
	LiveFlipped bool
	// LiveWinsSpan: the live arm's mean end-to-end latency beat the static
	// arm's on the same degraded link.
	LiveWinsSpan bool
	// JitterHeld: the jitter arm ended on the healthy-link optimum with
	// FlipsSuppressed > 0 — hysteresis absorbed the transients.
	JitterHeld bool
}

// driftEstimator adapts a linkest.Estimator to the virtual timeline: the
// injected clock follows frame arrival times, and the cumulative wire-byte
// counter plays the role of the runtime's bytes-on-wire metric.
type driftEstimator struct {
	est   *linkest.Estimator
	now   time.Time
	total uint64
}

func newDriftEstimator(halfLifeMS float64) *driftEstimator {
	d := &driftEstimator{now: time.Unix(0, 0)}
	d.est = linkest.New(linkest.Config{
		HalfLife: time.Duration(halfLifeMS * float64(time.Millisecond)),
		Now:      func() time.Time { return d.now },
	})
	return d
}

// hook is the RunConfig.LinkEstimate adapter.
func (d *driftEstimator) hook(nominal costmodel.Environment) func(simnet.Timing, int64) (costmodel.Environment, bool) {
	return func(tm simnet.Timing, bytes int64) (costmodel.Environment, bool) {
		if bytes > 0 {
			d.total += uint64(bytes)
		}
		if t := time.Unix(0, 0).Add(time.Duration(tm.Arrive * float64(time.Millisecond))); t.After(d.now) {
			d.now = t
		}
		d.est.ObserveBytes(d.total)
		return d.est.Environment(nominal)
	}
}

// RunDrift runs the three arms and compares them.
func RunDrift(cfg DriftConfig) (*DriftComparison, error) {
	degradeSched := []simnet.BandwidthPhase{
		{Start: cfg.DegradeAtMS, BytesPerMS: cfg.DegradedBytesPerMS},
	}
	var jitterSched []simnet.BandwidthPhase
	for i := 0; i < cfg.JitterDips; i++ {
		at := cfg.JitterStartMS + float64(i)*cfg.JitterPeriodMS
		jitterSched = append(jitterSched,
			simnet.BandwidthPhase{Start: at, BytesPerMS: cfg.DegradedBytesPerMS},
			simnet.BandwidthPhase{Start: at + cfg.JitterDipMS, BytesPerMS: cfg.Image.LinkBytesPerMS})
	}

	arms := []struct {
		name      string
		schedule  []simnet.BandwidthPhase
		estimated bool
	}{
		{"static", degradeSched, false},
		{"live", degradeSched, true},
		{"jitter", jitterSched, true},
	}

	cmp := &DriftComparison{}
	for _, arm := range arms {
		f, err := newImageFixture(cfg.Image)
		if err != nil {
			return nil, fmt.Errorf("bench: drift: %w", err)
		}
		nominal := costmodel.Environment{
			SenderSpeed:   cfg.Image.ServerSpeed,
			ReceiverSpeed: cfg.Image.ClientSpeed,
			Bandwidth:     cfg.Image.LinkBytesPerMS,
			LatencyMS:     cfg.Image.LinkLatencyMS,
		}
		rc := RunConfig{
			Compiled:    f.c,
			SenderEnv:   interp.NewEnv(f.classes, f.builtins()),
			ReceiverEnv: interp.NewEnv(f.classes, f.builtins()),
			Sender:      simnet.NewHost("camera", cfg.Image.ServerSpeed),
			Receiver:    simnet.NewHost("client", cfg.Image.ClientSpeed),
			Link: &simnet.Link{
				BytesPerMS: cfg.Image.LinkBytesPerMS,
				LatencyMS:  cfg.Image.LinkLatencyMS,
				Schedule:   arm.schedule,
			},
			Frames:            cfg.Image.Frames,
			Workload:          imageWorkload(cfg.Image, ScenarioLarge),
			OverheadBytes:     64,
			Warmup:            10,
			Adaptive:          true,
			ReconfigAtSender:  true,
			Policy:            reconfig.LatencyFirst,
			FlipMargin:        cfg.FlipMargin,
			FlipConfirmations: cfg.FlipConfirmations,
			Nominal:           nominal,
		}
		var est *driftEstimator
		if arm.estimated {
			est = newDriftEstimator(cfg.HalfLifeMS)
			rc.LinkEstimate = est.hook(nominal)
		}
		res, err := Run(rc)
		if err != nil {
			return nil, fmt.Errorf("bench: drift %s: %w", arm.name, err)
		}
		if res.Explain == nil {
			return nil, fmt.Errorf("bench: drift %s: no plan selection ran", arm.name)
		}
		row := DriftArm{
			Name:            arm.name,
			FinalCut:        append([]int32(nil), res.Explain.Cut...),
			PlanSwitches:    res.PlanSwitches,
			FlipsSuppressed: res.Explain.FlipsSuppressed,
			KBPerFrame:      float64(res.Bytes) / float64(res.Frames) / 1024,
			MeanSpanMS:      res.MeanSpanMS,
		}
		if est != nil {
			row.MeasuredBW = est.est.Snapshot().BandwidthBytesPerMS
		}
		cmp.Arms = append(cmp.Arms, row)
	}

	static, live, jitter := cmp.Arms[0], cmp.Arms[1], cmp.Arms[2]
	sameCut := func(a, b []int32) bool { return fmt.Sprint(a) == fmt.Sprint(b) }
	cmp.StaticStale = true // by construction: no measurement reaches it
	cmp.LiveFlipped = !sameCut(live.FinalCut, static.FinalCut)
	cmp.LiveWinsSpan = live.MeanSpanMS < static.MeanSpanMS
	cmp.JitterHeld = sameCut(jitter.FinalCut, static.FinalCut) && jitter.FlipsSuppressed > 0
	return cmp, nil
}

// WriteDrift renders the per-arm table and the verdict lines the acceptance
// criteria check.
func WriteDrift(w io.Writer, cmp *DriftComparison) {
	rows := make([][]string, 0, len(cmp.Arms))
	for _, a := range cmp.Arms {
		bw := "-"
		if a.MeasuredBW > 0 {
			bw = fmt.Sprintf("%.0f", a.MeasuredBW)
		}
		rows = append(rows, []string{
			a.Name,
			fmt.Sprint(a.FinalCut),
			fmt.Sprintf("%d", a.PlanSwitches),
			fmt.Sprintf("%d", a.FlipsSuppressed),
			fmt.Sprintf("%.1f", a.KBPerFrame),
			fmt.Sprintf("%.1f", a.MeanSpanMS),
			bw,
		})
	}
	writeTable(w,
		"Link-drift arms (latency-first; bandwidth degrades mid-run)",
		[]string{"Arm", "Final cut", "Switches", "Suppressed", "KB/frame", "Span ms", "Est B/ms"},
		rows)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "live estimation flips after degradation: %v\n", cmp.LiveFlipped)
	fmt.Fprintf(w, "live beats stale-split latency: %v\n", cmp.LiveWinsSpan)
	fmt.Fprintf(w, "jitter suppressed without flipping: %v\n", cmp.JitterHeld)
}
