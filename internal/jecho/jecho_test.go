package jecho_test

import (
	"sync"
	"testing"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/mir"
	"methodpart/internal/partition"
)

// startPair brings up a publisher and an image-handler subscription over
// localhost TCP, returning them plus the receiver display.
func startPair(t *testing.T) (*jecho.Publisher, *jecho.Subscriber, *imaging.Display, *results) {
	t.Helper()
	pubReg, _ := imaging.Builtins()
	pub, err := jecho.NewPublisher(jecho.PublisherConfig{
		Addr:          "127.0.0.1:0",
		Builtins:      pubReg,
		FeedbackEvery: 2,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub.Close() })

	subReg, disp := imaging.Builtins()
	res := &results{}
	sub, err := jecho.Subscribe(jecho.SubscriberConfig{
		Addr:          pub.Addr(),
		Name:          "client",
		Source:        imaging.HandlerSource(160),
		Handler:       imaging.HandlerName,
		CostModel:     costmodel.DataSizeName,
		Natives:       []string{"displayImage"},
		Builtins:      subReg,
		Environment:   costmodel.DefaultEnvironment(),
		OnResult:      res.add,
		ReconfigEvery: 2,
		DiffThreshold: 0.1,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sub.Close() })

	// Wait for the publisher to register the subscription.
	deadline := time.Now().Add(5 * time.Second)
	for pub.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	return pub, sub, disp, res
}

type results struct {
	mu   sync.Mutex
	got  []*partition.Result
	pses []int32
}

func (r *results) add(res *partition.Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.got = append(r.got, res)
	r.pses = append(r.pses, res.SplitPSE)
}

func (r *results) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got)
}

func (r *results) splitPSEs() []int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int32, len(r.pses))
	copy(out, r.pses)
	return out
}

func waitCount(t *testing.T, r *results, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d of %d results", r.count(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEndToEndDelivery publishes frames over real TCP and checks they reach
// the native display resized.
func TestEndToEndDelivery(t *testing.T) {
	pub, _, disp, res := startPair(t)

	const frames = 10
	for i := 0; i < frames; i++ {
		n, err := pub.Publish(imaging.NewFrame(80, 80, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("reached %d subscribers", n)
		}
	}
	waitCount(t, res, frames)
	if len(disp.Frames) != frames {
		t.Fatalf("displayed %d frames, want %d", len(disp.Frames), frames)
	}
	for _, f := range disp.Frames {
		if f.Fields["width"] != mir.Int(160) || f.Fields["height"] != mir.Int(160) {
			t.Fatalf("frame not resized to display: %vx%v", f.Fields["width"], f.Fields["height"])
		}
	}
}

// TestAdaptationOverTCP drives the full closed loop: small frames first
// (optimal: ship original), then large frames (optimal: resize at sender);
// the split point must move.
func TestAdaptationOverTCP(t *testing.T) {
	pub, _, _, res := startPair(t)

	publish := func(size, n int, from int) {
		for i := 0; i < n; i++ {
			if _, err := pub.Publish(imaging.NewFrame(size, size, int64(from+i))); err != nil {
				t.Fatal(err)
			}
			// Small pacing gap lets plans propagate like a real stream.
			time.Sleep(2 * time.Millisecond)
		}
	}
	publish(80, 25, 0)
	waitCount(t, res, 25)
	publish(220, 25, 25)
	waitCount(t, res, 50)

	pses := res.splitPSEs()
	// Steady state of phase 1 (frames 15-24): the split must ship the
	// original (raw PSE or pre-resize cut): the resume node lies at or
	// before the resize call. Steady state of phase 2 (frames 40-49):
	// the split must be after the resize.
	countLate := func(lo, hi int, after bool) int {
		n := 0
		for _, pse := range pses[lo:hi] {
			if pse == partition.RawPSEID {
				if !after {
					n++
				}
				continue
			}
			if after == (pse >= 3) { // post-resize PSE has the highest id
				n++
			}
		}
		return n
	}
	if got := countLate(15, 25, false); got < 8 {
		t.Errorf("phase 1 steady state: only %d/10 messages shipped pre-resize (pses=%v)", got, pses)
	}
	if got := countLate(40, 50, true); got < 8 {
		t.Errorf("phase 2 steady state: only %d/10 messages split post-resize (pses=%v)", got, pses)
	}
}

// TestNonImageEventsFiltered checks sender-side filtering over TCP: events
// of the wrong type must not reach the subscriber once the plan includes
// the filter-path PSE.
func TestNonImageEventsFiltered(t *testing.T) {
	pub, _, disp, res := startPair(t)

	// Converge onto a modulated plan first.
	for i := 0; i < 10; i++ {
		if _, err := pub.Publish(imaging.NewFrame(80, 80, int64(i))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitCount(t, res, 10)
	before := res.count()
	for i := 0; i < 5; i++ {
		if _, err := pub.Publish(mir.Str("junk")); err != nil {
			t.Fatal(err)
		}
	}
	// One more image flushes the stream so we can wait deterministically.
	if _, err := pub.Publish(imaging.NewFrame(80, 80, 99)); err != nil {
		t.Fatal(err)
	}
	waitCount(t, res, before+1)
	if got := len(disp.Frames); got != before+1 {
		t.Fatalf("displayed %d, want %d (junk must not display)", got, before+1)
	}
}
