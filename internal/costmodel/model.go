// Package costmodel implements the paper's cost models (§4): the interface
// through which static analysis estimates edge costs and through which the
// runtime reconfiguration unit converts profiled PSE statistics into the
// capacities of the min-cut plan selection.
package costmodel

import (
	"fmt"
	"math"

	"methodpart/internal/analysis"
	"methodpart/internal/mir"
)

// Environment describes the resources of one sender/receiver pair, as known
// at deployment time or refined by runtime profiling.
type Environment struct {
	// SenderSpeed is the sender's processing rate in work units per
	// millisecond.
	SenderSpeed float64
	// ReceiverSpeed is the receiver's processing rate in work units per
	// millisecond.
	ReceiverSpeed float64
	// Bandwidth is the link bandwidth in bytes per millisecond.
	Bandwidth float64
	// LatencyMS is the one-way link latency in milliseconds (the α of
	// eq. 1, per message set-up time).
	LatencyMS float64
}

// DefaultEnvironment returns a neutral environment (equal speeds, fast
// link) for when deployment provides nothing better.
func DefaultEnvironment() Environment {
	return Environment{
		SenderSpeed:   1000,
		ReceiverSpeed: 1000,
		Bandwidth:     1000,
		LatencyMS:     1,
	}
}

// Sanitize replaces degenerate fields with their DefaultEnvironment
// values, returning a pricing-safe copy. A zero or negative speed or
// bandwidth would make every division in the latency term degenerate:
// safeDiv maps them to 0, which prices transfer (or work) as FREE and
// silently inverts Pareto dominance; a NaN field poisons every dominance
// comparison outright (NaN compares false both ways, so nothing dominates
// anything). Such values are reachable from an early or degenerate
// runtime measurement, so every path that installs an Environment into a
// reconfiguration unit passes through here.
func (e Environment) Sanitize() Environment {
	def := DefaultEnvironment()
	fix := func(v, fallback float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fallback
		}
		return v
	}
	e.SenderSpeed = fix(e.SenderSpeed, def.SenderSpeed)
	e.ReceiverSpeed = fix(e.ReceiverSpeed, def.ReceiverSpeed)
	e.Bandwidth = fix(e.Bandwidth, def.Bandwidth)
	// Zero latency is a legitimate value (in-process links); only NaN,
	// infinities and negatives are degenerate.
	if math.IsNaN(e.LatencyMS) || math.IsInf(e.LatencyMS, 0) || e.LatencyMS < 0 {
		e.LatencyMS = def.LatencyMS
	}
	return e
}

// Stat is the profiled runtime statistics of one PSE, aggregated by the
// Runtime Profiling Unit (§2.5).
type Stat struct {
	// Count is the number of messages whose path crossed this PSE.
	Count uint64
	// Bytes is the mean continuation size (bytes) if split at this PSE.
	Bytes float64
	// ModWork is the mean modulator-side work (work units) accumulated
	// when execution reaches this PSE.
	ModWork float64
	// DemodWork is the mean work remaining after this PSE.
	DemodWork float64
	// Prob is the probability that a message's path crosses this PSE.
	Prob float64
	// Failures counts modulation/demodulation faults attributed to this
	// PSE. Cost models ignore it; the reconfiguration unit uses it (with
	// its circuit breaker) to steer the min-cut away from broken edges.
	Failures uint64
}

// Model is a cost model: it drives both the static PSE identification and
// the runtime plan re-selection. Different sender/receiver pairs may choose
// different models (§2.2).
type Model interface {
	// Name identifies the model on the wire (Subscribe messages).
	Name() string
	// StaticCost returns the edge-cost estimator used by ConvexCut for
	// the given handler.
	StaticCost(prog *mir.Program, classes *mir.ClassTable, live *analysis.Liveness) analysis.CostFunc
	// Capacity converts a PSE's profiled statistics into the min-cut
	// capacity used at reconfiguration time. Larger means more expensive
	// to cut there. The unit is model-specific but must be consistent
	// across PSEs of one handler.
	Capacity(stat Stat, env Environment) int64
	// StaticCapacity estimates a capacity before any profile exists,
	// from the static cost descriptor, for the initial plan.
	StaticCapacity(c analysis.CostDesc) int64
}

// registry of models addressable by wire name.
var builtinModels = map[string]func() Model{
	DataSizeName: func() Model { return NewDataSize() },
	ExecTimeName: func() Model { return NewExecTime() },
	EnergyName:   func() Model { return NewEnergy() },
}

// ByName instantiates a built-in model from its wire name.
// Composite models are not wire-addressable.
func ByName(name string) (Model, error) {
	f, ok := builtinModels[name]
	if !ok {
		return nil, fmt.Errorf("costmodel: unknown model %q", name)
	}
	return f(), nil
}
