package partition_test

import (
	"fmt"
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/testprog"
	"methodpart/internal/wire"
)

// runWhole executes a program unsplit and returns (sink values, return).
func runWhole(t *testing.T, prog *mir.Program, event mir.Value) ([]mir.Value, mir.Value) {
	t.Helper()
	reg, sunk := testprog.SinkRegistry()
	env := interp.NewEnv(nil, reg)
	m, err := interp.NewMachine(env, prog, []mir.Value{event})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Done {
		t.Fatal("whole run did not complete")
	}
	return *sunk, out.Return
}

// completeSplitSet grows {id} into a valid cut by adding further PSEs.
func completeSplitSet(c *partition.Compiled, id int32) []int32 {
	split := []int32{id}
	if c.ValidateSplitSet(split) == nil {
		return split
	}
	for other := int32(1); other < int32(c.NumPSEs()); other++ {
		if other == id {
			continue
		}
		split = append(split, other)
		if c.ValidateSplitSet(split) == nil {
			return split
		}
	}
	return nil
}

// TestRandomProgramsSplitEquivalence is the core correctness property: for
// pseudo-random handlers and every individually completable PSE plan, the
// modulator → wire → demodulator path produces exactly the effects and
// return value of the unsplit handler.
func TestRandomProgramsSplitEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := testprog.RandomProgram(seed)
			oracleReg, _ := testprog.SinkRegistry()
			c, err := partition.Compile(prog, nil, oracleReg, costmodel.NewDataSize())
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, prog)
			}
			event := mir.Int(seed * 31)
			wantSunk, wantRet := runWhole(t, prog, event)

			for id := int32(0); id < int32(c.NumPSEs()); id++ {
				split := completeSplitSet(c, id)
				if split == nil {
					continue
				}
				plan, err := partition.NewPlan(c.NumPSEs(), 1, split, nil)
				if err != nil {
					t.Fatal(err)
				}
				sendReg, _ := testprog.SinkRegistry()
				recvReg, recvSunk := testprog.SinkRegistry()
				mod := partition.NewModulator(c, interp.NewEnv(nil, sendReg))
				mod.SetPlan(plan)
				demod := partition.NewDemodulator(c, interp.NewEnv(nil, recvReg))

				out, err := mod.Process(event)
				if err != nil {
					t.Fatalf("plan %v: modulate: %v\n%s", split, err, prog)
				}
				if out.Suppressed {
					t.Fatalf("plan %v: random program suppressed (sink path cannot be trivial)", split)
				}
				var msg any
				if out.Raw != nil {
					msg = out.Raw
				} else {
					data, err := wire.Marshal(out.Cont)
					if err != nil {
						t.Fatal(err)
					}
					msg, err = wire.Unmarshal(data)
					if err != nil {
						t.Fatal(err)
					}
				}
				res, err := demod.Process(msg)
				if err != nil {
					t.Fatalf("plan %v: demodulate: %v\n%s", split, err, prog)
				}
				if !mir.Equal(res.Return, wantRet) {
					t.Errorf("plan %v: return %v, want %v\n%s", split, res.Return, wantRet, prog)
				}
				if len(*recvSunk) != len(wantSunk) {
					t.Fatalf("plan %v: sunk %d values, want %d", split, len(*recvSunk), len(wantSunk))
				}
				for i := range wantSunk {
					if !mir.Equal((*recvSunk)[i], wantSunk[i]) {
						t.Errorf("plan %v: sink[%d] = %v, want %v", split, i, (*recvSunk)[i], wantSunk[i])
					}
				}
			}
		})
	}
}

// TestRandomProgramsAnalysisInvariants checks structural invariants of the
// analysis on random handlers: PSEs are never infinite edges, every
// TargetPath is cuttable, and hand-over sets are subsets of the liveness
// solution.
func TestRandomProgramsAnalysisInvariants(t *testing.T) {
	for seed := int64(100); seed < 160; seed++ {
		prog := testprog.RandomProgram(seed)
		reg, _ := testprog.SinkRegistry()
		c, err := partition.Compile(prog, nil, reg, costmodel.NewDataSize())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := c.Analysis
		for _, e := range res.PSESet {
			if res.Infinite[e] {
				t.Errorf("seed %d: PSE %v is infinite", seed, e)
			}
		}
		for pi, p := range res.Paths {
			if len(res.PathPSEs[pi]) == 0 {
				t.Errorf("seed %d: TargetPath %v has no PSEs (DAG programs must always be cuttable)", seed, p)
			}
		}
		for _, pse := range c.PSEs[1:] {
			inter := res.Live.Inter(pse.Edge)
			for _, v := range pse.Vars {
				if !inter[v] {
					t.Errorf("seed %d: PSE %v hand-over var %q not in INTER", seed, pse.Edge, v)
				}
			}
		}
		// The all-PSEs plan must be a valid cut.
		all := make([]int32, 0, c.NumPSEs()-1)
		for id := int32(1); id < int32(c.NumPSEs()); id++ {
			all = append(all, id)
		}
		if err := c.ValidateSplitSet(all); err != nil {
			t.Errorf("seed %d: all-PSE plan invalid: %v", seed, err)
		}
	}
}

// TestRandomProgramsForcedSplitSafety: under the degenerate empty-ish plan
// (only an unreachable PSE flagged), the modulator must still never execute
// the native sink at the sender.
func TestRandomProgramsForcedSplitSafety(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		prog := testprog.RandomProgram(seed)
		oracleReg, _ := testprog.SinkRegistry()
		c, err := partition.Compile(prog, nil, oracleReg, costmodel.NewDataSize())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if c.NumPSEs() < 2 {
			continue
		}
		plan, err := partition.NewPlan(c.NumPSEs(), 1, []int32{int32(c.NumPSEs()) - 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sendReg, sendSunk := testprog.SinkRegistry()
		mod := partition.NewModulator(c, interp.NewEnv(nil, sendReg))
		mod.SetPlan(plan)
		out, err := mod.Process(mir.Int(7))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(*sendSunk) != 0 {
			t.Errorf("seed %d: native sink executed at the sender", seed)
		}
		if out.Suppressed || (out.Raw == nil && out.Cont == nil) {
			t.Errorf("seed %d: no message produced: %+v", seed, out)
		}
	}
}
