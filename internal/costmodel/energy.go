package costmodel

import (
	"math"

	"methodpart/internal/analysis"
	"methodpart/internal/mir"
)

// EnergyName is the wire name of the energy model.
const EnergyName = "energy"

// Energy is the power-consumption cost model the paper lists as future work
// (§7: "extending cost models to include considerations of power
// consumption"). It charges each candidate split for the receiver-side
// battery energy it implies: radio energy to receive the continuation bytes
// plus CPU energy for the demodulator-side work. Sender-side (mains-powered
// station) costs are free; the model therefore pushes as much processing to
// the sender as convexity allows while also shrinking what crosses the
// radio — the regime of the paper's handheld/sensor clients.
type Energy struct {
	// RxNanojoulePerByte is the radio receive energy per byte.
	RxNanojoulePerByte float64
	// CPUNanojoulePerUnit is the receiver CPU energy per work unit.
	CPUNanojoulePerUnit float64
}

// NewEnergy returns the model with defaults in the published range for
// early-2000s 802.11 radios and handheld CPUs (relative magnitudes are what
// matter to plan selection).
func NewEnergy() *Energy {
	return &Energy{
		RxNanojoulePerByte:  250,
		CPUNanojoulePerUnit: 40,
	}
}

// Name implements Model.
func (*Energy) Name() string { return EnergyName }

// StaticCost implements Model. Statically the model behaves like the
// data-size model (bytes received dominate and are partially determinable);
// the CPU term is runtime-profiled, so every edge keeps its INTER variables
// plus remains comparable by the deterministic byte lower bound.
func (m *Energy) StaticCost(prog *mir.Program, classes *mir.ClassTable, live *analysis.Liveness) analysis.CostFunc {
	ds := NewDataSize()
	inner := ds.StaticCost(prog, classes, live)
	return func(e analysis.Edge, inter analysis.VarSet) analysis.CostDesc {
		desc := inner(e, inter)
		// The receiver-CPU term depends on runtime work: make every
		// edge runtime-refined by keeping its hand-over variables
		// non-deterministic (a superset of the data-size ones).
		desc.Vars = inter.Clone()
		return desc
	}
}

// Capacity implements Model: expected receiver energy per message through
// this PSE, in nanojoules.
func (m *Energy) Capacity(stat Stat, env Environment) int64 {
	if stat.Count == 0 {
		return 1
	}
	energy := stat.Bytes*m.RxNanojoulePerByte + stat.DemodWork*m.CPUNanojoulePerUnit
	c := stat.Prob * energy
	if c < 1 || math.IsNaN(c) {
		return 1
	}
	return int64(c)
}

// StaticCapacity implements Model.
func (m *Energy) StaticCapacity(c analysis.CostDesc) int64 {
	const defaultDynBytes = 256
	bytes := float64(c.Det) + float64(len(c.Vars))*defaultDynBytes
	v := bytes * m.RxNanojoulePerByte
	if v < 1 {
		return 1
	}
	return int64(v)
}
