package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// --- framing (moved here from internal/wire with the layer split) ---

func TestFraming(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma")}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame = %q, want %q", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("read past end succeeded")
	}
}

func TestFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d decoded", cut)
		}
	}
}

// --- Transport contract, exercised against both implementations ---

func transports(t *testing.T) map[string]Transport {
	t.Helper()
	return map[string]Transport{
		"tcp": TCP{},
		"mem": NewMem(),
	}
}

func listenAddr(name string) string {
	if name == "tcp" {
		return "127.0.0.1:0"
	}
	return ""
}

func TestRoundTrip(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			ln, err := tr.Listen(listenAddr(name))
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			accepted := make(chan Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				accepted <- c
			}()
			client, err := tr.Dial(ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			server := <-accepted
			defer server.Close()

			frames := [][]byte{[]byte("one"), {}, bytes.Repeat([]byte("x"), 100_000)}
			for _, f := range frames {
				if err := client.WriteFrame(f); err != nil {
					t.Fatal(err)
				}
			}
			for _, want := range frames {
				got, err := server.ReadFrame()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("frame mismatch: %d vs %d bytes", len(got), len(want))
				}
			}
			// And the reverse direction.
			if err := server.WriteFrame([]byte("pong")); err != nil {
				t.Fatal(err)
			}
			got, err := client.ReadFrame()
			if err != nil || string(got) != "pong" {
				t.Fatalf("reverse frame = %q, %v", got, err)
			}
		})
	}
}

func TestPeerCloseDeliversPendingThenEOF(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			ln, err := tr.Listen(listenAddr(name))
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			accepted := make(chan Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err == nil {
					accepted <- c
				}
			}()
			client, err := tr.Dial(ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			server := <-accepted
			if err := client.WriteFrame([]byte("last words")); err != nil {
				t.Fatal(err)
			}
			_ = client.Close()
			got, err := server.ReadFrame()
			if err != nil || string(got) != "last words" {
				t.Fatalf("pending frame = %q, %v", got, err)
			}
			if _, err := server.ReadFrame(); err == nil {
				t.Fatal("read past peer close succeeded")
			}
			_ = server.Close()
		})
	}
}

func TestLocalCloseUnblocksRead(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			ln, err := tr.Listen(listenAddr(name))
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			go func() {
				c, err := ln.Accept()
				if err == nil {
					defer c.Close()
					_, _ = c.ReadFrame() // hold the conn open until close
				}
			}()
			client, err := tr.Dial(ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			readErr := make(chan error, 1)
			go func() {
				_, err := client.ReadFrame()
				readErr <- err
			}()
			time.Sleep(10 * time.Millisecond)
			_ = client.Close()
			select {
			case err := <-readErr:
				if err == nil {
					t.Fatal("read returned no error after local close")
				}
			case <-time.After(2 * time.Second):
				t.Fatal("read did not unblock on local close")
			}
		})
	}
}

func TestDialRefusedWithoutListener(t *testing.T) {
	mem := NewMem()
	if _, err := mem.Dial("mem:404"); err == nil {
		t.Fatal("mem dial to missing listener succeeded")
	}
	if _, err := (TCP{}).Dial("127.0.0.1:1"); err == nil {
		t.Fatal("tcp dial to dead port succeeded")
	}
}

func TestMemListenerLifecycle(t *testing.T) {
	mem := NewMem()
	ln, err := mem.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	if ln.Addr() == "" {
		t.Fatal("auto-allocated address empty")
	}
	// The address is taken while the listener lives...
	if _, err := mem.Listen(ln.Addr()); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	// ...Accept unblocks on Close...
	acceptErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		acceptErr <- err
	}()
	_ = ln.Close()
	select {
	case err := <-acceptErr:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("accept after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("accept did not unblock on close")
	}
	// ...and the address is reusable afterwards.
	if _, err := mem.Listen(ln.Addr()); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	// Dialing the closed (re-registered) address still works; dialing a
	// transport with the listener gone is refused.
	if _, err := mem.Dial("mem:nowhere"); err == nil {
		t.Fatal("dial to never-registered address succeeded")
	}
}

// TestMemWriteBlocksOnStalledReader pins the backpressure property the
// jecho pipeline tests build on: a reader that never drains causes writes
// to block after the per-direction buffer fills.
func TestMemWriteBlocksOnStalledReader(t *testing.T) {
	mem := NewMem()
	ln, err := mem.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			_ = c // never read, never close: a stalled peer
		}
	}()
	client, err := mem.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wrote := make(chan int, 1)
	go func() {
		n := 0
		for ; n < memConnBuffer*4; n++ {
			if err := client.WriteFrame([]byte("frame")); err != nil {
				break
			}
		}
		wrote <- n
	}()
	select {
	case n := <-wrote:
		t.Fatalf("all %d writes completed against a stalled reader", n)
	case <-time.After(100 * time.Millisecond):
		// Blocked, as intended; Close unblocks the writer.
		_ = client.Close()
	}
}

func TestConcurrentWritersInterleaveWholeFrames(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			ln, err := tr.Listen(listenAddr(name))
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			accepted := make(chan Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err == nil {
					accepted <- c
				}
			}()
			client, err := tr.Dial(ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			server := <-accepted
			defer server.Close()

			const writers, perWriter = 8, 50
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					payload := bytes.Repeat([]byte{byte('a' + w)}, 64+w)
					for i := 0; i < perWriter; i++ {
						if err := client.WriteFrame(payload); err != nil {
							t.Errorf("writer %d: %v", w, err)
							return
						}
					}
				}(w)
			}
			got := make(chan error, 1)
			go func() {
				for i := 0; i < writers*perWriter; i++ {
					f, err := server.ReadFrame()
					if err != nil {
						got <- fmt.Errorf("read %d: %w", i, err)
						return
					}
					// A whole frame is homogeneous; torn frames are not.
					for _, b := range f[1:] {
						if b != f[0] {
							got <- fmt.Errorf("torn frame %q", f)
							return
						}
					}
					if len(f) != 64+int(f[0]-'a') {
						got <- fmt.Errorf("frame len %d for writer %c", len(f), f[0])
						return
					}
				}
				got <- nil
			}()
			wg.Wait()
			if err := <-got; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
	mem := NewMem()
	ln, _ := mem.Listen("")
	defer ln.Close()
	go func() { _, _ = ln.Accept() }()
	c, err := mem.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteFrame(make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized mem write accepted")
	}
}
