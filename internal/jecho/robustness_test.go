package jecho_test

import (
	"net"
	"testing"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

func newTestPublisher(t *testing.T) *jecho.Publisher {
	t.Helper()
	reg, _ := imaging.Builtins()
	pub, err := jecho.NewPublisher(jecho.PublisherConfig{
		Addr:     "127.0.0.1:0",
		Builtins: reg,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub.Close() })
	return pub
}

func TestPublishWithoutSubscribers(t *testing.T) {
	pub := newTestPublisher(t)
	n, err := pub.Publish(imaging.NewFrame(8, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("reached %d subscribers", n)
	}
}

func TestBadHandshakeRejected(t *testing.T) {
	pub := newTestPublisher(t)
	conn, err := net.Dial("tcp", pub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A plan message instead of a subscription.
	data, err := wire.Marshal(&wire.Plan{Handler: "x", Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.WriteFrame(conn, data); err != nil {
		t.Fatal(err)
	}
	// The publisher must close the connection without registering.
	deadline := time.Now().Add(2 * time.Second)
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(deadline)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection not closed after bad handshake")
	}
	if pub.Subscribers() != 0 {
		t.Error("bad handshake registered a subscription")
	}
}

func TestBadHandlerSourceRejected(t *testing.T) {
	pub := newTestPublisher(t)
	conn, err := net.Dial("tcp", pub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	data, err := wire.Marshal(&wire.Subscribe{
		Protocol: wire.ProtocolVersion, Subscriber: "x", Handler: "f",
		Source: "not mir at all", CostModel: "datasize",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.WriteFrame(conn, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection survived uncompilable source")
	}
	if pub.Subscribers() != 0 {
		t.Error("uncompilable subscription registered")
	}
}

func TestProtocolMismatchRejected(t *testing.T) {
	pub := newTestPublisher(t)
	conn, err := net.Dial("tcp", pub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	data, err := wire.Marshal(&wire.Subscribe{
		Protocol: 99, Subscriber: "future", Handler: "f",
		Source: "func f(x) {\n return\n}", CostModel: "datasize",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.WriteFrame(conn, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection survived protocol mismatch")
	}
	if pub.Subscribers() != 0 {
		t.Error("mismatched protocol registered a subscription")
	}
}

// TestNackUnknownPSEIgnored: a NACK naming a PSE the handler doesn't have
// must be counted as a malformed frame and dropped, not fed to the breaker —
// 5 bogus NACKs exceed the default threshold of 3, so any breaker activity
// here means the bound check failed.
func TestNackUnknownPSEIgnored(t *testing.T) {
	pub := newTestPublisher(t)
	conn, err := net.Dial("tcp", pub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	data, err := wire.Marshal(&wire.Subscribe{
		Protocol: wire.ProtocolVersion, Subscriber: "nacker",
		Handler: imaging.HandlerName, Source: imaging.HandlerSource(64),
		CostModel: costmodel.DataSizeName, Natives: []string{"displayImage"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.WriteFrame(conn, data); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for pub.Subscribers() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	const bogus = 5
	for i := 0; i < bogus; i++ {
		nack, err := wire.Marshal(&wire.Nack{
			Handler: imaging.HandlerName, Seq: uint64(i),
			PSEID: 1 << 20, Class: wire.NackRuntime,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := transport.WriteFrame(conn, nack); err != nil {
			t.Fatal(err)
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		subs := pub.Subscriptions()
		if len(subs) == 1 && subs[0].Metrics.NacksReceived == bogus {
			m := subs[0].Metrics
			if m.BreakerTrips != 0 {
				t.Fatalf("bogus NACKs tripped the breaker %d times", m.BreakerTrips)
			}
			if m.DecodeFailures != bogus {
				t.Fatalf("decode failures = %d, want %d", m.DecodeFailures, bogus)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("NACKs never surfaced in metrics: %+v", subs)
		}
		time.Sleep(time.Millisecond)
	}
	if pub.Subscribers() != 1 {
		t.Fatal("bogus NACKs killed the subscription")
	}
}

func TestSubscriberDisconnectCleansUp(t *testing.T) {
	pub := newTestPublisher(t)
	reg, _ := imaging.Builtins()
	sub, err := jecho.Subscribe(jecho.SubscriberConfig{
		Addr:        pub.Addr(),
		Name:        "flaky",
		Source:      imaging.HandlerSource(64),
		Handler:     imaging.HandlerName,
		CostModel:   costmodel.DataSizeName,
		Natives:     []string{"displayImage"},
		Builtins:    reg,
		Environment: costmodel.DefaultEnvironment(),
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for pub.Subscribers() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	_ = sub.Close()
	deadline = time.Now().Add(5 * time.Second)
	for pub.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription not cleaned up after disconnect")
		}
		time.Sleep(time.Millisecond)
	}
	// Publishing after the disconnect reaches nobody but must not fail.
	if n, err := pub.Publish(imaging.NewFrame(8, 8, 1)); err != nil || n != 0 {
		t.Fatalf("publish after disconnect: n=%d err=%v", n, err)
	}
}

func TestSubscribeUnknownCostModel(t *testing.T) {
	pub := newTestPublisher(t)
	reg, _ := imaging.Builtins()
	_, err := jecho.Subscribe(jecho.SubscriberConfig{
		Addr:      pub.Addr(),
		Name:      "x",
		Source:    imaging.HandlerSource(64),
		Handler:   imaging.HandlerName,
		CostModel: "bogus",
		Builtins:  reg,
	})
	if err == nil {
		t.Fatal("unknown cost model accepted")
	}
}

func TestSubscribeWithRetryEventuallySucceeds(t *testing.T) {
	reg, _ := imaging.Builtins()
	cfg := jecho.SubscriberConfig{
		Name:        "late",
		Source:      imaging.HandlerSource(64),
		Handler:     imaging.HandlerName,
		CostModel:   costmodel.DataSizeName,
		Natives:     []string{"displayImage"},
		Builtins:    reg,
		Environment: costmodel.DefaultEnvironment(),
		Logf:        t.Logf,
	}
	// Start the publisher shortly after the first subscribe attempt fails.
	pubCh := make(chan *jecho.Publisher, 1)
	addrCh := make(chan string, 1)
	go func() {
		time.Sleep(80 * time.Millisecond)
		preg, _ := imaging.Builtins()
		pub, err := jecho.NewPublisher(jecho.PublisherConfig{Addr: "127.0.0.1:0", Builtins: preg, Logf: t.Logf})
		if err != nil {
			close(addrCh)
			return
		}
		pubCh <- pub
		addrCh <- pub.Addr()
	}()
	// We don't know the port until the publisher is up; retry against a
	// dead port first to exercise the backoff, then the real address.
	cfg.Addr = "127.0.0.1:1"
	if _, err := jecho.SubscribeWithRetry(cfg, 2); err == nil {
		t.Fatal("retry against dead port succeeded")
	}
	addr, ok := <-addrCh
	if !ok {
		t.Fatal("publisher never started")
	}
	cfg.Addr = addr
	sub, err := jecho.SubscribeWithRetry(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub := <-pubCh
	defer pub.Close()
}

func TestSubscribeConnectionRefused(t *testing.T) {
	reg, _ := imaging.Builtins()
	_, err := jecho.Subscribe(jecho.SubscriberConfig{
		Addr:      "127.0.0.1:1", // nothing listens here
		Name:      "x",
		Source:    imaging.HandlerSource(64),
		Handler:   imaging.HandlerName,
		CostModel: costmodel.DataSizeName,
		Natives:   []string{"displayImage"},
		Builtins:  reg,
	})
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}
