package partition_test

import (
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/testprog"
)

// TestLoopHandlerPartition exercises convexity end to end: the sum handler
// has a loop-carried dependence, so no PSE lies inside the loop; the valid
// cuts are the prologue (before the loop: ship the array) and the epilogue
// (after the loop: ship only the accumulated scalar). Both must produce the
// correct sum at the native sink.
func TestLoopHandlerPartition(t *testing.T) {
	u := asm.MustParse(testprog.LoopSource)
	prog, _ := u.Program("sum")
	oracleReg, _ := testprog.LoopBuiltins()
	c, err := partition.Compile(prog, nil, oracleReg, costmodel.NewDataSize())
	if err != nil {
		t.Fatal(err)
	}
	// All real PSEs must be outside the loop body: the loop spans the
	// instructions from the loop label to the backedge.
	loopStart, _ := prog.LabelIndex("loop")
	loopEnd := -1
	for i := range prog.Instrs {
		if prog.Instrs[i].Op == mir.OpGoto && prog.Instrs[i].Target == "loop" {
			loopEnd = i
		}
	}
	if loopStart < 0 || loopEnd < 0 {
		t.Fatal("loop structure not found")
	}
	// An epilogue PSE targets code after the loop (the loop-exit edge or
	// later). Note the analysis is also entitled to prune the prologue
	// cuts entirely: the epilogue hand-over is one deterministic scalar,
	// which dominates shipping the array.
	var epilogue []int32
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		pse, _ := c.PSE(id)
		e := pse.Edge
		inLoop := e.From >= loopStart && e.From <= loopEnd && e.To > loopStart && e.To <= loopEnd
		if inLoop {
			t.Errorf("PSE %v lies inside the loop body [%d,%d]", e, loopStart, loopEnd)
		}
		if e.To > loopEnd {
			epilogue = append(epilogue, id)
		}
	}
	if len(epilogue) == 0 {
		t.Fatalf("no epilogue PSE found: %+v", c.PSEs)
	}

	arr := mir.IntArray{3, 1, 4, 1, 5, 9, 2, 6}
	const wantSum = 31

	for _, split := range [][]int32{{partition.RawPSEID}, epilogue} {
		if err := c.ValidateSplitSet(split); err != nil {
			// Epilogue-only may not cut the filter path; augment.
			split = append(split, findEmptyHandoverPSE(c))
			if err := c.ValidateSplitSet(split); err != nil {
				t.Fatalf("cannot build valid plan from %v: %v", split, err)
			}
		}
		plan, err := partition.NewPlan(c.NumPSEs(), 1, split, nil)
		if err != nil {
			t.Fatal(err)
		}
		sendReg, sendSunk := testprog.LoopBuiltins()
		recvReg, recvSunk := testprog.LoopBuiltins()
		mod := partition.NewModulator(c, interp.NewEnv(nil, sendReg))
		mod.SetPlan(plan)
		demod := partition.NewDemodulator(c, interp.NewEnv(nil, recvReg))

		out, err := mod.Process(arr)
		if err != nil {
			t.Fatalf("plan %v: %v", split, err)
		}
		var msg any
		if out.Raw != nil {
			msg = out.Raw
		} else {
			msg = out.Cont
		}
		if _, err := demod.Process(msg); err != nil {
			t.Fatalf("plan %v: demod: %v", split, err)
		}
		if len(*sendSunk) != 0 {
			t.Errorf("plan %v: native emit ran at sender", split)
		}
		if len(*recvSunk) != 1 || (*recvSunk)[0] != mir.Int(wantSum) {
			t.Errorf("plan %v: sink = %v, want [%d]", split, *recvSunk, wantSum)
		}
		// The epilogue cut must ship only scalars, far smaller than the
		// array the raw cut ships.
		if out.Cont != nil && out.SplitPSE != partition.RawPSEID {
			if out.WireBytes > 64 {
				t.Errorf("plan %v: epilogue continuation unexpectedly large: %d bytes", split, out.WireBytes)
			}
		}
	}
}

func findEmptyHandoverPSE(c *partition.Compiled) int32 {
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		pse, _ := c.PSE(id)
		if len(pse.Vars) == 0 {
			return id
		}
	}
	return partition.RawPSEID
}

// TestGlobalsPinToReceiver: a handler touching globals must keep those
// instructions at the receiver (they are StopNodes), and the modulator must
// split before reaching them even under a permissive plan.
func TestGlobalsPinToReceiver(t *testing.T) {
	src := `
func count(event) {
  one = const 1
  c = getglobal counter
  c2 = add c one
  setglobal counter c2
  return c2
}
`
	u := asm.MustParse(src)
	prog, _ := u.Program("count")
	reg := interp.NewRegistry()
	c, err := partition.Compile(prog, nil, reg, costmodel.NewDataSize())
	if err != nil {
		t.Fatal(err)
	}
	// getglobal at node 1 must be a StopNode.
	if !c.Analysis.Stops[1] {
		t.Fatalf("getglobal not a StopNode: %v", c.Analysis.Stops)
	}
	senderEnv := interp.NewEnv(nil, reg)
	recvEnv := interp.NewEnv(nil, reg)
	recvEnv.Globals["counter"] = mir.Int(10)
	mod := partition.NewModulator(c, senderEnv)
	demod := partition.NewDemodulator(c, recvEnv)

	// Even a split-everything plan cannot move the global access.
	all := make([]int32, 0, c.NumPSEs())
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		all = append(all, id)
	}
	plan, err := partition.NewPlan(c.NumPSEs(), 1, all, nil)
	if err != nil {
		t.Fatal(err)
	}
	mod.SetPlan(plan)
	out, err := mod.Process(mir.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, touched := senderEnv.Globals["counter"]; touched {
		t.Error("sender environment globals touched")
	}
	var msg any
	if out.Raw != nil {
		msg = out.Raw
	} else {
		msg = out.Cont
	}
	res, err := demod.Process(msg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Return != mir.Int(11) {
		t.Errorf("return = %v, want 11", res.Return)
	}
	if recvEnv.Globals["counter"] != mir.Int(11) {
		t.Errorf("receiver global = %v, want 11", recvEnv.Globals["counter"])
	}
}
