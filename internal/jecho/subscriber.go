package jecho

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/profileunit"
	"methodpart/internal/reconfig"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// SubscriberConfig configures a subscription to a remote publisher.
type SubscriberConfig struct {
	// Addr is the publisher's address in the transport's notation.
	Addr string
	// Transport carries the subscription (nil = TCP). It must match the
	// publisher's transport.
	Transport transport.Transport
	// Name identifies this subscriber.
	Name string
	// Channel names the event channel to attach to ("" = default;
	// Publisher.Publish broadcasts reach every channel either way).
	Channel string
	// Source is the handler source (classes + func) to install.
	Source string
	// Handler is the handler name inside Source.
	Handler string
	// CostModel is the wire name of the cost model ("datasize",
	// "exectime").
	CostModel string
	// Natives lists the receiver-pinned functions of the handler.
	Natives []string
	// Builtins is the receiver-side registry (must implement all
	// handler functions, including the natives).
	Builtins *interp.Registry
	// Environment is the deployment-time resource estimate for the
	// reconfiguration unit.
	Environment costmodel.Environment
	// OnResult, if set, observes every completed message.
	OnResult func(*partition.Result)
	// ReconfigEvery is the reconfiguration rate trigger in messages
	// (0 = 10).
	ReconfigEvery uint64
	// DiffThreshold is the diff trigger sensitivity (0 = 0.2).
	DiffThreshold float64
	// Logf receives diagnostics (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Subscriber is the receiver side of one subscription: it demodulates
// incoming messages, merges sender feedback with local profiling, and
// pushes new plans back to the publisher.
type Subscriber struct {
	cfg      SubscriberConfig
	conn     transport.Conn
	compiled *partition.Compiled
	demod    *partition.Demodulator
	coll     *profileunit.Collector
	runit    *reconfig.Unit
	trigger  profileunit.Trigger
	metrics  channelMetrics

	mu          sync.Mutex
	senderStats map[int32]costmodel.Stat
	lastSplit   []int32
	done        chan struct{}
	readErr     error
	processed   uint64
	closing     atomic.Bool
}

// SubscribeWithRetry dials the publisher with exponential backoff (starting
// at 50ms, doubling, capped at 2s) until the subscription succeeds or
// attempts are exhausted — for deployments where the receiver may come up
// before its publisher.
func SubscribeWithRetry(cfg SubscriberConfig, attempts int) (*Subscriber, error) {
	if attempts < 1 {
		attempts = 1
	}
	backoff := 50 * time.Millisecond
	var lastErr error
	for i := 0; i < attempts; i++ {
		sub, err := Subscribe(cfg)
		if err == nil {
			return sub, nil
		}
		lastErr = err
		if i+1 < attempts {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
	}
	return nil, fmt.Errorf("jecho: subscribe after %d attempts: %w", attempts, lastErr)
}

// Subscribe dials the publisher, installs the handler, and starts the
// receive loop.
func Subscribe(cfg SubscriberConfig) (*Subscriber, error) {
	if cfg.Builtins == nil {
		return nil, fmt.Errorf("jecho: subscriber needs a builtin registry")
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.ReconfigEvery == 0 {
		cfg.ReconfigEvery = 10
	}
	if cfg.DiffThreshold == 0 {
		cfg.DiffThreshold = 0.2
	}
	if cfg.Transport == nil {
		cfg.Transport = transport.Default()
	}
	subMsg := &wire.Subscribe{
		Protocol:   wire.ProtocolVersion,
		Subscriber: cfg.Name,
		Channel:    cfg.Channel,
		Handler:    cfg.Handler,
		Source:     cfg.Source,
		CostModel:  cfg.CostModel,
		Natives:    cfg.Natives,
	}
	compiled, err := compileSubscription(subMsg)
	if err != nil {
		return nil, err
	}
	conn, err := cfg.Transport.Dial(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("jecho: dial publisher: %w", err)
	}
	data, err := wire.Marshal(subMsg)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := conn.WriteFrame(data); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("jecho: subscribe handshake: %w", err)
	}

	env := interp.NewEnv(compiled.Classes, cfg.Builtins)
	coll := profileunit.NewCollector(compiled.NumPSEs())
	demod := partition.NewDemodulator(compiled, env)
	demod.Probe = coll
	demod.CrossProbe = coll
	s := &Subscriber{
		cfg:      cfg,
		conn:     conn,
		compiled: compiled,
		demod:    demod,
		coll:     coll,
		runit:    reconfig.NewUnit(compiled, cfg.Environment),
		trigger: &profileunit.EitherTrigger{Children: []profileunit.Trigger{
			&profileunit.RateTrigger{EveryMessages: cfg.ReconfigEvery},
			&profileunit.DiffTrigger{Threshold: cfg.DiffThreshold, MinMessages: 3},
		}},
		senderStats: make(map[int32]costmodel.Stat),
		done:        make(chan struct{}),
	}
	// Install the static initial plan at the sender.
	plan, wirePlan, err := s.runit.InitialPlan()
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	demod.SetProfilePlan(plan)
	if err := s.sendPlan(wirePlan); err != nil {
		_ = conn.Close()
		return nil, err
	}
	go s.readLoop()
	return s, nil
}

// Compiled exposes the compiled handler (PSE table) for inspection.
func (s *Subscriber) Compiled() *partition.Compiled { return s.compiled }

// Processed returns the number of completed messages.
func (s *Subscriber) Processed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.processed
}

// Done is closed when the receive loop ends.
func (s *Subscriber) Done() <-chan struct{} { return s.done }

// Stats returns the merged (sender + receiver) per-PSE profiling snapshot —
// the same view the reconfiguration unit decides on.
func (s *Subscriber) Stats() map[int32]costmodel.Stat {
	s.mu.Lock()
	sender := make(map[int32]costmodel.Stat, len(s.senderStats))
	for id, st := range s.senderStats {
		sender[id] = st
	}
	s.mu.Unlock()
	return profileunit.Merge(sender, s.coll.Snapshot())
}

// Metrics snapshots the subscriber-side channel counters: messages
// demodulated, bytes received, plans pushed. Publisher-only fields
// (Dropped, Suppressed, queue depths) stay zero here.
func (s *Subscriber) Metrics() ChannelMetrics {
	return s.metrics.snapshot()
}

// Err returns the receive-loop terminal error (nil on clean close). A close
// initiated locally via Close is clean; a publisher that goes away mid-
// subscription is not.
func (s *Subscriber) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readErr
}

// Close tears the subscription down.
func (s *Subscriber) Close() error {
	s.closing.Store(true)
	err := s.conn.Close()
	<-s.done
	return err
}

func (s *Subscriber) sendPlan(p *wire.Plan) error {
	data, err := wire.Marshal(p)
	if err != nil {
		return err
	}
	if err := s.conn.WriteFrame(data); err != nil {
		return err
	}
	s.metrics.bytesOnWire.Add(uint64(len(data)) + transport.HeaderSize)
	s.mu.Lock()
	if s.lastSplit != nil && !equalSplit(s.lastSplit, p.Split) {
		s.metrics.planFlips.Add(1)
	}
	s.lastSplit = append([]int32(nil), p.Split...)
	s.mu.Unlock()
	return nil
}

func (s *Subscriber) readLoop() {
	defer close(s.done)
	for {
		frame, err := s.conn.ReadFrame()
		if err != nil {
			// A locally initiated Close is a clean shutdown, not an
			// error (the doc contract of Err).
			if !s.closing.Load() {
				s.mu.Lock()
				s.readErr = err
				s.mu.Unlock()
			}
			return
		}
		s.metrics.bytesOnWire.Add(uint64(len(frame)) + transport.HeaderSize)
		msg, err := wire.Unmarshal(frame)
		if err != nil {
			s.cfg.Logf("jecho subscriber: %v", err)
			continue
		}
		switch m := msg.(type) {
		case *wire.Raw, *wire.Continuation:
			res, err := s.demod.Process(m)
			if err != nil {
				s.cfg.Logf("jecho subscriber: demodulate: %v", err)
				continue
			}
			s.metrics.published.Add(1)
			s.mu.Lock()
			s.processed++
			s.mu.Unlock()
			if s.cfg.OnResult != nil {
				s.cfg.OnResult(res)
			}
			s.maybeReconfigure()
		case *wire.Feedback:
			s.mu.Lock()
			for id, st := range profileunit.FromWire(m) {
				s.senderStats[id] = st
			}
			s.mu.Unlock()
			s.maybeReconfigure()
		default:
			s.cfg.Logf("jecho subscriber: unexpected %T", msg)
		}
	}
}

// maybeReconfigure runs the reconfiguration unit when the triggers fire and
// pushes any changed plan back to the publisher.
func (s *Subscriber) maybeReconfigure() {
	s.mu.Lock()
	merged := profileunit.Merge(s.senderStats, s.coll.Snapshot())
	messages := s.processed
	s.mu.Unlock()
	if !s.trigger.ShouldReport(merged, messages) {
		return
	}
	plan, wirePlan, err := s.runit.SelectPlan(merged)
	if err != nil {
		s.cfg.Logf("jecho subscriber: reconfigure: %v", err)
		return
	}
	s.demod.SetProfilePlan(plan)
	if err := s.sendPlan(wirePlan); err != nil {
		s.cfg.Logf("jecho subscriber: send plan: %v", err)
	}
}
