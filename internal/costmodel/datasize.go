package costmodel

import (
	"math"

	"methodpart/internal/analysis"
	"methodpart/internal/mir"
	"methodpart/internal/wire"
)

// DataSizeName is the wire name of the data-size model.
const DataSizeName = "datasize"

// DataSize is the §4.1 cost model: the cost of a PSE is the amount of data
// the continuation message carries across the network. Scalar live
// variables contribute statically determinable sizes; arrays, strings and
// objects contribute only at runtime and are listed as non-deterministic
// variables, giving the comparative lower bounds the static pruning uses.
type DataSize struct {
	// VarOverhead is the per-variable wire overhead (name length prefix)
	// included in the deterministic part.
	VarOverhead int64
}

// NewDataSize returns the model with standard wire overheads.
func NewDataSize() *DataSize { return &DataSize{VarOverhead: 4} }

// Name implements Model.
func (*DataSize) Name() string { return DataSizeName }

// sizeLattice is the per-register static size lattice: unknown (bottom),
// fixed size, or dynamic (top).
type sizeLattice struct {
	known bool
	dyn   bool
	size  int64
}

func fixedSize(n int64) sizeLattice { return sizeLattice{known: true, size: n} }

var dynSize = sizeLattice{known: true, dyn: true}

func (a sizeLattice) join(b sizeLattice) sizeLattice {
	switch {
	case !a.known:
		return b
	case !b.known:
		return a
	case a.dyn || b.dyn:
		return dynSize
	case a.size == b.size:
		return a
	default:
		return dynSize
	}
}

const (
	scalarBoolSize = 2 // tag + bool
	scalarNumSize  = 9 // tag + 8 bytes
)

// inferSizes computes, for every register, whether its encoded size is
// statically determinable, via a flow-insensitive fixpoint over all
// definitions.
func inferSizes(prog *mir.Program, classes *mir.ClassTable) map[string]sizeLattice {
	sz := make(map[string]sizeLattice)
	get := func(r string) sizeLattice { return sz[r] }

	fieldSize := func(field string) sizeLattice {
		// If every registered class declaring this field agrees on a
		// fixed-size kind, the size is determinable.
		var acc sizeLattice
		found := false
		for _, name := range classes.Names() {
			def, _ := classes.Lookup(name)
			f, ok := def.Field(field)
			if !ok {
				continue
			}
			found = true
			switch f.Kind {
			case mir.KindBool:
				acc = acc.join(fixedSize(scalarBoolSize))
			case mir.KindInt, mir.KindFloat:
				acc = acc.join(fixedSize(scalarNumSize))
			default:
				acc = acc.join(dynSize)
			}
		}
		if !found {
			return dynSize
		}
		return acc
	}

	// Parameters are dynamic: their runtime content is unknown.
	for _, prm := range prog.Params {
		sz[prm] = dynSize
	}
	changed := true
	for changed {
		changed = false
		for i := range prog.Instrs {
			in := &prog.Instrs[i]
			var out sizeLattice
			switch in.Op {
			case mir.OpConst:
				out = fixedSize(wire.SizeOf(in.Lit))
			case mir.OpMove, mir.OpCast:
				out = get(in.Src)
			case mir.OpBin:
				switch in.Bin {
				case mir.BinEq, mir.BinNe, mir.BinLt, mir.BinLe,
					mir.BinGt, mir.BinGe, mir.BinAnd, mir.BinOr:
					out = fixedSize(scalarBoolSize)
				default:
					a, b := get(in.Src), get(in.Src2)
					if a.known && !a.dyn && a.size == scalarNumSize &&
						b.known && !b.dyn && b.size == scalarNumSize {
						out = fixedSize(scalarNumSize)
					} else {
						out = dynSize
					}
				}
			case mir.OpUn:
				switch in.Un {
				case mir.UnNot:
					out = fixedSize(scalarBoolSize)
				case mir.UnI2F, mir.UnF2I:
					out = fixedSize(scalarNumSize)
				default:
					out = get(in.Src)
				}
			case mir.OpInstanceOf:
				out = fixedSize(scalarBoolSize)
			case mir.OpLen, mir.OpArrGet:
				out = fixedSize(scalarNumSize)
			case mir.OpGetField:
				out = fieldSize(in.Field)
			case mir.OpNew, mir.OpNewArray, mir.OpCall, mir.OpGetGlobal:
				out = dynSize
			default:
				continue
			}
			for _, d := range in.Defs() {
				next := sz[d].join(out)
				if next != sz[d] {
					sz[d] = next
					changed = true
				}
			}
		}
	}
	return sz
}

// StaticCost implements Model. The deterministic part is the per-variable
// name overhead plus the sizes of fixed-size variables — a lower bound on
// the continuation size; dynamically sized variables go into Vars for
// comparative pruning and runtime profiling.
func (m *DataSize) StaticCost(prog *mir.Program, classes *mir.ClassTable, live *analysis.Liveness) analysis.CostFunc {
	sizes := inferSizes(prog, classes)
	return func(e analysis.Edge, inter analysis.VarSet) analysis.CostDesc {
		desc := analysis.CostDesc{Vars: make(analysis.VarSet)}
		for v := range inter {
			desc.Det += m.VarOverhead + int64(len(v))
			s := sizes[v]
			if s.known && !s.dyn {
				desc.Det += s.size
			} else {
				desc.Vars[v] = true
			}
		}
		return desc
	}
}

// Capacity implements Model: expected bytes shipped through this PSE per
// message, weighted by the probability the path crosses it.
func (m *DataSize) Capacity(stat Stat, env Environment) int64 {
	if stat.Count == 0 {
		return 1
	}
	c := stat.Prob * stat.Bytes
	if c < 1 || math.IsNaN(c) {
		return 1
	}
	return int64(c)
}

// StaticCapacity implements Model: the deterministic lower bound plus a
// default estimate per unprofiled dynamic variable.
func (m *DataSize) StaticCapacity(c analysis.CostDesc) int64 {
	const defaultDynSize = 256
	return c.Det + int64(len(c.Vars))*defaultDynSize
}
