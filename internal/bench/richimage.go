package bench

import (
	"fmt"
	"io"
	"math/rand"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/simnet"
)

// RichImageRow is one row of the rich-handler extension experiment: the
// two-transform ("resize and/or downsample", §1) handler under a workload
// mixing three frame-size classes, where each class has a different optimal
// split: tiny frames ship raw, mid frames ship after the downsample, large
// frames ship fully reduced.
type RichImageRow struct {
	// Name labels the implementation.
	Name string
	// FPS is the throughput on the mixed-size workload.
	FPS float64
	// KBPerFrame is the mean payload per frame.
	KBPerFrame float64
}

// RichImage compares fixed single-cut versions of the two-transform handler
// against adaptive Method Partitioning on a workload cycling through three
// frame-size classes. With three distinct optima, no fixed cut can win
// everywhere — the experiment that shows why two manual versions (Table 2)
// were only the beginning.
func RichImage(cfg ImageConfig) ([]RichImageRow, error) {
	unit := imaging.RichHandlerUnit(cfg.Display)
	prog, ok := unit.Program(imaging.RichHandlerName)
	if !ok {
		return nil, fmt.Errorf("bench: rich handler missing")
	}
	classes, err := unit.ClassTable()
	if err != nil {
		return nil, err
	}
	oracle, _ := imaging.Builtins()
	c, err := partition.Compile(prog, classes, oracle, costmodel.NewDataSize())
	if err != nil {
		return nil, err
	}

	// Classify the ladder PSEs around the two transform calls.
	downIdx, resizeIdx := -1, -1
	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		if in.Op == mir.OpCall && in.Fn == "downsample" {
			downIdx = i
		}
		if in.Op == mir.OpCall && in.Fn == "resizeTo" {
			resizeIdx = i
		}
	}
	var filter, mid, post int32 = -1, -1, -1
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		p, _ := c.PSE(id)
		switch {
		case len(p.Vars) == 0:
			filter = id
		case p.Edge.To > downIdx && p.Edge.To <= resizeIdx:
			mid = id
		case p.Edge.From >= resizeIdx:
			post = id
		}
	}
	if filter < 0 || mid < 0 || post < 0 {
		return nil, fmt.Errorf("bench: rich PSE ladder incomplete: %+v", c.PSEs)
	}

	// Workload: runs of tiny (ship raw), mid (downsample at sender) and
	// large (full reduction at sender) frames.
	sizes := []int{64, 150, 400}
	rng := rand.New(rand.NewSource(cfg.Seed))
	frameSizes := make([]int, 0, cfg.Frames)
	for len(frameSizes) < cfg.Frames {
		size := sizes[rng.Intn(len(sizes))]
		n := 3 + rng.Intn(10)
		for j := 0; j < n && len(frameSizes) < cfg.Frames; j++ {
			frameSizes = append(frameSizes, size)
		}
	}
	workload := func(i int) mir.Value {
		return imaging.NewFrame(frameSizes[i], frameSizes[i], int64(i))
	}

	type variant struct {
		name     string
		split    []int32
		adaptive bool
	}
	variants := []variant{
		{name: "Ship Raw", split: []int32{partition.RawPSEID}},
		{name: "Downsample@Sender", split: []int32{mid, filter}},
		{name: "FullReduce@Sender", split: []int32{post, filter}},
		{name: "Method Partitioning", adaptive: true},
	}

	mkEnv := func() *interp.Env {
		reg, _ := imaging.Builtins()
		return interp.NewEnv(classes, reg)
	}
	rows := make([]RichImageRow, 0, len(variants))
	for _, v := range variants {
		server := simnet.NewHost("server", cfg.ServerSpeed)
		client := simnet.NewHost("client", cfg.ClientSpeed)
		link := &simnet.Link{BytesPerMS: cfg.LinkBytesPerMS, LatencyMS: cfg.LinkLatencyMS}
		rc := RunConfig{
			Compiled:         c,
			SenderEnv:        mkEnv(),
			ReceiverEnv:      mkEnv(),
			Sender:           server,
			Receiver:         client,
			Link:             link,
			Frames:           cfg.Frames,
			Workload:         workload,
			OverheadBytes:    64,
			Warmup:           10,
			Adaptive:         v.adaptive,
			FixedSplit:       v.split,
			ReconfigAtSender: true,
			Nominal: costmodel.Environment{
				SenderSpeed:   cfg.ServerSpeed,
				ReceiverSpeed: cfg.ClientSpeed,
				Bandwidth:     cfg.LinkBytesPerMS,
				LatencyMS:     cfg.LinkLatencyMS,
			},
		}
		res, err := Run(rc)
		if err != nil {
			return nil, fmt.Errorf("bench: richimage %s: %w", v.name, err)
		}
		rows = append(rows, RichImageRow{
			Name:       v.name,
			FPS:        res.FPS,
			KBPerFrame: float64(res.Bytes) / float64(res.Frames) / 1024,
		})
	}
	return rows, nil
}

// WriteRichImage renders the experiment.
func WriteRichImage(w io.Writer, rows []RichImageRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fmt.Sprintf("%.2f", r.FPS),
			fmt.Sprintf("%.1f", r.KBPerFrame),
		})
	}
	writeTable(w, "Rich handler (resize and/or downsample) on three frame-size classes (extension)",
		[]string{"Implementation", "FPS", "KB/frame"}, out)
}
