package partition_test

import (
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/testprog"
	"methodpart/internal/wire"
)

// benchHandler compiles the loop handler — the interpreter-bound workload
// where engine choice dominates — for the given engine.
func benchHandler(b *testing.B, engine partition.Engine) (*partition.Compiled, *interp.Registry) {
	b.Helper()
	u := asm.MustParse(testprog.LoopSource)
	prog, ok := u.Program("sum")
	if !ok {
		b.Fatal("sum program missing")
	}
	reg, _ := testprog.LoopBuiltins()
	c, err := partition.Compile(prog, nil, reg, costmodel.NewDataSize())
	if err != nil {
		b.Fatal(err)
	}
	c.Engine = engine
	return c, reg
}

func benchEvent(n int) mir.Value {
	arr := make(mir.IntArray, n)
	for i := range arr {
		arr[i] = int64(i % 97)
	}
	return arr
}

// splitPlanFor returns a non-raw plan cutting at the highest PSE that forms
// a valid cut — for the loop handler, the edge into the native epilogue, so
// the modulator runs the whole loop at the sender.
func splitPlanFor(b *testing.B, c *partition.Compiled) *partition.Plan {
	b.Helper()
	for id := int32(c.NumPSEs()) - 1; id >= 1; id-- {
		if c.ValidateSplitSet([]int32{id}) == nil {
			plan, err := partition.NewPlan(c.NumPSEs(), 1, []int32{id}, nil)
			if err != nil {
				b.Fatal(err)
			}
			return plan
		}
	}
	b.Fatal("no single-PSE plan cuts the handler")
	return nil
}

// BenchmarkModulate measures the sender-side hot path (Modulator.Process
// under a splitting plan) on both engines.
func BenchmarkModulate(b *testing.B) {
	for _, engine := range []partition.Engine{partition.EngineStepping, partition.EngineCompiled} {
		b.Run(engine.String(), func(b *testing.B) {
			c, reg := benchHandler(b, engine)
			mod := partition.NewModulator(c, interp.NewEnv(nil, reg))
			mod.SetPlan(splitPlanFor(b, c))
			ev := benchEvent(1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := mod.Process(ev)
				if err != nil {
					b.Fatal(err)
				}
				if out.Cont == nil {
					b.Fatal("modulator did not split")
				}
			}
		})
	}
}

// BenchmarkDemodulate measures the receiver-side hot path
// (Demodulator.ProcessRaw running the whole handler) on both engines.
func BenchmarkDemodulate(b *testing.B) {
	for _, engine := range []partition.Engine{partition.EngineStepping, partition.EngineCompiled} {
		b.Run(engine.String(), func(b *testing.B) {
			c, reg := benchHandler(b, engine)
			demod := partition.NewDemodulator(c, interp.NewEnv(nil, reg))
			msg := &wire.Raw{Handler: "sum", Event: benchEvent(1024)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := demod.ProcessRaw(msg)
				if err != nil {
					b.Fatal(err)
				}
				if res.SplitPSE != partition.RawPSEID {
					b.Fatal("unexpected split")
				}
			}
		})
	}
}
