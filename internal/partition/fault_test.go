package partition_test

import (
	"errors"
	"strings"
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/testprog"
	"methodpart/internal/wire"
)

// panicRegistry mirrors testprog.PushBuiltins but lets each builtin be
// swapped for one that panics, to prove the split-execution sandbox turns
// interpreter panics into classified errors on both halves.
func panicRegistry(panicInit, panicDisplay bool) *interp.Registry {
	reg := interp.NewRegistry()
	reg.MustRegister(interp.Builtin{
		Name: "initResize",
		Fn: func(env *interp.Env, args []mir.Value) (mir.Value, error) {
			if panicInit {
				panic("initResize exploded")
			}
			return mir.Null{}, nil
		},
	})
	reg.MustRegister(interp.Builtin{
		Name:   "displayImage",
		Native: true,
		Fn: func(env *interp.Env, args []mir.Value) (mir.Value, error) {
			if panicDisplay {
				panic("displayImage exploded")
			}
			return mir.Null{}, nil
		},
	})
	return reg
}

func compileWith(t *testing.T, reg *interp.Registry) (*partition.Compiled, *mir.ClassTable) {
	t.Helper()
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, err := u.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	c, err := partition.Compile(prog, classes, reg, costmodel.NewDataSize())
	if err != nil {
		t.Fatal(err)
	}
	return c, classes
}

// TestDemodulatorRecoversPanic: a panicking native at the receiver must
// surface as a runtime-classified error from Process, not a crashed
// goroutine.
func TestDemodulatorRecoversPanic(t *testing.T) {
	reg := panicRegistry(false, true)
	c, classes := compileWith(t, reg)
	demod := partition.NewDemodulator(c, interp.NewEnv(classes, reg))
	res, err := demod.ProcessRaw(&wire.Raw{Handler: "push", Seq: 1, Event: testprog.NewImageData(8, 8)})
	if err == nil {
		t.Fatalf("res = %+v, want panic recovered as error", res)
	}
	if got := partition.FaultClassOf(err); got != wire.NackRuntime {
		t.Fatalf("FaultClassOf = %v, want NackRuntime", got)
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "displayImage exploded") {
		t.Fatalf("err = %v, want panic provenance", err)
	}
}

// TestModulatorRecoversPanic: for every plan that executes the panicking
// transform sender-side, Process must return a runtime fault; no plan may
// let the panic escape.
func TestModulatorRecoversPanic(t *testing.T) {
	reg := panicRegistry(true, false)
	c, classes := compileWith(t, reg)
	mod := partition.NewModulator(c, interp.NewEnv(classes, reg))
	sawPanic := false
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		plan, err := partition.NewPlan(c.NumPSEs(), uint64(id), []int32{id}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !mod.SetPlan(plan) {
			t.Fatalf("SetPlan(%v) rejected", plan)
		}
		out, err := mod.Process(testprog.NewImageData(8, 8))
		if err != nil {
			if got := partition.FaultClassOf(err); got != wire.NackRuntime {
				t.Fatalf("pse %d: FaultClassOf = %v, want NackRuntime", id, got)
			}
			if !strings.Contains(err.Error(), "initResize exploded") {
				t.Fatalf("pse %d: err = %v", id, err)
			}
			sawPanic = true
			continue
		}
		if out == nil {
			t.Fatalf("pse %d: nil output with nil error", id)
		}
	}
	if !sawPanic {
		t.Fatal("no plan executed the panicking transform at the sender")
	}
}

// TestDemodulatorBudgetFault: exceeding the receiver's work budget must be
// classified NackBudget so the publisher's breaker can tell resource
// exhaustion from logic faults.
func TestDemodulatorBudgetFault(t *testing.T) {
	reg, _ := testprog.PushBuiltins()
	c, classes := compileWith(t, reg)
	env := interp.NewEnv(classes, reg)
	env.MaxWork = 1
	demod := partition.NewDemodulator(c, env)
	_, err := demod.ProcessRaw(&wire.Raw{Handler: "push", Seq: 1, Event: testprog.NewImageData(8, 8)})
	if err == nil {
		t.Fatal("want work-budget error")
	}
	if !errors.Is(err, interp.ErrWorkBudget) {
		t.Fatalf("err = %v, want ErrWorkBudget in chain", err)
	}
	if got := partition.FaultClassOf(err); got != wire.NackBudget {
		t.Fatalf("FaultClassOf = %v, want NackBudget", got)
	}
}

// TestDemodulatorFaultClasses: each failure mode carries its protocol
// error class so NACKs attribute faults correctly.
func TestDemodulatorFaultClasses(t *testing.T) {
	reg, _ := testprog.PushBuiltins()
	c, classes := compileWith(t, reg)
	demod := partition.NewDemodulator(c, interp.NewEnv(classes, reg))

	cases := []struct {
		name string
		msg  any
		want wire.NackClass
	}{
		{"handler mismatch", &wire.Raw{Handler: "other", Seq: 1, Event: testprog.NewImageData(4, 4)}, wire.NackDecode},
		{"unknown message", "not a message", wire.NackDecode},
		{"resume out of range", &wire.Continuation{Handler: "push", Seq: 2, PSEID: 1, ResumeNode: 1 << 20}, wire.NackRestore},
	}
	for _, tc := range cases {
		_, err := demod.Process(tc.msg)
		if err == nil {
			t.Fatalf("%s: want error", tc.name)
		}
		if got := partition.FaultClassOf(err); got != tc.want {
			t.Fatalf("%s: FaultClassOf = %v, want %v (err: %v)", tc.name, got, tc.want, err)
		}
	}
}

// FuzzDemodulatorProcess: the demodulator is the trust boundary of the
// protocol — whatever frame the wire decodes, Process must return a result
// or an error, never panic. Seeds cover a valid raw frame, a valid
// continuation, and hostile mutations of both.
func FuzzDemodulatorProcess(f *testing.F) {
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, err := u.ClassTable()
	if err != nil {
		f.Fatal(err)
	}
	reg, _ := testprog.PushBuiltins()
	c, err := partition.Compile(prog, classes, reg, costmodel.NewDataSize())
	if err != nil {
		f.Fatal(err)
	}
	env := interp.NewEnv(classes, reg)
	env.MaxSteps = 100_000
	env.MaxWork = 100_000
	demod := partition.NewDemodulator(c, env)

	seedMsgs := []any{
		&wire.Raw{Handler: "push", Seq: 1, Event: testprog.NewImageData(8, 8)},
		&wire.Continuation{Handler: "push", Seq: 2, PSEID: 1, ResumeNode: 2,
			Vars: map[string]mir.Value{"event": testprog.NewImageData(8, 8), "z0": mir.Int(1)}},
		&wire.Continuation{Handler: "push", Seq: 3, PSEID: 2, ResumeNode: 5,
			Vars: map[string]mir.Value{"r3": mir.Str("wrong type")}},
	}
	for _, m := range seedMsgs {
		data, err := wire.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := wire.Unmarshal(data)
		if err != nil {
			return
		}
		switch msg.(type) {
		case *wire.Raw, *wire.Continuation:
			res, err := demod.Process(msg)
			if err == nil && res == nil {
				t.Fatalf("nil result with nil error for %T", msg)
			}
		}
	})
}
