// Package partition is the core of Method Partitioning: it compiles a
// message handler into a modulator/demodulator pair with a table of
// Potential Split Edges, and executes the two halves with Remote
// Continuation between them. Switching the active partitioning plan is an
// atomic pointer swap over a flag bitset — the paper's "as efficient as
// changing flag values" adaptation (§2.6).
package partition

import (
	"fmt"
	"sort"

	"methodpart/internal/analysis"
	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
)

// RawPSEID is the id of the synthetic split point "before the first
// instruction": cutting there ships the unmodulated event and runs the
// entire handler at the receiver.
const RawPSEID int32 = 0

// PSE is one potential split edge of a compiled handler.
type PSE struct {
	// ID is the dense identifier (RawPSEID for the synthetic entry cut;
	// real PSEs start at 1).
	ID int32
	// Edge is the UG edge (From is -1 for the raw PSE).
	Edge analysis.Edge
	// Vars is the sorted hand-over set INTER(Edge) — the live variables a
	// continuation at this PSE must carry.
	Vars []string
	// Static is the static cost descriptor from the analysis.
	Static analysis.CostDesc
}

// Compiled is a handler compiled for partitioning under one cost model: the
// program, its analysis, and the PSE table shared by the modulator and the
// demodulator sides.
type Compiled struct {
	// Prog is the handler program.
	Prog *mir.Program
	// Classes is the class table the handler runs against.
	Classes *mir.ClassTable
	// Model is the cost model the handler was analysed under.
	Model costmodel.Model
	// Analysis is the full static-analysis result.
	Analysis *analysis.Result
	// PSEs is the PSE table indexed by ID (index 0 is the raw PSE).
	PSEs []PSE
	// Code is the closure-compiled program, lowered once here with a
	// watch set of exactly the edges the partition hooks act on: the PSE
	// edges plus the edges into non-exit StopNodes. All other edges run
	// inside fused superinstructions with no hook dispatch.
	Code *interp.Code
	// Engine selects the execution engine for all endpoints built on this
	// handler; the zero value is EngineCompiled.
	Engine Engine

	pseByEdge map[analysis.Edge]int32
}

// Compile analyses prog under the model and builds the PSE table. The
// oracle decides which callables are native (typically the receiver-side
// interp.Registry).
//
// Handlers whose control flow defeats TargetPath enumeration (an
// exponential number of paths) degrade gracefully: they compile with only
// the synthetic raw PSE, so every event ships unmodulated — correct, just
// unoptimized.
func Compile(prog *mir.Program, classes *mir.ClassTable, oracle analysis.NativeOracle, model costmodel.Model) (*Compiled, error) {
	ug, err := analysis.BuildUnitGraph(prog)
	if err != nil {
		return nil, fmt.Errorf("partition: compile %s: %w", prog.Name, err)
	}
	live := analysis.ComputeLiveness(ug)
	res, err := analysis.Analyze(ug, oracle, model.StaticCost(prog, classes, live), analysis.Options{})
	if err != nil {
		// Degrade to a raw-only handler on path explosion; real
		// analysis failures still surface.
		res, err = analysis.AnalyzeWithoutPaths(ug, oracle)
		if err != nil {
			return nil, fmt.Errorf("partition: compile %s: %w", prog.Name, err)
		}
	}
	c := &Compiled{
		Prog:      prog,
		Classes:   classes,
		Model:     model,
		Analysis:  res,
		pseByEdge: make(map[analysis.Edge]int32, len(res.PSESet)+1),
	}
	rawVars := make([]string, len(prog.Params))
	copy(rawVars, prog.Params)
	c.PSEs = append(c.PSEs, PSE{
		ID:   RawPSEID,
		Edge: analysis.Edge{From: -1, To: 0},
		Vars: rawVars,
		// The raw cut ships the whole event: fully dynamic.
		Static: analysis.CostDesc{Vars: analysis.NewVarSet(prog.Params...)},
	})
	for _, e := range res.PSESet {
		id := int32(len(c.PSEs))
		vars := res.Inter[e].Sorted()
		c.PSEs = append(c.PSEs, PSE{ID: id, Edge: e, Vars: vars, Static: res.Cost[e]})
		c.pseByEdge[e] = id
	}
	c.Code, err = interp.Compile(prog, interp.CompileOptions{Watch: c.watchSet()})
	if err != nil {
		return nil, fmt.Errorf("partition: compile %s: %w", prog.Name, err)
	}
	return c, nil
}

// watchSet collects the edges the runtime hooks must observe: every PSE
// edge (split and profile decisions) and every edge into a non-exit
// StopNode (defensive splits). The set is always non-nil — a nil watch set
// would make interp.Compile watch every edge.
func (c *Compiled) watchSet() []interp.Edge {
	seen := make(map[analysis.Edge]bool)
	watch := make([]interp.Edge, 0, len(c.pseByEdge))
	add := func(e analysis.Edge) {
		if !seen[e] {
			seen[e] = true
			watch = append(watch, interp.Edge{From: e.From, To: e.To})
		}
	}
	for e := range c.pseByEdge {
		add(e)
	}
	ug := c.Analysis.UG
	for _, e := range ug.Edges() {
		if !ug.IsExit(e.To) && c.Analysis.Stops[e.To] {
			add(e)
		}
	}
	return watch
}

// PSEByEdge resolves a UG edge to its PSE id.
func (c *Compiled) PSEByEdge(e analysis.Edge) (int32, bool) {
	id, ok := c.pseByEdge[e]
	return id, ok
}

// PSE returns the PSE with the given id.
func (c *Compiled) PSE(id int32) (*PSE, bool) {
	if id < 0 || int(id) >= len(c.PSEs) {
		return nil, false
	}
	return &c.PSEs[id], true
}

// NumPSEs returns the PSE count including the raw PSE.
func (c *Compiled) NumPSEs() int { return len(c.PSEs) }

// InterAt computes the hand-over set of an arbitrary UG edge (used for
// forced splits at edges that are not PSEs).
func (c *Compiled) InterAt(e analysis.Edge) []string {
	return c.Analysis.Live.Inter(e).Sorted()
}

// ValidateSplitSet checks that the given split ids form a valid partition:
// every path from the start node to a StopNode crosses a flagged edge (or
// the raw PSE is flagged, which always cuts everything).
func (c *Compiled) ValidateSplitSet(ids []int32) error {
	flag := make(map[int32]bool, len(ids))
	for _, id := range ids {
		if _, ok := c.PSE(id); !ok {
			return fmt.Errorf("partition: unknown PSE id %d", id)
		}
		flag[id] = true
	}
	if flag[RawPSEID] {
		return nil
	}
	// DFS from start avoiding flagged edges; reaching a StopNode means
	// the cut leaks.
	ug := c.Analysis.UG
	seen := make(map[int]bool)
	stack := []int{ug.Start}
	seen[ug.Start] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c.Analysis.Stops[u] {
			return fmt.Errorf("partition: split set %v does not cut node %d (%s)", ids, u, ug.NodeString(u))
		}
		for _, v := range ug.G.Succ(u) {
			if id, ok := c.pseByEdge[analysis.Edge{From: u, To: v}]; ok && flag[id] {
				continue
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return nil
}

// SortedIDs returns a copy of ids in ascending order.
func SortedIDs(ids []int32) []int32 {
	out := make([]int32, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
