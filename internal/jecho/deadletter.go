package jecho

import (
	"sync"
	"time"

	"methodpart/internal/wire"
)

// DefaultDeadLetterSize bounds the dead-letter ring when the config leaves
// it zero. Negative disables quarantine entirely.
const DefaultDeadLetterSize = 64

// DeadLetter is one quarantined poison message: an event or continuation
// that failed demodulation (or an inbound frame that failed decoding). The
// original frame bytes are retained so operators can replay or dissect the
// failure offline.
type DeadLetter struct {
	// When is the quarantine time.
	When time.Time
	// Seq is the event sequence number, when the message decoded far
	// enough to know it (0 otherwise).
	Seq uint64
	// PSEID is the split edge the failing message was produced at;
	// UnattributedPSE when the frame was too broken to tell.
	PSEID int32
	// Class is the failure class (decode/restore/runtime/budget).
	Class wire.NackClass
	// Reason is the error text.
	Reason string
	// Frame is a copy of the raw frame bytes as received.
	Frame []byte
}

// UnattributedPSE marks a dead letter whose frame could not be decoded far
// enough to attribute it to a split edge.
const UnattributedPSE int32 = -1

// deadLetterRing is a bounded, concurrency-safe ring of quarantined
// messages. When full, the oldest letter is overwritten — the ring is a
// diagnostic window, not a durable queue — while Total keeps counting.
type deadLetterRing struct {
	mu    sync.Mutex
	buf   []DeadLetter
	next  int
	total uint64
}

// newDeadLetterRing resolves the size knob (0 = default, negative =
// disabled → nil ring; all methods are nil-safe).
func newDeadLetterRing(size int) *deadLetterRing {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = DefaultDeadLetterSize
	}
	return &deadLetterRing{buf: make([]DeadLetter, 0, size)}
}

// add quarantines one letter, copying the frame bytes (the caller's buffer
// may be reused by the transport).
func (r *deadLetterRing) add(dl DeadLetter) {
	if r == nil {
		return
	}
	dl.Frame = append([]byte(nil), dl.Frame...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, dl)
		return
	}
	if cap(r.buf) == 0 {
		return
	}
	r.buf[r.next] = dl
	r.next = (r.next + 1) % cap(r.buf)
}

// Snapshot returns the quarantined letters, oldest first.
func (r *deadLetterRing) Snapshot() []DeadLetter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DeadLetter, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		out = append(out, r.buf...)
		return out
	}
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// drain removes and returns every quarantined letter, oldest first,
// leaving the ring empty (but keeping its capacity). Total is unaffected:
// it counts letters ever quarantined, and a drained letter still was.
func (r *deadLetterRing) drain() []DeadLetter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DeadLetter, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) && cap(r.buf) > 0 {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	clear(r.buf)
	r.buf = r.buf[:0]
	r.next = 0
	return out
}

// Total returns the number of letters ever quarantined (including ones the
// ring has since overwritten).
func (r *deadLetterRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
