// Filtering: sender-side event filtering, the paper's motivating use of the
// filter-path split (§3: "events that are not of type ImageData will be
// filtered out" at the sender). A publisher emits a mixed stream of image
// and telemetry events; the subscriber's handler only displays images. Once
// the plan includes the filter-path PSE, mismatched events die inside the
// modulator and never touch the network.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"methodpart"
	"methodpart/internal/imaging"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pubReg, _ := imaging.Builtins()
	pub, err := methodpart.NewPublisher(methodpart.PublisherConfig{
		Addr:          "127.0.0.1:0",
		Builtins:      pubReg,
		FeedbackEvery: 2,
	})
	if err != nil {
		return err
	}
	defer pub.Close()

	subReg, disp := imaging.Builtins()
	var received atomic.Uint64
	sub, err := methodpart.Subscribe(methodpart.SubscriberConfig{
		Addr:          pub.Addr(),
		Name:          "dashboard",
		Source:        imaging.HandlerSource(96),
		Handler:       imaging.HandlerName,
		CostModel:     "datasize",
		Natives:       []string{"displayImage"},
		Builtins:      subReg,
		Environment:   methodpart.DefaultEnvironment(),
		ReconfigEvery: 2,
		OnResult: func(*methodpart.HandlerResult) {
			received.Add(1)
		},
	})
	if err != nil {
		return err
	}
	defer sub.Close()
	for pub.Subscribers() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Warm-up images converge the plan off "raw" so the filter PSE is
	// active at the sender.
	for i := 0; i < 12; i++ {
		if _, err := pub.Publish(imaging.NewFrame(64, 64, int64(i))); err != nil {
			return err
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Telemetry events are sizeable batched readings; shipping them to a
	// subscriber that will discard them wastes real bandwidth.
	telemetry := func(i int) methodpart.Value {
		batch := make(methodpart.Bytes, 2048)
		for j := range batch {
			batch[j] = byte(i + j)
		}
		obj := methodpart.NewObject("TelemetryBatch")
		obj.Fields["readings"] = batch
		return obj
	}

	mixed := func(n, from int) (images int, err error) {
		for i := 0; i < n; i++ {
			var ev methodpart.Value
			if i%3 == 0 {
				ev = imaging.NewFrame(64, 64, int64(from+i))
				images++
			} else {
				ev = telemetry(from + i)
			}
			if _, err := pub.Publish(ev); err != nil {
				return images, err
			}
			time.Sleep(2 * time.Millisecond)
		}
		return images, nil
	}

	// Phase A lets the optimizer discover that most of the stream is
	// filtered away; phase B measures the converged behaviour.
	imagesA, err := mixed(30, 100)
	if err != nil {
		return err
	}
	time.Sleep(50 * time.Millisecond)
	beforeB := received.Load()
	framesBeforeB := len(disp.Frames)
	imagesB, err := mixed(30, 200)
	if err != nil {
		return err
	}

	deadline := time.Now().Add(5 * time.Second)
	for len(disp.Frames) < framesBeforeB+imagesB && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	gotB := received.Load() - beforeB
	fmt.Printf("phase A (converging): %d events, %d images\n", 30, imagesA)
	fmt.Printf("phase B (converged):  %d events, %d images, %d messages crossed the wire\n",
		30, imagesB, gotB)
	fmt.Printf("frames displayed in total: %d\n", len(disp.Frames))
	if gotB > uint64(imagesB)+2 {
		return fmt.Errorf("sender-side filtering not effective: %d of 30 phase-B events crossed (want ~%d)", gotB, imagesB)
	}
	return nil
}
