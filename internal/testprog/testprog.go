// Package testprog provides the shared handler programs used across test
// suites and benchmarks, including the paper's push() worked example
// (Fig. 4) transliterated to MIR.
package testprog

import (
	"fmt"

	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
	"methodpart/internal/mir/interp"
)

// PushSource is the paper's push() handler (Fig. 4 / Appendix A): check the
// event is an ImageData, resize it to 100x100, display it via a native
// method. Node indices (0-based):
//
//	0: z0 = instanceof event ImageData   (paper node 3)
//	1: ifnot z0 goto done                (paper node 4)
//	2: r2 = cast event ImageData         (paper node 5)
//	3: r3 = new ImageData                (paper node 6)
//	4: call initResize r3 r2             (paper node 7, the <init> transform)
//	5: r4 = move r3                      (paper node 8)
//	6: call displayImage r4              (paper node 9, native)
//	7: done: return                      (paper node 10)
const PushSource = `
class ImageData {
  width int
  height int
  buff bytes
}

func push(event) {
  z0 = instanceof event ImageData
  ifnot z0 goto done
  r2 = cast event ImageData
  r3 = new ImageData
  call initResize r3 r2
  r4 = move r3
  call displayImage r4
done:
  return
}
`

// PushUnit assembles PushSource.
func PushUnit() *asm.Unit { return asm.MustParse(PushSource) }

// NewImageData builds an ImageData object with a w*h single-byte-depth
// buffer filled with a simple gradient.
func NewImageData(w, h int) *mir.Object {
	obj := mir.NewObject("ImageData")
	obj.Fields["width"] = mir.Int(int64(w))
	obj.Fields["height"] = mir.Int(int64(h))
	buff := make(mir.Bytes, w*h)
	for i := range buff {
		buff[i] = byte(i)
	}
	obj.Fields["buff"] = buff
	return obj
}

// PushBuiltins returns a registry with initResize (movable) and displayImage
// (native). Displayed images are appended to the returned slice pointer so
// tests can observe receiver-side effects.
func PushBuiltins() (*interp.Registry, *[]*mir.Object) {
	displayed := &[]*mir.Object{}
	reg := interp.NewRegistry()
	reg.MustRegister(interp.Builtin{
		Name: "initResize",
		Fn: func(env *interp.Env, args []mir.Value) (mir.Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("initResize wants 2 args, got %d", len(args))
			}
			dst, ok := args[0].(*mir.Object)
			if !ok {
				return nil, fmt.Errorf("initResize: dst is %s", args[0].Kind())
			}
			src, ok := args[1].(*mir.Object)
			if !ok {
				return nil, fmt.Errorf("initResize: src is %s", args[1].Kind())
			}
			return mir.Null{}, resizeInto(dst, src, 100, 100)
		},
		Cost: func(args []mir.Value) int64 {
			// Cost proportional to the output pixel count.
			return 100 * 100
		},
	})
	reg.MustRegister(interp.Builtin{
		Name:   "displayImage",
		Native: true,
		Fn: func(env *interp.Env, args []mir.Value) (mir.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("displayImage wants 1 arg, got %d", len(args))
			}
			obj, ok := args[0].(*mir.Object)
			if !ok {
				return nil, fmt.Errorf("displayImage: arg is %s", args[0].Kind())
			}
			*displayed = append(*displayed, obj)
			return mir.Null{}, nil
		},
	})
	return reg, displayed
}

// resizeInto nearest-neighbour-resizes src into dst at w*h.
func resizeInto(dst, src *mir.Object, w, h int) error {
	sw, ok := src.Fields["width"].(mir.Int)
	if !ok {
		return fmt.Errorf("resize: source width is %v", src.Fields["width"])
	}
	sh, ok := src.Fields["height"].(mir.Int)
	if !ok {
		return fmt.Errorf("resize: source height is %v", src.Fields["height"])
	}
	sbuf, ok := src.Fields["buff"].(mir.Bytes)
	if !ok {
		return fmt.Errorf("resize: source buff is %v", src.Fields["buff"])
	}
	out := make(mir.Bytes, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx := x * int(sw) / w
			sy := y * int(sh) / h
			idx := sy*int(sw) + sx
			if idx >= 0 && idx < len(sbuf) {
				out[y*w+x] = sbuf[idx]
			}
		}
	}
	dst.Fields["width"] = mir.Int(int64(w))
	dst.Fields["height"] = mir.Int(int64(h))
	dst.Fields["buff"] = out
	return nil
}

// LoopSource is a handler with a loop-carried dependence: the accumulator
// forces all loop-body edges to infinite cost under the convexity rule.
const LoopSource = `
func sum(event) {
  n = len event
  i = const 0
  acc = const 0
loop:
  done = ge i n
  if done goto finish
  v = arrget event i
  acc = add acc v
  one = const 1
  i = add i one
  goto loop
finish:
  call emit acc
  return
}
`

// LoopBuiltins returns a registry for LoopSource with a native emit sink.
func LoopBuiltins() (*interp.Registry, *[]mir.Value) {
	emitted := &[]mir.Value{}
	reg := interp.NewRegistry()
	reg.MustRegister(interp.Builtin{
		Name:   "emit",
		Native: true,
		Fn: func(env *interp.Env, args []mir.Value) (mir.Value, error) {
			*emitted = append(*emitted, args[0])
			return mir.Null{}, nil
		},
	})
	return reg, emitted
}
