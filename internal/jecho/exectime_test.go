package jecho_test

import (
	"testing"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/jecho"
	"methodpart/internal/sensor"
)

// TestExecTimeAdaptationOverTCP closes the loop for the §4.2 model on real
// wire: a sensor chain subscribed with the exec-time model and a
// receiver-speed-poor environment must converge to cuts that leave most of
// the chain at the (fast) sender.
func TestExecTimeAdaptationOverTCP(t *testing.T) {
	const stages = 10
	pubReg, _ := sensor.Builtins(stages)
	pub, err := jecho.NewPublisher(jecho.PublisherConfig{
		Addr:          "127.0.0.1:0",
		Builtins:      pubReg,
		FeedbackEvery: 2,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	subReg, sink := sensor.Builtins(stages)
	res := &results{}
	sub, err := jecho.Subscribe(jecho.SubscriberConfig{
		Addr:      pub.Addr(),
		Name:      "slow-consumer",
		Source:    sensor.HandlerSource(stages),
		Handler:   sensor.HandlerName,
		CostModel: costmodel.ExecTimeName,
		Natives:   []string{"deliver"},
		Builtins:  subReg,
		Environment: costmodel.Environment{
			SenderSpeed:   10000, // fast producer
			ReceiverSpeed: 500,   // slow consumer
			Bandwidth:     1e6,
			LatencyMS:     0.1,
		},
		OnResult:      res.add,
		ReconfigEvery: 2,
		DiffThreshold: 0.1,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	deadline := time.Now().Add(5 * time.Second)
	for pub.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}

	const frames = 40
	for i := 0; i < frames; i++ {
		if _, err := pub.Publish(sensor.NewFrame(int64(i), 512)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitCount(t, res, frames)
	if len(sink.Outputs) != frames {
		t.Fatalf("delivered %d frames", len(sink.Outputs))
	}

	// The compiled handler has one PSE per stage boundary; with a 20x
	// faster sender the steady-state cut must sit in the later half of
	// the chain (sender does most stages).
	c := sub.Compiled()
	maxTo := 0
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		p, _ := c.PSE(id)
		if p.Edge.To > maxTo {
			maxTo = p.Edge.To
		}
	}
	pses := res.splitPSEs()
	late := 0
	for _, id := range pses[frames-10:] {
		if id <= 0 {
			continue
		}
		p, _ := c.PSE(id)
		if float64(p.Edge.To) > 0.5*float64(maxTo) {
			late++
		}
	}
	if late < 8 {
		t.Errorf("exec-time adaptation did not shift work to the fast sender: %v", pses)
	}
}
