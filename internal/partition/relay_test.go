package partition_test

import (
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/sensor"
	"methodpart/internal/testprog"
	"methodpart/internal/wire"
)

// chainFixture compiles the sensor handler and builds a
// sender → relay → receiver chain.
type chainFixture struct {
	c     *partition.Compiled
	mod   *partition.Modulator
	relay *partition.Relay
	demod *partition.Demodulator
	sink  *sensor.Sink
}

const chainStages = 8

func newChain(t *testing.T) *chainFixture {
	t.Helper()
	unit := sensor.HandlerUnit(chainStages)
	prog, _ := unit.Program(sensor.HandlerName)
	classes, err := unit.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	oracleReg, _ := sensor.Builtins(chainStages)
	c, err := partition.Compile(prog, classes, oracleReg, costmodel.NewExecTime())
	if err != nil {
		t.Fatal(err)
	}
	mkEnv := func() (*interp.Env, *sensor.Sink) {
		reg, sink := sensor.Builtins(chainStages)
		return interp.NewEnv(classes, reg), sink
	}
	senderEnv, _ := mkEnv()
	relayEnv, _ := mkEnv()
	recvEnv, sink := mkEnv()
	return &chainFixture{
		c:     c,
		mod:   partition.NewModulator(c, senderEnv),
		relay: partition.NewRelay(c, relayEnv),
		demod: partition.NewDemodulator(c, recvEnv),
		sink:  sink,
	}
}

// stagePSE returns the PSE id that cuts after stage k.
func stagePSE(t *testing.T, c *partition.Compiled, k int) int32 {
	t.Helper()
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		p, _ := c.PSE(id)
		if p.Edge.From == 3+k && p.Edge.To == 4+k && len(p.Vars) > 0 {
			return id
		}
	}
	t.Fatalf("no PSE after stage %d", k)
	return -1
}

// filterPSE returns the empty-hand-over filter-path PSE.
func filterPSE(t *testing.T, c *partition.Compiled) int32 {
	t.Helper()
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		p, _ := c.PSE(id)
		if len(p.Vars) == 0 {
			return id
		}
	}
	t.Fatal("no filter PSE")
	return -1
}

// wireHop marshals+unmarshals an output to simulate a real hop.
func wireHop(t *testing.T, out *partition.Output) any {
	t.Helper()
	var msg any
	if out.Raw != nil {
		msg = out.Raw
	} else {
		msg = out.Cont
	}
	data, err := wire.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := wire.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// TestThreeWayPartition runs sender stages 1..2, relay stages 3..5,
// receiver the rest, and checks the result equals an unsplit run.
func TestThreeWayPartition(t *testing.T) {
	f := newChain(t)
	filter := filterPSE(t, f.c)

	modPlan, err := partition.NewPlan(f.c.NumPSEs(), 1, []int32{stagePSE(t, f.c, 2), filter}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.mod.SetPlan(modPlan)
	relayPlan, err := partition.NewPlan(f.c.NumPSEs(), 1, []int32{stagePSE(t, f.c, 5), filter}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.relay.SetPlan(relayPlan)

	frame := sensor.NewFrame(7, 256)
	// Reference: unsplit execution.
	refReg, refSink := sensor.Builtins(chainStages)
	refEnv := interp.NewEnv(f.c.Classes, refReg)
	machine, err := interp.NewMachine(refEnv, f.c.Prog, []mir.Value{frame})
	if err != nil {
		t.Fatal(err)
	}
	refOut, err := machine.Run()
	if err != nil {
		t.Fatal(err)
	}

	out1, err := f.mod.Process(sensor.NewFrame(7, 256))
	if err != nil {
		t.Fatal(err)
	}
	if out1.Cont == nil {
		t.Fatalf("sender did not split: %+v", out1)
	}
	if got := out1.Cont.ResumeNode; got != int32(4+2) {
		t.Fatalf("sender resume node = %d, want %d", got, 4+2)
	}

	out2, err := f.relay.Process(wireHop(t, out1))
	if err != nil {
		t.Fatal(err)
	}
	if out2.Cont == nil {
		t.Fatalf("relay did not split: %+v", out2)
	}
	if got := out2.Cont.ResumeNode; got != int32(4+5) {
		t.Fatalf("relay resume node = %d, want %d", got, 4+5)
	}
	// Cumulative work carried forward.
	if out2.Cont.ModWork <= out1.Cont.ModWork {
		t.Fatalf("relay did not accumulate work: %d then %d", out1.Cont.ModWork, out2.Cont.ModWork)
	}

	res, err := f.demod.Process(wireHop(t, out2))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.sink.Outputs) != 1 {
		t.Fatalf("sink outputs = %d", len(f.sink.Outputs))
	}
	if !mir.Equal(f.sink.Outputs[0], (*refSink).Outputs[0]) {
		t.Error("three-way partitioned output differs from unsplit run")
	}
	// Total work conserved: sender + relay + receiver == whole.
	total := out1.ModWork + out2.ModWork + res.DemodWork
	if total != refOut.Work {
		t.Errorf("work: %d split vs %d whole", total, refOut.Work)
	}
}

// TestRelayPassThrough: under its initial plan the relay forwards messages
// untouched.
func TestRelayPassThrough(t *testing.T) {
	f := newChain(t)
	// Sender splits after stage 4.
	plan, err := partition.NewPlan(f.c.NumPSEs(), 1, []int32{stagePSE(t, f.c, 4), filterPSE(t, f.c)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.mod.SetPlan(plan)
	out1, err := f.mod.Process(sensor.NewFrame(1, 64))
	if err != nil {
		t.Fatal(err)
	}
	out2, err := f.relay.Process(wireHop(t, out1))
	if err != nil {
		t.Fatal(err)
	}
	if out2.ModWork != 0 {
		t.Fatalf("pass-through relay did work: %d", out2.ModWork)
	}
	if out2.Cont.ResumeNode != out1.Cont.ResumeNode {
		t.Fatalf("pass-through moved the resume node: %d -> %d", out1.Cont.ResumeNode, out2.Cont.ResumeNode)
	}
	if _, err := f.demod.Process(wireHop(t, out2)); err != nil {
		t.Fatal(err)
	}
	if len(f.sink.Outputs) != 1 {
		t.Fatalf("sink outputs = %d", len(f.sink.Outputs))
	}
}

// TestRelayModulatesRawEvents: a relay given raw events acts as a
// third-party modulator (broker-style derivation).
func TestRelayModulatesRawEvents(t *testing.T) {
	f := newChain(t)
	plan, err := partition.NewPlan(f.c.NumPSEs(), 1, []int32{stagePSE(t, f.c, 3), filterPSE(t, f.c)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.relay.SetPlan(plan)
	raw := &wire.Raw{Handler: sensor.HandlerName, Seq: 1, Event: sensor.NewFrame(2, 64)}
	out, err := f.relay.Process(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cont == nil || out.Cont.ResumeNode != int32(4+3) {
		t.Fatalf("relay raw modulation: %+v", out)
	}
	if _, err := f.demod.Process(wireHop(t, out)); err != nil {
		t.Fatal(err)
	}
}

// TestRelayNeverRunsStopNodes: even when the incoming continuation resumes
// right before the native sink and the relay plan flags nothing useful, the
// relay must pass through rather than execute the StopNode.
func TestRelayNeverRunsStopNodes(t *testing.T) {
	f := newChain(t)
	// Sender splits at the last stage boundary; the resume node is the
	// final stage call followed by the native deliver.
	last := stagePSE(t, f.c, chainStages)
	plan, err := partition.NewPlan(f.c.NumPSEs(), 1, []int32{last, filterPSE(t, f.c)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.mod.SetPlan(plan)
	// Relay flags every PSE — none remain downstream of the resume node,
	// so the forced-split safety must kick in before the StopNode.
	all := make([]int32, 0, f.c.NumPSEs()-1)
	for id := int32(1); id < int32(f.c.NumPSEs()); id++ {
		all = append(all, id)
	}
	rplan, err := partition.NewPlan(f.c.NumPSEs(), 1, all, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.relay.SetPlan(rplan)

	out1, err := f.mod.Process(sensor.NewFrame(3, 64))
	if err != nil {
		t.Fatal(err)
	}
	out2, err := f.relay.Process(wireHop(t, out1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.demod.Process(wireHop(t, out2)); err != nil {
		t.Fatal(err)
	}
	if len(f.sink.Outputs) != 1 {
		t.Fatalf("sink outputs = %d (StopNode must run exactly once, at the receiver)", len(f.sink.Outputs))
	}
}

// TestRelayWrongHandlerRejected guards routing.
func TestRelayWrongHandlerRejected(t *testing.T) {
	f := newChain(t)
	if _, err := f.relay.Process(&wire.Raw{Handler: "other", Event: mir.Int(1)}); err == nil {
		t.Error("wrong-handler raw accepted")
	}
	if _, err := f.relay.Process(&wire.Continuation{Handler: "other"}); err == nil {
		t.Error("wrong-handler continuation accepted")
	}
	if _, err := f.relay.Process(&wire.Continuation{Handler: sensor.HandlerName, ResumeNode: 999}); err == nil {
		t.Error("out-of-range resume accepted")
	}
	if _, err := f.relay.Process(42); err == nil {
		t.Error("non-message accepted")
	}
}

// TestRelayOnPushExample: three-way split of the paper's push handler via
// assembled source, checking resume-node monotonicity.
func TestRelayOnPushExample(t *testing.T) {
	u := asm.MustParse(testprog.PushSource)
	prog, _ := u.Program("push")
	classes, _ := u.ClassTable()
	oracle, _ := testprog.PushBuiltins()
	c, err := partition.Compile(prog, classes, oracle, costmodel.NewDataSize())
	if err != nil {
		t.Fatal(err)
	}
	sendReg, _ := testprog.PushBuiltins()
	relayReg, _ := testprog.PushBuiltins()
	recvReg, displayed := testprog.PushBuiltins()
	mod := partition.NewModulator(c, interp.NewEnv(classes, sendReg))
	relay := partition.NewRelay(c, interp.NewEnv(classes, relayReg))
	demod := partition.NewDemodulator(c, interp.NewEnv(classes, recvReg))

	// Sender: earliest cut; relay: post-transform cut.
	var filter, pre, post int32 = -1, -1, -1
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		p, _ := c.PSE(id)
		switch {
		case len(p.Vars) == 0:
			filter = id
		case pre < 0:
			pre = id
		default:
			post = id
		}
	}
	mp, _ := partition.NewPlan(c.NumPSEs(), 1, []int32{pre, filter}, nil)
	mod.SetPlan(mp)
	rp, _ := partition.NewPlan(c.NumPSEs(), 1, []int32{post, filter}, nil)
	relay.SetPlan(rp)

	out1, err := mod.Process(testprog.NewImageData(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	out2, err := relay.Process(wireHop(t, out1))
	if err != nil {
		t.Fatal(err)
	}
	if out2.Cont.ResumeNode <= out1.Cont.ResumeNode {
		t.Fatalf("relay resume %d not past sender resume %d", out2.Cont.ResumeNode, out1.Cont.ResumeNode)
	}
	if _, err := demod.Process(wireHop(t, out2)); err != nil {
		t.Fatal(err)
	}
	if len(*displayed) != 1 || (*displayed)[0].Fields["width"] != mir.Int(100) {
		t.Fatalf("display = %v", *displayed)
	}
}
