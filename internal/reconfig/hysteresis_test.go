package reconfig_test

import (
	"fmt"
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/partition"
	"methodpart/internal/reconfig"
)

// hystFixture is the slow-sender image fork of TestPoliciesPickDifferentPoints:
// under LatencyFirst, the pre-resize cut wins on a fast link and the
// post-resize cut wins once bandwidth collapses — the flip the hysteresis
// tests exercise.
type hystFixture struct {
	c             *partition.Compiled
	preID, postID int32
	stats         map[int32]costmodel.Stat
}

func newHystFixture(t *testing.T) hystFixture {
	t.Helper()
	c := compilePush(t, costmodel.NewDataSize())
	f := hystFixture{
		c:      c,
		preID:  pse(t, c, 2, 3),
		postID: pse(t, c, 4, 5),
	}
	f.stats = map[int32]costmodel.Stat{
		partition.RawPSEID: {Count: 100, Prob: 1, Bytes: 45000, DemodWork: 50000},
		f.preID:            {Count: 100, Prob: 1, Bytes: 40000, ModWork: 100, DemodWork: 49900},
		f.postID:           {Count: 100, Prob: 1, Bytes: 10000, ModWork: 45000, DemodWork: 5000},
		pse(t, c, 1, 7):    {Count: 100, Prob: 0},
	}
	return f
}

func (f hystFixture) env(bandwidth float64) costmodel.Environment {
	return costmodel.Environment{SenderSpeed: 100, ReceiverSpeed: 1000, Bandwidth: bandwidth, LatencyMS: 1}
}

func (f hystFixture) newUnit(margin float64, confirmations int) *reconfig.Unit {
	u := reconfig.NewUnit(f.c, f.env(1000))
	u.Policy = reconfig.LatencyFirst
	u.FlipMargin = margin
	u.FlipConfirmations = confirmations
	return u
}

func (f hystFixture) selectCut(t *testing.T, u *reconfig.Unit) []int32 {
	t.Helper()
	plan, _, err := u.SelectPlan(f.stats)
	if err != nil {
		t.Fatal(err)
	}
	return plan.SplitIDs()
}

// TestHysteresisRequiresConsecutiveConfirmations: after the link degrades,
// the challenger must win K consecutive selections before the plan flips;
// the suppressed selections keep the incumbent and count as suppressed,
// not as flips.
func TestHysteresisRequiresConsecutiveConfirmations(t *testing.T) {
	f := newHystFixture(t)
	u := f.newUnit(0.1, 3)

	// Fast link: latency-first picks the pre-resize cut as incumbent.
	if cut := f.selectCut(t, u); !contains(cut, f.preID) {
		t.Fatalf("fast link should pick the pre cut, got %v", cut)
	}

	// Link collapses: the post cut now wins by far more than 10%, but two
	// selections must still hold the incumbent.
	u.SetEnvironment(f.env(50))
	for i := 1; i <= 2; i++ {
		if cut := f.selectCut(t, u); !contains(cut, f.preID) {
			t.Fatalf("selection %d after degradation flipped early: %v", i, cut)
		}
		ex := u.LastExplanation()
		if !ex.Suppressed {
			t.Fatalf("selection %d should be marked suppressed", i)
		}
		if ex.PendingStreak != i {
			t.Fatalf("selection %d: pending streak %d, want %d", i, ex.PendingStreak, i)
		}
		if fmt.Sprint(ex.PendingCut) == fmt.Sprint(ex.Cut) {
			t.Fatalf("pending cut %v should be the challenger, not the selected incumbent", ex.PendingCut)
		}
	}
	if got := u.FlipsSuppressed(); got != 2 {
		t.Fatalf("FlipsSuppressed = %d, want 2", got)
	}
	if got := u.PolicyFlips(); got != 0 {
		t.Fatalf("suppressed selections counted as flips: %d", got)
	}

	// Third consecutive win: the flip lands, exactly once.
	if cut := f.selectCut(t, u); !contains(cut, f.postID) {
		t.Fatalf("third confirmation should flip to the post cut, got %v", cut)
	}
	ex := u.LastExplanation()
	if ex.Suppressed || ex.PendingStreak != 0 {
		t.Fatalf("flip selection should clear hysteresis state: %+v", ex)
	}
	if got := u.PolicyFlips(); got != 1 {
		t.Fatalf("PolicyFlips = %d, want exactly 1", got)
	}
}

// TestHysteresisTransientJitterNeverFlips: dips shorter than the
// confirmation window reset the streak when the link recovers, so jitter
// is suppressed indefinitely.
func TestHysteresisTransientJitterNeverFlips(t *testing.T) {
	f := newHystFixture(t)
	u := f.newUnit(0.1, 3)
	f.selectCut(t, u) // incumbent: pre

	for dip := 0; dip < 5; dip++ {
		u.SetEnvironment(f.env(50)) // 2-selection dip < 3 confirmations
		for i := 0; i < 2; i++ {
			if cut := f.selectCut(t, u); !contains(cut, f.preID) {
				t.Fatalf("dip %d: jitter flipped the plan: %v", dip, cut)
			}
		}
		u.SetEnvironment(f.env(1000)) // recovery re-confirms the incumbent
		if cut := f.selectCut(t, u); !contains(cut, f.preID) {
			t.Fatalf("dip %d: recovery lost the incumbent: %v", dip, cut)
		}
		if ex := u.LastExplanation(); ex.PendingStreak != 0 {
			t.Fatalf("dip %d: recovery did not reset the streak: %d", dip, ex.PendingStreak)
		}
	}
	if got := u.PolicyFlips(); got != 0 {
		t.Fatalf("jitter produced %d flips, want 0", got)
	}
	if got := u.FlipsSuppressed(); got != 10 {
		t.Fatalf("FlipsSuppressed = %d, want 10 (2 per dip)", got)
	}
}

// TestHysteresisMarginBlocksMarginalWinner: a challenger that is better
// but by less than the margin never starts a streak and never flips.
func TestHysteresisMarginBlocksMarginalWinner(t *testing.T) {
	f := newHystFixture(t)
	u := f.newUnit(0.1, 3)
	f.selectCut(t, u) // incumbent: pre

	// At 70 B/ms the post cut is ~4% faster — better, but under the 10%
	// margin. Verify the premise with a fresh (hysteresis-free) unit.
	probe := f.newUnit(0, 0)
	probe.SetEnvironment(f.env(70))
	if cut := f.selectCut(t, probe); !contains(cut, f.postID) {
		t.Fatalf("premise broken: fresh unit at 70 B/ms should pick post, got %v", cut)
	}

	u.SetEnvironment(f.env(70))
	for i := 0; i < 6; i++ {
		if cut := f.selectCut(t, u); !contains(cut, f.preID) {
			t.Fatalf("marginal winner flipped the plan on selection %d: %v", i, cut)
		}
		if ex := u.LastExplanation(); ex.PendingStreak != 0 {
			t.Fatalf("sub-margin challenger built a streak: %d", ex.PendingStreak)
		}
	}
	if got, want := u.FlipsSuppressed(), uint64(6); got != want {
		t.Fatalf("FlipsSuppressed = %d, want %d", got, want)
	}
	if got := u.PolicyFlips(); got != 0 {
		t.Fatalf("PolicyFlips = %d, want 0", got)
	}
}

// TestHysteresisDisabledByDefault: the zero-value FlipMargin preserves the
// old behavior — the first selection after the environment changes flips.
func TestHysteresisDisabledByDefault(t *testing.T) {
	f := newHystFixture(t)
	u := f.newUnit(0, 0)
	f.selectCut(t, u)
	u.SetEnvironment(f.env(50))
	if cut := f.selectCut(t, u); !contains(cut, f.postID) {
		t.Fatalf("without hysteresis the flip should be immediate, got %v", cut)
	}
	if got := u.PolicyFlips(); got != 1 {
		t.Fatalf("PolicyFlips = %d, want 1", got)
	}
	if got := u.FlipsSuppressed(); got != 0 {
		t.Fatalf("FlipsSuppressed = %d, want 0", got)
	}
}

// TestHysteresisIncumbentLeavesFront: when the incumbent cut is priced off
// the front (breaker trips its PSE), holding it would keep a non-viable
// plan — the flip must be immediate despite hysteresis.
func TestHysteresisIncumbentLeavesFront(t *testing.T) {
	f := newHystFixture(t)
	u := f.newUnit(0.1, 3)
	if cut := f.selectCut(t, u); !contains(cut, f.preID) {
		t.Fatalf("setup: want pre incumbent, got %v", cut)
	}
	u.SetTripped([]int32{f.preID})
	cut := f.selectCut(t, u)
	if contains(cut, f.preID) {
		t.Fatalf("tripped incumbent still selected: %v", cut)
	}
	if ex := u.LastExplanation(); ex.Suppressed {
		t.Fatal("forced flip off a dead incumbent must not read as suppressed")
	}
	if got := u.PolicyFlips(); got != 1 {
		t.Fatalf("PolicyFlips = %d, want 1", got)
	}
}

// TestPolicyFlipsCountsOnlyPlanChanges pins the flip-counter semantics the
// hysteresis accounting depends on: repeated selections of the same cut —
// whatever happens to front ordering or chosen index — must not count, and
// each genuine cut change counts exactly once.
func TestPolicyFlipsCountsOnlyPlanChanges(t *testing.T) {
	f := newHystFixture(t)
	u := f.newUnit(0, 0)

	// Identical inputs, many selections: zero flips.
	for i := 0; i < 5; i++ {
		f.selectCut(t, u)
	}
	if got := u.PolicyFlips(); got != 0 {
		t.Fatalf("stable selections counted %d flips", got)
	}
	// Perturb stats in ways that keep the same winning cut (jitter the
	// losing cut's bytes): front vectors change, the chosen cut must not.
	base := f.stats[f.postID]
	for i := 0; i < 4; i++ {
		st := base
		st.Bytes += float64(i * 100)
		f.stats[f.postID] = st
		if cut := f.selectCut(t, u); !contains(cut, f.preID) {
			t.Fatalf("perturbation %d changed the winner: %v", i, cut)
		}
	}
	f.stats[f.postID] = base
	if got := u.PolicyFlips(); got != 0 {
		t.Fatalf("same-cut selections under perturbed fronts counted %d flips", got)
	}
	// One genuine change: exactly one flip.
	u.SetEnvironment(f.env(50))
	f.selectCut(t, u)
	f.selectCut(t, u)
	if got := u.PolicyFlips(); got != 1 {
		t.Fatalf("PolicyFlips = %d, want exactly 1 after one plan change", got)
	}
}

// TestSanitizedEnvironmentInstalled: degenerate environments are clamped
// at the unit's boundary, so a broken measurement can never make every
// plan look free or poison dominance.
func TestSanitizedEnvironmentInstalled(t *testing.T) {
	f := newHystFixture(t)
	u := reconfig.NewUnit(f.c, costmodel.Environment{LatencyMS: -1})
	if env := u.Environment(); env != costmodel.DefaultEnvironment() {
		t.Fatalf("NewUnit did not sanitize: %+v", env)
	}
	u.SetEnvironment(costmodel.Environment{SenderSpeed: -1, Bandwidth: 0, LatencyMS: -5})
	env := u.Environment()
	if env.SenderSpeed <= 0 || env.Bandwidth <= 0 || env.LatencyMS < 0 {
		t.Fatalf("SetEnvironment did not sanitize: %+v", env)
	}
	if _, _, err := u.SelectPlan(f.stats); err != nil {
		t.Fatal(err)
	}
	for _, p := range u.LastExplanation().Front {
		if p.Vec.LatencyMS <= 0 {
			t.Fatalf("front point priced with degenerate env: %+v", p)
		}
	}
}
