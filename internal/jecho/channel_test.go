package jecho_test

import (
	"testing"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
)

// TestChannelRouting: PublishOn reaches only the named channel's
// subscriptions; Publish broadcasts to all.
func TestChannelRouting(t *testing.T) {
	pub := newTestPublisher(t)

	mk := func(name, channel string) *results {
		reg, _ := imaging.Builtins()
		res := &results{}
		sub, err := jecho.Subscribe(jecho.SubscriberConfig{
			Addr:        pub.Addr(),
			Name:        name,
			Channel:     channel,
			Source:      imaging.HandlerSource(64),
			Handler:     imaging.HandlerName,
			CostModel:   costmodel.DataSizeName,
			Natives:     []string{"displayImage"},
			Builtins:    reg,
			Environment: costmodel.DefaultEnvironment(),
			OnResult:    res.add,
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = sub.Close() })
		return res
	}
	frontRes := mk("front", "camera/front")
	rearRes := mk("rear", "camera/rear")

	deadline := time.Now().Add(5 * time.Second)
	for pub.Subscribers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("subscriptions never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// Channel-scoped publishes.
	for i := 0; i < 5; i++ {
		n, err := pub.PublishOn("camera/front", imaging.NewFrame(32, 32, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("front publish reached %d", n)
		}
	}
	n, err := pub.PublishOn("camera/rear", imaging.NewFrame(32, 32, 99))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("rear publish reached %d", n)
	}
	// Broadcast reaches both.
	n, err = pub.Publish(imaging.NewFrame(32, 32, 100))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("broadcast reached %d", n)
	}
	// Publish on a channel nobody subscribed to.
	n, err = pub.PublishOn("camera/none", imaging.NewFrame(32, 32, 101))
	if err != nil || n != 0 {
		t.Fatalf("ghost channel: n=%d err=%v", n, err)
	}

	waitCount(t, frontRes, 6) // 5 scoped + 1 broadcast
	waitCount(t, rearRes, 2)  // 1 scoped + 1 broadcast
	// Give any misrouted messages a moment to show up.
	time.Sleep(20 * time.Millisecond)
	if frontRes.count() != 6 || rearRes.count() != 2 {
		t.Fatalf("front=%d rear=%d, want 6/2", frontRes.count(), rearRes.count())
	}
}
