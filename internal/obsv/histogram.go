package obsv

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram safe for concurrent use. The
// bucket layout is chosen at construction and never changes, so Observe
// is allocation-free: a linear scan over a small bounds slice plus two
// atomic adds. Hot paths (one observation per published event) can use it
// unconditionally.
//
// Buckets follow the Prometheus convention: bounds are inclusive upper
// edges, and exposition emits cumulative counts with a trailing +Inf
// bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomicFloat
}

// atomicFloat is an atomic float64 accumulator (CAS on the bit pattern).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, newBits) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// NewHistogram creates a histogram with the given inclusive upper bounds,
// which must be sorted ascending. The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Allocation-free.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram, with
// per-bucket (non-cumulative) counts aligned to Bounds plus a final
// overflow bucket.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bucket edges.
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; Counts[i] is the number of
	// observations in (Bounds[i-1], Bounds[i]], and the last entry counts
	// observations above every bound.
	Counts []uint64 `json:"counts"`
	// Count is the total observation count.
	Count uint64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
}

// Snapshot copies the histogram state. Counters are read individually,
// so a snapshot taken under concurrent Observe calls may be skewed by
// the observations that land mid-read — bounded by the number of
// concurrent writers.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Standard bucket layouts. Latency histograms observe seconds (the
// Prometheus base unit); byte histograms observe wire sizes; work
// histograms observe interpreter work units.
var (
	// LatencyBuckets spans 1µs to ~8.4s in powers of two — modulation and
	// demodulation latencies.
	LatencyBuckets = powersOf(1e-6, 2, 24)
	// SizeBuckets spans 64B to 16MiB in powers of four — continuation and
	// raw-event wire sizes.
	SizeBuckets = powersOf(64, 4, 10)
	// WorkBuckets spans 16 to ~4.3e9 work units in powers of four —
	// interpreter work per message.
	WorkBuckets = powersOf(16, 4, 15)
)

// powersOf returns n bounds starting at base, each scale times the last.
func powersOf(base, scale float64, n int) []float64 {
	out := make([]float64, n)
	v := base
	for i := range out {
		out[i] = v
		v *= scale
	}
	return out
}
