package main

import (
	"fmt"
	"io"
	"strings"

	"methodpart/internal/analysis"
)

// writeDot renders the analysed Unit Graph as Graphviz DOT: StopNodes are
// shaded, PSE edges are bold red with their hand-over sets as labels, and
// convexity-protected (infinite) edges are dashed grey.
func writeDot(w io.Writer, res *analysis.Result) {
	ug := res.UG
	pses := make(map[analysis.Edge]bool, len(res.PSESet))
	for _, e := range res.PSESet {
		pses[e] = true
	}

	fmt.Fprintf(w, "digraph %q {\n", ug.Prog.Name)
	fmt.Fprintln(w, "  node [fontname=\"monospace\" shape=box];")
	fmt.Fprintln(w, "  edge [fontname=\"monospace\"];")
	for i := 0; i <= ug.Exit; i++ {
		label := fmt.Sprintf("%d: %s", i, ug.NodeString(i))
		attrs := ""
		if res.Stops[i] {
			attrs = " style=filled fillcolor=lightgrey"
		}
		if i == ug.Start {
			attrs += " penwidth=2"
		}
		fmt.Fprintf(w, "  n%d [label=%q%s];\n", i, label, attrs)
	}
	for _, e := range ug.Edges() {
		switch {
		case pses[e]:
			fmt.Fprintf(w, "  n%d -> n%d [color=red penwidth=2 label=%q];\n",
				e.From, e.To, "PSE "+strings.Join(res.Inter[e].Sorted(), ","))
		case res.Infinite[e]:
			fmt.Fprintf(w, "  n%d -> n%d [style=dashed color=grey label=\"inf\"];\n", e.From, e.To)
		default:
			fmt.Fprintf(w, "  n%d -> n%d;\n", e.From, e.To)
		}
	}
	fmt.Fprintln(w, "}")
}
