package bench

import (
	"os"
	"testing"
)

// TestDriftExperiment is the acceptance test for the measurement loop: on a
// link that degrades mid-run, the static baseline keeps the stale split,
// live estimation flips to the degraded link's optimum (and wins latency),
// and under transient jitter hysteresis suppresses flips without a plan
// change.
func TestDriftExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("drift experiment is a full three-arm simulation")
	}
	cmp, err := RunDrift(DefaultDriftConfig())
	if err != nil {
		t.Fatal(err)
	}
	WriteDrift(os.Stderr, cmp)

	static, live, jitter := cmp.Arms[0], cmp.Arms[1], cmp.Arms[2]
	if !cmp.LiveFlipped {
		t.Errorf("live arm kept the static arm's cut %v; measurement did not move the split", live.FinalCut)
	}
	if !cmp.LiveWinsSpan {
		t.Errorf("live arm span %.1fms did not beat stale-split span %.1fms", live.MeanSpanMS, static.MeanSpanMS)
	}
	if live.KBPerFrame >= static.KBPerFrame {
		t.Errorf("live arm shipped %.1f KB/frame, want fewer than static %.1f (post-flip cut ships the resized frame)", live.KBPerFrame, static.KBPerFrame)
	}
	if !cmp.JitterHeld {
		t.Errorf("jitter arm: final cut %v (static %v), suppressed %d — want incumbent held with suppressed > 0",
			jitter.FinalCut, static.FinalCut, jitter.FlipsSuppressed)
	}
	if jitter.PlanSwitches > static.PlanSwitches {
		t.Errorf("jitter arm installed %d plan switches vs static %d; transients leaked into plans", jitter.PlanSwitches, static.PlanSwitches)
	}
	if static.FlipsSuppressed != 0 {
		t.Errorf("static arm suppressed %d flips; no measurement reaches it, so hysteresis should never engage", static.FlipsSuppressed)
	}
}
