//go:build !race

package jecho

const raceDetectorEnabled = false
