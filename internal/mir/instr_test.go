package mir

import (
	"strings"
	"testing"
)

// allOpInstr returns one representative instruction per opcode.
func allOpInstrs() []Instr {
	return []Instr{
		{Op: OpConst, Dst: "a", Lit: Int(1)},
		{Op: OpMove, Dst: "a", Src: "b"},
		{Op: OpBin, Dst: "a", Bin: BinAdd, Src: "b", Src2: "c"},
		{Op: OpUn, Dst: "a", Un: UnNeg, Src: "b"},
		{Op: OpGoto, Target: "l"},
		{Op: OpIf, Src: "c", Target: "l"},
		{Op: OpIfNot, Src: "c", Target: "l"},
		{Op: OpCall, Dst: "a", Fn: "f", Args: []string{"x", "y"}},
		{Op: OpCall, Fn: "g"},
		{Op: OpReturn},
		{Op: OpReturn, Src: "a"},
		{Op: OpNew, Dst: "a", Class: "C"},
		{Op: OpGetField, Dst: "a", Src: "o", Field: "f"},
		{Op: OpSetField, Dst: "o", Field: "f", Src: "v"},
		{Op: OpNewArray, Dst: "a", ElemKind: KindInt, Src: "n"},
		{Op: OpArrGet, Dst: "a", Src: "arr", Src2: "i"},
		{Op: OpArrSet, Dst: "arr", Src2: "i", Src: "v"},
		{Op: OpInstanceOf, Dst: "a", Src: "o", Class: "C"},
		{Op: OpCast, Dst: "a", Src: "o", Class: "C"},
		{Op: OpLen, Dst: "a", Src: "arr"},
		{Op: OpGetGlobal, Dst: "a", Field: "g"},
		{Op: OpSetGlobal, Field: "g", Src: "v"},
	}
}

func TestUsesDefsConsistency(t *testing.T) {
	for _, in := range allOpInstrs() {
		in := in
		uses := in.Uses()
		defs := in.Defs()
		for _, u := range uses {
			if u == "" {
				t.Errorf("%s: empty use", in.String())
			}
		}
		for _, d := range defs {
			if d == "" {
				t.Errorf("%s: empty def", in.String())
			}
		}
		// Mutating the returned slices must not corrupt the instruction.
		if len(uses) > 0 {
			uses[0] = "mutated"
			if got := in.Uses(); len(got) > 0 && got[0] == "mutated" {
				t.Errorf("%s: Uses aliases internal state", in.String())
			}
		}
	}
}

func TestUsesDefsSpecifics(t *testing.T) {
	cases := []struct {
		in   Instr
		uses []string
		defs []string
	}{
		{Instr{Op: OpSetField, Dst: "o", Field: "f", Src: "v"}, []string{"o", "v"}, nil},
		{Instr{Op: OpArrSet, Dst: "arr", Src2: "i", Src: "v"}, []string{"arr", "i", "v"}, nil},
		{Instr{Op: OpCall, Dst: "d", Fn: "f", Args: []string{"a", "b"}}, []string{"a", "b"}, []string{"d"}},
		{Instr{Op: OpCall, Fn: "f"}, nil, nil},
		{Instr{Op: OpReturn}, nil, nil},
		{Instr{Op: OpReturn, Src: "r"}, []string{"r"}, nil},
		{Instr{Op: OpGetGlobal, Dst: "d", Field: "g"}, nil, []string{"d"}},
		{Instr{Op: OpSetGlobal, Field: "g", Src: "v"}, []string{"v"}, nil},
		{Instr{Op: OpBin, Dst: "d", Bin: BinAdd, Src: "a", Src2: "b"}, []string{"a", "b"}, []string{"d"}},
	}
	for _, c := range cases {
		if got := c.in.Uses(); !sameStrings(got, c.uses) {
			t.Errorf("%s: uses = %v, want %v", c.in.String(), got, c.uses)
		}
		if got := c.in.Defs(); !sameStrings(got, c.defs) {
			t.Errorf("%s: defs = %v, want %v", c.in.String(), got, c.defs)
		}
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInstrStringsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, in := range allOpInstrs() {
		s := in.String()
		if s == "" {
			t.Errorf("op %d renders empty", in.Op)
		}
		if seen[s] {
			t.Errorf("duplicate rendering %q", s)
		}
		seen[s] = true
	}
}

func TestBranchAndTerminator(t *testing.T) {
	gotoInstr := Instr{Op: OpGoto, Target: "l"}
	retInstr := Instr{Op: OpReturn}
	ifInstr := Instr{Op: OpIf, Src: "c", Target: "l"}
	constInstr := Instr{Op: OpConst, Dst: "a", Lit: Int(1)}
	if !gotoInstr.IsBranch() {
		t.Error("goto not a branch")
	}
	if !gotoInstr.IsTerminator() {
		t.Error("goto not a terminator")
	}
	if !retInstr.IsTerminator() {
		t.Error("return not a terminator")
	}
	if ifInstr.IsTerminator() {
		t.Error("if is not a terminator (falls through)")
	}
	if constInstr.IsBranch() {
		t.Error("const is a branch")
	}
}

func TestBinUnKindRoundTrip(t *testing.T) {
	for k := BinAdd; k <= BinOr; k++ {
		name := k.String()
		back, ok := BinKindFromString(name)
		if !ok || back != k {
			t.Errorf("bin %d: %q -> %v, %v", k, name, back, ok)
		}
	}
	for k := UnNeg; k <= UnF2I; k++ {
		name := k.String()
		back, ok := UnKindFromString(name)
		if !ok || back != k {
			t.Errorf("un %d: %q -> %v, %v", k, name, back, ok)
		}
	}
	if _, ok := BinKindFromString("nope"); ok {
		t.Error("bogus bin kind accepted")
	}
	if _, ok := UnKindFromString("nope"); ok {
		t.Error("bogus un kind accepted")
	}
	if !strings.Contains(BinKind(99).String(), "99") {
		t.Error("unknown bin kind rendering")
	}
	if !strings.Contains(UnKind(99).String(), "99") {
		t.Error("unknown un kind rendering")
	}
}
