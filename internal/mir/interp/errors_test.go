package interp

import (
	"strings"
	"testing"

	"methodpart/internal/mir"
)

// failCase runs a one-expression program and asserts the error message.
func failCase(t *testing.T, name, src string, errSub string, args ...mir.Value) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		u := parseOrDie(t, src)
		env := envFor(t, u)
		m, err := NewMachine(env, u.Programs[0], args)
		if err != nil {
			t.Fatal(err)
		}
		_, err = m.Run()
		if err == nil {
			t.Fatalf("run succeeded, want error with %q", errSub)
		}
		if !strings.Contains(err.Error(), errSub) {
			t.Fatalf("err %q does not contain %q", err, errSub)
		}
	})
}

func TestExecutionErrors(t *testing.T) {
	failCase(t, "unset register",
		"func f(x) {\n y = move nope\n return y\n}", "unset register", mir.Int(1))
	failCase(t, "getfield on int",
		"func f(x) {\n y = getfield x w\n return y\n}", "want object", mir.Int(1))
	failCase(t, "setfield on string",
		"func f(x) {\n setfield x w x\n return\n}", "want object", mir.Str("s"))
	failCase(t, "unknown field",
		"class C {\n v int\n}\nfunc f(x) {\n o = new C\n y = getfield o nope\n return y\n}",
		"no field", mir.Int(1))
	failCase(t, "unknown class",
		"func f(x) {\n o = new Missing\n return o\n}", "unknown class", mir.Int(1))
	failCase(t, "arrget on scalar",
		"func f(x) {\n i = const 0\n v = arrget x i\n return v\n}", "arrget on", mir.Int(1))
	failCase(t, "arrset on scalar",
		"func f(x) {\n i = const 0\n arrset x i i\n return\n}", "arrset on", mir.Float(1)) //nolint
	failCase(t, "arrset type mismatch",
		"func f(x) {\n i = const 0\n v = const 1.5\n arrset x i v\n return\n}",
		"must be int", mir.Value(mir.IntArray{1}))
	failCase(t, "bytes element range",
		"func f(x) {\n i = const 9\n v = const 1\n arrset x i v\n return\n}",
		"out of range", mir.Value(mir.Bytes{1, 2}))
	failCase(t, "negative array length",
		"func f(x) {\n n = const -3\n a = newarray int n\n return a\n}",
		"negative array length", mir.Int(1))
	failCase(t, "newarray non-int length",
		"func f(x) {\n a = newarray int x\n return a\n}", "want int", mir.Str("n"))
	failCase(t, "len of int",
		"func f(x) {\n n = len x\n return n\n}", "len of", mir.Int(1))
	failCase(t, "branch on string",
		"func f(x) {\n if x goto l\nl:\n return\n}", "must be bool or int", mir.Str("s"))
	failCase(t, "float array element",
		"func f(x) {\n i = const 0\n v = const 2\n arrset x i v\n return\n}",
		"must be float", mir.Value(mir.FloatArray{1}))
	failCase(t, "mod on floats",
		"func f(x) {\n y = mod x x\n return y\n}", "integer operands", mir.Float(1.5))
}

func TestMachineArityMismatch(t *testing.T) {
	u := parseOrDie(t, "func f(a, b) {\n return a\n}")
	env := envFor(t, u)
	if _, err := NewMachine(env, u.Programs[0], []mir.Value{mir.Int(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestBuiltinErrorPropagates(t *testing.T) {
	u := parseOrDie(t, "func f(x) {\n y = call boom x\n return y\n}")
	tbl, _ := u.ClassTable()
	reg := NewRegistry()
	reg.MustRegister(Builtin{
		Name: "boom",
		Fn: func(*Env, []mir.Value) (mir.Value, error) {
			return nil, errBoom
		},
	})
	env := NewEnv(tbl, reg)
	m, _ := NewMachine(env, u.Programs[0], []mir.Value{mir.Int(1)})
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

var errBoom = errString("kaboom")

type errString string

func (e errString) Error() string { return string(e) }

func TestBuiltinNilResultBecomesNull(t *testing.T) {
	u := parseOrDie(t, "func f(x) {\n y = call quiet x\n return y\n}")
	tbl, _ := u.ClassTable()
	reg := NewRegistry()
	reg.MustRegister(Builtin{
		Name: "quiet",
		Fn: func(*Env, []mir.Value) (mir.Value, error) {
			return nil, nil
		},
	})
	env := NewEnv(tbl, reg)
	m, _ := NewMachine(env, u.Programs[0], []mir.Value{mir.Int(1)})
	out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Return.(mir.Null); !ok {
		t.Fatalf("return = %v, want null", out.Return)
	}
}

func TestSnapshotOmitsUnset(t *testing.T) {
	u := parseOrDie(t, "func f(x) {\n y = move x\n return y\n}")
	env := envFor(t, u)
	m, _ := NewMachine(env, u.Programs[0], []mir.Value{mir.Int(5)})
	snap := m.Snapshot([]string{"x", "y", "ghost"})
	if len(snap) != 1 || snap["x"] != mir.Int(5) {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestRegAndPC(t *testing.T) {
	u := parseOrDie(t, "func f(x) {\n y = move x\n return y\n}")
	env := envFor(t, u)
	m, _ := NewMachine(env, u.Programs[0], []mir.Value{mir.Int(5)})
	if v, ok := m.Reg("x"); !ok || v != mir.Int(5) {
		t.Fatalf("reg x = %v, %v", v, ok)
	}
	if _, ok := m.Reg("y"); ok {
		t.Fatal("y set before execution")
	}
	if m.PC() != 0 {
		t.Fatalf("pc = %d", m.PC())
	}
}

func TestNullObjectInstanceOf(t *testing.T) {
	u := parseOrDie(t, `
class C {
  v int
}

func f(x) {
  is = instanceof x C
  return is
}
`)
	env := envFor(t, u)
	m, _ := NewMachine(env, u.Programs[0], []mir.Value{mir.Null{}})
	out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Return != mir.Bool(false) {
		t.Fatalf("null instanceof C = %v", out.Return)
	}
}
