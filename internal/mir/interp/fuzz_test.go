package interp

import (
	"errors"
	"fmt"
	"testing"

	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
	"methodpart/internal/wire"
)

func TestWorkBudget(t *testing.T) {
	u := asm.MustParse(`
func spin(x) {
loop:
  goto loop
}
`)
	env := envFor(t, u)
	env.MaxWork = 100
	prog, _ := u.Program("spin")
	m, _ := NewMachine(env, prog, []mir.Value{mir.Int(0)})
	_, err := m.Run()
	if !errors.Is(err, ErrWorkBudget) {
		t.Fatalf("err = %v, want ErrWorkBudget", err)
	}
}

func TestWorkBudgetZeroIsUnbounded(t *testing.T) {
	u := asm.MustParse(`
func f(a, b) {
  q = add a b
  return q
}
`)
	env := envFor(t, u)
	prog, _ := u.Program("f")
	m, _ := NewMachine(env, prog, []mir.Value{mir.Int(1), mir.Int(2)})
	out, err := m.Run()
	if err != nil || !out.Done {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
}

// fuzzRestoreSrc exercises every register-touching instruction class the
// restore path can resume into: type tests, casts, allocation, moves.
const fuzzRestoreSrc = `
class ImageData {
  width int
  height int
  buff bytes
}

func push(event) {
  z0 = instanceof event ImageData
  ifnot z0 goto done
  r2 = cast event ImageData
  r3 = new ImageData
  r4 = move r3
done:
  return
}
`

// FuzzRestore: restoring a machine at an arbitrary node with an arbitrary
// register map — the receiving end of a hostile or corrupted continuation —
// must yield an error or a normal outcome, never a panic. Register values
// are decoded from the fuzzed bytes with the wire decoder, the same way a
// real demodulator builds the map.
func FuzzRestore(f *testing.F) {
	u := asm.MustParse(fuzzRestoreSrc)
	prog, ok := u.Program("push")
	if !ok {
		f.Fatal("no push program")
	}
	tbl, err := u.ClassTable()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(0, []byte{})
	f.Add(3, []byte{1, 0, 0, 0, 0, 0, 0, 0, 42})
	f.Add(1<<20, []byte("garbage"))
	f.Add(-1, []byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, node int, raw []byte) {
		env := NewEnv(tbl, NewRegistry())
		env.MaxSteps = 10_000
		env.MaxWork = 10_000
		vars := map[string]mir.Value{}
		dec := wire.NewDecoder(raw)
		names := []string{"event", "z0", "r2", "r3", "r4"}
		for i := 0; i < len(names); i++ {
			v, err := dec.DecodeValue()
			if err != nil {
				break
			}
			vars[names[i]] = v
		}
		// Any leftover bytes become one more value under a hostile name.
		vars[fmt.Sprintf("x%d", len(vars))] = mir.Bytes(raw)
		m, err := Restore(env, prog, node, vars)
		if err != nil {
			return
		}
		_, _ = m.Run()
	})
}
