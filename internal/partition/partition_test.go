package partition_test

import (
	"errors"
	"strings"
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/testprog"
	"methodpart/internal/wire"
)

// fixture bundles a compiled push() handler with sender/receiver halves.
type fixture struct {
	c         *partition.Compiled
	mod       *partition.Modulator
	demod     *partition.Demodulator
	displayed *[]*mir.Object
}

func newFixture(t *testing.T, model costmodel.Model) *fixture {
	t.Helper()
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, err := u.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	recvReg, displayed := testprog.PushBuiltins()
	c, err := partition.Compile(prog, classes, recvReg, model)
	if err != nil {
		t.Fatal(err)
	}
	// Sender side gets the movable builtins but must never execute the
	// native display; reuse a registry with both for simplicity (the
	// analysis guarantees displayImage stays at the receiver).
	sendReg, _ := testprog.PushBuiltins()
	senderEnv := interp.NewEnv(classes, sendReg)
	recvEnv := interp.NewEnv(classes, recvReg)
	return &fixture{
		c:         c,
		mod:       partition.NewModulator(c, senderEnv),
		demod:     partition.NewDemodulator(c, recvEnv),
		displayed: displayed,
	}
}

func (f *fixture) deliver(t *testing.T, ev mir.Value) (*partition.Output, *partition.Result) {
	t.Helper()
	out, err := f.mod.Process(ev)
	if err != nil {
		t.Fatal(err)
	}
	if out.Suppressed {
		return out, nil
	}
	var msg any
	switch {
	case out.Raw != nil:
		// Serialise and deserialise to prove the wire path works.
		data, err := wire.Marshal(out.Raw)
		if err != nil {
			t.Fatal(err)
		}
		msg, err = wire.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
	case out.Cont != nil:
		data, err := wire.Marshal(out.Cont)
		if err != nil {
			t.Fatal(err)
		}
		msg, err = wire.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatal("modulator produced neither raw nor continuation")
	}
	res, err := f.demod.Process(msg)
	if err != nil {
		t.Fatal(err)
	}
	return out, res
}

func TestCompilePushPSETable(t *testing.T) {
	f := newFixture(t, costmodel.NewDataSize())
	// Raw PSE + the 3 analysis PSEs.
	if f.c.NumPSEs() != 4 {
		t.Fatalf("NumPSEs = %d, want 4", f.c.NumPSEs())
	}
	raw, ok := f.c.PSE(partition.RawPSEID)
	if !ok || raw.Edge.From != -1 || len(raw.Vars) != 1 || raw.Vars[0] != "event" {
		t.Fatalf("raw PSE = %+v", raw)
	}
}

func TestRawPlanDelivery(t *testing.T) {
	f := newFixture(t, costmodel.NewDataSize())
	ev := testprog.NewImageData(8, 8)
	out, res := f.deliver(t, ev)
	if out.SplitPSE != partition.RawPSEID {
		t.Fatalf("split = %d, want raw", out.SplitPSE)
	}
	if out.ModWork != 0 {
		t.Fatalf("raw plan did sender work: %d", out.ModWork)
	}
	if len(*f.displayed) != 1 {
		t.Fatalf("displayed %d images", len(*f.displayed))
	}
	got := (*f.displayed)[0]
	if got.Fields["width"] != mir.Int(100) {
		t.Errorf("displayed width = %v, want 100 (resized)", got.Fields["width"])
	}
	if res.DemodWork == 0 {
		t.Error("raw plan should do all work at receiver")
	}
}

// TestAllPlansEquivalent delivers the same event under every single-PSE
// plan and checks the receiver-visible result is identical — the core
// remote-continuation correctness property.
func TestAllPlansEquivalent(t *testing.T) {
	for id := int32(1); id <= 2; id++ { // PSEs on the transform path
		f := newFixture(t, costmodel.NewDataSize())
		pse, ok := f.c.PSE(id)
		if !ok {
			t.Fatalf("PSE %d missing", id)
		}
		// A single split flag is only a valid plan if it cuts all paths;
		// combine with the filter-path PSE when needed.
		split := []int32{id}
		if err := f.c.ValidateSplitSet(split); err != nil {
			for other := int32(1); other < int32(f.c.NumPSEs()); other++ {
				if other == id {
					continue
				}
				try := append([]int32{id}, other)
				if f.c.ValidateSplitSet(try) == nil {
					split = try
					break
				}
			}
		}
		plan, err := partition.NewPlan(f.c.NumPSEs(), 1, split, nil)
		if err != nil {
			t.Fatal(err)
		}
		f.mod.SetPlan(plan)

		ev := testprog.NewImageData(16, 16)
		out, _ := f.deliver(t, ev)
		if out.SplitPSE == partition.RawPSEID {
			t.Fatalf("PSE %d (%v): modulator fell back to raw", id, pse.Edge)
		}
		if len(*f.displayed) != 1 {
			t.Fatalf("PSE %d: displayed %d images", id, len(*f.displayed))
		}
		got := (*f.displayed)[0]
		if got.Fields["width"] != mir.Int(100) || got.Fields["height"] != mir.Int(100) {
			t.Errorf("PSE %d: displayed %vx%v, want 100x100", id, got.Fields["width"], got.Fields["height"])
		}
	}
}

func TestFilterSuppression(t *testing.T) {
	// A non-ImageData event under a post-filter plan must be dropped at
	// the sender: the paper's "events that are not of type ImageData will
	// be filtered out".
	f := newFixture(t, costmodel.NewDataSize())
	// Find the filter-path PSE (Edge(1,7)) and a transform-path PSE.
	var filterID, otherID int32 = -1, -1
	for id := int32(1); id < int32(f.c.NumPSEs()); id++ {
		pse, _ := f.c.PSE(id)
		if pse.Edge.From == 1 && pse.Edge.To == 7 {
			filterID = id
		} else if otherID < 0 {
			otherID = id
		}
	}
	if filterID < 0 || otherID < 0 {
		t.Fatalf("PSE layout unexpected: %+v", f.c.PSEs)
	}
	plan, err := partition.NewPlan(f.c.NumPSEs(), 1, []int32{filterID, otherID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.c.ValidateSplitSet(plan.SplitIDs()); err != nil {
		t.Fatal(err)
	}
	f.mod.SetPlan(plan)

	out, err := f.mod.Process(mir.Str("not an image"))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Suppressed {
		t.Fatalf("non-image event not suppressed: %+v", out)
	}
	if out.WireBytes != 0 {
		t.Errorf("suppressed message still cost %d bytes", out.WireBytes)
	}
}

func TestForcedSplitUnderDegeneratePlan(t *testing.T) {
	// A plan that flags only the filter-path PSE leaks the transform
	// path; the modulator must force-split before the native call rather
	// than execute it at the sender.
	f := newFixture(t, costmodel.NewDataSize())
	var filterID int32 = -1
	for id := int32(1); id < int32(f.c.NumPSEs()); id++ {
		pse, _ := f.c.PSE(id)
		if pse.Edge.From == 1 && pse.Edge.To == 7 {
			filterID = id
		}
	}
	plan, err := partition.NewPlan(f.c.NumPSEs(), 1, []int32{filterID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.c.ValidateSplitSet(plan.SplitIDs()); err == nil {
		t.Fatal("degenerate plan validated as complete cut")
	}
	f.mod.SetPlan(plan)

	ev := testprog.NewImageData(4, 4)
	out, res := f.deliver(t, ev)
	if out.Suppressed {
		t.Fatal("image event suppressed")
	}
	if len(*f.displayed) != 1 {
		t.Fatalf("displayed = %d", len(*f.displayed))
	}
	_ = res
}

func TestPlanVersioningIgnoresStale(t *testing.T) {
	f := newFixture(t, costmodel.NewDataSize())
	p2, _ := partition.NewPlan(f.c.NumPSEs(), 2, []int32{partition.RawPSEID}, nil)
	p1, _ := partition.NewPlan(f.c.NumPSEs(), 1, []int32{1}, nil)
	if !f.mod.SetPlan(p2) {
		t.Fatal("fresh plan rejected")
	}
	if f.mod.SetPlan(p1) {
		t.Fatal("stale plan accepted")
	}
	if f.mod.Plan().Version() != 2 {
		t.Fatalf("active version = %d", f.mod.Plan().Version())
	}
}

func TestApplyWirePlan(t *testing.T) {
	f := newFixture(t, costmodel.NewDataSize())
	wp := &wire.Plan{Handler: "push", Version: 5, Split: []int32{partition.RawPSEID}, Profile: []int32{0, 1}}
	if err := f.mod.ApplyWirePlan(wp); err != nil {
		t.Fatal(err)
	}
	if f.mod.Plan().Version() != 5 {
		t.Fatalf("version = %d", f.mod.Plan().Version())
	}
	bad := &wire.Plan{Handler: "other", Version: 6}
	if err := f.mod.ApplyWirePlan(bad); err == nil {
		t.Error("plan for wrong handler accepted")
	}
	leaky := &wire.Plan{Handler: "push", Version: 7, Split: nil}
	if err := f.mod.ApplyWirePlan(leaky); err == nil {
		t.Error("leaky plan accepted")
	}
	stale := &wire.Plan{Handler: "push", Version: 4, Split: []int32{partition.RawPSEID}, Profile: []int32{0}}
	err := f.mod.ApplyWirePlan(stale)
	if !errors.Is(err, partition.ErrStalePlan) {
		t.Errorf("stale plan: err = %v, want ErrStalePlan", err)
	}
	if f.mod.Plan().Version() != 5 {
		t.Fatalf("stale plan changed active version to %d", f.mod.Plan().Version())
	}
}

func TestValidateSplitSet(t *testing.T) {
	f := newFixture(t, costmodel.NewDataSize())
	if err := f.c.ValidateSplitSet([]int32{partition.RawPSEID}); err != nil {
		t.Errorf("raw plan invalid: %v", err)
	}
	if err := f.c.ValidateSplitSet([]int32{99}); err == nil {
		t.Error("unknown PSE accepted")
	}
	if err := f.c.ValidateSplitSet(nil); err == nil {
		t.Error("empty split set accepted")
	}
}

func TestDemodulatorRejectsWrongHandler(t *testing.T) {
	f := newFixture(t, costmodel.NewDataSize())
	_, err := f.demod.ProcessRaw(&wire.Raw{Handler: "nope", Event: mir.Int(1)})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v", err)
	}
	_, err = f.demod.ProcessContinuation(&wire.Continuation{Handler: "push", ResumeNode: 999})
	if err == nil {
		t.Fatal("out-of-range resume accepted")
	}
}

func TestExecTimeModelCompiles(t *testing.T) {
	f := newFixture(t, costmodel.NewExecTime())
	// The exec-time model keeps more PSEs (no static size pruning).
	if f.c.NumPSEs() < 4 {
		t.Fatalf("NumPSEs = %d", f.c.NumPSEs())
	}
	ev := testprog.NewImageData(8, 8)
	out, _ := f.deliver(t, ev)
	if out == nil {
		t.Fatal("no output")
	}
	if len(*f.displayed) != 1 {
		t.Fatalf("displayed = %d", len(*f.displayed))
	}
}
