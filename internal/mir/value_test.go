package mir

import (
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	kinds := []Kind{
		KindNull, KindBool, KindInt, KindFloat, KindString,
		KindBytes, KindIntArray, KindFloatArray, KindObject,
	}
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Fatalf("kind %d has empty name", k)
		}
		back, ok := KindFromString(s)
		if !ok || back != k {
			t.Errorf("KindFromString(%q) = %v, %v; want %v, true", s, back, ok, k)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Error("KindFromString accepted bogus kind")
	}
}

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		want Kind
	}{
		{Null{}, KindNull},
		{Bool(true), KindBool},
		{Int(7), KindInt},
		{Float(1.5), KindFloat},
		{Str("x"), KindString},
		{Bytes{1, 2}, KindBytes},
		{IntArray{3}, KindIntArray},
		{FloatArray{0.5}, KindFloatArray},
		{NewObject("C"), KindObject},
	}
	for _, c := range cases {
		if got := c.v.Kind(); got != c.want {
			t.Errorf("%v.Kind() = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestTruthy(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want bool
	}{
		{Bool(true), true},
		{Bool(false), false},
		{Int(0), false},
		{Int(-3), true},
	} {
		got, err := Truthy(c.v)
		if err != nil {
			t.Fatalf("Truthy(%v): %v", c.v, err)
		}
		if got != c.want {
			t.Errorf("Truthy(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if _, err := Truthy(Str("x")); err == nil {
		t.Error("Truthy(string) succeeded, want error")
	}
}

func TestEqualStructural(t *testing.T) {
	a := NewObject("ImageData")
	a.Fields["w"] = Int(10)
	a.Fields["buff"] = Bytes{1, 2, 3}
	b := NewObject("ImageData")
	b.Fields["w"] = Int(10)
	b.Fields["buff"] = Bytes{1, 2, 3}
	if !Equal(a, b) {
		t.Error("structurally equal objects compare unequal")
	}
	b.Fields["w"] = Int(11)
	if Equal(a, b) {
		t.Error("objects with different fields compare equal")
	}
	if Equal(Int(1), Float(1)) {
		t.Error("int and float compare equal")
	}
	if !Equal(Null{}, Null{}) {
		t.Error("null != null")
	}
}

func TestCopyIsDeep(t *testing.T) {
	obj := NewObject("C")
	obj.Fields["a"] = IntArray{1, 2, 3}
	cp, ok := Copy(obj).(*Object)
	if !ok {
		t.Fatal("copy of object is not an object")
	}
	if !Equal(obj, cp) {
		t.Fatal("copy differs from original")
	}
	cp.Fields["a"].(IntArray)[0] = 99
	if obj.Fields["a"].(IntArray)[0] == 99 {
		t.Error("mutation of copy visible through original")
	}
}

func TestCopyEqualProperty(t *testing.T) {
	// Property: for arbitrary int/float/byte arrays, Copy is Equal to the
	// original and shares no storage.
	f := func(ints []int64, floats []float64, bs []byte) bool {
		vals := []Value{IntArray(ints), FloatArray(floats), Bytes(bs)}
		for _, v := range vals {
			c := Copy(v)
			if !Equal(v, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroValue(t *testing.T) {
	if ZeroValue(KindInt) != Int(0) {
		t.Error("zero int")
	}
	if ZeroValue(KindBool) != Bool(false) {
		t.Error("zero bool")
	}
	if _, ok := ZeroValue(KindObject).(Null); !ok {
		t.Error("zero object should be null")
	}
}

func TestClassTable(t *testing.T) {
	tbl, err := NewClassTable(
		ClassDef{Name: "ImageData", Fields: []FieldDef{
			{Name: "width", Kind: KindInt},
			{Name: "buff", Kind: KindBytes},
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tbl.New("ImageData")
	if err != nil {
		t.Fatal(err)
	}
	if obj.Fields["width"] != Int(0) {
		t.Errorf("width zero value = %v", obj.Fields["width"])
	}
	if _, err := tbl.New("Nope"); err == nil {
		t.Error("New on unknown class succeeded")
	}
	if _, err := NewClassTable(ClassDef{Name: "A"}, ClassDef{Name: "A"}); err == nil {
		t.Error("duplicate class accepted")
	}
	if _, err := NewClassTable(ClassDef{Name: "B", Fields: []FieldDef{
		{Name: "x", Kind: KindInt}, {Name: "x", Kind: KindInt},
	}}); err == nil {
		t.Error("duplicate field accepted")
	}
}
