package jecho

import (
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/wire"
)

// relFrame builds a refcounted frame of n bytes for ring tests.
func relFrame(n int) *wire.Frame {
	return wire.NewFrame(make([]byte, n))
}

// releaseReplay drops the caller-owned references a replaySet carries, so
// leak assertions on the underlying frames stay meaningful.
func releaseReplay(rep replaySet) {
	for _, q := range rep.frames {
		q.f.Release()
	}
}

func TestRelStateSequencesAndReleases(t *testing.T) {
	r := newRelState(1 << 20)
	var frames []*wire.Frame
	for i := 0; i < 5; i++ {
		f := relFrame(100)
		frames = append(frames, f)
		seq, evicted := r.stage(f)
		if want := uint64(i + 1); seq != want {
			t.Fatalf("stage %d assigned seq %d, want %d", i, seq, want)
		}
		if evicted != 0 {
			t.Fatalf("stage %d evicted %d entries under a huge budget", i, evicted)
		}
	}
	if staged, ringFrames, ringBytes, _ := r.stats(); staged != 5 || ringFrames != 5 || ringBytes != 500 {
		t.Fatalf("stats after staging = (%d, %d, %d), want (5, 5, 500)", staged, ringFrames, ringBytes)
	}
	released, clamped, _, replay := r.onAck(3)
	if released != 3 || clamped || replay {
		t.Fatalf("onAck(3) = released %d clamped %v replay %v, want 3 false false", released, clamped, replay)
	}
	if _, ringFrames, ringBytes, _ := r.stats(); ringFrames != 2 || ringBytes != 200 {
		t.Fatalf("ring after ack = (%d frames, %d bytes), want (2, 200)", ringFrames, ringBytes)
	}
	// A re-ack of an already-released position must be a no-op.
	if released, _, _, _ := r.onAck(2); released != 0 {
		t.Fatalf("stale ack released %d entries", released)
	}
	r.close()
	for i, f := range frames {
		if f.Refs() != 1 {
			t.Errorf("frame %d has %d refs after close, want the caller's 1", i, f.Refs())
		}
	}
}

func TestRelStateCorruptFarAheadAckClamped(t *testing.T) {
	r := newRelState(1 << 20)
	for i := 0; i < 4; i++ {
		r.stage(relFrame(50))
	}
	// A corrupt cumulative ack far beyond anything ever staged must release
	// at most what exists, must not derail the sequence counter — and must
	// report the clamping so the caller can count it.
	released, clamped, _, replay := r.onAck(1 << 60)
	if released != 4 || !clamped || replay {
		t.Fatalf("far-ahead ack = released %d clamped %v replay %v, want 4 true false", released, clamped, replay)
	}
	if seq, _ := r.stage(relFrame(50)); seq != 5 {
		t.Fatalf("seq after corrupt ack = %d, want 5", seq)
	}
	// Repeating the corrupt ack with everything released must not fire the
	// idle-replay heuristic on an empty tail.
	r.onAck(1 << 60)
	if _, _, _, replay := r.onAck(1 << 60); replay {
		t.Fatal("repeated far-ahead ack with nothing unacked fired a replay")
	}
	// An in-range ack never reports clamping.
	if _, clamped, _, _ := r.onAck(5); clamped {
		t.Fatal("in-range ack reported clamping")
	}
}

func TestRelStateIdleReplayHeuristic(t *testing.T) {
	r := newRelState(1 << 20)
	for i := 0; i < 5; i++ {
		r.stage(relFrame(10))
	}
	// First ack at 2: records the position, no replay yet.
	if _, _, _, replay := r.onAck(2); replay {
		t.Fatal("first ack fired a replay")
	}
	// Same ack again with nothing staged since: the tail 3..5 is stuck on
	// the subscriber side with no higher seq to reveal the gap — replay it.
	_, _, rep, replay := r.onAck(2)
	if !replay {
		t.Fatal("repeated idle ack did not fire the tail replay")
	}
	if len(rep.frames) != 3 || rep.frames[0].seq != 3 || rep.frames[2].seq != 5 {
		t.Fatalf("idle replay frames = %+v, want seqs 3..5", rep.frames)
	}
	if rep.lostTo != 0 {
		t.Fatalf("idle replay declared loss %d..%d with an intact ring", rep.lostFrom, rep.lostTo)
	}
	releaseReplay(rep)
	// The backoff doubles: the next identical ack only records, the one
	// after that replays again (a lost replay is retried, not spammed).
	if _, _, _, replay := r.onAck(2); replay {
		t.Fatal("heuristic did not back off after firing")
	}
	if _, _, rep, replay := r.onAck(2); !replay {
		t.Fatal("backed-off heuristic did not fire on the next repeat")
	} else {
		releaseReplay(rep)
	}
	// Staging between identical acks means the stream is moving: no replay.
	r.onAck(2)
	r.stage(relFrame(10))
	if _, _, _, replay := r.onAck(2); replay {
		t.Fatal("replay fired although frames were staged between acks")
	}
}

func TestRelStateIdleReplayBackoffDoubles(t *testing.T) {
	r := newRelState(1 << 20)
	for i := 0; i < 4; i++ {
		r.stage(relFrame(10))
	}
	r.onAck(1) // record the stalled position
	// A handler merely stalled (nothing acked, nothing staged) must not be
	// buried under a full-tail replay every other heartbeat: successive
	// fires for the same stalled ack follow a doubling schedule.
	var fires []int
	for ack := 1; ack <= 15; ack++ {
		if _, _, rep, replay := r.onAck(1); replay {
			fires = append(fires, ack)
			releaseReplay(rep)
		}
	}
	if want := []int{1, 3, 7, 15}; len(fires) != len(want) || fires[0] != 1 || fires[1] != 3 || fires[2] != 7 || fires[3] != 15 {
		t.Fatalf("idle replays fired at acks %v, want %v", fires, want)
	}
	// Ack progress resets the backoff: the very next repeat fires again.
	r.onAck(2)
	if _, _, rep, replay := r.onAck(2); !replay {
		t.Fatal("backoff did not reset after ack progress")
	} else {
		releaseReplay(rep)
	}
	r.close()
}

func TestRelStateEvictionDeclaresLostPrefix(t *testing.T) {
	r := newRelState(250) // holds two 100-byte frames, evicts beyond
	for i := 0; i < 5; i++ {
		r.stage(relFrame(100))
	}
	if _, ringFrames, _, evictions := r.stats(); ringFrames != 2 || evictions != 3 {
		t.Fatalf("ring = %d frames %d evictions, want 2 and 3", ringFrames, evictions)
	}
	rep := r.replayRange(1, 5)
	if rep.lostFrom != 1 || rep.lostTo != 3 {
		t.Fatalf("lost prefix = %d..%d, want 1..3", rep.lostFrom, rep.lostTo)
	}
	if len(rep.frames) != 2 || rep.frames[0].seq != 4 || rep.frames[1].seq != 5 {
		t.Fatalf("replayable tail = %+v, want seqs 4..5", rep.frames)
	}
	releaseReplay(rep)
	r.close()
}

func TestRelStateOversizedFrameStaysRepairable(t *testing.T) {
	r := newRelState(64)
	f := relFrame(1000) // alone over budget: kept anyway until displaced
	r.stage(f)
	rep := r.replayRange(1, 1)
	if rep.lostTo != 0 || len(rep.frames) != 1 {
		t.Fatalf("oversized frame not repairable: %+v", rep)
	}
	releaseReplay(rep)
	r.stage(relFrame(10)) // displaces the oversized entry
	if rep := r.replayRange(1, 1); rep.lostFrom != 1 || rep.lostTo != 1 {
		t.Fatalf("displaced oversized frame not declared lost: %+v", rep)
	}
	r.close()
	if f.Refs() != 1 {
		t.Fatalf("oversized frame has %d refs after close, want 1", f.Refs())
	}
}

func TestRelStateNegativeBudgetSequencesOnly(t *testing.T) {
	r := newRelState(-1)
	f := relFrame(100)
	if seq, _ := r.stage(f); seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	if f.Refs() != 1 {
		t.Fatalf("retention-disabled stage retained the frame (%d refs)", f.Refs())
	}
	rep := r.replayRange(1, 1)
	if rep.lostFrom != 1 || rep.lostTo != 1 || len(rep.frames) != 0 {
		t.Fatalf("replay with retention disabled = %+v, want all lost", rep)
	}
}

func TestRelStateResume(t *testing.T) {
	r := newRelState(1 << 20)
	for i := 0; i < 6; i++ {
		r.stage(relFrame(10))
	}
	rep := r.resume(4, r.epoch)
	if rep.lostTo != 0 {
		t.Fatalf("resume declared loss %d..%d with an intact ring", rep.lostFrom, rep.lostTo)
	}
	if len(rep.frames) != 2 || rep.frames[0].seq != 5 || rep.frames[1].seq != 6 {
		t.Fatalf("resume replay = %+v, want seqs 5..6", rep.frames)
	}
	releaseReplay(rep)
	// The resume point acts as a cumulative ack.
	if _, ringFrames, _, _ := r.stats(); ringFrames != 2 {
		t.Fatalf("ring after resume = %d frames, want 2", ringFrames)
	}
	// Fully caught up: nothing to replay, nothing lost.
	if rep := r.resume(6, r.epoch); len(rep.frames) != 0 || rep.lostTo != 0 {
		t.Fatalf("caught-up resume = %+v, want empty", rep)
	}
	r.close()
}

func TestRelStateResumeForeignEpochIgnored(t *testing.T) {
	r := newRelState(1 << 20)
	for i := 0; i < 3; i++ {
		r.stage(relFrame(10))
	}
	// A resume point from a different stream says nothing about this one:
	// no replay (the subscriber resets on StreamStart and repairs via gap
	// requests) and — critically — no release: the foreign contig must not
	// act as an ack against this stream's numbering.
	rep := r.resume(5, r.epoch+1)
	if len(rep.frames) != 0 || rep.lostTo != 0 {
		t.Fatalf("foreign-epoch resume = %+v, want empty", rep)
	}
	if _, ringFrames, _, _ := r.stats(); ringFrames != 3 {
		t.Fatalf("foreign-epoch resume released ring entries (%d left, want 3)", ringFrames)
	}
	// The epoch-0 "no stream adopted" sentinel is foreign to every state.
	if rep := r.resume(2, 0); len(rep.frames) != 0 {
		t.Fatalf("epoch-0 resume replayed %d frames", len(rep.frames))
	}
	r.close()
}

func TestStreamEpochsDistinctAndNonZero(t *testing.T) {
	a, b := newRelState(0), newRelState(0)
	if a.epoch == 0 || b.epoch == 0 {
		t.Fatalf("zero stream epoch assigned (%d, %d)", a.epoch, b.epoch)
	}
	if a.epoch == b.epoch {
		t.Fatalf("two states share epoch %d", a.epoch)
	}
}

func TestRelReceiverAdmitOrderDupsAndGaps(t *testing.T) {
	r := newRelReceiver(1 << 60) // pacing off: acks tested separately
	for seq := uint64(1); seq <= 3; seq++ {
		deliver, _, gapTo, _, _ := r.admit(seq)
		if !deliver || gapTo != 0 {
			t.Fatalf("in-order admit(%d) = deliver %v gapTo %d", seq, deliver, gapTo)
		}
	}
	// Jump to 6: gap 4..5 must be requested exactly once.
	deliver, gapFrom, gapTo, _, _ := r.admit(6)
	if !deliver || gapFrom != 4 || gapTo != 5 {
		t.Fatalf("admit(6) = deliver %v gap %d..%d, want true 4..5", deliver, gapFrom, gapTo)
	}
	// A further jump requests only the uncovered part.
	if _, gapFrom, gapTo, _, _ := r.admit(8); gapFrom != 7 || gapTo != 7 {
		t.Fatalf("admit(8) requested %d..%d, want 7..7", gapFrom, gapTo)
	}
	// Duplicates: below contig and in the ahead set both drop, no request.
	if deliver, _, gapTo, _, _ := r.admit(2); deliver || gapTo != 0 {
		t.Fatal("admit of an old seq was delivered or re-requested")
	}
	if deliver, _, _, _, _ := r.admit(6); deliver {
		t.Fatal("admit of an ahead duplicate was delivered")
	}
	// Filling the gap merges the ahead set into contig.
	r.admit(4)
	if deliver, _, _, _, ackSeq := r.admit(5); !deliver || ackSeq != 6 {
		t.Fatalf("gap fill: deliver %v contig %d, want true 6", deliver, ackSeq)
	}
	r.admit(7)
	if got := r.contiguous(); got != 8 {
		t.Fatalf("contiguous = %d, want 8", got)
	}
}

func TestRelReceiverAckPacing(t *testing.T) {
	r := newRelReceiver(3)
	dues := 0
	for seq := uint64(1); seq <= 9; seq++ {
		if _, _, _, ackDue, _ := r.admit(seq); ackDue {
			dues++
		}
	}
	if dues != 3 {
		t.Fatalf("9 deliveries at AckEvery=3 paced %d acks, want 3", dues)
	}
}

func TestRelReceiverLostAdvancesAndCounts(t *testing.T) {
	r := newRelReceiver(1 << 60)
	r.admit(1)
	r.admit(2)
	r.admit(5) // ahead; 3..4 missing
	missing, ackSeq := r.lost(3, 6)
	// 3, 4 and 6 were never received; 5 was already here and must not be
	// counted as lost.
	if missing != 3 || ackSeq != 6 {
		t.Fatalf("lost(3,6) = %d missing ack %d, want 3 and 6", missing, ackSeq)
	}
	// A loss notice entirely in the past counts nothing.
	if missing, _ := r.lost(1, 4); missing != 0 {
		t.Fatalf("stale loss notice counted %d", missing)
	}
	// Delivery resumes cleanly after the advanced position.
	if deliver, _, gapTo, _, _ := r.admit(7); !deliver || gapTo != 0 {
		t.Fatalf("admit(7) after loss = deliver %v gapTo %d", deliver, gapTo)
	}
}

func TestRelReceiverResetRequests(t *testing.T) {
	r := newRelReceiver(1 << 60)
	r.admit(1)
	r.admit(4) // requests 2..3
	// Reconnect: the request died with the connection. After reset, a new
	// out-of-order arrival must re-request the still-open gap — but not the
	// already-received seq 4 at its edge.
	r.resetRequests()
	if _, gapFrom, gapTo, _, _ := r.admit(5); gapFrom != 2 || gapTo != 3 {
		t.Fatalf("post-reset admit(5) requested %d..%d, want 2..3", gapFrom, gapTo)
	}
}

func TestRelReceiverStreamStartResets(t *testing.T) {
	r := newRelReceiver(1 << 60)
	if r.streamStart(7) {
		t.Fatal("first epoch adoption reported a reset")
	}
	for seq := uint64(1); seq <= 5; seq++ {
		r.admit(seq)
	}
	r.admit(8) // 6..7 outstanding
	if r.streamStart(7) {
		t.Fatal("unchanged epoch reported a reset")
	}
	if got := r.contiguous(); got != 5 {
		t.Fatalf("unchanged epoch disturbed contig (%d, want 5)", got)
	}
	// A changed epoch means the old numbering is dead: reset everything so
	// the new stream's first events are not dropped as duplicates.
	if !r.streamStart(9) {
		t.Fatal("changed epoch did not reset the receiver")
	}
	if seq, epoch := r.resumePoint(); seq != 0 || epoch != 9 {
		t.Fatalf("resume point after reset = (%d, %d), want (0, 9)", seq, epoch)
	}
	if deliver, _, gapTo, _, _ := r.admit(1); !deliver || gapTo != 0 {
		t.Fatalf("fresh stream's seq 1 after reset: deliver %v gapTo %d, want true 0", deliver, gapTo)
	}
}

func TestRelReceiverRetryGapBacksOff(t *testing.T) {
	r := newRelReceiver(1 << 60)
	r.admit(1)
	r.admit(4) // requests 2..3; pretend the replay was dropped
	// Tick 1 observes the post-admit progress; the gap must then persist
	// for 2 stalled ticks before the first re-request.
	if _, to := r.retryGap(); to != 0 {
		t.Fatal("progress-observation tick re-requested")
	}
	if _, to := r.retryGap(); to != 0 {
		t.Fatal("first stalled tick re-requested before the threshold")
	}
	if from, to := r.retryGap(); from != 2 || to != 3 {
		t.Fatalf("retry = %d..%d, want 2..3", from, to)
	}
	// The threshold doubles: the next retry takes 4 stalled ticks.
	for i := 0; i < 3; i++ {
		if _, to := r.retryGap(); to != 0 {
			t.Fatalf("backoff tick %d re-requested", i+1)
		}
	}
	if from, to := r.retryGap(); from != 2 || to != 3 {
		t.Fatalf("backed-off retry = %d..%d, want 2..3", from, to)
	}
	// Contig progress resets the pacing; a repaired gap stops it entirely.
	r.admit(2)
	if _, to := r.retryGap(); to != 0 {
		t.Fatal("progress tick re-requested")
	}
	r.admit(3) // merges 4: ahead drains
	if _, to := r.retryGap(); to != 0 {
		t.Fatal("repaired gap re-requested")
	}
	if got := r.contiguous(); got != 4 {
		t.Fatalf("contig after repair = %d, want 4", got)
	}
}

func TestHandleAckClampedCounted(t *testing.T) {
	p := &Publisher{cfg: PublisherConfig{ReplayRingBytes: 1 << 20}}
	s := &subscription{rel: newRelState(1 << 20), metrics: &channelMetrics{}}
	s.rel.stage(relFrame(10))
	p.handleAck(s, 99) // beyond anything staged: clamped and counted
	if got := s.metrics.acksClamped.Load(); got != 1 {
		t.Fatalf("acksClamped after corrupt ack = %d, want 1", got)
	}
	p.handleAck(s, 1) // in range: not counted
	if got := s.metrics.acksClamped.Load(); got != 1 {
		t.Fatalf("acksClamped after valid ack = %d, want 1", got)
	}
	s.rel.close()
}

func TestAcquireRelStateResumesAcrossRetire(t *testing.T) {
	p := &Publisher{cfg: PublisherConfig{ReplayRingBytes: 1 << 20}}
	key := relKey{subscriber: "s", channel: "c", handler: "h"}
	st := p.acquireRelState(key)
	st.stage(relFrame(10))

	// A duplicate live triple must get a fresh stream, not corrupt the
	// live one — and being unregistered, it is freed on detach.
	dup := p.acquireRelState(key)
	if dup == st {
		t.Fatal("duplicate live subscription adopted the live stream")
	}
	if dup.registered {
		t.Fatal("duplicate stream displaced the registered one")
	}
	p.detachRelState(dup)

	// Retire then resubscribe: the same triple adopts the parked state with
	// its sequence counter intact.
	p.detachRelState(st)
	again := p.acquireRelState(key)
	if again != st {
		t.Fatal("resubscribe did not adopt the detached stream")
	}
	if seq, _ := again.stage(relFrame(10)); seq != 2 {
		t.Fatalf("adopted stream staged seq %d, want 2", seq)
	}
	p.closeRelStates()
}

func TestDetachRelStateOrphanCap(t *testing.T) {
	p := &Publisher{cfg: PublisherConfig{ReplayRingBytes: 1 << 20}}
	var first *relState
	for i := 0; i <= maxOrphanRelStates; i++ {
		key := relKey{subscriber: string(rune('a' + i%26)), channel: "c", handler: string(rune('A' + i/26))}
		st := p.acquireRelState(key)
		st.stage(relFrame(10))
		if i == 0 {
			first = st
		}
		p.detachRelState(st)
	}
	p.relMu.Lock()
	n := len(p.relStates)
	p.relMu.Unlock()
	if n != maxOrphanRelStates {
		t.Fatalf("%d orphans parked, cap is %d", n, maxOrphanRelStates)
	}
	// The oldest orphan was evicted and its ring released.
	if len(first.ring) != 0 {
		t.Fatal("evicted oldest orphan still retains ring frames")
	}
	p.closeRelStates()
}

// newRedeliverSubscriber builds a connection-less Subscriber around a live
// demodulator — just enough for the dead-letter redelivery path, which is
// local and never touches the wire.
func newRedeliverSubscriber(t *testing.T) *Subscriber {
	t.Helper()
	reg, _ := imaging.Builtins()
	subMsg := &wire.Subscribe{
		Protocol:   wire.ProtocolVersion,
		Subscriber: "redeliver",
		Handler:    imaging.HandlerName,
		Source:     imaging.HandlerSource(64),
		CostModel:  costmodel.DataSizeName,
		Natives:    []string{"displayImage"},
	}
	compiled, err := compileSubscription(subMsg)
	if err != nil {
		t.Fatal(err)
	}
	env := interp.NewEnv(compiled.Classes, reg)
	return &Subscriber{
		cfg:      SubscriberConfig{Logf: func(string, ...any) {}},
		compiled: compiled,
		demod:    partition.NewDemodulator(compiled, env),
		letters:  newDeadLetterRing(8),
	}
}

func TestRedeliverDeadLetters(t *testing.T) {
	s := newRedeliverSubscriber(t)

	// One letter that demodulates cleanly now (quarantined for a since-fixed
	// transient), one wrapped in a delivery envelope, one poison forever.
	good, err := wire.Marshal(&wire.Raw{Handler: imaging.HandlerName, Seq: 1, Event: imaging.NewFrame(16, 16, 1)})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := wire.Marshal(&wire.Raw{Handler: imaging.HandlerName, Seq: 2, Event: imaging.NewFrame(16, 16, 2)})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := wire.AppendSeqEvent(nil, 2, inner)
	s.quarantine(DeadLetter{Class: wire.NackRuntime, Reason: "transient", Frame: good})
	s.quarantine(DeadLetter{Class: wire.NackRuntime, Reason: "transient", Frame: wrapped})
	s.quarantine(DeadLetter{Class: wire.NackDecode, Reason: "garbage", Frame: []byte{0xff, 0xfe, 0xfd}})

	var results int
	s.cfg.OnResult = func(*partition.Result) { results++ }
	redelivered, requarantined := s.RedeliverDeadLetters()
	if redelivered != 2 || requarantined != 1 {
		t.Fatalf("RedeliverDeadLetters = (%d, %d), want (2, 1)", redelivered, requarantined)
	}
	if results != 2 {
		t.Fatalf("OnResult saw %d redelivered events, want 2", results)
	}
	if got := s.Processed(); got != 2 {
		t.Fatalf("Processed = %d, want 2", got)
	}
	m := s.Metrics()
	if m.DeadLettersRedelivered != 2 || m.DeadLettersRequarantined != 1 {
		t.Fatalf("metrics = redelivered %d requarantined %d, want 2 and 1", m.DeadLettersRedelivered, m.DeadLettersRequarantined)
	}
	// The poison letter is back in quarantine and can be retried again.
	left := s.DeadLetters()
	if len(left) != 1 || left[0].Class != wire.NackDecode {
		t.Fatalf("quarantine after redelivery = %+v, want the one poison letter", left)
	}
	if redelivered, requarantined := s.RedeliverDeadLetters(); redelivered != 0 || requarantined != 1 {
		t.Fatalf("second pass = (%d, %d), want (0, 1)", redelivered, requarantined)
	}
	// An empty ring drains to nothing.
	s.letters.drain()
	if redelivered, requarantined := s.RedeliverDeadLetters(); redelivered != 0 || requarantined != 0 {
		t.Fatalf("empty-ring pass = (%d, %d), want zeros", redelivered, requarantined)
	}
}
