// Command mpdemo runs a two-process Method Partitioning demo over real TCP:
// start the subscriber (receiver) first, then point the publisher at it, or
// use -mode both to run the full loop in one process.
//
//	mpdemo -mode both
//	mpdemo -mode both -queue 8 -overflow drop-oldest
//	mpdemo -mode both -debug-addr 127.0.0.1:8377 -trace trace.jsonl
//	mpdemo -mode both -split-policy latency-first
//	mpdemo -mode publish -addr 127.0.0.1:7000 -frames 50
//	mpdemo -mode subscribe -addr 127.0.0.1:7000
//
// In publish/subscribe mode the roles are reversed from the subscription
// flow: the *publisher* listens and the subscriber dials it, matching the
// jecho handshake. On exit, publish/both modes print the per-subscription
// channel metrics (drops, queue high-water, bytes on wire vs. saved).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"methodpart"
	"methodpart/internal/imaging"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpdemo:", err)
		os.Exit(1)
	}
}

// demoFlags bundles mpdemo's flag set so the EXPERIMENTS.md drift guard
// (flags_doc_test.go) can enumerate exactly the flags the binary registers.
type demoFlags struct {
	fs           *flag.FlagSet
	mode         *string
	addr         *string
	frames       *int
	display      *int
	queue        *int
	overflow     *string
	heartbeat    *time.Duration
	batchBytes   *int
	batchDelay   *time.Duration
	writeTimeout *time.Duration
	resubscribe  *bool
	maxWork      *int64
	deadletter   *bool
	splitPolicy  *string
	linkEstimate *time.Duration
	flipMargin   *float64
	flipConfirm  *int
	debugAddr    *string
	trace        *string
}

// newDemoFlags declares every mpdemo flag on a fresh flag set.
func newDemoFlags() *demoFlags {
	fs := flag.NewFlagSet("mpdemo", flag.ContinueOnError)
	return &demoFlags{
		fs:           fs,
		mode:         fs.String("mode", "both", "both | publish | subscribe"),
		addr:         fs.String("addr", "127.0.0.1:0", "publisher listen address (publish/both) or target (subscribe)"),
		frames:       fs.Int("frames", 40, "frames to publish"),
		display:      fs.Int("display", 160, "subscriber display size"),
		queue:        fs.Int("queue", 0, "per-subscription send queue depth (0 = default)"),
		overflow:     fs.String("overflow", "block", "send queue overflow policy: block | drop-newest | drop-oldest"),
		heartbeat:    fs.Duration("heartbeat", 0, "idle-liveness heartbeat interval (0 = default, negative = disabled)"),
		batchBytes:   fs.Int("batch-bytes", 0, "coalesce queued event frames into batch wire frames up to this many payload bytes (0 = batching off)"),
		batchDelay:   fs.Duration("batch-delay", 0, "linger this long for more frames after the first of a batch (needs -batch-bytes)"),
		writeTimeout: fs.Duration("write-timeout", 0, "per-frame write deadline (0 = default, negative = disabled)"),
		resubscribe:  fs.Bool("resubscribe", false, "subscriber auto-redials and resyncs after connection loss"),
		maxWork:      fs.Int64("max-work", 0, "per-message interpreter work budget at the subscriber (>0 enables)"),
		deadletter:   fs.Bool("deadletter", false, "print the subscriber's dead-letter quarantine on exit"),
		splitPolicy:  fs.String("split-policy", "balanced", "subscriber SLO policy picking the split off the Pareto front: balanced | latency-first | cost-first | receiver-weak"),
		linkEstimate: fs.Duration("link-estimate-interval", 0, "measure the link from heartbeat echoes and bytes-on-wire, refreshing the cost-model environment this often (0 = off; needs heartbeats)"),
		flipMargin:   fs.Float64("flip-margin", 0, "flip hysteresis: a challenger cut must beat the incumbent's primary objective by this fraction (e.g. 0.1; 0 = flip eagerly)"),
		flipConfirm:  fs.Int("flip-confirmations", 0, "flip hysteresis: consecutive margin-beating selections required before a flip (0 = default 3; needs -flip-margin)"),
		debugAddr:    fs.String("debug-addr", "", "serve /metrics and /debug/split on this address (e.g. 127.0.0.1:8377; empty = off)"),
		trace:        fs.String("trace", "", "dump the split-lifecycle trace as JSON lines to this file on exit (\"-\" = stdout; empty = off)"),
	}
}

func run(args []string) error {
	df := newDemoFlags()
	if err := df.fs.Parse(args); err != nil {
		return err
	}
	policy, err := parsePolicy(*df.overflow)
	if err != nil {
		return err
	}
	splitPolicy, err := methodpart.ParseSLOPolicy(*df.splitPolicy)
	if err != nil {
		return err
	}
	sup := supervisionFlags{
		heartbeat:    *df.heartbeat,
		writeTimeout: *df.writeTimeout,
		resubscribe:  *df.resubscribe,
		maxWork:      *df.maxWork,
		deadletter:   *df.deadletter,
		batchBytes:   *df.batchBytes,
		batchDelay:   *df.batchDelay,
		splitPolicy:  splitPolicy,
		linkEstimate: *df.linkEstimate,
		flipMargin:   *df.flipMargin,
		flipConfirm:  *df.flipConfirm,
	}
	obs := newObservability(*df.debugAddr, *df.trace)
	defer obs.finish()
	switch *df.mode {
	case "both":
		return runBoth(*df.addr, *df.frames, *df.display, *df.queue, policy, sup, obs)
	case "publish":
		return runPublisher(*df.addr, *df.frames, *df.queue, policy, sup, true, obs)
	case "subscribe":
		return runSubscriber(*df.addr, *df.display, sup, obs)
	default:
		return fmt.Errorf("unknown mode %q", *df.mode)
	}
}

// observability bundles the -debug-addr / -trace wiring: one tracer and
// metrics registry shared by whatever endpoints the chosen mode creates.
type observability struct {
	tracer    *methodpart.Tracer
	registry  *methodpart.MetricsRegistry
	debugAddr string
	tracePath string
	server    *methodpart.DebugServer
	status    []func() methodpart.EndpointStatus
}

func newObservability(debugAddr, tracePath string) *observability {
	o := &observability{debugAddr: debugAddr, tracePath: tracePath}
	if debugAddr != "" || tracePath != "" {
		o.tracer = methodpart.NewTracer(methodpart.DefaultTraceCapacity)
	}
	if debugAddr != "" {
		o.registry = methodpart.NewMetricsRegistry()
	}
	return o
}

// attach registers an endpoint (Publisher or Subscriber) with the metrics
// registry and the /debug/split status table.
func (o *observability) attach(c methodpart.MetricsCollector, status func() methodpart.EndpointStatus) {
	if o.registry != nil {
		o.registry.Register(c)
		o.status = append(o.status, status)
	}
}

// start binds the debug listener once every endpoint is attached.
func (o *observability) start() error {
	if o.debugAddr == "" {
		return nil
	}
	statuses := o.status
	srv, err := methodpart.StartDebug(methodpart.DebugConfig{
		Addr:     o.debugAddr,
		Registry: o.registry,
		Tracer:   o.tracer,
		Split: func() []methodpart.EndpointStatus {
			out := make([]methodpart.EndpointStatus, 0, len(statuses))
			for _, fn := range statuses {
				out = append(out, fn())
			}
			return out
		},
	})
	if err != nil {
		return err
	}
	o.server = srv
	fmt.Printf("debug listener at http://%s (/metrics /metrics.json /debug/split /debug/trace)\n", srv.Addr())
	return nil
}

// finish dumps the trace (if requested) and stops the debug listener.
func (o *observability) finish() {
	if o.tracePath != "" {
		w := os.Stdout
		if o.tracePath != "-" {
			f, err := os.Create(o.tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpdemo: trace:", err)
				return
			}
			defer f.Close()
			w = f
		}
		if err := o.tracer.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "mpdemo: trace:", err)
		}
		if d := o.tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "mpdemo: trace ring dropped %d oldest events\n", d)
		}
	}
	if o.server != nil {
		o.server.Close()
	}
}

// supervisionFlags bundles the connection-supervision and fault-containment
// knobs shared by both roles.
type supervisionFlags struct {
	heartbeat    time.Duration
	writeTimeout time.Duration
	resubscribe  bool
	maxWork      int64
	deadletter   bool
	batchBytes   int
	batchDelay   time.Duration
	splitPolicy  methodpart.SLOPolicy
	linkEstimate time.Duration
	flipMargin   float64
	flipConfirm  int
}

func parsePolicy(name string) (methodpart.OverflowPolicy, error) {
	switch name {
	case "block":
		return methodpart.Block, nil
	case "drop-newest":
		return methodpart.DropNewest, nil
	case "drop-oldest":
		return methodpart.DropOldest, nil
	default:
		return methodpart.Block, fmt.Errorf("unknown overflow policy %q", name)
	}
}

func newPublisher(addr string, queue int, policy methodpart.OverflowPolicy, sup supervisionFlags, obs *observability) (*methodpart.Publisher, error) {
	reg, _ := imaging.Builtins()
	pub, err := methodpart.NewPublisher(methodpart.PublisherConfig{
		Addr:                 addr,
		Builtins:             reg,
		FeedbackEvery:        2,
		QueueDepth:           queue,
		OverflowPolicy:       policy,
		HeartbeatInterval:    sup.heartbeat,
		WriteTimeout:         sup.writeTimeout,
		BatchBytes:           sup.batchBytes,
		BatchDelay:           sup.batchDelay,
		LinkEstimateInterval: sup.linkEstimate,
		FlipMargin:           sup.flipMargin,
		FlipConfirmations:    sup.flipConfirm,
		Tracer:               obs.tracer,
	})
	if err != nil {
		return nil, err
	}
	obs.attach(pub, pub.Status)
	return pub, nil
}

func runPublisher(addr string, frames, queue int, policy methodpart.OverflowPolicy, sup supervisionFlags, wait bool, obs *observability) error {
	pub, err := newPublisher(addr, queue, policy, sup, obs)
	if err != nil {
		return err
	}
	defer pub.Close()
	if err := obs.start(); err != nil {
		return err
	}
	fmt.Printf("publisher listening at %s\n", pub.Addr())
	if wait {
		fmt.Println("waiting for a subscriber...")
		for pub.Subscribers() == 0 {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if err := publishFrames(pub, frames); err != nil {
		return err
	}
	printChannelMetrics(pub)
	return nil
}

func publishFrames(pub *methodpart.Publisher, frames int) error {
	for i := 0; i < frames; i++ {
		size := 80
		if i >= frames/2 {
			size = 220
		}
		if _, err := pub.Publish(imaging.NewFrame(size, size, int64(i))); err != nil {
			return err
		}
		fmt.Printf("published frame %d (%dx%d)\n", i, size, size)
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	return nil
}

// printChannelMetrics renders one line per live subscription.
func printChannelMetrics(pub *methodpart.Publisher) {
	infos := pub.Subscriptions()
	if len(infos) == 0 {
		return
	}
	fmt.Println("channel metrics (publisher side):")
	for _, info := range infos {
		m := info.Metrics
		fmt.Printf("  %s ch=%q plan=v%d split=%v\n", info.ID, info.Channel, info.PlanVersion, info.SplitIDs)
		fmt.Printf("    published=%d suppressed=%d enqueued=%d dropped=%d queueHW=%d\n",
			m.Published, m.Suppressed, m.Enqueued, m.Dropped, m.QueueHighWater)
		fmt.Printf("    bytesOnWire=%d bytesSaved=%d feedback=%d coalesced=%d planFlips=%d\n",
			m.BytesOnWire, m.BytesSaved, m.FeedbackSent, m.FeedbackCoalesced, m.PlanFlips)
	}
}

func runSubscriber(addr string, display int, sup supervisionFlags, obs *observability) error {
	sub, err := subscribe(addr, display, sup, obs)
	if err != nil {
		return err
	}
	defer sub.Close()
	if err := obs.start(); err != nil {
		return err
	}
	fmt.Printf("subscribed to %s; waiting for frames (ctrl-c to quit)\n", addr)
	<-sub.Done()
	if sup.deadletter {
		printDeadLetters(sub)
	}
	return nil
}

// printDeadLetters renders the subscriber's poison-message quarantine.
func printDeadLetters(sub *methodpart.Subscriber) {
	letters := sub.DeadLetters()
	total := sub.Metrics().DeadLettered
	fmt.Printf("dead letters (%d quarantined, %d retained):\n", total, len(letters))
	for _, dl := range letters {
		fmt.Printf("  %s seq=%d pse=%d class=%s frame=%dB: %s\n",
			dl.When.Format(time.RFC3339Nano), dl.Seq, dl.PSEID, dl.Class, len(dl.Frame), dl.Reason)
	}
}

func subscribe(addr string, display int, sup supervisionFlags, obs *observability) (*methodpart.Subscriber, error) {
	reg, _ := imaging.Builtins()
	sub, err := methodpart.Subscribe(methodpart.SubscriberConfig{
		Addr:                 addr,
		Name:                 "mpdemo",
		Source:               imaging.HandlerSource(display),
		Handler:              imaging.HandlerName,
		CostModel:            "datasize",
		Natives:              []string{"displayImage"},
		Builtins:             reg,
		Environment:          methodpart.DefaultEnvironment(),
		ReconfigEvery:        2,
		DiffThreshold:        0.1,
		Resubscribe:          sup.resubscribe,
		HeartbeatInterval:    sup.heartbeat,
		WriteTimeout:         sup.writeTimeout,
		MaxWork:              sup.maxWork,
		SplitPolicy:          sup.splitPolicy,
		LinkEstimateInterval: sup.linkEstimate,
		FlipMargin:           sup.flipMargin,
		FlipConfirmations:    sup.flipConfirm,
		Tracer:               obs.tracer,
		OnResult: func(r *methodpart.HandlerResult) {
			fmt.Printf("  received message (split PSE %d)\n", r.SplitPSE)
		},
	})
	if err != nil {
		return nil, err
	}
	obs.attach(sub, sub.Status)
	return sub, nil
}

func runBoth(addr string, frames, display, queue int, policy methodpart.OverflowPolicy, sup supervisionFlags, obs *observability) error {
	pub, err := newPublisher(addr, queue, policy, sup, obs)
	if err != nil {
		return err
	}
	defer pub.Close()
	sub, err := subscribe(pub.Addr(), display, sup, obs)
	if err != nil {
		return err
	}
	defer sub.Close()
	if err := obs.start(); err != nil {
		return err
	}
	for pub.Subscribers() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := publishFrames(pub, frames); err != nil {
		return err
	}
	printChannelMetrics(pub)
	sm := sub.Metrics()
	fmt.Printf("channel metrics (subscriber side): processed=%d bytesReceived=%d planFlips=%d\n",
		sm.Published, sm.BytesOnWire, sm.PlanFlips)
	if sm.DecodeFailures+sm.DemodFailures > 0 {
		fmt.Printf("  decodeFailures=%d demodFailures=%d nacksSent=%d deadLettered=%d breakerTrips=%d\n",
			sm.DecodeFailures, sm.DemodFailures, sm.NacksSent, sm.DeadLettered, sm.BreakerTrips)
	}
	if sup.deadletter {
		printDeadLetters(sub)
	}
	fmt.Printf("done: %d messages processed by the subscriber\n", sub.Processed())
	return nil
}
