package obsv

// The /debug/split schema: a neutral, JSON-stable description of one
// endpoint's live split state. internal/jecho fills these from its
// publisher/subscriber internals; keeping the types here means the
// introspection surface is defined (and versioned) in one place and any
// future endpoint can reuse it.

// EndpointStatus is the split state of one endpoint (a publisher or a
// subscriber) at snapshot time.
type EndpointStatus struct {
	// Role is "publisher" or "subscriber".
	Role string `json:"role"`
	// Name identifies the endpoint (listen address or subscriber name).
	Name string `json:"name"`
	// Channels holds one entry per live subscription (publisher side) or
	// the single subscription (subscriber side).
	Channels []ChannelStatus `json:"channels"`
	// PlanClasses is the number of live plan-equivalence classes
	// (publisher side): subscriptions sharing a class share one modulation
	// per event.
	PlanClasses int `json:"plan_classes,omitempty"`
	// ModulationsSaved counts the per-subscriber modulator runs avoided by
	// class sharing (publisher side).
	ModulationsSaved uint64 `json:"modulations_saved,omitempty"`
}

// ChannelStatus is the live state of one subscription's split loop.
type ChannelStatus struct {
	// ID is the subscription id (publisher side) or subscriber name.
	ID string `json:"id"`
	// Channel is the event channel the subscription is attached to.
	Channel string `json:"channel"`
	// Handler is the installed handler's name.
	Handler string `json:"handler"`
	// PlanVersion is the active partitioning plan's version.
	PlanVersion uint64 `json:"plan_version"`
	// Split is the active plan's flagged split set.
	Split []int32 `json:"split"`
	// QueueLen is the instantaneous outbound queue depth (publisher).
	QueueLen int `json:"queue_len"`
	// Metrics is the endpoint's counter snapshot, keyed by counter name.
	Metrics map[string]uint64 `json:"metrics"`
	// PSEs is the live UG/PSE table with profiled statistics.
	PSEs []PSEStatus `json:"pses"`
	// Breakers lists the PSEs with non-closed (or recently failing)
	// breaker state; empty when every breaker is closed and idle.
	Breakers []BreakerStatus `json:"breakers,omitempty"`
	// LastMinCut explains the most recent plan selection, when one ran on
	// this endpoint (the publisher only runs one to degrade).
	LastMinCut *MinCutStatus `json:"last_min_cut,omitempty"`
	// Link is the live link estimate feeding the reconfiguration unit,
	// when link estimation is enabled on this endpoint.
	Link *LinkStatus `json:"link,omitempty"`
}

// LinkStatus is one subscription's live link estimate: the smoothed
// measurements and how many samples back each axis. A busy channel whose
// RTT sample count stays at zero (while heartbeats flow) indicates a
// broken estimator or a pre-v6 peer that cannot echo.
type LinkStatus struct {
	// RTTMS is the smoothed round-trip time in milliseconds (0 until the
	// first echo).
	RTTMS float64 `json:"rtt_ms"`
	// BandwidthBytesPerMS is the smoothed effective bandwidth.
	BandwidthBytesPerMS float64 `json:"bandwidth_bytes_per_ms"`
	// RTTSamples / BandwidthSamples count the samples behind each axis.
	RTTSamples       uint64 `json:"rtt_samples"`
	BandwidthSamples uint64 `json:"bandwidth_samples"`
	// Warm reports whether at least one axis has cleared its warm-up gate
	// and is overriding the configured environment.
	Warm bool `json:"warm"`
}

// PSEStatus is one row of the live UG/PSE table: the edge's place in the
// Unit Graph plus its current profiled statistics.
type PSEStatus struct {
	// ID is the dense PSE id (0 is the synthetic raw PSE).
	ID int32 `json:"id"`
	// From/To are the Unit Graph nodes the edge connects.
	From int `json:"from"`
	To   int `json:"to"`
	// Vars is the hand-over set (live variables crossing the edge).
	Vars []string `json:"vars,omitempty"`
	// InSplit reports whether the active plan splits here.
	InSplit bool `json:"in_split"`
	// Profiled reports whether the active plan profiles this edge.
	Profiled bool `json:"profiled"`
	// Count, Bytes, ModWork, DemodWork, Prob, Failures mirror the
	// profiled costmodel.Stat driving the min-cut.
	Count     uint64  `json:"count"`
	Bytes     float64 `json:"bytes"`
	ModWork   float64 `json:"mod_work"`
	DemodWork float64 `json:"demod_work"`
	Prob      float64 `json:"prob"`
	Failures  uint64  `json:"failures"`
}

// BreakerStatus is one PSE's circuit-breaker state.
type BreakerStatus struct {
	// PSE is the guarded split edge.
	PSE int32 `json:"pse"`
	// State is "closed", "open" or "half-open".
	State string `json:"state"`
	// WindowFailures counts failures inside the current window (closed
	// state).
	WindowFailures int `json:"window_failures,omitempty"`
	// OpenRemainingMS is the cooldown left before the half-open probe
	// (open state).
	OpenRemainingMS int64 `json:"open_remaining_ms,omitempty"`
}

// MinCutStatus explains one reconfiguration-unit plan selection: the
// inputs it priced and the cut it chose.
type MinCutStatus struct {
	// Version is the plan version the selection produced.
	Version uint64 `json:"version"`
	// Cut is the chosen split set.
	Cut []int32 `json:"cut"`
	// CutValue is the min-cut capacity (cost-model units).
	CutValue int64 `json:"cut_value"`
	// Tripped lists the PSEs priced out by open breakers.
	Tripped []int32 `json:"tripped,omitempty"`
	// Capacities are the per-PSE edge capacities the max-flow saw,
	// indexed by PSE id.
	Capacities map[int32]int64 `json:"capacities"`
	// Profiled reports how many PSEs had live statistics (vs. static
	// estimates).
	Profiled int `json:"profiled"`
	// Policy is the SLO policy that picked the operating point
	// ("balanced", "latency-first", "cost-first", "receiver-weak").
	Policy string `json:"policy,omitempty"`
	// Front is the Pareto front the selection chose from: the
	// non-dominated candidate cuts plus the pinned balanced min-cut point,
	// sorted by bytes then latency. A front of size 1 is degenerate — the
	// chosen point sits alone, so every policy collapses to the same plan.
	Front []FrontPointStatus `json:"front,omitempty"`
	// Chosen indexes the Front entry the policy selected.
	Chosen int `json:"chosen,omitempty"`
	// Env is the environment this selection priced costs under — the
	// measured environment when link estimation is feeding the unit, the
	// configured one otherwise.
	Env *EnvStatus `json:"env,omitempty"`
	// Suppressed reports that flip hysteresis overrode the policy's
	// preference and kept the incumbent cut.
	Suppressed bool `json:"suppressed,omitempty"`
	// PendingCut is the challenger cut currently building a confirmation
	// streak (absent when none).
	PendingCut []int32 `json:"pending_cut,omitempty"`
	// PendingStreak is how many consecutive selections PendingCut has
	// beaten the incumbent by the margin.
	PendingStreak int `json:"pending_streak,omitempty"`
	// FlipsSuppressed is the unit's cumulative suppressed-flip count.
	FlipsSuppressed uint64 `json:"flips_suppressed,omitempty"`
}

// EnvStatus is the costmodel.Environment a selection priced against, as
// surfaced through /debug/split.
type EnvStatus struct {
	// SenderSpeed / ReceiverSpeed are processing rates in work units/ms.
	SenderSpeed   float64 `json:"sender_speed"`
	ReceiverSpeed float64 `json:"receiver_speed"`
	// Bandwidth is the link bandwidth in bytes/ms.
	Bandwidth float64 `json:"bandwidth"`
	// LatencyMS is the one-way link latency in milliseconds.
	LatencyMS float64 `json:"latency_ms"`
}

// FrontPointStatus is one operating point of the Pareto front as surfaced
// through /debug/split: the candidate cut and its cost vector.
type FrontPointStatus struct {
	// Cut is the candidate split set (sorted PSE ids).
	Cut []int32 `json:"cut"`
	// Bytes is the expected continuation bytes on the wire per message.
	Bytes float64 `json:"bytes"`
	// LatencyMS is the expected end-to-end latency estimate (ms).
	LatencyMS float64 `json:"latency_ms"`
	// SenderWork / ReceiverWork are the expected per-message work units on
	// each side of the cut.
	SenderWork   float64 `json:"sender_work"`
	ReceiverWork float64 `json:"receiver_work"`
	// FailureRate is the expected faults per message at this cut.
	FailureRate float64 `json:"failure_rate"`
	// CutValue is the scalar capacity of the cut under the channel's cost
	// model.
	CutValue int64 `json:"cut_value"`
	// Balanced marks the scalar min-cut's (pinned) point.
	Balanced bool `json:"balanced,omitempty"`
	// Chosen marks the point the active policy selected.
	Chosen bool `json:"chosen,omitempty"`
}
