package jecho_test

import (
	"errors"
	"os"
	"testing"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/transport"
)

// chaosPublisher starts a publisher with tight supervision timers on the
// given transport. Logs are discarded: chaos scenarios log from supervision
// goroutines whose timing the test does not control. A caller-set Addr is
// honoured (restart scenarios relisten on a fixed address); the zero value
// auto-allocates as usual.
func chaosPublisher(t *testing.T, tr transport.Transport, cfg jecho.PublisherConfig) *jecho.Publisher {
	t.Helper()
	reg, _ := imaging.Builtins()
	cfg.Transport = tr
	cfg.Builtins = reg
	cfg.Logf = func(string, ...any) {}
	pub, err := jecho.NewPublisher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub.Close() })
	return pub
}

// chaosSubscribe attaches a subscriber with explicit supervision config.
func chaosSubscribe(t *testing.T, tr transport.Transport, addr string, cfg jecho.SubscriberConfig) *jecho.Subscriber {
	t.Helper()
	reg, _ := imaging.Builtins()
	cfg.Addr = addr
	cfg.Transport = tr
	cfg.Source = imaging.HandlerSource(64)
	cfg.Handler = imaging.HandlerName
	cfg.CostModel = costmodel.DataSizeName
	cfg.Natives = []string{"displayImage"}
	cfg.Builtins = reg
	cfg.Environment = costmodel.DefaultEnvironment()
	cfg.Logf = func(string, ...any) {}
	sub, err := jecho.Subscribe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sub.Close() })
	return sub
}

// theSession returns the publisher's single live session, if exactly one.
func theSession(pub *jecho.Publisher) (jecho.SubscriptionInfo, bool) {
	subs := pub.Subscriptions()
	if len(subs) != 1 {
		return jecho.SubscriptionInfo{}, false
	}
	return subs[0], true
}

// TestChaosSeverResubscribeResyncs is the acceptance scenario for the
// supervision layer: converge a channel on its optimal split, cut the link
// mid-stream, and require that the subscriber redials, resubscribes, and
// seeds the fresh session from its merged profiling snapshot — the split
// returns to the pre-failure optimum without either process restarting.
func TestChaosSeverResubscribeResyncs(t *testing.T) {
	flaky := transport.NewFlaky(transport.NewMem(), transport.FaultPlan{Seed: 1})
	pub := chaosPublisher(t, flaky, jecho.PublisherConfig{
		FeedbackEvery:     5,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
	})
	sub := chaosSubscribe(t, flaky, pub.Addr(), jecho.SubscriberConfig{
		Name:              "chaos",
		ReconfigEvery:     5,
		Resubscribe:       true,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
	})

	// Converge on the optimum for large frames. Publishes that land in a
	// severed window are part of the scenario, not test failures.
	seq := int64(0)
	publish := func(n int) {
		for i := 0; i < n; i++ {
			_, _ = pub.Publish(imaging.NewFrame(200, 200, seq))
			seq++
			time.Sleep(time.Millisecond)
		}
	}
	publish(120)

	before, ok := theSession(pub)
	if !ok {
		t.Fatal("no session after convergence")
	}
	processedBefore := sub.Processed()

	if n := flaky.SeverAll(); n == 0 {
		t.Fatal("SeverAll cut nothing")
	}

	// Recovery: a fresh session (new id) registered with a strictly newer
	// plan — pushed by resync, before any post-cut publish.
	deadline := time.Now().Add(10 * time.Second)
	var after jecho.SubscriptionInfo
	for {
		if info, ok := theSession(pub); ok && info.ID != before.ID && info.PlanVersion > before.PlanVersion {
			after = info
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no fresh session after the cut (before=%+v, now=%+v)", before, pub.Subscriptions())
		}
		time.Sleep(time.Millisecond)
	}

	if got, want := after.SplitIDs, before.SplitIDs; len(got) != len(want) || !equalSplitIDs(got, want) {
		t.Errorf("split after recovery = %v, want pre-failure optimum %v", got, want)
	}
	if m := sub.Metrics(); m.Reconnects == 0 {
		t.Error("subscriber recorded no reconnects")
	}
	if err := sub.Err(); err != nil {
		t.Errorf("Err mid-life after successful resubscribe = %v, want nil", err)
	}

	// The recovered channel still moves data and holds the optimum.
	publish(40)
	waitProcessedAbove(t, sub, processedBefore)
	if info, ok := theSession(pub); ok && !equalSplitIDs(info.SplitIDs, before.SplitIDs) {
		t.Errorf("split drifted after recovery: %v vs %v", info.SplitIDs, before.SplitIDs)
	}
}

func equalSplitIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func waitProcessedAbove(t *testing.T, sub *jecho.Subscriber, base uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for sub.Processed() <= base {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber stuck at %d processed messages", base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosStalledWriterHitsDeadline is the second acceptance scenario: a
// peer that stops draining wedges the sender's conn write; the write
// deadline must fail it and retire the subscription instead of leaving the
// sender goroutine blocked forever. Heartbeats are disabled so only the
// write path can detect the stall.
func TestChaosStalledWriterHitsDeadline(t *testing.T) {
	mem := transport.NewMem()
	pub := chaosPublisher(t, mem, jecho.PublisherConfig{
		QueueDepth:        4,
		OverflowPolicy:    jecho.DropNewest,
		HeartbeatInterval: -1, // no heartbeats: isolate the write deadline
		WriteTimeout:      150 * time.Millisecond,
	})
	stalledSubscriber(t, mem, pub.Addr(), "wedged")
	waitSubscribers(t, pub, 1)

	// Fill the transport buffer until the sender blocks in WriteFrame;
	// DropNewest keeps Publish itself non-blocking throughout.
	deadline := time.Now().Add(10 * time.Second)
	for i := int64(0); pub.Subscribers() != 0; i++ {
		if time.Now().After(deadline) {
			t.Fatal("stalled peer was never retired by the write deadline")
		}
		if _, err := pub.Publish(imaging.NewFrame(64, 64, i)); err != nil {
			t.Fatalf("publish must not error under DropNewest: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Retired cleanly: the publisher keeps serving.
	if n, err := pub.Publish(imaging.NewFrame(64, 64, 9999)); err != nil || n != 0 {
		t.Fatalf("publish after retirement: n=%d err=%v", n, err)
	}
}

// TestChaosSilentPeerRetired: a subscriber that handshakes and then falls
// silent (no heartbeats, no plans) exceeds the publisher's read window and
// is retired — without any publish traffic forcing the issue.
func TestChaosSilentPeerRetired(t *testing.T) {
	mem := transport.NewMem()
	pub := chaosPublisher(t, mem, jecho.PublisherConfig{
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatMisses:   4, // 100ms silence window
	})
	stalledSubscriber(t, mem, pub.Addr(), "mute")
	waitSubscribers(t, pub, 1)
	waitSubscribers(t, pub, 0) // silence window expires, peer retired
}

// TestChaosSubscriberDetectsSilentPublisher: the mirror direction — a
// publisher that accepts the subscription and then never sends a frame
// (here: a bare listener draining frames) trips the subscriber's read
// window; with Resubscribe off that is terminal.
func TestChaosSubscriberDetectsSilentPublisher(t *testing.T) {
	mem := transport.NewMem()
	ln, err := mem.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c transport.Conn) { // drain, never speak
				for {
					if _, err := c.ReadFrame(); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	sub := chaosSubscribe(t, mem, ln.Addr(), jecho.SubscriberConfig{
		Name:              "watchful",
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatMisses:   4, // 100ms silence window
	})
	select {
	case <-sub.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber never gave up on the silent publisher")
	}
	if err := sub.Err(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("terminal error = %v, want deadline exceeded", err)
	}
}

// TestChaosResubscribeGivesUp: when the publisher is gone for good, a
// resubscribing subscriber exhausts its attempts and fails terminally —
// Done closes and Err reports the outage.
func TestChaosResubscribeGivesUp(t *testing.T) {
	mem := transport.NewMem()
	pub := chaosPublisher(t, mem, jecho.PublisherConfig{})
	sub := chaosSubscribe(t, mem, pub.Addr(), jecho.SubscriberConfig{
		Name:                "orphan",
		Resubscribe:         true,
		ResubscribeAttempts: 2,
	})
	waitSubscribers(t, pub, 1)
	_ = pub.Close() // listener deregisters: every redial is refused
	select {
	case <-sub.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("subscriber never exhausted its resubscribe attempts")
	}
	if sub.Err() == nil {
		t.Fatal("Err after exhausted resubscribe = nil, want an error")
	}
}

// TestChaosHeartbeatMetrics: an idle but healthy channel exchanges
// heartbeats in both directions, and both endpoints count them.
func TestChaosHeartbeatMetrics(t *testing.T) {
	mem := transport.NewMem()
	pub := chaosPublisher(t, mem, jecho.PublisherConfig{
		HeartbeatInterval: 20 * time.Millisecond,
	})
	sub := chaosSubscribe(t, mem, pub.Addr(), jecho.SubscriberConfig{
		Name:              "pulse",
		HeartbeatInterval: 20 * time.Millisecond,
	})
	waitSubscribers(t, pub, 1)

	deadline := time.Now().Add(5 * time.Second)
	for {
		sm := sub.Metrics()
		pm := findSub(t, pub, "pulse").Metrics
		if sm.HeartbeatsSent > 0 && sm.HeartbeatsReceived > 0 &&
			pm.HeartbeatsSent > 0 && pm.HeartbeatsReceived > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heartbeats not flowing both ways: sub=%+v pub=%+v", sm, pm)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Neither side retired the other: heartbeats kept the idle channel
	// alive across many silence windows.
	if pub.Subscribers() != 1 {
		t.Fatalf("idle heartbeating channel lost its subscription")
	}
}
