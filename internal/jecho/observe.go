package jecho

import (
	"fmt"
	"strconv"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/linkest"
	"methodpart/internal/obsv"
	"methodpart/internal/partition"
	"methodpart/internal/reconfig"
)

// This file is the observability glue between the event system and
// internal/obsv: per-PSE histograms fed from the hot paths, Collector
// implementations for Publisher and Subscriber, the /debug/split status
// snapshots, and the helpers that translate lifecycle steps into trace
// events. The mechanism (Tracer, Histogram, Registry) lives in obsv; this
// file decides *what* the event system measures and emits.

// pseHistograms holds one latency/bytes/work histogram triple per PSE of a
// compiled handler. Both sides use the same shape: on the publisher the
// triple measures modulation latency, wire bytes produced and sender-side
// work; on the subscriber, demodulation latency, frame bytes consumed and
// receiver-side work. Observing is allocation-free, so the histograms are
// always on.
type pseHistograms struct {
	latency []*obsv.Histogram
	bytes   []*obsv.Histogram
	work    []*obsv.Histogram
}

func newPSEHistograms(n int) *pseHistograms {
	h := &pseHistograms{
		latency: make([]*obsv.Histogram, n),
		bytes:   make([]*obsv.Histogram, n),
		work:    make([]*obsv.Histogram, n),
	}
	for i := 0; i < n; i++ {
		h.latency[i] = obsv.NewHistogram(obsv.LatencyBuckets)
		h.bytes[i] = obsv.NewHistogram(obsv.SizeBuckets)
		h.work[i] = obsv.NewHistogram(obsv.WorkBuckets)
	}
	return h
}

// batchHistograms measures the shape of the batching path on one
// subscription: how many events each wire frame carried and how full the
// BatchBytes budget was when it left. Nil (batching off, or a v3 peer)
// costs nothing — observe is a no-op.
type batchHistograms struct {
	entries *obsv.Histogram
	fill    *obsv.Histogram
}

// Batch shape buckets: entry counts are small powers of two (a batch
// rarely exceeds the queue depth); fill is a ratio in [0, 1+] — the last
// bucket catches batches whose final entry overshot the budget.
var (
	batchEntryBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}
	batchFillBuckets  = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1}
)

func newBatchHistograms() *batchHistograms {
	return &batchHistograms{
		entries: obsv.NewHistogram(batchEntryBuckets),
		fill:    obsv.NewHistogram(batchFillBuckets),
	}
}

// observe records one departed event frame: n entries totalling total
// payload bytes against a budget of max.
func (b *batchHistograms) observe(n, total, max int) {
	if b == nil {
		return
	}
	b.entries.Observe(float64(n))
	if max > 0 {
		b.fill.Observe(float64(total) / float64(max))
	}
}

// observe records one message against its split PSE. Out-of-range ids
// (ForcedSplit, UnattributedPSE) are dropped — they name no table row.
func (h *pseHistograms) observe(pse int32, dur time.Duration, bytes, work int64) {
	if h == nil || pse < 0 || int(pse) >= len(h.latency) {
		return
	}
	h.latency[pse].Observe(dur.Seconds())
	if bytes > 0 {
		h.bytes[pse].Observe(float64(bytes))
	}
	h.work[pse].Observe(float64(work))
}

// observePublish records one successful modulation: histograms
// unconditionally, a trace event only when the tracer is enabled. The
// disabled-tracer cost — one histogram observe plus one atomic load — is
// testable in isolation (it must stay at zero allocations per event; see
// obs_alloc_test.go). publishClass observes the class histograms once per
// event but emits one trace event per member (tracePublish), so
// trace-derived per-subscriber breakdowns keep working under class
// sharing.
func observePublish(tr *obsv.Tracer, h *pseHistograms, channel, sub string, plan uint64, out *partition.Output, dur time.Duration) {
	h.observe(out.SplitPSE, dur, out.WireBytes, out.ModWork)
	tracePublish(tr, channel, sub, plan, out, dur)
}

// tracePublish emits the EvPublish/EvSuppress event for one (member,
// modulation) pair. No-op (one atomic load) when the tracer is disabled.
func tracePublish(tr *obsv.Tracer, channel, sub string, plan uint64, out *partition.Output, dur time.Duration) {
	if !tr.Enabled() {
		return
	}
	ev := obsv.Event{
		Kind:    obsv.EvPublish,
		Channel: channel,
		Sub:     sub,
		PSE:     out.SplitPSE,
		Plan:    plan,
		Bytes:   out.WireBytes,
		Work:    out.ModWork,
		Dur:     dur.Nanoseconds(),
	}
	switch {
	case out.Suppressed:
		ev.Kind = obsv.EvSuppress
	case out.Raw != nil:
		ev.EventSeq = out.Raw.Seq
		ev.Detail = "raw"
	default:
		ev.EventSeq = out.Cont.Seq
		ev.Detail = "cont"
	}
	tr.Emit(ev)
}

// observeDemod records one completed demodulation, mirroring
// observePublish on the receiver side.
func observeDemod(tr *obsv.Tracer, h *pseHistograms, channel, sub string, seq uint64, pse int32, frameBytes, work int64, dur time.Duration) {
	h.observe(pse, dur, frameBytes, work)
	if !tr.Enabled() {
		return
	}
	tr.Emit(obsv.Event{
		Kind:     obsv.EvDemod,
		Channel:  channel,
		Sub:      sub,
		PSE:      pse,
		EventSeq: seq,
		Bytes:    frameBytes,
		Work:     work,
		Dur:      dur.Nanoseconds(),
	})
}

// traceMinCut emits the EvMinCut for a completed plan selection, read from
// the unit's explanation snapshot. Detail formatting only runs when the
// tracer is enabled.
func traceMinCut(tr *obsv.Tracer, channel, sub string, u *reconfig.Unit) {
	if !tr.Enabled() {
		return
	}
	ex := u.LastExplanation()
	if ex == nil {
		return
	}
	tr.Emit(obsv.Event{
		Kind:    obsv.EvMinCut,
		Channel: channel,
		Sub:     sub,
		PSE:     obsv.NoPSE,
		Plan:    ex.Version,
		Value:   ex.CutValue,
		Detail:  fmt.Sprintf("cut=%v tripped=%v profiled=%d", ex.Cut, ex.Tripped, ex.Profiled),
	})
}

// tracePlanFlip emits the EvPlanFlip for an installed plan whose split set
// changed.
func tracePlanFlip(tr *obsv.Tracer, channel, sub string, version uint64, split []int32) {
	if !tr.Enabled() {
		return
	}
	tr.Emit(obsv.Event{
		Kind:    obsv.EvPlanFlip,
		Channel: channel,
		Sub:     sub,
		PSE:     obsv.NoPSE,
		Plan:    version,
		Detail:  fmt.Sprintf("split=%v", split),
	})
}

// traceReplay emits the EvReplay for a range of sequenced events re-sent
// from the replay ring.
func traceReplay(tr *obsv.Tracer, channel, sub string, from, to uint64) {
	if !tr.Enabled() {
		return
	}
	tr.Emit(obsv.Event{
		Kind:    obsv.EvReplay,
		Channel: channel,
		Sub:     sub,
		PSE:     obsv.NoPSE,
		Value:   int64(to - from + 1),
		Detail:  fmt.Sprintf("%d..%d", from, to),
	})
}

// traceDataLoss emits the EvDataLoss for a range of sequenced events
// declared unrecoverable — loss is loud on every surface: counter, trace
// event and log line.
func traceDataLoss(tr *obsv.Tracer, channel, sub string, from, to uint64) {
	if !tr.Enabled() {
		return
	}
	tr.Emit(obsv.Event{
		Kind:    obsv.EvDataLoss,
		Channel: channel,
		Sub:     sub,
		PSE:     obsv.NoPSE,
		Value:   int64(to - from + 1),
		Detail:  fmt.Sprintf("%d..%d", from, to),
	})
}

// traceStreamReset emits the EvStreamReset for a discarded delivery
// stream: the publisher opened a fresh epoch, so the receiver dropped its
// old-stream dedup state. The old tail's size is unknowable, so the event
// carries no count — the reset itself is the loud signal.
func traceStreamReset(tr *obsv.Tracer, channel, sub string, epoch uint64) {
	if !tr.Enabled() {
		return
	}
	tr.Emit(obsv.Event{
		Kind:    obsv.EvStreamReset,
		Channel: channel,
		Sub:     sub,
		PSE:     obsv.NoPSE,
		Detail:  fmt.Sprintf("epoch=%d", epoch),
	})
}

// breakerObserver adapts breaker transitions to EvBreaker events. The
// callback runs under the breaker mutex; Tracer.Emit takes only the tracer
// mutex, so the lock order is strictly breaker → tracer and cannot cycle.
func breakerObserver(tr *obsv.Tracer, channel string, sub func() string) func(id int32, state string) {
	return func(id int32, state string) {
		tr.Emit(obsv.Event{
			Kind:    obsv.EvBreaker,
			Channel: channel,
			Sub:     sub(),
			PSE:     id,
			Detail:  state,
		})
	}
}

// channelCounterDefs maps every ChannelMetrics field to a metric family.
// The same table drives Prometheus exposition (Collect) and the
// /debug/split counter map, so the two surfaces cannot drift apart.
var channelCounterDefs = []struct {
	name string
	help string
	get  func(ChannelMetrics) uint64
}{
	{"methodpart_channel_published_total", "Events modulated (publisher) or demodulated to completion (subscriber).", func(m ChannelMetrics) uint64 { return m.Published }},
	{"methodpart_channel_suppressed_total", "Events filtered at the sender by trivial-continuation suppression.", func(m ChannelMetrics) uint64 { return m.Suppressed }},
	{"methodpart_channel_enqueued_total", "Frames accepted into the outbound send queue.", func(m ChannelMetrics) uint64 { return m.Enqueued }},
	{"methodpart_channel_dropped_total", "Frames discarded by the overflow policy.", func(m ChannelMetrics) uint64 { return m.Dropped }},
	{"methodpart_channel_bytes_on_wire_total", "Event-frame bytes sent (publisher) or received (subscriber), including framing.", func(m ChannelMetrics) uint64 { return m.BytesOnWire }},
	{"methodpart_channel_control_bytes_on_wire_total", "Control-frame bytes (heartbeats, feedback, plans, NACKs), including framing.", func(m ChannelMetrics) uint64 { return m.ControlBytesOnWire }},
	{"methodpart_channel_bytes_saved_total", "Bytes modulation kept off the wire (suppression and continuations).", func(m ChannelMetrics) uint64 { return m.BytesSaved }},
	{"methodpart_channel_events_sent_total", "Event frames that reached the wire, alone or inside a batch.", func(m ChannelMetrics) uint64 { return m.EventsSent }},
	{"methodpart_channel_batches_sent_total", "Batch wire frames written (single-event frames go unwrapped).", func(m ChannelMetrics) uint64 { return m.BatchesSent }},
	{"methodpart_channel_batched_events_total", "Events that traveled inside a batch frame.", func(m ChannelMetrics) uint64 { return m.BatchedEvents }},
	{"methodpart_channel_batches_received_total", "Batch frames unpacked by the subscriber.", func(m ChannelMetrics) uint64 { return m.BatchesReceived }},
	{"methodpart_channel_feedback_sent_total", "Profiling feedback frames that reached the wire.", func(m ChannelMetrics) uint64 { return m.FeedbackSent }},
	{"methodpart_channel_feedback_coalesced_total", "Feedback frames superseded before sending (slow-peer coalescing).", func(m ChannelMetrics) uint64 { return m.FeedbackCoalesced }},
	{"methodpart_channel_plan_flips_total", "Plan installations that changed the split set.", func(m ChannelMetrics) uint64 { return m.PlanFlips }},
	{"methodpart_channel_send_errors_total", "Transport write failures.", func(m ChannelMetrics) uint64 { return m.SendErrors }},
	{"methodpart_channel_heartbeats_sent_total", "Liveness frames written while the channel was idle.", func(m ChannelMetrics) uint64 { return m.HeartbeatsSent }},
	{"methodpart_channel_heartbeats_received_total", "Liveness frames received from the peer.", func(m ChannelMetrics) uint64 { return m.HeartbeatsReceived }},
	{"methodpart_channel_reconnects_total", "Successful automatic resubscriptions after a lost connection.", func(m ChannelMetrics) uint64 { return m.Reconnects }},
	{"methodpart_channel_decode_failures_total", "Inbound frames rejected by wire decoding.", func(m ChannelMetrics) uint64 { return m.DecodeFailures }},
	{"methodpart_channel_demod_failures_total", "Decoded messages the demodulator failed on.", func(m ChannelMetrics) uint64 { return m.DemodFailures }},
	{"methodpart_channel_mod_failures_total", "Events the modulator failed on.", func(m ChannelMetrics) uint64 { return m.ModFailures }},
	{"methodpart_channel_nacks_sent_total", "Demod-failure reports pushed upstream.", func(m ChannelMetrics) uint64 { return m.NacksSent }},
	{"methodpart_channel_nacks_received_total", "Demod-failure reports received from peers.", func(m ChannelMetrics) uint64 { return m.NacksReceived }},
	{"methodpart_channel_dead_lettered_total", "Messages quarantined in the dead-letter ring.", func(m ChannelMetrics) uint64 { return m.DeadLettered }},
	{"methodpart_channel_breaker_trips_total", "Circuit-breaker transitions to open.", func(m ChannelMetrics) uint64 { return m.BreakerTrips }},
	{"methodpart_channel_acks_sent_total", "Cumulative delivery acks written (standalone and heartbeat-piggybacked).", func(m ChannelMetrics) uint64 { return m.AcksSent }},
	{"methodpart_channel_acks_received_total", "Cumulative delivery acks received from the peer.", func(m ChannelMetrics) uint64 { return m.AcksReceived }},
	{"methodpart_channel_retransmit_requests_sent_total", "Gap-repair retransmit requests pushed upstream.", func(m ChannelMetrics) uint64 { return m.RetransmitRequestsSent }},
	{"methodpart_channel_retransmit_requests_received_total", "Gap-repair retransmit requests received from peers.", func(m ChannelMetrics) uint64 { return m.RetransmitRequestsReceived }},
	{"methodpart_replayed_total", "Event frames re-sent from the replay ring (retransmissions and reconnect resumes).", func(m ChannelMetrics) uint64 { return m.Replayed }},
	{"methodpart_channel_ring_evictions_total", "Unacked frames evicted from the replay ring to hold its byte budget.", func(m ChannelMetrics) uint64 { return m.RingEvictions }},
	{"methodpart_channel_duplicates_dropped_total", "Sequenced events absorbed by subscriber-side dedup before the handler.", func(m ChannelMetrics) uint64 { return m.DuplicatesDropped }},
	{"methodpart_data_loss_total", "Sequenced events declared unrecoverable — loud, exact, never silent.", func(m ChannelMetrics) uint64 { return m.DataLoss }},
	{"methodpart_channel_acks_clamped_total", "Inbound acks claiming a seq beyond anything staged, clamped instead of releasing unsent entries.", func(m ChannelMetrics) uint64 { return m.AcksClamped }},
	{"methodpart_channel_stream_resets_total", "Delivery-stream restarts observed via a changed StreamStart epoch; dedup state was discarded.", func(m ChannelMetrics) uint64 { return m.StreamResets }},
	{"methodpart_channel_dead_letters_redelivered_total", "Quarantined messages successfully re-demodulated by RedeliverDeadLetters.", func(m ChannelMetrics) uint64 { return m.DeadLettersRedelivered }},
	{"methodpart_channel_dead_letters_requarantined_total", "Redelivery attempts that failed again and returned to quarantine.", func(m ChannelMetrics) uint64 { return m.DeadLettersRequarantined }},
}

// Per-PSE histogram family names and help strings.
const (
	pseLatencyName = "methodpart_pse_latency_seconds"
	pseLatencyHelp = "Per-split-PSE processing latency: modulation time on the publisher, demodulation time on the subscriber."
	pseBytesName   = "methodpart_pse_bytes"
	pseBytesHelp   = "Per-split-PSE wire bytes: frame produced on the publisher, frame consumed on the subscriber."
	pseWorkName    = "methodpart_pse_work_units"
	pseWorkHelp    = "Per-split-PSE interpreter work spent on this side of the split."
)

// Batch histogram family names and help strings.
const (
	batchEntriesName = "methodpart_batch_entries"
	batchEntriesHelp = "Events carried per outbound event wire frame (1 = sent unwrapped)."
	batchFillName    = "methodpart_batch_fill_ratio"
	batchFillHelp    = "Coalesced payload bytes over the BatchBytes budget per outbound event frame."
)

// emitChannelSamples renders one endpoint's counters and histograms.
func emitChannelSamples(emit func(obsv.Sample), role, channel, sub string, m ChannelMetrics, h *pseHistograms, bh *batchHistograms) {
	labels := []obsv.Label{
		{Name: "role", Value: role},
		{Name: "channel", Value: channel},
		{Name: "sub", Value: sub},
	}
	for _, def := range channelCounterDefs {
		emit(obsv.Sample{Name: def.name, Type: obsv.CounterType, Help: def.help, Labels: labels, Value: float64(def.get(m))})
	}
	emit(obsv.Sample{
		Name: "methodpart_channel_queue_high_water", Type: obsv.GaugeType,
		Help:   "Maximum outbound queue depth observed.",
		Labels: labels, Value: float64(m.QueueHighWater),
	})
	if bh != nil {
		if ent := bh.entries.Snapshot(); ent.Count > 0 {
			fill := bh.fill.Snapshot()
			emit(obsv.Sample{Name: batchEntriesName, Type: obsv.HistogramType, Help: batchEntriesHelp, Labels: labels, Hist: &ent})
			emit(obsv.Sample{Name: batchFillName, Type: obsv.HistogramType, Help: batchFillHelp, Labels: labels, Hist: &fill})
		}
	}
	if h == nil {
		return
	}
	for id := range h.latency {
		lat := h.latency[id].Snapshot()
		if lat.Count == 0 {
			continue
		}
		pl := append(append([]obsv.Label(nil), labels...), obsv.Label{Name: "pse", Value: strconv.Itoa(id)})
		by := h.bytes[id].Snapshot()
		wk := h.work[id].Snapshot()
		emit(obsv.Sample{Name: pseLatencyName, Type: obsv.HistogramType, Help: pseLatencyHelp, Labels: pl, Hist: &lat})
		emit(obsv.Sample{Name: pseBytesName, Type: obsv.HistogramType, Help: pseBytesHelp, Labels: pl, Hist: &by})
		emit(obsv.Sample{Name: pseWorkName, Type: obsv.HistogramType, Help: pseWorkHelp, Labels: pl, Hist: &wk})
	}
}

// counterMap renders the ChannelMetrics snapshot as the /debug/split
// counter map, keyed by metric family name.
func counterMap(m ChannelMetrics) map[string]uint64 {
	out := make(map[string]uint64, len(channelCounterDefs)+1)
	for _, def := range channelCounterDefs {
		out[def.name] = def.get(m)
	}
	out["methodpart_channel_queue_high_water"] = m.QueueHighWater
	return out
}

// pseStatusTable builds the live UG/PSE table for /debug/split: the
// handler's static edge structure joined with the active plan's flags and
// the profiled statistics driving the next min-cut. plan may be nil
// (before any plan is installed).
func pseStatusTable(c *partition.Compiled, plan *partition.Plan, stats map[int32]costmodel.Stat) []obsv.PSEStatus {
	out := make([]obsv.PSEStatus, 0, c.NumPSEs())
	for i := range c.PSEs {
		pse := &c.PSEs[i]
		ps := obsv.PSEStatus{
			ID:   pse.ID,
			From: pse.Edge.From,
			To:   pse.Edge.To,
			Vars: append([]string(nil), pse.Vars...),
		}
		if plan != nil {
			ps.InSplit = plan.Split(pse.ID)
			ps.Profiled = plan.Profile(pse.ID)
		}
		if st, ok := stats[pse.ID]; ok {
			ps.Count = st.Count
			ps.Bytes = st.Bytes
			ps.ModWork = st.ModWork
			ps.DemodWork = st.DemodWork
			ps.Prob = st.Prob
			ps.Failures = st.Failures
		}
		out = append(out, ps)
	}
	return out
}

// statusBreakers snapshots the non-idle breaker states for /debug/split.
// Unlike Open/OpenIDs this is read-only: a PSE whose cooldown has elapsed
// is reported half-open without starting the probe.
func (b *pseBreaker) statusBreakers() []obsv.BreakerStatus {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	var ids []int32
	for id := range b.states {
		ids = append(ids, id)
	}
	ids = partition.SortedIDs(ids)
	var out []obsv.BreakerStatus
	for _, id := range ids {
		st := b.states[id]
		bs := obsv.BreakerStatus{PSE: id, State: "closed", WindowFailures: len(st.stamps)}
		switch {
		case st.probing:
			bs.State = "half-open"
		case !st.openUntil.IsZero() && now.Before(st.openUntil):
			bs.State = "open"
			bs.OpenRemainingMS = st.openUntil.Sub(now).Milliseconds()
		case !st.openUntil.IsZero():
			// Cooldown elapsed but no Open call has flipped it yet; the next
			// eligibility check will start the half-open probe.
			bs.State = "half-open"
		}
		if bs.State == "closed" && bs.WindowFailures == 0 {
			continue
		}
		out = append(out, bs)
	}
	return out
}

// minCutStatus converts a reconfiguration unit's explanation for
// /debug/split (nil when the unit has not selected a plan yet).
func minCutStatus(u *reconfig.Unit) *obsv.MinCutStatus {
	ex := u.LastExplanation()
	if ex == nil {
		return nil
	}
	caps := make(map[int32]int64, len(ex.Capacities))
	for id, c := range ex.Capacities {
		caps[id] = c
	}
	ms := &obsv.MinCutStatus{
		Version:    ex.Version,
		Cut:        append([]int32(nil), ex.Cut...),
		CutValue:   ex.CutValue,
		Tripped:    append([]int32(nil), ex.Tripped...),
		Capacities: caps,
		Profiled:   ex.Profiled,
		Policy:     ex.Policy.String(),
		Chosen:     ex.Chosen,
		Env: &obsv.EnvStatus{
			SenderSpeed:   ex.Env.SenderSpeed,
			ReceiverSpeed: ex.Env.ReceiverSpeed,
			Bandwidth:     ex.Env.Bandwidth,
			LatencyMS:     ex.Env.LatencyMS,
		},
		Suppressed:      ex.Suppressed,
		PendingCut:      append([]int32(nil), ex.PendingCut...),
		PendingStreak:   ex.PendingStreak,
		FlipsSuppressed: ex.FlipsSuppressed,
	}
	for _, fp := range ex.Front {
		ms.Front = append(ms.Front, obsv.FrontPointStatus{
			Cut:          append([]int32(nil), fp.Cut...),
			Bytes:        fp.Vec.Bytes,
			LatencyMS:    fp.Vec.LatencyMS,
			SenderWork:   fp.Vec.SenderWork,
			ReceiverWork: fp.Vec.ReceiverWork,
			FailureRate:  fp.Vec.FailureRate,
			CutValue:     fp.CutValue,
			Balanced:     fp.Balanced,
			Chosen:       fp.Chosen,
		})
	}
	return ms
}

// emitParetoSamples renders one reconfiguration unit's Pareto-selection
// metrics: the size of the last front (gauge; 1 means a degenerate front
// where every policy collapses to the same plan) and the cumulative count
// of selections whose chosen cut changed, labelled by the active policy.
// No-op before the unit's first selection.
func emitParetoSamples(emit func(obsv.Sample), role, channel, sub string, u *reconfig.Unit) {
	ex := u.LastExplanation()
	if ex == nil {
		return
	}
	labels := []obsv.Label{
		{Name: "role", Value: role},
		{Name: "channel", Value: channel},
		{Name: "sub", Value: sub},
	}
	emit(obsv.Sample{
		Name: "methodpart_pareto_front_size", Type: obsv.GaugeType,
		Help:   "Points on the last plan selection's Pareto front (1 = degenerate: every policy picks the same plan).",
		Labels: labels, Value: float64(len(ex.Front)),
	})
	policyLabels := append(append([]obsv.Label(nil), labels...), obsv.Label{Name: "policy", Value: ex.Policy.String()})
	emit(obsv.Sample{
		Name: "methodpart_policy_flips_total", Type: obsv.CounterType,
		Help:   "Plan selections whose chosen cut differed from the previous selection's, by active SLO policy.",
		Labels: policyLabels,
		Value:  float64(u.PolicyFlips()),
	})
	emit(obsv.Sample{
		Name: "methodpart_flips_suppressed_total", Type: obsv.CounterType,
		Help:   "Plan selections where the policy preferred a different cut but flip hysteresis kept the incumbent.",
		Labels: policyLabels,
		Value:  float64(u.FlipsSuppressed()),
	})
}

// emitLinkSamples renders one subscription's live link estimate: the
// smoothed RTT and effective bandwidth feeding the reconfiguration unit.
// No-op when link estimation is disabled. An estimator whose RTT gauge
// sits at 0 while heartbeats flow is broken (or the peer cannot echo).
func emitLinkSamples(emit func(obsv.Sample), role, channel, sub string, link *linkest.Estimator) {
	if link == nil {
		return
	}
	snap := link.Snapshot()
	labels := []obsv.Label{
		{Name: "role", Value: role},
		{Name: "channel", Value: channel},
		{Name: "sub", Value: sub},
	}
	emit(obsv.Sample{
		Name: "methodpart_link_rtt_ms", Type: obsv.GaugeType,
		Help:   "Smoothed round-trip time measured from heartbeat echoes, in milliseconds (0 until the first echo).",
		Labels: labels, Value: snap.RTTMillis,
	})
	emit(obsv.Sample{
		Name: "methodpart_link_bandwidth_bps", Type: obsv.GaugeType,
		Help:   "Smoothed effective link bandwidth from bytes-on-wire over wall time, in bytes per second.",
		Labels: labels, Value: snap.BandwidthBytesPerMS * 1000,
	})
}

// linkStatus converts an estimator snapshot for /debug/split (nil when
// link estimation is disabled).
func linkStatus(link *linkest.Estimator) *obsv.LinkStatus {
	if link == nil {
		return nil
	}
	snap := link.Snapshot()
	return &obsv.LinkStatus{
		RTTMS:               snap.RTTMillis,
		BandwidthBytesPerMS: snap.BandwidthBytesPerMS,
		RTTSamples:          snap.RTTSamples,
		BandwidthSamples:    snap.BandwidthSamples,
		Warm:                snap.RTTWarm || snap.BandwidthWarm,
	}
}

// Collect implements obsv.Collector over the publisher's live
// subscriptions: every ChannelMetrics counter plus the per-PSE histograms,
// labelled {role="publisher", channel, sub}, the fan-out sharing gauges
// and counters (class count, modulator runs, modulations saved) and the
// per-shard registry lock-contention counters.
func (p *Publisher) Collect(emit func(obsv.Sample)) {
	subs := p.reg.snapshot()
	classes := p.classes.snapshot()
	emit(obsv.Sample{
		Name: "methodpart_publisher_subscriptions", Type: obsv.GaugeType,
		Help:  "Live subscriptions on this publisher.",
		Value: float64(len(subs)),
	})
	emit(obsv.Sample{
		Name: "methodpart_plan_classes", Type: obsv.GaugeType,
		Help:  "Live plan-equivalence classes (one shared modulation per class).",
		Value: float64(len(classes)),
	})
	emit(obsv.Sample{
		Name: "methodpart_modulator_runs_total", Type: obsv.CounterType,
		Help:  "Class modulator invocations (one per event per class).",
		Value: float64(p.modRuns.Load()),
	})
	emit(obsv.Sample{
		Name: "methodpart_modulations_saved_total", Type: obsv.CounterType,
		Help:  "Per-subscriber modulator runs avoided by plan-equivalence class sharing.",
		Value: float64(p.modulationsSaved.Load()),
	})
	var compiledRuns int64
	for _, c := range classes {
		compiledRuns += c.class.mod.CompiledRuns()
	}
	emit(obsv.Sample{
		Name: "methodpart_compiled_runs_total", Type: obsv.CounterType,
		Help:   compiledRunsHelp,
		Labels: []obsv.Label{{Name: "role", Value: "publisher"}},
		Value:  float64(compiledRuns),
	})
	for i := range p.reg.shards {
		sh := &p.reg.shards[i]
		labels := []obsv.Label{{Name: "shard", Value: strconv.Itoa(i)}}
		emit(obsv.Sample{
			Name: "methodpart_registry_shard_lock_acquisitions_total", Type: obsv.CounterType,
			Help:   "Write-lock acquisitions on this subscriber-registry shard.",
			Labels: labels, Value: float64(sh.acquires.Load()),
		})
		emit(obsv.Sample{
			Name: "methodpart_registry_shard_lock_contended_total", Type: obsv.CounterType,
			Help:   "Write-lock acquisitions that found this shard's lock held.",
			Labels: labels, Value: float64(sh.contended.Load()),
		})
	}
	for _, s := range subs {
		c := s.class.Load()
		if c == nil {
			continue
		}
		emitChannelSamples(emit, "publisher", s.channel, s.id, s.metrics.snapshot(), c.hists, s.pipe.batch.hists)
		emitParetoSamples(emit, "publisher", s.channel, s.id, s.runit)
		emitLinkSamples(emit, "publisher", s.channel, s.id, s.link)
		if s.rel != nil {
			if occ := s.rel.occupancy.Snapshot(); occ.Count > 0 {
				emit(obsv.Sample{
					Name: "methodpart_replay_ring_bytes", Type: obsv.HistogramType,
					Help: "Replay-ring occupancy in retained payload bytes, sampled after every staged frame.",
					Labels: []obsv.Label{
						{Name: "role", Value: "publisher"},
						{Name: "channel", Value: s.channel},
						{Name: "sub", Value: s.id},
					},
					Hist: &occ,
				})
			}
		}
	}
}

// Status snapshots the publisher for /debug/split: one ChannelStatus per
// live subscription with its plan, UG/PSE table (from the subscription's
// plan-equivalence class), breaker states and the last degrade min-cut (if
// one ran), plus the publisher-level class-sharing figures.
func (p *Publisher) Status() obsv.EndpointStatus {
	subs := p.reg.snapshot()
	ep := obsv.EndpointStatus{
		Role:             "publisher",
		Name:             p.Addr(),
		PlanClasses:      p.PlanClasses(),
		ModulationsSaved: p.ModulationsSaved(),
	}
	for _, s := range subs {
		c := s.class.Load()
		if c == nil {
			continue
		}
		plan := c.mod.Plan()
		cs := obsv.ChannelStatus{
			ID:          s.id,
			Channel:     s.channel,
			Handler:     s.compiled.Prog.Name,
			PlanVersion: plan.Version(),
			Split:       append([]int32(nil), plan.SplitIDs()...),
			QueueLen:    len(s.pipe.queue),
			Metrics:     counterMap(s.metrics.snapshot()),
			PSEs:        pseStatusTable(s.compiled, plan, c.coll.Snapshot()),
			Breakers:    s.breaker.statusBreakers(),
			LastMinCut:  minCutStatus(s.runit),
			Link:        linkStatus(s.link),
		}
		ep.Channels = append(ep.Channels, cs)
	}
	sortChannels(ep.Channels)
	return ep
}

// compiledRunsHelp documents the engine counter emitted by both roles.
const compiledRunsHelp = "Messages executed on the closure-compiled engine (the difference from total runs executed on the stepping engine)."

// Collect implements obsv.Collector over the subscriber's half of the
// loop, labelled {role="subscriber", channel, sub}.
func (s *Subscriber) Collect(emit func(obsv.Sample)) {
	emitChannelSamples(emit, "subscriber", s.cfg.Channel, s.cfg.Name, s.metrics.snapshot(), s.hists, nil)
	emitParetoSamples(emit, "subscriber", s.cfg.Channel, s.cfg.Name, s.runit)
	emitLinkSamples(emit, "subscriber", s.cfg.Channel, s.cfg.Name, s.link)
	emit(obsv.Sample{
		Name: "methodpart_compiled_runs_total", Type: obsv.CounterType,
		Help: compiledRunsHelp,
		Labels: []obsv.Label{
			{Name: "role", Value: "subscriber"},
			{Name: "channel", Value: s.cfg.Channel},
			{Name: "sub", Value: s.cfg.Name},
		},
		Value: float64(s.demod.CompiledRuns()),
	})
}

// Status snapshots the subscriber for /debug/split: its profile plan,
// UG/PSE table with the merged (sender + receiver) statistics the next
// min-cut will see, breaker states and the last plan selection.
func (s *Subscriber) Status() obsv.EndpointStatus {
	plan := s.demod.ProfilePlan()
	cs := obsv.ChannelStatus{
		ID:       s.cfg.Name,
		Channel:  s.cfg.Channel,
		Handler:  s.compiled.Prog.Name,
		Metrics:  counterMap(s.metrics.snapshot()),
		PSEs:     pseStatusTable(s.compiled, plan, s.Stats()),
		Breakers: s.breaker.statusBreakers(),
	}
	if plan != nil {
		cs.PlanVersion = plan.Version()
		cs.Split = append([]int32(nil), plan.SplitIDs()...)
	}
	cs.LastMinCut = minCutStatus(s.runit)
	cs.Link = linkStatus(s.link)
	return obsv.EndpointStatus{
		Role:     "subscriber",
		Name:     s.cfg.Name,
		Channels: []obsv.ChannelStatus{cs},
	}
}

// sortChannels orders channel statuses by subscription id for stable
// output.
func sortChannels(cs []obsv.ChannelStatus) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].ID < cs[j-1].ID; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
