package transport

import (
	"bytes"
	"errors"
	"io"
	"os"
	"runtime"
	"testing"
	"time"
)

// --- framing hardening ---

// TestReadFramePoisonedPrefix: a header claiming a near-limit frame over a
// stream that runs dry must fail without allocating anywhere near the
// claimed size — the chunked reader pays at most a couple of chunks.
func TestReadFramePoisonedPrefix(t *testing.T) {
	poisoned := []byte{0xff, 0xff, 0xff, 0x0f} // claims 256MiB - ε
	poisoned = append(poisoned, []byte("only a few real bytes")...)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, err := ReadFrame(bytes.NewReader(poisoned))
	runtime.ReadMemStats(&after)

	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("poisoned prefix error = %v, want unexpected EOF", err)
	}
	// TotalAlloc is cumulative, so the delta is exactly what this read
	// allocated. Allow generous slack over the 2-chunk bound while staying
	// far below the 256MiB a trusting reader would have grabbed.
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 16*readChunk {
		t.Errorf("poisoned prefix allocated %d bytes, want < %d", delta, 16*readChunk)
	}
}

// TestReadFrameChunkedLargeFrame: a legitimate frame bigger than one read
// chunk survives the incremental-growth path byte for byte.
func TestReadFrameChunkedLargeFrame(t *testing.T) {
	payload := make([]byte, 3*readChunk+7)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("chunked frame corrupted: %d bytes vs %d", len(got), len(payload))
	}
}

// --- deadlines, on both transports ---

func pair(t *testing.T, tr Transport, name string) (client, server Conn) {
	t.Helper()
	ln, err := tr.Listen(listenAddr(name))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err = tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	server = <-accepted
	t.Cleanup(func() { _ = server.Close() })
	return client, server
}

// TestReadDeadline: an idle read fails with os.ErrDeadlineExceeded once its
// deadline passes, and clearing the deadline restores blocking reads.
func TestReadDeadline(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			client, server := pair(t, tr, name)
			if err := client.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			_, err := client.ReadFrame()
			if !errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatalf("idle read error = %v, want deadline exceeded", err)
			}
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Fatalf("deadline took %v to fire", elapsed)
			}
			// Zero clears: the next read blocks until a frame arrives.
			if err := client.SetReadDeadline(time.Time{}); err != nil {
				t.Fatal(err)
			}
			go func() {
				time.Sleep(20 * time.Millisecond)
				_ = server.WriteFrame([]byte("late"))
			}()
			got, err := client.ReadFrame()
			if err != nil || string(got) != "late" {
				t.Fatalf("read after clearing deadline = %q, %v", got, err)
			}
		})
	}
}

// TestWriteDeadline: writes into a stalled peer trip the write deadline
// instead of blocking forever, once the transport's buffering is full.
func TestWriteDeadline(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			client, _ := pair(t, tr, name) // server never reads
			payload := bytes.Repeat([]byte("x"), 256<<10)
			deadline := time.Now().Add(5 * time.Second)
			for i := 0; ; i++ {
				if err := client.SetWriteDeadline(time.Now().Add(100 * time.Millisecond)); err != nil {
					t.Fatal(err)
				}
				err := client.WriteFrame(payload)
				if err == nil {
					if time.Now().After(deadline) {
						t.Fatalf("no write failed after %d frames into a stalled peer", i)
					}
					continue
				}
				if !errors.Is(err, os.ErrDeadlineExceeded) {
					t.Fatalf("stalled write error = %v, want deadline exceeded", err)
				}
				return
			}
		})
	}
}

// TestMemReadDeadlineDrainsBufferedFirst: a frame already buffered is
// delivered even when the deadline has passed — matching the close
// semantics, deadlines only fail *blocked* reads.
func TestMemReadDeadlineDrainsBufferedFirst(t *testing.T) {
	mem := NewMem()
	client, server := pair(t, mem, "mem")
	if err := client.WriteFrame([]byte("buffered")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the frame land in the buffer
	if err := server.SetReadDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	got, err := server.ReadFrame()
	if err != nil || string(got) != "buffered" {
		t.Fatalf("buffered frame under expired deadline = %q, %v", got, err)
	}
	if _, err := server.ReadFrame(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("drained read error = %v, want deadline exceeded", err)
	}
}

// TestTCPDialTimeout: dialing a blackholed address returns within the
// configured timeout rather than hanging for the kernel's minutes-long
// default. 240.0.0.0/4 is reserved, so the attempt is blackholed (the case
// the timeout exists for), refused instantly by the local stack, or — in
// sandboxes with a transparent proxy — accepted; in every case the dial
// must come back promptly.
func TestTCPDialTimeout(t *testing.T) {
	start := time.Now()
	c, err := TCP{DialTimeout: 100 * time.Millisecond}.Dial("240.0.0.1:1")
	elapsed := time.Since(start)
	if c != nil {
		_ = c.Close()
		t.Logf("environment accepted the reserved address (proxied network); timeout path not reachable here")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("dial took %v despite a 100ms timeout (err=%v)", elapsed, err)
	}
}

// --- fault injection ---

// flakyDialerPair wires a wrapped dialer conn against an *unwrapped*
// accepted conn, so exactly one connection (index 0) draws from the fault
// plan's random stream — the setup determinism tests rely on.
func flakyDialerPair(t *testing.T, plan FaultPlan) (dialer Conn, peer Conn) {
	t.Helper()
	mem := NewMem()
	ln, err := mem.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	flaky := NewFlaky(mem, plan)
	dialer, err = flaky.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dialer.Close() })
	peer = <-accepted
	t.Cleanup(func() { _ = peer.Close() })
	return dialer, peer
}

// TestFlakyDeterministicDrops: the same seed over the same traffic drops
// the same frames; a different seed drops different ones.
func TestFlakyDeterministicDrops(t *testing.T) {
	received := func(seed int64) []byte {
		dialer, peer := flakyDialerPair(t, FaultPlan{Seed: seed, DropProb: 0.5})
		done := make(chan []byte, 1)
		go func() {
			var got []byte
			for {
				f, err := peer.ReadFrame()
				if err != nil {
					done <- got
					return
				}
				got = append(got, f[0])
			}
		}()
		for i := 0; i < 64; i++ {
			if err := dialer.WriteFrame([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		_ = dialer.Close()
		return <-done
	}
	a, b := received(7), received(7)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different drops: %v vs %v", a, b)
	}
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("DropProb 0.5 delivered %d/64 frames", len(a))
	}
	if c := received(8); bytes.Equal(a, c) {
		t.Fatalf("different seeds produced identical drop patterns: %v", a)
	}
}

// TestFlakySeverEvery: the Nth write cuts the link — the write fails, and
// the peer sees the connection die.
func TestFlakySeverEvery(t *testing.T) {
	dialer, peer := flakyDialerPair(t, FaultPlan{SeverEvery: 4})
	for i := 0; i < 3; i++ {
		if err := dialer.WriteFrame([]byte("ok")); err != nil {
			t.Fatalf("write %d before the cut: %v", i, err)
		}
	}
	if err := dialer.WriteFrame([]byte("doomed")); err == nil {
		t.Fatal("severing write reported success")
	}
	for i := 0; i < 3; i++ { // the frames written before the cut survive
		if f, err := peer.ReadFrame(); err != nil || string(f) != "ok" {
			t.Fatalf("pre-cut frame %d = %q, %v", i, f, err)
		}
	}
	if _, err := peer.ReadFrame(); err == nil {
		t.Fatal("peer read past the severed link")
	}
}

// TestFlakySeverAll: the scripted link cut closes every live wrapped conn
// at once and reports how many it hit; severed conns fail both directions.
func TestFlakySeverAll(t *testing.T) {
	flaky := NewFlaky(NewMem(), FaultPlan{})
	ln, err := flaky.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialer, err := flaky.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()
	server := <-accepted
	defer server.Close()

	if n := flaky.SeverAll(); n != 2 {
		t.Fatalf("SeverAll cut %d conns, want 2 (both ends)", n)
	}
	if err := dialer.WriteFrame([]byte("x")); err == nil {
		t.Error("write on a severed dialer conn succeeded")
	}
	if _, err := server.ReadFrame(); err == nil {
		t.Error("read on a severed accepted conn succeeded")
	}
	// The cut conns were forgotten: a second sweep finds nothing.
	if n := flaky.SeverAll(); n != 0 {
		t.Errorf("second SeverAll cut %d conns, want 0", n)
	}
}
