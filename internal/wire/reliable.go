package wire

import (
	"encoding/binary"
	"fmt"
)

// ReliableProtocolVersion is the first revision whose peers speak the
// at-least-once delivery layer: SeqEvent envelopes, cumulative Ack frames,
// Retransmit requests and Lost notices. A publisher never sends any of
// them to an older peer, and a v4 subscriber on a v5 publisher simply gets
// the best-effort path it always had — revision 5 is additive.
const ReliableProtocolVersion uint32 = 5

// Reliability values carried in the Subscribe handshake (protocol revision
// 5). The zero value is best-effort, so legacy handshakes — which encode
// nothing here — decode to the exact behaviour they had before.
const (
	// ReliabilityBestEffort requests the classic fire-and-forget channel:
	// no sequence envelopes, no replay ring, no acks.
	ReliabilityBestEffort uint32 = 0
	// ReliabilityAtLeastOnce requests delivery-sequenced events with
	// publisher-side replay and subscriber-side dedup: every sequenced
	// event is delivered at least once, or its loss is explicitly
	// declared with a Lost notice — never silently dropped.
	ReliabilityAtLeastOnce uint32 = 1
)

// Ack is the cumulative delivery acknowledgement (protocol revision 5):
// the subscriber has durably received every sequenced event with delivery
// seq <= Seq. The publisher releases replay-ring entries up to it.
// Subscribers send standalone Acks every few delivered events and
// piggyback the same value on their idle heartbeats (Heartbeat.AckSeq), so
// the ring drains even on a quiet channel.
type Ack struct {
	// Seq is the highest contiguously received delivery sequence number.
	Seq uint64
}

// Retransmit asks the publisher to replay the sequenced events in
// [From, To] (inclusive) from its replay ring — the subscriber observed a
// gap below a delivered seq. Ranges the ring has evicted come back as a
// Lost notice instead of frames.
type Retransmit struct {
	// From is the first missing delivery sequence number.
	From uint64
	// To is the last missing delivery sequence number (>= From).
	To uint64
}

// Lost declares that the sequenced events in [From, To] (inclusive) are
// unrecoverable: the publisher's replay ring evicted them before the
// subscriber could repair the gap. The subscriber advances past the range
// and accounts every event in it that it never saw as DataLoss — loss is
// loud and counted, never silent.
type Lost struct {
	// From is the first unrecoverable delivery sequence number.
	From uint64
	// To is the last unrecoverable delivery sequence number (>= From).
	To uint64
}

// StreamStart announces the delivery stream's epoch (protocol revision 5):
// the publisher sends it as the first frame of every at-least-once
// subscription, before any sequenced event. An epoch identifies one
// publisher-side sequence numbering; a resuming subscriber whose stored
// epoch differs knows its resume point belongs to a dead stream (publisher
// restart, evicted orphan, duplicate-triple fresh state) and must reset its
// dedup state instead of silently discarding the new stream's events as
// duplicates.
type StreamStart struct {
	// Epoch identifies the stream's sequence numbering. Never 0 on the
	// wire — 0 is the subscriber-side "no stream adopted yet" sentinel.
	Epoch uint64
}

// SeqEvent is the delivery-sequencing envelope (protocol revision 5): one
// complete event frame (a Marshal of MsgRaw or MsgContinuation — or, as a
// batch entry, exactly that) stamped with the subscription's monotonic
// delivery sequence number. The envelope is applied per subscription at
// send time, so class-shared frame bytes stay identical across members and
// the seq lives outside the shared payload. Payload aliases the input
// frame on decode; it stays valid only as long as the input does.
type SeqEvent struct {
	// Seq is the per-subscription delivery sequence number (first event =
	// 1; 0 never appears on the wire).
	Seq uint64
	// Payload is the enveloped event frame, tag byte included.
	Payload []byte
}

// SeqEventOverhead is the envelope cost per wrapped frame: 1 tag byte + 8
// sequence bytes. Senders use it to pre-size wrapping buffers.
const SeqEventOverhead = 9

// AppendSeqEvent appends one SeqEvent envelope wrapping payload to dst,
// returning the extended slice. It is the allocation-free fast path of
// Marshal(&SeqEvent{...}) for the send pipeline, which wraps class-shared
// frame bytes into a recycled per-subscription buffer.
func AppendSeqEvent(dst []byte, seq uint64, payload []byte) []byte {
	dst = append(dst, byte(MsgSeqEvent))
	var u [8]byte
	binary.LittleEndian.PutUint64(u[:], seq)
	dst = append(dst, u[:]...)
	return append(dst, payload...)
}

// unmarshalSeqEvent decodes a SeqEvent payload without copying: the
// enveloped frame aliases the input.
func unmarshalSeqEvent(data []byte) (*SeqEvent, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("wire: seq envelope header truncated")
	}
	seq := binary.LittleEndian.Uint64(data[:8])
	payload := data[8:]
	if len(payload) == 0 {
		return nil, fmt.Errorf("wire: seq envelope is empty")
	}
	if seq == 0 {
		return nil, fmt.Errorf("wire: seq envelope with zero sequence")
	}
	return &SeqEvent{Seq: seq, Payload: payload[:len(payload):len(payload)]}, nil
}
