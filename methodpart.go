// Package methodpart is the public API of the Method Partitioning library —
// a reproduction of "Method Partitioning: Runtime Customization of Pervasive
// Programs without Design-time Application Knowledge" (Zhou, Pande, Schwan;
// ICDCS 2003).
//
// Method Partitioning splits a message-handling method into a modulator
// (running inside the message sender) and a demodulator (inside the
// receiver). Static analysis of the handler identifies Potential Split
// Edges; cost models weigh them; a Remote Continuation mechanism carries the
// live variables across the split; and runtime profiling plus a
// max-flow/min-cut reconfiguration unit keep the split point (near-)optimal
// as the workload and environment change. Changing the split is an atomic
// flag flip.
//
// Handlers are written in MIR, a small register-based instruction language
// (the reproduction's stand-in for Jimple bytecode):
//
//	src := `
//	class ImageData {
//	  width int
//	  height int
//	  buff bytes
//	}
//
//	func show(event) {
//	  ok = instanceof event ImageData
//	  ifnot ok goto done
//	  img = cast event ImageData
//	  d = const 160
//	  out = call resizeTo img d d
//	  call displayImage out
//	done:
//	  return
//	}`
//
//	h, err := methodpart.CompileHandler(src, "show",
//		methodpart.Natives("displayImage"), methodpart.WithModel(methodpart.DataSizeModel()))
//
// The compiled handler exposes its PSE table; NewModulator and
// NewDemodulator instantiate the two halves; NewReconfigUnit selects plans
// from profiled statistics. NewPublisher and SubscribeConfig/Subscribe run
// the full distributed loop over TCP (the JECho-analogue event system).
package methodpart

import (
	"fmt"

	"methodpart/internal/analysis"
	"methodpart/internal/costmodel"
	"methodpart/internal/jecho"
	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
	"methodpart/internal/mir/interp"
	"methodpart/internal/obsv"
	"methodpart/internal/partition"
	"methodpart/internal/profileunit"
	"methodpart/internal/reconfig"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// Core value and execution types (MIR).
type (
	// Value is a runtime value flowing through handlers.
	Value = mir.Value
	// Object is a heap object with class and fields.
	Object = mir.Object
	// Int is the MIR integer value.
	Int = mir.Int
	// Float is the MIR float value.
	Float = mir.Float
	// Bool is the MIR boolean value.
	Bool = mir.Bool
	// Str is the MIR string value.
	Str = mir.Str
	// Bytes is the MIR byte-array value.
	Bytes = mir.Bytes
	// IntArray is the MIR int-array value.
	IntArray = mir.IntArray
	// FloatArray is the MIR float-array value.
	FloatArray = mir.FloatArray
	// Null is the MIR null value.
	Null = mir.Null

	// Registry holds the builtin functions handlers may call.
	Registry = interp.Registry
	// Builtin is one host function callable from handlers.
	Builtin = interp.Builtin
	// Env is an interpreter environment (classes + builtins + globals).
	Env = interp.Env
)

// Partitioning types.
type (
	// Handler is a compiled, analysed, partitionable message handler.
	Handler = partition.Compiled
	// PSE is one potential split edge of a handler.
	PSE = partition.PSE
	// Plan is a partitioning plan (split + profiling flags).
	Plan = partition.Plan
	// Modulator is the sender-side half.
	Modulator = partition.Modulator
	// Demodulator is the receiver-side half.
	Demodulator = partition.Demodulator
	// Relay re-partitions in-flight messages at an intermediate party
	// (three-way and longer chains; the paper's §7 modulator-propagation
	// extension).
	Relay = partition.Relay
	// ModulatorOutput is the result of modulating one event.
	ModulatorOutput = partition.Output
	// HandlerResult is the result of demodulating one message.
	HandlerResult = partition.Result

	// CostModel weighs partitioning plans (§4).
	CostModel = costmodel.Model
	// Environment describes a sender/receiver pair's resources.
	Environment = costmodel.Environment
	// PSEStats is the profiled statistics of one PSE.
	PSEStats = costmodel.Stat

	// Collector is the Runtime Profiling Unit's aggregator.
	Collector = profileunit.Collector
	// ReconfigUnit is the Runtime Reconfiguration Unit.
	ReconfigUnit = reconfig.Unit
	// SLOPolicy selects the operating point on the Pareto front of
	// candidate cuts a plan selection takes (the SplitPolicy knob of
	// PublisherConfig/SubscriberConfig). The zero value, Balanced, is the
	// legacy scalar min-cut.
	SLOPolicy = reconfig.SLOPolicy
	// CostVector is the multi-objective cost of one candidate cut.
	CostVector = costmodel.Vector
	// FrontPoint is one operating point on a selection's Pareto front.
	FrontPoint = reconfig.FrontPoint

	// Publisher hosts an event channel (sender side).
	Publisher = jecho.Publisher
	// PublisherConfig configures a Publisher.
	PublisherConfig = jecho.PublisherConfig
	// Subscriber is a receiving subscription with its demodulator and
	// reconfiguration unit.
	Subscriber = jecho.Subscriber
	// SubscriberConfig configures a subscription.
	SubscriberConfig = jecho.SubscriberConfig
	// SubscriptionInfo describes one live publisher-side subscription.
	SubscriptionInfo = jecho.SubscriptionInfo
	// ChannelMetrics snapshots one event-channel endpoint's counters
	// (published, suppressed, dropped, queue high-water, bytes on wire
	// vs. bytes saved by modulation, plan flips).
	ChannelMetrics = jecho.ChannelMetrics
	// OverflowPolicy selects the backpressure behaviour of a full
	// per-subscription send queue.
	OverflowPolicy = jecho.OverflowPolicy
	// DeadLetter is one quarantined poison message (an event or
	// continuation that failed demodulation), inspectable through
	// Subscriber.DeadLetters.
	DeadLetter = jecho.DeadLetter
	// FaultClass classifies a split-execution failure on the wire
	// (decode / restore / runtime / budget).
	FaultClass = wire.NackClass

	// Transport is the frame-oriented connection layer beneath the event
	// system; implement it to carry subscriptions over a custom substrate.
	Transport = transport.Transport
	// FaultPlan configures FlakyTransport's deterministic fault injection.
	FaultPlan = transport.FaultPlan
	// FlakyTransport wraps a Transport with seeded fault injection (severed
	// links, blackholed frames, delays) for chaos testing; SeverAll cuts
	// every live connection at once.
	FlakyTransport = transport.Flaky

	// Continuation is the wire form of a remote continuation.
	Continuation = wire.Continuation
)

// Observability types (see OBSERVABILITY.md for the operator reference).
type (
	// Tracer is the bounded split-lifecycle trace ring. A nil *Tracer is
	// valid everywhere one is accepted and records nothing at zero cost.
	Tracer = obsv.Tracer
	// TraceEvent is one structured trace record.
	TraceEvent = obsv.Event
	// TraceEventKind discriminates TraceEvent records (publish, demod,
	// plan flip, breaker transition, ...).
	TraceEventKind = obsv.EventKind
	// MetricsRegistry gathers Collectors and renders Prometheus text or
	// JSON. (Distinct from Registry, the builtin-function registry.)
	MetricsRegistry = obsv.Registry
	// MetricsCollector is anything that can contribute samples to a
	// MetricsRegistry; Publisher and Subscriber both implement it.
	MetricsCollector = obsv.Collector
	// MetricSample is one gathered metric sample.
	MetricSample = obsv.Sample
	// DebugConfig configures the opt-in debug HTTP listener.
	DebugConfig = obsv.DebugConfig
	// DebugServer is the running debug HTTP listener (/metrics,
	// /metrics.json, /debug/split, /debug/trace).
	DebugServer = obsv.DebugServer
	// EndpointStatus is one endpoint's live introspection snapshot, as
	// served by /debug/split.
	EndpointStatus = obsv.EndpointStatus
)

// DefaultTraceCapacity is the trace-ring size used by NewTracer callers
// that have no better estimate; older events are overwritten (and counted
// as dropped) once the ring wraps.
const DefaultTraceCapacity = obsv.DefaultTraceCapacity

// NewTracer creates an enabled trace ring holding the last capacity
// events (capacity <= 0 selects DefaultTraceCapacity). Hand it to
// PublisherConfig.Tracer / SubscriberConfig.Tracer.
func NewTracer(capacity int) *Tracer { return obsv.NewTracer(capacity) }

// NewMetricsRegistry creates an empty metrics registry; register
// publishers and subscribers, then serve it via StartDebug or render it
// with WritePrometheus/WriteJSON.
func NewMetricsRegistry() *MetricsRegistry { return obsv.NewRegistry() }

// StartDebug binds the debug HTTP listener described by cfg and serves
// until Close. Unauthenticated — bind to loopback unless the network is
// trusted.
func StartDebug(cfg DebugConfig) (*DebugServer, error) { return obsv.StartDebug(cfg) }

// SLO policies for the SplitPolicy knob. Balanced is the zero value, so a
// config that never sets the knob keeps the legacy scalar min-cut.
const (
	// Balanced takes the scalar min-cut under the channel's cost model.
	Balanced = reconfig.Balanced
	// LatencyFirst minimises the end-to-end latency estimate.
	LatencyFirst = reconfig.LatencyFirst
	// CostFirst minimises bytes on the wire.
	CostFirst = reconfig.CostFirst
	// ReceiverWeak minimises the receiver's energy proxy (radio + CPU).
	ReceiverWeak = reconfig.ReceiverWeak
)

// ParseSLOPolicy maps a policy name ("balanced", "latency-first",
// "cost-first", "receiver-weak"; "" = Balanced) to its SLOPolicy.
func ParseSLOPolicy(name string) (SLOPolicy, error) { return reconfig.ParseSLOPolicy(name) }

// Overflow policies for PublisherConfig.OverflowPolicy.
const (
	// Block waits for queue space: lossless, but a stalled peer
	// eventually throttles publishes addressed to it.
	Block = jecho.Block
	// DropNewest sheds the freshest event when a subscription's queue is
	// full.
	DropNewest = jecho.DropNewest
	// DropOldest evicts the oldest queued frame to admit the new one
	// (last-value streams).
	DropOldest = jecho.DropOldest
)

// DefaultQueueDepth is the per-subscription send-queue bound used when
// PublisherConfig.QueueDepth is zero.
const DefaultQueueDepth = jecho.DefaultQueueDepth

// Connection-supervision defaults (zero-valued config fields select these;
// negative values disable the mechanism).
const (
	// DefaultHeartbeatInterval is the idle-liveness probe period.
	DefaultHeartbeatInterval = jecho.DefaultHeartbeatInterval
	// DefaultHeartbeatMisses is how many silent heartbeat periods declare
	// a peer dead (silence window = interval × misses).
	DefaultHeartbeatMisses = jecho.DefaultHeartbeatMisses
	// DefaultWriteTimeout bounds one frame write to a wedged peer.
	DefaultWriteTimeout = jecho.DefaultWriteTimeout
	// DefaultResubscribeAttempts bounds reconnect attempts per outage for
	// auto-resubscribing subscribers.
	DefaultResubscribeAttempts = jecho.DefaultResubscribeAttempts
)

// Fault-containment defaults (zero-valued config fields select these;
// negative values disable the mechanism).
const (
	// DefaultBreakerThreshold is how many per-PSE failures within the
	// window trip that PSE's circuit breaker.
	DefaultBreakerThreshold = jecho.DefaultBreakerThreshold
	// DefaultBreakerWindow is the breaker's failure-counting window.
	DefaultBreakerWindow = jecho.DefaultBreakerWindow
	// DefaultBreakerCooldown is how long a tripped PSE stays excluded from
	// the split set before a half-open probe re-admits it.
	DefaultBreakerCooldown = jecho.DefaultBreakerCooldown
	// DefaultDeadLetterSize bounds the subscriber's poison-message
	// quarantine ring.
	DefaultDeadLetterSize = jecho.DefaultDeadLetterSize
)

// NewFlakyTransport wraps inner with seeded fault injection for chaos
// testing and fault-tolerance experiments (see FaultPlan).
func NewFlakyTransport(inner Transport, plan FaultPlan) *FlakyTransport {
	return transport.NewFlaky(inner, plan)
}

// TCPTransport returns the stdlib-socket transport (the default when a
// config's Transport field is nil).
func TCPTransport() Transport { return transport.TCP{} }

// MemTransport returns a fresh in-process transport: publishers and
// subscribers sharing the instance reach each other without sockets —
// deterministic tests and single-process deployments. Distinct instances
// are isolated networks.
func MemTransport() Transport { return transport.NewMem() }

// RawPSEID identifies the synthetic "ship the raw event" split point.
const RawPSEID = partition.RawPSEID

// NewRegistry creates an empty builtin registry.
func NewRegistry() *Registry { return interp.NewRegistry() }

// NewEnv builds an interpreter environment from a compiled handler's class
// table and a builtin registry.
func NewEnv(h *Handler, builtins *Registry) *Env {
	return interp.NewEnv(h.Classes, builtins)
}

// DataSizeModel returns the §4.1 cost model (minimize network traffic).
func DataSizeModel() CostModel { return costmodel.NewDataSize() }

// ExecTimeModel returns the §4.2 cost model (minimize execution time).
func ExecTimeModel() CostModel { return costmodel.NewExecTime() }

// CompositeModel combines weighted cost models (§7 future work).
func CompositeModel(models []CostModel, weights []float64) (CostModel, error) {
	return costmodel.NewComposite(models, weights)
}

// CompileOption customises CompileHandler.
type CompileOption func(*compileOpts)

type compileOpts struct {
	model   CostModel
	natives map[string]bool
	oracle  analysis.NativeOracle
}

// WithModel selects the cost model (default: DataSizeModel).
func WithModel(m CostModel) CompileOption {
	return func(o *compileOpts) { o.model = m }
}

// Natives declares the handler's receiver-pinned functions (StopNodes).
func Natives(names ...string) CompileOption {
	return func(o *compileOpts) {
		if o.natives == nil {
			o.natives = make(map[string]bool)
		}
		for _, n := range names {
			o.natives[n] = true
		}
	}
}

// WithOracle supplies a NativeOracle directly (e.g. a Registry) instead of
// an explicit native list.
func WithOracle(oracle analysis.NativeOracle) CompileOption {
	return func(o *compileOpts) { o.oracle = oracle }
}

type nativeSet map[string]bool

func (s nativeSet) IsNative(fn string) bool { return s[fn] }

// CompileHandler assembles MIR source and compiles the named handler for
// partitioning: it builds the Unit Graph, runs liveness, DDG, StopNode and
// ConvexCut analysis under the cost model, and returns the handler with its
// PSE table.
func CompileHandler(source, name string, opts ...CompileOption) (*Handler, error) {
	o := compileOpts{}
	for _, opt := range opts {
		opt(&o)
	}
	if o.model == nil {
		o.model = DataSizeModel()
	}
	oracle := o.oracle
	if oracle == nil {
		oracle = nativeSet(o.natives)
	}
	unit, err := asm.Parse(source)
	if err != nil {
		return nil, err
	}
	prog, ok := unit.Program(name)
	if !ok {
		return nil, fmt.Errorf("methodpart: handler %q not found in source", name)
	}
	classes, err := unit.ClassTable()
	if err != nil {
		return nil, err
	}
	return partition.Compile(prog, classes, oracle, o.model)
}

// NewModulator builds the sender-side half of a handler executing in env.
func NewModulator(h *Handler, env *Env) *Modulator {
	return partition.NewModulator(h, env)
}

// NewDemodulator builds the receiver-side half of a handler executing in
// env (env's registry must implement the handler's natives).
func NewDemodulator(h *Handler, env *Env) *Demodulator {
	return partition.NewDemodulator(h, env)
}

// NewRelay builds an intermediate-party re-partitioner for a handler; its
// initial plan forwards messages untouched.
func NewRelay(h *Handler, env *Env) *Relay {
	return partition.NewRelay(h, env)
}

// NewCollector creates a profiling collector sized for the handler.
func NewCollector(h *Handler) *Collector {
	return profileunit.NewCollector(h.NumPSEs())
}

// NewReconfigUnit creates a reconfiguration unit for the handler in the
// given environment.
func NewReconfigUnit(h *Handler, env Environment) *ReconfigUnit {
	return reconfig.NewUnit(h, env)
}

// DefaultEnvironment returns a neutral deployment environment.
func DefaultEnvironment() Environment { return costmodel.DefaultEnvironment() }

// NewPlan builds a plan over the handler's PSEs.
func NewPlan(h *Handler, version uint64, splitIDs, profileIDs []int32) (*Plan, error) {
	return partition.NewPlan(h.NumPSEs(), version, splitIDs, profileIDs)
}

// NewPublisher starts an event-channel publisher (sender side).
func NewPublisher(cfg PublisherConfig) (*Publisher, error) {
	return jecho.NewPublisher(cfg)
}

// Subscribe installs a handler at a remote publisher and starts the
// receiving loop with closed-loop profiling and reconfiguration.
func Subscribe(cfg SubscriberConfig) (*Subscriber, error) {
	return jecho.Subscribe(cfg)
}

// NewObject allocates an Object of the given class.
func NewObject(class string) *Object { return mir.NewObject(class) }
