package wire

import (
	"sort"

	"methodpart/internal/mir"
)

// Sizer computes the encoded size of values without serialising them — the
// paper's "customized object serialization algorithm [that] only performs
// size calculation" (§4.1). It is O(1) for primitive arrays and shares the
// Encoder's reference-deduplication semantics, so Size(vs...) equals the
// byte length an Encoder would produce for the same values.
type Sizer struct {
	objSeen map[*mir.Object]bool
	memSeen map[memKey]bool
}

// NewSizer creates a sizer. Like an Encoder, one Sizer spans one message.
func NewSizer() *Sizer {
	return &Sizer{
		objSeen: make(map[*mir.Object]bool),
		memSeen: make(map[memKey]bool),
	}
}

// refSize is the encoded size of a back-reference (tag + u32).
const refSize = 5

// Size accumulates the encoded size of one value.
func (s *Sizer) Size(v mir.Value) int64 {
	if v == nil {
		return 1
	}
	switch x := v.(type) {
	case mir.Null:
		return 1
	case mir.Bool:
		return 2
	case mir.Int, mir.Float:
		return 9
	case mir.Str:
		return 1 + 4 + int64(len(x))
	case mir.Bytes:
		return s.sliceSize(tagBytes, slicePtr(x), len(x), 1)
	case mir.IntArray:
		return s.sliceSize(tagIntArray, slicePtr(x), len(x), 8)
	case mir.FloatArray:
		return s.sliceSize(tagFloatArray, slicePtr(x), len(x), 8)
	case *mir.Object:
		if x == nil {
			return 1
		}
		if s.objSeen[x] {
			return refSize
		}
		s.objSeen[x] = true
		total := int64(1 + 4 + len(x.Class) + 4)
		names := make([]string, 0, len(x.Fields))
		for n := range x.Fields {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			total += 4 + int64(len(n))
			total += s.Size(x.Fields[n])
		}
		return total
	default:
		return 0
	}
}

func (s *Sizer) sliceSize(tag byte, ptr uintptr, n int, elem int64) int64 {
	if ptr != 0 {
		k := memKey{ptr: ptr, len: n, tag: tag}
		if s.memSeen[k] {
			return refSize
		}
		s.memSeen[k] = true
	}
	return 1 + 4 + int64(n)*elem
}

// SizeOf computes the encoded size of a single value with a fresh Sizer.
func SizeOf(v mir.Value) int64 {
	return NewSizer().Size(v)
}

// SizeOfAll computes the encoded size of a value group sharing references
// (e.g. the live-variable snapshot of a continuation).
func SizeOfAll(vs []mir.Value) int64 {
	s := NewSizer()
	var total int64
	for _, v := range vs {
		total += s.Size(v)
	}
	return total
}
