package jecho_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/obsv"
	"methodpart/internal/partition"
)

// startTracedPair is startPair with a shared tracer and no TCP: a
// publisher/subscriber pair whose observability surface the tests below
// inspect.
func startTracedPair(t *testing.T, tr *obsv.Tracer) (*jecho.Publisher, *jecho.Subscriber, *results) {
	t.Helper()
	pubReg, _ := imaging.Builtins()
	pub, err := jecho.NewPublisher(jecho.PublisherConfig{
		Addr:          "127.0.0.1:0",
		Builtins:      pubReg,
		FeedbackEvery: 2,
		Tracer:        tr,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub.Close() })
	subReg, _ := imaging.Builtins()
	res := &results{}
	sub, err := jecho.Subscribe(jecho.SubscriberConfig{
		Addr:          pub.Addr(),
		Name:          "client",
		Source:        imaging.HandlerSource(160),
		Handler:       imaging.HandlerName,
		CostModel:     costmodel.DataSizeName,
		Natives:       []string{"displayImage"},
		Builtins:      subReg,
		Environment:   costmodel.DefaultEnvironment(),
		OnResult:      res.add,
		ReconfigEvery: 2,
		DiffThreshold: 0.1,
		Tracer:        tr,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sub.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for pub.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	return pub, sub, res
}

// TestMetricsExposition drives traffic through a live pair and checks the
// gathered Prometheus text: channel counter families for both roles and
// per-PSE histograms with plausible contents.
func TestMetricsExposition(t *testing.T) {
	tr := obsv.NewTracer(1024)
	pub, sub, res := startTracedPair(t, tr)
	for i := 0; i < 12; i++ {
		if _, err := pub.Publish(imaging.NewFrame(64, 64, int64(i))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitCount(t, res, 12)

	reg := obsv.NewRegistry()
	reg.Register(pub)
	reg.Register(sub)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE methodpart_channel_published_total counter",
		"# TYPE methodpart_channel_queue_high_water gauge",
		"# TYPE methodpart_pareto_front_size gauge",
		"# TYPE methodpart_policy_flips_total counter",
		`policy="balanced"`,
		"# TYPE methodpart_pse_latency_seconds histogram",
		"# TYPE methodpart_pse_bytes histogram",
		"# TYPE methodpart_pse_work_units histogram",
		`role="publisher"`,
		`role="subscriber"`,
		"methodpart_publisher_subscriptions 1",
		"methodpart_pse_latency_seconds_bucket",
		`le="+Inf"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
	// Line-level format check: every non-comment, non-blank line is
	// "name value" or "name{labels} value".
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("malformed label set in %q", line)
			}
			name = name[:i]
		}
		if !strings.HasPrefix(name, "methodpart_") {
			t.Fatalf("unexpected family in %q", line)
		}
	}
	// The trace saw the traffic both ways.
	var pubEv, demodEv int
	for _, ev := range tr.Snapshot() {
		switch ev.Kind {
		case obsv.EvPublish, obsv.EvSuppress:
			pubEv++
		case obsv.EvDemod:
			demodEv++
		}
	}
	if pubEv < 12 || demodEv < 1 {
		t.Fatalf("trace saw %d publish-side and %d demod events", pubEv, demodEv)
	}
}

// TestDebugSplitSchema serves a live pair through the debug listener and
// checks the /debug/split document's shape: both endpoints present, the
// publisher's channel carrying a full PSE table, plan, counters and (after
// reconfiguration) a min-cut explanation.
func TestDebugSplitSchema(t *testing.T) {
	tr := obsv.NewTracer(1024)
	pub, sub, res := startTracedPair(t, tr)
	for i := 0; i < 12; i++ {
		if _, err := pub.Publish(imaging.NewFrame(64, 64, int64(i))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitCount(t, res, 12)

	reg := obsv.NewRegistry()
	reg.Register(pub)
	reg.Register(sub)
	srv, err := obsv.StartDebug(obsv.DebugConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Tracer:   tr,
		Split: func() []obsv.EndpointStatus {
			return []obsv.EndpointStatus{pub.Status(), sub.Status()}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/split")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var reply struct {
		Endpoints []obsv.EndpointStatus `json:"endpoints"`
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("/debug/split not JSON: %v\n%s", err, body)
	}
	if len(reply.Endpoints) != 2 {
		t.Fatalf("endpoints = %d, want 2", len(reply.Endpoints))
	}
	byRole := map[string]obsv.EndpointStatus{}
	for _, ep := range reply.Endpoints {
		byRole[ep.Role] = ep
	}
	pubEp, ok := byRole["publisher"]
	if !ok {
		t.Fatalf("no publisher endpoint in %s", body)
	}
	subEp, ok := byRole["subscriber"]
	if !ok {
		t.Fatalf("no subscriber endpoint in %s", body)
	}
	if len(pubEp.Channels) != 1 {
		t.Fatalf("publisher channels = %+v", pubEp.Channels)
	}
	ch := pubEp.Channels[0]
	if ch.Handler != imaging.HandlerName {
		t.Errorf("handler = %q", ch.Handler)
	}
	if ch.PlanVersion == 0 {
		t.Error("plan version still zero after reconfiguration")
	}
	if len(ch.PSEs) == 0 {
		t.Fatal("empty PSE table")
	}
	var sawRaw, sawProfiled bool
	for _, pse := range ch.PSEs {
		if pse.ID == partition.RawPSEID {
			sawRaw = true
		}
		if pse.Count > 0 {
			sawProfiled = true
		}
	}
	if !sawRaw {
		t.Errorf("PSE table misses the raw PSE: %+v", ch.PSEs)
	}
	if !sawProfiled {
		t.Errorf("no profiled statistics in the PSE table: %+v", ch.PSEs)
	}
	if ch.Metrics["methodpart_channel_published_total"] == 0 {
		t.Errorf("counter map: %v", ch.Metrics)
	}
	// The subscriber ran its reconfiguration unit, so its min-cut
	// explanation must be present and consistent with its plan.
	subCh := subEp.Channels[0]
	if subCh.LastMinCut == nil {
		t.Fatal("subscriber has no min-cut explanation after reconfiguring")
	}
	if subCh.LastMinCut.Version == 0 || len(subCh.LastMinCut.Capacities) == 0 {
		t.Errorf("min-cut explanation = %+v", subCh.LastMinCut)
	}
	// The explanation carries the Pareto front: the policy name, at least
	// one point, the pinned balanced point, and a coherent chosen mark.
	mc := subCh.LastMinCut
	if mc.Policy != "balanced" {
		t.Errorf("policy = %q, want balanced (the zero value)", mc.Policy)
	}
	if len(mc.Front) == 0 {
		t.Fatalf("min-cut explanation has no front: %+v", mc)
	}
	if mc.Chosen < 0 || mc.Chosen >= len(mc.Front) || !mc.Front[mc.Chosen].Chosen {
		t.Errorf("chosen = %d inconsistent with front %+v", mc.Chosen, mc.Front)
	}
	balanced := 0
	for _, p := range mc.Front {
		if p.Balanced {
			balanced++
		}
	}
	if balanced != 1 {
		t.Errorf("front has %d balanced points, want 1: %+v", balanced, mc.Front)
	}
}
