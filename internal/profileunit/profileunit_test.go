package profileunit

import (
	"testing"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/partition"
)

func TestCollectorSnapshotBasics(t *testing.T) {
	c := NewCollector(4)
	c.SetAlpha(1) // latest value wins, for exact assertions
	for i := 0; i < 10; i++ {
		c.Message(1000)
		c.Cross(1, 50, 200)
		if i%2 == 0 {
			c.Cross(2, 80, 400)
		}
		c.SplitAt(1, 50, 200)
		c.Done(1, 50, 150)
	}
	snap := c.Snapshot()

	raw := snap[partition.RawPSEID]
	if raw.Prob != 1 || raw.Bytes != 1000 {
		t.Errorf("raw stat = %+v", raw)
	}
	if raw.DemodWork != 200 { // total work = 50+150
		t.Errorf("raw demod work = %g, want 200", raw.DemodWork)
	}

	s1 := snap[1]
	if s1.Count != 10 || s1.Prob != 1 || s1.Bytes != 200 || s1.ModWork != 50 {
		t.Errorf("pse1 stat = %+v", s1)
	}
	if s1.DemodWork != 150 {
		t.Errorf("pse1 demod = %g, want 150", s1.DemodWork)
	}

	s2 := snap[2]
	if s2.Count != 5 || s2.Prob != 0.5 {
		t.Errorf("pse2 stat = %+v", s2)
	}
	// PSE 2 never split: demod estimated as total - modWork = 200 - 80.
	if s2.DemodWork != 120 {
		t.Errorf("pse2 demod estimate = %g, want 120", s2.DemodWork)
	}

	if _, ok := snap[3]; ok {
		t.Error("uncrossed PSE appears in snapshot")
	}
}

func TestCollectorReceiverOnlyDenominator(t *testing.T) {
	// A receiver-side collector sees Done and Cross but never Message;
	// probabilities must still use the completed count.
	c := NewCollector(3)
	for i := 0; i < 8; i++ {
		c.Cross(1, 10, 500)
		c.Done(partition.RawPSEID, 0, 100)
	}
	snap := c.Snapshot()
	if got := snap[1].Prob; got != 1 {
		t.Errorf("receiver-side prob = %g, want 1", got)
	}
	// The raw entry carries the receiver's total-work view but no byte
	// size (filled in from the sender side by Merge).
	raw, ok := snap[partition.RawPSEID]
	if !ok {
		t.Fatal("receiver-side collector emitted no raw entry")
	}
	if raw.Bytes != 0 || raw.DemodWork != 100 {
		t.Errorf("raw entry = %+v, want Bytes 0 / DemodWork 100", raw)
	}

	// A collector that observed nothing emits no raw entry at all.
	empty := NewCollector(3)
	if _, ok := empty.Snapshot()[partition.RawPSEID]; ok {
		t.Error("empty collector fabricated a raw entry")
	}
}

func TestCollectorToFromWire(t *testing.T) {
	c := NewCollector(3)
	c.Message(500)
	c.Cross(1, 25, 100)
	c.Done(1, 25, 75)
	fb := c.ToWire("push")
	if fb.Handler != "push" || len(fb.Stats) == 0 {
		t.Fatalf("feedback = %+v", fb)
	}
	stats := FromWire(fb)
	if stats[1].Bytes != 100 {
		t.Errorf("round-tripped bytes = %g", stats[1].Bytes)
	}
}

func TestMergePrefersFresherSide(t *testing.T) {
	sender := map[int32]costmodel.Stat{
		1: {Count: 100, Bytes: 4000, ModWork: 10},
		2: {Count: 3, Bytes: 9999, ModWork: 5}, // stale
	}
	receiver := map[int32]costmodel.Stat{
		2: {Count: 90, Bytes: 1000, ModWork: 7},
		3: {Count: 90, Bytes: 50},
	}
	m := Merge(sender, receiver)
	if m[1].Bytes != 4000 {
		t.Errorf("pse1 = %+v", m[1])
	}
	if m[2].Bytes != 1000 {
		t.Errorf("pse2 should take the fresher receiver view: %+v", m[2])
	}
	if m[3].Bytes != 50 {
		t.Errorf("receiver-only pse3 missing: %+v", m[3])
	}
	// Stale receiver view must not clobber fresh sender stats, but its
	// demod observation should.
	sender2 := map[int32]costmodel.Stat{1: {Count: 100, Bytes: 4000}}
	receiver2 := map[int32]costmodel.Stat{1: {Count: 10, Bytes: 1, DemodWork: 42}}
	m2 := Merge(sender2, receiver2)
	if m2[1].Bytes != 4000 || m2[1].DemodWork != 42 {
		t.Errorf("merge = %+v", m2[1])
	}
}

func TestRateTrigger(t *testing.T) {
	tr := &RateTrigger{EveryMessages: 5}
	fired := 0
	for m := uint64(1); m <= 20; m++ {
		if tr.ShouldReport(nil, m) {
			fired++
		}
	}
	if fired != 4 {
		t.Errorf("fired %d times, want 4", fired)
	}
}

func TestDiffTrigger(t *testing.T) {
	tr := &DiffTrigger{Threshold: 0.2, MinMessages: 1}
	base := map[int32]costmodel.Stat{1: {Bytes: 100, Prob: 1}}
	if !tr.ShouldReport(base, 1) {
		t.Error("first snapshot should report")
	}
	same := map[int32]costmodel.Stat{1: {Bytes: 105, Prob: 1}}
	if tr.ShouldReport(same, 2) {
		t.Error("5% change fired a 20% trigger")
	}
	big := map[int32]costmodel.Stat{1: {Bytes: 200, Prob: 1}}
	if !tr.ShouldReport(big, 3) {
		t.Error("100% change did not fire")
	}
	// After firing, the baseline resets.
	if tr.ShouldReport(big, 4) {
		t.Error("re-fired without further change")
	}
	newPSE := map[int32]costmodel.Stat{1: {Bytes: 200, Prob: 1}, 2: {Bytes: 1}}
	if !tr.ShouldReport(newPSE, 5) {
		t.Error("newly profiled PSE did not fire")
	}
}

func TestDiffTriggerMinMessages(t *testing.T) {
	tr := &DiffTrigger{Threshold: 0.2, MinMessages: 10}
	if tr.ShouldReport(map[int32]costmodel.Stat{1: {Bytes: 1}}, 5) {
		t.Error("fired before MinMessages")
	}
}

func TestTimeTrigger(t *testing.T) {
	now := time.Unix(0, 0)
	tr := &TimeTrigger{Every: time.Second, Now: func() time.Time { return now }}
	if tr.ShouldReport(nil, 1) {
		t.Error("fired on first observation")
	}
	now = now.Add(500 * time.Millisecond)
	if tr.ShouldReport(nil, 2) {
		t.Error("fired before period elapsed")
	}
	now = now.Add(600 * time.Millisecond)
	if !tr.ShouldReport(nil, 3) {
		t.Error("did not fire after period elapsed")
	}
	if tr.ShouldReport(nil, 4) {
		t.Error("re-fired without further elapse")
	}
}

func TestEitherTrigger(t *testing.T) {
	tr := &EitherTrigger{Children: []Trigger{
		&RateTrigger{EveryMessages: 100},
		&DiffTrigger{Threshold: 0.5, MinMessages: 1},
	}}
	if !tr.ShouldReport(map[int32]costmodel.Stat{1: {Bytes: 10}}, 1) {
		t.Error("diff child should fire on first snapshot")
	}
	if tr.ShouldReport(map[int32]costmodel.Stat{1: {Bytes: 10}}, 2) {
		t.Error("neither child should fire")
	}
}

// TestSplitAtKeepsUnprofiledEdgeFresh is the regression test for SplitAt
// dropping its modWork/contBytes arguments: when the active split edge is
// not profiled (or not sampled), Cross never fires for it, and the split
// observation is the only profiling that edge gets. Its stats must keep
// moving, not freeze at whatever profiling saw before the split flipped.
func TestSplitAtKeepsUnprofiledEdgeFresh(t *testing.T) {
	c := NewCollector(4)
	c.SetAlpha(1) // latest value wins, for exact assertions
	for i := 0; i < 10; i++ {
		c.Message(1000)
		c.SplitAt(2, 70, int64(300+i))
	}
	s2, ok := c.Snapshot()[2]
	if !ok {
		t.Fatal("split-only edge missing from snapshot: SplitAt dropped its observations")
	}
	if s2.Count != 10 {
		t.Errorf("split-only edge count = %d, want 10", s2.Count)
	}
	if s2.Bytes != 309 {
		t.Errorf("split-only edge bytes = %g, want 309 (latest observation)", s2.Bytes)
	}
	if s2.ModWork != 70 {
		t.Errorf("split-only edge modWork = %g, want 70", s2.ModWork)
	}
	if s2.Prob != 1 {
		t.Errorf("split-only edge prob = %g, want 1", s2.Prob)
	}
}

// TestSplitAtSkipsWhenCrossObserves: on a profiled, sampled message Cross
// already observed the split edge; SplitAt must count the split but not
// observe the same message twice.
func TestSplitAtSkipsWhenCrossObserves(t *testing.T) {
	c := NewCollector(4)
	c.SetAlpha(1)
	for i := 0; i < 10; i++ {
		c.Message(1000)
		c.Cross(1, 50, 200)
		c.SplitAt(1, 999, 888) // same message; Cross saw it already
	}
	s1 := c.Snapshot()[1]
	if s1.Count != 10 {
		t.Errorf("count = %d, want 10 (one per message, not per probe)", s1.Count)
	}
	if s1.Bytes != 200 || s1.ModWork != 50 {
		t.Errorf("stats = %+v, want the Cross observation (200/50)", s1)
	}
}

// TestSplitAtMixedSampling: with Cross firing only on sampled messages,
// every message is still observed exactly once — by Cross when sampled, by
// SplitAt otherwise.
func TestSplitAtMixedSampling(t *testing.T) {
	c := NewCollector(4)
	c.SetAlpha(1)
	for i := 0; i < 10; i++ {
		c.Message(1000)
		if i%2 == 0 {
			c.Cross(1, 50, 200)
		}
		c.SplitAt(1, 60, 210)
	}
	s1 := c.Snapshot()[1]
	if s1.Count != 10 {
		t.Errorf("count = %d, want 10 under 50%% sampling", s1.Count)
	}
	if s1.Prob != 1 {
		t.Errorf("prob = %g, want 1", s1.Prob)
	}
}

// TestMergeEqualCountsPreferReceiver: on an observation-count tie the
// receiver's view is the base — it is the side that decides.
func TestMergeEqualCountsPreferReceiver(t *testing.T) {
	sender := map[int32]costmodel.Stat{1: {Count: 5, Bytes: 10, ModWork: 3}}
	receiver := map[int32]costmodel.Stat{1: {Count: 5, Bytes: 20, ModWork: 7}}
	m := Merge(sender, receiver)
	if m[1].Bytes != 20 || m[1].ModWork != 7 {
		t.Errorf("tied merge = %+v, want the receiver view (20/7)", m[1])
	}
}

// TestMergeZeroByteFillIn: a fresher view that never observed byte sizes or
// demod work takes both from the stale side rather than zeroing them.
func TestMergeZeroByteFillIn(t *testing.T) {
	sender := map[int32]costmodel.Stat{1: {Count: 3, Bytes: 42, DemodWork: 33}}
	receiver := map[int32]costmodel.Stat{1: {Count: 9}}
	m := Merge(sender, receiver)
	if m[1].Count != 9 {
		t.Errorf("merged count = %d, want the fresher receiver's 9", m[1].Count)
	}
	if m[1].Bytes != 42 {
		t.Errorf("merged bytes = %g, want 42 filled in from the stale sender", m[1].Bytes)
	}
	if m[1].DemodWork != 33 {
		t.Errorf("merged demod = %g, want 33 filled in from the stale sender", m[1].DemodWork)
	}
}

// TestMergeReceiverDemodWorkAlwaysWins: the receiver is the only side that
// ever truly measures demodulator work; its observation beats even a much
// fresher sender estimate.
func TestMergeReceiverDemodWorkAlwaysWins(t *testing.T) {
	sender := map[int32]costmodel.Stat{1: {Count: 100, Bytes: 50, DemodWork: 99}}
	receiver := map[int32]costmodel.Stat{1: {Count: 1, DemodWork: 7}}
	m := Merge(sender, receiver)
	if m[1].DemodWork != 7 {
		t.Errorf("merged demod = %g, want the receiver's 7", m[1].DemodWork)
	}
	if m[1].Bytes != 50 {
		t.Errorf("merged bytes = %g, want the fresher sender's 50", m[1].Bytes)
	}
}

// TestRateTriggerBoundary pins the >= boundary and the zero-period default.
func TestRateTriggerBoundary(t *testing.T) {
	tr := &RateTrigger{EveryMessages: 3}
	want := map[uint64]bool{1: false, 2: false, 3: true, 4: false, 5: false, 6: true}
	for m := uint64(1); m <= 6; m++ {
		if got := tr.ShouldReport(nil, m); got != want[m] {
			t.Errorf("message %d: fired=%v, want %v", m, got, want[m])
		}
	}
	every := &RateTrigger{} // period 0 means every message
	for m := uint64(1); m <= 3; m++ {
		if !every.ShouldReport(nil, m) {
			t.Errorf("zero-period trigger idle at message %d", m)
		}
	}
}

// TestTimeTriggerBoundary: the first call only latches the clock, the
// period boundary itself fires (>=), and a non-positive period defaults to
// one second.
func TestTimeTriggerBoundary(t *testing.T) {
	now := time.Unix(100, 0)
	tr := &TimeTrigger{Every: time.Second, Now: func() time.Time { return now }}
	if tr.ShouldReport(nil, 1) {
		t.Error("first call fired instead of latching")
	}
	now = now.Add(time.Second) // exactly the period
	if !tr.ShouldReport(nil, 2) {
		t.Error("exact period boundary did not fire")
	}
	if tr.ShouldReport(nil, 3) {
		t.Error("re-fired with no time elapsed")
	}

	now = time.Unix(200, 0)
	def := &TimeTrigger{Now: func() time.Time { return now }} // Every 0 -> 1s
	def.ShouldReport(nil, 1)
	now = now.Add(999 * time.Millisecond)
	if def.ShouldReport(nil, 2) {
		t.Error("default-period trigger fired before one second")
	}
	now = now.Add(time.Millisecond)
	if !def.ShouldReport(nil, 3) {
		t.Error("default-period trigger idle at one second")
	}
}
