// Closure compilation of MIR programs. Compile lowers a program once —
// resolving every branch label to an instruction index (rejecting undefined
// labels instead of silently jumping to 0), allocating registers to dense
// slots, and emitting one Go closure per instruction — so the per-event hot
// path pays no map lookups, no label resolution and no opcode dispatch
// switch. Straight-line runs whose internal edges need no hook observation
// are additionally fused into superinstructions (const+bin, cmp+branch and
// longer chains), each dispatched as a single closure.
//
// The compiled engine is behaviourally identical to the stepping Machine:
// same outcomes, same work and step accounting, same resource-bound
// behaviour, byte-identical error text. The one deliberate difference is
// that the edge hook observes only the watched edges given to Compile;
// with a nil watch set every edge is watched and no fusion happens, which
// restores full stepping parity.
package interp

import (
	"fmt"
	"sync"

	"methodpart/internal/mir"
)

// maxFuseLen bounds superinstruction chain length. Fused halves execute by
// nested closure calls, so the bound also bounds stack depth per dispatch;
// 8 captures virtually all straight-line runs between branches in handler
// code without letting a pathological block nest hundreds of frames.
const maxFuseLen = 8

// CompileOptions configures lowering.
type CompileOptions struct {
	// Watch lists the control-flow edges the edge hook must observe. The
	// hook fires only on watched edges, and an instruction pair whose
	// connecting edge is watched is never fused. nil watches every edge
	// (full stepping-machine parity, no fusion); an empty non-nil slice
	// watches none. Partition compilation passes the PSE edges plus the
	// edges into non-exit StopNodes — the only edges whose hooks act.
	Watch []Edge
}

// opFn executes one compiled operation, returning the next instruction
// index (-1 on return) or an error attributed to CodeMachine.faultPC.
type opFn func(m *CodeMachine) (int, error)

// codeOp is one dispatch unit: a closure plus the Unit Graph metadata the
// driver needs to report edges. from is the index of the op's final
// instruction (the tail of a fused chain); w1/w2 are its watched successor
// indices, -1 when absent.
type codeOp struct {
	fn   opFn
	from int
	w1   int
	w2   int
}

// Code is a compiled MIR program: the instruction closures, the register
// name↔slot mapping (names survive compilation so wire-format continuation
// snapshots stay interoperable with the stepping engine), and a pool of
// machines.
type Code struct {
	prog      *mir.Program
	ops       []codeOp
	slotOf    map[string]int
	slotNames []string
	params    []int
	fused     int
	pool      sync.Pool
}

// Prog returns the source program.
func (c *Code) Prog() *mir.Program { return c.prog }

// NumSlots returns the number of register slots a machine carries.
func (c *Code) NumSlots() int { return len(c.slotNames) }

// Superinstructions returns the number of ops that begin a fused run.
func (c *Code) Superinstructions() int { return c.fused }

// Compile lowers a program for closure execution. It fails on structural
// defects the stepping engine would only hit at runtime — undefined or
// duplicate branch labels, control falling off the end — mirroring
// Program.Validate so a validated program always compiles.
func Compile(prog *mir.Program, opts CompileOptions) (*Code, error) {
	n := len(prog.Instrs)
	if n == 0 {
		return nil, fmt.Errorf("interp: compile %s: program has no instructions", prog.Name)
	}
	if last := &prog.Instrs[n-1]; !last.IsTerminator() {
		return nil, fmt.Errorf("interp: compile %s: control falls off the end (last instr %s)", prog.Name, last)
	}
	c := &Code{prog: prog, slotOf: make(map[string]int)}
	for _, r := range prog.Registers() {
		c.slotFor(r)
	}
	c.params = make([]int, len(prog.Params))
	for i, prm := range prog.Params {
		c.params[i] = c.slotFor(prm)
	}

	// Resolve labels independently of Validate's index so an unvalidated
	// program cannot compile with dangling branches.
	labels := make(map[string]int)
	for i := range prog.Instrs {
		if l := prog.Instrs[i].Label; l != "" {
			if _, dup := labels[l]; dup {
				return nil, fmt.Errorf("interp: compile %s: duplicate label %q", prog.Name, l)
			}
			labels[l] = i
		}
	}
	targets := make([]int, n)
	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		if !in.IsBranch() {
			continue
		}
		t, ok := labels[in.Target]
		if !ok {
			return nil, fmt.Errorf("interp: compile %s: instr %d (%s): undefined label %q", prog.Name, i, in, in.Target)
		}
		targets[i] = t
	}

	watched := func(from, to int) bool { return true }
	if opts.Watch != nil {
		ws := make(map[Edge]bool, len(opts.Watch))
		for _, e := range opts.Watch {
			ws[e] = true
		}
		watched = func(from, to int) bool { return ws[Edge{From: from, To: to}] }
	}

	c.ops = make([]codeOp, n)
	standalone := make([]opFn, n)
	for i := range prog.Instrs {
		standalone[i] = c.lower(i, targets)
		c.ops[i].fn = standalone[i]
	}

	// Superinstruction fusion, built back to front so ops[i] chains into
	// the already-fused suffix at i+1. Every index keeps a valid op
	// covering the chain suffix that starts there, so Restore can resume
	// at the middle of a fused run. A head must fall through
	// unconditionally (not a branch or return) and its internal edge must
	// be unwatched, otherwise the hook would miss an observation the
	// stepping engine delivers.
	chainLen := make([]int, n)
	lastOf := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		chainLen[i], lastOf[i] = 1, i
		in := &prog.Instrs[i]
		if in.IsBranch() || in.Op == mir.OpReturn || i+1 >= n {
			continue
		}
		if watched(i, i+1) || chainLen[i+1] >= maxFuseLen {
			continue
		}
		c.ops[i].fn = fusePair(standalone[i], c.ops[i+1].fn)
		chainLen[i] = chainLen[i+1] + 1
		lastOf[i] = lastOf[i+1]
	}
	for i := range chainLen {
		if chainLen[i] > 1 {
			c.fused++
		}
	}

	// Edge metadata: each op reports edges out of its final instruction.
	for i := range c.ops {
		op := &c.ops[i]
		fin := lastOf[i]
		op.from = fin
		op.w1, op.w2 = -1, -1
		in := &prog.Instrs[fin]
		switch in.Op {
		case mir.OpReturn:
		case mir.OpGoto:
			if watched(fin, targets[fin]) {
				op.w1 = targets[fin]
			}
		case mir.OpIf, mir.OpIfNot:
			if fall := fin + 1; fall < n && watched(fin, fall) {
				op.w1 = fall
			}
			if t := targets[fin]; watched(fin, t) {
				op.w2 = t
			}
		default:
			if watched(fin, fin+1) {
				op.w1 = fin + 1
			}
		}
	}

	nslots := len(c.slotNames)
	c.pool.New = func() any {
		return &CodeMachine{code: c, regs: make([]slot, nslots)}
	}
	return c, nil
}

func (c *Code) slotFor(name string) int {
	if i, ok := c.slotOf[name]; ok {
		return i
	}
	i := len(c.slotNames)
	c.slotOf[name] = i
	c.slotNames = append(c.slotNames, name)
	return i
}

// fusePair glues two compiled ops into one dispatch unit. The head runs
// first; the resource-bound checks the driver loop would have made between
// the two instructions run in the middle, raising pre-wrapped errors
// (noWrap) so their text matches a driver-raised bound exactly.
func fusePair(head, tail opFn) opFn {
	return func(m *CodeMachine) (int, error) {
		if next, err := head(m); err != nil {
			return next, err
		}
		if m.steps >= m.limit {
			m.noWrap = true
			return 0, m.stepLimitErr()
		}
		if m.budget > 0 && m.work >= m.budget {
			m.noWrap = true
			return 0, m.workBudgetErr()
		}
		return tail(m)
	}
}

// lower emits the standalone closure for instruction i. Every closure
// charges one work unit and one step on entry and stamps faultPC, matching
// the stepping engine's accounting (work and steps advance even when the
// instruction faults).
func (c *Code) lower(i int, targets []int) opFn {
	in := &c.prog.Instrs[i]
	fall := i + 1
	switch in.Op {
	case mir.OpConst:
		dst := c.slotFor(in.Dst)
		var lit slot
		lit.set(in.Lit)
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.regs[dst] = lit
			return fall, nil
		}

	case mir.OpMove:
		dst, src := c.slotFor(in.Dst), c.slotFor(in.Src)
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			s := m.regs[src]
			if s.kind == skUnset {
				return 0, m.unsetErr(src)
			}
			m.regs[dst] = s
			return fall, nil
		}

	case mir.OpBin:
		return c.lowerBin(i, fall, in)

	case mir.OpUn:
		return c.lowerUn(i, fall, in)

	case mir.OpGoto:
		t := targets[i]
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			return t, nil
		}

	case mir.OpIf, mir.OpIfNot:
		src := c.slotFor(in.Src)
		t := targets[i]
		negate := in.Op == mir.OpIfNot
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			s := &m.regs[src]
			var truth bool
			switch s.kind {
			case skBool, skInt:
				truth = s.i != 0
			case skUnset:
				return 0, m.unsetErr(src)
			default:
				tv, err := mir.Truthy(s.box())
				if err != nil {
					return 0, err
				}
				truth = tv
			}
			if negate {
				truth = !truth
			}
			if truth {
				return t, nil
			}
			return fall, nil
		}

	case mir.OpCall:
		fn := in.Fn
		argIdx := make([]int, len(in.Args))
		for k, r := range in.Args {
			argIdx[k] = c.slotFor(r)
		}
		dst := -1
		if in.Dst != "" {
			dst = c.slotFor(in.Dst)
		}
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			b, ok := m.env.Builtins.Lookup(fn)
			if !ok {
				return 0, fmt.Errorf("unknown builtin %q", fn)
			}
			args := m.argBuf[:0]
			for _, ai := range argIdx {
				s := &m.regs[ai]
				if s.kind == skUnset {
					return 0, m.unsetErr(ai)
				}
				args = append(args, s.box())
			}
			m.argBuf = args[:0] // keep the grown backing array for reuse
			if b.Cost != nil {
				m.work += b.Cost(args)
			}
			v, err := b.Fn(m.env, args)
			if err != nil {
				return 0, fmt.Errorf("builtin %s: %w", fn, err)
			}
			if dst >= 0 {
				if v == nil {
					v = mir.Null{}
				}
				m.regs[dst].set(v)
			}
			return fall, nil
		}

	case mir.OpReturn:
		if in.Src == "" {
			return func(m *CodeMachine) (int, error) {
				m.work++
				m.steps++
				m.ret = mir.Null{}
				return -1, nil
			}
		}
		src := c.slotFor(in.Src)
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			s := &m.regs[src]
			if s.kind == skUnset {
				return 0, m.unsetErr(src)
			}
			m.ret = s.box()
			return -1, nil
		}

	case mir.OpNew:
		dst := c.slotFor(in.Dst)
		class := in.Class
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			obj, err := m.env.Classes.New(class)
			if err != nil {
				return 0, err
			}
			m.regs[dst] = slot{kind: skBoxed, v: obj}
			return fall, nil
		}

	case mir.OpGetField:
		dst, src := c.slotFor(in.Dst), c.slotFor(in.Src)
		field := in.Field
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			obj, err := m.objAt(src)
			if err != nil {
				return 0, err
			}
			v, ok := obj.Fields[field]
			if !ok {
				return 0, fmt.Errorf("object %s has no field %q", obj.Class, field)
			}
			m.regs[dst].set(v)
			return fall, nil
		}

	case mir.OpSetField:
		objIdx, src := c.slotFor(in.Dst), c.slotFor(in.Src)
		field := in.Field
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			obj, err := m.objAt(objIdx)
			if err != nil {
				return 0, err
			}
			s := &m.regs[src]
			if s.kind == skUnset {
				return 0, m.unsetErr(src)
			}
			obj.Fields[field] = s.box()
			return fall, nil
		}

	case mir.OpNewArray:
		dst, src := c.slotFor(in.Dst), c.slotFor(in.Src)
		elem := in.ElemKind
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			n, err := m.intAt(src)
			if err != nil {
				return 0, err
			}
			if n < 0 {
				return 0, fmt.Errorf("negative array length %d", n)
			}
			switch elem {
			case mir.KindInt:
				m.regs[dst] = slot{kind: skBoxed, v: make(mir.IntArray, n)}
			case mir.KindFloat:
				m.regs[dst] = slot{kind: skBoxed, v: make(mir.FloatArray, n)}
			case mir.KindBytes:
				m.regs[dst] = slot{kind: skBoxed, v: make(mir.Bytes, n)}
			default:
				return 0, fmt.Errorf("bad newarray element kind %s", elem)
			}
			return fall, nil
		}

	case mir.OpArrGet:
		dst, arr, idx := c.slotFor(in.Dst), c.slotFor(in.Src), c.slotFor(in.Src2)
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			as := &m.regs[arr]
			if as.kind == skUnset {
				return 0, m.unsetErr(arr)
			}
			ix, err := m.intAt(idx)
			if err != nil {
				return 0, err
			}
			if as.kind == skBoxed {
				switch a := as.v.(type) {
				case mir.IntArray:
					if ix < 0 || ix >= int64(len(a)) {
						return 0, fmt.Errorf("index %d out of range [0,%d)", ix, len(a))
					}
					m.regs[dst] = slot{kind: skInt, i: a[ix]}
					return fall, nil
				case mir.FloatArray:
					if ix < 0 || ix >= int64(len(a)) {
						return 0, fmt.Errorf("index %d out of range [0,%d)", ix, len(a))
					}
					m.regs[dst] = slot{kind: skFloat, f: a[ix]}
					return fall, nil
				case mir.Bytes:
					if ix < 0 || ix >= int64(len(a)) {
						return 0, fmt.Errorf("index %d out of range [0,%d)", ix, len(a))
					}
					m.regs[dst] = slot{kind: skInt, i: int64(a[ix])}
					return fall, nil
				}
			}
			return 0, fmt.Errorf("arrget on %s", as.kindOf())
		}

	case mir.OpArrSet:
		arr, idx, val := c.slotFor(in.Dst), c.slotFor(in.Src2), c.slotFor(in.Src)
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			as := &m.regs[arr]
			if as.kind == skUnset {
				return 0, m.unsetErr(arr)
			}
			ix, err := m.intAt(idx)
			if err != nil {
				return 0, err
			}
			vs := &m.regs[val]
			if vs.kind == skUnset {
				return 0, m.unsetErr(val)
			}
			if as.kind == skBoxed {
				switch a := as.v.(type) {
				case mir.IntArray:
					if vs.kind != skInt {
						return 0, fmt.Errorf("intarray element must be int, got %s", vs.kindOf())
					}
					if ix < 0 || ix >= int64(len(a)) {
						return 0, fmt.Errorf("index %d out of range [0,%d)", ix, len(a))
					}
					a[ix] = vs.i
					return fall, nil
				case mir.FloatArray:
					if vs.kind != skFloat {
						return 0, fmt.Errorf("floatarray element must be float, got %s", vs.kindOf())
					}
					if ix < 0 || ix >= int64(len(a)) {
						return 0, fmt.Errorf("index %d out of range [0,%d)", ix, len(a))
					}
					a[ix] = vs.f
					return fall, nil
				case mir.Bytes:
					if vs.kind != skInt {
						return 0, fmt.Errorf("bytes element must be int, got %s", vs.kindOf())
					}
					if ix < 0 || ix >= int64(len(a)) {
						return 0, fmt.Errorf("index %d out of range [0,%d)", ix, len(a))
					}
					a[ix] = byte(vs.i)
					return fall, nil
				}
			}
			return 0, fmt.Errorf("arrset on %s", as.kindOf())
		}

	case mir.OpInstanceOf:
		dst, src := c.slotFor(in.Dst), c.slotFor(in.Src)
		class := in.Class
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			s := &m.regs[src]
			if s.kind == skUnset {
				return 0, m.unsetErr(src)
			}
			is := false
			if s.kind == skBoxed {
				if obj, ok := s.v.(*mir.Object); ok && obj != nil && obj.Class == class {
					is = true
				}
			}
			m.regs[dst] = boolSlot(is)
			return fall, nil
		}

	case mir.OpCast:
		dst, src := c.slotFor(in.Dst), c.slotFor(in.Src)
		class := in.Class
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			s := m.regs[src]
			if s.kind == skUnset {
				return 0, m.unsetErr(src)
			}
			if s.kind == skBoxed {
				if obj, ok := s.v.(*mir.Object); ok && obj != nil && obj.Class == class {
					m.regs[dst] = s
					return fall, nil
				}
			}
			return 0, fmt.Errorf("cannot cast %s to %s", s.kindOf(), class)
		}

	case mir.OpLen:
		dst, src := c.slotFor(in.Dst), c.slotFor(in.Src)
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			s := &m.regs[src]
			if s.kind == skUnset {
				return 0, m.unsetErr(src)
			}
			if s.kind == skBoxed {
				switch a := s.v.(type) {
				case mir.IntArray:
					m.regs[dst] = slot{kind: skInt, i: int64(len(a))}
					return fall, nil
				case mir.FloatArray:
					m.regs[dst] = slot{kind: skInt, i: int64(len(a))}
					return fall, nil
				case mir.Bytes:
					m.regs[dst] = slot{kind: skInt, i: int64(len(a))}
					return fall, nil
				case mir.Str:
					m.regs[dst] = slot{kind: skInt, i: int64(len(a))}
					return fall, nil
				}
			}
			return 0, fmt.Errorf("len of %s", s.kindOf())
		}

	case mir.OpGetGlobal:
		dst := c.slotFor(in.Dst)
		name := in.Field
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			v, ok := m.env.Globals[name]
			if !ok {
				v = mir.Null{}
			}
			m.regs[dst].set(v)
			return fall, nil
		}

	case mir.OpSetGlobal:
		src := c.slotFor(in.Src)
		name := in.Field
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			s := &m.regs[src]
			if s.kind == skUnset {
				return 0, m.unsetErr(src)
			}
			m.env.Globals[name] = s.box()
			return fall, nil
		}

	default:
		op := in.Op
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			return 0, fmt.Errorf("unknown opcode %d", uint8(op))
		}
	}
}

// lowerBin specializes OpBin per operator: the overwhelmingly common
// int⊕int case runs unboxed inline; everything else drops to binSlow
// (numeric promotion) or binBoxed (evalBin) for exact stepping semantics.
func (c *Code) lowerBin(i, fall int, in *mir.Instr) opFn {
	dst, a, b := c.slotFor(in.Dst), c.slotFor(in.Src), c.slotFor(in.Src2)
	bin := in.Bin
	switch bin {
	case mir.BinAdd:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			pa, pb := &m.regs[a], &m.regs[b]
			if pa.kind == skInt && pb.kind == skInt {
				m.regs[dst] = slot{kind: skInt, i: pa.i + pb.i}
				return fall, nil
			}
			return m.binSlow(fall, mir.BinAdd, dst, a, b)
		}
	case mir.BinSub:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			pa, pb := &m.regs[a], &m.regs[b]
			if pa.kind == skInt && pb.kind == skInt {
				m.regs[dst] = slot{kind: skInt, i: pa.i - pb.i}
				return fall, nil
			}
			return m.binSlow(fall, mir.BinSub, dst, a, b)
		}
	case mir.BinMul:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			pa, pb := &m.regs[a], &m.regs[b]
			if pa.kind == skInt && pb.kind == skInt {
				m.regs[dst] = slot{kind: skInt, i: pa.i * pb.i}
				return fall, nil
			}
			return m.binSlow(fall, mir.BinMul, dst, a, b)
		}
	case mir.BinDiv:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			pa, pb := &m.regs[a], &m.regs[b]
			if pa.kind == skInt && pb.kind == skInt && pb.i != 0 {
				m.regs[dst] = slot{kind: skInt, i: pa.i / pb.i}
				return fall, nil
			}
			return m.binSlow(fall, mir.BinDiv, dst, a, b)
		}
	case mir.BinMod:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			pa, pb := &m.regs[a], &m.regs[b]
			if pa.kind == skInt && pb.kind == skInt && pb.i != 0 {
				m.regs[dst] = slot{kind: skInt, i: pa.i % pb.i}
				return fall, nil
			}
			return m.binBoxed(fall, mir.BinMod, dst, a, b)
		}
	case mir.BinLt:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			pa, pb := &m.regs[a], &m.regs[b]
			if pa.kind == skInt && pb.kind == skInt {
				m.regs[dst] = boolSlot(pa.i < pb.i)
				return fall, nil
			}
			return m.binSlow(fall, mir.BinLt, dst, a, b)
		}
	case mir.BinLe:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			pa, pb := &m.regs[a], &m.regs[b]
			if pa.kind == skInt && pb.kind == skInt {
				m.regs[dst] = boolSlot(pa.i <= pb.i)
				return fall, nil
			}
			return m.binSlow(fall, mir.BinLe, dst, a, b)
		}
	case mir.BinGt:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			pa, pb := &m.regs[a], &m.regs[b]
			if pa.kind == skInt && pb.kind == skInt {
				m.regs[dst] = boolSlot(pa.i > pb.i)
				return fall, nil
			}
			return m.binSlow(fall, mir.BinGt, dst, a, b)
		}
	case mir.BinGe:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			pa, pb := &m.regs[a], &m.regs[b]
			if pa.kind == skInt && pb.kind == skInt {
				m.regs[dst] = boolSlot(pa.i >= pb.i)
				return fall, nil
			}
			return m.binSlow(fall, mir.BinGe, dst, a, b)
		}
	case mir.BinEq, mir.BinNe:
		neg := bin == mir.BinNe
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			pa, pb := &m.regs[a], &m.regs[b]
			if pa.kind != skUnset && pa.kind != skBoxed && pb.kind != skUnset && pb.kind != skBoxed {
				// Unboxed kinds compare directly; mir.Equal is
				// kind-strict so differing kinds are simply unequal.
				eq := false
				if pa.kind == pb.kind {
					if pa.kind == skFloat {
						eq = pa.f == pb.f
					} else {
						eq = pa.i == pb.i
					}
				}
				m.regs[dst] = boolSlot(eq != neg)
				return fall, nil
			}
			return m.binBoxed(fall, bin, dst, a, b)
		}
	case mir.BinAnd:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			pa, pb := &m.regs[a], &m.regs[b]
			if pa.kind == skBool && pb.kind == skBool {
				m.regs[dst] = boolSlot(pa.i != 0 && pb.i != 0)
				return fall, nil
			}
			return m.binBoxed(fall, mir.BinAnd, dst, a, b)
		}
	case mir.BinOr:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			pa, pb := &m.regs[a], &m.regs[b]
			if pa.kind == skBool && pb.kind == skBool {
				m.regs[dst] = boolSlot(pa.i != 0 || pb.i != 0)
				return fall, nil
			}
			return m.binBoxed(fall, mir.BinOr, dst, a, b)
		}
	default:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			return m.binBoxed(fall, bin, dst, a, b)
		}
	}
}

// lowerUn specializes OpUn per operator with unboxed fast paths.
func (c *Code) lowerUn(i, fall int, in *mir.Instr) opFn {
	dst, src := c.slotFor(in.Dst), c.slotFor(in.Src)
	un := in.Un
	switch un {
	case mir.UnNeg:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			s := &m.regs[src]
			switch s.kind {
			case skInt:
				m.regs[dst] = slot{kind: skInt, i: -s.i}
				return fall, nil
			case skFloat:
				m.regs[dst] = slot{kind: skFloat, f: -s.f}
				return fall, nil
			}
			return m.unSlow(fall, mir.UnNeg, dst, src)
		}
	case mir.UnNot:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			s := &m.regs[src]
			if s.kind == skBool {
				m.regs[dst] = boolSlot(s.i == 0)
				return fall, nil
			}
			return m.unSlow(fall, mir.UnNot, dst, src)
		}
	case mir.UnI2F:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			s := &m.regs[src]
			if s.kind == skInt {
				m.regs[dst] = slot{kind: skFloat, f: float64(s.i)}
				return fall, nil
			}
			return m.unSlow(fall, mir.UnI2F, dst, src)
		}
	case mir.UnF2I:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			s := &m.regs[src]
			if s.kind == skFloat {
				m.regs[dst] = slot{kind: skInt, i: f2i(s.f)}
				return fall, nil
			}
			return m.unSlow(fall, mir.UnF2I, dst, src)
		}
	default:
		return func(m *CodeMachine) (int, error) {
			m.work++
			m.steps++
			m.faultPC = i
			return m.unSlow(fall, un, dst, src)
		}
	}
}
