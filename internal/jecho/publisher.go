package jecho

import (
	"errors"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/obsv"
	"methodpart/internal/partition"
	"methodpart/internal/profileunit"
	"methodpart/internal/reconfig"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// PublisherConfig configures an event-channel publisher.
type PublisherConfig struct {
	// Addr is the listen address in the transport's notation (e.g.
	// "127.0.0.1:0" for TCP, "" for an auto-allocated Mem address).
	Addr string
	// Transport carries subscriptions (nil = TCP).
	Transport transport.Transport
	// Builtins are the movable library functions available to handlers at
	// the sender (natives need not be present; they never run here).
	Builtins *interp.Registry
	// FeedbackEvery is the sender-side profiling report period in
	// messages (0 = 10).
	FeedbackEvery uint64
	// ProfileSampleEvery applies §2.5's periodic profiling sampling to
	// every modulator: >1 profiles only each Nth message (0/1 = all).
	ProfileSampleEvery uint64
	// QueueDepth bounds each subscription's outbound send queue
	// (0 = DefaultQueueDepth).
	QueueDepth int
	// OverflowPolicy selects the behaviour when a subscription's queue is
	// full (default Block).
	OverflowPolicy OverflowPolicy
	// BatchBytes enables wire-level event batching: when the outbound
	// queue holds more than one event frame, the sender coalesces up to
	// BatchBytes of payload into a single batch wire frame (0 disables
	// batching). Batching only engages for subscribers speaking protocol
	// v4 or newer; a v3 peer transparently receives unbatched frames.
	BatchBytes int
	// BatchDelay is how long the sender lingers after the first frame of
	// a batch for more to arrive, when the queue alone did not reach
	// BatchBytes (0 = no lingering: batch only what is already queued).
	// Only meaningful with BatchBytes > 0.
	BatchDelay time.Duration
	// HeartbeatInterval is the idle-liveness probe period per
	// subscription (0 = DefaultHeartbeatInterval, <0 disables
	// heartbeats and silence detection).
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many silent heartbeat periods retire a peer:
	// the read window is HeartbeatInterval × HeartbeatMisses
	// (0 = DefaultHeartbeatMisses, <0 disables silence detection only).
	HeartbeatMisses int
	// WriteTimeout bounds each frame write so a wedged peer fails its
	// sender goroutine instead of blocking it forever
	// (0 = DefaultWriteTimeout, <0 disables).
	WriteTimeout time.Duration
	// BreakerThreshold is how many per-PSE failures (subscriber NACKs or
	// send-side modulation faults) within BreakerWindow trip that PSE's
	// circuit breaker, degrading the subscription's plan away from it
	// (0 = DefaultBreakerThreshold, <0 disables the breaker).
	BreakerThreshold int
	// BreakerWindow is the failure-counting window
	// (0 = DefaultBreakerWindow, <0 disables).
	BreakerWindow time.Duration
	// BreakerCooldown is how long a tripped PSE stays excluded before a
	// half-open probe re-admits it (0 = DefaultBreakerCooldown,
	// <0 disables).
	BreakerCooldown time.Duration
	// Tracer receives split-lifecycle trace events (publish, suppress,
	// NACKs, breaker transitions, min-cut runs, plan flips). Nil — the
	// default — disables tracing at zero per-event cost; per-PSE
	// histograms (see Collect) are always on.
	Tracer *obsv.Tracer
	// Logf receives diagnostics (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Publisher hosts an event channel: it accepts subscriptions (installing a
// modulator per subscriber) and fans published events out through them.
// Each subscription owns an asynchronous send pipeline, so Publish hands
// frames to per-subscription queues and never blocks on a peer's socket.
type Publisher struct {
	cfg      PublisherConfig
	sup      supervision
	listener transport.Listener

	mu     sync.Mutex
	subs   map[string]*subscription
	nextID int
	closed bool
	wg     sync.WaitGroup
}

// subscription is the publisher-side state of one subscriber.
type subscription struct {
	id       string
	channel  string
	conn     transport.Conn
	compiled *partition.Compiled
	mod      *partition.Modulator
	coll     *profileunit.Collector
	trigger  profileunit.Trigger
	pipe     *sendPipeline
	metrics  *channelMetrics
	// hists are the always-on per-PSE latency/bytes/work histograms fed
	// by publishOne and exposed through Collect.
	hists *pseHistograms
	// breaker gates split-set eligibility per PSE from this subscription's
	// failure stream (NACKs from the subscriber, local modulation faults).
	breaker *pseBreaker
	// runit recomputes a degraded plan locally when the breaker trips —
	// the publisher cannot wait for the subscriber's next plan push while
	// every event at a poisoned PSE is failing.
	runit *reconfig.Unit
	// degradeMu serializes runit access between the control-read goroutine
	// (NACK handling) and publish goroutines (modulation faults).
	degradeMu sync.Mutex

	retireOnce sync.Once
}

// NewPublisher starts listening and accepting subscriptions.
func NewPublisher(cfg PublisherConfig) (*Publisher, error) {
	if cfg.Builtins == nil {
		return nil, fmt.Errorf("jecho: publisher needs a builtin registry")
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.FeedbackEvery == 0 {
		cfg.FeedbackEvery = 10
	}
	if cfg.Transport == nil {
		cfg.Transport = transport.Default()
	}
	ln, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("jecho: listen: %w", err)
	}
	p := &Publisher{
		cfg:      cfg,
		sup:      resolveSupervision(cfg.HeartbeatInterval, cfg.HeartbeatMisses, cfg.WriteTimeout),
		listener: ln,
		subs:     make(map[string]*subscription),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the bound listen address.
func (p *Publisher) Addr() string { return p.listener.Addr() }

// Close stops the publisher and drops all subscriptions.
func (p *Publisher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	subs := make([]*subscription, 0, len(p.subs))
	for _, s := range p.subs {
		subs = append(subs, s)
	}
	p.mu.Unlock()
	err := p.listener.Close()
	for _, s := range subs {
		p.retire(s)
	}
	p.wg.Wait()
	return err
}

// Subscribers returns the current subscriber count.
func (p *Publisher) Subscribers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

// SubscriptionInfo describes one live subscription for observability.
type SubscriptionInfo struct {
	// ID is the publisher-assigned subscription id.
	ID string
	// Channel is the channel the subscription is attached to.
	Channel string
	// Handler is the installed handler's name.
	Handler string
	// PlanVersion is the active partitioning plan's version.
	PlanVersion uint64
	// SplitIDs are the active plan's flagged PSEs.
	SplitIDs []int32
	// QueueLen is the instantaneous outbound queue depth.
	QueueLen int
	// Metrics snapshots the subscription's channel counters.
	Metrics ChannelMetrics
}

// Subscriptions snapshots the live subscriptions, ordered by id.
func (p *Publisher) Subscriptions() []SubscriptionInfo {
	p.mu.Lock()
	subs := make([]*subscription, 0, len(p.subs))
	for _, s := range p.subs {
		subs = append(subs, s)
	}
	p.mu.Unlock()
	out := make([]SubscriptionInfo, 0, len(subs))
	for _, s := range subs {
		plan := s.mod.Plan()
		split := make([]int32, len(plan.SplitIDs()))
		copy(split, plan.SplitIDs())
		out = append(out, SubscriptionInfo{
			ID:          s.id,
			Channel:     s.channel,
			Handler:     s.compiled.Prog.Name,
			PlanVersion: plan.Version(),
			SplitIDs:    split,
			QueueLen:    len(s.pipe.queue),
			Metrics:     s.metrics.snapshot(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (p *Publisher) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.handleConn(conn)
	}
}

// retire removes a subscription and tears its pipeline and connection down.
// It is idempotent and is called from every path that finds the peer dead:
// the read loop erroring, the send pipeline failing a write, or Close.
// Retiring on the *send* path matters: without it a dead peer would keep
// costing (and failing) every subsequent Publish until its read loop
// happened to notice.
func (p *Publisher) retire(s *subscription) {
	s.retireOnce.Do(func() {
		p.mu.Lock()
		delete(p.subs, s.id)
		p.mu.Unlock()
		s.pipe.shutdown()
		_ = s.conn.Close()
	})
}

// handleConn performs the subscription handshake, starts the send pipeline,
// then serves plan updates from the subscriber.
func (p *Publisher) handleConn(conn transport.Conn) {
	defer p.wg.Done()
	// The handshake gets the same silence window as steady-state reads: a
	// connection that never subscribes must not pin a goroutine forever.
	p.sup.armRead(conn)
	frame, err := conn.ReadFrame()
	if err != nil {
		_ = conn.Close()
		return
	}
	msg, err := wire.Unmarshal(frame)
	if err != nil {
		p.cfg.Logf("jecho publisher: bad handshake: %v", err)
		_ = conn.Close()
		return
	}
	subMsg, ok := msg.(*wire.Subscribe)
	if !ok {
		p.cfg.Logf("jecho publisher: handshake was %T, want Subscribe", msg)
		_ = conn.Close()
		return
	}
	// Protocol negotiation: accept any version in [Min, Current]. The
	// subscriber's version caps what the publisher sends it — batch
	// frames only go to peers that can unpack them (v4+); everything
	// else in the current protocol is understood by v3.
	if subMsg.Protocol < wire.MinProtocolVersion || subMsg.Protocol > wire.ProtocolVersion {
		p.cfg.Logf("jecho publisher: protocol %d from %s, want %d..%d",
			subMsg.Protocol, subMsg.Subscriber, wire.MinProtocolVersion, wire.ProtocolVersion)
		_ = conn.Close()
		return
	}
	compiled, err := compileSubscription(subMsg)
	if err != nil {
		p.cfg.Logf("jecho publisher: compile %s: %v", subMsg.Handler, err)
		_ = conn.Close()
		return
	}
	env := interp.NewEnv(compiled.Classes, p.cfg.Builtins)
	coll := profileunit.NewCollector(compiled.NumPSEs())
	mod := partition.NewModulator(compiled, env)
	mod.Probe = coll
	mod.SampleEvery = p.cfg.ProfileSampleEvery

	metrics := &channelMetrics{}
	sub := &subscription{
		channel:  subMsg.Channel,
		conn:     conn,
		compiled: compiled,
		mod:      mod,
		coll:     coll,
		trigger:  &profileunit.RateTrigger{EveryMessages: p.cfg.FeedbackEvery},
		metrics:  metrics,
		hists:    newPSEHistograms(compiled.NumPSEs()),
		breaker:  resolveBreaker(p.cfg.BreakerThreshold, p.cfg.BreakerWindow, p.cfg.BreakerCooldown),
		// The degrade unit routes around broken PSEs; cost optimality is
		// the subscriber's reconfiguration unit's job, so a neutral
		// environment suffices here.
		runit: reconfig.NewUnit(compiled, costmodel.DefaultEnvironment()),
	}
	var batch batchConfig
	if p.cfg.BatchBytes > 0 && subMsg.Protocol >= wire.BatchProtocolVersion {
		batch = batchConfig{
			Bytes: p.cfg.BatchBytes,
			Delay: p.cfg.BatchDelay,
			hists: newBatchHistograms(),
		}
	}
	sub.pipe = newSendPipeline(conn, p.cfg.QueueDepth, p.cfg.OverflowPolicy, p.sup, batch, metrics,
		func(err error) {
			p.cfg.Logf("jecho publisher: sub %s send: %v; retiring", sub.id, err)
			p.retire(sub)
		})

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = conn.Close()
		return
	}
	p.nextID++
	sub.id = fmt.Sprintf("%s#%d", subMsg.Subscriber, p.nextID)
	p.subs[sub.id] = sub
	p.mu.Unlock()

	if p.cfg.Tracer != nil {
		sub.breaker.observeTransitions(breakerObserver(p.cfg.Tracer, sub.channel, func() string { return sub.id }))
	}

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		sub.pipe.run()
	}()

	// Serve inbound control messages (plans, heartbeats) until the peer
	// goes away or falls silent past the heartbeat window.
	for {
		p.sup.armRead(conn)
		frame, err := conn.ReadFrame()
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				p.cfg.Logf("jecho publisher: sub %s: no frame in %v; retiring silent peer",
					sub.id, p.sup.window)
			}
			break
		}
		msg, err := wire.Unmarshal(frame)
		if err != nil {
			// A bad control frame is a per-frame fault: count it and keep
			// the subscription alive instead of retiring the peer.
			metrics.decodeFailures.Add(1)
			p.cfg.Logf("jecho publisher: sub %s: %v", sub.id, err)
			continue
		}
		switch m := msg.(type) {
		case *wire.Heartbeat:
			metrics.heartbeatsRecv.Add(1)
		case *wire.Nack:
			metrics.nacksRecv.Add(1)
			p.cfg.Tracer.Emit(obsv.Event{
				Kind: obsv.EvNackRecv, Channel: sub.channel, Sub: sub.id,
				PSE: m.PSEID, EventSeq: m.Seq, Detail: m.Class.String(),
			})
			if int(m.PSEID) >= compiled.NumPSEs() {
				// A NACK naming a PSE the handler doesn't have is a
				// malformed report, not a failure signal: feeding it to the
				// breaker would grow its state map without bound and inject
				// bogus ids into the degrade path.
				metrics.decodeFailures.Add(1)
				p.cfg.Logf("jecho publisher: sub %s: nack for unknown pse %d (handler has %d); ignored",
					sub.id, m.PSEID, compiled.NumPSEs())
				continue
			}
			if m.PSEID >= 0 && sub.breaker.Fail(m.PSEID) {
				metrics.breakerTrips.Add(1)
				p.cfg.Logf("jecho publisher: sub %s: breaker tripped for pse %d (class %s, seq %d); degrading",
					sub.id, m.PSEID, m.Class, m.Seq)
				p.degrade(sub)
			}
		case *wire.Plan:
			// A plan re-selecting a PSE whose breaker is still open would
			// reinstall the broken split; drop it. (Once the cooldown
			// elapses, Open flips the breaker half-open and the next such
			// plan passes — that acceptance starts the probe, which ends
			// either with a failure re-opening the breaker or, since the
			// publisher has no per-message success signal, by surviving a
			// full failure window without one.)
			if id := blockedSplit(sub.breaker, m.Split); id >= 0 {
				p.cfg.Tracer.Emit(obsv.Event{
					Kind: obsv.EvPlanBlocked, Channel: sub.channel, Sub: sub.id,
					PSE: id, Plan: m.Version,
				})
				p.cfg.Logf("jecho publisher: sub %s plan v%d re-selects tripped pse %d; dropped",
					sub.id, m.Version, id)
				continue
			}
			before := mod.Plan().SplitIDs()
			if err := mod.ApplyWirePlan(m); err != nil {
				if errors.Is(err, partition.ErrStalePlan) {
					p.cfg.Tracer.Emit(obsv.Event{
						Kind: obsv.EvPlanStale, Channel: sub.channel, Sub: sub.id,
						PSE: obsv.NoPSE, Plan: m.Version,
					})
				}
				p.cfg.Logf("jecho publisher: sub %s plan: %v", sub.id, err)
				continue
			}
			if !equalSplit(before, mod.Plan().SplitIDs()) {
				metrics.planFlips.Add(1)
				tracePlanFlip(p.cfg.Tracer, sub.channel, sub.id, mod.Plan().Version(), mod.Plan().SplitIDs())
			}
		default:
			p.cfg.Logf("jecho publisher: sub %s sent %T", sub.id, msg)
		}
	}
	p.retire(sub)
}

// blockedSplit returns the first PSE in the split set whose breaker is
// open, or -1 when the whole set is admissible.
func blockedSplit(b *pseBreaker, split []int32) int32 {
	for _, id := range split {
		if b.Open(id) {
			return id
		}
	}
	return -1
}

// degrade recomputes one subscription's plan with the breaker's exclusions
// applied and installs it sender-side: the min-cut gives tripped PSEs
// effectively infinite capacity, so the flow routes to an adjacent healthy
// PSE or all the way back to raw delivery. The subscriber learns of the
// exclusion through the failure counts in the next feedback frame — which
// also carries the forced plan version, so its reconfiguration unit's
// counter skips past the degraded plan instead of emitting stale versions —
// and until its own plans avoid the PSE, the interception in handleConn
// keeps them from reinstalling it.
func (p *Publisher) degrade(s *subscription) {
	s.degradeMu.Lock()
	defer s.degradeMu.Unlock()
	s.runit.SetTripped(s.breaker.OpenIDs())
	_, wirePlan, err := s.runit.SelectPlan(s.coll.Snapshot())
	if err != nil {
		p.cfg.Logf("jecho publisher: sub %s degrade: %v", s.id, err)
		return
	}
	traceMinCut(p.cfg.Tracer, s.channel, s.id, s.runit)
	// The degrade unit's version counter is private; force the version past
	// the modulator's active plan so SetPlan cannot reject the degraded
	// plan as stale.
	cur := s.mod.Plan()
	version := cur.Version() + 1
	if wirePlan.Version > version {
		version = wirePlan.Version
	}
	plan, err := partition.NewPlan(s.compiled.NumPSEs(), version, wirePlan.Split, wirePlan.Profile)
	if err != nil {
		p.cfg.Logf("jecho publisher: sub %s degrade plan: %v", s.id, err)
		return
	}
	if s.mod.SetPlan(plan) && !equalSplit(cur.SplitIDs(), plan.SplitIDs()) {
		s.metrics.planFlips.Add(1)
		tracePlanFlip(p.cfg.Tracer, s.channel, s.id, plan.Version(), plan.SplitIDs())
	}
}

// equalSplit compares two sorted split-id sets.
func equalSplit(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Publish pushes one event through every subscription's modulator (all
// channels) and hands the resulting raw events or continuations to the
// per-subscription send pipelines. It returns the number of subscriptions
// reached (modulated and queued, or filtered at the sender) and the joined
// error across failing subscriptions, so callers can tell one dead peer
// from total failure.
//
// The event value is shared across subscriptions (and their concurrently
// running modulators), so handlers must treat incoming events as read-only —
// the usual contract of an event system; transforms allocate new objects.
func (p *Publisher) Publish(event mir.Value) (int, error) {
	return p.publish(event, "", true)
}

// PublishOn pushes one event to the subscriptions of one channel only.
func (p *Publisher) PublishOn(channel string, event mir.Value) (int, error) {
	return p.publish(event, channel, false)
}

func (p *Publisher) publish(event mir.Value, channel string, broadcast bool) (int, error) {
	p.mu.Lock()
	subs := make([]*subscription, 0, len(p.subs))
	for _, s := range p.subs {
		if broadcast || s.channel == channel {
			subs = append(subs, s)
		}
	}
	p.mu.Unlock()

	switch len(subs) {
	case 0:
		return 0, nil
	case 1:
		if err := p.publishOne(subs[0], event); err != nil {
			return 0, fmt.Errorf("jecho: sub %s: %w", subs[0].id, err)
		}
		return 1, nil
	}
	// Fan out concurrently: each subscription has its own modulator and
	// send queue, and per-subscription ordering is preserved because one
	// Publish call runs one message per subscription.
	var wg sync.WaitGroup
	errs := make([]error, len(subs))
	for i, s := range subs {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.publishOne(s, event); err != nil {
				errs[i] = fmt.Errorf("jecho: sub %s: %w", s.id, err)
			}
		}()
	}
	wg.Wait()
	reached := 0
	for _, e := range errs {
		if e == nil {
			reached++
		}
	}
	return reached, errors.Join(errs...)
}

// publishOne modulates the event for one subscription and enqueues the
// result (and any due profiling feedback) on its send pipeline. The only
// blocking here is queue handoff under the Block policy; transport writes
// happen on the subscription's sender goroutine.
func (p *Publisher) publishOne(s *subscription, event mir.Value) error {
	start := time.Now()
	out, err := s.mod.Process(event)
	modDur := time.Since(start)
	if err != nil {
		// A modulation fault (interpreter error or recovered panic) cannot
		// name the PSE it died at, so it is attributed to every split edge
		// of the active plan — the plan as a whole is what's broken. The
		// counts travel to the subscriber in the next feedback frame;
		// locally they feed the breaker, which degrades the plan once the
		// failures cluster.
		s.metrics.modFailures.Add(1)
		if tr := p.cfg.Tracer; tr.Enabled() {
			tr.Emit(obsv.Event{
				Kind: obsv.EvModFault, Channel: s.channel, Sub: s.id,
				PSE: obsv.NoPSE, Plan: s.mod.Plan().Version(),
				Detail: fmt.Sprintf("%s: %v", partition.FaultClassOf(err), err),
			})
		}
		tripped := false
		for _, id := range s.mod.Plan().SplitIDs() {
			s.coll.Fault(id)
			if s.breaker.Fail(id) {
				s.metrics.breakerTrips.Add(1)
				tripped = true
			}
		}
		if tripped {
			p.degrade(s)
		}
		return err
	}
	s.metrics.published.Add(1)
	observePublish(p.cfg.Tracer, s.hists, s.channel, s.id, s.mod.Plan().Version(), out, modDur)
	if out.Suppressed {
		s.metrics.suppressed.Add(1)
		s.metrics.bytesSaved.Add(uint64(wire.SizeOf(event)))
	} else {
		var msg any
		if out.Raw != nil {
			msg = out.Raw
		} else {
			msg = out.Cont
		}
		data, err := wire.Marshal(msg)
		if err != nil {
			return err
		}
		if out.Cont != nil {
			if raw := wire.SizeOf(event); raw > int64(len(data)) {
				s.metrics.bytesSaved.Add(uint64(raw - int64(len(data))))
			}
		}
		if err := s.pipe.enqueue(data); err != nil {
			p.retire(s)
			return err
		}
	}
	// Rate-triggered sender-side profiling feedback (§2.5). Feedback
	// coalesces to the latest snapshot instead of queueing, so a slow
	// peer never accumulates stale reports.
	snap := s.coll.Snapshot()
	if s.trigger.ShouldReport(snap, s.coll.Messages()) {
		fb := s.coll.ToWire(s.compiled.Prog.Name)
		// Carry the active plan version so the subscriber's reconfiguration
		// unit can skip past versions the degrade path forced locally.
		fb.PlanVersion = s.mod.Plan().Version()
		data, err := wire.Marshal(fb)
		if err != nil {
			return err
		}
		s.pipe.enqueueFeedback(data)
	}
	return nil
}
