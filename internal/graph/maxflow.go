package graph

import (
	"fmt"
	"math"
)

// InfCapacity is the capacity assigned to edges that must never be cut
// (non-PSE edges, convexity-violating edges). It is large enough that no sum
// of real costs reaches it, yet sums of several InfCapacity edges do not
// overflow int64.
const InfCapacity int64 = math.MaxInt64 / 1024

type flowEdge struct {
	to   int
	cap  int64
	flow int64
	// rev is the index of the reverse edge in edges[to].
	rev int
	// id is the caller-supplied identifier (-1 for reverse edges).
	id int
}

// FlowNetwork is a capacitated directed graph for max-flow/min-cut. Node ids
// are 0..n-1.
type FlowNetwork struct {
	n     int
	edges [][]flowEdge
	level []int
	iter  []int
}

// NewFlowNetwork creates a network with n nodes.
func NewFlowNetwork(n int) *FlowNetwork {
	return &FlowNetwork{
		n:     n,
		edges: make([][]flowEdge, n),
	}
}

// AddEdge inserts a directed edge u→v with the given capacity and caller id.
// The id is reported back by MinCut for edges crossing the cut.
func (f *FlowNetwork) AddEdge(u, v int, capacity int64, id int) error {
	if u < 0 || u >= f.n || v < 0 || v >= f.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, f.n)
	}
	if capacity < 0 {
		return fmt.Errorf("graph: negative capacity %d on edge (%d,%d)", capacity, u, v)
	}
	f.edges[u] = append(f.edges[u], flowEdge{to: v, cap: capacity, rev: len(f.edges[v]), id: id})
	f.edges[v] = append(f.edges[v], flowEdge{to: u, cap: 0, rev: len(f.edges[u]) - 1, id: -1})
	return nil
}

// MaxFlow computes the maximum s→t flow with Dinic's algorithm.
func (f *FlowNetwork) MaxFlow(s, t int) int64 {
	var total int64
	for f.bfs(s, t) {
		f.iter = make([]int, f.n)
		for {
			pushed := f.dfs(s, t, math.MaxInt64)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total
}

func (f *FlowNetwork) bfs(s, t int) bool {
	f.level = make([]int, f.n)
	for i := range f.level {
		f.level[i] = -1
	}
	queue := []int{s}
	f.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for i := range f.edges[u] {
			e := &f.edges[u][i]
			if e.cap-e.flow > 0 && f.level[e.to] < 0 {
				f.level[e.to] = f.level[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return f.level[t] >= 0
}

func (f *FlowNetwork) dfs(u, t int, limit int64) int64 {
	if u == t {
		return limit
	}
	for ; f.iter[u] < len(f.edges[u]); f.iter[u]++ {
		e := &f.edges[u][f.iter[u]]
		if e.cap-e.flow <= 0 || f.level[e.to] != f.level[u]+1 {
			continue
		}
		avail := e.cap - e.flow
		if avail > limit {
			avail = limit
		}
		pushed := f.dfs(e.to, t, avail)
		if pushed > 0 {
			e.flow += pushed
			f.edges[e.to][e.rev].flow -= pushed
			return pushed
		}
	}
	return 0
}

// CutEdge describes an edge crossing the minimum cut.
type CutEdge struct {
	// From and To are the edge endpoints.
	From, To int
	// ID is the caller-supplied edge id.
	ID int
	// Capacity is the edge capacity (its contribution to the cut value).
	Capacity int64
}

// MinCut runs MaxFlow and returns the forward edges crossing the minimum
// s→t cut (source side → sink side), along with the cut value.
func (f *FlowNetwork) MinCut(s, t int) ([]CutEdge, int64) {
	value := f.MaxFlow(s, t)
	// Source side = nodes reachable in the residual graph.
	reach := make([]bool, f.n)
	reach[s] = true
	stack := []int{s}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i := range f.edges[u] {
			e := &f.edges[u][i]
			if e.cap-e.flow > 0 && !reach[e.to] {
				reach[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	var cut []CutEdge
	for u := 0; u < f.n; u++ {
		if !reach[u] {
			continue
		}
		for i := range f.edges[u] {
			e := &f.edges[u][i]
			if e.id >= 0 && !reach[e.to] {
				cut = append(cut, CutEdge{From: u, To: e.to, ID: e.id, Capacity: e.cap})
			}
		}
	}
	return cut, value
}
