package mir

import (
	"fmt"
	"sort"
)

// FieldDef declares one field of a class.
type FieldDef struct {
	// Name is the field name.
	Name string
	// Kind is the declared kind of the field's values.
	Kind Kind
}

// ClassDef declares an object class: a name plus an ordered field list.
// Classes are structural — there is no inheritance, matching the paper's
// treatment of handler-local data types.
type ClassDef struct {
	// Name is the unique class name.
	Name string
	// Fields lists the declared fields in declaration order.
	Fields []FieldDef
}

// Field returns the definition of the named field.
func (c *ClassDef) Field(name string) (FieldDef, bool) {
	for _, f := range c.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return FieldDef{}, false
}

// ClassTable is a registry of class definitions shared by the assembler,
// interpreter, wire format and size calculator. A ClassTable is immutable
// after construction; build one with NewClassTable and pass it by pointer.
type ClassTable struct {
	classes map[string]*ClassDef
}

// NewClassTable builds a registry from the given definitions.
// Duplicate class names are an error.
func NewClassTable(defs ...ClassDef) (*ClassTable, error) {
	t := &ClassTable{classes: make(map[string]*ClassDef, len(defs))}
	for i := range defs {
		d := defs[i]
		if d.Name == "" {
			return nil, fmt.Errorf("mir: class with empty name")
		}
		if _, dup := t.classes[d.Name]; dup {
			return nil, fmt.Errorf("mir: duplicate class %q", d.Name)
		}
		seen := make(map[string]bool, len(d.Fields))
		for _, f := range d.Fields {
			if seen[f.Name] {
				return nil, fmt.Errorf("mir: class %q: duplicate field %q", d.Name, f.Name)
			}
			seen[f.Name] = true
		}
		t.classes[d.Name] = &d
	}
	return t, nil
}

// MustClassTable is NewClassTable that panics on error; for use in
// tests and static example setup.
func MustClassTable(defs ...ClassDef) *ClassTable {
	t, err := NewClassTable(defs...)
	if err != nil {
		panic(err)
	}
	return t
}

// Lookup returns the definition of the named class.
func (t *ClassTable) Lookup(name string) (*ClassDef, bool) {
	if t == nil {
		return nil, false
	}
	c, ok := t.classes[name]
	return c, ok
}

// Names returns the sorted names of all registered classes.
func (t *ClassTable) Names() []string {
	if t == nil {
		return nil
	}
	out := make([]string, 0, len(t.classes))
	for n := range t.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New allocates an object of the named class with all declared fields set to
// kind-appropriate zero values.
func (t *ClassTable) New(name string) (*Object, error) {
	def, ok := t.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("mir: unknown class %q", name)
	}
	obj := NewObject(name)
	for _, f := range def.Fields {
		obj.Fields[f.Name] = ZeroValue(f.Kind)
	}
	return obj, nil
}

// ZeroValue returns the zero value for a kind. Reference kinds zero to Null,
// mirroring Java reference defaults.
func ZeroValue(k Kind) Value {
	switch k {
	case KindBool:
		return Bool(false)
	case KindInt:
		return Int(0)
	case KindFloat:
		return Float(0)
	case KindString:
		return Str("")
	default:
		return Null{}
	}
}
