package obsv

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// DebugConfig configures an opt-in debug listener. Zero fields disable
// the corresponding routes: a nil Registry 404s /metrics and
// /metrics.json, a nil Tracer 404s /debug/trace, a nil Split 404s
// /debug/split.
type DebugConfig struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0"). Required.
	Addr string
	// Registry backs /metrics (Prometheus text) and /metrics.json.
	Registry *Registry
	// Tracer backs /debug/trace (JSON lines, oldest first).
	Tracer *Tracer
	// Split produces the /debug/split snapshot: the live endpoint table
	// with UG/PSE statistics, active plans, breaker states and the last
	// min-cut explanation. Called per request; must be safe for concurrent
	// use with normal endpoint operation.
	Split func() []EndpointStatus
}

// DebugServer is a running debug listener. It serves:
//
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/metrics.json  the same samples as JSON
//	/debug/split   the live split table as JSON (see EndpointStatus)
//	/debug/trace   the retained trace ring as JSON lines
//
// The listener is plain HTTP intended for loopback or otherwise trusted
// interfaces; it exposes internal state and has no authentication.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebug binds cfg.Addr and serves the debug routes until Close.
func StartDebug(cfg DebugConfig) (*DebugServer, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	if cfg.Registry != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = cfg.Registry.WritePrometheus(w)
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = cfg.Registry.WriteJSON(w)
		})
	}
	if cfg.Split != nil {
		mux.HandleFunc("/debug/split", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(splitReply{Endpoints: cfg.Split()})
		})
	}
	if cfg.Tracer != nil {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = cfg.Tracer.WriteJSON(w)
		})
	}
	s := &DebugServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// splitReply is the /debug/split envelope.
type splitReply struct {
	Endpoints []EndpointStatus `json:"endpoints"`
}

// Addr returns the bound listen address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *DebugServer) Close() error { return s.srv.Close() }
