// Package transport is the frame-oriented connection layer beneath the
// jecho event runtime. It separates *how frames move between hosts* from
// *what the frames mean* (internal/wire) and *who sends what to whom*
// (internal/jecho): the runtime works against the Transport/Listener/Conn
// triple and never touches a socket directly.
//
// Two implementations ship with the package: TCP (length-prefix framing
// over stdlib net, the historical wire path) and Mem (an in-process
// channel-backed transport for deterministic tests and single-process
// deployments), plus Flaky, a fault-injecting wrapper around either for
// chaos testing. Custom transports — TLS, unix sockets, a simnet-shaped
// lossy link — only need to implement the three interfaces.
package transport

import "time"

// Conn is one bidirectional, frame-oriented connection. Frames are opaque
// byte payloads delivered whole and in order; the transport owns framing
// (length prefixes on a byte stream, message boundaries on a datagram or
// channel substrate).
//
// ReadFrame and WriteFrame must each be safe for use by one goroutine at a
// time per direction (one reader plus one writer concurrently is the
// contract the jecho runtime relies on); implementations serialize
// concurrent writers internally. Close unblocks pending reads and writes.
type Conn interface {
	// ReadFrame returns the next frame, blocking until one arrives. It
	// returns io.EOF after the peer closes cleanly and net.ErrClosed
	// after a local Close.
	ReadFrame() ([]byte, error)
	// WriteFrame sends one frame, blocking while the transport's buffer
	// is full (this is the pressure the jecho send pipelines translate
	// into queueing policy).
	WriteFrame(payload []byte) error
	// Close tears the connection down; it is idempotent.
	Close() error
	// SetReadDeadline bounds future ReadFrame calls: a read still blocked
	// at t fails with an error satisfying errors.Is(err,
	// os.ErrDeadlineExceeded). The zero time clears the deadline. This is
	// what lets the jecho runtime detect a silent peer instead of
	// blocking forever.
	SetReadDeadline(t time.Time) error
	// SetWriteDeadline bounds future WriteFrame calls the same way: a
	// write still blocked at t (peer buffer full, link wedged) fails
	// instead of hanging its sender goroutine.
	SetWriteDeadline(t time.Time) error
	// LocalAddr describes the local endpoint.
	LocalAddr() string
	// RemoteAddr describes the remote endpoint.
	RemoteAddr() string
}

// Listener accepts inbound connections at one address.
type Listener interface {
	// Accept blocks for the next inbound Conn; it errors after Close.
	Accept() (Conn, error)
	// Close stops accepting; it is idempotent.
	Close() error
	// Addr returns the bound address in the transport's own notation
	// (host:port for TCP, "mem:N" for Mem).
	Addr() string
}

// Transport creates connections: Listen binds the passive side, Dial the
// active side. Implementations must be safe for concurrent use.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// Default returns the transport used when a config leaves the knob nil:
// TCP, the paper-shaped deployment over real sockets.
func Default() Transport { return TCP{} }
