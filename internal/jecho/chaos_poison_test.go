package jecho_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// TestChaosPoisonPSEBreakerConverges is the acceptance scenario for the
// fault-containment layer: converge a channel on its optimal split, then
// poison that split edge so every continuation crossing it fails
// demodulation. The subscriber must quarantine each poisoned frame and NACK
// it upstream; the publisher's breaker must trip and the failure-aware
// min-cut must move the split to a healthy edge — all without the
// subscriber restarting, any goroutine dying, or a single poisoned event
// being silently dropped.
func TestChaosPoisonPSEBreakerConverges(t *testing.T) {
	// target is the PSE whose continuations get corrupted; inactive while
	// negative. The hook always records observed continuation traffic so
	// the test can poison an edge events actually cross. Corruption makes
	// the resume node out of range: an attributable restore fault in a
	// frame that still decodes (PSE id and seq intact).
	var target atomic.Int32
	target.Store(-1)
	var poisoned atomic.Uint64
	var seenMu sync.Mutex
	seen := make(map[int32]uint64)
	plan := transport.FaultPlan{
		Seed: 1,
		Corrupt: func(payload []byte) []byte {
			msg, err := wire.Unmarshal(payload)
			if err != nil {
				return nil
			}
			cont, ok := msg.(*wire.Continuation)
			if !ok {
				return nil
			}
			seenMu.Lock()
			seen[cont.PSEID]++
			seenMu.Unlock()
			if tgt := target.Load(); tgt < 0 || cont.PSEID != tgt {
				return nil
			}
			cont.ResumeNode = 1 << 20
			data, err := wire.Marshal(cont)
			if err != nil {
				return nil
			}
			poisoned.Add(1)
			return data
		},
	}
	flaky := transport.NewFlaky(transport.NewMem(), plan)
	// Long cooldowns keep the tripped PSE excluded for the whole test: no
	// mid-test half-open probe re-admitting the poisoned edge.
	pub := chaosPublisher(t, flaky, jecho.PublisherConfig{
		FeedbackEvery:     5,
		BreakerThreshold:  3,
		BreakerCooldown:   time.Hour,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
	})
	sub := chaosSubscribe(t, flaky, pub.Addr(), jecho.SubscriberConfig{
		Name:              "poison",
		ReconfigEvery:     5,
		BreakerThreshold:  3,
		BreakerCooldown:   time.Hour,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
	})

	seq := int64(0)
	publish := func(n int) {
		for i := 0; i < n; i++ {
			_, _ = pub.Publish(imaging.NewFrame(200, 200, seq))
			seq++
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 1: converge on the profiled optimum for large frames.
	publish(120)
	before, ok := theSession(pub)
	if !ok {
		t.Fatal("no session after convergence")
	}
	var tgt int32 = -1
	var most uint64
	seenMu.Lock()
	for id, n := range seen {
		if n > most {
			tgt, most = id, n
		}
	}
	seenMu.Unlock()
	if tgt < 0 {
		t.Fatalf("no continuation traffic after convergence (split %v)", before.SplitIDs)
	}

	// Phase 2: poison the busiest split edge; the plan must route around it.
	target.Store(tgt)
	deadline := time.Now().Add(10 * time.Second)
	var after jecho.SubscriptionInfo
	for {
		publish(5)
		if info, ok := theSession(pub); ok && !splitHas(info.SplitIDs, tgt) {
			after = info
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("plan still selects poisoned PSE %d (session: %+v)", tgt, pub.Subscriptions())
		}
	}

	// The degradation must be breaker-driven, on the same session, with the
	// subscriber alive throughout.
	if after.Metrics.BreakerTrips == 0 {
		t.Fatal("split moved but the breaker never tripped")
	}
	if after.ID != before.ID {
		t.Fatalf("session restarted during poisoning: %s then %s", before.ID, after.ID)
	}
	if got := sub.Metrics().Reconnects; got != 0 {
		t.Fatalf("subscriber reconnected %d times", got)
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("subscriber failed: %v", err)
	}
	select {
	case <-sub.Done():
		t.Fatal("subscriber terminated during poisoning")
	default:
	}

	// Containment: every poisoned frame must be accounted for — one NACK
	// sent and one dead letter each, nothing silently dropped. Residual
	// poisoned frames may still be in flight right after the plan flip.
	deadline = time.Now().Add(5 * time.Second)
	for {
		sm := sub.Metrics()
		if sm.DeadLettered == poisoned.Load() && sm.NacksSent == sm.DeadLettered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("poisoned=%d deadLettered=%d nacksSent=%d: quarantine incomplete",
				poisoned.Load(), sm.DeadLettered, sm.NacksSent)
		}
		time.Sleep(5 * time.Millisecond)
	}
	letters := sub.DeadLetters()
	if len(letters) == 0 {
		t.Fatal("no dead letters retained")
	}
	for _, dl := range letters {
		if dl.PSEID != tgt {
			t.Fatalf("dead letter attributes PSE %d, want %d", dl.PSEID, tgt)
		}
		if dl.Class != wire.NackRestore {
			t.Fatalf("dead letter class %v, want NackRestore", dl.Class)
		}
		if len(dl.Frame) == 0 {
			t.Fatal("dead letter retained no frame")
		}
	}

	// Phase 3: with the poisoned edge excluded, throughput returns and the
	// NACK stream stops.
	time.Sleep(50 * time.Millisecond)
	processedAt := sub.Processed()
	nacksAt := sub.Metrics().NacksSent
	publish(60)
	if got := sub.Processed(); got <= processedAt {
		t.Fatalf("no progress after degradation: processed %d then %d", processedAt, got)
	}
	if got := sub.Metrics().NacksSent; got != nacksAt {
		t.Fatalf("NACKs still flowing after degradation: %d then %d", nacksAt, got)
	}
}

// splitHas reports whether the split set contains the PSE.
func splitHas(split []int32, id int32) bool {
	for _, s := range split {
		if s == id {
			return true
		}
	}
	return false
}
