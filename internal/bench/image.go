package bench

import (
	"fmt"
	"math/rand"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/simnet"
)

// ImageConfig is the §5.1 wireless image-streaming testbed: a fast
// stationary server, a slow handheld client, and an 802.11b-class link.
type ImageConfig struct {
	// Display is the client window size (paper: 160).
	Display int
	// SmallSize / LargeSize are the two image scenarios (paper: 80, 200).
	SmallSize, LargeSize int
	// Frames per run.
	Frames int
	// Seed drives the mixed-scenario schedule.
	Seed int64
	// ServerSpeed / ClientSpeed in work units (pixels) per ms.
	ServerSpeed, ClientSpeed float64
	// LinkBytesPerMS / LinkLatencyMS describe the wireless link.
	LinkBytesPerMS, LinkLatencyMS float64
}

// DefaultImageConfig calibrates the testbed to the paper's hardware
// ratios: a PII laptop server, an iPAQ client, 802.11b with small-device
// effective throughput (~2.4 Mbit/s).
func DefaultImageConfig() ImageConfig {
	return ImageConfig{
		Display:        160,
		SmallSize:      80,
		LargeSize:      200,
		Frames:         300,
		Seed:           1,
		ServerSpeed:    20000,
		ClientSpeed:    1600,
		LinkBytesPerMS: 300,
		LinkLatencyMS:  5,
	}
}

// ImageScenario selects the workload column of Table 2.
type ImageScenario int

// The three Table 2 workloads.
const (
	ScenarioSmall ImageScenario = iota + 1
	ScenarioLarge
	ScenarioMixed
)

// String returns the column label.
func (s ImageScenario) String() string {
	switch s {
	case ScenarioSmall:
		return "Small Image"
	case ScenarioLarge:
		return "Large Image"
	case ScenarioMixed:
		return "Mixed"
	default:
		return "?"
	}
}

// imageFixture compiles the image handler and locates the plan-defining
// PSEs.
type imageFixture struct {
	c        *partition.Compiled
	classes  *mir.ClassTable
	pre      int32 // PSE before the resize (ship original)
	post     int32 // PSE after the resize (ship display-sized)
	filter   int32 // PSE on the filter path
	builtins func() *interp.Registry
}

func newImageFixture(cfg ImageConfig) (*imageFixture, error) {
	return newImageFixtureWith(cfg, costmodel.NewDataSize())
}

func newImageFixtureWith(cfg ImageConfig, model costmodel.Model) (*imageFixture, error) {
	unit := imaging.HandlerUnit(cfg.Display)
	prog, ok := unit.Program(imaging.HandlerName)
	if !ok {
		return nil, fmt.Errorf("bench: image handler missing")
	}
	classes, err := unit.ClassTable()
	if err != nil {
		return nil, err
	}
	reg, _ := imaging.Builtins()
	c, err := partition.Compile(prog, classes, reg, model)
	if err != nil {
		return nil, err
	}
	f := &imageFixture{
		c:       c,
		classes: classes,
		builtins: func() *interp.Registry {
			r, _ := imaging.Builtins()
			return r
		},
	}
	// Locate the resize call node, then classify PSEs around it.
	callIdx := -1
	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		if in.Op == mir.OpCall && in.Fn == "resizeTo" {
			callIdx = i
			break
		}
	}
	if callIdx < 0 {
		return nil, fmt.Errorf("bench: resizeTo call not found")
	}
	f.pre, f.post, f.filter = -1, -1, -1
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		pse, _ := c.PSE(id)
		e := pse.Edge
		switch {
		case len(pse.Vars) == 0:
			f.filter = id
		case e.To <= callIdx:
			if f.pre < 0 || e.To > mustPSE(c, f.pre).Edge.To {
				f.pre = id
			}
		case e.From >= callIdx:
			if f.post < 0 || e.From < mustPSE(c, f.post).Edge.From {
				f.post = id
			}
		}
	}
	if f.pre < 0 || f.post < 0 || f.filter < 0 {
		return nil, fmt.Errorf("bench: image PSE layout unexpected: %+v", c.PSEs)
	}
	return f, nil
}

func mustPSE(c *partition.Compiled, id int32) *partition.PSE {
	p, _ := c.PSE(id)
	return p
}

// imageWorkload builds the per-frame image generator for a scenario. Mixed
// alternates small/large scenarios with run lengths uniform on [1,20]
// (§5.1), pre-generated from the seed.
func imageWorkload(cfg ImageConfig, sc ImageScenario) func(i int) mir.Value {
	switch sc {
	case ScenarioSmall:
		return func(i int) mir.Value {
			return imaging.NewFrame(cfg.SmallSize, cfg.SmallSize, int64(i))
		}
	case ScenarioLarge:
		return func(i int) mir.Value {
			return imaging.NewFrame(cfg.LargeSize, cfg.LargeSize, int64(i))
		}
	default:
		rng := rand.New(rand.NewSource(cfg.Seed))
		sizes := make([]int, 0, cfg.Frames)
		small := true
		for len(sizes) < cfg.Frames {
			n := 1 + rng.Intn(20)
			size := cfg.SmallSize
			if !small {
				size = cfg.LargeSize
			}
			for j := 0; j < n && len(sizes) < cfg.Frames; j++ {
				sizes = append(sizes, size)
			}
			small = !small
		}
		return func(i int) mir.Value {
			return imaging.NewFrame(sizes[i], sizes[i], int64(i))
		}
	}
}

// ImageVariant names a Table 2 row.
type ImageVariant int

// The three Table 2 implementations.
const (
	// VariantImageLtDisplay is the manual version optimized for images
	// smaller than the display: ship the original, resize at the client.
	VariantImageLtDisplay ImageVariant = iota + 1
	// VariantImageGtDisplay is the manual version optimized for images
	// larger than the display: resize at the server, ship display-sized.
	VariantImageGtDisplay
	// VariantMethodPartitioning is the adaptive implementation.
	VariantMethodPartitioning
)

// String returns the row label.
func (v ImageVariant) String() string {
	switch v {
	case VariantImageLtDisplay:
		return "Image<Display"
	case VariantImageGtDisplay:
		return "Image>Display"
	case VariantMethodPartitioning:
		return "Method Partitioning"
	default:
		return "?"
	}
}

// ImageCell runs one (variant, scenario) cell of Table 2 and returns the
// run result (FPS is the table value).
func ImageCell(cfg ImageConfig, v ImageVariant, sc ImageScenario) (*RunResult, error) {
	f, err := newImageFixture(cfg)
	if err != nil {
		return nil, err
	}
	server := simnet.NewHost("server", cfg.ServerSpeed)
	client := simnet.NewHost("client", cfg.ClientSpeed)
	link := &simnet.Link{BytesPerMS: cfg.LinkBytesPerMS, LatencyMS: cfg.LinkLatencyMS}

	rc := RunConfig{
		Compiled:      f.c,
		SenderEnv:     interp.NewEnv(f.classes, f.builtins()),
		ReceiverEnv:   interp.NewEnv(f.classes, f.builtins()),
		Sender:        server,
		Receiver:      client,
		Link:          link,
		Frames:        cfg.Frames,
		Workload:      imageWorkload(cfg, sc),
		OverheadBytes: 64,
		Warmup:        10,
		Nominal: costmodel.Environment{
			SenderSpeed:   cfg.ServerSpeed,
			ReceiverSpeed: cfg.ClientSpeed,
			Bandwidth:     cfg.LinkBytesPerMS,
			LatencyMS:     cfg.LinkLatencyMS,
		},
	}
	switch v {
	case VariantImageLtDisplay:
		rc.FixedSplit = []int32{f.pre, f.filter}
	case VariantImageGtDisplay:
		rc.FixedSplit = []int32{f.post, f.filter}
	case VariantMethodPartitioning:
		rc.Adaptive = true
		// The data-size reconfiguration unit sits with the modulator:
		// the sender observes continuation sizes directly (§2.5).
		rc.ReconfigAtSender = true
	default:
		return nil, fmt.Errorf("bench: unknown image variant %d", v)
	}
	return Run(rc)
}

// Table2Row holds one Table 2 row: FPS per scenario.
type Table2Row struct {
	// Variant is the implementation.
	Variant ImageVariant
	// FPS is indexed by scenario (Small, Large, Mixed).
	FPS [3]float64
}

// Table2 reruns the complete Table 2.
func Table2(cfg ImageConfig) ([]Table2Row, error) {
	variants := []ImageVariant{VariantImageLtDisplay, VariantImageGtDisplay, VariantMethodPartitioning}
	scenarios := []ImageScenario{ScenarioSmall, ScenarioLarge, ScenarioMixed}
	rows := make([]Table2Row, 0, len(variants))
	for _, v := range variants {
		row := Table2Row{Variant: v}
		for si, sc := range scenarios {
			res, err := ImageCell(cfg, v, sc)
			if err != nil {
				return nil, fmt.Errorf("bench: table2 %s/%s: %w", v, sc, err)
			}
			row.FPS[si] = res.FPS
		}
		rows = append(rows, row)
	}
	return rows, nil
}
