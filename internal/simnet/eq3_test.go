package simnet

import (
	"math"
	"testing"

	"methodpart/internal/costmodel"
)

// TestPipelineMatchesEquation3 ties the simulator to the paper's analytical
// model (§4.2, eq. 3 from [40]): with per-message sender time T_mod,
// receiver time T_demod, per-message link occupancy β and set-up α, the
// total time for n pipelined messages is
//
//	T = n·max(T_mod, T_demod) + α + σβ + σ·min(T_mod, T_demod)
//
// (σ=1 message here). In the compute-bound regime the simulator must land
// on exactly this value.
func TestPipelineMatchesEquation3(t *testing.T) {
	cases := []struct {
		name             string
		modMS, demodMS   float64
		occMS, latencyMS float64
	}{
		{"receiver-bound", 2, 3, 1, 0.5},
		{"sender-bound", 4, 2.5, 1, 0.25},
		{"balanced", 3, 3, 0.5, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			const n = 200
			const speed = 1000.0 // units per ms
			sender := NewHost("s", speed)
			receiver := NewHost("r", speed)
			link := &Link{BytesPerMS: 1000, LatencyMS: c.latencyMS}
			p := NewPipeline(sender, receiver, link)
			modWork := int64(c.modMS * speed)
			demodWork := int64(c.demodMS * speed)
			bytes := int64(c.occMS * link.BytesPerMS)

			var last Timing
			for i := 0; i < n; i++ {
				last = p.Deliver(0, modWork, bytes, demodWork)
			}
			want := costmodel.TotalTime(n, c.modMS, c.demodMS, c.latencyMS, c.occMS, 1)
			if math.Abs(last.Done-want) > 1e-6 {
				t.Errorf("simulated %.6f ms, eq.(3) predicts %.6f ms", last.Done, want)
			}
		})
	}
}

// TestEquation4SigmaThreshold: messages smaller than eq. (4)'s σ bound make
// the application communication-bound; the simulator's bottleneck flips
// from compute to link exactly when β exceeds max(T_mod, T_demod).
func TestEquation4SigmaThreshold(t *testing.T) {
	const speed = 1000.0
	sender := NewHost("s", speed)
	receiver := NewHost("r", speed)
	// β = 5ms per message > max(2ms, 3ms): communication bound.
	link := &Link{BytesPerMS: 1000, LatencyMS: 0.5}
	p := NewPipeline(sender, receiver, link)
	var prev, interval float64
	for i := 0; i < 50; i++ {
		tm := p.Deliver(0, 2000, 5000, 3000)
		if i >= 40 {
			interval = tm.Done - prev
		}
		prev = tm.Done
	}
	if math.Abs(interval-5) > 1e-6 {
		t.Errorf("comm-bound interval = %.6f, want link occupancy 5", interval)
	}
	if costmodel.NotCommBound(0.5, 5, 50, 2, 3) {
		t.Error("eq.(2) disagrees: this regime is communication bound")
	}
}
