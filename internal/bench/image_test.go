package bench

import "testing"

// TestTable2Shape verifies the qualitative structure of Table 2: each
// manual version wins its own scenario, Method Partitioning tracks the
// winner in both static scenarios, and beats both manual versions under
// the mixed workload.
func TestTable2Shape(t *testing.T) {
	cfg := DefaultImageConfig()
	cfg.Frames = 200
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[ImageVariant][3]float64{}
	for _, r := range rows {
		byVariant[r.Variant] = r.FPS
		t.Logf("%-22s small=%6.2f large=%6.2f mixed=%6.2f", r.Variant, r.FPS[0], r.FPS[1], r.FPS[2])
	}
	lt := byVariant[VariantImageLtDisplay]
	gt := byVariant[VariantImageGtDisplay]
	mp := byVariant[VariantMethodPartitioning]

	// Small scenario: ship-original wins; resize-at-server loses.
	if lt[0] <= gt[0] {
		t.Errorf("small: Image<Display (%.2f) should beat Image>Display (%.2f)", lt[0], gt[0])
	}
	// Large scenario: resize-at-server wins.
	if gt[1] <= lt[1] {
		t.Errorf("large: Image>Display (%.2f) should beat Image<Display (%.2f)", gt[1], lt[1])
	}
	// MP within 15% of each scenario's winner.
	if mp[0] < 0.85*lt[0] {
		t.Errorf("small: MP %.2f too far below winner %.2f", mp[0], lt[0])
	}
	if mp[1] < 0.85*gt[1] {
		t.Errorf("large: MP %.2f too far below winner %.2f", mp[1], gt[1])
	}
	// Mixed: MP beats both manual versions.
	if mp[2] <= lt[2] || mp[2] <= gt[2] {
		t.Errorf("mixed: MP %.2f should beat both manual versions (%.2f, %.2f)", mp[2], lt[2], gt[2])
	}
}
