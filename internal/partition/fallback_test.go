package partition_test

import (
	"fmt"
	"strings"
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/testprog"
)

// explodingSource builds a handler with n sequential diamonds (2^n paths),
// defeating TargetPath enumeration for large n.
func explodingSource(n int) string {
	var b strings.Builder
	b.WriteString("func boom(event) {\n  acc = move event\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  c%d = lt acc acc\n", i)
		fmt.Fprintf(&b, "  ifnot c%d goto skip%d\n", i, i)
		fmt.Fprintf(&b, "  acc = add acc acc\n")
		fmt.Fprintf(&b, "skip%d:\n", i)
		fmt.Fprintf(&b, "  one%d = const 1\n", i)
		fmt.Fprintf(&b, "  acc = add acc one%d\n", i)
	}
	b.WriteString("  call sink acc\n  return\n}\n")
	return b.String()
}

// TestPathExplosionFallsBackToRaw: a handler with 2^20 paths still
// compiles, offers only the raw PSE, and delivers correctly.
func TestPathExplosionFallsBackToRaw(t *testing.T) {
	u, err := asm.Parse(explodingSource(20))
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := u.Program("boom")
	oracle, _ := testprog.SinkRegistry()
	c, err := partition.Compile(prog, nil, oracle, costmodel.NewDataSize())
	if err != nil {
		t.Fatalf("path explosion did not degrade gracefully: %v", err)
	}
	if c.NumPSEs() != 1 {
		t.Fatalf("NumPSEs = %d, want 1 (raw only)", c.NumPSEs())
	}
	// StopNodes are still known (needed for runtime safety).
	if len(c.Analysis.Stops) < 2 {
		t.Fatalf("stops = %v", c.Analysis.Stops)
	}

	sendReg, sendSunk := testprog.SinkRegistry()
	recvReg, recvSunk := testprog.SinkRegistry()
	mod := partition.NewModulator(c, interp.NewEnv(nil, sendReg))
	demod := partition.NewDemodulator(c, interp.NewEnv(nil, recvReg))
	out, err := mod.Process(mir.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Raw == nil {
		t.Fatalf("fallback handler did not ship raw: %+v", out)
	}
	if _, err := demod.Process(out.Raw); err != nil {
		t.Fatal(err)
	}
	if len(*sendSunk) != 0 || len(*recvSunk) != 1 {
		t.Fatalf("sinks: sender %d receiver %d", len(*sendSunk), len(*recvSunk))
	}
	// 20 diamonds, each +1 (lt yields false: acc<acc never true).
	if (*recvSunk)[0] != mir.Int(21) {
		t.Fatalf("sink = %v, want 21", (*recvSunk)[0])
	}
}

// TestModeratePathsStillAnalyzed: a handler under the path budget gets real
// PSEs, proving the fallback only engages on genuine explosion.
func TestModeratePathsStillAnalyzed(t *testing.T) {
	u, err := asm.Parse(explodingSource(6)) // 64 paths
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := u.Program("boom")
	oracle, _ := testprog.SinkRegistry()
	c, err := partition.Compile(prog, nil, oracle, costmodel.NewDataSize())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPSEs() < 2 {
		t.Fatalf("NumPSEs = %d, want real PSEs for 64 paths", c.NumPSEs())
	}
}
