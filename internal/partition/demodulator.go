package partition

import (
	"sync/atomic"

	"methodpart/internal/analysis"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/wire"
)

// ReceiverProbe receives the demodulator-side profiling events: the work
// the receiver spent finishing each message, keyed by the PSE the sender
// split at.
type ReceiverProbe interface {
	// Done is called after each completed message.
	Done(splitPSE int32, modWork, demodWork int64)
}

// NopReceiverProbe records nothing.
type NopReceiverProbe struct{}

// Done implements ReceiverProbe.
func (NopReceiverProbe) Done(int32, int64, int64) {}

// Demodulator is the receiver-side half of a partitioned handler: it
// restores remote continuations and completes their processing (§2.4).
// Like the modulator, it carries profiling instrumentation along each PSE
// (§2.3 inserts profiling code on both sides): PSEs downstream of the
// current split are crossed here, and their would-be continuation sizes and
// cumulative work are observed at the receiver.
type Demodulator struct {
	c   *Compiled
	env *interp.Env
	// Probe receives per-message completion events; defaults to
	// NopReceiverProbe.
	Probe ReceiverProbe
	// CrossProbe receives per-PSE crossing events for PSEs whose
	// profiling flag is set in the profile plan (same semantics as the
	// modulator side). Defaults to NopProbe.
	CrossProbe SenderProbe

	profilePlan  atomic.Pointer[Plan]
	compiledRuns atomic.Int64
}

// CompiledRuns returns how many messages ran on the compiled engine.
func (d *Demodulator) CompiledRuns() int64 { return d.compiledRuns.Load() }

// NewDemodulator builds a demodulator executing in the receiver-side
// environment (which must register the handler's native builtins).
func NewDemodulator(c *Compiled, env *interp.Env) *Demodulator {
	return &Demodulator{c: c, env: env, Probe: NopReceiverProbe{}, CrossProbe: NopProbe{}}
}

// SetProfilePlan installs the plan whose profiling flags gate the
// receiver-side PSE instrumentation. The reconfiguration unit typically
// lives with the receiver, so this needs no wire hop.
func (d *Demodulator) SetProfilePlan(p *Plan) { d.profilePlan.Store(p) }

// ProfilePlan returns the installed profile plan, or nil before the first
// SetProfilePlan — for status snapshots; the demodulator itself only reads
// it inside profileHook.
func (d *Demodulator) ProfilePlan() *Plan { return d.profilePlan.Load() }

// profileHook returns an edge hook observing profiled PSE crossings, or nil
// when no profiling is active. baseWork is the sender-side work already
// spent on the message (so crossing stats are message-cumulative).
func (d *Demodulator) profileHook(machine execMachine, baseWork int64) interp.EdgeHook {
	plan := d.profilePlan.Load()
	if plan == nil || len(plan.ProfileIDs()) == 0 {
		return nil
	}
	return func(e interp.Edge) bool {
		ae := analysis.Edge{From: e.From, To: e.To}
		if id, ok := d.c.PSEByEdge(ae); ok && plan.Profile(id) {
			pse, _ := d.c.PSE(id)
			snap := machine.Snapshot(pse.Vars)
			d.CrossProbe.Cross(id, baseWork+machine.Work(), snapshotSize(pse.Vars, snap))
		}
		return false
	}
}

// Result is the outcome of demodulating one message.
type Result struct {
	// Return is the handler's return value.
	Return mir.Value
	// DemodWork is the receiver-side work spent (work units).
	DemodWork int64
	// SplitPSE is the PSE the message was split at (RawPSEID for raw).
	SplitPSE int32
}

// ProcessRaw runs the complete handler on an unmodulated event. Interpreter
// panics are recovered into classified Fault errors; see FaultClassOf.
func (d *Demodulator) ProcessRaw(msg *wire.Raw) (res *Result, err error) {
	defer recoverFault(&err)
	if msg.Handler != d.c.Prog.Name {
		return nil, faultf(wire.NackDecode, "partition: raw message for %q handled by %q", msg.Handler, d.c.Prog.Name)
	}
	machine, err := d.c.newMachine(d.env, []mir.Value{msg.Event})
	if err != nil {
		return nil, classify(wire.NackRestore, err)
	}
	defer machine.Release()
	if d.c.Engine == EngineCompiled {
		d.compiledRuns.Add(1)
	}
	machine.SetHook(d.profileHook(machine, 0))
	out, err := machine.Run()
	if err != nil {
		return nil, classify(wire.NackRuntime, err)
	}
	if !out.Done {
		return nil, faultf(wire.NackRuntime, "partition: raw run of %s stopped unexpectedly", msg.Handler)
	}
	d.Probe.Done(RawPSEID, 0, out.Work)
	return &Result{Return: out.Return, DemodWork: out.Work, SplitPSE: RawPSEID}, nil
}

// ProcessContinuation restores a remote continuation — re-binding the live
// variables and jumping to the resume node — and runs it to completion.
// Interpreter panics are recovered into classified Fault errors.
func (d *Demodulator) ProcessContinuation(cont *wire.Continuation) (res *Result, err error) {
	defer recoverFault(&err)
	if cont.Handler != d.c.Prog.Name {
		return nil, faultf(wire.NackDecode, "partition: continuation for %q handled by %q", cont.Handler, d.c.Prog.Name)
	}
	resume := int(cont.ResumeNode)
	if resume < 0 || resume >= len(d.c.Prog.Instrs) {
		return nil, faultf(wire.NackRestore, "partition: continuation resume node %d out of range", resume)
	}
	machine, err := d.c.restoreMachine(d.env, resume, cont.Vars)
	if err != nil {
		return nil, classify(wire.NackRestore, err)
	}
	defer machine.Release()
	if d.c.Engine == EngineCompiled {
		d.compiledRuns.Add(1)
	}
	machine.SetHook(d.profileHook(machine, cont.ModWork))
	out, err := machine.Run()
	if err != nil {
		return nil, classify(wire.NackRuntime, err)
	}
	if !out.Done {
		return nil, faultf(wire.NackRuntime, "partition: continuation of %s stopped unexpectedly", cont.Handler)
	}
	d.Probe.Done(cont.PSEID, cont.ModWork, out.Work)
	return &Result{Return: out.Return, DemodWork: out.Work, SplitPSE: cont.PSEID}, nil
}

// Process dispatches a decoded wire message to the appropriate half.
func (d *Demodulator) Process(msg any) (*Result, error) {
	switch m := msg.(type) {
	case *wire.Raw:
		return d.ProcessRaw(m)
	case *wire.Continuation:
		return d.ProcessContinuation(m)
	default:
		return nil, faultf(wire.NackDecode, "partition: demodulator cannot process %T", msg)
	}
}
