package bench

import (
	"fmt"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/perturb"
	"methodpart/internal/sensor"
	"methodpart/internal/simnet"
)

// SensorConfig is the §5.2 compute-bound testbed: sensor producers pushing
// sample frames through a long processing chain to consumers, over a fast
// LAN, with synthetic perturbation load on either side.
type SensorConfig struct {
	// Stages is the processing-chain length.
	Stages int
	// Samples is the per-frame sample count.
	Samples int
	// Frames per run.
	Frames int
	// Seeds are averaged (the paper reports averages of 5 measurements).
	Seeds []int64
	// ProducerSpeed / ConsumerSpeed in work units per ms.
	ProducerSpeed, ConsumerSpeed float64
	// GenWork is the per-frame capture cost at the producer.
	GenWork int64
	// LinkBytesPerMS / LinkLatencyMS describe the cluster LAN.
	LinkBytesPerMS, LinkLatencyMS float64
	// Perturbation parameters (applied per side via LIndex arguments).
	PerturbThreads int
	PLenMS         float64
	AProb          float64
	HorizonMS      float64
}

// Host speed calibration: an Intel cluster node is "PC"; the SUN Ultra-30
// is ~2.4x slower, preserving the paper's Table 3 speed ratio.
const (
	// PCSpeed is the Intel/Linux cluster node speed (work units per ms).
	PCSpeed = 900
	// SunSpeed is the SUN Ultra-30 speed.
	SunSpeed = 375
)

// DefaultSensorConfig calibrates the compute-bound testbed: ~80 ms of
// processing per frame on an unloaded PC node, Fast-Ethernet-class LAN.
func DefaultSensorConfig() SensorConfig {
	return SensorConfig{
		Stages:         sensor.DefaultStages,
		Samples:        4000,
		Frames:         150,
		Seeds:          []int64{11, 22, 33, 44, 55},
		ProducerSpeed:  PCSpeed,
		ConsumerSpeed:  PCSpeed,
		GenWork:        2000,
		LinkBytesPerMS: 12500,
		LinkLatencyMS:  0.5,
		PerturbThreads: 2,
		PLenMS:         1000,
		AProb:          0.5,
		HorizonMS:      120000,
	}
}

// SensorVariant names a Table 3/4 row.
type SensorVariant int

// The four §5.2 implementations.
const (
	// VariantConsumer performs all processing at the consumer.
	VariantConsumer SensorVariant = iota + 1
	// VariantProducer performs all processing at the producer.
	VariantProducer
	// VariantDivided splits the chain into two halves by stage count
	// ("two roughly equal parts").
	VariantDivided
	// VariantMP is the adaptive Method Partitioning implementation.
	VariantMP
)

// String returns the row label.
func (v SensorVariant) String() string {
	switch v {
	case VariantConsumer:
		return "Consumer Version"
	case VariantProducer:
		return "Producer Version"
	case VariantDivided:
		return "Divided Version"
	case VariantMP:
		return "Method Partitioning"
	default:
		return "?"
	}
}

// SensorVariants lists the four rows in paper order.
func SensorVariants() []SensorVariant {
	return []SensorVariant{VariantConsumer, VariantProducer, VariantDivided, VariantMP}
}

// sensorFixture compiles the sensor handler (under the exec-time model) and
// indexes PSEs by stage boundary.
type sensorFixture struct {
	c       *partition.Compiled
	classes *mir.ClassTable
	stages  int
	// stagePSE[k] is the PSE cutting after stage k (0 = before stage 1).
	stagePSE map[int]int32
	filter   int32
}

func newSensorFixture(cfg SensorConfig) (*sensorFixture, error) {
	unit := sensor.HandlerUnit(cfg.Stages)
	prog, ok := unit.Program(sensor.HandlerName)
	if !ok {
		return nil, fmt.Errorf("bench: sensor handler missing")
	}
	classes, err := unit.ClassTable()
	if err != nil {
		return nil, err
	}
	reg, _ := sensor.Builtins(cfg.Stages)
	c, err := partition.Compile(prog, classes, reg, costmodel.NewExecTime())
	if err != nil {
		return nil, err
	}
	f := &sensorFixture{c: c, classes: classes, stages: cfg.Stages, stagePSE: make(map[int]int32), filter: -1}
	// Stage k's call instruction sits at node 3+k (0: instanceof,
	// 1: branch, 2: cast, 3: getfield, 4..: stage calls).
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		pse, _ := c.PSE(id)
		e := pse.Edge
		if len(pse.Vars) == 0 {
			f.filter = id
			continue
		}
		// Edge(3+k, 4+k) cuts after stage k.
		if e.To == e.From+1 && e.From >= 3 && e.From <= 3+cfg.Stages {
			f.stagePSE[e.From-3] = id
		}
	}
	if f.filter < 0 {
		return nil, fmt.Errorf("bench: sensor filter PSE missing: %+v", c.PSEs)
	}
	for _, k := range []int{0, cfg.Stages / 2, cfg.Stages} {
		if _, ok := f.stagePSE[k]; !ok {
			return nil, fmt.Errorf("bench: stage-%d PSE missing (have %v)", k, f.stagePSE)
		}
	}
	return f, nil
}

// SensorCell runs one variant with the given per-side load indices and
// returns the per-seed average of the steady-state message processing time
// (ms).
func SensorCell(cfg SensorConfig, v SensorVariant, prodLIndex, consLIndex float64) (float64, error) {
	f, err := newSensorFixture(cfg)
	if err != nil {
		return 0, err
	}
	var total float64
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	for _, seed := range seeds {
		res, err := sensorRun(cfg, f, v, prodLIndex, consLIndex, seed)
		if err != nil {
			return 0, err
		}
		total += res.MeanIntervalMS
	}
	return total / float64(len(seeds)), nil
}

func sensorRun(cfg SensorConfig, f *sensorFixture, v SensorVariant, prodL, consL float64, seed int64) (*RunResult, error) {
	producer := simnet.NewHost("producer", cfg.ProducerSpeed)
	consumer := simnet.NewHost("consumer", cfg.ConsumerSpeed)
	if prodL > 0 {
		producer.Load = perturb.MustNew(perturb.Config{
			Seed: seed, Threads: cfg.PerturbThreads, PLenMS: cfg.PLenMS,
			AProb: cfg.AProb, LIndex: prodL, HorizonMS: cfg.HorizonMS,
		})
	}
	if consL > 0 {
		consumer.Load = perturb.MustNew(perturb.Config{
			Seed: seed + 7919, Threads: cfg.PerturbThreads, PLenMS: cfg.PLenMS,
			AProb: cfg.AProb, LIndex: consL, HorizonMS: cfg.HorizonMS,
		})
	}
	link := &simnet.Link{BytesPerMS: cfg.LinkBytesPerMS, LatencyMS: cfg.LinkLatencyMS}

	mkEnv := func() *interp.Env {
		reg, _ := sensor.Builtins(cfg.Stages)
		return interp.NewEnv(f.classes, reg)
	}
	rc := RunConfig{
		Compiled:      f.c,
		SenderEnv:     mkEnv(),
		ReceiverEnv:   mkEnv(),
		Sender:        producer,
		Receiver:      consumer,
		Link:          link,
		Frames:        cfg.Frames,
		Workload:      func(i int) mir.Value { return sensor.NewFrame(int64(i), cfg.Samples) },
		GenWork:       cfg.GenWork,
		OverheadBytes: 64,
		Warmup:        cfg.Frames / 10,
		Nominal: costmodel.Environment{
			SenderSpeed:   cfg.ProducerSpeed,
			ReceiverSpeed: cfg.ConsumerSpeed,
			Bandwidth:     cfg.LinkBytesPerMS,
			LatencyMS:     cfg.LinkLatencyMS,
		},
	}
	switch v {
	case VariantConsumer:
		rc.FixedSplit = []int32{partition.RawPSEID}
	case VariantProducer:
		rc.FixedSplit = []int32{f.stagePSE[f.stages], f.filter}
	case VariantDivided:
		rc.FixedSplit = []int32{f.stagePSE[f.stages/2], f.filter}
	case VariantMP:
		rc.Adaptive = true
	default:
		return nil, fmt.Errorf("bench: unknown sensor variant %d", v)
	}
	return Run(rc)
}

// Table3Row is one row of Table 3: average message processing time (ms) for
// PC→Sun and Sun→PC.
type Table3Row struct {
	// Variant is the implementation.
	Variant SensorVariant
	// PCToSun and SunToPC are the two columns.
	PCToSun, SunToPC float64
}

// Table3 reruns Table 3 (heterogeneous platforms, no perturbation).
func Table3(cfg SensorConfig) ([]Table3Row, error) {
	cfg.Seeds = []int64{1} // deterministic without perturbation
	rows := make([]Table3Row, 0, 4)
	for _, v := range SensorVariants() {
		row := Table3Row{Variant: v}
		pcSun := cfg
		pcSun.ProducerSpeed, pcSun.ConsumerSpeed = PCSpeed, SunSpeed
		r1, err := SensorCell(pcSun, v, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("bench: table3 %s pc->sun: %w", v, err)
		}
		row.PCToSun = r1
		sunPC := cfg
		sunPC.ProducerSpeed, sunPC.ConsumerSpeed = SunSpeed, PCSpeed
		r2, err := SensorCell(sunPC, v, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("bench: table3 %s sun->pc: %w", v, err)
		}
		row.SunToPC = r2
		rows = append(rows, row)
	}
	return rows, nil
}

// Table4Load is one load configuration (row) of Table 4.
type Table4Load struct {
	// Producer and Consumer are the per-side load indices.
	Producer, Consumer float64
}

// Table4Loads returns the paper's six rows.
func Table4Loads() []Table4Load {
	return []Table4Load{
		{0, 0}, {0, 0.6}, {0, 1.0}, {0.6, 0.6}, {0.6, 0}, {1.0, 0},
	}
}

// Table4Row is one row of Table 4: times per variant for one load pair.
type Table4Row struct {
	// Load is the (producer, consumer) load-index pair.
	Load Table4Load
	// MS holds the per-variant times in SensorVariants order.
	MS [4]float64
}

// Table4 reruns Table 4 on the homogeneous Intel cluster.
func Table4(cfg SensorConfig) ([]Table4Row, error) {
	rows := make([]Table4Row, 0, 6)
	for _, load := range Table4Loads() {
		row := Table4Row{Load: load}
		for vi, v := range SensorVariants() {
			r, err := SensorCell(cfg, v, load.Producer, load.Consumer)
			if err != nil {
				return nil, fmt.Errorf("bench: table4 %s %v: %w", v, load, err)
			}
			row.MS[vi] = r
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure7Point is one x-position of Figure 7: consumer-side AProb vs time
// per variant.
type Figure7Point struct {
	// AProb is the consumer-side active-period probability.
	AProb float64
	// MS holds per-variant times in SensorVariants order.
	MS [4]float64
}

// Figure7 sweeps consumer-side AProb with LIndex 0.8 and a load-free
// producer (PLen 1000 ms).
func Figure7(cfg SensorConfig) ([]Figure7Point, error) {
	var points []Figure7Point
	for _, ap := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		c := cfg
		c.AProb = ap
		pt := Figure7Point{AProb: ap}
		for vi, v := range SensorVariants() {
			r, err := SensorCell(c, v, 0, 0.8)
			if err != nil {
				return nil, fmt.Errorf("bench: figure7 %s AProb=%g: %w", v, ap, err)
			}
			pt.MS[vi] = r
		}
		points = append(points, pt)
	}
	return points, nil
}

// Figure8Point is one x-position of Figure 8: consumer-side expected period
// length vs the Method Partitioning version's time.
type Figure8Point struct {
	// PLenMS is the consumer-side expected period length.
	PLenMS float64
	// MS is the MP version's steady-state time.
	MS float64
}

// Figure8 sweeps consumer-side PLen for the MP version (LIndex 0.8,
// AProb 0.5), demonstrating stability against perturbation patterns.
func Figure8(cfg SensorConfig) ([]Figure8Point, error) {
	var points []Figure8Point
	for _, plen := range []float64{250, 500, 1000, 2000, 4000} {
		c := cfg
		c.PLenMS = plen
		r, err := SensorCell(c, VariantMP, 0, 0.8)
		if err != nil {
			return nil, fmt.Errorf("bench: figure8 PLen=%g: %w", plen, err)
		}
		points = append(points, Figure8Point{PLenMS: plen, MS: r})
	}
	return points, nil
}
