package bench

import "testing"

// TestFigure7Shape: consumer-dependent variants climb with AProb, the
// producer version stays flat, MP stays near the bottom with a shallow
// slope.
func TestFigure7Shape(t *testing.T) {
	cfg := fastSensorConfig()
	cfg.Frames = 60
	cfg.Seeds = []int64{11}
	pts, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[SensorVariant]int{}
	for i, v := range SensorVariants() {
		idx[v] = i
	}
	first, last := pts[0], pts[len(pts)-1]
	for _, p := range pts {
		t.Logf("AProb=%.1f consumer=%7.2f producer=%7.2f divided=%7.2f mp=%7.2f",
			p.AProb, p.MS[0], p.MS[1], p.MS[2], p.MS[3])
	}
	// Consumer version degrades substantially.
	if last.MS[idx[VariantConsumer]] < 1.5*first.MS[idx[VariantConsumer]] {
		t.Errorf("consumer version did not degrade: %.2f -> %.2f",
			first.MS[idx[VariantConsumer]], last.MS[idx[VariantConsumer]])
	}
	// Producer version is flat (no consumer dependence).
	if rel := last.MS[idx[VariantProducer]] / first.MS[idx[VariantProducer]]; rel > 1.1 || rel < 0.9 {
		t.Errorf("producer version not flat: %.2f -> %.2f",
			first.MS[idx[VariantProducer]], last.MS[idx[VariantProducer]])
	}
	// MP stays well below the consumer version at full load and rises
	// far more slowly.
	if last.MS[idx[VariantMP]] > 0.5*last.MS[idx[VariantConsumer]] {
		t.Errorf("MP at AProb=1 (%.2f) not well below consumer version (%.2f)",
			last.MS[idx[VariantMP]], last.MS[idx[VariantConsumer]])
	}
	for _, p := range pts {
		for vi := 0; vi < 3; vi++ {
			if p.MS[idx[VariantMP]] > 1.1*p.MS[vi] {
				t.Errorf("AProb=%.1f: MP %.2f worse than %s %.2f",
					p.AProb, p.MS[idx[VariantMP]], SensorVariants()[vi], p.MS[vi])
			}
		}
	}
}

// TestFigure8Stability: MP's time varies only mildly across perturbation
// period lengths (the paper: "relatively stable against changes in
// perturbation patterns").
func TestFigure8Stability(t *testing.T) {
	cfg := fastSensorConfig()
	cfg.Frames = 60
	cfg.Seeds = []int64{11, 22}
	pts, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	min, max := pts[0].MS, pts[0].MS
	for _, p := range pts {
		t.Logf("PLen=%5.0f mp=%7.2f", p.PLenMS, p.MS)
		if p.MS < min {
			min = p.MS
		}
		if p.MS > max {
			max = p.MS
		}
	}
	if max > 1.35*min {
		t.Errorf("MP unstable across PLen: min %.2f max %.2f", min, max)
	}
}

// TestClaimsComputation: the derived headline numbers are internally
// consistent (dynamic wins positive, MP within a small static gap).
func TestClaimsComputation(t *testing.T) {
	imgCfg := DefaultImageConfig()
	imgCfg.Frames = 150
	senCfg := fastSensorConfig()
	cl, err := ComputeClaims(imgCfg, senCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("claims: static gap %.1f%%, best win %.0f%%, dynamic %0.f%%..%.0f%%",
		cl.StaticGapPct, cl.BestOverNonOptimalPct, cl.DynamicMinPct, cl.DynamicMaxPct)
	if cl.StaticGapPct > 10 {
		t.Errorf("MP misses the best manual version by %.1f%%", cl.StaticGapPct)
	}
	if cl.BestOverNonOptimalPct < 50 {
		t.Errorf("best static win only %.0f%%", cl.BestOverNonOptimalPct)
	}
	if cl.DynamicMinPct < 0 {
		t.Errorf("MP loses to a non-adaptive version under dynamics by %.0f%%", -cl.DynamicMinPct)
	}
	if cl.DynamicMaxPct < 80 {
		t.Errorf("max dynamic win only %.0f%%", cl.DynamicMaxPct)
	}
}

// TestTable1Consistency: the three size mechanisms order as the paper
// reports (serialization slowest, self-describing fastest) and the
// self-described sizes agree with the reflective walker.
func TestTable1Consistency(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-20s ser=%6.0fns calc=%6.0fns self=%6.1fns", r.Name, r.SerializationNS, r.SizeCalcNS, r.SelfSizeNS)
		if r.SerializationNS <= r.SizeCalcNS {
			t.Errorf("%s: serialization (%.0fns) not slower than size calc (%.0fns)",
				r.Name, r.SerializationNS, r.SizeCalcNS)
		}
		if r.SelfSizeNS >= 0 {
			if r.SelfSizeNS >= r.SizeCalcNS {
				t.Errorf("%s: self-size (%.1fns) not faster than size calc (%.0fns)",
					r.Name, r.SelfSizeNS, r.SizeCalcNS)
			}
			if r.SelfSize != r.ReflectSize {
				t.Errorf("%s: self size %d != reflect size %d", r.Name, r.SelfSize, r.ReflectSize)
			}
		}
	}
}
