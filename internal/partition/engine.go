package partition

import (
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
)

// Engine selects the execution engine a compiled handler's endpoints run
// on. The zero value is the closure-compiled engine.
type Engine uint8

const (
	// EngineCompiled runs events on the closure-compiled machine with
	// dense slot registers (interp.Code). The partition hooks still
	// observe every edge they act on: compilation watches the PSE edges
	// and the edges into non-exit StopNodes.
	EngineCompiled Engine = iota
	// EngineStepping runs events on the per-instruction stepping machine
	// — the engine of record the compiled engine is differentially tested
	// against, and a fallback knob should a miscompilation slip through.
	EngineStepping
)

// String names the engine for diagnostics.
func (e Engine) String() string {
	switch e {
	case EngineCompiled:
		return "compiled"
	case EngineStepping:
		return "stepping"
	default:
		return "unknown"
	}
}

// execMachine is the run contract shared by the stepping and compiled
// machines: the modulator, demodulator and relay drive either engine
// through it.
type execMachine interface {
	SetHook(interp.EdgeHook)
	Run() (interp.Outcome, error)
	Snapshot(names []string) map[string]mir.Value
	Work() int64
	Release()
}

// newMachine prepares a machine for one invocation on the active engine.
func (c *Compiled) newMachine(env *interp.Env, args []mir.Value) (execMachine, error) {
	if c.Engine == EngineStepping {
		return interp.NewMachine(env, c.Prog, args)
	}
	return c.Code.NewMachine(env, args)
}

// restoreMachine prepares a machine resuming at node on the active engine.
func (c *Compiled) restoreMachine(env *interp.Env, node int, vars map[string]mir.Value) (execMachine, error) {
	if c.Engine == EngineStepping {
		return interp.Restore(env, c.Prog, node, vars)
	}
	return c.Code.Restore(env, node, vars)
}
