package partition

import "fmt"

// Plan is one partitioning plan: per-PSE split and profile flags plus a
// version. Plans are immutable; the modulator swaps them atomically, so
// adaptation costs one pointer store (§2.6, "light-weight adaptation").
type Plan struct {
	version uint64
	split   []bool
	profile []bool
	// raw caches split[RawPSEID].
	raw bool
	// splitIDs caches the flagged ids for wire encoding.
	splitIDs   []int32
	profileIDs []int32
	// fingerprint caches the FNV-1a hash over (version, split set,
	// profile set); see Fingerprint.
	fingerprint uint64
}

// FNV-1a 64-bit parameters, inlined so the fingerprint needs no
// hash/fnv allocation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix64 folds one 64-bit word into an FNV-1a state byte by byte.
func fnvMix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// NewPlan builds a plan over numPSEs PSEs. Ids out of range are rejected.
func NewPlan(numPSEs int, version uint64, splitIDs, profileIDs []int32) (*Plan, error) {
	p := &Plan{
		version: version,
		split:   make([]bool, numPSEs),
		profile: make([]bool, numPSEs),
	}
	for _, id := range splitIDs {
		if id < 0 || int(id) >= numPSEs {
			return nil, fmt.Errorf("partition: split id %d out of range [0,%d)", id, numPSEs)
		}
		if !p.split[id] {
			p.split[id] = true
			p.splitIDs = append(p.splitIDs, id)
		}
	}
	for _, id := range profileIDs {
		if id < 0 || int(id) >= numPSEs {
			return nil, fmt.Errorf("partition: profile id %d out of range [0,%d)", id, numPSEs)
		}
		if !p.profile[id] {
			p.profile[id] = true
			p.profileIDs = append(p.profileIDs, id)
		}
	}
	p.raw = numPSEs > 0 && p.split[RawPSEID]
	p.splitIDs = SortedIDs(p.splitIDs)
	p.profileIDs = SortedIDs(p.profileIDs)
	h := fnvMix64(fnvOffset64, p.version)
	for _, id := range p.splitIDs {
		h = fnvMix64(h, uint64(id))
	}
	// A separator word keeps {split=[1], profile=[]} distinct from
	// {split=[], profile=[1]}.
	h = fnvMix64(h, ^uint64(0))
	for _, id := range p.profileIDs {
		h = fnvMix64(h, uint64(id))
	}
	p.fingerprint = h
	return p, nil
}

// Fingerprint is a stable 64-bit identity of the plan's observable
// behaviour: version plus the sorted split and profile sets. Two plans of
// the same handler with equal fingerprints modulate every event
// identically, which is what lets the publisher pool subscriptions into
// plan-equivalence classes.
func (p *Plan) Fingerprint() uint64 { return p.fingerprint }

// Version returns the plan version.
func (p *Plan) Version() uint64 { return p.version }

// Raw reports whether the plan cuts at the synthetic entry PSE (ship the
// unmodulated event).
func (p *Plan) Raw() bool { return p.raw }

// Split reports whether the split flag of PSE id is set.
func (p *Plan) Split(id int32) bool {
	return id >= 0 && int(id) < len(p.split) && p.split[id]
}

// Profile reports whether the profiling flag of PSE id is set.
func (p *Plan) Profile(id int32) bool {
	return id >= 0 && int(id) < len(p.profile) && p.profile[id]
}

// SplitIDs returns the flagged split ids in ascending order. The slice must
// not be modified.
func (p *Plan) SplitIDs() []int32 { return p.splitIDs }

// ProfileIDs returns the flagged profile ids in ascending order. The slice
// must not be modified.
func (p *Plan) ProfileIDs() []int32 { return p.profileIDs }

// String renders the plan.
func (p *Plan) String() string {
	return fmt.Sprintf("plan{v%d split=%v profile=%v}", p.version, p.splitIDs, p.profileIDs)
}

// AllProfileIDs returns every PSE id of a compiled handler, for plans that
// profile everything.
func AllProfileIDs(c *Compiled) []int32 {
	out := make([]int32, c.NumPSEs())
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
