package jecho

import (
	"sync"
	"time"

	"methodpart/internal/partition"
)

// Circuit-breaker defaults, following the repo's knob convention: zero
// selects the default, negative disables the breaker.
const (
	// DefaultBreakerThreshold is how many failures within the window trip
	// a PSE's breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerWindow is the sliding window failures are counted in.
	DefaultBreakerWindow = 10 * time.Second
	// DefaultBreakerCooldown is how long a tripped PSE stays excluded
	// before a half-open probe re-admits it.
	DefaultBreakerCooldown = 30 * time.Second
)

// breakerConfig is the resolved per-endpoint breaker policy.
type breakerConfig struct {
	threshold int
	window    time.Duration
	cooldown  time.Duration
}

// resolveBreaker applies the 0=default / negative=disabled convention. A
// disabled breaker is represented by a nil *pseBreaker (all methods are
// nil-safe no-ops).
func resolveBreaker(threshold int, window, cooldown time.Duration) *pseBreaker {
	if threshold < 0 || window < 0 || cooldown < 0 {
		return nil
	}
	cfg := breakerConfig{threshold: threshold, window: window, cooldown: cooldown}
	if cfg.threshold == 0 {
		cfg.threshold = DefaultBreakerThreshold
	}
	if cfg.window == 0 {
		cfg.window = DefaultBreakerWindow
	}
	if cfg.cooldown == 0 {
		cfg.cooldown = DefaultBreakerCooldown
	}
	return newPSEBreaker(cfg)
}

// pseState is one PSE's breaker state. Zero value = closed (healthy).
type pseState struct {
	// stamps are the failure times inside the current window (closed and
	// half-open states).
	stamps []time.Time
	// openUntil is when the open state ends; zero while closed.
	openUntil time.Time
	// probing marks the half-open state: the PSE has been re-admitted for
	// one trial. A failure while probing re-opens immediately; the probe
	// passes either explicitly (Succeed) or implicitly once a full failure
	// window elapses with no failure — an endpoint with no positive success
	// signal (the publisher) must not stay half-open forever, where any
	// single later failure would re-trip at an effective threshold of 1.
	probing bool
	// probeStart is when the half-open state began; meaningful only while
	// probing.
	probeStart time.Time
}

// pseBreaker tracks per-PSE failure rates and drives the
// closed → open → half-open state machine that gates split-set eligibility.
// One breaker instance serves one endpoint (a publisher subscription or a
// subscriber); both sides use the same type. All methods are safe for
// concurrent use and nil-safe, so a disabled breaker is just nil.
type pseBreaker struct {
	cfg breakerConfig
	// now is the clock, injectable for tests.
	now func() time.Time
	// onTransition, when set, observes every state change with the PSE id
	// and the new state name ("open", "half-open", "closed"). It is called
	// while the breaker mutex is held, so it must be fast and must not call
	// back into the breaker. Set before the breaker is shared between
	// goroutines.
	onTransition func(id int32, state string)

	mu     sync.Mutex
	states map[int32]*pseState
}

func newPSEBreaker(cfg breakerConfig) *pseBreaker {
	return &pseBreaker{cfg: cfg, now: time.Now, states: make(map[int32]*pseState)}
}

// notify reports a state change to the transition observer. Caller holds
// mu; the nil check keeps unobserved breakers free.
func (b *pseBreaker) notify(id int32, state string) {
	if b.onTransition != nil {
		b.onTransition(id, state)
	}
}

// observeTransitions installs the transition observer. Nil-safe (a
// disabled breaker has nothing to observe).
func (b *pseBreaker) observeTransitions(fn func(id int32, state string)) {
	if b != nil {
		b.onTransition = fn
	}
}

// state returns (creating if needed) the PSE's state. Caller holds mu.
func (b *pseBreaker) state(id int32) *pseState {
	st, ok := b.states[id]
	if !ok {
		st = &pseState{}
		b.states[id] = st
	}
	return st
}

// Fail records one failure attributed to the PSE and reports whether this
// failure tripped the breaker (closed → open, or half-open → open).
func (b *pseBreaker) Fail(id int32) bool {
	return b.FailN(id, 1)
}

// FailN records n failures at once (e.g. a failure-count delta carried by a
// profiling feedback frame) and reports whether they tripped the breaker.
func (b *pseBreaker) FailN(id int32, n uint64) bool {
	if b == nil || n == 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	st := b.state(id)
	if st.probing {
		if now.Sub(st.probeStart) < b.cfg.window {
			// Half-open: the probe failed, re-open for a fresh cooldown.
			st.probing = false
			st.stamps = st.stamps[:0]
			st.openUntil = now.Add(b.cfg.cooldown)
			b.notify(id, "open")
			return true
		}
		// The probe survived a full failure window before this failure:
		// it passed implicitly. Close the breaker and count this failure
		// against a fresh closed-state window below.
		st.probing = false
		st.openUntil = time.Time{}
		st.stamps = st.stamps[:0]
		b.notify(id, "closed")
	}
	if !st.openUntil.IsZero() && now.Before(st.openUntil) {
		// Already open; failures while excluded don't re-trip.
		return false
	}
	// n can be an unvalidated delta from a wire feedback frame; beyond the
	// trip threshold extra stamps carry no information, so clamp before the
	// append loop — a corrupt counter must not force an unbounded
	// allocation under the breaker mutex.
	if n > uint64(b.cfg.threshold) {
		n = uint64(b.cfg.threshold)
	}
	// Closed: slide the window, append, check the threshold.
	cutoff := now.Add(-b.cfg.window)
	keep := st.stamps[:0]
	for _, t := range st.stamps {
		if t.After(cutoff) {
			keep = append(keep, t)
		}
	}
	st.stamps = keep
	for i := uint64(0); i < n; i++ {
		st.stamps = append(st.stamps, now)
	}
	if len(st.stamps) >= b.cfg.threshold {
		st.stamps = st.stamps[:0]
		st.openUntil = now.Add(b.cfg.cooldown)
		st.probing = false
		b.notify(id, "open")
		return true
	}
	return false
}

// Succeed records a successful crossing of the PSE: a half-open probe that
// succeeds closes the breaker; in the closed state success clears the
// failure window (failures must cluster to trip).
func (b *pseBreaker) Succeed(id int32) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.states[id]
	if !ok {
		return
	}
	if st.probing {
		st.probing = false
		st.openUntil = time.Time{}
		b.notify(id, "closed")
	}
	st.stamps = st.stamps[:0]
}

// Open reports whether the PSE is currently excluded from the split set.
// When the cooldown has elapsed the breaker flips to half-open — the PSE is
// re-admitted for a probe — and Open returns false.
func (b *pseBreaker) Open(id int32) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openLocked(id)
}

func (b *pseBreaker) openLocked(id int32) bool {
	st, ok := b.states[id]
	if !ok || st.openUntil.IsZero() {
		return false
	}
	now := b.now()
	if st.probing {
		if now.Sub(st.probeStart) >= b.cfg.window {
			// A full failure window passed without a probe failure: the
			// probe passed implicitly, close the breaker.
			st.probing = false
			st.openUntil = time.Time{}
			st.stamps = st.stamps[:0]
			b.notify(id, "closed")
		}
		return false
	}
	if now.Before(st.openUntil) {
		return true
	}
	// Cooldown elapsed: half-open re-admission.
	st.probing = true
	st.probeStart = now
	b.notify(id, "half-open")
	return false
}

// OpenIDs returns the sorted PSEs currently excluded (open, cooldown not
// yet elapsed). PSEs whose cooldown has passed flip to half-open as a side
// effect, mirroring Open.
func (b *pseBreaker) OpenIDs() []int32 {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []int32
	for id := range b.states {
		if b.openLocked(id) {
			out = append(out, id)
		}
	}
	return partition.SortedIDs(out)
}
