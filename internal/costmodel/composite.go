package costmodel

import (
	"fmt"
	"strings"

	"methodpart/internal/analysis"
	"methodpart/internal/mir"
)

// Composite combines several weighted cost models — the paper's §7 future
// work ("experiment with composite cost models"), implemented here as a
// minimal extension. Static descriptors merge deterministic parts by
// weighted sum and union the non-deterministic variable sets; runtime
// capacities are the weighted sum of the component capacities.
type Composite struct {
	parts   []weighted
	nameStr string
}

type weighted struct {
	m Model
	w float64
}

// NewComposite builds a composite from (model, weight) pairs. Weights must
// be positive.
func NewComposite(models []Model, weights []float64) (*Composite, error) {
	if len(models) == 0 || len(models) != len(weights) {
		return nil, fmt.Errorf("costmodel: composite needs matching models and weights")
	}
	c := &Composite{}
	var names []string
	for i, m := range models {
		if weights[i] <= 0 {
			return nil, fmt.Errorf("costmodel: composite weight %g must be positive", weights[i])
		}
		c.parts = append(c.parts, weighted{m: m, w: weights[i]})
		names = append(names, fmt.Sprintf("%s*%g", m.Name(), weights[i]))
	}
	c.nameStr = "composite(" + strings.Join(names, "+") + ")"
	return c, nil
}

// Name implements Model.
func (c *Composite) Name() string { return c.nameStr }

// StaticCost implements Model.
func (c *Composite) StaticCost(prog *mir.Program, classes *mir.ClassTable, live *analysis.Liveness) analysis.CostFunc {
	fns := make([]analysis.CostFunc, len(c.parts))
	for i, p := range c.parts {
		fns[i] = p.m.StaticCost(prog, classes, live)
	}
	return func(e analysis.Edge, inter analysis.VarSet) analysis.CostDesc {
		out := analysis.CostDesc{Vars: make(analysis.VarSet)}
		for i, fn := range fns {
			d := fn(e, inter)
			if d.Infinite {
				out.Infinite = true
			}
			out.Det += int64(float64(d.Det) * c.parts[i].w)
			for v := range d.Vars {
				out.Vars[v] = true
			}
		}
		return out
	}
}

// Capacity implements Model.
func (c *Composite) Capacity(stat Stat, env Environment) int64 {
	var total float64
	for _, p := range c.parts {
		total += float64(p.m.Capacity(stat, env)) * p.w
	}
	if total < 1 {
		return 1
	}
	return int64(total)
}

// StaticCapacity implements Model.
func (c *Composite) StaticCapacity(d analysis.CostDesc) int64 {
	var total float64
	for _, p := range c.parts {
		total += float64(p.m.StaticCapacity(d)) * p.w
	}
	if total < 1 {
		return 1
	}
	return int64(total)
}
