// Benchmarks regenerating the paper's evaluation. One benchmark per table
// and figure (reporting the table's value as a custom metric on a reduced
// workload), plus wall-clock microbenchmarks for the §5.3 overheads: plan
// switching, continuation marshalling, size calculation and the min-cut
// reconfiguration itself.
package methodpart_test

import (
	"fmt"
	"testing"

	"methodpart"
	"methodpart/internal/bench"
	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/profileunit"
	"methodpart/internal/reconfig"
	"methodpart/internal/sensor"
	"methodpart/internal/sizeof"
	"methodpart/internal/testprog"
	"methodpart/internal/wire"
)

// --- Table 1: serialization vs size calculation vs self-described size ---

func BenchmarkTable1Serialization(b *testing.B) {
	for _, subj := range sizeof.Table1Subjects() {
		b.Run(subj.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sizeof.SerializedSize(subj.Value); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1SizeCalc(b *testing.B) {
	for _, subj := range sizeof.Table1Subjects() {
		b.Run(subj.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = sizeof.ReflectSize(subj.Value)
			}
		})
	}
}

func BenchmarkTable1SelfSize(b *testing.B) {
	for _, subj := range sizeof.Table1Subjects() {
		if !subj.HasSelfSize {
			continue
		}
		ss := subj.Value.(sizeof.SelfSized)
		b.Run(subj.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ss.SizeOf()
			}
		})
	}
}

// --- Tables 2-4 and Figures 7-8: one simulated run per iteration ---

func benchImageCfg() bench.ImageConfig {
	cfg := bench.DefaultImageConfig()
	cfg.Frames = 150
	return cfg
}

func benchSensorCfg() bench.SensorConfig {
	cfg := bench.DefaultSensorConfig()
	cfg.Frames = 60
	cfg.Seeds = []int64{11}
	return cfg
}

func BenchmarkTable2(b *testing.B) {
	cfg := benchImageCfg()
	variants := []bench.ImageVariant{
		bench.VariantImageLtDisplay, bench.VariantImageGtDisplay, bench.VariantMethodPartitioning,
	}
	scenarios := []bench.ImageScenario{bench.ScenarioSmall, bench.ScenarioLarge, bench.ScenarioMixed}
	for _, v := range variants {
		for _, sc := range scenarios {
			b.Run(fmt.Sprintf("%s/%s", v, sc), func(b *testing.B) {
				var fps float64
				for i := 0; i < b.N; i++ {
					res, err := bench.ImageCell(cfg, v, sc)
					if err != nil {
						b.Fatal(err)
					}
					fps = res.FPS
				}
				b.ReportMetric(fps, "fps")
			})
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	cfg := benchSensorCfg()
	for _, v := range bench.SensorVariants() {
		for _, dir := range []string{"PC->Sun", "Sun->PC"} {
			c := cfg
			if dir == "PC->Sun" {
				c.ProducerSpeed, c.ConsumerSpeed = bench.PCSpeed, bench.SunSpeed
			} else {
				c.ProducerSpeed, c.ConsumerSpeed = bench.SunSpeed, bench.PCSpeed
			}
			b.Run(fmt.Sprintf("%s/%s", v, dir), func(b *testing.B) {
				var ms float64
				for i := 0; i < b.N; i++ {
					got, err := bench.SensorCell(c, v, 0, 0)
					if err != nil {
						b.Fatal(err)
					}
					ms = got
				}
				b.ReportMetric(ms, "msg-ms")
			})
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	cfg := benchSensorCfg()
	for _, load := range bench.Table4Loads() {
		for _, v := range bench.SensorVariants() {
			b.Run(fmt.Sprintf("%s/p%.1f-c%.1f", v, load.Producer, load.Consumer), func(b *testing.B) {
				var ms float64
				for i := 0; i < b.N; i++ {
					got, err := bench.SensorCell(cfg, v, load.Producer, load.Consumer)
					if err != nil {
						b.Fatal(err)
					}
					ms = got
				}
				b.ReportMetric(ms, "msg-ms")
			})
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	cfg := benchSensorCfg()
	for _, ap := range []float64{0, 0.5, 1.0} {
		c := cfg
		c.AProb = ap
		for _, v := range bench.SensorVariants() {
			b.Run(fmt.Sprintf("%s/AProb%.1f", v, ap), func(b *testing.B) {
				var ms float64
				for i := 0; i < b.N; i++ {
					got, err := bench.SensorCell(c, v, 0, 0.8)
					if err != nil {
						b.Fatal(err)
					}
					ms = got
				}
				b.ReportMetric(ms, "msg-ms")
			})
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	cfg := benchSensorCfg()
	for _, plen := range []float64{250, 1000, 4000} {
		c := cfg
		c.PLenMS = plen
		b.Run(fmt.Sprintf("MP/PLen%.0f", plen), func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				got, err := bench.SensorCell(c, bench.VariantMP, 0, 0.8)
				if err != nil {
					b.Fatal(err)
				}
				ms = got
			}
			b.ReportMetric(ms, "msg-ms")
		})
	}
}

// --- §5.3 overhead ablations ---

func compilePush(b *testing.B, model costmodel.Model) *partition.Compiled {
	b.Helper()
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, err := u.ClassTable()
	if err != nil {
		b.Fatal(err)
	}
	reg, _ := testprog.PushBuiltins()
	c, err := partition.Compile(prog, classes, reg, model)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkPlanSwitch measures the paper's "adaptations simply involve
// changes to a few flag values": one atomic plan swap.
func BenchmarkPlanSwitch(b *testing.B) {
	c := compilePush(b, costmodel.NewDataSize())
	u := testprog.PushUnit()
	classes, _ := u.ClassTable()
	reg, _ := testprog.PushBuiltins()
	mod := partition.NewModulator(c, methodpart.NewEnv(c, reg))
	_ = classes
	plans := make([]*partition.Plan, 2)
	var err error
	if plans[0], err = partition.NewPlan(c.NumPSEs(), 0, []int32{partition.RawPSEID}, nil); err != nil {
		b.Fatal(err)
	}
	if plans[1], err = partition.NewPlan(c.NumPSEs(), 0, []int32{1, 2}, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.SetPlan(plans[i%2])
	}
}

// BenchmarkModulatorProcess measures one full sender-side modulation of the
// push handler, including the split snapshot.
func BenchmarkModulatorProcess(b *testing.B) {
	for _, plan := range []struct {
		name  string
		split []int32
	}{
		{"raw", []int32{partition.RawPSEID}},
		{"pre-transform", []int32{1, 2}},
		{"post-transform", []int32{1, 3}},
	} {
		b.Run(plan.name, func(b *testing.B) {
			c := compilePush(b, costmodel.NewDataSize())
			reg, _ := testprog.PushBuiltins()
			mod := partition.NewModulator(c, methodpart.NewEnv(c, reg))
			p, err := partition.NewPlan(c.NumPSEs(), 1, plan.split, nil)
			if err != nil {
				b.Fatal(err)
			}
			mod.SetPlan(p)
			ev := testprog.NewImageData(64, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mod.Process(ev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkContinuationMarshal measures wire encoding of a continuation
// carrying a 64x64 image.
func BenchmarkContinuationMarshal(b *testing.B) {
	cont := &wire.Continuation{
		Handler:    "push",
		PSEID:      2,
		ResumeNode: 3,
		Vars:       map[string]mir.Value{"r2": mir.Value(testprog.NewImageData(64, 64))},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := wire.Marshal(cont)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}

// BenchmarkContinuationUnmarshal measures the demodulator-side decode.
func BenchmarkContinuationUnmarshal(b *testing.B) {
	cont := &wire.Continuation{
		Handler:    "push",
		PSEID:      2,
		ResumeNode: 3,
		Vars:       map[string]mir.Value{"r2": mir.Value(testprog.NewImageData(64, 64))},
	}
	data, err := wire.Marshal(cont)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSizeCalculation measures the profiling-path size computation
// (size only, no serialization) for a 64x64 image event.
func BenchmarkSizeCalculation(b *testing.B) {
	ev := testprog.NewImageData(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wire.SizeOf(ev)
	}
}

// BenchmarkMinCut measures the reconfiguration algorithm on the 4-PSE image
// handler and the ~22-PSE sensor handler (the paper: "negligible overheads
// for running the reconfiguration algorithm" at 5 and 21 PSEs).
func BenchmarkMinCut(b *testing.B) {
	cases := []struct {
		name    string
		c       *partition.Compiled
		collect func(*partition.Compiled) map[int32]costmodel.Stat
	}{
		{
			name: "imageHandler",
			c:    compilePush(b, costmodel.NewDataSize()),
		},
		{
			name: "sensorHandler21PSE",
			c: func() *partition.Compiled {
				unit := sensor.HandlerUnit(sensor.DefaultStages)
				prog, _ := unit.Program(sensor.HandlerName)
				classes, _ := unit.ClassTable()
				reg, _ := sensor.Builtins(sensor.DefaultStages)
				c, err := partition.Compile(prog, classes, reg, costmodel.NewExecTime())
				if err != nil {
					b.Fatal(err)
				}
				return c
			}(),
		},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			stats := make(map[int32]costmodel.Stat, tc.c.NumPSEs())
			for id := int32(0); id < int32(tc.c.NumPSEs()); id++ {
				stats[id] = costmodel.Stat{
					Count: 100, Prob: 1, Bytes: float64(1000 + id),
					ModWork: float64(100 * id), DemodWork: float64(100 * (int32(tc.c.NumPSEs()) - id)),
				}
			}
			unit := reconfig.NewUnit(tc.c, costmodel.DefaultEnvironment())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := unit.SelectPlan(stats); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRelayProcess measures re-partitioning a continuation at an
// intermediate party (the §7 relay extension): restore, run three stages,
// re-split.
func BenchmarkRelayProcess(b *testing.B) {
	const stages = 8
	unit := sensor.HandlerUnit(stages)
	prog, _ := unit.Program(sensor.HandlerName)
	classes, _ := unit.ClassTable()
	oracle, _ := sensor.Builtins(stages)
	c, err := partition.Compile(prog, classes, oracle, costmodel.NewExecTime())
	if err != nil {
		b.Fatal(err)
	}
	stagePSE := func(k int) int32 {
		for id := int32(1); id < int32(c.NumPSEs()); id++ {
			p, _ := c.PSE(id)
			if p.Edge.From == 3+k && p.Edge.To == 4+k && len(p.Vars) > 0 {
				return id
			}
		}
		b.Fatalf("no PSE after stage %d", k)
		return -1
	}
	var filter int32 = -1
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		p, _ := c.PSE(id)
		if len(p.Vars) == 0 {
			filter = id
		}
	}
	mkEnv := func() *interp.Env {
		reg, _ := sensor.Builtins(stages)
		return interp.NewEnv(classes, reg)
	}
	mod := partition.NewModulator(c, mkEnv())
	mp, _ := partition.NewPlan(c.NumPSEs(), 1, []int32{stagePSE(2), filter}, nil)
	mod.SetPlan(mp)
	relay := partition.NewRelay(c, mkEnv())
	rp, _ := partition.NewPlan(c.NumPSEs(), 1, []int32{stagePSE(5), filter}, nil)
	relay.SetPlan(rp)

	out, err := mod.Process(sensor.NewFrame(1, 512))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relay.Process(out.Cont); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures the full static-analysis pipeline.
func BenchmarkCompile(b *testing.B) {
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, _ := u.ClassTable()
	reg, _ := testprog.PushBuiltins()
	model := costmodel.NewDataSize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Compile(prog, classes, reg, model); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfilingOverhead compares modulation with profiling flags off
// and on — the conditional-profiling design of §2.5.
func BenchmarkProfilingOverhead(b *testing.B) {
	for _, profiled := range []bool{false, true} {
		name := "off"
		if profiled {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			c := compilePush(b, costmodel.NewDataSize())
			reg, _ := testprog.PushBuiltins()
			mod := partition.NewModulator(c, methodpart.NewEnv(c, reg))
			var profile []int32
			if profiled {
				profile = partition.AllProfileIDs(c)
			}
			coll := profileunit.NewCollector(c.NumPSEs())
			mod.Probe = coll
			p, err := partition.NewPlan(c.NumPSEs(), 1, []int32{1, 3}, profile)
			if err != nil {
				b.Fatal(err)
			}
			mod.SetPlan(p)
			ev := testprog.NewImageData(64, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mod.Process(ev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
