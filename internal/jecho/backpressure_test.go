package jecho_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// newMemPublisher starts a publisher on a fresh in-process transport.
func newMemPublisher(t *testing.T, cfg jecho.PublisherConfig) (*jecho.Publisher, *transport.Mem) {
	t.Helper()
	mem := transport.NewMem()
	reg, _ := imaging.Builtins()
	cfg.Addr = ""
	cfg.Transport = mem
	cfg.Builtins = reg
	cfg.Logf = t.Logf
	pub, err := jecho.NewPublisher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub.Close() })
	return pub, mem
}

// memSubscribe attaches a healthy subscriber over the mem transport.
func memSubscribe(t *testing.T, mem *transport.Mem, addr, name string) (*jecho.Subscriber, *results) {
	t.Helper()
	reg, _ := imaging.Builtins()
	res := &results{}
	sub, err := jecho.Subscribe(jecho.SubscriberConfig{
		Addr:        addr,
		Transport:   mem,
		Name:        name,
		Source:      imaging.HandlerSource(64),
		Handler:     imaging.HandlerName,
		CostModel:   costmodel.DataSizeName,
		Natives:     []string{"displayImage"},
		Builtins:    reg,
		Environment: costmodel.DefaultEnvironment(),
		OnResult:    res.add,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sub.Close() })
	return sub, res
}

// stalledSubscriber performs a valid subscription handshake and then never
// reads another frame: the archetypal slow receiver. The returned conn can
// be closed to simulate the peer dying.
func stalledSubscriber(t *testing.T, mem *transport.Mem, addr, name string) transport.Conn {
	t.Helper()
	conn, err := mem.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := wire.Marshal(&wire.Subscribe{
		Protocol:   wire.ProtocolVersion,
		Subscriber: name,
		Handler:    imaging.HandlerName,
		Source:     imaging.HandlerSource(64),
		CostModel:  costmodel.DataSizeName,
		Natives:    []string{"displayImage"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteFrame(data); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

func waitSubscribers(t *testing.T, pub *jecho.Publisher, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for pub.Subscribers() != want {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers = %d, want %d", pub.Subscribers(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func findSub(t *testing.T, pub *jecho.Publisher, namePrefix string) jecho.SubscriptionInfo {
	t.Helper()
	for _, info := range pub.Subscriptions() {
		if strings.HasPrefix(info.ID, namePrefix+"#") {
			return info
		}
	}
	t.Fatalf("no subscription with prefix %q in %+v", namePrefix, pub.Subscriptions())
	return jecho.SubscriptionInfo{}
}

// TestSlowSubscriberDoesNotBlockHealthy is the acceptance scenario: one
// artificially stalled subscriber and two healthy ones. Publish must be
// bounded by queue handoff, every frame must reach the healthy receivers,
// and the stalled peer's overflow must show up as drops, not as latency.
func TestSlowSubscriberDoesNotBlockHealthy(t *testing.T) {
	pub, mem := newMemPublisher(t, jecho.PublisherConfig{
		QueueDepth:     8,
		OverflowPolicy: jecho.DropOldest,
	})
	_, res1 := memSubscribe(t, mem, pub.Addr(), "healthy-1")
	_, res2 := memSubscribe(t, mem, pub.Addr(), "healthy-2")
	stalledSubscriber(t, mem, pub.Addr(), "stalled")
	waitSubscribers(t, pub, 3)

	const frames = 200
	var worst time.Duration
	start := time.Now()
	for i := 0; i < frames; i++ {
		t0 := time.Now()
		n, err := pub.Publish(imaging.NewFrame(32, 32, int64(i)))
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if n != 3 {
			t.Fatalf("frame %d reached %d subscriptions", i, n)
		}
		if d := time.Since(t0); d > worst {
			worst = d
		}
	}
	total := time.Since(start)
	// Queue handoff is microseconds; allow orders of magnitude of CI and
	// race-detector slack while still being far below any socket timeout
	// a stalled peer could impose.
	if worst > 250*time.Millisecond {
		t.Errorf("worst publish latency %v: bounded by the stalled peer, not queue handoff", worst)
	}
	if total > 10*time.Second {
		t.Errorf("publishing %d frames took %v", frames, total)
	}
	waitCount(t, res1, frames)
	waitCount(t, res2, frames)

	stalled := findSub(t, pub, "stalled")
	if stalled.Metrics.Dropped == 0 {
		t.Errorf("stalled subscription dropped nothing: %+v", stalled.Metrics)
	}
	if stalled.Metrics.Published != frames {
		t.Errorf("stalled modulated %d of %d", stalled.Metrics.Published, frames)
	}
	if hw := stalled.Metrics.QueueHighWater; hw == 0 || hw > 8 {
		t.Errorf("stalled queue high-water %d, want 1..8", hw)
	}
	healthy := findSub(t, pub, "healthy-1")
	if healthy.Metrics.Dropped != 0 {
		t.Errorf("healthy subscription dropped %d frames", healthy.Metrics.Dropped)
	}
	t.Logf("worst publish %v over %d frames; stalled dropped %d (queue hw %d)",
		worst, frames, stalled.Metrics.Dropped, stalled.Metrics.QueueHighWater)
}

// TestOverflowDropNewest: with DropNewest the queue keeps the oldest
// backlog and sheds fresh frames once full.
func TestOverflowDropNewest(t *testing.T) {
	pub, mem := newMemPublisher(t, jecho.PublisherConfig{
		QueueDepth:     4,
		OverflowPolicy: jecho.DropNewest,
	})
	stalledSubscriber(t, mem, pub.Addr(), "stalled")
	waitSubscribers(t, pub, 1)

	const frames = 64
	for i := 0; i < frames; i++ {
		if _, err := pub.Publish(imaging.NewFrame(16, 16, int64(i))); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	m := findSub(t, pub, "stalled").Metrics
	if m.Dropped == 0 {
		t.Fatalf("no drops after %d frames into a depth-4 queue: %+v", frames, m)
	}
	if m.Enqueued+m.Dropped+m.Suppressed != frames {
		t.Errorf("enqueued %d + dropped %d + suppressed %d != %d frames",
			m.Enqueued, m.Dropped, m.Suppressed, frames)
	}
}

// TestOverflowDropOldest: with DropOldest every new frame is admitted and
// old queued frames are evicted, so Enqueued keeps counting while Dropped
// grows too.
func TestOverflowDropOldest(t *testing.T) {
	pub, mem := newMemPublisher(t, jecho.PublisherConfig{
		QueueDepth:     4,
		OverflowPolicy: jecho.DropOldest,
	})
	stalledSubscriber(t, mem, pub.Addr(), "stalled")
	waitSubscribers(t, pub, 1)

	const frames = 64
	for i := 0; i < frames; i++ {
		if _, err := pub.Publish(imaging.NewFrame(16, 16, int64(i))); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	m := findSub(t, pub, "stalled").Metrics
	if m.Dropped == 0 {
		t.Fatalf("no drops after %d frames into a depth-4 queue: %+v", frames, m)
	}
	if m.Enqueued != frames-m.Suppressed {
		t.Errorf("drop-oldest must admit every frame: enqueued %d, suppressed %d, want %d total",
			m.Enqueued, m.Suppressed, frames)
	}
}

// TestOverflowBlock: the lossless policy really blocks the publisher once
// the stalled peer's queue and transport buffer are full, and a peer death
// releases it with an error rather than a hang.
func TestOverflowBlock(t *testing.T) {
	pub, mem := newMemPublisher(t, jecho.PublisherConfig{
		QueueDepth:     2,
		OverflowPolicy: jecho.Block,
	})
	_, healthyRes := memSubscribe(t, mem, pub.Addr(), "healthy")
	stalled := stalledSubscriber(t, mem, pub.Addr(), "stalled")
	waitSubscribers(t, pub, 2)

	const frames = 64
	var published atomic.Int64
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			_, err := pub.Publish(imaging.NewFrame(16, 16, int64(i)))
			if err != nil {
				errCh <- err
				return
			}
			published.Add(1)
		}
		errCh <- nil
	}()

	// The publisher must wedge: progress stops well short of all frames.
	deadline := time.Now().Add(5 * time.Second)
	var last int64 = -1
	for {
		cur := published.Load()
		if cur == last && cur > 0 {
			break // no progress across a full poll interval: blocked
		}
		if cur >= frames || time.Now().After(deadline) {
			t.Fatalf("block policy never blocked (published %d/%d)", cur, frames)
		}
		last = cur
		time.Sleep(100 * time.Millisecond)
	}

	// Killing the stalled peer retires its subscription and unblocks the
	// wedged Publish with a subscription-scoped error.
	_ = stalled.Close()
	select {
	case err := <-errCh:
		if err == nil {
			// The blocked publish may also have been dropped onto the
			// retired path without erroring if the retire won the race;
			// either way the publisher must be unwedged. Finish the rest.
			break
		}
		if !strings.Contains(err.Error(), "stalled#") {
			t.Errorf("unblock error does not name the dead subscription: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Publish still wedged after the stalled peer died")
	}
	waitSubscribers(t, pub, 1)
	// Subsequent publishes flow to the healthy subscriber only.
	n, err := pub.Publish(imaging.NewFrame(16, 16, 999))
	if err != nil || n != 1 {
		t.Fatalf("post-retirement publish: n=%d err=%v", n, err)
	}
	waitCount(t, healthyRes, int(published.Load())+1)
}

// TestFeedbackCoalescing: profiling feedback to a slow peer collapses to
// the latest snapshot instead of queueing stale reports.
func TestFeedbackCoalescing(t *testing.T) {
	pub, mem := newMemPublisher(t, jecho.PublisherConfig{
		QueueDepth:     4,
		OverflowPolicy: jecho.DropOldest,
		FeedbackEvery:  1, // stage a feedback frame per message
	})
	stalledSubscriber(t, mem, pub.Addr(), "stalled")
	waitSubscribers(t, pub, 1)

	const frames = 50
	for i := 0; i < frames; i++ {
		if _, err := pub.Publish(imaging.NewFrame(16, 16, int64(i))); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	m := findSub(t, pub, "stalled").Metrics
	if m.FeedbackCoalesced == 0 {
		t.Fatalf("no feedback coalescing after %d per-message reports to a stalled peer: %+v", frames, m)
	}
	if m.FeedbackSent+m.FeedbackCoalesced < frames-1 {
		t.Errorf("feedback accounting: sent %d + coalesced %d < %d staged",
			m.FeedbackSent, m.FeedbackCoalesced, frames-1)
	}
}

// TestDeadPeerRetiredPromptly: a peer that dies is removed from the
// subscription table without waiting for a Publish to trip over it, and
// later publishes neither pay for nor fail on it.
func TestDeadPeerRetiredPromptly(t *testing.T) {
	pub, mem := newMemPublisher(t, jecho.PublisherConfig{
		QueueDepth:     4,
		OverflowPolicy: jecho.DropOldest,
	})
	conn := stalledSubscriber(t, mem, pub.Addr(), "doomed")
	waitSubscribers(t, pub, 1)
	if _, err := pub.Publish(imaging.NewFrame(16, 16, 1)); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	waitSubscribers(t, pub, 0)
	if n, err := pub.Publish(imaging.NewFrame(16, 16, 2)); err != nil || n != 0 {
		t.Fatalf("publish after peer death: n=%d err=%v", n, err)
	}
}

// TestCleanCloseErrNil: a locally initiated Close is a clean shutdown —
// Err() must be nil (the documented contract) — while a publisher-side
// teardown surfaces as a read error.
func TestCleanCloseErrNil(t *testing.T) {
	pub, mem := newMemPublisher(t, jecho.PublisherConfig{})
	sub, _ := memSubscribe(t, mem, pub.Addr(), "tidy")
	waitSubscribers(t, pub, 1)
	if err := sub.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("Err after clean local close = %v, want nil", err)
	}

	// Counterpart: the publisher dying is NOT clean for its subscriber.
	pub2, mem2 := newMemPublisher(t, jecho.PublisherConfig{})
	sub2, _ := memSubscribe(t, mem2, pub2.Addr(), "orphan")
	waitSubscribers(t, pub2, 1)
	_ = pub2.Close()
	select {
	case <-sub2.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber did not notice publisher close")
	}
	if sub2.Err() == nil {
		t.Fatal("Err after publisher-side close = nil, want an error")
	}
}

// TestSubscriberMetrics: the receiver side counts demodulated messages,
// received bytes and pushed plan flips.
func TestSubscriberMetrics(t *testing.T) {
	pub, mem := newMemPublisher(t, jecho.PublisherConfig{FeedbackEvery: 2})
	sub, res := memSubscribe(t, mem, pub.Addr(), "meter")
	waitSubscribers(t, pub, 1)
	const frames = 20
	for i := 0; i < frames; i++ {
		size := 16
		if i >= frames/2 {
			size = 220 // large frames push the split point around
		}
		if _, err := pub.Publish(imaging.NewFrame(size, size, int64(i))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitCount(t, res, frames)
	m := sub.Metrics()
	if m.Published != frames {
		t.Errorf("subscriber processed %d, want %d", m.Published, frames)
	}
	if m.BytesOnWire == 0 {
		t.Error("subscriber counted no received bytes")
	}
	pm := findSub(t, pub, "meter").Metrics
	if pm.BytesOnWire == 0 {
		t.Error("publisher counted no sent bytes")
	}
	if pm.Published != frames {
		t.Errorf("publisher modulated %d, want %d", pm.Published, frames)
	}
}

// BenchmarkPublishWithStalledPeer measures the per-publish cost with one
// stalled and one healthy subscription: the number that must stay in
// handoff territory regardless of the stalled peer.
func BenchmarkPublishWithStalledPeer(b *testing.B) {
	mem := transport.NewMem()
	reg, _ := imaging.Builtins()
	pub, err := jecho.NewPublisher(jecho.PublisherConfig{
		Addr:           "",
		Transport:      mem,
		Builtins:       reg,
		QueueDepth:     8,
		OverflowPolicy: jecho.DropOldest,
		Logf:           func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer pub.Close()
	conn, err := mem.Dial(pub.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	data, err := wire.Marshal(&wire.Subscribe{
		Protocol:   wire.ProtocolVersion,
		Subscriber: "stalled",
		Handler:    imaging.HandlerName,
		Source:     imaging.HandlerSource(64),
		CostModel:  costmodel.DataSizeName,
		Natives:    []string{"displayImage"},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := conn.WriteFrame(data); err != nil {
		b.Fatal(err)
	}
	for pub.Subscribers() != 1 {
		time.Sleep(time.Millisecond)
	}
	frame := imaging.NewFrame(32, 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pub.Publish(frame); err != nil {
			b.Fatal(err)
		}
	}
}
