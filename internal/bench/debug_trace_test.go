package bench

import (
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir/interp"
	"methodpart/internal/simnet"
)

// TestTraceMixedAdaptation prints the per-frame split decisions of the MP
// variant under the mixed workload — a diagnostic view of adaptation lag.
func TestTraceMixedAdaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic trace")
	}
	cfg := DefaultImageConfig()
	cfg.Frames = 60
	f, err := newImageFixture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	server := simnet.NewHost("server", cfg.ServerSpeed)
	client := simnet.NewHost("client", cfg.ClientSpeed)
	link := &simnet.Link{BytesPerMS: cfg.LinkBytesPerMS, LatencyMS: cfg.LinkLatencyMS}
	rc := RunConfig{
		Compiled:      f.c,
		SenderEnv:     interp.NewEnv(f.classes, f.builtins()),
		ReceiverEnv:   interp.NewEnv(f.classes, f.builtins()),
		Sender:        server,
		Receiver:      client,
		Link:          link,
		Frames:        cfg.Frames,
		Workload:      imageWorkload(cfg, ScenarioMixed),
		OverheadBytes: 64,
		Warmup:        5,
		Adaptive:      true,
		Nominal: costmodel.Environment{
			SenderSpeed:   cfg.ServerSpeed,
			ReceiverSpeed: cfg.ClientSpeed,
			Bandwidth:     cfg.LinkBytesPerMS,
			LatencyMS:     cfg.LinkLatencyMS,
		},
		Trace: func(i int, split int32, bytes int64, tm simnet.Timing) {
			t.Logf("frame %3d split=%2d bytes=%6d done=%8.1f", i, split, bytes, tm.Done)
		},
	}
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fps=%.2f switches=%d final=%s", res.FPS, res.PlanSwitches, res.FinalPlan)
}
