package wire

import (
	"bytes"
	"testing"
)

// TestReliableRoundTrips covers the revision-5 control frames.
func TestReliableRoundTrips(t *testing.T) {
	inner, err := Marshal(&Nack{Handler: "h", Seq: 1}) // any valid frame works as a payload
	if err != nil {
		t.Fatal(err)
	}
	msgs := []any{
		&Ack{Seq: 42},
		&Retransmit{From: 7, To: 19},
		&Lost{From: 3, To: 3},
		&SeqEvent{Seq: 9, Payload: inner},
		&StreamStart{Epoch: 1234567},
	}
	for _, m := range msgs {
		data, err := Marshal(m)
		if err != nil {
			t.Fatalf("marshal %T: %v", m, err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("unmarshal %T: %v", m, err)
		}
		switch want := m.(type) {
		case *Ack:
			if g := got.(*Ack); *g != *want {
				t.Fatalf("ack roundtrip: got %+v want %+v", g, want)
			}
		case *Retransmit:
			if g := got.(*Retransmit); *g != *want {
				t.Fatalf("retransmit roundtrip: got %+v want %+v", g, want)
			}
		case *Lost:
			if g := got.(*Lost); *g != *want {
				t.Fatalf("lost roundtrip: got %+v want %+v", g, want)
			}
		case *SeqEvent:
			g := got.(*SeqEvent)
			if g.Seq != want.Seq || !bytes.Equal(g.Payload, want.Payload) {
				t.Fatalf("seq envelope roundtrip: got %+v want %+v", g, want)
			}
		case *StreamStart:
			if g := got.(*StreamStart); *g != *want {
				t.Fatalf("stream start roundtrip: got %+v want %+v", g, want)
			}
		}
	}
}

// TestStreamStartRejectsZeroEpoch: epoch 0 is the receiver-side "no stream
// adopted" sentinel and must never appear on the wire in either direction.
func TestStreamStartRejectsZeroEpoch(t *testing.T) {
	if _, err := Marshal(&StreamStart{}); err == nil {
		t.Fatal("marshal of zero-epoch stream start succeeded")
	}
	if _, err := Unmarshal([]byte{byte(MsgStreamStart), 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("unmarshal of zero-epoch stream start succeeded")
	}
}

// TestSeqEventAppendFastPath: AppendSeqEvent must produce byte-identical
// output to Marshal(&SeqEvent{...}) — the pipeline uses the append form.
func TestSeqEventAppendFastPath(t *testing.T) {
	payload, err := Marshal(&Heartbeat{Seq: 5})
	if err != nil {
		t.Fatal(err)
	}
	viaMarshal, err := Marshal(&SeqEvent{Seq: 77, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	viaAppend := AppendSeqEvent(nil, 77, payload)
	if !bytes.Equal(viaMarshal, viaAppend) {
		t.Fatalf("AppendSeqEvent diverges from Marshal:\n append: %x\nmarshal: %x", viaAppend, viaMarshal)
	}
	m, err := Unmarshal(viaAppend)
	if err != nil {
		t.Fatal(err)
	}
	se := m.(*SeqEvent)
	if se.Seq != 77 || !bytes.Equal(se.Payload, payload) {
		t.Fatalf("decoded envelope %+v, want seq 77 payload %x", se, payload)
	}
}

// TestSeqEventRejectsDegenerate: empty payloads and zero sequences never
// appear on a healthy channel; both directions must reject them rather
// than let a zero-seq frame corrupt dedup state.
func TestSeqEventRejectsDegenerate(t *testing.T) {
	if _, err := Marshal(&SeqEvent{Seq: 1}); err == nil {
		t.Fatal("marshal of empty envelope succeeded")
	}
	if _, err := Marshal(&SeqEvent{Seq: 0, Payload: []byte{1}}); err == nil {
		t.Fatal("marshal of zero-seq envelope succeeded")
	}
	if _, err := Unmarshal([]byte{byte(MsgSeqEvent), 0, 0, 0, 0, 0, 0, 0, 0, 1}); err == nil {
		t.Fatal("unmarshal of zero-seq envelope succeeded")
	}
	if _, err := Unmarshal(AppendSeqEvent(nil, 1, nil)); err == nil {
		t.Fatal("unmarshal of empty envelope succeeded")
	}
}

// TestRangeFramesRejectInverted: a Retransmit or Lost whose To < From is a
// corrupt frame, not a request the receiver should guess at.
func TestRangeFramesRejectInverted(t *testing.T) {
	for _, m := range []any{&Retransmit{From: 9, To: 3}, &Lost{From: 9, To: 3}} {
		data, err := Marshal(m)
		if err != nil {
			t.Fatalf("marshal %T: %v", m, err)
		}
		if _, err := Unmarshal(data); err == nil {
			t.Fatalf("unmarshal of inverted %T succeeded", m)
		}
	}
}

// TestSubscribeReliabilityRoundTrip covers the revision-5 handshake
// fields on the current encoding.
func TestSubscribeReliabilityRoundTrip(t *testing.T) {
	in := &Subscribe{
		Protocol: ProtocolVersion, Subscriber: "s", Handler: "h",
		Source: "src", CostModel: "datasize", Natives: []string{"n"},
		Reliability: ReliabilityAtLeastOnce, ResumeSeq: 123, ResumeEpoch: 456,
	}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	out := got.(*Subscribe)
	if out.Reliability != ReliabilityAtLeastOnce || out.ResumeSeq != 123 || out.ResumeEpoch != 456 {
		t.Fatalf("roundtrip lost reliability fields: %+v", out)
	}
}

// TestSubscribePreEpochDowngrade: a handshake from an earlier revision-5
// build — Reliability and ResumeSeq present, no ResumeEpoch — decodes with
// epoch 0, which every publisher state treats as foreign (fresh stream).
func TestSubscribePreEpochDowngrade(t *testing.T) {
	m := &Subscribe{
		Protocol: ProtocolVersion, Subscriber: "mid", Handler: "h",
		Source: "src", CostModel: "datasize",
		Reliability: ReliabilityAtLeastOnce, ResumeSeq: 55,
	}
	e := NewEncoder()
	e.w.WriteByte(byte(MsgSubscribe))
	e.writeU32(m.Protocol)
	e.writeString(m.Subscriber)
	e.writeString(m.Channel)
	e.writeString(m.Handler)
	e.writeString(m.Source)
	e.writeString(m.CostModel)
	e.writeU32(0) // no natives
	e.writeU32(m.Reliability)
	e.writeU64(m.ResumeSeq)
	data := make([]byte, e.Len())
	copy(data, e.Bytes())
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	out := got.(*Subscribe)
	if out.Reliability != ReliabilityAtLeastOnce || out.ResumeSeq != 55 || out.ResumeEpoch != 0 {
		t.Fatalf("pre-epoch subscribe mis-decoded: %+v", out)
	}
}

// legacySubscribe hand-encodes a pre-revision-5 Subscribe frame — exactly
// the bytes a v4 peer would produce, with nothing after the natives.
func legacySubscribe(m *Subscribe) []byte {
	e := NewEncoder()
	e.w.WriteByte(byte(MsgSubscribe))
	e.writeU32(m.Protocol)
	e.writeString(m.Subscriber)
	e.writeString(m.Channel)
	e.writeString(m.Handler)
	e.writeString(m.Source)
	e.writeString(m.CostModel)
	e.writeU32(uint32(len(m.Natives)))
	for _, n := range m.Natives {
		e.writeString(n)
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// TestSubscribeV4Downgrade: a legacy handshake without the trailing
// reliability fields decodes to best-effort with no resume point — the v5
// publisher treats a v4 subscriber exactly as a v4 publisher did.
func TestSubscribeV4Downgrade(t *testing.T) {
	data := legacySubscribe(&Subscribe{
		Protocol: 4, Subscriber: "old", Handler: "h",
		Source: "src", CostModel: "datasize", Natives: []string{"n"},
	})
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	m := got.(*Subscribe)
	if m.Subscriber != "old" || len(m.Natives) != 1 {
		t.Fatalf("legacy subscribe mis-decoded: %+v", m)
	}
	if m.Reliability != ReliabilityBestEffort || m.ResumeSeq != 0 {
		t.Fatalf("legacy subscribe grew reliability fields: %+v", m)
	}
}

// TestHeartbeatAckPiggyback covers the revision-5 heartbeat extension and
// the legacy form (seq only, no flag byte).
func TestHeartbeatAckPiggyback(t *testing.T) {
	data, err := Marshal(&Heartbeat{Seq: 3, HasAck: true, AckSeq: 88})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	hb := got.(*Heartbeat)
	if !hb.HasAck || hb.AckSeq != 88 || hb.Seq != 3 {
		t.Fatalf("heartbeat ack roundtrip: %+v", hb)
	}

	data, err = Marshal(&Heartbeat{Seq: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err = Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if hb := got.(*Heartbeat); hb.HasAck || hb.AckSeq != 0 {
		t.Fatalf("ackless heartbeat grew an ack: %+v", hb)
	}

	// Legacy frame: tag + seq, no flag byte at all.
	legacy := []byte{byte(MsgHeartbeat), 6, 0, 0, 0, 0, 0, 0, 0}
	got, err = Unmarshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if hb := got.(*Heartbeat); hb.Seq != 6 || hb.HasAck {
		t.Fatalf("legacy heartbeat mis-decoded: %+v", hb)
	}
}
