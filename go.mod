module methodpart

go 1.22
