package transport

import (
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

// memConnBuffer is the per-direction frame buffer of a Mem connection. It
// is deliberately small: a stalled reader exerts backpressure on the writer
// after this many frames, just as a full TCP send buffer would, which is
// what the jecho backpressure tests rely on.
const memConnBuffer = 16

// Mem is an in-process Transport: listeners register in the instance's
// address table and Dial connects to them through a pair of channel-backed
// conns. One Mem value is one network; distinct instances cannot reach each
// other, so tests stay isolated. All methods are safe for concurrent use.
type Mem struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	next      int
}

// NewMem creates an empty in-process network.
func NewMem() *Mem {
	return &Mem{listeners: make(map[string]*memListener)}
}

// Listen implements Transport. An empty address or one ending in ":0"
// auto-allocates ("mem:N"), mirroring TCP's ephemeral ports.
func (m *Mem) Listen(addr string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" || strings.HasSuffix(addr, ":0") {
		m.next++
		addr = fmt.Sprintf("mem:%d", m.next)
	}
	if _, ok := m.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: address %s already in use", addr)
	}
	l := &memListener{
		m:      m,
		addr:   addr,
		accept: make(chan *memConn),
		closed: make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (m *Mem) Dial(addr string) (Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: connection refused: no listener at %s", addr)
	}
	local, remote := newMemPair(fmt.Sprintf("mem:dial->%s", addr), addr)
	select {
	case l.accept <- remote:
		return local, nil
	case <-l.closed:
		return nil, fmt.Errorf("transport: connection refused: %s closed", addr)
	}
}

type memListener struct {
	m      *Mem
	addr   string
	accept chan *memConn
	closed chan struct{}
	once   sync.Once
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		l.m.mu.Lock()
		delete(l.m.listeners, l.addr)
		l.m.mu.Unlock()
		close(l.closed)
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }

// memConn is one end of an in-process connection: frames flow through a
// bounded channel per direction. Deadlines mirror net.Conn semantics: a
// blocked ReadFrame/WriteFrame fails with os.ErrDeadlineExceeded once its
// deadline passes, which is what makes heartbeat and stalled-peer
// behaviour testable deterministically in-process.
type memConn struct {
	in         chan []byte // frames readable here
	out        chan []byte // the peer's in
	closed     chan struct{}
	peerClosed chan struct{}
	once       sync.Once
	laddr      string
	raddr      string

	deadlineMu    sync.Mutex
	readDeadline  time.Time
	writeDeadline time.Time
}

func (c *memConn) SetReadDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.readDeadline = t
	c.deadlineMu.Unlock()
	return nil
}

func (c *memConn) SetWriteDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.writeDeadline = t
	c.deadlineMu.Unlock()
	return nil
}

// deadlineTimer arms a timer for the given deadline. It returns a nil
// channel (blocks forever in a select) when no deadline is set, and a
// non-nil expired marker when the deadline already passed.
func deadlineTimer(d time.Time) (<-chan time.Time, *time.Timer, bool) {
	if d.IsZero() {
		return nil, nil, false
	}
	left := time.Until(d)
	if left <= 0 {
		return nil, nil, true
	}
	t := time.NewTimer(left)
	return t.C, t, false
}

func newMemPair(dialerAddr, listenerAddr string) (dialer, accepted *memConn) {
	ab := make(chan []byte, memConnBuffer)
	ba := make(chan []byte, memConnBuffer)
	d := &memConn{in: ba, out: ab, closed: make(chan struct{}), laddr: dialerAddr, raddr: listenerAddr}
	a := &memConn{in: ab, out: ba, closed: make(chan struct{}), laddr: listenerAddr, raddr: dialerAddr}
	d.peerClosed = a.closed
	a.peerClosed = d.closed
	return d, a
}

func (c *memConn) WriteFrame(payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	// A write on a locally closed conn fails even when buffer space is
	// free, matching TCP; without this check the select below could pick
	// the buffered send over the closed signal.
	select {
	case <-c.closed:
		return net.ErrClosed
	default:
	}
	// The payload is copied so the caller may reuse its buffer, matching
	// the semantics of a socket write.
	buf := make([]byte, len(payload))
	copy(buf, payload)
	c.deadlineMu.Lock()
	deadline := c.writeDeadline
	c.deadlineMu.Unlock()
	timeout, timer, expired := deadlineTimer(deadline)
	if expired {
		return os.ErrDeadlineExceeded
	}
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case c.out <- buf:
		return nil
	case <-timeout:
		return os.ErrDeadlineExceeded
	case <-c.closed:
		return net.ErrClosed
	case <-c.peerClosed:
		return io.ErrClosedPipe
	}
}

func (c *memConn) ReadFrame() ([]byte, error) {
	// Drain buffered frames before consulting close or deadline state, so
	// frames written before a peer close are still delivered (TCP-like).
	select {
	case f := <-c.in:
		return f, nil
	default:
	}
	c.deadlineMu.Lock()
	deadline := c.readDeadline
	c.deadlineMu.Unlock()
	timeout, timer, expired := deadlineTimer(deadline)
	if expired {
		return nil, os.ErrDeadlineExceeded
	}
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case f := <-c.in:
		return f, nil
	case <-timeout:
		return nil, os.ErrDeadlineExceeded
	case <-c.closed:
		return nil, net.ErrClosed
	case <-c.peerClosed:
		select {
		case f := <-c.in:
			return f, nil
		default:
			return nil, io.EOF
		}
	}
}

func (c *memConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *memConn) LocalAddr() string { return c.laddr }

func (c *memConn) RemoteAddr() string { return c.raddr }
