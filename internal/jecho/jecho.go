// Package jecho is the distributed event (message) system hosting Method
// Partitioning, playing the role JECho plays in the paper (§5): publishers
// own event channels; subscribers register message handlers *at the
// publisher* by shipping handler source, which the publisher compiles into
// a modulator. Events are modulated at the sender, cross the wire as raw
// events or remote continuations, and are completed by the subscriber's
// demodulator. Profiling feedback flows sender→receiver; partitioning plans
// flow receiver→sender.
//
// Handler code ships as MIR assembler source — the mobile-code analogue of
// the paper's Java classes. Builtin functions named by handlers model
// library code and must be registered on both hosts; natives (displays,
// actuators) exist only at the receiver and pin StopNodes there. The
// subscriber declares the native set explicitly in its subscription so that
// both ends compile identical PSE tables.
package jecho

import (
	"fmt"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir/asm"
	"methodpart/internal/partition"
	"methodpart/internal/wire"
)

// nativeSet is an explicit NativeOracle from a subscription's declared
// native function list.
type nativeSet map[string]bool

// IsNative implements analysis.NativeOracle.
func (s nativeSet) IsNative(fn string) bool { return s[fn] }

// compileSubscription assembles handler source and compiles it under the
// named cost model with the declared native set. Both ends run this with
// identical inputs, yielding identical PSE tables (so PSE ids agree on the
// wire).
func compileSubscription(sub *wire.Subscribe) (*partition.Compiled, error) {
	unit, err := asm.Parse(sub.Source)
	if err != nil {
		return nil, fmt.Errorf("jecho: handler source: %w", err)
	}
	prog, ok := unit.Program(sub.Handler)
	if !ok {
		return nil, fmt.Errorf("jecho: handler %q not in source", sub.Handler)
	}
	classes, err := unit.ClassTable()
	if err != nil {
		return nil, err
	}
	model, err := costmodel.ByName(sub.CostModel)
	if err != nil {
		return nil, err
	}
	oracle := make(nativeSet, len(sub.Natives))
	for _, n := range sub.Natives {
		oracle[n] = true
	}
	return partition.Compile(prog, classes, oracle, model)
}
