package costmodel

import (
	"math"
	"testing"
)

// TestSanitizePerAxisAtZero: each axis at zero (or negative/NaN/Inf) is
// replaced by its default, one axis at a time, the others untouched.
func TestSanitizePerAxisAtZero(t *testing.T) {
	def := DefaultEnvironment()
	good := Environment{SenderSpeed: 10, ReceiverSpeed: 20, Bandwidth: 30, LatencyMS: 40}

	cases := []struct {
		name string
		mut  func(*Environment)
		want func(Environment) Environment
	}{
		{"sender speed zero", func(e *Environment) { e.SenderSpeed = 0 },
			func(e Environment) Environment { e.SenderSpeed = def.SenderSpeed; return e }},
		{"receiver speed zero", func(e *Environment) { e.ReceiverSpeed = 0 },
			func(e Environment) Environment { e.ReceiverSpeed = def.ReceiverSpeed; return e }},
		{"bandwidth zero", func(e *Environment) { e.Bandwidth = 0 },
			func(e Environment) Environment { e.Bandwidth = def.Bandwidth; return e }},
		{"latency negative", func(e *Environment) { e.LatencyMS = -1 },
			func(e Environment) Environment { e.LatencyMS = def.LatencyMS; return e }},
		{"sender speed negative", func(e *Environment) { e.SenderSpeed = -5 },
			func(e Environment) Environment { e.SenderSpeed = def.SenderSpeed; return e }},
		{"bandwidth NaN", func(e *Environment) { e.Bandwidth = math.NaN() },
			func(e Environment) Environment { e.Bandwidth = def.Bandwidth; return e }},
		{"receiver speed +Inf", func(e *Environment) { e.ReceiverSpeed = math.Inf(1) },
			func(e Environment) Environment { e.ReceiverSpeed = def.ReceiverSpeed; return e }},
		{"latency NaN", func(e *Environment) { e.LatencyMS = math.NaN() },
			func(e Environment) Environment { e.LatencyMS = def.LatencyMS; return e }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := good
			tc.mut(&env)
			got, want := env.Sanitize(), tc.want(good)
			if got != want {
				t.Fatalf("Sanitize(%+v) = %+v, want %+v", env, got, want)
			}
		})
	}

	t.Run("valid environment unchanged", func(t *testing.T) {
		if got := good.Sanitize(); got != good {
			t.Fatalf("valid environment changed: %+v", got)
		}
	})
	t.Run("zero latency is legitimate", func(t *testing.T) {
		env := good
		env.LatencyMS = 0
		if got := env.Sanitize(); got.LatencyMS != 0 {
			t.Fatalf("zero latency must survive sanitize: %+v", got)
		}
	})
}

// TestPSEVectorDegenerateEnvironment: pricing under a degenerate
// environment must never yield Inf/NaN axes or price the wire as free.
func TestPSEVectorDegenerateEnvironment(t *testing.T) {
	st := Stat{Count: 10, Bytes: 1000, ModWork: 500, DemodWork: 500, Prob: 1}

	finite := func(t *testing.T, v Vector) {
		t.Helper()
		for _, x := range []float64{v.Bytes, v.LatencyMS, v.SenderWork, v.ReceiverWork, v.FailureRate} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("vector axis not finite: %+v", v)
			}
		}
	}

	envs := []Environment{
		{},                              // all zero
		{Bandwidth: math.NaN()},         // NaN bandwidth
		{SenderSpeed: -1, Bandwidth: 0}, // negatives
		{LatencyMS: math.Inf(1)},        // infinite latency
	}
	for _, env := range envs {
		v := PSEVector(st, env)
		finite(t, v)
		// With default fallbacks the transfer term must be priced, not
		// free: latency strictly above the pure-work floor.
		def := DefaultEnvironment()
		floor := st.ModWork/def.SenderSpeed + st.DemodWork/def.ReceiverSpeed
		if v.LatencyMS <= floor {
			t.Fatalf("degenerate env %+v priced transfer as free: lat %v <= work floor %v", env, v.LatencyMS, floor)
		}
	}
}

// TestDominanceNotPoisonedByDegenerateEnv: two cuts priced under a NaN
// environment must still order — the cheaper-bytes cut dominates when all
// else is equal.
func TestDominanceNotPoisonedByDegenerateEnv(t *testing.T) {
	env := Environment{Bandwidth: math.NaN(), SenderSpeed: 0, ReceiverSpeed: -3, LatencyMS: math.Inf(1)}
	small := PSEVector(Stat{Count: 1, Bytes: 100, Prob: 1}, env)
	big := PSEVector(Stat{Count: 1, Bytes: 10_000, Prob: 1}, env)
	if !small.Dominates(big) {
		t.Fatalf("small cut must dominate big cut even under degenerate env: small %+v big %+v", small, big)
	}
	if big.Dominates(small) {
		t.Fatal("dominance inverted under degenerate env")
	}
}
