package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrameSize bounds a single frame to guard against corrupt length
// prefixes.
const MaxFrameSize = 256 << 20

// HeaderSize is the per-frame overhead of the length-prefix framing, used
// by the channel metrics to report on-wire byte counts consistently across
// transports.
const HeaderSize = 4

// WriteFrame writes one length-prefixed frame to a byte stream. It is the
// framing the TCP transport speaks; it lives here (not in internal/wire) so
// that wire stays a pure message codec.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readChunk bounds how much ReadFrame allocates ahead of the bytes it has
// actually received: a corrupt or hostile length prefix claiming a huge
// frame costs at most one chunk of memory before the stream runs dry.
const readChunk = 1 << 20

// ReadFrame reads one length-prefixed frame from a byte stream. The
// payload buffer grows incrementally as bytes arrive rather than being
// allocated up front from the (untrusted) length prefix, so a poisoned
// header cannot force a MaxFrameSize allocation from a short stream.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > MaxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	if n <= readChunk {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	payload := make([]byte, readChunk, 2*readChunk)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	for len(payload) < n {
		step := n - len(payload)
		if step > readChunk {
			step = readChunk
		}
		old := len(payload)
		payload = append(payload, make([]byte, step)...)
		if _, err := io.ReadFull(r, payload[old:]); err != nil {
			return nil, err
		}
	}
	return payload, nil
}
