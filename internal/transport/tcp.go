package transport

import (
	"fmt"
	"net"
	"sync"
)

// TCP is the stdlib-socket transport: length-prefix framing over a TCP
// byte stream. The zero value is ready to use.
type TCP struct{}

// Listen implements Transport.
func (TCP) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return &tcpListener{ln: ln}, nil
}

// Dial implements Transport.
func (TCP) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	return &tcpConn{c: c}, nil
}

type tcpListener struct {
	ln net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: c}, nil
}

func (l *tcpListener) Close() error { return l.ln.Close() }

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

// tcpConn frames a net.Conn. The write mutex keeps a frame's header and
// payload contiguous when multiple goroutines write; the read mutex does
// the same for the header+payload pair of a read.
type tcpConn struct {
	c       net.Conn
	readMu  sync.Mutex
	writeMu sync.Mutex
}

func (c *tcpConn) ReadFrame() ([]byte, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	return ReadFrame(c.c)
}

func (c *tcpConn) WriteFrame(payload []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteFrame(c.c, payload)
}

func (c *tcpConn) Close() error { return c.c.Close() }

func (c *tcpConn) LocalAddr() string { return c.c.LocalAddr().String() }

func (c *tcpConn) RemoteAddr() string { return c.c.RemoteAddr().String() }
