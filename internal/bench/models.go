package bench

import (
	"fmt"
	"io"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir/interp"
	"methodpart/internal/simnet"
)

// ModelRow is one cost model's outcome on the mixed image workload —
// the extension experiment comparing the deployment-time model choice
// (§2.2: "different sender/receiver pairs may choose different cost
// models").
type ModelRow struct {
	// Model is the cost model's wire name.
	Model string
	// FPS is the throughput.
	FPS float64
	// KBPerFrame is the mean payload shipped per frame.
	KBPerFrame float64
	// ClientWorkPerFrame is the mean receiver-side work per frame
	// (work units — the battery-relevant quantity).
	ClientWorkPerFrame float64
	// ClientEnergyPerFrame is the receiver energy per frame in microjoule
	// under the Energy model's coefficients (radio + CPU).
	ClientEnergyPerFrame float64
}

// CompareModels runs the adaptive MP implementation under each cost model
// on the mixed image workload. The data-size model minimizes bytes, the
// exec-time model minimizes the pipeline bottleneck, and the energy model
// minimizes receiver battery drain — three different steady states of the
// same handler and runtime.
func CompareModels(cfg ImageConfig) ([]ModelRow, error) {
	energy := costmodel.NewEnergy()
	models := []costmodel.Model{
		costmodel.NewDataSize(),
		costmodel.NewExecTime(),
		energy,
	}
	rows := make([]ModelRow, 0, len(models))
	for _, model := range models {
		f, err := newImageFixtureWith(cfg, model)
		if err != nil {
			return nil, fmt.Errorf("bench: compare %s: %w", model.Name(), err)
		}
		server := simnet.NewHost("server", cfg.ServerSpeed)
		client := simnet.NewHost("client", cfg.ClientSpeed)
		link := &simnet.Link{BytesPerMS: cfg.LinkBytesPerMS, LatencyMS: cfg.LinkLatencyMS}
		rc := RunConfig{
			Compiled:         f.c,
			SenderEnv:        interp.NewEnv(f.classes, f.builtins()),
			ReceiverEnv:      interp.NewEnv(f.classes, f.builtins()),
			Sender:           server,
			Receiver:         client,
			Link:             link,
			Frames:           cfg.Frames,
			Workload:         imageWorkload(cfg, ScenarioMixed),
			OverheadBytes:    64,
			Warmup:           10,
			Adaptive:         true,
			ReconfigAtSender: true,
			Nominal: costmodel.Environment{
				SenderSpeed:   cfg.ServerSpeed,
				ReceiverSpeed: cfg.ClientSpeed,
				Bandwidth:     cfg.LinkBytesPerMS,
				LatencyMS:     cfg.LinkLatencyMS,
			},
		}
		res, err := Run(rc)
		if err != nil {
			return nil, fmt.Errorf("bench: compare %s: %w", model.Name(), err)
		}
		frames := float64(res.Frames)
		bytesPerFrame := float64(res.Bytes) / frames
		workPerFrame := float64(res.DemodWork) / frames
		rows = append(rows, ModelRow{
			Model:              model.Name(),
			FPS:                res.FPS,
			KBPerFrame:         bytesPerFrame / 1024,
			ClientWorkPerFrame: workPerFrame,
			ClientEnergyPerFrame: (bytesPerFrame*energy.RxNanojoulePerByte +
				workPerFrame*energy.CPUNanojoulePerUnit) / 1000,
		})
	}
	return rows, nil
}

// WriteModelComparison renders the comparison.
func WriteModelComparison(w io.Writer, rows []ModelRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Model,
			fmt.Sprintf("%.2f", r.FPS),
			fmt.Sprintf("%.1f", r.KBPerFrame),
			fmt.Sprintf("%.0f", r.ClientWorkPerFrame),
			fmt.Sprintf("%.1f", r.ClientEnergyPerFrame),
		})
	}
	writeTable(w, "Cost-model comparison: adaptive MP on the mixed image workload (extension)",
		[]string{"Cost model", "FPS", "KB/frame", "Client work/frame", "Client energy (uJ/frame)"}, out)
}
