// Package imaging implements the wireless image-streaming application of
// §5.1: ImageData events, the resize transform the handler applies, and the
// native display sink that pins the end of the handler to the receiver
// (the iPAQ in the paper).
package imaging

import (
	"fmt"

	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
	"methodpart/internal/mir/interp"
)

// HandlerName is the image handler's name.
const HandlerName = "show"

// HandlerSource returns the image-display handler for a given display
// size: check the event type, resize to the display, hand to the native
// display routine. Under the data-size model this yields three PSEs — the
// filter path, before the resize (ship the original) and after it (ship the
// display-sized image) — the choice space of Table 2.
func HandlerSource(display int) string {
	return fmt.Sprintf(`
class ImageData {
  width int
  height int
  buff bytes
}

func show(event) {
  ok = instanceof event ImageData
  ifnot ok goto done
  img = cast event ImageData
  d = const %d
  out = call resizeTo img d d
  call displayImage out
done:
  return
}
`, display)
}

// HandlerUnit assembles the handler for a display size.
func HandlerUnit(display int) *asm.Unit {
	return asm.MustParse(HandlerSource(display))
}

// RichHandlerName is the two-transform handler's name.
const RichHandlerName = "showRich"

// RichHandlerSource returns the "resize and/or downsample" variant the
// paper's §1 describes: the handler first halves the pixel depth
// (downsample), then resizes to the display. This yields a deeper PSE
// ladder — ship the original, ship after depth reduction, or ship the final
// display-sized image — three genuinely different size/compute trade-offs.
func RichHandlerSource(display int) string {
	return fmt.Sprintf(`
class ImageData {
  width int
  height int
  buff bytes
}

func showRich(event) {
  ok = instanceof event ImageData
  ifnot ok goto done
  img = cast event ImageData
  half = call downsample img
  d = const %d
  out = call resizeTo half d d
  call displayImage out
done:
  return
}
`, display)
}

// RichHandlerUnit assembles the rich handler.
func RichHandlerUnit(display int) *asm.Unit {
	return asm.MustParse(RichHandlerSource(display))
}

// NewFrame builds an ImageData event of w×h pixels (one byte per pixel,
// deterministic contents).
func NewFrame(w, h int, seed int64) *mir.Object {
	obj := mir.NewObject("ImageData")
	obj.Fields["width"] = mir.Int(int64(w))
	obj.Fields["height"] = mir.Int(int64(h))
	buff := make(mir.Bytes, w*h)
	s := uint64(seed)*2654435761 + 1
	for i := range buff {
		s = s*6364136223846793005 + 1442695040888963407
		buff[i] = byte(s >> 56)
	}
	obj.Fields["buff"] = buff
	return obj
}

// Display records the frames shown at the receiver.
type Display struct {
	// Frames are the displayed images in arrival order.
	Frames []*mir.Object
	// Pixels is the total pixel count displayed.
	Pixels int64
}

// Builtins returns the handler's builtin registry: resizeTo (movable, cost
// proportional to input+output pixels) and displayImage (native, cost
// proportional to displayed pixels). The returned Display observes
// receiver-side output; pass nil-observing registries to senders by simply
// ignoring the Display.
func Builtins() (*interp.Registry, *Display) {
	disp := &Display{}
	reg := interp.NewRegistry()
	reg.MustRegister(interp.Builtin{
		Name: "resizeTo",
		Fn: func(env *interp.Env, args []mir.Value) (mir.Value, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("resizeTo wants (img, w, h)")
			}
			img, ok := args[0].(*mir.Object)
			if !ok {
				return nil, fmt.Errorf("resizeTo: image is %s", args[0].Kind())
			}
			w, ok := args[1].(mir.Int)
			if !ok {
				return nil, fmt.Errorf("resizeTo: width is %s", args[1].Kind())
			}
			h, ok := args[2].(mir.Int)
			if !ok {
				return nil, fmt.Errorf("resizeTo: height is %s", args[2].Kind())
			}
			return Resize(img, int(w), int(h))
		},
		Cost: ResizeCost,
	})
	reg.MustRegister(interp.Builtin{
		Name: "downsample",
		Fn: func(env *interp.Env, args []mir.Value) (mir.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("downsample wants (img)")
			}
			img, ok := args[0].(*mir.Object)
			if !ok {
				return nil, fmt.Errorf("downsample: image is %s", args[0].Kind())
			}
			return Downsample(img)
		},
		Cost: func(args []mir.Value) int64 {
			if len(args) == 1 {
				if img, ok := args[0].(*mir.Object); ok {
					return pixels(img)
				}
			}
			return 1
		},
	})
	reg.MustRegister(interp.Builtin{
		Name:   "displayImage",
		Native: true,
		Fn: func(env *interp.Env, args []mir.Value) (mir.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("displayImage wants 1 arg")
			}
			img, ok := args[0].(*mir.Object)
			if !ok {
				return nil, fmt.Errorf("displayImage: arg is %s", args[0].Kind())
			}
			disp.Frames = append(disp.Frames, img)
			if w, ok := img.Fields["width"].(mir.Int); ok {
				if h, ok := img.Fields["height"].(mir.Int); ok {
					disp.Pixels += int64(w) * int64(h)
				}
			}
			return mir.Null{}, nil
		},
		Cost: func(args []mir.Value) int64 {
			if len(args) == 1 {
				if img, ok := args[0].(*mir.Object); ok {
					return pixels(img)
				}
			}
			return 1
		},
	})
	return reg, disp
}

// Resize nearest-neighbour scales img to w×h, returning a new ImageData.
func Resize(img *mir.Object, w, h int) (*mir.Object, error) {
	sw, ok := img.Fields["width"].(mir.Int)
	if !ok {
		return nil, fmt.Errorf("resize: width is %v", img.Fields["width"])
	}
	sh, ok := img.Fields["height"].(mir.Int)
	if !ok {
		return nil, fmt.Errorf("resize: height is %v", img.Fields["height"])
	}
	sbuf, ok := img.Fields["buff"].(mir.Bytes)
	if !ok {
		return nil, fmt.Errorf("resize: buff is %v", img.Fields["buff"])
	}
	if w <= 0 || h <= 0 || sw <= 0 || sh <= 0 {
		return nil, fmt.Errorf("resize: bad dimensions %dx%d from %dx%d", w, h, sw, sh)
	}
	out := mir.NewObject("ImageData")
	out.Fields["width"] = mir.Int(int64(w))
	out.Fields["height"] = mir.Int(int64(h))
	buff := make(mir.Bytes, w*h)
	for y := 0; y < h; y++ {
		sy := y * int(sh) / h
		row := sy * int(sw)
		for x := 0; x < w; x++ {
			sx := x * int(sw) / w
			idx := row + sx
			if idx < len(sbuf) {
				buff[y*w+x] = sbuf[idx]
			}
		}
	}
	out.Fields["buff"] = buff
	return out, nil
}

// Downsample halves an image's resolution by averaging 2x2 pixel blocks,
// quartering its size — the lighter of the two data-reduction transforms.
func Downsample(img *mir.Object) (*mir.Object, error) {
	sw, ok := img.Fields["width"].(mir.Int)
	if !ok {
		return nil, fmt.Errorf("downsample: width is %v", img.Fields["width"])
	}
	sh, ok := img.Fields["height"].(mir.Int)
	if !ok {
		return nil, fmt.Errorf("downsample: height is %v", img.Fields["height"])
	}
	sbuf, ok := img.Fields["buff"].(mir.Bytes)
	if !ok {
		return nil, fmt.Errorf("downsample: buff is %v", img.Fields["buff"])
	}
	w, h := int(sw)/2, int(sh)/2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := mir.NewObject("ImageData")
	out.Fields["width"] = mir.Int(int64(w))
	out.Fields["height"] = mir.Int(int64(h))
	buff := make(mir.Bytes, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum, cnt int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					sx, sy := 2*x+dx, 2*y+dy
					if sx < int(sw) && sy < int(sh) {
						idx := sy*int(sw) + sx
						if idx < len(sbuf) {
							sum += int(sbuf[idx])
							cnt++
						}
					}
				}
			}
			if cnt > 0 {
				buff[y*w+x] = byte(sum / cnt)
			}
		}
	}
	out.Fields["buff"] = buff
	return out, nil
}

// ResizeCost estimates resize work: reading the source plus writing the
// destination, in pixel units.
func ResizeCost(args []mir.Value) int64 {
	var in, out int64 = 1, 1
	if len(args) == 3 {
		if img, ok := args[0].(*mir.Object); ok {
			in = pixels(img)
		}
		w, wok := args[1].(mir.Int)
		h, hok := args[2].(mir.Int)
		if wok && hok {
			out = int64(w) * int64(h)
		}
	}
	return in + out
}

func pixels(img *mir.Object) int64 {
	w, wok := img.Fields["width"].(mir.Int)
	h, hok := img.Fields["height"].(mir.Int)
	if !wok || !hok {
		return 1
	}
	return int64(w) * int64(h)
}
