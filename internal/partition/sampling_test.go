package partition_test

import (
	"sync"
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/testprog"
)

// countingProbe counts profiling events.
type countingProbe struct {
	mu       sync.Mutex
	messages int
	crosses  int
	splits   int
}

func (p *countingProbe) Message(int64) {
	p.mu.Lock()
	p.messages++
	p.mu.Unlock()
}

func (p *countingProbe) Cross(int32, int64, int64) {
	p.mu.Lock()
	p.crosses++
	p.mu.Unlock()
}

func (p *countingProbe) SplitAt(int32, int64, int64) {
	p.mu.Lock()
	p.splits++
	p.mu.Unlock()
}

// TestProfileSampling verifies §2.5's periodic-sampling option: with
// SampleEvery=N the per-PSE profiling code runs on 1/N of the messages
// while the per-message accounting stays complete.
func TestProfileSampling(t *testing.T) {
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, err := u.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	oracleReg, _ := testprog.PushBuiltins()
	c, err := partition.Compile(prog, classes, oracleReg, costmodel.NewDataSize())
	if err != nil {
		t.Fatal(err)
	}
	run := func(every uint64) *countingProbe {
		reg, _ := testprog.PushBuiltins()
		mod := partition.NewModulator(c, interp.NewEnv(classes, reg))
		probe := &countingProbe{}
		mod.Probe = probe
		mod.SampleEvery = every
		plan, err := partition.NewPlan(c.NumPSEs(), 1, []int32{1, 3}, partition.AllProfileIDs(c))
		if err != nil {
			t.Fatal(err)
		}
		mod.SetPlan(plan)
		for i := 0; i < 40; i++ {
			if _, err := mod.Process(testprog.NewImageData(8, 8)); err != nil {
				t.Fatal(err)
			}
		}
		return probe
	}
	full := run(0)
	sampled := run(4)
	if full.messages != 40 || sampled.messages != 40 {
		t.Fatalf("message accounting incomplete: %d / %d", full.messages, sampled.messages)
	}
	if full.splits != 40 || sampled.splits != 40 {
		t.Fatalf("split accounting incomplete: %d / %d", full.splits, sampled.splits)
	}
	if sampled.crosses*3 > full.crosses {
		t.Errorf("sampling did not reduce crossings: %d sampled vs %d full", sampled.crosses, full.crosses)
	}
	if sampled.crosses == 0 {
		t.Error("sampling eliminated profiling entirely")
	}
}
