package jecho

import (
	"fmt"
	"sync"

	"methodpart/internal/mir"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// Broker implements Third-Party Derivation (the paper's §7 future work,
// building on its Active Brokers [28]): modulators operate inside a third
// party instead of the message source. Upstream sources push raw events to
// the broker; downstream subscribers install their handlers *at the
// broker*, whose per-subscription modulators, profiling, plans and send
// pipelines work exactly as at a first-party sender. Sources stay
// completely unaware of the subscribers' handlers — the paper's decoupling
// pushed one hop further.
type Broker struct {
	pub      *Publisher
	upstream transport.Listener
	logf     func(format string, args ...any)

	mu       sync.Mutex
	received uint64
	closed   bool
	wg       sync.WaitGroup
}

// BrokerConfig configures a broker.
type BrokerConfig struct {
	// DownstreamAddr is where subscribers connect (same protocol as a
	// Publisher).
	DownstreamAddr string
	// UpstreamAddr is where event sources connect.
	UpstreamAddr string
	// Publisher options are forwarded; its Transport (nil = TCP) carries
	// both the downstream and the upstream side.
	Publisher PublisherConfig
}

// NewBroker starts both listeners.
func NewBroker(cfg BrokerConfig) (*Broker, error) {
	pcfg := cfg.Publisher
	pcfg.Addr = cfg.DownstreamAddr
	pub, err := NewPublisher(pcfg)
	if err != nil {
		return nil, err
	}
	// NewPublisher defaulted the transport; reuse the same one upstream.
	up, err := pub.cfg.Transport.Listen(cfg.UpstreamAddr)
	if err != nil {
		_ = pub.Close()
		return nil, fmt.Errorf("jecho: broker upstream listen: %w", err)
	}
	b := &Broker{pub: pub, upstream: up, logf: pub.cfg.Logf}
	b.wg.Add(1)
	go b.acceptUpstream()
	return b, nil
}

// DownstreamAddr returns the subscriber-facing address.
func (b *Broker) DownstreamAddr() string { return b.pub.Addr() }

// UpstreamAddr returns the source-facing address.
func (b *Broker) UpstreamAddr() string { return b.upstream.Addr() }

// Subscribers returns the downstream subscription count.
func (b *Broker) Subscribers() int { return b.pub.Subscribers() }

// Subscriptions snapshots the downstream subscriptions with their channel
// metrics.
func (b *Broker) Subscriptions() []SubscriptionInfo { return b.pub.Subscriptions() }

// Received returns the number of upstream events accepted.
func (b *Broker) Received() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.received
}

// Close stops both sides.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	err := b.upstream.Close()
	if perr := b.pub.Close(); err == nil {
		err = perr
	}
	b.wg.Wait()
	return err
}

func (b *Broker) acceptUpstream() {
	defer b.wg.Done()
	for {
		conn, err := b.upstream.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go b.serveSource(conn)
	}
}

// serveSource relays one source's raw event stream into the broker's
// modulators.
func (b *Broker) serveSource(conn transport.Conn) {
	defer b.wg.Done()
	defer conn.Close()
	for {
		frame, err := conn.ReadFrame()
		if err != nil {
			return
		}
		msg, err := wire.Unmarshal(frame)
		if err != nil {
			b.logf("jecho broker: bad upstream frame: %v", err)
			return
		}
		raw, ok := msg.(*wire.Raw)
		if !ok {
			b.logf("jecho broker: upstream sent %T, want Raw", msg)
			continue
		}
		b.mu.Lock()
		b.received++
		b.mu.Unlock()
		if _, err := b.pub.Publish(raw.Event); err != nil {
			b.logf("jecho broker: publish: %v", err)
		}
	}
}

// Source is a lightweight upstream event feed into a broker.
type Source struct {
	conn    transport.Conn
	writeMu sync.Mutex
	seq     uint64
}

// NewSource dials a broker's upstream address over TCP.
func NewSource(addr string) (*Source, error) {
	return NewSourceVia(transport.Default(), addr)
}

// NewSourceVia dials a broker's upstream address over the given transport.
func NewSourceVia(tr transport.Transport, addr string) (*Source, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("jecho: source dial: %w", err)
	}
	return &Source{conn: conn}, nil
}

// Emit pushes one raw event to the broker.
func (s *Source) Emit(event mir.Value) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.seq++
	data, err := wire.Marshal(&wire.Raw{Handler: "*", Seq: s.seq, Event: event})
	if err != nil {
		return err
	}
	return s.conn.WriteFrame(data)
}

// Close tears the feed down.
func (s *Source) Close() error { return s.conn.Close() }
