package analysis

import "sort"

// VarSet is a set of register names.
type VarSet map[string]bool

// NewVarSet builds a set from names.
func NewVarSet(names ...string) VarSet {
	s := make(VarSet, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

// Clone copies the set.
func (s VarSet) Clone() VarSet {
	out := make(VarSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// Equal reports set equality.
func (s VarSet) Equal(o VarSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// SubsetOf reports s ⊆ o.
func (s VarSet) SubsetOf(o VarSet) bool {
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// Intersect returns s ∩ o.
func (s VarSet) Intersect(o VarSet) VarSet {
	out := make(VarSet)
	for k := range s {
		if o[k] {
			out[k] = true
		}
	}
	return out
}

// Sorted returns the members in sorted order.
func (s VarSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Liveness holds the per-node live-variable IN and OUT sets of a Unit Graph.
// Index is the node index; the virtual exit node has empty sets.
type Liveness struct {
	// In[i] is the set of variables live on entry to node i.
	In []VarSet
	// Out[i] is the set of variables live on exit from node i.
	Out []VarSet
}

// ComputeLiveness runs the standard backward may-analysis over the UG.
func ComputeLiveness(ug *UnitGraph) *Liveness {
	n := ug.Exit + 1
	lv := &Liveness{
		In:  make([]VarSet, n),
		Out: make([]VarSet, n),
	}
	for i := 0; i < n; i++ {
		lv.In[i] = make(VarSet)
		lv.Out[i] = make(VarSet)
	}
	changed := true
	for changed {
		changed = false
		// Iterate in reverse node order for faster convergence.
		for i := n - 1; i >= 0; i-- {
			if ug.IsExit(i) {
				continue
			}
			out := make(VarSet)
			for _, s := range ug.G.Succ(i) {
				for v := range lv.In[s] {
					out[v] = true
				}
			}
			in := out.Clone()
			instr := &ug.Prog.Instrs[i]
			for _, d := range instr.Defs() {
				delete(in, d)
			}
			for _, u := range instr.Uses() {
				in[u] = true
			}
			if !out.Equal(lv.Out[i]) || !in.Equal(lv.In[i]) {
				lv.Out[i] = out
				lv.In[i] = in
				changed = true
			}
		}
	}
	return lv
}

// Inter computes INTER(e) = OUT(e.From) ∩ IN(e.To): the live variables that
// must be handed over if the handler is split at edge e (§2.4).
func (lv *Liveness) Inter(e Edge) VarSet {
	return lv.Out[e.From].Intersect(lv.In[e.To])
}

// DefUse is one Data Dependency Graph edge: the value defined at Def is used
// at Use.
type DefUse struct {
	// Def is the defining node.
	Def int
	// Use is the using node.
	Use int
	// Var is the register carrying the dependence.
	Var string
}

// ComputeDDG builds the Data Dependency Graph via reaching definitions.
// Program parameters act as definitions at a virtual entry before node 0.
func ComputeDDG(ug *UnitGraph) []DefUse {
	type def struct {
		node int // -1 for parameters
		v    string
	}
	prog := ug.Prog
	n := len(prog.Instrs)

	// Collect all definitions.
	var defs []def
	for i := 0; i < n; i++ {
		for _, d := range prog.Instrs[i].Defs() {
			defs = append(defs, def{node: i, v: d})
		}
	}
	paramDefs := make(map[string]int, len(prog.Params))
	for _, prm := range prog.Params {
		paramDefs[prm] = len(defs)
		defs = append(defs, def{node: -1, v: prm})
	}
	defIdxByNodeVar := make(map[[2]interface{}]int)
	defsOfVar := make(map[string][]int)
	for i, d := range defs {
		defIdxByNodeVar[[2]interface{}{d.node, d.v}] = i
		defsOfVar[d.v] = append(defsOfVar[d.v], i)
	}

	// Reaching definitions: bitsets as []bool (programs are small).
	nd := len(defs)
	in := make([][]bool, n)
	out := make([][]bool, n)
	for i := 0; i < n; i++ {
		in[i] = make([]bool, nd)
		out[i] = make([]bool, nd)
	}
	entry := make([]bool, nd)
	for _, prm := range prog.Params {
		entry[paramDefs[prm]] = true
	}
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			newIn := make([]bool, nd)
			if i == 0 {
				copy(newIn, entry)
			}
			for _, p := range ug.G.Pred(i) {
				if p == ug.Exit {
					continue
				}
				for b := 0; b < nd; b++ {
					if out[p][b] {
						newIn[b] = true
					}
				}
			}
			newOut := make([]bool, nd)
			copy(newOut, newIn)
			for _, d := range prog.Instrs[i].Defs() {
				// Kill all other defs of d, generate this one.
				for _, di := range defsOfVar[d] {
					newOut[di] = false
				}
				newOut[defIdxByNodeVar[[2]interface{}{i, d}]] = true
			}
			if !boolsEqual(newIn, in[i]) || !boolsEqual(newOut, out[i]) {
				in[i] = newIn
				out[i] = newOut
				changed = true
			}
		}
	}

	// Def-use edges: for each use of v at node i, every reaching def of v.
	var edges []DefUse
	seen := make(map[DefUse]bool)
	for i := 0; i < n; i++ {
		for _, u := range prog.Instrs[i].Uses() {
			for _, di := range defsOfVar[u] {
				if !in[i][di] || defs[di].node < 0 {
					continue // parameter defs carry no intra-UG dependence
				}
				du := DefUse{Def: defs[di].node, Use: i, Var: u}
				if !seen[du] {
					seen[du] = true
					edges = append(edges, du)
				}
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].Def != edges[b].Def {
			return edges[a].Def < edges[b].Def
		}
		if edges[a].Use != edges[b].Use {
			return edges[a].Use < edges[b].Use
		}
		return edges[a].Var < edges[b].Var
	})
	return edges
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
