// Imagestream: the paper's first application (§5.1) over real TCP. A
// publisher streams image frames; a subscriber installs the display handler
// with the data-size cost model. Mid-stream the frame size changes from
// smaller-than-display to larger-than-display, and the runtime moves the
// split point from "ship the original" to "resize at the sender", which is
// visible in the bytes sent per frame.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"methodpart"
	"methodpart/internal/imaging"
)

const display = 160

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pubReg, _ := imaging.Builtins()
	pub, err := methodpart.NewPublisher(methodpart.PublisherConfig{
		Addr:           "127.0.0.1:0",
		Builtins:       pubReg,
		FeedbackEvery:  2,
		QueueDepth:     16,                    // bound each subscription's send queue
		OverflowPolicy: methodpart.DropOldest, // a slow display sheds stale frames
	})
	if err != nil {
		return err
	}
	defer pub.Close()

	subReg, disp := imaging.Builtins()
	var (
		mu     sync.Mutex
		splits []int32
	)
	sub, err := methodpart.Subscribe(methodpart.SubscriberConfig{
		Addr:          pub.Addr(),
		Name:          "handheld",
		Source:        imaging.HandlerSource(display),
		Handler:       imaging.HandlerName,
		CostModel:     "datasize",
		Natives:       []string{"displayImage"},
		Builtins:      subReg,
		Environment:   methodpart.DefaultEnvironment(),
		ReconfigEvery: 2,
		DiffThreshold: 0.1,
		OnResult: func(r *methodpart.HandlerResult) {
			mu.Lock()
			splits = append(splits, r.SplitPSE)
			mu.Unlock()
		},
	})
	if err != nil {
		return err
	}
	defer sub.Close()

	for pub.Subscribers() == 0 {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("publisher at %s, handler installed with %d PSEs\n",
		pub.Addr(), sub.Compiled().NumPSEs())

	stream := func(size, frames int, label string) error {
		fmt.Printf("\n--- streaming %d %s frames (%dx%d, display %dx%d) ---\n",
			frames, label, size, size, display, display)
		for i := 0; i < frames; i++ {
			if _, err := pub.Publish(imaging.NewFrame(size, size, int64(i))); err != nil {
				return err
			}
			time.Sleep(2 * time.Millisecond) // frame pacing
		}
		return nil
	}
	if err := stream(80, 20, "small"); err != nil {
		return err
	}
	if err := stream(220, 20, "large"); err != nil {
		return err
	}
	// Let the tail drain.
	deadline := time.Now().Add(5 * time.Second)
	for sub.Processed() < 40 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\nsplit point per frame (0=raw, higher=later in the handler):\n  %v\n", splits)
	fmt.Printf("frames displayed at receiver: %d (all resized to %dx%d)\n", len(disp.Frames), display, display)
	last := splits[len(splits)-1]
	fmt.Printf("final split PSE: %d — the transform now runs at the sender\n", last)
	for _, info := range pub.Subscriptions() {
		m := info.Metrics
		fmt.Printf("channel %s: published=%d dropped=%d queueHW=%d bytesOnWire=%d bytesSaved=%d planFlips=%d\n",
			info.ID, m.Published, m.Dropped, m.QueueHighWater, m.BytesOnWire, m.BytesSaved, m.PlanFlips)
	}
	return nil
}
