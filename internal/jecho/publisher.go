package jecho

import (
	"errors"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/linkest"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/obsv"
	"methodpart/internal/partition"
	"methodpart/internal/profileunit"
	"methodpart/internal/reconfig"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// PublisherConfig configures an event-channel publisher.
type PublisherConfig struct {
	// Addr is the listen address in the transport's notation (e.g.
	// "127.0.0.1:0" for TCP, "" for an auto-allocated Mem address).
	Addr string
	// Transport carries subscriptions (nil = TCP).
	Transport transport.Transport
	// Builtins are the movable library functions available to handlers at
	// the sender (natives need not be present; they never run here).
	Builtins *interp.Registry
	// FeedbackEvery is the sender-side profiling report period in
	// messages (0 = 10).
	FeedbackEvery uint64
	// ProfileSampleEvery applies §2.5's periodic profiling sampling to
	// every modulator: >1 profiles only each Nth message (0/1 = all).
	ProfileSampleEvery uint64
	// QueueDepth bounds each subscription's outbound send queue
	// (0 = DefaultQueueDepth).
	QueueDepth int
	// OverflowPolicy selects the behaviour when a subscription's queue is
	// full (default Block).
	OverflowPolicy OverflowPolicy
	// BatchBytes enables wire-level event batching: when the outbound
	// queue holds more than one event frame, the sender coalesces up to
	// BatchBytes of payload into a single batch wire frame (0 disables
	// batching). Batching only engages for subscribers speaking protocol
	// v4 or newer; a v3 peer transparently receives unbatched frames.
	BatchBytes int
	// BatchDelay is how long the sender lingers after the first frame of
	// a batch for more to arrive, when the queue alone did not reach
	// BatchBytes (0 = no lingering: batch only what is already queued).
	// Only meaningful with BatchBytes > 0.
	BatchDelay time.Duration
	// ReplayRingBytes bounds the per-subscription replay ring backing
	// at-least-once delivery (protocol v5): sent frames stay retained
	// until the subscriber's cumulative ack, up to this many payload
	// bytes; beyond it the oldest unacked frames are evicted (counted as
	// RingEvictions, surfacing later as DataLoss if the subscriber needed
	// them). 0 = DefaultReplayRingBytes; negative disables retention —
	// events are still sequenced and loss still detected, but nothing can
	// be replayed. Only subscriptions requesting AtLeastOnce pay any of
	// this; best-effort subscriptions never touch the ring.
	ReplayRingBytes int
	// HeartbeatInterval is the idle-liveness probe period per
	// subscription (0 = DefaultHeartbeatInterval, <0 disables
	// heartbeats and silence detection).
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many silent heartbeat periods retire a peer:
	// the read window is HeartbeatInterval × HeartbeatMisses
	// (0 = DefaultHeartbeatMisses, <0 disables silence detection only).
	HeartbeatMisses int
	// WriteTimeout bounds each frame write so a wedged peer fails its
	// sender goroutine instead of blocking it forever
	// (0 = DefaultWriteTimeout, <0 disables).
	WriteTimeout time.Duration
	// BreakerThreshold is how many per-PSE failures (subscriber NACKs or
	// send-side modulation faults) within BreakerWindow trip that PSE's
	// circuit breaker, degrading the subscription's plan away from it
	// (0 = DefaultBreakerThreshold, <0 disables the breaker).
	BreakerThreshold int
	// BreakerWindow is the failure-counting window
	// (0 = DefaultBreakerWindow, <0 disables).
	BreakerWindow time.Duration
	// BreakerCooldown is how long a tripped PSE stays excluded before a
	// half-open probe re-admits it (0 = DefaultBreakerCooldown,
	// <0 disables).
	BreakerCooldown time.Duration
	// SplitPolicy is the SLO policy the per-subscription degrade units use
	// when a breaker trip forces a local plan re-selection: which Pareto
	// operating point the replacement plan takes. The zero value
	// (reconfig.Balanced) keeps the legacy scalar min-cut. Routine,
	// cost-optimal selection remains the subscriber's job (see
	// SubscriberConfig.SplitPolicy); this knob only shapes degraded plans.
	SplitPolicy reconfig.SLOPolicy
	// LinkEstimateInterval enables per-subscription link estimation when
	// > 0: the publisher measures RTT from heartbeat echoes (its idle
	// heartbeats and echo replies double as probes; v6 subscribers reflect
	// them) and effective bandwidth from the send path's bytes-on-wire
	// over wall time, and refreshes the degrade unit's environment at this
	// period so breaker-forced plan re-selections price against the
	// measured link. 0 (the default) keeps the neutral environment.
	LinkEstimateInterval time.Duration
	// LinkEstimateHalfLife is the estimator's EWMA half-life
	// (0 = linkest.DefaultHalfLife).
	LinkEstimateHalfLife time.Duration
	// LinkWarmupSamples is how many samples each measured axis needs
	// before it overrides the neutral environment
	// (0 = linkest.DefaultMinSamples).
	LinkWarmupSamples int
	// FlipMargin enables plan-flip hysteresis on the degrade units when
	// > 0 (see SubscriberConfig.FlipMargin). 0 disables.
	FlipMargin float64
	// FlipConfirmations is the hysteresis confirmation count
	// (0 = reconfig.DefaultFlipConfirmations).
	FlipConfirmations int
	// Tracer receives split-lifecycle trace events (publish, suppress,
	// NACKs, breaker transitions, min-cut runs, plan flips). Nil — the
	// default — disables tracing at zero per-event cost; per-PSE
	// histograms (see Collect) are always on.
	Tracer *obsv.Tracer
	// Logf receives diagnostics (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Publisher hosts an event channel: it accepts subscriptions and fans
// published events out through them. Subscriptions are pooled into
// plan-equivalence classes (see registry.go): everyone on the same
// (channel, handler, plan, protocol, batching) key shares one modulator
// and one marshalled frame per event, so an event costs one modulation and
// one marshal per *class* and the per-subscriber work is a refcounted
// queue handoff. Each subscription still owns an asynchronous send
// pipeline, so Publish never blocks on a peer's socket.
type Publisher struct {
	cfg      PublisherConfig
	sup      supervision
	listener transport.Listener

	// reg is the sharded id → subscription registry; classes the
	// plan-equivalence class index. Both are read via copy-on-write
	// snapshots on the publish path.
	reg     subRegistry
	classes classIndex

	// stateMu guards closed and nextID plus the registration handshake
	// (insert + initial class join run under it so Close cannot miss a
	// subscription registered concurrently).
	stateMu sync.Mutex
	nextID  int
	closed  bool
	wg      sync.WaitGroup

	// compileMu guards the compile cache: distinct subscriptions shipping
	// the same handler source compile once and share the Compiled tables
	// (immutable after compile) and the sender-side interpreter
	// environment.
	compileMu sync.Mutex
	programs  map[string]*compiledEntry
	nextProg  uint64

	// modRuns counts modulator invocations; modulationsSaved counts the
	// per-member modulator runs class sharing avoided (members-1 per
	// event). modRuns == events while modulationsSaved grows with fan-out.
	modRuns          atomic.Uint64
	modulationsSaved atomic.Uint64

	// relMu guards relStates, the resume map of at-least-once delivery
	// streams keyed by (subscriber, channel, handler). A stream outlives
	// its subscription: retire detaches it, a resubscribe adopts it, and
	// the orphan cap bounds how many detached rings a publisher retains.
	relMu     sync.Mutex
	relStates map[relKey]*relState
}

// compiledEntry is one cached handler compilation: the immutable compiled
// tables, the shared sender-side environment, and the dense program key
// that stands in for all of it inside a classKey.
type compiledEntry struct {
	key      uint64
	compiled *partition.Compiled
	env      *interp.Env
}

// subscription is the publisher-side state of one subscriber. Modulation
// state (modulator, profiling collector, per-PSE histograms) lives on the
// subscription's current planClass; what remains here is per-peer: the
// connection, send pipeline, counters, failure tracking and feedback
// pacing.
type subscription struct {
	id       string
	channel  string
	proto    uint32
	batched  bool
	conn     transport.Conn
	compiled *partition.Compiled
	env      *interp.Env
	progKey  uint64
	trigger  profileunit.Trigger
	pipe     *sendPipeline
	metrics  *channelMetrics
	// fbMu serializes trigger state between concurrently publishing
	// goroutines (two Publish calls may fan the same class out at once).
	fbMu sync.Mutex
	// breaker gates split-set eligibility per PSE from this subscription's
	// failure stream (NACKs from the subscriber, local modulation faults).
	breaker *pseBreaker
	// runit recomputes a degraded plan locally when the breaker trips —
	// the publisher cannot wait for the subscriber's next plan push while
	// every event at a poisoned PSE is failing.
	runit *reconfig.Unit
	// degradeMu serializes runit access between the control-read goroutine
	// (NACK handling) and publish goroutines (modulation faults).
	degradeMu sync.Mutex

	// class is the subscription's current plan-equivalence class. Written
	// only under classIndex.mu (join/migrate/retire); nil once retired.
	class atomic.Pointer[planClass]

	// rel is the at-least-once delivery stream (nil on best-effort
	// subscriptions). It is not part of the classKey: sequencing and the
	// envelope are applied per subscription at send time, so reliable and
	// best-effort members still share one modulation and one frame.
	rel *relState

	// link measures this subscription's live RTT/bandwidth (nil when link
	// estimation is disabled); probeSeq mints probe sequence numbers shared
	// by the pipeline's idle heartbeats and the control loop's echo
	// replies, so an echo always resolves the probe it answers.
	link     *linkest.Estimator
	probeSeq atomic.Uint64
	// lastEnvPub paces environment publishes into the degrade unit.
	// Control-goroutine only.
	lastEnvPub time.Time

	retireOnce sync.Once
}

// nextProbe mints the next probe seq and registers its send time with the
// estimator. Safe from both the control goroutine (echo replies) and the
// sender goroutine (idle heartbeats).
func (s *subscription) nextProbe() uint64 {
	seq := s.probeSeq.Add(1)
	s.link.Probe(seq)
	return seq
}

// NewPublisher starts listening and accepting subscriptions.
func NewPublisher(cfg PublisherConfig) (*Publisher, error) {
	if cfg.Builtins == nil {
		return nil, fmt.Errorf("jecho: publisher needs a builtin registry")
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.FeedbackEvery == 0 {
		cfg.FeedbackEvery = 10
	}
	if cfg.Transport == nil {
		cfg.Transport = transport.Default()
	}
	ln, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("jecho: listen: %w", err)
	}
	p := &Publisher{
		cfg:      cfg,
		sup:      resolveSupervision(cfg.HeartbeatInterval, cfg.HeartbeatMisses, cfg.WriteTimeout),
		listener: ln,
		programs: make(map[string]*compiledEntry),
	}
	p.reg.init()
	p.classes.init()
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the bound listen address.
func (p *Publisher) Addr() string { return p.listener.Addr() }

// Close stops the publisher and drops all subscriptions.
func (p *Publisher) Close() error {
	p.stateMu.Lock()
	if p.closed {
		p.stateMu.Unlock()
		return nil
	}
	p.closed = true
	p.stateMu.Unlock()
	err := p.listener.Close()
	for _, s := range p.reg.snapshot() {
		p.retire(s)
	}
	p.wg.Wait()
	p.closeRelStates()
	return err
}

// Subscribers returns the current subscriber count.
func (p *Publisher) Subscribers() int { return p.reg.size() }

// PlanClasses returns the number of live plan-equivalence classes.
func (p *Publisher) PlanClasses() int { return len(p.classes.snapshot()) }

// ModulatorRuns returns how many times a class modulator ran (one per
// event per class; under a shared plan, one per event).
func (p *Publisher) ModulatorRuns() uint64 { return p.modRuns.Load() }

// ModulationsSaved returns the modulator runs avoided by class sharing:
// members−1 per event per class. With N subscribers on one plan it grows
// by N−1 per publish.
func (p *Publisher) ModulationsSaved() uint64 { return p.modulationsSaved.Load() }

// SubscriptionInfo describes one live subscription for observability.
type SubscriptionInfo struct {
	// ID is the publisher-assigned subscription id.
	ID string
	// Channel is the channel the subscription is attached to.
	Channel string
	// Handler is the installed handler's name.
	Handler string
	// PlanVersion is the active partitioning plan's version.
	PlanVersion uint64
	// SplitIDs are the active plan's flagged PSEs.
	SplitIDs []int32
	// QueueLen is the instantaneous outbound queue depth.
	QueueLen int
	// Reliable reports the subscription runs at-least-once delivery.
	Reliable bool
	// StagedSeq is the highest delivery sequence assigned so far (0 on
	// best-effort subscriptions): the chaos invariant compares it against
	// the subscriber's processed + DataLoss counts.
	StagedSeq uint64
	// RingFrames/RingBytes are the replay ring's instantaneous occupancy.
	RingFrames int
	RingBytes  int
	// Metrics snapshots the subscription's channel counters.
	Metrics ChannelMetrics
}

// Subscriptions snapshots the live subscriptions, ordered by id.
func (p *Publisher) Subscriptions() []SubscriptionInfo {
	subs := p.reg.snapshot()
	out := make([]SubscriptionInfo, 0, len(subs))
	for _, s := range subs {
		c := s.class.Load()
		if c == nil {
			continue // retired between snapshot and here
		}
		plan := c.mod.Plan()
		split := make([]int32, len(plan.SplitIDs()))
		copy(split, plan.SplitIDs())
		info := SubscriptionInfo{
			ID:          s.id,
			Channel:     s.channel,
			Handler:     s.compiled.Prog.Name,
			PlanVersion: plan.Version(),
			SplitIDs:    split,
			QueueLen:    len(s.pipe.queue),
			Metrics:     s.metrics.snapshot(),
		}
		if s.rel != nil {
			info.Reliable = true
			info.StagedSeq, info.RingFrames, info.RingBytes, _ = s.rel.stats()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (p *Publisher) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.handleConn(conn)
	}
}

// compileCached compiles a subscription's handler, memoized on the full
// identity (handler, cost model, sorted natives, source). Compiled tables
// are immutable and the sender-side environment is read-only during
// execution, so distinct subscriptions share both; the dense key stands in
// for the program inside classKey comparisons.
func (p *Publisher) compileCached(sub *wire.Subscribe) (*compiledEntry, error) {
	natives := append([]string(nil), sub.Natives...)
	sort.Strings(natives)
	var b strings.Builder
	b.WriteString(sub.Handler)
	b.WriteByte(0)
	b.WriteString(sub.CostModel)
	b.WriteByte(0)
	for _, n := range natives {
		b.WriteString(n)
		b.WriteByte(0)
	}
	b.WriteString(sub.Source)
	k := b.String()

	p.compileMu.Lock()
	defer p.compileMu.Unlock()
	if e, ok := p.programs[k]; ok {
		return e, nil
	}
	compiled, err := compileSubscription(sub)
	if err != nil {
		return nil, err
	}
	p.nextProg++
	e := &compiledEntry{
		key:      p.nextProg,
		compiled: compiled,
		env:      interp.NewEnv(compiled.Classes, p.cfg.Builtins),
	}
	p.programs[k] = e
	return e, nil
}

// newClassLocked creates the planClass for key with plan installed on a
// fresh modulator/collector pair. Caller holds classes.mu; the class is
// not visible to publishers until rebuildLocked runs.
func (p *Publisher) newClassLocked(key classKey, s *subscription, plan *partition.Plan) *planClass {
	mod := partition.NewModulator(s.compiled, s.env)
	coll := profileunit.NewCollector(s.compiled.NumPSEs())
	mod.Probe = coll
	mod.SampleEvery = p.cfg.ProfileSampleEvery
	mod.SetPlan(plan)
	return &planClass{
		key:      key,
		compiled: s.compiled,
		mod:      mod,
		coll:     coll,
		hists:    newPSEHistograms(s.compiled.NumPSEs()),
	}
}

// classKeyFor derives s's class key under plan.
func classKeyFor(s *subscription, plan *partition.Plan) classKey {
	return classKey{
		channel: s.channel,
		prog:    s.progKey,
		plan:    plan.Fingerprint(),
		proto:   s.proto,
		batched: s.batched,
	}
}

// joinClassLocked adds s to the class for plan, creating it on first use.
// inherit, when non-nil, is a just-emptied class whose modulation state
// (modulator, profiling collector, per-PSE histograms) the new class reuses:
// a sole-member migration then behaves exactly like the seed's
// per-subscription Modulator.SetPlan — profiled statistics and the feedback
// message count survive the plan flip instead of resetting, which the
// subscriber's min-cut depends on. Caller holds classes.mu.
func (p *Publisher) joinClassLocked(s *subscription, plan *partition.Plan, inherit *planClass) {
	key := classKeyFor(s, plan)
	c := p.classes.classes[key]
	if c == nil {
		if inherit != nil {
			// SetPlan accepts whenever installPlan's staleness check against
			// the same modulator passed. A publish concurrently draining an
			// older snapshot may still be running this modulator; that is the
			// same SetPlan/Process race the modulator has always supported.
			inherit.mod.SetPlan(plan)
			c = &planClass{
				key:      key,
				compiled: inherit.compiled,
				mod:      inherit.mod,
				coll:     inherit.coll,
				hists:    inherit.hists,
			}
		} else {
			c = p.newClassLocked(key, s, plan)
		}
		p.classes.classes[key] = c
	}
	addMemberLocked(c, s)
	s.class.Store(c)
}

// installPlan migrates s to the class of plan — the publisher-side
// equivalent of the old per-subscription Modulator.SetPlan. The staleness
// check, the departure from the old class and the arrival in the new one
// all happen under the class-index mutex, so a publish racing the
// migration sees the subscription in exactly one class: the old plan's or
// the new plan's, never both and never neither. Returns false when the
// plan is stale (its version does not advance past the active class's) or
// the subscription has been retired.
func (p *Publisher) installPlan(s *subscription, plan *partition.Plan) bool {
	x := &p.classes
	x.mu.Lock()
	defer x.mu.Unlock()
	cur := s.class.Load()
	if cur == nil {
		return false
	}
	if plan.Version() != 0 && plan.Version() <= cur.mod.Plan().Version() {
		return false
	}
	var inherit *planClass
	if removeMemberLocked(cur, s) == 0 {
		delete(x.classes, cur.key)
		inherit = cur
	}
	p.joinClassLocked(s, plan, inherit)
	x.rebuildLocked()
	return true
}

// retire removes a subscription and tears its pipeline and connection down.
// It is idempotent and is called from every path that finds the peer dead:
// the read loop erroring, the send pipeline failing a write, or Close.
// Retiring on the *send* path matters: without it a dead peer would keep
// costing (and failing) every subsequent Publish until its read loop
// happened to notice.
func (p *Publisher) retire(s *subscription) {
	s.retireOnce.Do(func() {
		p.reg.remove(s.id)
		x := &p.classes
		x.mu.Lock()
		if c := s.class.Load(); c != nil {
			if removeMemberLocked(c, s) == 0 {
				delete(x.classes, c.key)
			}
			s.class.Store(nil)
			x.rebuildLocked()
		}
		x.mu.Unlock()
		s.pipe.shutdown()
		_ = s.conn.Close()
		// Park the delivery stream (ring + sequence counters) for the
		// resubscribe to adopt — this is what makes reconnects resume
		// mid-stream instead of starting over.
		p.detachRelState(s.rel)
	})
}

// handleConn performs the subscription handshake, starts the send pipeline,
// then serves plan updates from the subscriber.
func (p *Publisher) handleConn(conn transport.Conn) {
	defer p.wg.Done()
	// The handshake gets the same silence window as steady-state reads: a
	// connection that never subscribes must not pin a goroutine forever.
	p.sup.armRead(conn)
	frame, err := conn.ReadFrame()
	if err != nil {
		_ = conn.Close()
		return
	}
	msg, err := wire.Unmarshal(frame)
	if err != nil {
		p.cfg.Logf("jecho publisher: bad handshake: %v", err)
		_ = conn.Close()
		return
	}
	subMsg, ok := msg.(*wire.Subscribe)
	if !ok {
		p.cfg.Logf("jecho publisher: handshake was %T, want Subscribe", msg)
		_ = conn.Close()
		return
	}
	// Protocol negotiation: accept any version in [Min, Current]. The
	// subscriber's version caps what the publisher sends it — batch
	// frames only go to peers that can unpack them (v4+); everything
	// else in the current protocol is understood by v3.
	if subMsg.Protocol < wire.MinProtocolVersion || subMsg.Protocol > wire.ProtocolVersion {
		p.cfg.Logf("jecho publisher: protocol %d from %s, want %d..%d",
			subMsg.Protocol, subMsg.Subscriber, wire.MinProtocolVersion, wire.ProtocolVersion)
		_ = conn.Close()
		return
	}
	entry, err := p.compileCached(subMsg)
	if err != nil {
		p.cfg.Logf("jecho publisher: compile %s: %v", subMsg.Handler, err)
		_ = conn.Close()
		return
	}
	compiled := entry.compiled
	initialPlan, err := partition.NewPlan(compiled.NumPSEs(), 0, []int32{partition.RawPSEID}, nil)
	if err != nil {
		// NumPSEs >= 1 always; RawPSEID is always valid.
		p.cfg.Logf("jecho publisher: initial plan: %v", err)
		_ = conn.Close()
		return
	}

	metrics := &channelMetrics{}
	sub := &subscription{
		channel:  subMsg.Channel,
		proto:    subMsg.Protocol,
		conn:     conn,
		compiled: compiled,
		env:      entry.env,
		progKey:  entry.key,
		trigger:  &profileunit.RateTrigger{EveryMessages: p.cfg.FeedbackEvery},
		metrics:  metrics,
		breaker:  resolveBreaker(p.cfg.BreakerThreshold, p.cfg.BreakerWindow, p.cfg.BreakerCooldown),
		// The degrade unit routes around broken PSEs; cost optimality is
		// the subscriber's reconfiguration unit's job, so a neutral
		// environment suffices here.
		runit: newPolicyUnit(compiled, costmodel.DefaultEnvironment(), p.cfg.SplitPolicy, p.cfg.FlipMargin, p.cfg.FlipConfirmations),
	}
	if p.cfg.LinkEstimateInterval > 0 {
		sub.link = linkest.New(linkest.Config{
			HalfLife:   p.cfg.LinkEstimateHalfLife,
			MinSamples: p.cfg.LinkWarmupSamples,
		})
	}
	var batch batchConfig
	if p.cfg.BatchBytes > 0 && subMsg.Protocol >= wire.BatchProtocolVersion {
		batch = batchConfig{
			Bytes: p.cfg.BatchBytes,
			Delay: p.cfg.BatchDelay,
			hists: newBatchHistograms(),
		}
		sub.batched = true
	}
	// Reliability negotiation: at-least-once engages only when the peer
	// both speaks v5 and asked for it. A v4-or-older peer decodes to
	// Reliability zero, so the downgrade to the classic best-effort path
	// is transparent — no envelopes, no ring, no acks.
	reliable := subMsg.Protocol >= wire.ReliableProtocolVersion &&
		subMsg.Reliability == wire.ReliabilityAtLeastOnce
	if reliable {
		sub.rel = p.acquireRelState(relKey{
			subscriber: subMsg.Subscriber,
			channel:    subMsg.Channel,
			handler:    subMsg.Handler,
		})
		// The StreamStart epoch handshake must be the first frame the
		// subscriber sees, so it can reset stale dedup state before seq 1
		// of a fresh stream arrives. The send pipeline is not running yet,
		// so a direct write cannot interleave with event frames.
		data, err := wire.Marshal(&wire.StreamStart{Epoch: sub.rel.epoch})
		if err == nil {
			p.sup.armWrite(conn)
			err = conn.WriteFrame(data)
		}
		if err != nil {
			p.cfg.Logf("jecho publisher: stream-start handshake: %v", err)
			p.detachRelState(sub.rel)
			_ = conn.Close()
			return
		}
	}
	sub.pipe = newSendPipeline(conn, p.cfg.QueueDepth, p.cfg.OverflowPolicy, p.sup, batch, metrics,
		func(err error) {
			p.cfg.Logf("jecho publisher: sub %s send: %v; retiring", sub.id, err)
			p.retire(sub)
		})
	sub.pipe.reliable = reliable
	if sub.link != nil && subMsg.Protocol >= wire.EchoProtocolVersion {
		// Idle heartbeats double as RTT probes: a v6 subscriber echoes
		// their Seq back through the control loop.
		sub.pipe.probe = sub.nextProbe
	}

	// Registration: id assignment, registry insert and the initial class
	// join are one critical section against Close, so a closing publisher
	// either rejects the subscription here or retires it on its sweep.
	p.stateMu.Lock()
	if p.closed {
		p.stateMu.Unlock()
		p.detachRelState(sub.rel)
		_ = conn.Close()
		return
	}
	p.nextID++
	sub.id = fmt.Sprintf("%s#%d", subMsg.Subscriber, p.nextID)
	p.reg.insert(sub)
	p.classes.mu.Lock()
	p.joinClassLocked(sub, initialPlan, nil)
	p.classes.rebuildLocked()
	p.classes.mu.Unlock()
	p.stateMu.Unlock()

	if p.cfg.Tracer != nil {
		sub.breaker.observeTransitions(breakerObserver(p.cfg.Tracer, sub.channel, func() string { return sub.id }))
	}

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		sub.pipe.run()
	}()

	if sub.rel != nil {
		// Resume: the handshake's last-contiguous seq acts as an ack, and
		// everything staged beyond it replays (or is declared Lost where
		// the ring evicted it). New publishes may already be interleaving;
		// the sequence numbers disambiguate on the subscriber side. A
		// resume point from a different epoch is ignored — the state is a
		// fresh stream and the subscriber resets on its StreamStart.
		p.deliverReplay(sub, sub.rel.resume(subMsg.ResumeSeq, subMsg.ResumeEpoch))
	}

	// Serve inbound control messages (plans, heartbeats) until the peer
	// goes away or falls silent past the heartbeat window.
	for {
		p.sup.armRead(conn)
		frame, err := conn.ReadFrame()
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				p.cfg.Logf("jecho publisher: sub %s: no frame in %v; retiring silent peer",
					sub.id, p.sup.window)
			}
			break
		}
		msg, err := wire.Unmarshal(frame)
		if err != nil {
			// A bad control frame is a per-frame fault: count it and keep
			// the subscription alive instead of retiring the peer.
			metrics.decodeFailures.Add(1)
			p.cfg.Logf("jecho publisher: sub %s: %v", sub.id, err)
			continue
		}
		switch m := msg.(type) {
		case *wire.Heartbeat:
			metrics.heartbeatsRecv.Add(1)
			if m.HasAck {
				metrics.acksRecv.Add(1)
				p.handleAck(sub, m.AckSeq)
			}
			if m.HasEcho && sub.link != nil {
				sub.link.Echo(m.EchoSeq)
			}
			if m.Seq > 0 && sub.proto >= wire.EchoProtocolVersion {
				// Reflect the subscriber's probe (pre-v6 peers would not
				// understand the echo flag); when estimating, ride our own
				// probe on the reply so this side samples RTT too.
				p.echoHeartbeat(sub, m.Seq)
			}
			if sub.link != nil {
				// Effective bandwidth: the send path's cumulative bytes on
				// the wire sampled over wall time, paced by the peer's
				// heartbeats (single control goroutine, so lastEnvPub needs
				// no lock).
				sub.link.ObserveBytes(metrics.bytesOnWire.Load() + metrics.controlBytes.Load())
				if now := time.Now(); now.Sub(sub.lastEnvPub) >= p.cfg.LinkEstimateInterval {
					sub.lastEnvPub = now
					if env, measured := sub.link.Environment(costmodel.DefaultEnvironment()); measured {
						sub.runit.SetEnvironment(env)
					}
				}
			}
		case *wire.Ack:
			metrics.acksRecv.Add(1)
			p.handleAck(sub, m.Seq)
		case *wire.Retransmit:
			metrics.retransReqRecv.Add(1)
			if sub.rel != nil {
				p.deliverReplay(sub, sub.rel.replayRange(m.From, m.To))
			}
		case *wire.Nack:
			metrics.nacksRecv.Add(1)
			p.cfg.Tracer.Emit(obsv.Event{
				Kind: obsv.EvNackRecv, Channel: sub.channel, Sub: sub.id,
				PSE: m.PSEID, EventSeq: m.Seq, Detail: m.Class.String(),
			})
			if int(m.PSEID) >= compiled.NumPSEs() {
				// A NACK naming a PSE the handler doesn't have is a
				// malformed report, not a failure signal: feeding it to the
				// breaker would grow its state map without bound and inject
				// bogus ids into the degrade path.
				metrics.decodeFailures.Add(1)
				p.cfg.Logf("jecho publisher: sub %s: nack for unknown pse %d (handler has %d); ignored",
					sub.id, m.PSEID, compiled.NumPSEs())
				continue
			}
			if m.PSEID >= 0 && sub.breaker.Fail(m.PSEID) {
				metrics.breakerTrips.Add(1)
				p.cfg.Logf("jecho publisher: sub %s: breaker tripped for pse %d (class %s, seq %d); degrading",
					sub.id, m.PSEID, m.Class, m.Seq)
				p.degrade(sub)
			}
		case *wire.Plan:
			// A plan re-selecting a PSE whose breaker is still open would
			// reinstall the broken split; drop it. (Once the cooldown
			// elapses, Open flips the breaker half-open and the next such
			// plan passes — that acceptance starts the probe, which ends
			// either with a failure re-opening the breaker or, since the
			// publisher has no per-message success signal, by surviving a
			// full failure window without one.)
			if id := blockedSplit(sub.breaker, m.Split); id >= 0 {
				p.cfg.Tracer.Emit(obsv.Event{
					Kind: obsv.EvPlanBlocked, Channel: sub.channel, Sub: sub.id,
					PSE: id, Plan: m.Version,
				})
				p.cfg.Logf("jecho publisher: sub %s plan v%d re-selects tripped pse %d; dropped",
					sub.id, m.Version, id)
				continue
			}
			if err := p.applyWirePlan(sub, m); err != nil {
				if errors.Is(err, partition.ErrStalePlan) {
					p.cfg.Tracer.Emit(obsv.Event{
						Kind: obsv.EvPlanStale, Channel: sub.channel, Sub: sub.id,
						PSE: obsv.NoPSE, Plan: m.Version,
					})
				}
				p.cfg.Logf("jecho publisher: sub %s plan: %v", sub.id, err)
				continue
			}
		default:
			p.cfg.Logf("jecho publisher: sub %s sent %T", sub.id, msg)
		}
	}
	p.retire(sub)
}

// echoHeartbeat reflects a subscriber heartbeat's Seq back so the peer can
// close its RTT sample on its own clock. When this side estimates too, the
// reply doubles as our probe: its Seq (minted from the shared probe
// counter) gets echoed back by the subscriber in turn. A reply without a
// probe carries Seq 0, which the peer never echoes — the anti-loop rule.
func (p *Publisher) echoHeartbeat(s *subscription, seq uint64) {
	hb := &wire.Heartbeat{HasEcho: true, EchoSeq: seq}
	if s.link != nil {
		hb.Seq = s.nextProbe()
	}
	data, err := wire.Marshal(hb)
	if err != nil {
		return
	}
	if err := s.pipe.enqueueControl(data); err != nil {
		return
	}
	s.metrics.heartbeatsSent.Add(1)
}

// applyWirePlan validates a subscriber-pushed plan and migrates the
// subscription to the plan's equivalence class — the class-world analogue
// of Modulator.ApplyWirePlan, with the same validation and staleness
// semantics.
func (p *Publisher) applyWirePlan(s *subscription, wp *wire.Plan) error {
	if wp.Handler != s.compiled.Prog.Name {
		return fmt.Errorf("partition: plan for %q applied to %q", wp.Handler, s.compiled.Prog.Name)
	}
	if wp.Version == 0 {
		// Version 0 is reserved for locally-installed initial plans;
		// accepting one from the wire would roll the class back past its
		// active plan (see Modulator.ApplyWirePlan).
		return fmt.Errorf("partition: %w: wire plan version 0 never advances past the active plan", partition.ErrStalePlan)
	}
	if err := s.compiled.ValidateSplitSet(wp.Split); err != nil {
		return err
	}
	plan, err := partition.NewPlan(s.compiled.NumPSEs(), wp.Version, wp.Split, wp.Profile)
	if err != nil {
		return err
	}
	var before []int32
	var beforeVersion uint64
	if c := s.class.Load(); c != nil {
		before = c.mod.Plan().SplitIDs()
		beforeVersion = c.mod.Plan().Version()
	}
	if !p.installPlan(s, plan) {
		return fmt.Errorf("partition: %w: v%d not past active v%d",
			partition.ErrStalePlan, plan.Version(), beforeVersion)
	}
	if !equalSplit(before, plan.SplitIDs()) {
		s.metrics.planFlips.Add(1)
		tracePlanFlip(p.cfg.Tracer, s.channel, s.id, plan.Version(), plan.SplitIDs())
	}
	return nil
}

// handleAck applies a cumulative delivery ack: ring entries release, and
// when the idle-replay heuristic decides the stream's tail went missing
// (repeated identical acks, nothing staged since, unacked frames
// outstanding, backoff elapsed), the tail replays. An ack beyond anything
// staged is corrupt; it is clamped and counted.
func (p *Publisher) handleAck(s *subscription, seq uint64) {
	if s.rel == nil {
		return
	}
	_, clamped, rep, replay := s.rel.onAck(seq)
	if clamped {
		s.metrics.acksClamped.Add(1)
	}
	if replay {
		p.deliverReplay(s, rep)
	}
}

// deliverReplay ships one replay outcome to the subscriber: the evicted
// prefix leaves as a Lost notice on the control lane (loss is declared,
// never silent), the retained frames re-enter the send queue carrying
// their original sequence numbers — the subscriber's dedup absorbs any
// overshoot. Replayed frames ship as originally modulated; continuations
// are self-describing (PSEID, resume node, saved vars), so a plan flip
// landing mid-replay cannot desynchronise the demodulator.
func (p *Publisher) deliverReplay(s *subscription, rep replaySet) {
	if rep.lostTo != 0 {
		n := rep.lostTo - rep.lostFrom + 1
		s.metrics.dataLoss.Add(n)
		traceDataLoss(p.cfg.Tracer, s.channel, s.id, rep.lostFrom, rep.lostTo)
		p.cfg.Logf("jecho publisher: sub %s: ring evicted seqs %d..%d before repair; declaring %d events lost",
			s.id, rep.lostFrom, rep.lostTo, n)
		if data, err := wire.Marshal(&wire.Lost{From: rep.lostFrom, To: rep.lostTo}); err == nil {
			_ = s.pipe.enqueueControl(data) // retired pipe: the resume on reconnect re-declares
		}
	}
	if len(rep.frames) == 0 {
		return
	}
	traceReplay(p.cfg.Tracer, s.channel, s.id, rep.frames[0].seq, rep.frames[len(rep.frames)-1].seq)
	retired := false
	for _, q := range rep.frames {
		if retired {
			q.f.Release()
			continue
		}
		if err := s.pipe.enqueue(q); err != nil {
			// enqueue consumed this frame's reference; drop the rest. The
			// ring still holds everything for the next resume.
			retired = true
			continue
		}
		s.metrics.replayed.Add(1)
	}
}

// blockedSplit returns the first PSE in the split set whose breaker is
// open, or -1 when the whole set is admissible.
func blockedSplit(b *pseBreaker, split []int32) int32 {
	for _, id := range split {
		if b.Open(id) {
			return id
		}
	}
	return -1
}

// degrade recomputes one subscription's plan with the breaker's exclusions
// applied and installs it sender-side: the min-cut gives tripped PSEs
// effectively infinite capacity, so the flow routes to an adjacent healthy
// PSE or all the way back to raw delivery. The subscriber learns of the
// exclusion through the failure counts in the next feedback frame — which
// also carries the forced plan version, so its reconfiguration unit's
// counter skips past the degraded plan instead of emitting stale versions —
// and until its own plans avoid the PSE, the interception in handleConn
// keeps them from reinstalling it.
//
// Installation goes through installPlan, so the breaker-forced flip is an
// atomic class migration: a concurrent subscriber plan push either lands
// before (and the degrade's forced version supersedes it) or after (and
// installPlan rejects the degrade as stale — acceptable, because the open
// breaker still blocks the poisoned PSE via blockedSplit and the next
// fault re-triggers the degrade).
func (p *Publisher) degrade(s *subscription) {
	s.degradeMu.Lock()
	defer s.degradeMu.Unlock()
	c := s.class.Load()
	if c == nil {
		return
	}
	s.runit.SetTripped(s.breaker.OpenIDs())
	_, wirePlan, err := s.runit.SelectPlan(c.coll.Snapshot())
	if err != nil {
		p.cfg.Logf("jecho publisher: sub %s degrade: %v", s.id, err)
		return
	}
	traceMinCut(p.cfg.Tracer, s.channel, s.id, s.runit)
	// The degrade unit's version counter is private; force the version past
	// the class's active plan so installPlan cannot reject the degraded
	// plan as stale.
	cur := c.mod.Plan()
	version := cur.Version() + 1
	if wirePlan.Version > version {
		version = wirePlan.Version
	}
	plan, err := partition.NewPlan(s.compiled.NumPSEs(), version, wirePlan.Split, wirePlan.Profile)
	if err != nil {
		p.cfg.Logf("jecho publisher: sub %s degrade plan: %v", s.id, err)
		return
	}
	if p.installPlan(s, plan) && !equalSplit(cur.SplitIDs(), plan.SplitIDs()) {
		s.metrics.planFlips.Add(1)
		tracePlanFlip(p.cfg.Tracer, s.channel, s.id, plan.Version(), plan.SplitIDs())
	}
}

// equalSplit compares two sorted split-id sets.
func equalSplit(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Publish pushes one event through every plan-equivalence class (all
// channels): one modulation and one marshal per class, fanned out to the
// class members as refcounted frames. It returns the number of
// subscriptions reached (modulated and queued, or filtered at the sender)
// and the joined error across failing subscriptions, so callers can tell
// one dead peer from total failure.
//
// The event value is shared across classes (and their concurrently
// running modulators), so handlers must treat incoming events as read-only —
// the usual contract of an event system; transforms allocate new objects.
func (p *Publisher) Publish(event mir.Value) (int, error) {
	return p.publish(event, "", true)
}

// PublishOn pushes one event to the subscriptions of one channel only.
func (p *Publisher) PublishOn(channel string, event mir.Value) (int, error) {
	return p.publish(event, channel, false)
}

// publishScratch is the pooled per-publish state of the multi-class fan
// out, so a steady-state broadcast allocates no WaitGroup or error slice
// per event.
type publishScratch struct {
	wg      sync.WaitGroup
	reached atomic.Int64
	mu      sync.Mutex
	errs    []error
}

var scratchPool = sync.Pool{New: func() any { return new(publishScratch) }}

func (p *Publisher) publish(event mir.Value, channel string, broadcast bool) (int, error) {
	views := p.classes.snapshot()
	var single classView
	matched := 0
	for _, v := range views {
		if broadcast || v.class.key.channel == channel {
			single = v
			matched++
		}
	}
	switch matched {
	case 0:
		return 0, nil
	case 1:
		// The common case — everyone on one plan — runs inline: no
		// goroutine, no WaitGroup, no error slice.
		return p.publishClass(single.class, single.members, event)
	}
	// Fan out concurrently across classes: each class has its own
	// modulator, and per-subscription ordering is preserved because one
	// Publish call enqueues one frame per subscription.
	sc := scratchPool.Get().(*publishScratch)
	sc.reached.Store(0)
	for _, v := range views {
		if !broadcast && v.class.key.channel != channel {
			continue
		}
		v := v
		sc.wg.Add(1)
		go func() {
			defer sc.wg.Done()
			n, err := p.publishClass(v.class, v.members, event)
			sc.reached.Add(int64(n))
			if err != nil {
				sc.mu.Lock()
				sc.errs = append(sc.errs, err)
				sc.mu.Unlock()
			}
		}()
	}
	sc.wg.Wait()
	reached := int(sc.reached.Load())
	var err error
	if len(sc.errs) > 0 {
		err = errors.Join(sc.errs...)
		sc.errs = sc.errs[:0]
	}
	scratchPool.Put(sc)
	return reached, err
}

// publishClass modulates the event once for one class and fans the result
// out to every member: shared histograms observe once, the marshalled
// frame is refcounted across the members' send pipelines, and per-member
// work reduces to counter updates and a queue handoff. The only blocking
// here is queue handoff under the Block policy; transport writes happen on
// each subscription's sender goroutine.
func (p *Publisher) publishClass(c *planClass, members []*subscription, event mir.Value) (int, error) {
	if len(members) == 0 {
		return 0, nil
	}
	start := time.Now()
	p.modRuns.Add(1)
	out, err := c.mod.Process(event)
	modDur := time.Since(start)
	if err != nil {
		return 0, p.classModFault(c, members, err)
	}
	p.modulationsSaved.Add(uint64(len(members) - 1))
	c.hists.observe(out.SplitPSE, modDur, out.WireBytes, out.ModWork)
	tr := p.cfg.Tracer
	traced := tr.Enabled()
	planVersion := c.mod.Plan().Version()
	reached := 0
	var errs []error
	if out.Suppressed {
		saved := uint64(wire.SizeOf(event))
		for _, s := range members {
			s.metrics.published.Add(1)
			s.metrics.suppressed.Add(1)
			s.metrics.bytesSaved.Add(saved)
			if traced {
				tracePublish(tr, c.key.channel, s.id, planVersion, out, modDur)
			}
			reached++
		}
	} else {
		var msg any
		if out.Raw != nil {
			msg = out.Raw
		} else {
			msg = out.Cont
		}
		frame, merr := wire.MarshalFrame(msg)
		if merr != nil {
			return 0, merr
		}
		var saved uint64
		if out.Cont != nil {
			if raw := wire.SizeOf(event); raw > int64(frame.Len()) {
				saved = uint64(raw - int64(frame.Len()))
			}
		}
		// One reference per member; enqueue consumes each one (on the
		// send, drop and retired paths alike).
		if len(members) > 1 {
			frame.Retain(int32(len(members) - 1))
		}
		for _, s := range members {
			s.metrics.published.Add(1)
			if saved > 0 {
				s.metrics.bytesSaved.Add(saved)
			}
			if traced {
				tracePublish(tr, c.key.channel, s.id, planVersion, out, modDur)
			}
			var qerr error
			if s.rel != nil {
				qerr = s.rel.stageAndEnqueue(s.pipe, frame, s.metrics)
			} else {
				qerr = s.pipe.enqueue(queuedFrame{f: frame})
			}
			if qerr != nil {
				p.retire(s)
				errs = append(errs, fmt.Errorf("jecho: sub %s: %w", s.id, qerr))
				continue
			}
			reached++
		}
	}
	p.classFeedback(c, members, planVersion)
	return reached, errors.Join(errs...)
}

// classModFault handles a modulation fault for every member of the class:
// the fault is attributed to every split edge of the active plan — the
// plan as a whole is what's broken — once on the shared collector (the
// counts travel in every member's next feedback frame) and once on each
// member's breaker, which degrades that member's plan (migrating it out of
// this class) when the failures cluster.
func (p *Publisher) classModFault(c *planClass, members []*subscription, err error) error {
	plan := c.mod.Plan()
	for _, id := range plan.SplitIDs() {
		c.coll.Fault(id)
	}
	tr := p.cfg.Tracer
	var detail string
	if tr.Enabled() {
		detail = fmt.Sprintf("%s: %v", partition.FaultClassOf(err), err)
	}
	errs := make([]error, 0, len(members))
	for _, s := range members {
		s.metrics.modFailures.Add(1)
		if detail != "" {
			tr.Emit(obsv.Event{
				Kind: obsv.EvModFault, Channel: c.key.channel, Sub: s.id,
				PSE: obsv.NoPSE, Plan: plan.Version(), Detail: detail,
			})
		}
		tripped := false
		for _, id := range plan.SplitIDs() {
			if s.breaker.Fail(id) {
				s.metrics.breakerTrips.Add(1)
				tripped = true
			}
		}
		if tripped {
			p.degrade(s)
		}
		errs = append(errs, fmt.Errorf("jecho: sub %s: %w", s.id, err))
	}
	return errors.Join(errs...)
}

// classFeedback enqueues rate-triggered sender-side profiling feedback
// (§2.5) for the members whose trigger is due, snapshotting the shared
// class collector. Feedback coalesces to the latest snapshot instead of
// queueing, so a slow peer never accumulates stale reports. The publisher
// always installs RateTriggers, which only consume the message count, so
// the per-event cost is one uint64 comparison per member — the collector
// snapshot is built lazily, only when a trigger fires.
func (p *Publisher) classFeedback(c *planClass, members []*subscription, planVersion uint64) {
	msgs := c.coll.Messages()
	for _, s := range members {
		s.fbMu.Lock()
		due := s.trigger.ShouldReport(nil, msgs)
		s.fbMu.Unlock()
		if !due {
			continue
		}
		fb := c.coll.ToWire(c.compiled.Prog.Name)
		// Carry the active plan version so the subscriber's reconfiguration
		// unit can skip past versions the degrade path forced locally.
		fb.PlanVersion = planVersion
		data, err := wire.Marshal(fb)
		if err != nil {
			continue
		}
		s.pipe.enqueueFeedback(data)
	}
}
