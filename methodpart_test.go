package methodpart_test

import (
	"testing"

	"methodpart"
)

const apiPushSrc = `
class ImageData {
  width int
  height int
  buff bytes
}

func push(event) {
  z0 = instanceof event ImageData
  ifnot z0 goto done
  r2 = cast event ImageData
  r3 = new ImageData
  call initResize r3 r2
  r4 = move r3
  call displayImage r4
done:
  return
}
`

func apiRegistry(displayed *int) *methodpart.Registry {
	reg := methodpart.NewRegistry()
	reg.MustRegister(methodpart.Builtin{
		Name: "initResize",
		Fn: func(env *methodpart.Env, args []methodpart.Value) (methodpart.Value, error) {
			dst := args[0].(*methodpart.Object)
			dst.Fields["width"] = methodpart.Int(100)
			dst.Fields["height"] = methodpart.Int(100)
			dst.Fields["buff"] = make(methodpart.Bytes, 100*100)
			return methodpart.Null{}, nil
		},
	})
	reg.MustRegister(methodpart.Builtin{
		Name:   "displayImage",
		Native: true,
		Fn: func(env *methodpart.Env, args []methodpart.Value) (methodpart.Value, error) {
			if displayed != nil {
				*displayed++
			}
			return methodpart.Null{}, nil
		},
	})
	return reg
}

// TestPublicAPIRoundTrip exercises the documented facade end to end:
// compile, modulate, demodulate, reconfigure.
func TestPublicAPIRoundTrip(t *testing.T) {
	h, err := methodpart.CompileHandler(apiPushSrc, "push",
		methodpart.Natives("displayImage"),
		methodpart.WithModel(methodpart.DataSizeModel()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumPSEs() < 3 {
		t.Fatalf("NumPSEs = %d", h.NumPSEs())
	}

	var shown int
	mod := methodpart.NewModulator(h, methodpart.NewEnv(h, apiRegistry(nil)))
	demod := methodpart.NewDemodulator(h, methodpart.NewEnv(h, apiRegistry(&shown)))
	coll := methodpart.NewCollector(h)
	mod.Probe = coll
	demod.Probe = coll
	demod.CrossProbe = coll

	unit := methodpart.NewReconfigUnit(h, methodpart.DefaultEnvironment())
	plan, _, err := unit.InitialPlan()
	if err != nil {
		t.Fatal(err)
	}
	mod.SetPlan(plan)
	demod.SetProfilePlan(plan)

	event := methodpart.NewObject("ImageData")
	event.Fields["width"] = methodpart.Int(300)
	event.Fields["height"] = methodpart.Int(300)
	event.Fields["buff"] = make(methodpart.Bytes, 300*300)

	for i := 0; i < 12; i++ {
		out, err := mod.Process(event)
		if err != nil {
			t.Fatal(err)
		}
		var msg any = out.Raw
		if out.Cont != nil {
			msg = out.Cont
		}
		if _, err := demod.Process(msg); err != nil {
			t.Fatal(err)
		}
		newPlan, _, err := unit.SelectPlan(coll.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		mod.SetPlan(newPlan)
		demod.SetProfilePlan(newPlan)
	}
	if shown != 12 {
		t.Fatalf("displayed %d frames", shown)
	}
	// Large inputs + 100x100 output: the converged plan must cut after
	// the transform (the highest PSE), not ship 90KB originals.
	final := mod.Plan()
	if final.Raw() {
		t.Errorf("converged plan still raw: %v", final)
	}
	post := int32(h.NumPSEs()) - 1
	if !final.Split(post) {
		t.Errorf("converged plan %v does not cut after the transform (PSE %d)", final, post)
	}
}

func TestCompileHandlerErrors(t *testing.T) {
	if _, err := methodpart.CompileHandler("garbage", "f"); err == nil {
		t.Error("garbage source accepted")
	}
	if _, err := methodpart.CompileHandler(apiPushSrc, "missing"); err == nil {
		t.Error("missing handler accepted")
	}
}

func TestCompositeModelFacade(t *testing.T) {
	m, err := methodpart.CompositeModel(
		[]methodpart.CostModel{methodpart.DataSizeModel(), methodpart.ExecTimeModel()},
		[]float64{1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	h, err := methodpart.CompileHandler(apiPushSrc, "push",
		methodpart.Natives("displayImage"), methodpart.WithModel(m))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumPSEs() < 3 {
		t.Fatalf("NumPSEs = %d", h.NumPSEs())
	}
}

func TestWithOracle(t *testing.T) {
	reg := apiRegistry(nil)
	h, err := methodpart.CompileHandler(apiPushSrc, "push", methodpart.WithOracle(reg))
	if err != nil {
		t.Fatal(err)
	}
	// displayImage is registered Native; initResize movable. Node 6 must
	// be a StopNode, node 4 not.
	if !h.Analysis.Stops[6] || h.Analysis.Stops[4] {
		t.Fatalf("oracle-driven StopNodes wrong: %v", h.Analysis.Stops)
	}
}
