package bench

import "testing"

// TestAblationOrdering: the full runtime must beat every degraded
// configuration on the dynamic workload, and pure-static must be the floor.
func TestAblationOrdering(t *testing.T) {
	cfg := DefaultImageConfig()
	cfg.Frames = 200
	rows, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
		t.Logf("%-22s fps=%6.2f switches=%d", r.Name, r.FPS, r.PlanSwitches)
	}
	full := byName["full"].FPS
	for name, r := range byName {
		if name == "full" {
			continue
		}
		if r.FPS > full*1.02 {
			t.Errorf("%s (%.2f fps) beats the full runtime (%.2f)", name, r.FPS, full)
		}
	}
	if s := byName["static-initial"]; s.PlanSwitches != 0 {
		t.Errorf("static configuration switched plans %d times", s.PlanSwitches)
	}
	if full <= byName["static-initial"].FPS {
		t.Errorf("adaptation worthless: full %.2f vs static %.2f", full, byName["static-initial"].FPS)
	}
}
