package jecho_test

import (
	"testing"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/mir"
)

// TestTwoSubscribersIndependentPlans reproduces the paper's Figure 1: one
// message sender serving two receivers through independent modulators,
// whose partitioning plans diverge because the receivers differ. Subscriber
// A has a tiny display (shipping the resized image is cheap → cut after the
// transform); subscriber B's display is larger than the frames (shipping
// the original is cheap → cut before it).
func TestTwoSubscribersIndependentPlans(t *testing.T) {
	pubReg, _ := imaging.Builtins()
	pub, err := jecho.NewPublisher(jecho.PublisherConfig{
		Addr:          "127.0.0.1:0",
		Builtins:      pubReg,
		FeedbackEvery: 2,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	type side struct {
		sub     *jecho.Subscriber
		display *imaging.Display
		splits  *results
	}
	mk := func(name string, display int) *side {
		reg, disp := imaging.Builtins()
		res := &results{}
		sub, err := jecho.Subscribe(jecho.SubscriberConfig{
			Addr:          pub.Addr(),
			Name:          name,
			Source:        imaging.HandlerSource(display),
			Handler:       imaging.HandlerName,
			CostModel:     costmodel.DataSizeName,
			Natives:       []string{"displayImage"},
			Builtins:      reg,
			Environment:   costmodel.DefaultEnvironment(),
			OnResult:      res.add,
			ReconfigEvery: 2,
			DiffThreshold: 0.1,
			Logf:          t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = sub.Close() })
		return &side{sub: sub, display: disp, splits: res}
	}
	small := mk("tiny-display", 32)   // 32x32 out of 128x128 frames
	large := mk("large-display", 256) // 256x256 out of 128x128 frames

	deadline := time.Now().Add(5 * time.Second)
	for pub.Subscribers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("subscriptions never registered")
		}
		time.Sleep(time.Millisecond)
	}

	const frames = 40
	for i := 0; i < frames; i++ {
		n, err := pub.Publish(imaging.NewFrame(128, 128, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if n != 2 {
			t.Fatalf("reached %d subscribers, want 2", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitCount(t, small.splits, frames)
	waitCount(t, large.splits, frames)

	// Each receiver displayed at its own size.
	if w := small.display.Frames[0].Fields["width"]; w != mir.Int(32) {
		t.Errorf("small display width = %v", w)
	}
	if w := large.display.Frames[0].Fields["width"]; w != mir.Int(256) {
		t.Errorf("large display width = %v", w)
	}

	// Steady-state plans diverge: the tiny display converges to the
	// post-resize cut, the large display to raw/pre-resize.
	lastN := func(r *results, n int) []int32 {
		all := r.splitPSEs()
		return all[len(all)-n:]
	}
	post := 0
	for _, pse := range lastN(small.splits, 10) {
		if pse >= 3 {
			post++
		}
	}
	if post < 8 {
		t.Errorf("tiny display: only %d/10 late messages cut post-resize: %v", post, small.splits.splitPSEs())
	}
	early := 0
	for _, pse := range lastN(large.splits, 10) {
		if pse < 3 {
			early++
		}
	}
	if early < 8 {
		t.Errorf("large display: only %d/10 late messages cut early: %v", early, large.splits.splitPSEs())
	}
}
