package jecho_test

import (
	"testing"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// TestBatchedDeliveryEndToEnd: with batching enabled and a v4 subscriber, a
// publish burst arrives complete, some of it coalesced into batch frames,
// and the send accounting balances once the channel quiesces.
func TestBatchedDeliveryEndToEnd(t *testing.T) {
	pub, mem := newMemPublisher(t, jecho.PublisherConfig{
		QueueDepth: 64,
		BatchBytes: 64 << 10,
		BatchDelay: 5 * time.Millisecond,
	})
	sub, res := memSubscribe(t, mem, pub.Addr(), "batched")
	waitSubscribers(t, pub, 1)

	const events = 100
	for i := 0; i < events; i++ {
		if _, err := pub.Publish(imaging.NewFrame(16, 16, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, res, events)

	m := findSub(t, pub, "batched").Metrics
	if m.EventsSent != events {
		t.Errorf("EventsSent = %d, want %d", m.EventsSent, events)
	}
	if m.Enqueued != m.EventsSent+m.Dropped {
		t.Errorf("enqueued %d != sent %d + dropped %d", m.Enqueued, m.EventsSent, m.Dropped)
	}
	if m.BatchesSent == 0 || m.BatchedEvents < 2 {
		t.Errorf("burst of %d produced %d batches carrying %d events; expected coalescing",
			events, m.BatchesSent, m.BatchedEvents)
	}
	sm := sub.Metrics()
	if sm.BatchesReceived != m.BatchesSent {
		t.Errorf("subscriber unpacked %d batches, publisher sent %d",
			sm.BatchesReceived, m.BatchesSent)
	}
	if sm.Published != events {
		t.Errorf("subscriber demodulated %d, want %d", sm.Published, events)
	}
}

// TestV3SubscriberGetsUnbatchedFrames: a publisher with batching enabled
// must downgrade for a subscriber that announced protocol v3 — every event
// arrives in its own frame and no batch frame ever reaches the peer.
func TestV3SubscriberGetsUnbatchedFrames(t *testing.T) {
	pub, mem := newMemPublisher(t, jecho.PublisherConfig{
		QueueDepth: 64,
		BatchBytes: 64 << 10,
		BatchDelay: 5 * time.Millisecond,
	})
	conn, err := mem.Dial(pub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	data, err := wire.Marshal(&wire.Subscribe{
		Protocol:   wire.MinProtocolVersion, // v3: predates batch frames
		Subscriber: "legacy",
		Handler:    imaging.HandlerName,
		Source:     imaging.HandlerSource(64),
		CostModel:  costmodel.DataSizeName,
		Natives:    []string{"displayImage"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteFrame(data); err != nil {
		t.Fatal(err)
	}
	waitSubscribers(t, pub, 1)

	const events = 30
	for i := 0; i < events; i++ {
		if _, err := pub.Publish(imaging.NewFrame(16, 16, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < events {
		_ = conn.SetReadDeadline(deadline)
		frame, err := conn.ReadFrame()
		if err != nil {
			t.Fatalf("after %d of %d events: %v", got, events, err)
		}
		msg, err := wire.Unmarshal(frame)
		if err != nil {
			t.Fatal(err)
		}
		switch msg.(type) {
		case *wire.Batch:
			t.Fatal("publisher sent a batch frame to a v3 subscriber")
		case *wire.Raw, *wire.Continuation:
			got++
		default:
			// Heartbeats and feedback are fine; skip them.
		}
	}
	m := findSub(t, pub, "legacy").Metrics
	if m.BatchesSent != 0 {
		t.Errorf("BatchesSent = %d for a v3 peer, want 0", m.BatchesSent)
	}
	if m.EventsSent != events {
		t.Errorf("EventsSent = %d, want %d", m.EventsSent, events)
	}
}

// TestBatchEntryFaultContainment: one corrupt entry (and one smuggled
// nested batch) inside a batch frame must not poison its neighbours — the
// valid entries demodulate, the bad ones are counted and the corrupt one
// quarantined, exactly the per-frame semantics applied per-entry.
func TestBatchEntryFaultContainment(t *testing.T) {
	mem := transport.NewMem()
	ln, err := mem.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	pubConn := make(chan transport.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if _, err := conn.ReadFrame(); err != nil { // Subscribe handshake
			return
		}
		pubConn <- conn
		for { // drain plans/heartbeats/NACKs so the peer never blocks
			if _, err := conn.ReadFrame(); err != nil {
				return
			}
		}
	}()

	reg, _ := imaging.Builtins()
	res := &results{}
	sub, err := jecho.Subscribe(jecho.SubscriberConfig{
		Addr:              ln.Addr(),
		Transport:         mem,
		Name:              "contained",
		Source:            imaging.HandlerSource(64),
		Handler:           imaging.HandlerName,
		CostModel:         costmodel.DataSizeName,
		Natives:           []string{"displayImage"},
		Builtins:          reg,
		Environment:       costmodel.DefaultEnvironment(),
		OnResult:          res.add,
		HeartbeatInterval: -1,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sub.Close() })

	good1, err := wire.Marshal(&wire.Raw{Handler: imaging.HandlerName, Seq: 1, Event: imaging.NewFrame(8, 8, 1)})
	if err != nil {
		t.Fatal(err)
	}
	good2, err := wire.Marshal(&wire.Raw{Handler: imaging.HandlerName, Seq: 2, Event: imaging.NewFrame(8, 8, 2)})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := []byte{0xEE, 0x01, 0x02}
	nested := wire.AppendBatch(nil, [][]byte{good1})
	batch := wire.AppendBatch(nil, [][]byte{good1, corrupt, nested, good2})

	conn := <-pubConn
	if err := conn.WriteFrame(batch); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for res.count() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("demodulated %d of 2 valid entries", res.count())
		}
		time.Sleep(time.Millisecond)
	}

	m := sub.Metrics()
	if m.BatchesReceived != 1 {
		t.Errorf("BatchesReceived = %d, want 1", m.BatchesReceived)
	}
	if m.Published != 2 {
		t.Errorf("Published = %d, want 2", m.Published)
	}
	if m.DecodeFailures != 2 {
		t.Errorf("DecodeFailures = %d, want 2 (corrupt entry + nested batch)", m.DecodeFailures)
	}
	if m.DeadLettered != 1 {
		t.Errorf("DeadLettered = %d, want 1 (the corrupt entry)", m.DeadLettered)
	}
}

// TestControlBytesSeparated: a channel that is quiet except for heartbeats
// must report zero event bytes — the bytes-saved ratio's denominator — while
// the control counter absorbs the liveness traffic.
func TestControlBytesSeparated(t *testing.T) {
	pub, mem := newMemPublisher(t, jecho.PublisherConfig{
		HeartbeatInterval: 20 * time.Millisecond,
	})
	sub, _ := memSubscribe(t, mem, pub.Addr(), "quiet")
	waitSubscribers(t, pub, 1)

	deadline := time.Now().Add(5 * time.Second)
	for findSub(t, pub, "quiet").Metrics.HeartbeatsSent == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no heartbeat sent")
		}
		time.Sleep(time.Millisecond)
	}
	m := findSub(t, pub, "quiet").Metrics
	if m.BytesOnWire != 0 {
		t.Errorf("publisher event bytes = %d on a quiet channel, want 0", m.BytesOnWire)
	}
	if m.ControlBytesOnWire == 0 {
		t.Error("publisher control bytes = 0 despite heartbeats")
	}
	sm := sub.Metrics()
	if sm.BytesOnWire != 0 {
		t.Errorf("subscriber event bytes = %d on a quiet channel, want 0", sm.BytesOnWire)
	}
}
