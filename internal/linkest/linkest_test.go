package linkest

import (
	"math"
	"testing"
	"time"

	"methodpart/internal/costmodel"
)

// fakeClock is a manually advanced clock for deterministic EWMA tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestEstimator(c *fakeClock, minSamples int) *Estimator {
	return New(Config{
		HalfLife:   time.Second,
		MinSamples: minSamples,
		MinBytes:   1,
		Now:        c.now,
	})
}

// TestEWMAMonotoneConvergence is the property test: after a step change in
// the underlying signal, every subsequent sample moves the estimate
// strictly toward the new level without ever overshooting it.
func TestEWMAMonotoneConvergence(t *testing.T) {
	clk := newFakeClock()
	est := newTestEstimator(clk, 1)

	// Converge near 10ms first.
	for i := 0; i < 20; i++ {
		est.ObserveRTT(10 * time.Millisecond)
		clk.advance(200 * time.Millisecond)
	}
	start := est.Snapshot().RTTMillis
	if math.Abs(start-10) > 1 {
		t.Fatalf("estimate did not settle near 10ms: %v", start)
	}

	// Step the signal to 100ms: the estimate must increase monotonically
	// and never exceed the new level.
	prev := start
	for i := 0; i < 40; i++ {
		est.ObserveRTT(100 * time.Millisecond)
		clk.advance(200 * time.Millisecond)
		cur := est.Snapshot().RTTMillis
		if cur <= prev {
			t.Fatalf("sample %d: estimate %v did not move toward 100 (prev %v)", i, cur, prev)
		}
		if cur > 100 {
			t.Fatalf("sample %d: estimate %v overshot the signal level 100", i, cur)
		}
		prev = cur
	}
	if math.Abs(prev-100) > 5 {
		t.Fatalf("estimate did not converge to 100ms after 40 half-life-spaced samples: %v", prev)
	}
}

// TestEWMAHalfLife pins the time-based alpha: one sample exactly one
// half-life after the previous closes half the gap.
func TestEWMAHalfLife(t *testing.T) {
	clk := newFakeClock()
	est := newTestEstimator(clk, 1)

	est.ObserveRTT(10 * time.Millisecond) // seeds value = 10
	clk.advance(time.Second)              // exactly one half-life
	est.ObserveRTT(20 * time.Millisecond)
	got := est.Snapshot().RTTMillis
	if math.Abs(got-15) > 1e-9 {
		t.Fatalf("one half-life sample should close half the gap: got %v want 15", got)
	}
}

// TestWarmupGateHoldsDefaultEnvironment is the gate property: until each
// axis has MinSamples samples, Environment must return the base value for
// that axis unchanged.
func TestWarmupGateHoldsDefaultEnvironment(t *testing.T) {
	clk := newFakeClock()
	est := newTestEstimator(clk, 3)
	base := costmodel.DefaultEnvironment()

	// Two RTT samples: below the gate, base untouched.
	for i := 0; i < 2; i++ {
		est.ObserveRTT(50 * time.Millisecond)
		clk.advance(time.Second)
	}
	env, measured := est.Environment(base)
	if measured || env != base {
		t.Fatalf("2 samples with gate 3 must not override base: measured=%v env=%+v", measured, env)
	}

	// Third sample clears the RTT gate only: LatencyMS overridden,
	// Bandwidth still the base value.
	est.ObserveRTT(50 * time.Millisecond)
	env, measured = est.Environment(base)
	if !measured {
		t.Fatal("3 samples must clear the gate")
	}
	if math.Abs(env.LatencyMS-25) > 1 {
		t.Fatalf("LatencyMS should be ~RTT/2=25: %v", env.LatencyMS)
	}
	if env.Bandwidth != base.Bandwidth {
		t.Fatalf("bandwidth axis is cold, must keep base %v: got %v", base.Bandwidth, env.Bandwidth)
	}

	// Bandwidth warms independently: anchor + 3 qualifying intervals.
	total := uint64(0)
	est.ObserveBytes(total)
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		total += 500_000
		est.ObserveBytes(total)
	}
	env, _ = est.Environment(base)
	if math.Abs(env.Bandwidth-500) > 50 { // 500_000 B / 1000 ms
		t.Fatalf("bandwidth should converge near 500 B/ms: %v", env.Bandwidth)
	}
}

// TestEchoRoundTrip ties Probe/Echo to an RTT sample on the caller's clock.
func TestEchoRoundTrip(t *testing.T) {
	clk := newFakeClock()
	est := newTestEstimator(clk, 1)

	est.Probe(7)
	clk.advance(42 * time.Millisecond)
	est.Echo(7)
	if got := est.Snapshot().RTTMillis; math.Abs(got-42) > 1e-9 {
		t.Fatalf("echo RTT sample: got %v want 42", got)
	}

	// Duplicate and unknown echoes are ignored.
	est.Echo(7)
	est.Echo(99)
	if got := est.Snapshot().RTTSamples; got != 1 {
		t.Fatalf("duplicate/unknown echoes must not add samples: %d", got)
	}
}

// TestProbeTableBounded: a peer that never echoes must not grow the probe
// table without bound.
func TestProbeTableBounded(t *testing.T) {
	clk := newFakeClock()
	est := newTestEstimator(clk, 1)
	for seq := uint64(1); seq <= 10_000; seq++ {
		est.Probe(seq)
	}
	est.mu.Lock()
	n := len(est.probes)
	est.mu.Unlock()
	if n > maxProbesInFlight {
		t.Fatalf("probe table grew to %d entries (cap %d)", n, maxProbesInFlight)
	}
	// Recent probes must survive the eviction.
	clk.advance(10 * time.Millisecond)
	est.Echo(10_000)
	if got := est.Snapshot().RTTSamples; got != 1 {
		t.Fatal("most recent probe should still be in the table")
	}
}

// TestIdleIntervalsDoNotDecay: quiet intervals produce no bandwidth sample
// (the estimate holds rather than trending to zero on an idle link).
func TestIdleIntervalsDoNotDecay(t *testing.T) {
	clk := newFakeClock()
	est := New(Config{HalfLife: time.Second, MinSamples: 1, MinBytes: 1000, Now: clk.now})

	est.ObserveBytes(0)
	clk.advance(time.Second)
	est.ObserveBytes(100_000) // 100 B/ms
	before := est.Snapshot()

	for i := 0; i < 10; i++ {
		clk.advance(time.Second)
		est.ObserveBytes(100_000) // nothing moved
	}
	after := est.Snapshot()
	if after.BandwidthBytesPerMS != before.BandwidthBytesPerMS || after.BandwidthSamples != before.BandwidthSamples {
		t.Fatalf("idle intervals changed the estimate: before %+v after %+v", before, after)
	}
}

// TestResetDiscardsState: after Reset the estimator is cold again — no
// samples, no override, and stale echoes don't resolve.
func TestResetDiscardsState(t *testing.T) {
	clk := newFakeClock()
	est := newTestEstimator(clk, 1)

	est.Probe(1)
	clk.advance(10 * time.Millisecond)
	est.Echo(1)
	est.ObserveBytes(0)
	clk.advance(time.Second)
	est.ObserveBytes(1 << 20)
	if s := est.Snapshot(); !s.RTTWarm || !s.BandwidthWarm {
		t.Fatalf("setup should warm both axes: %+v", s)
	}

	est.Probe(2)
	est.Reset()

	s := est.Snapshot()
	if s.RTTSamples != 0 || s.BandwidthSamples != 0 || s.RTTWarm || s.BandwidthWarm {
		t.Fatalf("reset left state behind: %+v", s)
	}
	base := costmodel.DefaultEnvironment()
	if env, measured := est.Environment(base); measured || env != base {
		t.Fatalf("reset estimator must not override base: %+v", env)
	}
	clk.advance(5 * time.Millisecond)
	est.Echo(2) // pre-reset probe must not resolve
	if got := est.Snapshot().RTTSamples; got != 0 {
		t.Fatalf("pre-reset probe resolved after reset: %d samples", got)
	}
}

// TestDegenerateSamplesIgnored: NaN/Inf/negative inputs never poison the
// estimate.
func TestDegenerateSamplesIgnored(t *testing.T) {
	clk := newFakeClock()
	est := newTestEstimator(clk, 1)

	est.ObserveRTT(-time.Second)
	if got := est.Snapshot().RTTSamples; got != 0 {
		t.Fatalf("negative RTT produced a sample: %d", got)
	}

	var w ewma
	w.observe(math.NaN(), clk.now(), time.Second)
	w.observe(math.Inf(1), clk.now(), time.Second)
	w.observe(-1, clk.now(), time.Second)
	if w.samples != 0 {
		t.Fatalf("degenerate ewma inputs produced samples: %d", w.samples)
	}
}
