package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// BatchConfig drives the wire-level batching comparison: the same
// small-payload publish burst pushed through one subscription with
// batching off and then on, so the two rows differ only in how frames
// leave the send pipeline.
type BatchConfig struct {
	// Frames is the number of events per measured run.
	Frames int
	// FrameSize is the square image edge length — kept small so framing
	// overhead, the thing batching amortizes, is a visible fraction of
	// the per-event cost.
	FrameSize int
	// BatchBytes is the coalescing budget of the batched run.
	BatchBytes int
	// BatchDelay is the linger window of the batched run.
	BatchDelay time.Duration
}

// DefaultBatchConfig measures 2000 tiny frames against a 64 KiB budget.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{Frames: 2000, FrameSize: 8, BatchBytes: 64 << 10}
}

// BatchRow is one mode's outcome.
type BatchRow struct {
	// Mode names the sender configuration ("unbatched", "batched(64KiB)").
	Mode string
	// Frames is the measured event count.
	Frames int
	// EventsPerSec is end-to-end throughput: publish start to the last
	// event arriving at the consumer.
	EventsPerSec float64
	// AllocsPerEvent is the process-wide heap allocation count per event
	// during the measured window (publisher, pipeline and consumer).
	AllocsPerEvent float64
	// Batches is how many batch wire frames the run produced.
	Batches uint64
	// MeanBatch is the mean events per batch frame (0 when unbatched).
	MeanBatch float64
	// WireKB is the event bytes that crossed the wire, framing included.
	WireKB float64
}

// BatchExperiment publishes the same burst unbatched and batched and
// reports throughput, allocation rate and wire volume for each. The
// consumer is a raw protocol-v4 peer that counts events without
// demodulating, so the table isolates the channel wire layer — the cost
// batching actually changes — from interpreter work.
func BatchExperiment(cfg BatchConfig) ([]BatchRow, error) {
	if cfg.Frames <= 0 {
		cfg.Frames = DefaultBatchConfig().Frames
	}
	if cfg.FrameSize <= 0 {
		cfg.FrameSize = DefaultBatchConfig().FrameSize
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = DefaultBatchConfig().BatchBytes
	}
	var rows []BatchRow
	for _, batchBytes := range []int{0, cfg.BatchBytes} {
		row, err := runBatchOnce(cfg, batchBytes)
		if err != nil {
			return nil, fmt.Errorf("bench: batch (budget %d): %w", batchBytes, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runBatchOnce(cfg BatchConfig, batchBytes int) (BatchRow, error) {
	mem := transport.NewMem()
	reg, _ := imaging.Builtins()
	pub, err := jecho.NewPublisher(jecho.PublisherConfig{
		Transport: mem,
		Builtins:  reg,
		// Keep profiling reports and heartbeats out of the measured loop:
		// the comparison is about event framing, not control traffic.
		FeedbackEvery:     1 << 30,
		HeartbeatInterval: -1,
		QueueDepth:        64,
		BatchBytes:        batchBytes,
		BatchDelay:        cfg.BatchDelay,
		Logf:              func(string, ...any) {},
	})
	if err != nil {
		return BatchRow{}, err
	}
	defer pub.Close()

	// The consumer: a protocol-v4 peer that unpacks frames and counts
	// events without running a demodulator.
	conn, err := mem.Dial(pub.Addr())
	if err != nil {
		return BatchRow{}, err
	}
	defer conn.Close()
	hello, err := wire.Marshal(&wire.Subscribe{
		Protocol:   wire.ProtocolVersion,
		Subscriber: "consumer",
		Handler:    imaging.HandlerName,
		Source:     imaging.HandlerSource(64),
		CostModel:  costmodel.DataSizeName,
		Natives:    []string{"displayImage"},
	})
	if err != nil {
		return BatchRow{}, err
	}
	if err := conn.WriteFrame(hello); err != nil {
		return BatchRow{}, err
	}
	var received atomic.Uint64
	go func() {
		for {
			frame, err := conn.ReadFrame()
			if err != nil {
				return
			}
			msg, err := wire.Unmarshal(frame)
			if err != nil {
				continue
			}
			switch m := msg.(type) {
			case *wire.Batch:
				received.Add(uint64(len(m.Entries)))
			case *wire.Raw, *wire.Continuation:
				received.Add(1)
			}
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for pub.Subscribers() != 1 {
		if time.Now().After(deadline) {
			return BatchRow{}, fmt.Errorf("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}

	waitReceived := func(want uint64) error {
		deadline := time.Now().Add(30 * time.Second)
		for received.Load() < want {
			if time.Now().After(deadline) {
				return fmt.Errorf("consumer saw %d of %d events", received.Load(), want)
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}

	// Warm the path (pools, maps, lazily sized buffers) outside the
	// measured window.
	const warmup = 64
	for i := 0; i < warmup; i++ {
		if _, err := pub.Publish(imaging.NewFrame(cfg.FrameSize, cfg.FrameSize, int64(i))); err != nil {
			return BatchRow{}, err
		}
	}
	if err := waitReceived(warmup); err != nil {
		return BatchRow{}, err
	}
	before := pub.Subscriptions()[0].Metrics

	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for i := 0; i < cfg.Frames; i++ {
		if _, err := pub.Publish(imaging.NewFrame(cfg.FrameSize, cfg.FrameSize, int64(warmup+i))); err != nil {
			return BatchRow{}, err
		}
	}
	if err := waitReceived(warmup + uint64(cfg.Frames)); err != nil {
		return BatchRow{}, err
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	after := pub.Subscriptions()[0].Metrics

	mode := "unbatched"
	if batchBytes > 0 {
		mode = fmt.Sprintf("batched(%dKiB)", batchBytes>>10)
	}
	row := BatchRow{
		Mode:           mode,
		Frames:         cfg.Frames,
		EventsPerSec:   float64(cfg.Frames) / elapsed.Seconds(),
		AllocsPerEvent: float64(ms1.Mallocs-ms0.Mallocs) / float64(cfg.Frames),
		Batches:        after.BatchesSent - before.BatchesSent,
		WireKB:         float64(after.BytesOnWire-before.BytesOnWire) / 1024,
	}
	if row.Batches > 0 {
		row.MeanBatch = float64(after.BatchedEvents-before.BatchedEvents) / float64(row.Batches)
	}
	return row, nil
}

// WriteBatch renders the batching comparison.
func WriteBatch(w io.Writer, rows []BatchRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Mode,
			fmt.Sprintf("%d", r.Frames),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%.1f", r.AllocsPerEvent),
			fmt.Sprintf("%d", r.Batches),
			fmt.Sprintf("%.1f", r.MeanBatch),
			fmt.Sprintf("%.1f", r.WireKB),
		})
	}
	writeTable(w, "Wire-level batching: small-payload burst, raw v4 consumer (mem transport)",
		[]string{"mode", "frames", "events/sec", "allocs/event", "batches", "meanBatch", "wireKB"},
		out)
}
