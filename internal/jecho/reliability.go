package jecho

import (
	"sync"
	"sync/atomic"
	"time"

	"methodpart/internal/obsv"
	"methodpart/internal/wire"
)

// Reliability selects a subscription's delivery contract (protocol v5).
type Reliability int

const (
	// BestEffort is the classic fire-and-forget channel: no sequence
	// envelopes, no replay ring, no acks. The publish path is byte-for-byte
	// the pre-v5 one and keeps its zero-allocation guarantee.
	BestEffort Reliability = iota
	// AtLeastOnce sequences every event per subscription, retains sent
	// frames in a byte-budgeted publisher-side replay ring until the
	// subscriber's cumulative ack releases them, repairs gaps by
	// retransmission, and resumes mid-stream across reconnects. Events the
	// ring evicted before repair are declared Lost and counted as DataLoss —
	// loss is loud, never silent. Duplicates from replay are absorbed by
	// subscriber-side dedup before the handler sees them.
	AtLeastOnce
)

// String names the mode for logs and tables.
func (r Reliability) String() string {
	switch r {
	case BestEffort:
		return "best-effort"
	case AtLeastOnce:
		return "at-least-once"
	default:
		return "unknown"
	}
}

// DefaultReplayRingBytes bounds one subscription's replay ring when the
// publisher config leaves ReplayRingBytes zero.
const DefaultReplayRingBytes = 256 << 10

// DefaultAckEvery is how many delivered events elapse between standalone
// cumulative acks when the subscriber config leaves AckEvery zero. Idle
// heartbeats piggyback the ack regardless, so this only paces the
// steady-state ring release.
const DefaultAckEvery = 32

// maxOrphanRelStates caps how many detached reliable-delivery states (ring
// + sequence counters of subscriptions whose connection died) a publisher
// retains awaiting resume. Beyond it the oldest orphan is dropped, frames
// released — a reconnect after that is handed a fresh stream under a new
// epoch, which the subscriber detects via the StreamStart handshake,
// resetting its dedup state and counting a StreamReset (the dropped
// stream's undelivered tail is unrecoverable and its size unknowable, so
// the break is surfaced as a loud reset rather than a fabricated DataLoss
// count).
const maxOrphanRelStates = 64

// streamEpoch generates stream epochs: process-unique via the atomic
// counter, unique across publisher restarts via the wall-clock base. An
// epoch identifies one relState's sequence numbering, so a resuming
// subscriber can tell "same stream, resume at ResumeSeq" from "fresh
// stream, my resume point is meaningless" — without it, a fresh stream
// re-sequencing from 1 toward a subscriber whose contig is N would have
// its first N events silently dropped as duplicates.
var (
	streamEpochOnce sync.Once
	streamEpochBase uint64
	streamEpochSeq  atomic.Uint64
)

func nextStreamEpoch() uint64 {
	streamEpochOnce.Do(func() { streamEpochBase = uint64(time.Now().UnixNano()) })
	e := streamEpochBase + streamEpochSeq.Add(1)
	if e == 0 { // 0 is the receiver's "no stream adopted" sentinel
		e = 1
	}
	return e
}

// relKey identifies a delivery stream across reconnects: the resubscribe
// handshake carries the same subscriber name, channel and handler, so the
// replacement subscription adopts the old stream's state and resumes
// mid-stream.
type relKey struct {
	subscriber string
	channel    string
	handler    string
}

// ringEntry is one staged frame awaiting acknowledgement.
type ringEntry struct {
	f     *wire.Frame
	bytes int
}

// replaySet is the outcome of a replay request: ring frames to re-send
// (each carrying one retained reference for the caller) and, when the ring
// evicted past the requested range, the unrecoverable prefix to declare
// Lost.
type replaySet struct {
	frames []queuedFrame
	// lostFrom/lostTo is the evicted prefix, inclusive; lostTo == 0 means
	// nothing was lost.
	lostFrom, lostTo uint64
}

// relState is the publisher-side half of one at-least-once stream: the
// per-subscription delivery sequence counter plus the byte-budgeted ring of
// sent-but-unacked frames. It outlives the subscription that created it —
// retire detaches it into the publisher's orphan set so a resubscribe can
// adopt it and resume.
type relState struct {
	budget int // ring byte budget; < 0 disables retention (sequencing only)

	// epoch identifies this state's sequence numbering in the StreamStart
	// handshake. Immutable after newRelState.
	epoch uint64

	// enqMu serializes stage+enqueue across concurrently publishing
	// goroutines so pipeline queue order matches sequence order.
	enqMu sync.Mutex

	mu      sync.Mutex
	next    uint64 // next sequence number to assign; first event gets 1
	headSeq uint64 // sequence of ring[0]; ring covers [headSeq, next)
	ring    []ringEntry
	ringLen int // bytes currently retained

	// Idle-replay heuristic: a subscriber missing the *trailing* frames of
	// a burst never sees a higher seq, so it cannot detect the gap — but it
	// keeps acking the same contiguous seq (standalone and on heartbeats).
	// Repeated identical acks with nothing staged in between while unacked
	// frames exist mean the tail may need replay. A merely *stalled*
	// handler (frames queued or in flight, not lost) produces the same
	// signal, so successive replays for one stalled ack back off
	// exponentially — the first fires after 2 identical acks, then 4, 8, …
	// capped at 64 — bounding the duplicated bytes logarithmically instead
	// of re-sending the whole unacked tail every other heartbeat.
	lastAck     uint64
	stagedSince bool
	ackRepeats  uint64 // identical idle acks since the last reset/replay
	idleBackoff uint   // doublings applied to the next replay threshold

	// Orphan bookkeeping, guarded by the publisher's relMu. registered
	// reports the state lives in the publisher's resume map; an
	// unregistered state (duplicate subscription triple) is closed on
	// retire instead of parked.
	attached   bool
	registered bool
	detachedAt time.Time

	evictions uint64 // guarded by mu; snapshot via stats

	// occupancy samples the ring's retained bytes after every stage, so
	// the exported histogram shows how hard the budget is working.
	occupancy *obsv.Histogram
}

func newRelState(budget int) *relState {
	if budget == 0 {
		budget = DefaultReplayRingBytes
	}
	return &relState{
		budget: budget, epoch: nextStreamEpoch(),
		next: 1, headSeq: 1, lastAck: ^uint64(0),
		occupancy: obsv.NewHistogram(obsv.SizeBuckets),
	}
}

// stageAndEnqueue assigns the next delivery sequence to f, retains it in
// the replay ring, and hands it to the pipeline. It consumes the caller's
// frame reference exactly like enqueue does (the ring holds its own). The
// enqMu critical section spans both steps so the queue drains in sequence
// order. An errRetired enqueue still leaves the frame staged: the ring is
// precisely what survives for the resubscribe to replay.
func (r *relState) stageAndEnqueue(pipe *sendPipeline, f *wire.Frame, m *channelMetrics) error {
	r.enqMu.Lock()
	seq, evicted := r.stage(f)
	if evicted > 0 {
		m.ringEvictions.Add(evicted)
	}
	err := pipe.enqueue(queuedFrame{f: f, seq: seq})
	r.enqMu.Unlock()
	return err
}

// stage assigns a sequence number and retains f in the ring, evicting the
// oldest entries when the byte budget overflows.
func (r *relState) stage(f *wire.Frame) (seq uint64, evicted uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	seq = r.next
	r.next++
	r.stagedSince = true
	if r.budget < 0 {
		r.headSeq = r.next // nothing retained: everything below next is gone
		return seq, 0
	}
	f.Retain(1)
	r.ring = append(r.ring, ringEntry{f: f, bytes: f.Len()})
	r.ringLen += f.Len()
	// Keep at least the newest frame so an oversized event is still
	// repairable until the next stage displaces it.
	for r.ringLen > r.budget && len(r.ring) > 1 {
		r.evictFrontLocked()
		r.evictions++
		evicted++
	}
	r.occupancy.Observe(float64(r.ringLen))
	return seq, evicted
}

func (r *relState) evictFrontLocked() {
	e := r.ring[0]
	r.ring[0] = ringEntry{}
	r.ring = r.ring[1:]
	r.ringLen -= e.bytes
	r.headSeq++
	e.f.Release()
}

// onAck releases ring entries up to the cumulative ack and decides whether
// the idle-replay heuristic fires. An ack beyond anything ever staged is
// corrupt: it is clamped so it cannot release unsent entries or corrupt
// the counters, and reported via the clamped return so callers can count
// it. Replays for a repeating idle ack back off exponentially (see the
// field comment): ack progress or fresh staging resets the backoff.
func (r *relState) onAck(seq uint64) (released int, clamped bool, rep replaySet, replay bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ack := seq
	if ack > r.next-1 {
		ack = r.next - 1
		clamped = true
	}
	released = r.releaseToLocked(ack)
	switch {
	case ack != r.lastAck || ack >= r.next-1:
		// Progress (or nothing outstanding): record and disarm.
		r.lastAck = ack
		r.ackRepeats, r.idleBackoff = 0, 0
	case r.stagedSince:
		// New frames went out since the last ack; the subscriber has not
		// had a chance to ack them yet — not an idle signal.
		r.ackRepeats = 0
	default:
		r.ackRepeats++
		if r.ackRepeats >= 1<<min(r.idleBackoff, 6) {
			rep = r.buildReplayLocked(ack+1, r.next-1)
			replay = true
			r.ackRepeats = 0
			if r.idleBackoff < 6 {
				r.idleBackoff++
			}
		}
	}
	r.stagedSince = false
	return released, clamped, rep, replay
}

func (r *relState) releaseToLocked(seq uint64) int {
	n := 0
	for len(r.ring) > 0 && r.headSeq <= seq {
		r.evictFrontLocked()
		n++
	}
	return n
}

// resume builds the replay for a reconnect: everything after the
// subscriber's last contiguous seq, with the evicted prefix declared Lost.
// A resume point stamped with a different epoch belongs to a dead stream
// (publisher restart, evicted orphan, duplicate-triple fresh state) and
// says nothing about *this* stream's numbering — it must neither release
// ring entries nor suppress replay. The subscriber resets on this stream's
// StreamStart and re-acks from zero, so a fresh state replays nothing here
// and a populated foreign state replays via normal gap repair after the
// reset.
func (r *relState) resume(contig, epoch uint64) replaySet {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch != r.epoch {
		return replaySet{}
	}
	// The resume point acts as an ack: the subscriber durably has
	// everything up to it.
	r.releaseToLocked(contig)
	if contig >= r.next-1 {
		return replaySet{}
	}
	return r.buildReplayLocked(contig+1, r.next-1)
}

// replayRange builds the replay for an explicit retransmit request,
// clamped to what was ever staged.
func (r *relState) replayRange(from, to uint64) replaySet {
	r.mu.Lock()
	defer r.mu.Unlock()
	if from == 0 {
		from = 1
	}
	if to > r.next-1 {
		to = r.next - 1
	}
	if from > to {
		return replaySet{}
	}
	return r.buildReplayLocked(from, to)
}

// buildReplayLocked assembles [from, to]: the sub-range the ring evicted
// becomes the lost prefix, the rest is retained frames (one extra
// reference each, owned by the caller).
func (r *relState) buildReplayLocked(from, to uint64) replaySet {
	var rep replaySet
	if from < r.headSeq {
		rep.lostFrom = from
		hi := r.headSeq - 1
		if hi > to {
			hi = to
		}
		rep.lostTo = hi
		from = r.headSeq
	}
	for seq := from; seq <= to; seq++ {
		i := int(seq - r.headSeq)
		if i < 0 || i >= len(r.ring) {
			break
		}
		e := r.ring[i]
		e.f.Retain(1)
		rep.frames = append(rep.frames, queuedFrame{f: e.f, seq: seq})
	}
	return rep
}

// stats snapshots the ring for observability.
func (r *relState) stats() (staged uint64, ringFrames, ringBytes int, evictions uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next - 1, len(r.ring), r.ringLen, r.evictions
}

// close releases every retained frame. The state must not be used after.
func (r *relState) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.ring) > 0 {
		r.evictFrontLocked()
	}
}

// acquireRelState finds or creates the delivery stream for key. A detached
// state (previous connection died) is adopted — that is what makes resume
// work. A state still attached to a live subscription means a duplicate
// (subscriber, channel, handler) triple; the newcomer gets a fresh stream
// rather than corrupting the live one.
func (p *Publisher) acquireRelState(key relKey) *relState {
	p.relMu.Lock()
	defer p.relMu.Unlock()
	if p.relStates == nil {
		p.relStates = make(map[relKey]*relState)
	}
	st := p.relStates[key]
	if st == nil || st.attached {
		st = newRelState(p.cfg.ReplayRingBytes)
		if p.relStates[key] == nil {
			p.relStates[key] = st
			st.registered = true
		}
	}
	st.attached = true
	return st
}

// detachRelState parks a retiring subscription's stream for adoption by a
// resubscribe, evicting the oldest orphan beyond the cap.
func (p *Publisher) detachRelState(st *relState) {
	if st == nil {
		return
	}
	p.relMu.Lock()
	st.attached = false
	st.detachedAt = time.Now()
	if !st.registered {
		p.relMu.Unlock()
		st.close()
		return
	}
	var (
		oldestKey relKey
		oldest    *relState
		orphans   int
	)
	for k, s := range p.relStates {
		if s.attached {
			continue
		}
		orphans++
		if oldest == nil || s.detachedAt.Before(oldest.detachedAt) {
			oldest, oldestKey = s, k
		}
	}
	if orphans > maxOrphanRelStates && oldest != nil {
		delete(p.relStates, oldestKey)
	} else {
		oldest = nil
	}
	p.relMu.Unlock()
	if oldest != nil {
		oldest.close()
	}
}

// closeRelStates releases every stream on publisher shutdown.
func (p *Publisher) closeRelStates() {
	p.relMu.Lock()
	states := p.relStates
	p.relStates = nil
	p.relMu.Unlock()
	for _, st := range states {
		st.close()
	}
}

// relReceiver is the subscriber-side half of one at-least-once stream:
// dedup, gap detection and cumulative-ack pacing over the delivery
// sequence numbers unwrapped from SeqEvent envelopes.
type relReceiver struct {
	mu       sync.Mutex
	epoch    uint64              // adopted stream epoch; 0 = none yet
	contig   uint64              // every seq <= contig has been received
	ahead    map[uint64]struct{} // received seqs above a gap
	reqHigh  uint64              // highest seq already covered by a retransmit request
	sinceAck uint64
	ackEvery uint64

	// Gap-retry pacing: reqHigh alone is a monotonic high-water mark, so a
	// retransmit request whose replay was dropped (ring overflow under
	// DropOldest, a swallowed write error) would never be re-issued on the
	// same connection. The heartbeat loop calls retryGap every tick; when
	// the gap persists with no contig progress across enough consecutive
	// ticks the whole outstanding range is re-requested, with the
	// threshold doubling per retry (2, 4, 8, … capped at 64 ticks) so a
	// genuinely slow replay is not buried under duplicate requests.
	hbContig   uint64 // contig at the last heartbeat tick
	gapStalls  uint64 // consecutive ticks with a gap and no progress
	gapBackoff uint   // doublings applied to the next retry threshold
}

func newRelReceiver(ackEvery uint64) *relReceiver {
	if ackEvery == 0 {
		ackEvery = DefaultAckEvery
	}
	return &relReceiver{ahead: make(map[uint64]struct{}), ackEvery: ackEvery}
}

// admit classifies one received seq. deliver reports whether the event is
// new (false = duplicate: drop it and ack immediately so a replaying
// publisher converges). gapFrom/gapTo, when gapTo != 0, is a fresh gap to
// request retransmission for. ackDue reports that the standalone-ack pace
// elapsed; ackSeq is the current contiguous seq for either ack.
func (r *relReceiver) admit(seq uint64) (deliver bool, gapFrom, gapTo uint64, ackDue bool, ackSeq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq <= r.contig {
		return false, 0, 0, false, r.contig
	}
	if _, dup := r.ahead[seq]; dup {
		return false, 0, 0, false, r.contig
	}
	if seq == r.contig+1 {
		r.contig++
		for {
			if _, ok := r.ahead[r.contig+1]; !ok {
				break
			}
			delete(r.ahead, r.contig+1)
			r.contig++
		}
	} else {
		r.ahead[seq] = struct{}{}
		// Request only the part of the gap no earlier request covered.
		if seq-1 > r.reqHigh {
			gapFrom = r.contig + 1
			if r.reqHigh+1 > gapFrom {
				gapFrom = r.reqHigh + 1
			}
			gapTo = seq - 1
			r.reqHigh = gapTo
			// Trim already-received seqs off the range's edges — the
			// request is one contiguous span, so interior holes stay, but
			// edge trims keep a common case (one missing seq under a pile
			// of ahead arrivals) from re-requesting received events.
			for gapFrom <= gapTo {
				if _, ok := r.ahead[gapFrom]; !ok {
					break
				}
				gapFrom++
			}
			for gapTo >= gapFrom {
				if _, ok := r.ahead[gapTo]; !ok {
					break
				}
				gapTo--
			}
			if gapFrom > gapTo {
				gapFrom, gapTo = 0, 0
			}
		}
	}
	r.sinceAck++
	if r.sinceAck >= r.ackEvery {
		r.sinceAck = 0
		ackDue = true
	}
	return true, gapFrom, gapTo, ackDue, r.contig
}

// lost processes a Lost notice: every seq in [from, to] never received
// counts as data loss, and the receiver advances past the range so
// delivery resumes. Returns the loss count and the new contiguous seq to
// ack immediately (the publisher is waiting on it).
func (r *relReceiver) lost(from, to uint64) (missing uint64, ackSeq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for seq := from; seq <= to && seq != 0; seq++ {
		if seq <= r.contig {
			continue
		}
		if _, ok := r.ahead[seq]; ok {
			delete(r.ahead, seq)
			continue
		}
		missing++
	}
	if to > r.contig {
		r.contig = to
		for {
			if _, ok := r.ahead[r.contig+1]; !ok {
				break
			}
			delete(r.ahead, r.contig+1)
			r.contig++
		}
	}
	if r.reqHigh < r.contig {
		r.reqHigh = r.contig
	}
	return missing, r.contig
}

// contiguous returns the highest contiguously received seq — the resume
// point a reconnect handshake carries and the value every ack reports.
func (r *relReceiver) contiguous() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.contig
}

// resumePoint returns the reconnect handshake's ResumeSeq/ResumeEpoch
// pair: the last contiguous seq and the epoch of the stream it counts.
func (r *relReceiver) resumePoint() (seq, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.contig, r.epoch
}

// streamStart processes the publisher's StreamStart handshake frame. The
// first epoch ever seen is adopted silently; the same epoch again (a
// resumed stream) is a no-op. A *different* epoch means the old stream is
// dead — its numbering no longer describes anything the publisher will
// send — so every piece of per-stream state resets before the new
// stream's seq 1 arrives; otherwise admit would drop the first contig
// events of the new stream as duplicates of the old one. reset reports
// that a live stream was discarded, so the caller can count and log it:
// the old stream's undelivered tail is unrecoverable and its size
// unknowable from this side.
func (r *relReceiver) streamStart(epoch uint64) (reset bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch == r.epoch {
		return false
	}
	reset = r.epoch != 0
	r.epoch = epoch
	if reset {
		r.contig = 0
		r.ahead = make(map[uint64]struct{})
		r.reqHigh = 0
		r.sinceAck = 0
		r.hbContig, r.gapStalls, r.gapBackoff = 0, 0, 0
	}
	return reset
}

// retryGap is the heartbeat-paced re-request of a stuck gap. Each tick it
// observes whether a gap exists (ahead non-empty) and whether contig moved
// since the previous tick; after enough stalled ticks (doubling per retry,
// see the field comment) it returns the full outstanding range to
// re-request, edge-trimmed against already-received seqs. A zero return
// means nothing to re-request this tick.
func (r *relReceiver) retryGap() (from, to uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ahead) == 0 || r.contig > r.hbContig {
		r.hbContig = r.contig
		r.gapStalls, r.gapBackoff = 0, 0
		return 0, 0
	}
	r.gapStalls++
	if r.gapStalls < 2<<min(r.gapBackoff, 5) {
		return 0, 0
	}
	r.gapStalls = 0
	if r.gapBackoff < 5 {
		r.gapBackoff++
	}
	var high uint64
	for seq := range r.ahead {
		if seq > high {
			high = seq
		}
	}
	// ahead is non-empty and contig+1 is never in it (it would have been
	// merged), so [contig+1, high-1] is a valid range containing at least
	// the first missing seq.
	from, to = r.contig+1, high-1
	for to >= from {
		if _, ok := r.ahead[to]; !ok {
			break
		}
		to--
	}
	if r.reqHigh < to {
		r.reqHigh = to
	}
	return from, to
}

// resetRequests forgets outstanding retransmit requests and retry pacing.
// Called on reconnect: the old connection's requests died with it, so gaps
// observed after resuming must be re-requested.
func (r *relReceiver) resetRequests() {
	r.mu.Lock()
	r.reqHigh = r.contig
	r.hbContig = r.contig
	r.gapStalls, r.gapBackoff = 0, 0
	r.mu.Unlock()
}
