// Engine experiment: stepping interpreter vs closure-compiled execution on
// the partition hot paths. Method Partitioning's premise is that modulation
// is cheap enough to run on every published event (§2.6); this experiment
// quantifies the executor's share of that cost by timing the same
// modulate/demodulate stages under both engines.
package bench

import (
	"fmt"
	"io"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/testprog"
	"methodpart/internal/wire"
)

// EngineRow compares the two execution engines on one pipeline stage of one
// handler.
type EngineRow struct {
	// Handler names the workload program.
	Handler string
	// Stage is the pipeline stage timed: "modulate" (sender half under a
	// splitting plan) or "demodulate" (receiver running a raw event whole).
	Stage string
	// SteppingNS and CompiledNS are mean wall-clock ns per message.
	SteppingNS, CompiledNS float64
	// Speedup is SteppingNS / CompiledNS.
	Speedup float64
}

// engineWorkload is one handler prepared for both stages.
type engineWorkload struct {
	name  string
	prog  *mir.Program
	table *mir.ClassTable
	reg   func() *interp.Registry
	event func() mir.Value
}

func engineWorkloads() ([]engineWorkload, error) {
	loopUnit := asm.MustParse(testprog.LoopSource)
	loopProg, ok := loopUnit.Program("sum")
	if !ok {
		return nil, fmt.Errorf("bench: loop handler missing")
	}
	pushUnit := testprog.PushUnit()
	pushProg, ok := pushUnit.Program("push")
	if !ok {
		return nil, fmt.Errorf("bench: push handler missing")
	}
	pushClasses, err := pushUnit.ClassTable()
	if err != nil {
		return nil, fmt.Errorf("bench: push classes: %w", err)
	}
	loopEvent := make(mir.IntArray, 1024)
	for i := range loopEvent {
		loopEvent[i] = int64(i % 97)
	}
	return []engineWorkload{
		{
			name:  "sum-1024",
			prog:  loopProg,
			reg:   func() *interp.Registry { reg, _ := testprog.LoopBuiltins(); return reg },
			event: func() mir.Value { return loopEvent },
		},
		{
			name:  "push-32x32",
			prog:  pushProg,
			table: pushClasses,
			reg:   func() *interp.Registry { reg, _ := testprog.PushBuiltins(); return reg },
			event: func() mir.Value { return testprog.NewImageData(32, 32) },
		},
	}, nil
}

// splitPlan returns a plan built from the latest PSEs that forms a valid
// cut, so the modulate stage executes as much of the handler as the PSE
// table allows at the sender. It prefers a single late PSE and grows the
// set backwards when one edge alone cannot cut every path (e.g. push's
// filter branch bypasses the transform edges).
func splitPlan(c *partition.Compiled) (*partition.Plan, error) {
	var split []int32
	for id := int32(c.NumPSEs()) - 1; id >= 1; id-- {
		split = append(split, id)
		if c.ValidateSplitSet(split) == nil {
			return partition.NewPlan(c.NumPSEs(), 1, split, nil)
		}
	}
	return nil, fmt.Errorf("bench: no PSE plan cuts %s", c.Prog.Name)
}

// bestOf reduces timer and GC noise by taking the fastest of three timeOp
// measurements — handlers dominated by allocating native builtins (push's
// resize) otherwise wobble several percent between runs.
func bestOf(fn func()) float64 {
	best := timeOp(fn)
	for i := 0; i < 2; i++ {
		if ns := timeOp(fn); ns < best {
			best = ns
		}
	}
	return best
}

// EngineExperiment times the modulate and demodulate stages of each
// workload under both execution engines.
func EngineExperiment() ([]EngineRow, error) {
	workloads, err := engineWorkloads()
	if err != nil {
		return nil, err
	}
	var rows []EngineRow
	for _, wl := range workloads {
		stages := []string{"modulate", "demodulate"}
		ns := make(map[string]map[partition.Engine]float64, len(stages))
		for _, s := range stages {
			ns[s] = make(map[partition.Engine]float64, 2)
		}
		for _, engine := range []partition.Engine{partition.EngineStepping, partition.EngineCompiled} {
			c, err := partition.Compile(wl.prog, wl.table, wl.reg(), costmodel.NewDataSize())
			if err != nil {
				return nil, fmt.Errorf("bench: engine compile %s: %w", wl.name, err)
			}
			c.Engine = engine

			plan, err := splitPlan(c)
			if err != nil {
				return nil, err
			}
			mod := partition.NewModulator(c, interp.NewEnv(wl.table, wl.reg()))
			mod.SetPlan(plan)
			ev := wl.event()
			var modErr error
			ns["modulate"][engine] = bestOf(func() {
				if _, err := mod.Process(ev); err != nil {
					modErr = err
				}
			})
			if modErr != nil {
				return nil, fmt.Errorf("bench: engine modulate %s: %w", wl.name, modErr)
			}

			demod := partition.NewDemodulator(c, interp.NewEnv(wl.table, wl.reg()))
			raw := &wire.Raw{Handler: wl.prog.Name, Event: wl.event()}
			var demodErr error
			ns["demodulate"][engine] = bestOf(func() {
				if _, err := demod.ProcessRaw(raw); err != nil {
					demodErr = err
				}
			})
			if demodErr != nil {
				return nil, fmt.Errorf("bench: engine demodulate %s: %w", wl.name, demodErr)
			}
		}
		for _, s := range stages {
			stepping := ns[s][partition.EngineStepping]
			compiled := ns[s][partition.EngineCompiled]
			rows = append(rows, EngineRow{
				Handler:    wl.name,
				Stage:      s,
				SteppingNS: stepping,
				CompiledNS: compiled,
				Speedup:    stepping / compiled,
			})
		}
	}
	return rows, nil
}

// WriteEngine renders the engine comparison table.
func WriteEngine(w io.Writer, rows []EngineRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Handler,
			r.Stage,
			fmt.Sprintf("%.1f", r.SteppingNS/1000),
			fmt.Sprintf("%.1f", r.CompiledNS/1000),
			fmt.Sprintf("%.1fx", r.Speedup),
		})
	}
	writeTable(w, "Engine: stepping interpreter vs closure-compiled execution (us/message)",
		[]string{"Handler", "Stage", "Stepping (us)", "Compiled (us)", "Speedup"}, out)
}
