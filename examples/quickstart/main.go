// Quickstart: compile the paper's push() handler (Fig. 4), inspect the
// Potential Split Edges the static analysis finds, and run the
// modulator/demodulator pair in-process under different partitioning plans,
// showing how the split point changes what crosses the "wire".
package main

import (
	"fmt"
	"log"

	"methodpart"
)

// pushSource is the worked example of the paper (§3 / Appendix A): type-check
// the event, resize it to 100x100, display it via a native method.
const pushSource = `
class ImageData {
  width int
  height int
  buff bytes
}

func push(event) {
  z0 = instanceof event ImageData
  ifnot z0 goto done
  r2 = cast event ImageData
  r3 = new ImageData
  call initResize r3 r2
  r4 = move r3
  call displayImage r4
done:
  return
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	handler, err := methodpart.CompileHandler(pushSource, "push",
		methodpart.Natives("displayImage"),
		methodpart.WithModel(methodpart.DataSizeModel()),
	)
	if err != nil {
		return err
	}

	fmt.Println("Potential Split Edges (PSE 0 is the synthetic raw-event cut):")
	for _, pse := range handler.PSEs {
		fmt.Printf("  PSE %d at %v  hand-over: %v\n", pse.ID, pse.Edge, pse.Vars)
	}

	// Builtins: initResize is movable (may run on either side),
	// displayImage is native to the receiver.
	newRegistry := func(label string) *methodpart.Registry {
		reg := methodpart.NewRegistry()
		reg.MustRegister(methodpart.Builtin{
			Name: "initResize",
			Fn: func(env *methodpart.Env, args []methodpart.Value) (methodpart.Value, error) {
				dst := args[0].(*methodpart.Object)
				src := args[1].(*methodpart.Object)
				w := src.Fields["width"].(methodpart.Int)
				dst.Fields["width"] = methodpart.Int(100)
				dst.Fields["height"] = methodpart.Int(100)
				dst.Fields["buff"] = make(methodpart.Bytes, 100*100)
				fmt.Printf("    [%s] initResize from %dx? image\n", label, w)
				return methodpart.Null{}, nil
			},
		})
		reg.MustRegister(methodpart.Builtin{
			Name:   "displayImage",
			Native: true,
			Fn: func(env *methodpart.Env, args []methodpart.Value) (methodpart.Value, error) {
				img := args[0].(*methodpart.Object)
				fmt.Printf("    [%s] display %vx%v image\n", label,
					img.Fields["width"], img.Fields["height"])
				return methodpart.Null{}, nil
			},
		})
		return reg
	}

	mod := methodpart.NewModulator(handler, methodpart.NewEnv(handler, newRegistry("sender")))
	demod := methodpart.NewDemodulator(handler, methodpart.NewEnv(handler, newRegistry("receiver")))

	event := methodpart.NewObject("ImageData")
	event.Fields["width"] = methodpart.Int(200)
	event.Fields["height"] = methodpart.Int(200)
	event.Fields["buff"] = make(methodpart.Bytes, 200*200)

	// Try each single-PSE plan that forms a valid cut.
	for id := int32(0); id < int32(handler.NumPSEs()); id++ {
		split := []int32{id}
		if err := handler.ValidateSplitSet(split); err != nil {
			// Pair with the filter-path PSE when one edge alone
			// does not cut every path.
			for other := int32(1); other < int32(handler.NumPSEs()); other++ {
				if other != id && handler.ValidateSplitSet(append([]int32{id}, other)) == nil {
					split = append([]int32{id}, other)
					break
				}
			}
		}
		plan, err := methodpart.NewPlan(handler, uint64(id)+1, split, nil)
		if err != nil {
			return err
		}
		mod.SetPlan(plan) // adaptation = one atomic flag-set swap
		fmt.Printf("\nPlan split=%v:\n", plan.SplitIDs())

		out, err := mod.Process(event)
		if err != nil {
			return err
		}
		switch {
		case out.Suppressed:
			fmt.Println("    event filtered at sender; nothing sent")
		case out.Raw != nil:
			fmt.Printf("    raw event shipped (%d bytes)\n", out.WireBytes)
		default:
			fmt.Printf("    continuation at PSE %d, resume@%d, %d bytes, %d work units at sender\n",
				out.SplitPSE, out.Cont.ResumeNode, out.WireBytes, out.ModWork)
		}
		if !out.Suppressed {
			var msg any
			if out.Raw != nil {
				msg = out.Raw
			} else {
				msg = out.Cont
			}
			res, err := demod.Process(msg)
			if err != nil {
				return err
			}
			fmt.Printf("    receiver finished with %d work units\n", res.DemodWork)
		}
	}
	return nil
}
