package bench

import (
	"strings"
	"testing"
)

// The pareto experiment exists to prove the front genuinely forks: the two
// policies must choose different cuts and each must measurably win its own
// objective. This is the acceptance criterion behind
// `mpbench -experiment pareto`, pinned in CI.
func TestParetoPoliciesDiverge(t *testing.T) {
	cfg := DefaultParetoConfig()
	cfg.Frames = 120
	cmp, err := RunPareto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.CutsDiffer {
		t.Errorf("policies chose the same cut: %v", cmp.Rows)
	}
	if !cmp.LatencyWins {
		t.Errorf("latency-first did not win latency: %+v", cmp.Rows)
	}
	if !cmp.CostWins {
		t.Errorf("cost-first did not win bytes: %+v", cmp.Rows)
	}
	for _, r := range cmp.Rows {
		if r.FrontSize < 2 {
			t.Errorf("%s: degenerate front of size %d, want a fork", r.Policy, r.FrontSize)
		}
	}
	var sb strings.Builder
	WritePareto(&sb, cmp)
	for _, want := range []string{"cuts differ: true", "latency-first wins latency: true", "cost-first wins bytes: true", "balanced"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("WritePareto output missing %q:\n%s", want, sb.String())
		}
	}
}
