// Package bench is the experiment harness: it reruns the paper's evaluation
// (§5) — Table 1 through Table 4 and Figures 7 and 8 — by driving compiled
// modulator/demodulator pairs over the simnet virtual testbed, with the
// profiling and reconfiguration units closed-loop for the Method
// Partitioning variant and fixed split plans for the manual variants.
package bench

import (
	"fmt"
	"math"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/obsv"
	"methodpart/internal/partition"
	"methodpart/internal/profileunit"
	"methodpart/internal/reconfig"
	"methodpart/internal/simnet"
)

// virtualNS converts simnet virtual milliseconds to the nanosecond scale
// trace events use.
func virtualNS(ms float64) int64 { return int64(ms * 1e6) }

// controlBytes is the assumed wire size of feedback/plan control messages.
const controlBytes = 96

// RunConfig describes one simulated run of one implementation variant.
type RunConfig struct {
	// Compiled is the partitioned handler.
	Compiled *partition.Compiled
	// SenderEnv and ReceiverEnv are the interpreter environments
	// (the receiver's registry includes the native sinks).
	SenderEnv, ReceiverEnv *interp.Env
	// Sender/Receiver/Link form the simulated testbed.
	Sender, Receiver *simnet.Host
	Link             *simnet.Link
	// Frames is the number of events to push.
	Frames int
	// Workload produces the i-th event.
	Workload func(i int) mir.Value
	// GenWork is producer-side work per event before handling (capture).
	GenWork int64
	// OverheadBytes is the per-message framing overhead.
	OverheadBytes int64
	// Window is the flow-control window (max in-flight messages).
	Window int
	// Warmup frames are excluded from steady-state metrics.
	Warmup int

	// Adaptive enables the closed profiling/reconfiguration loop; when
	// false FixedSplit is installed once and never changed.
	Adaptive bool
	// FixedSplit is the manual variant's split set (nil = raw plan).
	FixedSplit []int32
	// ReportEvery is the rate trigger period in messages (default 5).
	ReportEvery uint64
	// DiffThreshold is the diff trigger sensitivity (default 0.15).
	DiffThreshold float64
	// ReconfigAtSender places the reconfiguration unit with the modulator
	// (§2.5 allows modulator, demodulator or third-party placement):
	// plan changes then apply without crossing the link.
	ReconfigAtSender bool
	// NoReceiverProfiling disables the demodulator-side PSE
	// instrumentation (ablation: §2.3 inserts profiling on both sides;
	// without the receiver half, PSEs beyond the current cut go
	// unobserved and plans thrash on stale static estimates).
	NoReceiverProfiling bool
	// RateOnlyTrigger replaces the rate+diff trigger pair with a pure
	// rate trigger (ablation of the diff-triggered feedback of §2.5).
	RateOnlyTrigger bool
	// Nominal is the deployment-time environment estimate.
	Nominal costmodel.Environment
	// Policy is the SLO policy the reconfiguration unit optimises for
	// (zero value reconfig.Balanced = the legacy scalar min-cut). Only
	// meaningful with Adaptive.
	Policy reconfig.SLOPolicy
	// FlipMargin and FlipConfirmations configure the reconfiguration
	// unit's flip hysteresis (see reconfig.Unit); zero values keep the
	// legacy flip-eagerly behaviour.
	FlipMargin        float64
	FlipConfirmations int
	// LinkEstimate, if set, is fed every delivered frame (its virtual
	// timing plus the wire bytes it shipped) and returns the measured
	// environment the next plan selection prices link costs under — the
	// bench-side stand-in for the live runtime's heartbeat-echo link
	// estimator. ok=false means the estimate is still warming and the
	// static nominal link figures are used. When unset, selections always
	// price against the nominal link (the static baseline).
	LinkEstimate func(tm simnet.Timing, bytes int64) (env costmodel.Environment, ok bool)
	// Tracer, if set, receives one EvPublish and (for unsuppressed frames)
	// one EvDemod per frame plus EvMinCut/EvPlanFlip for adaptation steps —
	// the same schema the live event system emits, so trace consumers work
	// against either. Duration and Value fields carry *virtual* simnet
	// nanoseconds (1 virtual ms = 1e6): Dur is the frame's stage time,
	// Value its completion time.
	Tracer *obsv.Tracer
}

// RunResult aggregates one run's outcome.
type RunResult struct {
	// Frames is the number of events pushed.
	Frames int
	// Suppressed counts sender-side filtered events.
	Suppressed int
	// TotalMS is first-modulation-start to last completion.
	TotalMS float64
	// FPS is Frames/TotalMS in frames per second.
	FPS float64
	// MeanIntervalMS is the steady-state mean completion interval — the
	// per-message processing time of a saturated pipeline (eq. 3).
	MeanIntervalMS float64
	// MeanSpanMS is the mean end-to-end latency per message.
	MeanSpanMS float64
	// Bytes is the total payload shipped sender→receiver.
	Bytes int64
	// DemodWork is the total receiver-side work (work units).
	DemodWork int64
	// ModWork is the total sender-side work (work units).
	ModWork int64
	// PlanSwitches counts installed plan changes after the first.
	PlanSwitches int
	// FinalPlan renders the last active plan.
	FinalPlan string
	// Explain is the last plan selection's explanation — the Pareto front
	// and the point the policy chose — or nil when no adaptive selection
	// ran.
	Explain *reconfig.Explanation
}

type pendingPlan struct {
	plan *partition.Plan
	at   float64
}

// Run simulates one variant over the configured testbed.
func Run(cfg RunConfig) (*RunResult, error) {
	c := cfg.Compiled
	mod := partition.NewModulator(c, cfg.SenderEnv)
	demod := partition.NewDemodulator(c, cfg.ReceiverEnv)
	coll := profileunit.NewCollector(c.NumPSEs())
	mod.Probe = coll
	demod.Probe = coll
	runit := reconfig.NewUnit(c, cfg.Nominal)
	runit.Policy = cfg.Policy
	runit.FlipMargin = cfg.FlipMargin
	runit.FlipConfirmations = cfg.FlipConfirmations

	if cfg.Adaptive {
		if !cfg.NoReceiverProfiling {
			demod.CrossProbe = coll
		}
		// Fast-moving profile: the paper's adaptation reacts within a
		// frame or two of a scenario change.
		coll.SetAlpha(0.5)
		plan, _, err := runit.InitialPlan()
		if err != nil {
			return nil, err
		}
		mod.SetPlan(plan)
		demod.SetProfilePlan(plan)
	} else {
		split := cfg.FixedSplit
		if split == nil {
			split = []int32{partition.RawPSEID}
		}
		if err := c.ValidateSplitSet(split); err != nil {
			return nil, fmt.Errorf("bench: fixed plan: %w", err)
		}
		plan, err := partition.NewPlan(c.NumPSEs(), 1, split, nil)
		if err != nil {
			return nil, err
		}
		mod.SetPlan(plan)
	}

	pipe := simnet.NewPipeline(cfg.Sender, cfg.Receiver, cfg.Link)
	reportEvery := cfg.ReportEvery
	if reportEvery == 0 {
		reportEvery = 2
	}
	diffTh := cfg.DiffThreshold
	if diffTh == 0 {
		diffTh = 0.1
	}
	var trigger profileunit.Trigger = &profileunit.EitherTrigger{Children: []profileunit.Trigger{
		&profileunit.RateTrigger{EveryMessages: reportEvery},
		&profileunit.DiffTrigger{Threshold: diffTh, MinMessages: 3},
	}}
	if cfg.RateOnlyTrigger {
		trigger = &profileunit.RateTrigger{EveryMessages: reportEvery}
	}

	// Measured effective speeds refine the nominal environment (the
	// profiling units observe elapsed time, hence perturbation).
	senderSpeed := cfg.Nominal.SenderSpeed
	recvSpeed := cfg.Nominal.ReceiverSpeed
	const speedAlpha = 0.3

	var (
		pending      []pendingPlan
		doneTimes    = make([]float64, 0, cfg.Frames)
		spans        float64
		firstStart   = math.Inf(1)
		lastDone     float64
		totalBytes   int64
		demodTotal   int64
		modTotal     int64
		suppressed   int
		planSwitches int
	)
	// The default window models TCP backpressure: the sender runs at most
	// a few frames ahead of the receiver.
	window := cfg.Window
	if window <= 0 {
		window = 3
	}

	for i := 0; i < cfg.Frames; i++ {
		ev := cfg.Workload(i)
		genTime := 0.0
		if i >= window {
			genTime = doneTimes[i-window]
		}
		startEst := math.Max(genTime, pipe.SenderTime())
		// Install any plan that has reached the sender by now.
		remaining := pending[:0]
		for _, pp := range pending {
			if pp.at <= startEst {
				if mod.SetPlan(pp.plan) {
					planSwitches++
					tracePlanFlipBench(cfg.Tracer, pp.plan)
				}
			} else {
				remaining = append(remaining, pp)
			}
		}
		pending = remaining

		out, err := mod.Process(ev)
		if err != nil {
			return nil, fmt.Errorf("bench: frame %d: %w", i, err)
		}
		var demodWork int64
		var msgBytes int64
		if out.Suppressed {
			suppressed++
		} else {
			var msg any
			if out.Raw != nil {
				msg = out.Raw
			} else {
				msg = out.Cont
			}
			res, err := demod.Process(msg)
			if err != nil {
				return nil, fmt.Errorf("bench: frame %d demod: %w", i, err)
			}
			demodWork = res.DemodWork
			msgBytes = out.WireBytes + cfg.OverheadBytes
		}
		tm := pipe.Deliver(genTime, cfg.GenWork+out.ModWork, msgBytes, demodWork)
		if cfg.Tracer.Enabled() {
			seq := uint64(i) + 1
			kind := obsv.EvPublish
			if out.Suppressed {
				kind = obsv.EvSuppress
			}
			cfg.Tracer.Emit(obsv.Event{
				Kind: kind, Sub: "bench", PSE: out.SplitPSE,
				Plan: mod.Plan().Version(), EventSeq: seq,
				Bytes: msgBytes, Work: out.ModWork,
				Dur: virtualNS(tm.ModDone - tm.ModStart), Value: virtualNS(tm.Done),
			})
			if !out.Suppressed {
				cfg.Tracer.Emit(obsv.Event{
					Kind: obsv.EvDemod, Sub: "bench", PSE: out.SplitPSE,
					Plan: mod.Plan().Version(), EventSeq: seq,
					Bytes: msgBytes, Work: demodWork,
					Dur: virtualNS(tm.Done - tm.DemodStart), Value: virtualNS(tm.Done),
				})
			}
		}
		totalBytes += msgBytes
		demodTotal += demodWork
		modTotal += out.ModWork
		doneTimes = append(doneTimes, tm.Done)
		if tm.ModStart < firstStart {
			firstStart = tm.ModStart
		}
		if tm.Done > lastDone {
			lastDone = tm.Done
		}
		spans += tm.Span()

		if dt := tm.ModDone - tm.ModStart; out.ModWork+cfg.GenWork > 0 && dt > 0 {
			est := float64(out.ModWork+cfg.GenWork) / dt
			senderSpeed += speedAlpha * (est - senderSpeed)
		}
		if dt := tm.Done - tm.DemodStart; demodWork > 0 && dt > 0 {
			est := float64(demodWork) / dt
			recvSpeed += speedAlpha * (est - recvSpeed)
		}

		var measuredEnv costmodel.Environment
		measuredOK := false
		if cfg.LinkEstimate != nil {
			measuredEnv, measuredOK = cfg.LinkEstimate(tm, msgBytes)
		}

		if cfg.Adaptive {
			snap := coll.Snapshot()
			if trigger.ShouldReport(snap, coll.Messages()) {
				env := cfg.Nominal
				env.SenderSpeed = senderSpeed
				env.ReceiverSpeed = recvSpeed
				env.Bandwidth = cfg.Link.BytesPerMS
				env.LatencyMS = cfg.Link.LatencyMS
				if measuredOK {
					env.Bandwidth = measuredEnv.Bandwidth
					env.LatencyMS = measuredEnv.LatencyMS
				}
				runit.SetEnvironment(env)
				plan, _, err := runit.SelectPlan(snap)
				if err != nil {
					return nil, fmt.Errorf("bench: reconfig: %w", err)
				}
				if cfg.Tracer.Enabled() {
					if ex := runit.LastExplanation(); ex != nil {
						cfg.Tracer.Emit(obsv.Event{
							Kind: obsv.EvMinCut, Sub: "bench", PSE: obsv.NoPSE,
							Plan: ex.Version, Value: ex.CutValue,
							Detail: fmt.Sprintf("cut=%v profiled=%d", ex.Cut, ex.Profiled),
						})
					}
				}
				if !samePlan(plan, mod.Plan()) {
					demod.SetProfilePlan(plan)
					at := tm.Done + pipe.ControlDelay(controlBytes)
					if cfg.ReconfigAtSender {
						// The unit sits with the modulator; the plan
						// applies as soon as the sender is next free.
						at = 0
					}
					pending = append(pending, pendingPlan{plan: plan, at: at})
				}
			}
		}
	}

	res := &RunResult{
		Frames:       cfg.Frames,
		Suppressed:   suppressed,
		TotalMS:      lastDone - firstStart,
		Bytes:        totalBytes,
		DemodWork:    demodTotal,
		ModWork:      modTotal,
		PlanSwitches: planSwitches,
		FinalPlan:    mod.Plan().String(),
		MeanSpanMS:   spans / float64(cfg.Frames),
		Explain:      runit.LastExplanation(),
	}
	if res.TotalMS > 0 {
		res.FPS = float64(cfg.Frames) / res.TotalMS * 1000
	}
	warm := cfg.Warmup
	if warm >= len(doneTimes)-1 {
		warm = 0
	}
	var sum float64
	n := 0
	for i := warm + 1; i < len(doneTimes); i++ {
		sum += doneTimes[i] - doneTimes[i-1]
		n++
	}
	if n > 0 {
		res.MeanIntervalMS = sum / float64(n)
	}
	return res, nil
}

// tracePlanFlipBench emits the EvPlanFlip for a plan the simulated sender
// just installed.
func tracePlanFlipBench(tr *obsv.Tracer, p *partition.Plan) {
	if !tr.Enabled() {
		return
	}
	tr.Emit(obsv.Event{
		Kind: obsv.EvPlanFlip, Sub: "bench", PSE: obsv.NoPSE,
		Plan: p.Version(), Detail: fmt.Sprintf("split=%v", p.SplitIDs()),
	})
}

func samePlan(a, b *partition.Plan) bool {
	if a == nil || b == nil {
		return a == b
	}
	as, bs := a.SplitIDs(), b.SplitIDs()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
