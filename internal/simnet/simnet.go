// Package simnet is the deterministic virtual-time substrate the
// experiments run on: hosts with relative CPU speeds and perturbation load,
// links with bandwidth and latency, and a pipelined
// producer → link → consumer message flow matching the execution model of
// §4.2 (computation overlapped with communication). It replaces the paper's
// physical testbeds (iPAQ + 802.11b; SUN and Intel clusters) while
// preserving the relative-speed and bottleneck structure the results depend
// on.
package simnet

import (
	"fmt"
	"math"

	"methodpart/internal/perturb"
)

// Host models one machine: a base processing speed (work units per
// millisecond) degraded by perturbation load. With total perturbation load
// L and C cores, the application's effective speed is Speed·C/(C+L) — the
// fair-share slowdown of competing busy threads.
type Host struct {
	// Name identifies the host in reports.
	Name string
	// Speed is the unloaded processing rate (work units per ms).
	Speed float64
	// Cores is the number of processors (≥1).
	Cores float64
	// Load is the perturbation schedule (nil means unloaded).
	Load *perturb.Schedule
}

// NewHost builds a host; cores defaults to 1 and load to unloaded.
func NewHost(name string, speed float64) *Host {
	return &Host{Name: name, Speed: speed, Cores: 1, Load: perturb.Unloaded()}
}

// SpeedAt returns the effective speed at virtual time t.
func (h *Host) SpeedAt(t float64) float64 {
	cores := h.Cores
	if cores < 1 {
		cores = 1
	}
	load := 0.0
	if h.Load != nil {
		load = h.Load.LoadAt(t)
	}
	return h.Speed * cores / (cores + load)
}

// TimeFor integrates the effective speed from start until `work` units are
// done, returning the elapsed virtual milliseconds.
func (h *Host) TimeFor(work int64, start float64) float64 {
	if work <= 0 {
		return 0
	}
	if h.Load == nil {
		return float64(work) / h.Speed
	}
	remaining := float64(work)
	t := start
	for i := 0; i < 1_000_000; i++ {
		speed := h.SpeedAt(t)
		next := h.Load.NextChange(t)
		span := next - t
		capacity := speed * span
		if capacity >= remaining {
			return t + remaining/speed - start
		}
		remaining -= capacity
		t = next
	}
	// Pathological schedule; fall back to mean-speed estimate.
	return t - start + remaining/math.Max(h.SpeedAt(t), 1e-9)
}

// Link models a network link with dedicated bandwidth and fixed latency.
// Transfers occupy the link for bytes/bandwidth; latency pipelines. An
// optional Schedule makes the bandwidth piecewise-constant in virtual time
// (a link that degrades mid-run, or jitters), which is what the drift
// experiment uses to test measurement-driven reconfiguration.
type Link struct {
	// BytesPerMS is the base bandwidth, in effect before the first
	// schedule phase (and throughout, when Schedule is empty).
	BytesPerMS float64
	// LatencyMS is the one-way propagation delay.
	LatencyMS float64
	// Schedule holds bandwidth phases sorted by ascending Start. Each
	// phase's bandwidth applies from its Start until the next phase.
	Schedule []BandwidthPhase
}

// BandwidthPhase is one step of a piecewise-constant bandwidth schedule.
type BandwidthPhase struct {
	// Start is the virtual time (ms) the phase takes effect.
	Start float64
	// BytesPerMS is the bandwidth from Start until the next phase.
	BytesPerMS float64
}

// BandwidthAt returns the bandwidth in effect at virtual time t.
func (l *Link) BandwidthAt(t float64) float64 {
	bw := l.BytesPerMS
	for _, ph := range l.Schedule {
		if ph.Start > t {
			break
		}
		bw = ph.BytesPerMS
	}
	return bw
}

// Occupancy returns how long a message of the given size occupies the link
// at the base bandwidth (used for small control messages, whose timing the
// schedule does not meaningfully move).
func (l *Link) Occupancy(bytes int64) float64 {
	if bytes <= 0 || l.BytesPerMS <= 0 {
		return 0
	}
	return float64(bytes) / l.BytesPerMS
}

// OccupancyAt returns how long a message occupies the link when its
// transfer starts at virtual time t. The whole transfer is priced at the
// bandwidth in effect at its start — a phase boundary crossing mid-transfer
// does not re-rate the remainder, a deliberate simplification that keeps
// the pipeline recurrence closed-form.
func (l *Link) OccupancyAt(bytes int64, t float64) float64 {
	if bytes <= 0 {
		return 0
	}
	bw := l.BandwidthAt(t)
	if bw <= 0 {
		return 0
	}
	return float64(bytes) / bw
}

// Pipeline simulates the three-stage sender→link→receiver flow with
// overlap: the sender may modulate message i+1 while the link carries i and
// the receiver demodulates i−1.
type Pipeline struct {
	// Sender and Receiver are the two hosts.
	Sender, Receiver *Host
	// Link connects them.
	Link *Link

	senderFree float64
	linkFree   float64
	recvFree   float64
	delivered  int
}

// NewPipeline builds a pipeline at virtual time zero.
func NewPipeline(sender, receiver *Host, link *Link) *Pipeline {
	return &Pipeline{Sender: sender, Receiver: receiver, Link: link}
}

// Timing records the virtual timeline of one message.
type Timing struct {
	// ModStart/ModDone bound sender-side processing.
	ModStart, ModDone float64
	// Arrive is when the last byte reaches the receiver.
	Arrive float64
	// DemodStart/Done bound receiver-side processing.
	DemodStart, Done float64
}

// Span is the end-to-end time from modulation start to completion.
func (tm Timing) Span() float64 { return tm.Done - tm.ModStart }

// SenderTime returns when the sender becomes free.
func (p *Pipeline) SenderTime() float64 { return p.senderFree }

// Now returns the latest receiver completion time.
func (p *Pipeline) Now() float64 { return p.recvFree }

// Delivered returns the number of messages pushed through the pipeline.
func (p *Pipeline) Delivered() int { return p.delivered }

// Deliver pushes one message through the pipeline: modWork at the sender,
// bytes over the link, demodWork at the receiver. genTime is when the
// message becomes available at the sender; processing starts at
// max(genTime, sender free).
func (p *Pipeline) Deliver(genTime float64, modWork, bytes, demodWork int64) Timing {
	var tm Timing
	tm.ModStart = math.Max(genTime, p.senderFree)
	tm.ModDone = tm.ModStart + p.Sender.TimeFor(modWork, tm.ModStart)
	p.senderFree = tm.ModDone

	if bytes > 0 {
		start := math.Max(tm.ModDone, p.linkFree)
		p.linkFree = start + p.Link.OccupancyAt(bytes, start)
		tm.Arrive = p.linkFree + p.Link.LatencyMS
	} else {
		tm.Arrive = tm.ModDone
	}

	tm.DemodStart = math.Max(tm.Arrive, p.recvFree)
	tm.Done = tm.DemodStart + p.Receiver.TimeFor(demodWork, tm.DemodStart)
	p.recvFree = tm.Done
	p.delivered++
	return tm
}

// ControlDelay is the virtual time a small control message (feedback or
// plan) takes to cross the link.
func (p *Pipeline) ControlDelay(bytes int64) float64 {
	return p.Link.Occupancy(bytes) + p.Link.LatencyMS
}

// String describes the pipeline configuration.
func (p *Pipeline) String() string {
	return fmt.Sprintf("pipeline{%s -> %.0fB/ms+%.1fms -> %s}",
		p.Sender.Name, p.Link.BytesPerMS, p.Link.LatencyMS, p.Receiver.Name)
}
