// Package mir defines the Method IR: a small register-based instruction
// language in which message-handling methods are written. MIR plays the role
// Jimple plays in the paper — a per-instruction representation over which the
// Unit Graph, liveness and the ConvexCut analysis are computed, and whose
// interpreter can be stopped at an arbitrary control-flow edge and resumed on
// a remote host (Remote Continuation).
package mir

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// Value kinds. KindNull is deliberately non-zero so that a zero Kind is
// detectably invalid.
const (
	KindNull Kind = iota + 1
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
	KindIntArray
	KindFloatArray
	KindObject
)

// String returns the lower-case name of the kind as used by the assembler.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindIntArray:
		return "intarray"
	case KindFloatArray:
		return "floatarray"
	case KindObject:
		return "object"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindFromString parses an assembler kind name.
func KindFromString(s string) (Kind, bool) {
	switch s {
	case "null":
		return KindNull, true
	case "bool":
		return KindBool, true
	case "int":
		return KindInt, true
	case "float":
		return KindFloat, true
	case "string":
		return KindString, true
	case "bytes":
		return KindBytes, true
	case "intarray":
		return KindIntArray, true
	case "floatarray":
		return KindFloatArray, true
	case "object":
		return KindObject, true
	default:
		return 0, false
	}
}

// Value is a runtime value manipulated by MIR programs. Implementations are
// Null, Bool, Int, Float, Str, Bytes, IntArray, FloatArray and *Object.
type Value interface {
	// Kind reports the dynamic kind of the value.
	Kind() Kind
	// String renders the value in assembler literal syntax where possible.
	String() string
}

type (
	// Null is the absent value.
	Null struct{}
	// Bool is a boolean value.
	Bool bool
	// Int is a 64-bit signed integer value.
	Int int64
	// Float is a 64-bit floating point value.
	Float float64
	// Str is an immutable string value.
	Str string
	// Bytes is a mutable byte-array value. Like Java arrays it has
	// reference semantics: Move copies the reference, not the storage.
	Bytes []byte
	// IntArray is a mutable array of 64-bit integers (reference semantics).
	IntArray []int64
	// FloatArray is a mutable array of 64-bit floats (reference semantics).
	FloatArray []float64
)

// Object is a heap object with a class name and named fields (reference
// semantics, like a Java object).
type Object struct {
	// Class is the name of the object's class in the class registry.
	Class string
	// Fields maps field names to their current values.
	Fields map[string]Value
}

// Kind implements Value.
func (Null) Kind() Kind { return KindNull }

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

// Kind implements Value.
func (Float) Kind() Kind { return KindFloat }

// Kind implements Value.
func (Str) Kind() Kind { return KindString }

// Kind implements Value.
func (Bytes) Kind() Kind { return KindBytes }

// Kind implements Value.
func (IntArray) Kind() Kind { return KindIntArray }

// Kind implements Value.
func (FloatArray) Kind() Kind { return KindFloatArray }

// Kind implements Value.
func (*Object) Kind() Kind { return KindObject }

// String implements Value.
func (Null) String() string { return "null" }

// String implements Value.
func (b Bool) String() string { return strconv.FormatBool(bool(b)) }

// String implements Value.
func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// String implements Value.
func (f Float) String() string {
	s := strconv.FormatFloat(float64(f), 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// String implements Value.
func (s Str) String() string { return strconv.Quote(string(s)) }

// String implements Value.
func (b Bytes) String() string { return fmt.Sprintf("bytes[%d]", len(b)) }

// String implements Value.
func (a IntArray) String() string { return fmt.Sprintf("intarray[%d]", len(a)) }

// String implements Value.
func (a FloatArray) String() string { return fmt.Sprintf("floatarray[%d]", len(a)) }

// String implements Value.
func (o *Object) String() string {
	if o == nil {
		return "null"
	}
	return fmt.Sprintf("%s{...}", o.Class)
}

// NewObject allocates an object of the given class with no fields set.
func NewObject(class string) *Object {
	return &Object{Class: class, Fields: make(map[string]Value)}
}

// Truthy reports whether v counts as true in a conditional branch. Only Bool
// and Int values are accepted; everything else is an execution error.
func Truthy(v Value) (bool, error) {
	switch x := v.(type) {
	case Bool:
		return bool(x), nil
	case Int:
		return x != 0, nil
	default:
		return false, fmt.Errorf("mir: condition must be bool or int, got %s", v.Kind())
	}
}

// Equal reports deep structural equality of two values. Arrays compare by
// contents; objects compare by class and recursively by fields.
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch x := a.(type) {
	case Null:
		return true
	case Bool:
		return x == b.(Bool)
	case Int:
		return x == b.(Int)
	case Float:
		return x == b.(Float)
	case Str:
		return x == b.(Str)
	case Bytes:
		y := b.(Bytes)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case IntArray:
		y := b.(IntArray)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case FloatArray:
		y := b.(FloatArray)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case *Object:
		y := b.(*Object)
		if x == nil || y == nil {
			return x == y
		}
		if x.Class != y.Class || len(x.Fields) != len(y.Fields) {
			return false
		}
		for k, v := range x.Fields {
			w, ok := y.Fields[k]
			if !ok || !Equal(v, w) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Copy returns a deep copy of v. Reference values (arrays, objects) get fresh
// storage; immutable values are returned as-is.
func Copy(v Value) Value {
	switch x := v.(type) {
	case Bytes:
		out := make(Bytes, len(x))
		copy(out, x)
		return out
	case IntArray:
		out := make(IntArray, len(x))
		copy(out, x)
		return out
	case FloatArray:
		out := make(FloatArray, len(x))
		copy(out, x)
		return out
	case *Object:
		if x == nil {
			return Null{}
		}
		out := NewObject(x.Class)
		for k, fv := range x.Fields {
			out.Fields[k] = Copy(fv)
		}
		return out
	default:
		return v
	}
}
