package analysis_test

import (
	"testing"

	"methodpart/internal/analysis"
	"methodpart/internal/costmodel"
	"methodpart/internal/mir/asm"
	"methodpart/internal/testprog"
)

// pushAnalysis runs the full pipeline on the paper's push() example under
// the data-size model.
func pushAnalysis(t *testing.T) *analysis.Result {
	t.Helper()
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, err := u.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := testprog.PushBuiltins()
	ug := analysis.MustBuildUnitGraph(prog)
	live := analysis.ComputeLiveness(ug)
	model := costmodel.NewDataSize()
	res, err := analysis.Analyze(ug, reg, model.StaticCost(prog, classes, live), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPushUnitGraph(t *testing.T) {
	res := pushAnalysis(t)
	ug := res.UG
	if ug.Exit != 8 {
		t.Fatalf("exit node = %d, want 8", ug.Exit)
	}
	// The branch at node 1 has two successors: fall-through 2 and label 7.
	succ := ug.G.Succ(1)
	if len(succ) != 2 {
		t.Fatalf("succ(1) = %v", succ)
	}
	if !ug.G.HasEdge(1, 2) || !ug.G.HasEdge(1, 7) {
		t.Fatalf("branch edges missing: succ(1)=%v", succ)
	}
	if !ug.G.HasEdge(7, 8) {
		t.Fatal("return must flow to exit")
	}
}

func TestPushStopNodes(t *testing.T) {
	res := pushAnalysis(t)
	// Node 6 invokes native displayImage (paper node 9); node 7 is the
	// return (paper node 10); node 8 is the virtual exit.
	for _, n := range []int{6, 7, 8} {
		if !res.Stops[n] {
			t.Errorf("node %d should be a StopNode", n)
		}
	}
	for _, n := range []int{0, 1, 2, 3, 4, 5} {
		if res.Stops[n] {
			t.Errorf("node %d should not be a StopNode", n)
		}
	}
}

func TestPushTargetPaths(t *testing.T) {
	res := pushAnalysis(t)
	// tp1 = filter path ending at the return; tp2 = transform path ending
	// at the native display call (paper: tp1={2,3,4,10}, tp2={2,...,9}).
	if len(res.Paths) != 2 {
		t.Fatalf("target paths = %v, want 2", res.Paths)
	}
	want := [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{0, 1, 7},
	}
	for _, w := range want {
		found := false
		for _, p := range res.Paths {
			if equalInts(p, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("target path %v missing from %v", w, res.Paths)
		}
	}
}

func TestPushLivenessInterSets(t *testing.T) {
	res := pushAnalysis(t)
	cases := []struct {
		e    analysis.Edge
		want []string
	}{
		{analysis.Edge{From: 0, To: 1}, []string{"event", "z0"}},
		{analysis.Edge{From: 1, To: 2}, []string{"event"}},
		{analysis.Edge{From: 1, To: 7}, nil},
		{analysis.Edge{From: 2, To: 3}, []string{"r2"}},
		{analysis.Edge{From: 3, To: 4}, []string{"r2", "r3"}},
		{analysis.Edge{From: 4, To: 5}, []string{"r3"}},
		{analysis.Edge{From: 5, To: 6}, []string{"r4"}},
	}
	for _, c := range cases {
		got := res.Live.Inter(c.e).Sorted()
		if !equalStrs(got, c.want) {
			t.Errorf("INTER%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestPushAliases(t *testing.T) {
	res := pushAnalysis(t)
	// r2 = cast event; r4 = move r3: both single-def chains.
	if res.Aliases["r2"] != res.Aliases["event"] {
		t.Errorf("r2 and event should alias: %v", res.Aliases)
	}
	if res.Aliases["r4"] != res.Aliases["r3"] {
		t.Errorf("r4 and r3 should alias: %v", res.Aliases)
	}
	if res.Aliases["r3"] == res.Aliases["event"] {
		t.Errorf("r3 must not alias event: %v", res.Aliases)
	}
}

// TestPushPSESet is the paper's worked example (§3): the PSE set must be the
// structural equivalent of {Edge(4,10), Edge(2,3), Edge(8,9)} — one split
// before the return on the filter path, one before the transform with only
// the event in hand (r2 aliases event, and its shorter name gives it a
// determinably smaller wire cost than Edge(1,2)), and one after the
// transform (r3/r4 alias class; the earlier edge wins the exact tie).
func TestPushPSESet(t *testing.T) {
	res := pushAnalysis(t)
	want := []analysis.Edge{
		{From: 1, To: 7}, // paper Edge(4,10): filter path, empty hand-over
		{From: 2, To: 3}, // paper Edge(2,3) class: before the transform
		{From: 4, To: 5}, // paper Edge(8,9) class: after the transform
	}
	if len(res.PSESet) != len(want) {
		t.Fatalf("PSESet = %v, want %v", res.PSESet, want)
	}
	for i, e := range want {
		if res.PSESet[i] != e {
			t.Errorf("PSESet[%d] = %v, want %v", i, res.PSESet[i], e)
		}
	}
}

func TestPushNoInfiniteEdges(t *testing.T) {
	res := pushAnalysis(t)
	if len(res.Infinite) != 0 {
		t.Errorf("loop-free handler has infinite edges: %v", res.Infinite)
	}
}

// TestLoopConvexity: loop-carried dependences (the accumulator) must mark
// every loop-body edge infinite, leaving PSEs only outside the loop.
func TestLoopConvexity(t *testing.T) {
	u := testprog.PushUnit() // for class table only
	classes, _ := u.ClassTable()
	lu := mustUnit(t, testprog.LoopSource)
	prog, _ := lu.Program("sum")
	reg, _ := testprog.LoopBuiltins()
	ug := analysis.MustBuildUnitGraph(prog)
	live := analysis.ComputeLiveness(ug)
	model := costmodel.NewDataSize()
	res, err := analysis.Analyze(ug, reg, model.StaticCost(prog, classes, live), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The backedge and the loop body must be uncuttable.
	backedge := false
	for e := range res.Infinite {
		if e.To < e.From {
			backedge = true
		}
	}
	if !backedge {
		t.Errorf("no backedge marked infinite: %v", res.Infinite)
	}
	// All selected PSEs must be outside the loop: no PSE may be an edge
	// between the loop head and the backedge source.
	for _, e := range res.PSESet {
		if res.Infinite[e] {
			t.Errorf("PSE %v is marked infinite", e)
		}
	}
	if len(res.PSESet) == 0 {
		t.Fatal("loop handler has no PSEs at all (prologue/epilogue edges expected)")
	}
}

func TestDDGPush(t *testing.T) {
	res := pushAnalysis(t)
	want := map[analysis.DefUse]bool{
		{Def: 0, Use: 1, Var: "z0"}: true, // instanceof -> ifnot
		{Def: 2, Use: 4, Var: "r2"}: true, // cast -> initResize
		{Def: 3, Use: 4, Var: "r3"}: true, // new -> initResize
		{Def: 3, Use: 5, Var: "r3"}: true, // new -> move
		{Def: 5, Use: 6, Var: "r4"}: true, // move -> displayImage
	}
	got := make(map[analysis.DefUse]bool, len(res.DDG))
	for _, du := range res.DDG {
		got[du] = true
	}
	for du := range want {
		if !got[du] {
			t.Errorf("DDG missing %+v (got %v)", du, res.DDG)
		}
	}
}

func TestAnalyzeMaxPathsLimit(t *testing.T) {
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, _ := u.ClassTable()
	reg, _ := testprog.PushBuiltins()
	ug := analysis.MustBuildUnitGraph(prog)
	live := analysis.ComputeLiveness(ug)
	model := costmodel.NewDataSize()
	// The push handler has 2 TargetPaths; a budget of 1 must error.
	_, err := analysis.Analyze(ug, reg, model.StaticCost(prog, classes, live), analysis.Options{MaxPaths: 1})
	if err == nil {
		t.Fatal("path budget of 1 accepted for a 2-path handler")
	}
	// The degraded analysis still carries StopNodes and liveness.
	res, err := analysis.AnalyzeWithoutPaths(ug, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PSESet) != 0 {
		t.Errorf("degenerate analysis has PSEs: %v", res.PSESet)
	}
	if !res.Stops[6] || !res.Stops[7] {
		t.Errorf("degenerate analysis lost StopNodes: %v", res.Stops)
	}
	if res.Live == nil || len(res.Live.In) == 0 {
		t.Error("degenerate analysis lost liveness")
	}
}

func TestVarSetOps(t *testing.T) {
	a := analysis.NewVarSet("x", "y")
	b := analysis.NewVarSet("y", "z")
	inter := a.Intersect(b)
	if !equalStrs(inter.Sorted(), []string{"y"}) {
		t.Errorf("intersect = %v", inter.Sorted())
	}
	if !analysis.NewVarSet("y").SubsetOf(a) {
		t.Error("subset failed")
	}
	if a.SubsetOf(b) {
		t.Error("non-subset reported subset")
	}
	if !a.Clone().Equal(a) {
		t.Error("clone not equal")
	}
}

func mustUnit(t *testing.T, src string) *asm.Unit {
	t.Helper()
	u, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
