package jecho

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"

	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/profileunit"
	"methodpart/internal/wire"
)

// PublisherConfig configures an event-channel publisher.
type PublisherConfig struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0").
	Addr string
	// Builtins are the movable library functions available to handlers at
	// the sender (natives need not be present; they never run here).
	Builtins *interp.Registry
	// FeedbackEvery is the sender-side profiling report period in
	// messages (0 = 10).
	FeedbackEvery uint64
	// ProfileSampleEvery applies §2.5's periodic profiling sampling to
	// every modulator: >1 profiles only each Nth message (0/1 = all).
	ProfileSampleEvery uint64
	// Logf receives diagnostics (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Publisher hosts an event channel: it accepts subscriptions (installing a
// modulator per subscriber) and fans published events out through them.
type Publisher struct {
	cfg      PublisherConfig
	listener net.Listener

	mu     sync.Mutex
	subs   map[string]*subscription
	nextID int
	closed bool
	wg     sync.WaitGroup
}

// subscription is the publisher-side state of one subscriber.
type subscription struct {
	id       string
	channel  string
	conn     net.Conn
	compiled *partition.Compiled
	mod      *partition.Modulator
	coll     *profileunit.Collector
	trigger  profileunit.Trigger

	writeMu sync.Mutex
}

// NewPublisher starts listening and accepting subscriptions.
func NewPublisher(cfg PublisherConfig) (*Publisher, error) {
	if cfg.Builtins == nil {
		return nil, fmt.Errorf("jecho: publisher needs a builtin registry")
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.FeedbackEvery == 0 {
		cfg.FeedbackEvery = 10
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("jecho: listen: %w", err)
	}
	p := &Publisher{
		cfg:      cfg,
		listener: ln,
		subs:     make(map[string]*subscription),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the bound listen address.
func (p *Publisher) Addr() string { return p.listener.Addr().String() }

// Close stops the publisher and drops all subscriptions.
func (p *Publisher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	subs := make([]*subscription, 0, len(p.subs))
	for _, s := range p.subs {
		subs = append(subs, s)
	}
	p.mu.Unlock()
	err := p.listener.Close()
	for _, s := range subs {
		_ = s.conn.Close()
	}
	p.wg.Wait()
	return err
}

// Subscribers returns the current subscriber count.
func (p *Publisher) Subscribers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

// SubscriptionInfo describes one live subscription for observability.
type SubscriptionInfo struct {
	// ID is the publisher-assigned subscription id.
	ID string
	// Channel is the channel the subscription is attached to.
	Channel string
	// Handler is the installed handler's name.
	Handler string
	// PlanVersion is the active partitioning plan's version.
	PlanVersion uint64
	// SplitIDs are the active plan's flagged PSEs.
	SplitIDs []int32
}

// Subscriptions snapshots the live subscriptions, ordered by id.
func (p *Publisher) Subscriptions() []SubscriptionInfo {
	p.mu.Lock()
	subs := make([]*subscription, 0, len(p.subs))
	for _, s := range p.subs {
		subs = append(subs, s)
	}
	p.mu.Unlock()
	out := make([]SubscriptionInfo, 0, len(subs))
	for _, s := range subs {
		plan := s.mod.Plan()
		split := make([]int32, len(plan.SplitIDs()))
		copy(split, plan.SplitIDs())
		out = append(out, SubscriptionInfo{
			ID:          s.id,
			Channel:     s.channel,
			Handler:     s.compiled.Prog.Name,
			PlanVersion: plan.Version(),
			SplitIDs:    split,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (p *Publisher) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.handleConn(conn)
	}
}

// handleConn performs the subscription handshake, then serves plan updates
// from the subscriber.
func (p *Publisher) handleConn(conn net.Conn) {
	defer p.wg.Done()
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	msg, err := wire.Unmarshal(frame)
	if err != nil {
		p.cfg.Logf("jecho publisher: bad handshake: %v", err)
		_ = conn.Close()
		return
	}
	subMsg, ok := msg.(*wire.Subscribe)
	if !ok {
		p.cfg.Logf("jecho publisher: handshake was %T, want Subscribe", msg)
		_ = conn.Close()
		return
	}
	if subMsg.Protocol != wire.ProtocolVersion {
		p.cfg.Logf("jecho publisher: protocol %d from %s, want %d",
			subMsg.Protocol, subMsg.Subscriber, wire.ProtocolVersion)
		_ = conn.Close()
		return
	}
	compiled, err := compileSubscription(subMsg)
	if err != nil {
		p.cfg.Logf("jecho publisher: compile %s: %v", subMsg.Handler, err)
		_ = conn.Close()
		return
	}
	env := interp.NewEnv(compiled.Classes, p.cfg.Builtins)
	coll := profileunit.NewCollector(compiled.NumPSEs())
	mod := partition.NewModulator(compiled, env)
	mod.Probe = coll
	mod.SampleEvery = p.cfg.ProfileSampleEvery

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = conn.Close()
		return
	}
	p.nextID++
	id := fmt.Sprintf("%s#%d", subMsg.Subscriber, p.nextID)
	sub := &subscription{
		id:       id,
		channel:  subMsg.Channel,
		conn:     conn,
		compiled: compiled,
		mod:      mod,
		coll:     coll,
		trigger:  &profileunit.RateTrigger{EveryMessages: p.cfg.FeedbackEvery},
	}
	p.subs[id] = sub
	p.mu.Unlock()

	// Serve inbound control messages (plans) until the peer goes away.
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			break
		}
		msg, err := wire.Unmarshal(frame)
		if err != nil {
			p.cfg.Logf("jecho publisher: sub %s: %v", id, err)
			break
		}
		plan, ok := msg.(*wire.Plan)
		if !ok {
			p.cfg.Logf("jecho publisher: sub %s sent %T", id, msg)
			continue
		}
		if err := mod.ApplyWirePlan(plan); err != nil {
			p.cfg.Logf("jecho publisher: sub %s plan: %v", id, err)
		}
	}
	_ = conn.Close()
	p.mu.Lock()
	delete(p.subs, id)
	p.mu.Unlock()
}

// Publish pushes one event through every subscription's modulator (all
// channels) and sends the resulting raw events or continuations. It returns
// the number of subscribers reached and the first error encountered.
//
// The event value is shared across subscriptions (and their concurrently
// running modulators), so handlers must treat incoming events as read-only —
// the usual contract of an event system; transforms allocate new objects.
func (p *Publisher) Publish(event mir.Value) (int, error) {
	return p.publish(event, "", true)
}

// PublishOn pushes one event to the subscriptions of one channel only.
func (p *Publisher) PublishOn(channel string, event mir.Value) (int, error) {
	return p.publish(event, channel, false)
}

func (p *Publisher) publish(event mir.Value, channel string, broadcast bool) (int, error) {
	p.mu.Lock()
	subs := make([]*subscription, 0, len(p.subs))
	for _, s := range p.subs {
		if broadcast || s.channel == channel {
			subs = append(subs, s)
		}
	}
	p.mu.Unlock()

	if len(subs) == 1 {
		if err := subs[0].publishOne(event); err != nil {
			return 0, fmt.Errorf("jecho: sub %s: %w", subs[0].id, err)
		}
		return 1, nil
	}
	// Fan out concurrently: each subscription has its own modulator and
	// connection, and per-subscription ordering is preserved because one
	// Publish call runs one message per subscription.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		reached  int
	)
	for _, s := range subs {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := s.publishOne(event)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("jecho: sub %s: %w", s.id, err)
				}
				return
			}
			reached++
		}()
	}
	wg.Wait()
	return reached, firstErr
}

func (s *subscription) publishOne(event mir.Value) error {
	out, err := s.mod.Process(event)
	if err != nil {
		return err
	}
	if !out.Suppressed {
		var msg any
		if out.Raw != nil {
			msg = out.Raw
		} else {
			msg = out.Cont
		}
		data, err := wire.Marshal(msg)
		if err != nil {
			return err
		}
		if err := s.send(data); err != nil {
			return err
		}
	}
	// Rate-triggered sender-side profiling feedback (§2.5).
	snap := s.coll.Snapshot()
	if s.trigger.ShouldReport(snap, s.coll.Messages()) {
		fb := s.coll.ToWire(s.compiled.Prog.Name)
		data, err := wire.Marshal(fb)
		if err != nil {
			return err
		}
		if err := s.send(data); err != nil {
			return err
		}
	}
	return nil
}

func (s *subscription) send(data []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := wire.WriteFrame(s.conn, data); err != nil {
		if errors.Is(err, io.EOF) {
			return fmt.Errorf("jecho: subscriber gone: %w", err)
		}
		return err
	}
	return nil
}
