package bench

import "testing"

// TestExperimentsDeterministic: the simulated testbed is fully seeded, so
// the same configuration must produce bit-identical results — the paper's
// "use these same random numbers for all four implementations" taken to its
// logical end.
func TestExperimentsDeterministic(t *testing.T) {
	imgCfg := DefaultImageConfig()
	imgCfg.Frames = 80
	a, err := ImageCell(imgCfg, VariantMethodPartitioning, ScenarioMixed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ImageCell(imgCfg, VariantMethodPartitioning, ScenarioMixed)
	if err != nil {
		t.Fatal(err)
	}
	if a.FPS != b.FPS || a.Bytes != b.Bytes || a.PlanSwitches != b.PlanSwitches {
		t.Errorf("image experiment not deterministic: %+v vs %+v", a, b)
	}

	senCfg := DefaultSensorConfig()
	senCfg.Frames = 50
	senCfg.Seeds = []int64{11}
	x, err := SensorCell(senCfg, VariantMP, 0.6, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	y, err := SensorCell(senCfg, VariantMP, 0.6, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if x != y {
		t.Errorf("sensor experiment not deterministic: %g vs %g", x, y)
	}
}

// TestSharedPerturbationAcrossVariants: the four sensor variants see the
// same perturbation trace for the same seed (the paper's shared
// pre-generated random numbers), so a load-free variant's result cannot
// depend on the seed at all.
func TestSharedPerturbationAcrossVariants(t *testing.T) {
	cfg := DefaultSensorConfig()
	cfg.Frames = 50
	cfg.Seeds = []int64{11}
	a, err := SensorCell(cfg, VariantConsumer, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seeds = []int64{999}
	b, err := SensorCell(cfg, VariantConsumer, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("unloaded run depends on the perturbation seed: %g vs %g", a, b)
	}
}
