package partition

import (
	"errors"
	"fmt"
	"sync/atomic"

	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/wire"
)

// ForcedSplit is the sentinel PSE id reported when the modulator had to
// split at a non-PSE edge to avoid executing a StopNode at the sender
// (defensive behaviour under stale or degenerate plans).
const ForcedSplit int32 = -1

// SenderProbe receives the modulator-side profiling events (§2.5). The
// profiling code is invoked only for PSEs whose profiling flag is set, so a
// disabled probe costs one flag test per crossed PSE.
type SenderProbe interface {
	// Message is called once per processed event with the raw event size.
	Message(rawBytes int64)
	// Cross is called when execution crosses a profiled PSE: workAt is
	// the work accumulated so far, contBytes the size a continuation at
	// this PSE would have (computed by size calculation, not
	// serialisation).
	Cross(id int32, workAt, contBytes int64)
	// SplitAt is called once per message with the split actually taken.
	SplitAt(id int32, modWork, contBytes int64)
}

// NopProbe is a SenderProbe that records nothing.
type NopProbe struct{}

// Message implements SenderProbe.
func (NopProbe) Message(int64) {}

// Cross implements SenderProbe.
func (NopProbe) Cross(int32, int64, int64) {}

// SplitAt implements SenderProbe.
func (NopProbe) SplitAt(int32, int64, int64) {}

// Output is the result of modulating one event.
type Output struct {
	// Raw is set when the plan ships the unmodulated event.
	Raw *wire.Raw
	// Cont is set when the handler was split: the continuation to send.
	Cont *wire.Continuation
	// Suppressed reports that the split was a trivial filter (resume at a
	// bare return with an empty hand-over set), so nothing is sent.
	Suppressed bool
	// SplitPSE is the PSE where the split happened (RawPSEID for raw,
	// ForcedSplit for defensive splits at non-PSE edges).
	SplitPSE int32
	// ModWork is the sender-side work spent (work units).
	ModWork int64
	// WireBytes is the marshalled size of what will be sent (0 when
	// suppressed).
	WireBytes int64
}

// Modulator is the sender-side half of a partitioned handler. It is safe
// for concurrent use; the active plan is swapped atomically.
type Modulator struct {
	c   *Compiled
	env *interp.Env
	// Probe receives profiling events; defaults to NopProbe.
	Probe SenderProbe
	// SuppressTrivial drops continuations that resume at a bare return
	// with nothing to hand over (events filtered out at the sender).
	SuppressTrivial bool
	// SampleEvery reduces profiling cost by periodic sampling (§2.5):
	// when >1, the profiling code runs only on every Nth message.
	// 0 or 1 profiles every message.
	SampleEvery uint64

	plan         atomic.Pointer[Plan]
	seq          atomic.Uint64
	compiledRuns atomic.Int64
}

// CompiledRuns returns how many events ran on the compiled engine (raw
// pass-throughs execute nothing and are not counted).
func (m *Modulator) CompiledRuns() int64 { return m.compiledRuns.Load() }

// NewModulator builds a modulator executing in the sender-side environment.
// The initial plan ships raw events until a better plan is installed.
func NewModulator(c *Compiled, env *interp.Env) *Modulator {
	m := &Modulator{c: c, env: env, Probe: NopProbe{}, SuppressTrivial: true}
	initial, err := NewPlan(c.NumPSEs(), 0, []int32{RawPSEID}, nil)
	if err != nil {
		// NumPSEs >= 1 always; RawPSEID is always valid.
		panic(err)
	}
	m.plan.Store(initial)
	return m
}

// Plan returns the active plan.
func (m *Modulator) Plan() *Plan { return m.plan.Load() }

// PlanFingerprint returns the active plan's Fingerprint — the modulator's
// contribution to a publisher-side plan-equivalence class key.
func (m *Modulator) PlanFingerprint() uint64 { return m.plan.Load().Fingerprint() }

// SetPlan atomically installs a new plan. Plans with stale versions are
// ignored so reordered control messages cannot roll the modulator back.
func (m *Modulator) SetPlan(p *Plan) bool {
	for {
		cur := m.plan.Load()
		if cur != nil && p.Version() != 0 && p.Version() <= cur.Version() {
			return false
		}
		if m.plan.CompareAndSwap(cur, p) {
			return true
		}
	}
}

// ErrStalePlan reports a wire plan rejected because its version does not
// advance past the active plan's — e.g. the peer's version counter lags a
// plan installed locally. Callers distinguish it from validation errors with
// errors.Is.
var ErrStalePlan = errors.New("stale plan version")

// ApplyWirePlan validates and installs a plan received as a wire message.
// A plan whose version the modulator has already passed returns
// ErrStalePlan (wrapped), so the rejection is visible to the caller instead
// of silently delaying plan convergence.
//
// Version 0 is the pre-negotiation version of the initial raw plan;
// SetPlan installs version-0 plans unconditionally so local callers can
// force one. A version-0 plan arriving over the wire is therefore rejected
// as stale: accepting it would let a replayed (or forged) initial plan
// roll the endpoint back past its active plan.
func (m *Modulator) ApplyWirePlan(wp *wire.Plan) error {
	if wp.Handler != m.c.Prog.Name {
		return fmt.Errorf("partition: plan for %q applied to %q", wp.Handler, m.c.Prog.Name)
	}
	if wp.Version == 0 {
		return fmt.Errorf("partition: %w: wire plan version 0 never advances past the active plan", ErrStalePlan)
	}
	if err := m.c.ValidateSplitSet(wp.Split); err != nil {
		return err
	}
	p, err := NewPlan(m.c.NumPSEs(), wp.Version, wp.Split, wp.Profile)
	if err != nil {
		return err
	}
	if !m.SetPlan(p) {
		return fmt.Errorf("partition: %w: v%d not past active v%d",
			ErrStalePlan, p.Version(), m.Plan().Version())
	}
	return nil
}

// Process modulates one event under the active plan. Interpreter panics are
// recovered into classified Fault errors (see FaultClassOf), so a poisoned
// event cannot take down the publish path.
func (m *Modulator) Process(event mir.Value) (out *Output, err error) {
	defer recoverFault(&err)
	plan := m.plan.Load()
	seq := m.seq.Add(1)
	name := m.c.Prog.Name
	sampled := m.SampleEvery <= 1 || seq%m.SampleEvery == 0

	if plan.Raw() {
		raw := &wire.Raw{Handler: name, Seq: seq, Event: event}
		size := wire.SizeOf(event)
		m.Probe.Message(size)
		if sampled && plan.Profile(RawPSEID) {
			m.Probe.Cross(RawPSEID, 0, size)
		}
		m.Probe.SplitAt(RawPSEID, 0, size)
		return &Output{Raw: raw, SplitPSE: RawPSEID, WireBytes: size}, nil
	}

	machine, err := m.c.newMachine(m.env, []mir.Value{event})
	if err != nil {
		return nil, classify(wire.NackRestore, err)
	}
	defer machine.Release()
	if m.c.Engine == EngineCompiled {
		m.compiledRuns.Add(1)
	}
	res, err := runSplit(m.c, machine, plan, m.Probe, sampled, 0)
	if err != nil {
		return nil, classify(wire.NackRuntime, err)
	}
	m.Probe.Message(wire.SizeOf(event))
	if res.outcome.Done {
		// Only possible when every path StopNode is the exit — which
		// cannot happen since returns are StopNodes — so treat as a
		// completed-at-sender anomaly.
		return nil, faultf(wire.NackRuntime, "partition: %s completed at sender; missing StopNodes", name)
	}

	resume := res.outcome.Split.To
	work := res.outcome.Work
	snap := machine.Snapshot(res.splitVars)
	if m.SuppressTrivial && len(snap) == 0 && m.c.Prog.Instrs[resume].Op == mir.OpReturn {
		m.Probe.SplitAt(res.splitID, work, 0)
		return &Output{Suppressed: true, SplitPSE: res.splitID, ModWork: work}, nil
	}
	cont := &wire.Continuation{
		Handler:    name,
		Seq:        seq,
		PSEID:      res.splitID,
		ResumeNode: int32(resume),
		Vars:       snap,
		ModWork:    work,
	}
	size := snapshotSize(res.splitVars, snap)
	m.Probe.SplitAt(res.splitID, work, size)
	return &Output{Cont: cont, SplitPSE: res.splitID, ModWork: work, WireBytes: size}, nil
}

// snapshotSize computes the wire size of a live-variable snapshot without
// serialising it, sharing references across variables exactly as the
// encoder would.
func snapshotSize(order []string, snap map[string]mir.Value) int64 {
	s := wire.NewSizer()
	var total int64
	for _, n := range order {
		v, ok := snap[n]
		if !ok {
			continue
		}
		total += 4 + int64(len(n))
		total += s.Size(v)
	}
	return total
}
