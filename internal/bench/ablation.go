package bench

import (
	"fmt"
	"io"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir/interp"
	"methodpart/internal/simnet"
)

// AblationRow is one configuration of the Method Partitioning runtime on
// the mixed image workload (Table 2's dynamic column), quantifying the
// design choices DESIGN.md calls out.
type AblationRow struct {
	// Name labels the configuration.
	Name string
	// FPS is the mixed-workload throughput.
	FPS float64
	// PlanSwitches counts installed plan changes.
	PlanSwitches int
}

// Ablations reruns the mixed image workload under degraded runtime
// configurations:
//
//   - full: the complete system (baseline, = Table 2's MP/Mixed cell);
//   - no-receiver-profiling: §2.3's demodulator-side instrumentation off —
//     PSEs beyond the cut go unobserved and plans thrash;
//   - receiver-reconfig: the reconfiguration unit at the receiver, so plans
//     pay a link round-trip before taking effect;
//   - rate-trigger-20: diff-trigger off, slow rate trigger only;
//   - static-initial: adaptation off entirely after the static initial
//     plan.
func Ablations(cfg ImageConfig) ([]AblationRow, error) {
	type variant struct {
		name string
		mut  func(*RunConfig)
	}
	variants := []variant{
		{"full", func(rc *RunConfig) {}},
		{"no-receiver-profiling", func(rc *RunConfig) { rc.NoReceiverProfiling = true }},
		{"receiver-reconfig", func(rc *RunConfig) { rc.ReconfigAtSender = false }},
		{"rate-trigger-20", func(rc *RunConfig) {
			rc.RateOnlyTrigger = true
			rc.ReportEvery = 20
		}},
		{"static-initial", func(rc *RunConfig) { rc.Adaptive = false }},
	}
	f, err := newImageFixture(cfg)
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		server := simnet.NewHost("server", cfg.ServerSpeed)
		client := simnet.NewHost("client", cfg.ClientSpeed)
		link := &simnet.Link{BytesPerMS: cfg.LinkBytesPerMS, LatencyMS: cfg.LinkLatencyMS}
		rc := RunConfig{
			Compiled:         f.c,
			SenderEnv:        interp.NewEnv(f.classes, f.builtins()),
			ReceiverEnv:      interp.NewEnv(f.classes, f.builtins()),
			Sender:           server,
			Receiver:         client,
			Link:             link,
			Frames:           cfg.Frames,
			Workload:         imageWorkload(cfg, ScenarioMixed),
			OverheadBytes:    64,
			Warmup:           10,
			Adaptive:         true,
			ReconfigAtSender: true,
			Nominal: costmodel.Environment{
				SenderSpeed:   cfg.ServerSpeed,
				ReceiverSpeed: cfg.ClientSpeed,
				Bandwidth:     cfg.LinkBytesPerMS,
				LatencyMS:     cfg.LinkLatencyMS,
			},
		}
		v.mut(&rc)
		if !rc.Adaptive {
			// static-initial: raw plan, never changed.
			rc.FixedSplit = nil
		}
		res, err := Run(rc)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s: %w", v.name, err)
		}
		rows = append(rows, AblationRow{Name: v.name, FPS: res.FPS, PlanSwitches: res.PlanSwitches})
	}
	return rows, nil
}

// WriteAblations renders the ablation table.
func WriteAblations(w io.Writer, rows []AblationRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fmt.Sprintf("%.2f", r.FPS),
			fmt.Sprintf("%d", r.PlanSwitches),
		})
	}
	writeTable(w, "Ablations: MP runtime variants on the mixed image workload",
		[]string{"Configuration", "FPS", "Plan switches"}, out)
}
