package profileunit

import (
	"math"
	"time"

	"methodpart/internal/costmodel"
)

// Trigger decides when profiling statistics warrant a report to the
// reconfiguration unit. The paper names two policies (§2.5): rate-triggered
// (a certain amount of time/messages has elapsed) and diff-triggered (the
// profiling data for a PSE has changed significantly).
type Trigger interface {
	// ShouldReport inspects the current snapshot and message count and
	// reports whether feedback should be sent now. Implementations may
	// keep state (they assume ShouldReport(true) implies a report).
	ShouldReport(snap map[int32]costmodel.Stat, messages uint64) bool
}

// RateTrigger fires every EveryMessages messages.
type RateTrigger struct {
	// EveryMessages is the reporting period in messages (min 1).
	EveryMessages uint64

	lastReport uint64
}

// ShouldReport implements Trigger.
func (t *RateTrigger) ShouldReport(_ map[int32]costmodel.Stat, messages uint64) bool {
	period := t.EveryMessages
	if period == 0 {
		period = 1
	}
	if messages-t.lastReport >= period {
		t.lastReport = messages
		return true
	}
	return false
}

// TimeTrigger fires when Every has elapsed since the last report — the
// paper's "send feedback only when a certain amount of time has elapsed".
type TimeTrigger struct {
	// Every is the reporting period.
	Every time.Duration
	// Now supplies the clock (nil = time.Now); injectable for tests and
	// for virtual-time simulations.
	Now func() time.Time

	last time.Time
}

// ShouldReport implements Trigger.
func (t *TimeTrigger) ShouldReport(_ map[int32]costmodel.Stat, _ uint64) bool {
	now := time.Now()
	if t.Now != nil {
		now = t.Now()
	}
	if t.last.IsZero() {
		t.last = now
		return false
	}
	every := t.Every
	if every <= 0 {
		every = time.Second
	}
	if now.Sub(t.last) >= every {
		t.last = now
		return true
	}
	return false
}

// DiffTrigger fires when any PSE statistic moved by more than Threshold
// (relative) since the last report — the paper's "profiling data for one of
// the PSEs has changed significantly".
type DiffTrigger struct {
	// Threshold is the relative change that triggers a report (e.g. 0.2).
	Threshold float64
	// MinMessages suppresses reports before enough data has accumulated.
	MinMessages uint64

	last map[int32]costmodel.Stat
}

// ShouldReport implements Trigger.
func (t *DiffTrigger) ShouldReport(snap map[int32]costmodel.Stat, messages uint64) bool {
	if messages < t.MinMessages {
		return false
	}
	if t.last == nil {
		t.last = snap
		return true
	}
	th := t.Threshold
	if th <= 0 {
		th = 0.2
	}
	for id, st := range snap {
		prev, ok := t.last[id]
		if !ok {
			t.last = snap
			return true
		}
		if relDiff(st.Bytes, prev.Bytes) > th ||
			relDiff(st.ModWork, prev.ModWork) > th ||
			relDiff(st.DemodWork, prev.DemodWork) > th ||
			math.Abs(st.Prob-prev.Prob) > th {
			t.last = snap
			return true
		}
	}
	return false
}

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// EitherTrigger fires when any of its children fires (children still update
// their internal state each call).
type EitherTrigger struct {
	// Children are the combined triggers.
	Children []Trigger
}

// ShouldReport implements Trigger.
func (t *EitherTrigger) ShouldReport(snap map[int32]costmodel.Stat, messages uint64) bool {
	fired := false
	for _, child := range t.Children {
		if child.ShouldReport(snap, messages) {
			fired = true
		}
	}
	return fired
}
