package jecho

import (
	"sync"
	"sync/atomic"

	"methodpart/internal/partition"
	"methodpart/internal/profileunit"
)

// This file holds the publisher's two subscription indexes:
//
//   - subRegistry: id → subscription, sharded so handshake/retire churn on
//     one shard never serializes against the others (the seed's single
//     map+mutex was the registry-side scaling wall of ROADMAP item 1);
//   - classIndex: plan-equivalence classes. Subscribers whose class key
//     (channel, compiled program, plan fingerprint, protocol version,
//     batching) is identical share one modulator, one profiling collector
//     and one marshalled frame per event, so publish work is O(classes)
//     instead of O(subscribers).
//
// Membership mutations (join/leave/migrate) all run under classIndex.mu and
// publish reads copy-on-write snapshots, so a plan flip — including a
// breaker-forced degrade — moves a subscription between classes atomically:
// every publish that starts after the flip sees the subscription in exactly
// one class, the one with the new plan.

// regShardCount is the subscriber-registry shard count. Shards are cheap
// (a map and a mutex); 16 keeps p(collision) low for the tail of realistic
// concurrent handshake/retire rates without making iteration noticeable.
const regShardCount = 16

// regShard is one slice of the subscriber registry.
type regShard struct {
	mu   sync.Mutex
	subs map[string]*subscription

	// acquires/contended instrument the shard lock: contended counts
	// acquisitions that found the lock held (TryLock failed) and had to
	// wait. Exposed as methodpart_registry_shard_* samples.
	acquires  atomic.Uint64
	contended atomic.Uint64
}

// lock takes the shard mutex, counting contention.
func (s *regShard) lock() {
	s.acquires.Add(1)
	if !s.mu.TryLock() {
		s.contended.Add(1)
		s.mu.Lock()
	}
}

// subRegistry is the sharded id → subscription map.
type subRegistry struct {
	shards [regShardCount]regShard
	count  atomic.Int64
}

func (r *subRegistry) init() {
	for i := range r.shards {
		r.shards[i].subs = make(map[string]*subscription)
	}
}

// shardFor hashes a subscription id onto its shard (FNV-1a).
func (r *subRegistry) shardFor(id string) *regShard {
	h := uint64(fnvOffset64reg)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= fnvPrime64reg
	}
	return &r.shards[h%regShardCount]
}

const (
	fnvOffset64reg = 14695981039346656037
	fnvPrime64reg  = 1099511628211
)

func (r *subRegistry) insert(s *subscription) {
	sh := r.shardFor(s.id)
	sh.lock()
	sh.subs[s.id] = s
	sh.mu.Unlock()
	r.count.Add(1)
}

// remove deletes the id and reports whether it was present.
func (r *subRegistry) remove(id string) bool {
	sh := r.shardFor(id)
	sh.lock()
	_, ok := sh.subs[id]
	if ok {
		delete(sh.subs, id)
	}
	sh.mu.Unlock()
	if ok {
		r.count.Add(-1)
	}
	return ok
}

// size returns the live subscription count.
func (r *subRegistry) size() int { return int(r.count.Load()) }

// snapshot copies the live subscriptions out of all shards.
func (r *subRegistry) snapshot() []*subscription {
	out := make([]*subscription, 0, r.size())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.lock()
		for _, s := range sh.subs {
			out = append(out, s)
		}
		sh.mu.Unlock()
	}
	return out
}

// classKey identifies a plan-equivalence class: everything that decides
// what bytes a subscription receives for a given event. prog is the dense
// id the publisher's compile cache assigns each distinct compiled handler
// (source + cost model + native set), plan is the plan fingerprint, proto
// the negotiated protocol version, batched whether wire-level batching was
// negotiated (batching changes pipeline framing, not the event frame, but
// keeping it in the key keeps every class homogeneous end to end).
type classKey struct {
	channel string
	prog    uint64
	plan    uint64
	proto   uint32
	batched bool
}

// planClass is one equivalence class: the shared modulation state plus a
// copy-on-write member list.
type planClass struct {
	key      classKey
	compiled *partition.Compiled
	// mod is the class's single modulator. Its plan never changes: a plan
	// flip migrates members to another class (classes are as immutable as
	// the plans that define them), so publish never observes a half-updated
	// (key, plan) pair.
	mod *partition.Modulator
	// coll aggregates sender-side profiling for the class; per-member
	// feedback frames snapshot it.
	coll *profileunit.Collector
	// hists are the class's always-on per-PSE histograms.
	hists *pseHistograms

	// members is the copy-on-write member list, rebuilt under classIndex.mu
	// on every membership change and read lock-free by publish.
	members atomic.Pointer[[]*subscription]
}

// memberList returns the current member snapshot (never nil).
func (c *planClass) memberList() []*subscription {
	if p := c.members.Load(); p != nil {
		return *p
	}
	return nil
}

// classView is one row of the publish snapshot: a class and its member list
// frozen at the same rebuild. Publish must read both through a single
// atomic load — reading the class list and each member list separately
// would let a concurrent migration show a subscription in zero classes (or
// two) of one publish, dropping or duplicating an event.
type classView struct {
	class   *planClass
	members []*subscription
}

// classIndex is the class table plus its copy-on-write publish snapshot.
type classIndex struct {
	mu      sync.Mutex
	classes map[classKey]*planClass
	snap    atomic.Pointer[[]classView]
}

func (x *classIndex) init() {
	x.classes = make(map[classKey]*planClass)
	empty := make([]classView, 0)
	x.snap.Store(&empty)
}

// snapshot returns the live class+member view. Lock-free; the slice and the
// member lists inside it are immutable.
func (x *classIndex) snapshot() []classView {
	return *x.snap.Load()
}

// rebuildLocked refreshes the publish snapshot. Caller holds x.mu; every
// membership mutation must call this before releasing it.
func (x *classIndex) rebuildLocked() {
	list := make([]classView, 0, len(x.classes))
	for _, c := range x.classes {
		list = append(list, classView{class: c, members: c.memberList()})
	}
	x.snap.Store(&list)
}

// addMemberLocked appends s to c's member list (copy-on-write). Caller
// holds classIndex.mu.
func addMemberLocked(c *planClass, s *subscription) {
	old := c.memberList()
	next := make([]*subscription, 0, len(old)+1)
	next = append(next, old...)
	next = append(next, s)
	c.members.Store(&next)
}

// removeMemberLocked removes s from c's member list and reports the
// remaining size. Caller holds classIndex.mu.
func removeMemberLocked(c *planClass, s *subscription) int {
	old := c.memberList()
	next := make([]*subscription, 0, len(old))
	for _, m := range old {
		if m != s {
			next = append(next, m)
		}
	}
	c.members.Store(&next)
	return len(next)
}
