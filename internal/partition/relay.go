package partition

import (
	"fmt"
	"sync/atomic"

	"methodpart/internal/analysis"
	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
	"methodpart/internal/wire"
)

// splitResult is the outcome of running a machine segment under a plan's
// split flags.
type splitResult struct {
	splitID   int32
	splitVars []string
	outcome   interp.Outcome
}

// runSplit executes a machine until a flagged PSE (or a forced split before
// a StopNode), profiling flagged PSE crossings. baseWork is the work already
// spent on the message upstream, so crossing statistics stay
// message-cumulative across parties. It drives either engine: the hook only
// acts on PSE edges and edges into StopNodes, exactly the edges compiled
// code watches.
func runSplit(c *Compiled, machine execMachine, plan *Plan, probe SenderProbe, sampled bool, baseWork int64) (*splitResult, error) {
	res := &splitResult{splitID: ForcedSplit}
	machine.SetHook(func(e interp.Edge) bool {
		ae := analysis.Edge{From: e.From, To: e.To}
		id, isPSE := c.PSEByEdge(ae)
		if isPSE {
			pse, _ := c.PSE(id)
			if sampled && plan.Profile(id) {
				snap := machine.Snapshot(pse.Vars)
				probe.Cross(id, baseWork+machine.Work(), snapshotSize(pse.Vars, snap))
			}
			if plan.Split(id) {
				res.splitID = id
				res.splitVars = pse.Vars
				return true
			}
		}
		if c.Analysis.Stops[e.To] && !c.Analysis.UG.IsExit(e.To) {
			// Defensive split: never execute a StopNode before the
			// final receiver.
			if isPSE {
				pse, _ := c.PSE(id)
				res.splitID = id
				res.splitVars = pse.Vars
			} else {
				res.splitID = ForcedSplit
				res.splitVars = c.InterAt(ae)
			}
			return true
		}
		return false
	})
	out, err := machine.Run()
	if err != nil {
		return nil, err
	}
	res.outcome = out
	return res, nil
}

// Relay is an intermediate party on a data stream that re-partitions
// in-flight messages: it resumes an incoming continuation (or raw event)
// under its own plan and emits a new continuation for the next hop. This is
// the §7 extension of propagating modulators upward along a stream — a
// handler can now run in three (or more) pieces: sender prefix, relay
// middle, receiver suffix. The relay never executes StopNodes; those always
// reach the final receiver.
type Relay struct {
	c   *Compiled
	env *interp.Env
	// Probe receives profiling events (message-cumulative work).
	Probe SenderProbe

	plan         atomic.Pointer[Plan]
	compiledRuns atomic.Int64
}

// CompiledRuns returns how many messages ran on the compiled engine.
func (r *Relay) CompiledRuns() int64 { return r.compiledRuns.Load() }

// NewRelay builds a relay for a compiled handler. Its initial plan is
// pass-through (raw flag), forwarding messages untouched.
func NewRelay(c *Compiled, env *interp.Env) *Relay {
	r := &Relay{c: c, env: env, Probe: NopProbe{}}
	initial, err := NewPlan(c.NumPSEs(), 0, []int32{RawPSEID}, nil)
	if err != nil {
		panic(err) // RawPSEID is always valid
	}
	r.plan.Store(initial)
	return r
}

// Plan returns the active plan.
func (r *Relay) Plan() *Plan { return r.plan.Load() }

// SetPlan atomically installs a new plan (stale versions are ignored).
func (r *Relay) SetPlan(p *Plan) bool {
	for {
		cur := r.plan.Load()
		if cur != nil && p.Version() != 0 && p.Version() <= cur.Version() {
			return false
		}
		if r.plan.CompareAndSwap(cur, p) {
			return true
		}
	}
}

// Process advances one in-flight message: raw events are modulated from the
// start; continuations resume at their split point and run until the
// relay's own plan (or a StopNode boundary) splits them again. The output
// is always a message for the next hop — relays never complete a handler.
func (r *Relay) Process(msg any) (*Output, error) {
	plan := r.plan.Load()
	var (
		machine  execMachine
		baseWork int64
		seq      uint64
		handler  string
		err      error
	)
	switch m := msg.(type) {
	case *wire.Raw:
		if m.Handler != r.c.Prog.Name {
			return nil, fmt.Errorf("partition: relay for %q got raw for %q", r.c.Prog.Name, m.Handler)
		}
		if plan.Raw() {
			// Pass-through: forward untouched.
			return &Output{Raw: m, SplitPSE: RawPSEID, WireBytes: wire.SizeOf(m.Event)}, nil
		}
		machine, err = r.c.newMachine(r.env, []mir.Value{m.Event})
		if err != nil {
			return nil, err
		}
		seq, handler = m.Seq, m.Handler
	case *wire.Continuation:
		if m.Handler != r.c.Prog.Name {
			return nil, fmt.Errorf("partition: relay for %q got continuation for %q", r.c.Prog.Name, m.Handler)
		}
		resume := int(m.ResumeNode)
		if resume < 0 || resume >= len(r.c.Prog.Instrs) {
			return nil, fmt.Errorf("partition: relay resume node %d out of range", resume)
		}
		if plan.Raw() || r.c.Analysis.Stops[resume] {
			// Pass-through: nothing the relay may run.
			return &Output{Cont: m, SplitPSE: m.PSEID, ModWork: 0, WireBytes: continuationSize(m)}, nil
		}
		machine, err = r.c.restoreMachine(r.env, resume, m.Vars)
		if err != nil {
			return nil, err
		}
		baseWork, seq, handler = m.ModWork, m.Seq, m.Handler
	default:
		return nil, fmt.Errorf("partition: relay cannot process %T", msg)
	}
	defer machine.Release()
	if r.c.Engine == EngineCompiled {
		r.compiledRuns.Add(1)
	}

	res, err := runSplit(r.c, machine, plan, r.Probe, true, baseWork)
	if err != nil {
		return nil, err
	}
	if res.outcome.Done {
		return nil, fmt.Errorf("partition: %s completed at relay; missing StopNodes", handler)
	}
	snap := machine.Snapshot(res.splitVars)
	cont := &wire.Continuation{
		Handler:    handler,
		Seq:        seq,
		PSEID:      res.splitID,
		ResumeNode: int32(res.outcome.Split.To),
		Vars:       snap,
		ModWork:    baseWork + res.outcome.Work,
	}
	size := snapshotSize(res.splitVars, snap)
	r.Probe.SplitAt(res.splitID, cont.ModWork, size)
	return &Output{Cont: cont, SplitPSE: res.splitID, ModWork: res.outcome.Work, WireBytes: size}, nil
}

// continuationSize estimates the wire size of an existing continuation's
// variable payload.
func continuationSize(c *wire.Continuation) int64 {
	order := make([]string, 0, len(c.Vars))
	for n := range c.Vars {
		order = append(order, n)
	}
	return snapshotSize(order, c.Vars)
}
