package simnet

import (
	"math"
	"testing"
	"testing/quick"

	"methodpart/internal/perturb"
)

func TestHostTimeForUnloaded(t *testing.T) {
	h := NewHost("h", 100)
	if got := h.TimeFor(1000, 0); got != 10 {
		t.Errorf("TimeFor = %g, want 10", got)
	}
	if got := h.TimeFor(0, 5); got != 0 {
		t.Errorf("zero work time = %g", got)
	}
}

func TestHostSlowdownUnderLoad(t *testing.T) {
	h := NewHost("h", 100)
	h.Load = perturb.MustNew(perturb.Config{
		Seed: 2, Threads: 2, PLenMS: 500, AProb: 1, LIndex: 1, HorizonMS: 60000,
	})
	// Permanently loaded with 2 threads at LIndex 1 on one core:
	// speed factor 1/(1+2) -> 3x slower.
	got := h.TimeFor(1000, 0)
	if math.Abs(got-30) > 1 {
		t.Errorf("loaded TimeFor = %g, want ~30", got)
	}
}

func TestHostCoresSoftenLoad(t *testing.T) {
	loaded := perturb.MustNew(perturb.Config{
		Seed: 2, Threads: 2, PLenMS: 500, AProb: 1, LIndex: 1, HorizonMS: 60000,
	})
	one := NewHost("one", 100)
	one.Load = loaded
	two := NewHost("two", 100)
	two.Cores = 2
	two.Load = loaded
	if !(two.TimeFor(1000, 0) < one.TimeFor(1000, 0)) {
		t.Error("more cores did not soften perturbation")
	}
}

func TestTimeForIntegratesAcrossSegments(t *testing.T) {
	// Work spanning idle and busy segments must take between the pure
	// extremes, and TimeFor must be additive over splits.
	h := NewHost("h", 100)
	h.Load = perturb.MustNew(perturb.Config{
		Seed: 11, Threads: 1, PLenMS: 50, AProb: 0.5, LIndex: 1, HorizonMS: 10000,
	})
	f := func(rawStart uint32, rawWork uint16) bool {
		start := float64(rawStart%100000) / 10
		work := int64(rawWork)%5000 + 1
		full := h.TimeFor(work, start)
		half1 := h.TimeFor(work/2, start)
		half2 := h.TimeFor(work-work/2, start+half1)
		return math.Abs(full-(half1+half2)) < 1e-6 &&
			full >= float64(work)/100-1e-9 && full <= 2*float64(work)/100+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLinkOccupancy(t *testing.T) {
	l := &Link{BytesPerMS: 100, LatencyMS: 3}
	if got := l.Occupancy(500); got != 5 {
		t.Errorf("occupancy = %g", got)
	}
	if got := l.Occupancy(0); got != 0 {
		t.Errorf("zero-byte occupancy = %g", got)
	}
}

func TestPipelineOverlap(t *testing.T) {
	// Three stages of 10ms each: with perfect overlap, n messages take
	// ~(n+2)*10 ms, not n*30.
	sender := NewHost("s", 100)   // 1000 units = 10ms
	receiver := NewHost("r", 100) // 1000 units = 10ms
	link := &Link{BytesPerMS: 100, LatencyMS: 0}
	p := NewPipeline(sender, receiver, link)
	var last Timing
	const n = 20
	for i := 0; i < n; i++ {
		last = p.Deliver(0, 1000, 1000, 1000)
	}
	total := last.Done
	if total > (n+3)*10 {
		t.Errorf("pipeline not overlapped: total %g ms for %d messages", total, n)
	}
	if total < n*10 {
		t.Errorf("pipeline too fast: total %g ms", total)
	}
	if p.Delivered() != n {
		t.Errorf("delivered = %d", p.Delivered())
	}
}

func TestPipelineBottleneckDominates(t *testing.T) {
	// Receiver 4x slower than everything else: steady-state completion
	// interval equals receiver time.
	sender := NewHost("s", 1000)
	receiver := NewHost("r", 25) // 1000 units = 40ms
	link := &Link{BytesPerMS: 10000, LatencyMS: 1}
	p := NewPipeline(sender, receiver, link)
	var prev, interval float64
	for i := 0; i < 30; i++ {
		tm := p.Deliver(0, 1000, 1000, 1000)
		if i >= 20 {
			interval = tm.Done - prev
		}
		prev = tm.Done
	}
	if math.Abs(interval-40) > 1 {
		t.Errorf("steady interval = %g, want ~40", interval)
	}
}

func TestPipelineZeroBytesSkipsLink(t *testing.T) {
	p := NewPipeline(NewHost("s", 100), NewHost("r", 100), &Link{BytesPerMS: 1, LatencyMS: 50})
	tm := p.Deliver(0, 100, 0, 100)
	if tm.Arrive != tm.ModDone {
		t.Errorf("zero-byte message paid link costs: %+v", tm)
	}
}

func TestPipelineRespectsGenTime(t *testing.T) {
	p := NewPipeline(NewHost("s", 100), NewHost("r", 100), &Link{BytesPerMS: 100, LatencyMS: 0})
	tm := p.Deliver(500, 100, 0, 100)
	if tm.ModStart != 500 {
		t.Errorf("mod start = %g, want 500", tm.ModStart)
	}
	if tm.Span() <= 0 {
		t.Errorf("span = %g", tm.Span())
	}
}

func TestLinkBandwidthSchedule(t *testing.T) {
	l := &Link{BytesPerMS: 2000, LatencyMS: 1, Schedule: []BandwidthPhase{
		{Start: 100, BytesPerMS: 100},
		{Start: 200, BytesPerMS: 2000},
	}}
	cases := []struct{ t, want float64 }{
		{0, 2000}, {99, 2000}, {100, 100}, {150, 100}, {200, 2000}, {1e6, 2000},
	}
	for _, c := range cases {
		if got := l.BandwidthAt(c.t); got != c.want {
			t.Errorf("BandwidthAt(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if got := l.OccupancyAt(1000, 150); got != 10 {
		t.Errorf("OccupancyAt in degraded phase = %g, want 10", got)
	}
	if got := l.OccupancyAt(1000, 0); got != 0.5 {
		t.Errorf("OccupancyAt at base = %g, want 0.5", got)
	}
	// The compat path ignores the schedule.
	if got := l.Occupancy(1000); got != 0.5 {
		t.Errorf("Occupancy = %g, want base-rate 0.5", got)
	}
}

func TestPipelineDeliverUsesScheduledBandwidth(t *testing.T) {
	mk := func(sched []BandwidthPhase) *Pipeline {
		return NewPipeline(NewHost("s", 1e9), NewHost("r", 1e9),
			&Link{BytesPerMS: 1000, LatencyMS: 0, Schedule: sched})
	}
	fast := mk(nil).Deliver(0, 0, 10000, 0)
	slow := mk([]BandwidthPhase{{Start: 0, BytesPerMS: 100}}).Deliver(0, 0, 10000, 0)
	if math.Abs(fast.Arrive-10) > 1e-6 {
		t.Errorf("base-rate arrival = %g, want 10", fast.Arrive)
	}
	if math.Abs(slow.Arrive-100) > 1e-6 {
		t.Errorf("degraded arrival = %g, want 100", slow.Arrive)
	}
}
