package wire

import (
	"sync"
	"sync/atomic"
)

// Frame is a refcounted, pooled wire payload: one marshalled message whose
// bytes are shared by every send pipeline of a plan-equivalence class. The
// publisher marshals once, Retains one reference per additional recipient,
// and each pipeline Releases its reference after the bytes reach the wire
// (or are dropped); the last Release returns the frame to the pool.
//
// The bytes returned by Bytes must be treated as read-only and must not be
// used after the holder's Release — the buffer is recycled into the next
// frame. Refcounting is always strict: a Release below zero panics, in
// -race and release builds alike, because an underflow means some holder is
// still reading a buffer the pool may already have handed out again — a
// silent data corruption otherwise.
type Frame struct {
	buf  []byte
	refs atomic.Int32
}

var framePool = sync.Pool{New: func() any { return new(Frame) }}

// NewFrame returns a pooled frame holding a copy of data, with one
// reference.
func NewFrame(data []byte) *Frame {
	f := framePool.Get().(*Frame)
	f.buf = append(f.buf[:0], data...)
	f.refs.Store(1)
	return f
}

// MarshalFrame encodes msg into a pooled frame with one reference. It is
// the frame-producing sibling of Marshal/AppendMarshal and shares their
// encoder pool, so steady-state encoding allocates nothing once the frame
// and encoder pools are warm.
func MarshalFrame(msg any) (*Frame, error) {
	e := encoderPool.Get().(*Encoder)
	defer func() {
		e.Reset()
		encoderPool.Put(e)
	}()
	if err := e.encodeMessage(msg); err != nil {
		return nil, err
	}
	f := framePool.Get().(*Frame)
	f.buf = append(f.buf[:0], e.Bytes()...)
	f.refs.Store(1)
	return f, nil
}

// Bytes returns the frame payload. Read-only; valid only while the caller
// holds a reference.
func (f *Frame) Bytes() []byte { return f.buf }

// Len returns the payload length in bytes.
func (f *Frame) Len() int { return len(f.buf) }

// Refs returns the instantaneous reference count (for tests and debugging).
func (f *Frame) Refs() int32 { return f.refs.Load() }

// Retain adds n references, one per additional holder the caller hands the
// frame to. It must be called while the caller still holds a reference;
// retaining a released frame panics.
func (f *Frame) Retain(n int32) {
	if n < 0 {
		panic("wire: Frame.Retain with negative count")
	}
	if f.refs.Add(n) <= n {
		panic("wire: Frame.Retain on a released frame")
	}
}

// Release drops one reference. The last reference returns the frame to the
// pool; dropping a reference the holder does not have (refcount underflow)
// panics — see the type comment for why this check is unconditional.
func (f *Frame) Release() {
	switch n := f.refs.Add(-1); {
	case n == 0:
		framePool.Put(f)
	case n < 0:
		panic("wire: Frame double-release (refcount underflow)")
	}
}
