// Package analysis implements the paper's static analysis (§3): Unit Graph
// construction, live-variable analysis, the Data Dependency Graph, StopNode
// marking, TargetPath enumeration and the ConvexCut algorithm that produces
// the Potential Split Edge (PSE) set for a message-handling method under a
// given cost model.
package analysis

import (
	"fmt"
	"sort"

	"methodpart/internal/graph"
	"methodpart/internal/mir"
)

// Edge is a control-flow edge of the Unit Graph identified by instruction
// indices. The virtual exit node has index len(prog.Instrs).
type Edge struct {
	// From is the source instruction index.
	From int
	// To is the destination instruction index (possibly the exit node).
	To int
}

// String renders the edge in the paper's Edge(out,in) notation.
func (e Edge) String() string { return fmt.Sprintf("Edge(%d,%d)", e.From, e.To) }

// Less orders edges lexicographically.
func (e Edge) Less(o Edge) bool {
	if e.From != o.From {
		return e.From < o.From
	}
	return e.To < o.To
}

// UnitGraph is the per-instruction control-flow graph of a handler, with a
// single virtual exit node that all return instructions flow into.
type UnitGraph struct {
	// Prog is the analysed program.
	Prog *mir.Program
	// G is the digraph over nodes 0..Exit.
	G *graph.Digraph
	// Start is the entry node (always 0; the paper's StartNode).
	Start int
	// Exit is the virtual exit node index (== len(Prog.Instrs)).
	Exit int
}

// BuildUnitGraph constructs the Unit Graph of a validated program. A
// program with an unresolvable branch label is rejected: dropping (or
// zeroing) the edge would silently corrupt the graph every downstream
// analysis — liveness, StopNodes, ConvexCut — partitions over.
func BuildUnitGraph(prog *mir.Program) (*UnitGraph, error) {
	n := len(prog.Instrs)
	g := graph.NewDigraph(n + 1)
	for i := range prog.Instrs {
		if prog.Instrs[i].Op == mir.OpReturn {
			g.AddEdge(i, n)
			continue
		}
		succ, err := prog.Successors(i)
		if err != nil {
			return nil, fmt.Errorf("analysis: unit graph: %w", err)
		}
		for _, s := range succ {
			g.AddEdge(i, s)
		}
	}
	return &UnitGraph{Prog: prog, G: g, Start: 0, Exit: n}, nil
}

// MustBuildUnitGraph is BuildUnitGraph for programs known to be validated;
// it panics on a malformed program.
func MustBuildUnitGraph(prog *mir.Program) *UnitGraph {
	ug, err := BuildUnitGraph(prog)
	if err != nil {
		panic(err)
	}
	return ug
}

// Edges returns all control-flow edges in deterministic order.
func (ug *UnitGraph) Edges() []Edge {
	raw := ug.G.Edges()
	out := make([]Edge, len(raw))
	for i, e := range raw {
		out[i] = Edge{From: e[0], To: e[1]}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// IsExit reports whether node i is the virtual exit.
func (ug *UnitGraph) IsExit(i int) bool { return i == ug.Exit }

// NodeString renders node i for diagnostics.
func (ug *UnitGraph) NodeString(i int) string {
	if ug.IsExit(i) {
		return "<exit>"
	}
	return ug.Prog.Instrs[i].String()
}
