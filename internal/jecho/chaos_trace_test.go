package jecho_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/obsv"
	"methodpart/internal/transport"
	"methodpart/internal/wire"
)

// TestChaosBreakerTripTraceSequence reruns the poison scenario with
// tracers attached and asserts the trace tells the degradation story in
// causal order. On the publisher the containment pipeline runs entirely on
// the control-read goroutine, so its trace sequence must show
//
//	nack-recv → breaker "open" → min-cut → plan-flip
//
// for the poisoned PSE; on the subscriber, every quarantined frame must
// appear as a nack-sent and a dead-letter event.
func TestChaosBreakerTripTraceSequence(t *testing.T) {
	var target atomic.Int32
	target.Store(-1)
	var seenMu sync.Mutex
	seen := make(map[int32]uint64)
	plan := transport.FaultPlan{
		Seed: 1,
		Corrupt: func(payload []byte) []byte {
			msg, err := wire.Unmarshal(payload)
			if err != nil {
				return nil
			}
			cont, ok := msg.(*wire.Continuation)
			if !ok {
				return nil
			}
			seenMu.Lock()
			seen[cont.PSEID]++
			seenMu.Unlock()
			if tgt := target.Load(); tgt < 0 || cont.PSEID != tgt {
				return nil
			}
			cont.ResumeNode = 1 << 20
			data, err := wire.Marshal(cont)
			if err != nil {
				return nil
			}
			return data
		},
	}
	flaky := transport.NewFlaky(transport.NewMem(), plan)
	pubTrace := obsv.NewTracer(4096)
	subTrace := obsv.NewTracer(4096)
	pub := chaosPublisher(t, flaky, jecho.PublisherConfig{
		FeedbackEvery:     5,
		BreakerThreshold:  3,
		BreakerCooldown:   time.Hour,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
		Tracer:            pubTrace,
	})
	sub := chaosSubscribe(t, flaky, pub.Addr(), jecho.SubscriberConfig{
		Name:              "trace",
		ReconfigEvery:     5,
		BreakerThreshold:  3,
		BreakerCooldown:   time.Hour,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
		Tracer:            subTrace,
	})

	seq := int64(0)
	publish := func(n int) {
		for i := 0; i < n; i++ {
			_, _ = pub.Publish(imaging.NewFrame(200, 200, seq))
			seq++
			time.Sleep(time.Millisecond)
		}
	}

	// Converge, then poison the busiest split edge.
	publish(120)
	var tgt int32 = -1
	var most uint64
	seenMu.Lock()
	for id, n := range seen {
		if n > most {
			tgt, most = id, n
		}
	}
	seenMu.Unlock()
	if tgt < 0 {
		t.Fatal("no continuation traffic after convergence")
	}
	target.Store(tgt)
	deadline := time.Now().Add(10 * time.Second)
	for {
		publish(5)
		if info, ok := theSession(pub); ok && !splitHas(info.SplitIDs, tgt) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("plan still selects poisoned PSE %d", tgt)
		}
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("subscriber failed: %v", err)
	}

	// The trace emits the plan-flip event just after installing the plan the
	// loop above observed; give the control goroutine a beat to get there.
	var idxNack, idxOpen, idxCut, idxFlip int
	deadline = time.Now().Add(2 * time.Second)
	for {
		idxNack, idxOpen, idxCut, idxFlip = scanDegradeSequence(pubTrace.Snapshot(), tgt)
		if idxFlip >= 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if idxNack < 0 {
		t.Fatal("trace has no nack-recv for the poisoned PSE")
	}
	if idxOpen < 0 {
		t.Fatalf("trace has no breaker-open after the first nack-recv (nack at %d)", idxNack)
	}
	if idxCut < 0 {
		t.Fatalf("trace has no min-cut after the breaker opened (open at %d)", idxOpen)
	}
	if idxFlip < 0 {
		t.Fatalf("trace has no plan-flip after the degrade min-cut (cut at %d)", idxCut)
	}

	// Subscriber side: the quarantine leaves a matched nack-sent +
	// dead-letter pair per poisoned frame.
	var nacksSent, deadLetters int
	for _, ev := range subTrace.Snapshot() {
		switch ev.Kind {
		case obsv.EvNackSent:
			if ev.PSE != tgt {
				t.Fatalf("nack-sent blames PSE %d, want %d", ev.PSE, tgt)
			}
			nacksSent++
		case obsv.EvDeadLetter:
			if ev.PSE != tgt {
				t.Fatalf("dead-letter attributes PSE %d, want %d", ev.PSE, tgt)
			}
			if ev.Detail != wire.NackRestore.String() {
				t.Fatalf("dead-letter class %q, want %q", ev.Detail, wire.NackRestore)
			}
			deadLetters++
		}
	}
	if nacksSent == 0 || deadLetters == 0 {
		t.Fatalf("subscriber trace: %d nack-sent, %d dead-letter events", nacksSent, deadLetters)
	}
}

// scanDegradeSequence finds the first causal chain
// nack-recv → breaker open → min-cut → plan-flip for the PSE in the
// publisher's trace, returning the index of each link (-1 when the chain
// breaks there).
func scanDegradeSequence(events []obsv.Event, pse int32) (idxNack, idxOpen, idxCut, idxFlip int) {
	idxNack, idxOpen, idxCut, idxFlip = -1, -1, -1, -1
	for i, ev := range events {
		switch {
		case idxNack < 0:
			if ev.Kind == obsv.EvNackRecv && ev.PSE == pse {
				idxNack = i
			}
		case idxOpen < 0:
			if ev.Kind == obsv.EvBreaker && ev.PSE == pse && ev.Detail == "open" {
				idxOpen = i
			}
		case idxCut < 0:
			if ev.Kind == obsv.EvMinCut {
				idxCut = i
			}
		case idxFlip < 0:
			if ev.Kind == obsv.EvPlanFlip {
				idxFlip = i
			}
		}
	}
	return idxNack, idxOpen, idxCut, idxFlip
}
