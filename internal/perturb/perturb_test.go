package perturb

import (
	"testing"
	"testing/quick"
)

func TestUnloaded(t *testing.T) {
	s := Unloaded()
	if s.LoadAt(0) != 0 || s.LoadAt(12345) != 0 {
		t.Error("unloaded schedule has load")
	}
	if s.MeanLoad() != 0 {
		t.Error("unloaded mean load nonzero")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Threads: 2, PLenMS: 1000, AProb: 0.5, LIndex: 0.8, HorizonMS: 60000}
	a := MustNew(cfg)
	b := MustNew(cfg)
	for _, tm := range []float64{0, 999, 5000, 31337, 59999} {
		if a.LoadAt(tm) != b.LoadAt(tm) {
			t.Fatalf("same seed diverges at t=%g: %g vs %g", tm, a.LoadAt(tm), b.LoadAt(tm))
		}
	}
	c := MustNew(Config{Seed: 8, Threads: 2, PLenMS: 1000, AProb: 0.5, LIndex: 0.8, HorizonMS: 60000})
	diff := false
	for tm := 0.0; tm < 60000; tm += 500 {
		if a.LoadAt(tm) != c.LoadAt(tm) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical traces")
	}
}

func TestMeanLoadTracksParameters(t *testing.T) {
	base := Config{Seed: 3, Threads: 2, PLenMS: 1000, LIndex: 1.0, HorizonMS: 120000}
	lo := base
	lo.AProb = 0.2
	hi := base
	hi.AProb = 0.9
	sLo, sHi := MustNew(lo), MustNew(hi)
	if sLo.MeanLoad() >= sHi.MeanLoad() {
		t.Errorf("mean load not monotone in AProb: %g vs %g", sLo.MeanLoad(), sHi.MeanLoad())
	}
	// Expectation: threads * AProb * LIndex, within slack.
	want := 2 * 0.9 * 1.0
	if got := sHi.MeanLoad(); got < want*0.7 || got > want*1.3 {
		t.Errorf("mean load %g far from expectation %g", got, want)
	}
}

func TestAProbZeroAndOne(t *testing.T) {
	never := MustNew(Config{Seed: 1, Threads: 2, PLenMS: 500, AProb: 0, LIndex: 1, HorizonMS: 10000})
	if never.MeanLoad() != 0 {
		t.Errorf("AProb=0 mean load = %g", never.MeanLoad())
	}
	always := MustNew(Config{Seed: 1, Threads: 1, PLenMS: 500, AProb: 1, LIndex: 0.5, HorizonMS: 10000})
	if got := always.MeanLoad(); got < 0.49 || got > 0.51 {
		t.Errorf("AProb=1 mean load = %g, want ~0.5", got)
	}
}

func TestWrapAroundHorizon(t *testing.T) {
	s := MustNew(Config{Seed: 5, Threads: 1, PLenMS: 1000, AProb: 0.5, LIndex: 1, HorizonMS: 8000})
	for _, tm := range []float64{0, 100, 4000, 7999} {
		if s.LoadAt(tm) != s.LoadAt(tm+8000) || s.LoadAt(tm) != s.LoadAt(tm+16000) {
			t.Fatalf("horizon wrap broken at t=%g", tm)
		}
	}
}

func TestNextChangeAdvances(t *testing.T) {
	s := MustNew(Config{Seed: 9, Threads: 2, PLenMS: 300, AProb: 0.7, LIndex: 0.6, HorizonMS: 20000})
	f := func(raw uint32) bool {
		tm := float64(raw%200000) / 10 // [0, 20000)
		next := s.NextChange(tm)
		return next > tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Threads: -1},
		{Threads: 1, PLenMS: 0, HorizonMS: 100},
		{Threads: 1, PLenMS: 10, AProb: 2, HorizonMS: 100},
		{Threads: 1, PLenMS: 10, AProb: 0.5, LIndex: 1.5, HorizonMS: 100},
		{Threads: 1, PLenMS: 10, AProb: 0.5, LIndex: 0.5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{Threads: 0}); err != nil {
		t.Errorf("zero-thread config rejected: %v", err)
	}
}
