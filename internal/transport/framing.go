package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrameSize bounds a single frame to guard against corrupt length
// prefixes.
const MaxFrameSize = 256 << 20

// HeaderSize is the per-frame overhead of the length-prefix framing, used
// by the channel metrics to report on-wire byte counts consistently across
// transports.
const HeaderSize = 4

// WriteFrame writes one length-prefixed frame to a byte stream. It is the
// framing the TCP transport speaks; it lives here (not in internal/wire) so
// that wire stays a pure message codec.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame from a byte stream.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
