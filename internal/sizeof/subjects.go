package sizeof

// The Table 1 subjects (paper §4.1 / Appendix B): a wrapped and an unwrapped
// 100-int array, a simple object of primitives, and a composite object.

// Int100Wrapper wraps an array of 100 ints (the paper's "Int100 w/
// wrapper"). Its SizeOf is a generated-style self-describing method.
type Int100Wrapper struct {
	// Data is the wrapped array.
	Data []int32
}

// NewInt100Wrapper builds the standard 100-element wrapper.
func NewInt100Wrapper() *Int100Wrapper {
	w := &Int100Wrapper{Data: make([]int32, 100)}
	for i := range w.Data {
		w.Data[i] = int32(i)
	}
	return w
}

// SizeOf implements SelfSized.
func (w *Int100Wrapper) SizeOf() int {
	return ObjectHeaderSize + SliceHeaderSize + 4*len(w.Data)
}

// NewInt100 builds the unwrapped primitive array (the paper's "Int100 w/o
// wrapper"); primitive arrays need no self-describing method because size
// calculation is already O(1) for them.
func NewInt100() []int32 {
	data := make([]int32, 100)
	for i := range data {
		data[i] = int32(i)
	}
	return data
}

// AppBase mirrors the paper's AppBase: a few primitive fields and a string.
type AppBase struct {
	// A and B are small ints.
	A, B int32
	// C is a long.
	C int64
	// D is a short string.
	D string
}

// NewAppBase builds the paper's instance (a=0, b=2, c=1202, d="rrr").
func NewAppBase() *AppBase {
	return &AppBase{A: 0, B: 2, C: 1202, D: "rrr"}
}

// SizeOf implements SelfSized, mirroring the paper's
// "return 16 + STRING_HEADER_SIZE + d.length()" — the 16 is the primitive
// fields (4+4+8); this reproduction also counts the object header so the
// generated methods agree with the reflective walker's accounting.
func (b *AppBase) SizeOf() int {
	return ObjectHeaderSize + 16 + StringHeaderSize + len(b.D)
}

// AppComp mirrors the paper's composite object: two strings, two AppBase
// references (one nil), an int array and a float array.
type AppComp struct {
	// S1 and S2 are strings.
	S1, S2 string
	// AB1 and AB2 are nested objects (AB2 is nil in the paper's ctor).
	AB1, AB2 *AppBase
	// IA is an int array.
	IA []int32
	// FA is a float array.
	FA []float32
}

// NewAppComp builds the paper's instance.
func NewAppComp() *AppComp {
	return &AppComp{
		S1:  "aa",
		S2:  "This is a string!",
		AB1: NewAppBase(),
		IA:  make([]int32, 20),
		FA:  make([]float32, 10),
	}
}

// SizeOf implements SelfSized, mirroring the paper's generated method:
// string lengths plus nested object sizes plus array payloads, under the
// same accounting as the reflective walker.
func (c *AppComp) SizeOf() int {
	total := ObjectHeaderSize
	total += StringHeaderSize + len(c.S1)
	total += StringHeaderSize + len(c.S2)
	total += nestedSize(c.AB1) + nestedSize(c.AB2)
	total += SliceHeaderSize + 4*len(c.IA)
	total += SliceHeaderSize + 4*len(c.FA)
	return total
}

func nestedSize(b *AppBase) int {
	if b == nil {
		return 1 // a nil reference costs one marker byte
	}
	return b.SizeOf()
}

// Subject pairs a Table 1 row label with its value and whether a
// self-describing method exists.
type Subject struct {
	// Name is the row label.
	Name string
	// Value is the object under study.
	Value any
	// HasSelfSize reports whether SizeOf is available (the paper marks
	// the unwrapped array "n/a").
	HasSelfSize bool
}

// Table1Subjects returns the four rows of Table 1 in paper order.
func Table1Subjects() []Subject {
	return []Subject{
		{Name: "Int100(w/ wrapper)", Value: NewInt100Wrapper(), HasSelfSize: true},
		{Name: "Int100(w/o wrapper)", Value: NewInt100(), HasSelfSize: false},
		{Name: "AppBase", Value: NewAppBase(), HasSelfSize: true},
		{Name: "AppComp", Value: NewAppComp(), HasSelfSize: true},
	}
}
