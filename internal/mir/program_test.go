package mir

import (
	"strings"
	"testing"
)

func validBody() []Instr {
	return []Instr{
		{Op: OpConst, Dst: "a", Lit: Int(1)},
		{Op: OpReturn, Src: "a"},
	}
}

func TestNewProgramValid(t *testing.T) {
	p, err := NewProgram("f", []string{"x"}, validBody())
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "f" {
		t.Errorf("name = %q", p.Name)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		prog   *Program
		errSub string
	}{
		{"empty name", &Program{Params: nil, Instrs: validBody()}, "empty name"},
		{"no instrs", &Program{Name: "f"}, "no instructions"},
		{"dup param", &Program{Name: "f", Params: []string{"x", "x"}, Instrs: validBody()}, "duplicate parameter"},
		{"empty param", &Program{Name: "f", Params: []string{""}, Instrs: validBody()}, "empty parameter"},
		{"falls off end", &Program{Name: "f", Instrs: []Instr{{Op: OpConst, Dst: "a", Lit: Int(1)}}}, "falls off"},
		{"dup label", &Program{Name: "f", Instrs: []Instr{
			{Op: OpConst, Dst: "a", Lit: Int(1), Label: "l"},
			{Op: OpReturn, Label: "l"},
		}}, "duplicate label"},
		{"missing target", &Program{Name: "f", Instrs: []Instr{
			{Op: OpGoto, Target: "nowhere"},
			{Op: OpReturn},
		}}, "undefined label"},
		{"const without literal", &Program{Name: "f", Instrs: []Instr{
			{Op: OpConst, Dst: "a"},
			{Op: OpReturn},
		}}, "missing literal"},
		{"const without dst", &Program{Name: "f", Instrs: []Instr{
			{Op: OpConst, Lit: Int(1)},
			{Op: OpReturn},
		}}, "destination"},
		{"bin without operator", &Program{Name: "f", Instrs: []Instr{
			{Op: OpBin, Dst: "a", Src: "b", Src2: "c"},
			{Op: OpReturn},
		}}, "operator"},
		{"bin one operand", &Program{Name: "f", Instrs: []Instr{
			{Op: OpBin, Dst: "a", Bin: BinAdd, Src: "b"},
			{Op: OpReturn},
		}}, "two operands"},
		{"if without target", &Program{Name: "f", Instrs: []Instr{
			{Op: OpIf, Src: "c"},
			{Op: OpReturn},
		}}, "branch target"},
		{"call without fn", &Program{Name: "f", Instrs: []Instr{
			{Op: OpCall, Args: []string{"a"}},
			{Op: OpReturn},
		}}, "function name"},
		{"call empty arg", &Program{Name: "f", Instrs: []Instr{
			{Op: OpCall, Fn: "g", Args: []string{""}},
			{Op: OpReturn},
		}}, "argument"},
		{"new without class", &Program{Name: "f", Instrs: []Instr{
			{Op: OpNew, Dst: "a"},
			{Op: OpReturn},
		}}, "class"},
		{"getfield without field", &Program{Name: "f", Instrs: []Instr{
			{Op: OpGetField, Dst: "a", Src: "o"},
			{Op: OpReturn},
		}}, "field"},
		{"setfield without object", &Program{Name: "f", Instrs: []Instr{
			{Op: OpSetField, Field: "f", Src: "v"},
			{Op: OpReturn},
		}}, "object register"},
		{"newarray bad kind", &Program{Name: "f", Instrs: []Instr{
			{Op: OpNewArray, Dst: "a", ElemKind: KindString, Src: "n"},
			{Op: OpReturn},
		}}, "element kind"},
		{"arrget incomplete", &Program{Name: "f", Instrs: []Instr{
			{Op: OpArrGet, Dst: "a", Src: "arr"},
			{Op: OpReturn},
		}}, "index"},
		{"arrset incomplete", &Program{Name: "f", Instrs: []Instr{
			{Op: OpArrSet, Dst: "arr", Src: "v"},
			{Op: OpReturn},
		}}, "arrset"},
		{"instanceof without class", &Program{Name: "f", Instrs: []Instr{
			{Op: OpInstanceOf, Dst: "a", Src: "o"},
			{Op: OpReturn},
		}}, "class"},
		{"getglobal without name", &Program{Name: "f", Instrs: []Instr{
			{Op: OpGetGlobal, Dst: "a"},
			{Op: OpReturn},
		}}, "global"},
		{"setglobal without src", &Program{Name: "f", Instrs: []Instr{
			{Op: OpSetGlobal, Field: "g"},
			{Op: OpReturn},
		}}, "source"},
		{"unknown opcode", &Program{Name: "f", Instrs: []Instr{
			{Op: Op(99)},
			{Op: OpReturn},
		}}, "unknown opcode"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.prog.Validate()
			if err == nil {
				t.Fatalf("Validate succeeded, want error containing %q", c.errSub)
			}
			if !strings.Contains(err.Error(), c.errSub) {
				t.Fatalf("error %q does not contain %q", err, c.errSub)
			}
		})
	}
}

func TestSuccessors(t *testing.T) {
	p, err := NewProgram("f", []string{"x"}, []Instr{
		{Op: OpConst, Dst: "a", Lit: Int(0)},                    // 0
		{Op: OpIf, Src: "x", Target: "end"},                     // 1 -> 2, 4
		{Op: OpBin, Dst: "a", Bin: BinAdd, Src: "a", Src2: "x"}, // 2
		{Op: OpGoto, Target: "end"},                             // 3 -> 4
		{Op: OpReturn, Src: "a", Label: "end"},                  // 4 -> (exit)
	})
	if err != nil {
		t.Fatal(err)
	}
	succ := func(i int) []int {
		t.Helper()
		got, err := p.Successors(i)
		if err != nil {
			t.Fatalf("Successors(%d): %v", i, err)
		}
		return got
	}
	if got := succ(0); !sameInts(got, []int{1}) {
		t.Errorf("succ(0) = %v", got)
	}
	got := succ(1)
	if len(got) != 2 || !(contains(got, 2) && contains(got, 4)) {
		t.Errorf("succ(1) = %v", got)
	}
	if got := succ(3); !sameInts(got, []int{4}) {
		t.Errorf("succ(3) = %v", got)
	}
	if got := succ(4); len(got) != 0 {
		t.Errorf("succ(return) = %v", got)
	}
}

func TestBranchToNextInstruction(t *testing.T) {
	// A conditional branch targeting its own fall-through must yield one
	// successor, not a duplicate.
	p, err := NewProgram("f", []string{"x"}, []Instr{
		{Op: OpIf, Src: "x", Target: "n"},
		{Op: OpReturn, Label: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Successors(0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(got, []int{1}) {
		t.Errorf("succ = %v, want [1]", got)
	}
}

func TestRegisters(t *testing.T) {
	p, err := NewProgram("f", []string{"x", "y"}, []Instr{
		{Op: OpBin, Dst: "a", Bin: BinAdd, Src: "x", Src2: "y"},
		{Op: OpMove, Dst: "b", Src: "a"},
		{Op: OpReturn, Src: "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := p.Registers()
	want := []string{"x", "y", "a", "b"}
	if !sameStrings(got, want) {
		t.Errorf("registers = %v, want %v", got, want)
	}
}

func TestProgramStringRendersLabels(t *testing.T) {
	p, err := NewProgram("f", []string{"x"}, []Instr{
		{Op: OpIf, Src: "x", Target: "done"},
		{Op: OpConst, Dst: "a", Lit: Int(1)},
		{Op: OpReturn, Label: "done"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.Contains(s, "done:") || !strings.Contains(s, "func f(x) {") {
		t.Errorf("rendering:\n%s", s)
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
