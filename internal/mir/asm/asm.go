// Package asm implements a line-oriented text assembler for MIR programs.
// It is how handlers ship in this system: a component deploys handler source
// to the runtime, which assembles, analyses and partitions it — the analogue
// of shipping bytecode to Soot in the paper.
//
// Syntax example (the paper's push() handler, Fig. 4):
//
//	class ImageData {
//	  width int
//	  height int
//	  buff bytes
//	}
//
//	func push(event) {
//	  t0 = instanceof event ImageData
//	  ifnot t0 goto done
//	  img = cast event ImageData
//	  w = const 100
//	  h = const 100
//	  out = call resize img w h
//	  call displayImage out
//	done:
//	  return
//	}
//
// Comments start with ';' or '//' and run to end of line.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"methodpart/internal/mir"
)

// Unit is the result of assembling a source text: class definitions plus
// handler programs.
type Unit struct {
	// Classes are the class definitions in declaration order.
	Classes []mir.ClassDef
	// Programs are the handler programs in declaration order.
	Programs []*mir.Program
}

// Program returns the named program from the unit.
func (u *Unit) Program(name string) (*mir.Program, bool) {
	for _, p := range u.Programs {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// ClassTable builds a class registry from the unit's class definitions.
func (u *Unit) ClassTable() (*mir.ClassTable, error) {
	return mir.NewClassTable(u.Classes...)
}

// ParseError reports a syntax error with its source line.
type ParseError struct {
	// Line is the 1-based source line number.
	Line int
	// Msg describes the problem.
	Msg string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type parser struct {
	lines []string
	pos   int // index into lines
}

// Parse assembles a source text into a Unit.
func Parse(src string) (*Unit, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	unit := &Unit{}
	for {
		line, n, ok := p.next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "class":
			def, err := p.parseClass(fields, n)
			if err != nil {
				return nil, err
			}
			unit.Classes = append(unit.Classes, def)
		case "func":
			prog, err := p.parseFunc(line, n)
			if err != nil {
				return nil, err
			}
			unit.Programs = append(unit.Programs, prog)
		default:
			return nil, errf(n, "expected 'class' or 'func', got %q", fields[0])
		}
	}
	if len(unit.Programs) == 0 {
		return nil, errf(len(p.lines), "no func declarations")
	}
	return unit, nil
}

// MustParse is Parse that panics on error; for tests and embedded handlers.
func MustParse(src string) *Unit {
	u, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return u
}

// next returns the next non-empty, comment-stripped line and its 1-based
// number.
func (p *parser) next() (string, int, bool) {
	for p.pos < len(p.lines) {
		raw := p.lines[p.pos]
		p.pos++
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line != "" {
			return line, p.pos, true
		}
	}
	return "", 0, false
}

func stripComment(s string) string {
	// Respect string literals when scanning for comment markers.
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch {
		case c == '"':
			inStr = true
		case c == ';':
			return s[:i]
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

func (p *parser) parseClass(fields []string, n int) (mir.ClassDef, error) {
	// class Name {
	if len(fields) != 3 || fields[2] != "{" {
		return mir.ClassDef{}, errf(n, "class syntax: class Name {")
	}
	def := mir.ClassDef{Name: fields[1]}
	for {
		line, ln, ok := p.next()
		if !ok {
			return mir.ClassDef{}, errf(n, "class %s: missing closing '}'", def.Name)
		}
		if line == "}" {
			return def, nil
		}
		fs := strings.Fields(line)
		if len(fs) != 2 {
			return mir.ClassDef{}, errf(ln, "field syntax: name kind")
		}
		k, ok := mir.KindFromString(fs[1])
		if !ok {
			return mir.ClassDef{}, errf(ln, "unknown kind %q", fs[1])
		}
		def.Fields = append(def.Fields, mir.FieldDef{Name: fs[0], Kind: k})
	}
}

func (p *parser) parseFunc(header string, n int) (*mir.Program, error) {
	// func name(a, b) {
	rest := strings.TrimSpace(strings.TrimPrefix(header, "func"))
	open := strings.IndexByte(rest, '(')
	closeIdx := strings.IndexByte(rest, ')')
	if open < 0 || closeIdx < open || !strings.HasSuffix(rest, "{") {
		return nil, errf(n, "func syntax: func name(params) {")
	}
	name := strings.TrimSpace(rest[:open])
	if name == "" {
		return nil, errf(n, "func with empty name")
	}
	var params []string
	paramStr := strings.TrimSpace(rest[open+1 : closeIdx])
	if paramStr != "" {
		for _, prm := range strings.Split(paramStr, ",") {
			params = append(params, strings.TrimSpace(prm))
		}
	}
	var instrs []mir.Instr
	pendingLabel := ""
	for {
		line, ln, ok := p.next()
		if !ok {
			return nil, errf(n, "func %s: missing closing '}'", name)
		}
		if line == "}" {
			if pendingLabel != "" {
				return nil, errf(ln, "label %q attached to no instruction", pendingLabel)
			}
			prog, err := mir.NewProgram(name, params, instrs)
			if err != nil {
				return nil, errf(ln, "%v", err)
			}
			return prog, nil
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			if pendingLabel != "" {
				return nil, errf(ln, "two labels (%q, %q) on one instruction", pendingLabel, line)
			}
			pendingLabel = strings.TrimSuffix(line, ":")
			if pendingLabel == "" {
				return nil, errf(ln, "empty label")
			}
			continue
		}
		in, err := parseInstr(line, ln)
		if err != nil {
			return nil, err
		}
		in.Label = pendingLabel
		pendingLabel = ""
		instrs = append(instrs, in)
	}
}

func parseInstr(line string, ln int) (mir.Instr, error) {
	if eq := strings.Index(line, " = "); eq >= 0 {
		dst := strings.TrimSpace(line[:eq])
		rhs := strings.TrimSpace(line[eq+3:])
		if dst == "" || strings.ContainsAny(dst, " \t") {
			return mir.Instr{}, errf(ln, "bad destination %q", dst)
		}
		return parseAssign(dst, rhs, ln)
	}
	fields := strings.Fields(line)
	switch fields[0] {
	case "goto":
		if len(fields) != 2 {
			return mir.Instr{}, errf(ln, "goto syntax: goto label")
		}
		return mir.Instr{Op: mir.OpGoto, Target: fields[1]}, nil
	case "if", "ifnot":
		if len(fields) != 4 || fields[2] != "goto" {
			return mir.Instr{}, errf(ln, "%s syntax: %s cond goto label", fields[0], fields[0])
		}
		op := mir.OpIf
		if fields[0] == "ifnot" {
			op = mir.OpIfNot
		}
		return mir.Instr{Op: op, Src: fields[1], Target: fields[3]}, nil
	case "return":
		switch len(fields) {
		case 1:
			return mir.Instr{Op: mir.OpReturn}, nil
		case 2:
			return mir.Instr{Op: mir.OpReturn, Src: fields[1]}, nil
		default:
			return mir.Instr{}, errf(ln, "return syntax: return [reg]")
		}
	case "call":
		if len(fields) < 2 {
			return mir.Instr{}, errf(ln, "call syntax: call fn [args...]")
		}
		return mir.Instr{Op: mir.OpCall, Fn: fields[1], Args: fields[2:]}, nil
	case "setfield":
		if len(fields) != 4 {
			return mir.Instr{}, errf(ln, "setfield syntax: setfield obj field src")
		}
		return mir.Instr{Op: mir.OpSetField, Dst: fields[1], Field: fields[2], Src: fields[3]}, nil
	case "arrset":
		if len(fields) != 4 {
			return mir.Instr{}, errf(ln, "arrset syntax: arrset arr idx src")
		}
		return mir.Instr{Op: mir.OpArrSet, Dst: fields[1], Src2: fields[2], Src: fields[3]}, nil
	case "setglobal":
		if len(fields) != 3 {
			return mir.Instr{}, errf(ln, "setglobal syntax: setglobal name src")
		}
		return mir.Instr{Op: mir.OpSetGlobal, Field: fields[1], Src: fields[2]}, nil
	default:
		return mir.Instr{}, errf(ln, "unknown instruction %q", fields[0])
	}
}

func parseAssign(dst, rhs string, ln int) (mir.Instr, error) {
	fields := strings.Fields(rhs)
	if len(fields) == 0 {
		return mir.Instr{}, errf(ln, "empty right-hand side")
	}
	switch fields[0] {
	case "const":
		litStr := strings.TrimSpace(strings.TrimPrefix(rhs, "const"))
		lit, err := parseLiteral(litStr, ln)
		if err != nil {
			return mir.Instr{}, err
		}
		return mir.Instr{Op: mir.OpConst, Dst: dst, Lit: lit}, nil
	case "move":
		if len(fields) != 2 {
			return mir.Instr{}, errf(ln, "move syntax: dst = move src")
		}
		return mir.Instr{Op: mir.OpMove, Dst: dst, Src: fields[1]}, nil
	case "call":
		if len(fields) < 2 {
			return mir.Instr{}, errf(ln, "call syntax: dst = call fn [args...]")
		}
		return mir.Instr{Op: mir.OpCall, Dst: dst, Fn: fields[1], Args: fields[2:]}, nil
	case "new":
		if len(fields) != 2 {
			return mir.Instr{}, errf(ln, "new syntax: dst = new Class")
		}
		return mir.Instr{Op: mir.OpNew, Dst: dst, Class: fields[1]}, nil
	case "getfield":
		if len(fields) != 3 {
			return mir.Instr{}, errf(ln, "getfield syntax: dst = getfield obj field")
		}
		return mir.Instr{Op: mir.OpGetField, Dst: dst, Src: fields[1], Field: fields[2]}, nil
	case "newarray":
		if len(fields) != 3 {
			return mir.Instr{}, errf(ln, "newarray syntax: dst = newarray kind lenreg")
		}
		k, ok := mir.KindFromString(fields[1])
		if !ok {
			return mir.Instr{}, errf(ln, "unknown kind %q", fields[1])
		}
		return mir.Instr{Op: mir.OpNewArray, Dst: dst, ElemKind: k, Src: fields[2]}, nil
	case "arrget":
		if len(fields) != 3 {
			return mir.Instr{}, errf(ln, "arrget syntax: dst = arrget arr idx")
		}
		return mir.Instr{Op: mir.OpArrGet, Dst: dst, Src: fields[1], Src2: fields[2]}, nil
	case "instanceof":
		if len(fields) != 3 {
			return mir.Instr{}, errf(ln, "instanceof syntax: dst = instanceof src Class")
		}
		return mir.Instr{Op: mir.OpInstanceOf, Dst: dst, Src: fields[1], Class: fields[2]}, nil
	case "cast":
		if len(fields) != 3 {
			return mir.Instr{}, errf(ln, "cast syntax: dst = cast src Class")
		}
		return mir.Instr{Op: mir.OpCast, Dst: dst, Src: fields[1], Class: fields[2]}, nil
	case "len":
		if len(fields) != 2 {
			return mir.Instr{}, errf(ln, "len syntax: dst = len src")
		}
		return mir.Instr{Op: mir.OpLen, Dst: dst, Src: fields[1]}, nil
	case "getglobal":
		if len(fields) != 2 {
			return mir.Instr{}, errf(ln, "getglobal syntax: dst = getglobal name")
		}
		return mir.Instr{Op: mir.OpGetGlobal, Dst: dst, Field: fields[1]}, nil
	default:
		if bk, ok := mir.BinKindFromString(fields[0]); ok {
			if len(fields) != 3 {
				return mir.Instr{}, errf(ln, "%s syntax: dst = %s a b", fields[0], fields[0])
			}
			return mir.Instr{Op: mir.OpBin, Dst: dst, Bin: bk, Src: fields[1], Src2: fields[2]}, nil
		}
		if uk, ok := mir.UnKindFromString(fields[0]); ok {
			if len(fields) != 2 {
				return mir.Instr{}, errf(ln, "%s syntax: dst = %s a", fields[0], fields[0])
			}
			return mir.Instr{Op: mir.OpUn, Dst: dst, Un: uk, Src: fields[1]}, nil
		}
		return mir.Instr{}, errf(ln, "unknown operation %q", fields[0])
	}
}

func parseLiteral(s string, ln int) (mir.Value, error) {
	switch {
	case s == "":
		return nil, errf(ln, "missing literal")
	case s == "null":
		return mir.Null{}, nil
	case s == "true":
		return mir.Bool(true), nil
	case s == "false":
		return mir.Bool(false), nil
	case s[0] == '"':
		str, err := strconv.Unquote(s)
		if err != nil {
			return nil, errf(ln, "bad string literal %s: %v", s, err)
		}
		return mir.Str(str), nil
	case strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, "0x"):
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, errf(ln, "bad float literal %q: %v", s, err)
		}
		return mir.Float(f), nil
	default:
		i, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return nil, errf(ln, "bad int literal %q: %v", s, err)
		}
		return mir.Int(i), nil
	}
}

// Format renders a unit back to assembler source (a disassembler).
func Format(u *Unit) string {
	var b strings.Builder
	for _, c := range u.Classes {
		fmt.Fprintf(&b, "class %s {\n", c.Name)
		for _, f := range c.Fields {
			fmt.Fprintf(&b, "  %s %s\n", f.Name, f.Kind)
		}
		b.WriteString("}\n\n")
	}
	for _, p := range u.Programs {
		b.WriteString(p.String())
		b.WriteString("\n")
	}
	return strings.TrimSuffix(b.String(), "\n")
}
