package costmodel_test

import (
	"math"
	"testing"

	"methodpart/internal/analysis"
	"methodpart/internal/costmodel"
	"methodpart/internal/mir/asm"
	"methodpart/internal/testprog"
)

func analyzeWith(t *testing.T, model costmodel.Model) *analysis.Result {
	t.Helper()
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, err := u.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := testprog.PushBuiltins()
	ug := analysis.MustBuildUnitGraph(prog)
	live := analysis.ComputeLiveness(ug)
	res, err := analysis.Analyze(ug, reg, model.StaticCost(prog, classes, live), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDataSizeStaticCostClassifiesVars(t *testing.T) {
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, _ := u.ClassTable()
	model := costmodel.NewDataSize()
	ug := analysis.MustBuildUnitGraph(prog)
	live := analysis.ComputeLiveness(ug)
	costFn := model.StaticCost(prog, classes, live)

	// Edge(0,1) hands over {event, z0}: z0 is a bool (deterministic),
	// event is dynamic.
	desc := costFn(analysis.Edge{From: 0, To: 1}, analysis.NewVarSet("event", "z0"))
	if len(desc.Vars) != 1 || !desc.Vars["event"] {
		t.Errorf("dynamic vars = %v, want {event}", desc.Vars)
	}
	// Deterministic part covers name overheads plus the bool payload.
	wantDet := int64(4+len("event")) + int64(4+len("z0")) + 2
	if desc.Det != wantDet {
		t.Errorf("det = %d, want %d", desc.Det, wantDet)
	}
}

func TestDataSizeFieldKindInference(t *testing.T) {
	src := `
class P {
  x int
  tag string
}

func f(event) {
  p = cast event P
  x = getfield p x
  s = getfield p tag
  y = add x x
  call out y s
  return
}
`
	u := asm.MustParse(src)
	prog, _ := u.Program("f")
	classes, _ := u.ClassTable()
	model := costmodel.NewDataSize()
	ug := analysis.MustBuildUnitGraph(prog)
	live := analysis.ComputeLiveness(ug)
	costFn := model.StaticCost(prog, classes, live)
	// x is an int field: deterministic. s is a string field: dynamic.
	desc := costFn(analysis.Edge{From: 3, To: 4}, analysis.NewVarSet("x", "s"))
	if desc.Vars["x"] {
		t.Errorf("int field treated dynamic: %v", desc.Vars)
	}
	if !desc.Vars["s"] {
		t.Errorf("string field treated static: %v", desc.Vars)
	}
}

func TestDataSizeCapacity(t *testing.T) {
	m := costmodel.NewDataSize()
	env := costmodel.DefaultEnvironment()
	st := costmodel.Stat{Count: 10, Prob: 0.5, Bytes: 1000}
	if got := m.Capacity(st, env); got != 500 {
		t.Errorf("capacity = %d, want 500", got)
	}
	if got := m.Capacity(costmodel.Stat{}, env); got != 1 {
		t.Errorf("unprofiled capacity = %d, want 1", got)
	}
	if got := m.Capacity(costmodel.Stat{Count: 5, Prob: 0, Bytes: 0}, env); got != 1 {
		t.Errorf("zero capacity floor = %d, want 1", got)
	}
}

func TestExecTimeCapacityBottleneck(t *testing.T) {
	m := costmodel.NewExecTime()
	env := costmodel.Environment{SenderSpeed: 100, ReceiverSpeed: 100, Bandwidth: 1000, LatencyMS: 1}
	// mod 1000 units / 100 per ms = 10ms; demod 500/100 = 5ms;
	// transfer 2000/1000 = 2ms. Bottleneck 10ms -> 10000us.
	st := costmodel.Stat{Count: 10, Prob: 1, ModWork: 1000, DemodWork: 500, Bytes: 2000}
	if got := m.Capacity(st, env); got != 10000 {
		t.Errorf("capacity = %d, want 10000", got)
	}
	// Receiver-bound case.
	st2 := costmodel.Stat{Count: 10, Prob: 1, ModWork: 100, DemodWork: 5000, Bytes: 100}
	if got := m.Capacity(st2, env); got != 50000 {
		t.Errorf("capacity = %d, want 50000", got)
	}
}

func TestExecTimeKeepsRichPSESet(t *testing.T) {
	dsRes := analyzeWith(t, costmodel.NewDataSize())
	etRes := analyzeWith(t, costmodel.NewExecTime())
	if len(etRes.PSESet) < len(dsRes.PSESet) {
		t.Errorf("exec-time PSEs (%d) should be >= data-size PSEs (%d)",
			len(etRes.PSESet), len(dsRes.PSESet))
	}
}

func TestEquations(t *testing.T) {
	// Eq (1).
	if got := costmodel.SendTime(2, 0.5, 10); got != 7 {
		t.Errorf("SendTime = %g", got)
	}
	// Eq (2): alpha + n*beta < n*max(tp, tc).
	if !costmodel.NotCommBound(1, 0.1, 100, 1, 2) {
		t.Error("clearly compute-bound case reported comm-bound")
	}
	if costmodel.NotCommBound(1000, 10, 10, 0.1, 0.1) {
		t.Error("clearly comm-bound case reported compute-bound")
	}
	// Eq (3): the dominant term must grow with n.
	t1 := costmodel.TotalTime(100, 2, 3, 1, 0.1, 10)
	t2 := costmodel.TotalTime(200, 2, 3, 1, 0.1, 10)
	if t2-t1 != 100*3 {
		t.Errorf("TotalTime growth = %g, want 300", t2-t1)
	}
	// Eq (4).
	if got := costmodel.MinSigma(10, 0.5, 2, 3); got != 10.0/2.5 {
		t.Errorf("MinSigma = %g", got)
	}
	if got := costmodel.MinSigma(10, 5, 2, 3); !math.IsInf(got, 1) {
		t.Errorf("MinSigma in comm-bound regime = %g, want +Inf", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{costmodel.DataSizeName, costmodel.ExecTimeName} {
		m, err := costmodel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Errorf("name = %q, want %q", m.Name(), name)
		}
	}
	if _, err := costmodel.ByName("bogus"); err == nil {
		t.Error("bogus model accepted")
	}
}

func TestComposite(t *testing.T) {
	ds := costmodel.NewDataSize()
	et := costmodel.NewExecTime()
	comp, err := costmodel.NewComposite([]costmodel.Model{ds, et}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	env := costmodel.DefaultEnvironment()
	st := costmodel.Stat{Count: 10, Prob: 1, Bytes: 1000, ModWork: 500, DemodWork: 500}
	want := float64(ds.Capacity(st, env)) + 2*float64(et.Capacity(st, env))
	if got := comp.Capacity(st, env); got != int64(want) {
		t.Errorf("composite capacity = %d, want %d", got, int64(want))
	}
	// The composite compiles end to end.
	res := analyzeWith(t, comp)
	if len(res.PSESet) == 0 {
		t.Error("composite model produced no PSEs")
	}
	if _, err := costmodel.NewComposite(nil, nil); err == nil {
		t.Error("empty composite accepted")
	}
	if _, err := costmodel.NewComposite([]costmodel.Model{ds}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
}
