package partition_test

import (
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/testprog"
)

// TestSuppressTrivialDisabled: with suppression off, filtered events still
// ship a (tiny) continuation that resumes at the bare return — the paper's
// unoptimized baseline behaviour — and the demodulator completes it.
func TestSuppressTrivialDisabled(t *testing.T) {
	u := asm.MustParse(testprog.PushSource)
	prog, _ := u.Program("push")
	classes, _ := u.ClassTable()
	oracle, _ := testprog.PushBuiltins()
	c, err := partition.Compile(prog, classes, oracle, costmodel.NewDataSize())
	if err != nil {
		t.Fatal(err)
	}
	var filterID, otherID int32 = -1, -1
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		p, _ := c.PSE(id)
		if len(p.Vars) == 0 {
			filterID = id
		} else if otherID < 0 {
			otherID = id
		}
	}
	plan, err := partition.NewPlan(c.NumPSEs(), 1, []int32{filterID, otherID}, nil)
	if err != nil {
		t.Fatal(err)
	}

	sendReg, _ := testprog.PushBuiltins()
	recvReg, displayed := testprog.PushBuiltins()
	mod := partition.NewModulator(c, interp.NewEnv(classes, sendReg))
	mod.SuppressTrivial = false
	mod.SetPlan(plan)
	demod := partition.NewDemodulator(c, interp.NewEnv(classes, recvReg))

	out, err := mod.Process(mir.Str("not an image"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Suppressed {
		t.Fatal("suppression disabled but message suppressed")
	}
	if out.Cont == nil {
		t.Fatalf("no continuation: %+v", out)
	}
	if len(out.Cont.Vars) != 0 {
		t.Fatalf("filter continuation carries vars: %v", out.Cont.Vars)
	}
	res, err := demod.Process(out.Cont)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Return.(mir.Null); !ok {
		t.Fatalf("return = %v", res.Return)
	}
	if len(*displayed) != 0 {
		t.Fatal("filtered event displayed")
	}
}

// TestInfiniteLoopHandlerCompilesRawOnly: a handler that can loop forever
// (no reachable StopNode on some path) still compiles; the unreachable-exit
// degenerate case yields a raw-only PSE table.
func TestInfiniteLoopHandlerCompilesRawOnly(t *testing.T) {
	src := `
func spin(event) {
loop:
  x = move event
  goto loop
}
`
	u := asm.MustParse(src)
	prog, _ := u.Program("spin")
	reg := interp.NewRegistry()
	c, err := partition.Compile(prog, nil, reg, costmodel.NewDataSize())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPSEs() != 1 {
		t.Fatalf("NumPSEs = %d, want raw only", c.NumPSEs())
	}
	// Raw delivery then hits the interpreter step bound at the receiver —
	// a contained failure, not a hang.
	mod := partition.NewModulator(c, interp.NewEnv(nil, reg))
	env := interp.NewEnv(nil, reg)
	env.MaxSteps = 10_000
	demod := partition.NewDemodulator(c, env)
	out, err := mod.Process(mir.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Raw == nil {
		t.Fatalf("expected raw output: %+v", out)
	}
	if _, err := demod.Process(out.Raw); err == nil {
		t.Fatal("endless handler completed")
	}
}
