package jecho

import "sync/atomic"

// ChannelMetrics is a point-in-time snapshot of one event-channel
// endpoint's counters. The publisher keeps one per subscription (surfaced
// through Publisher.Subscriptions); the subscriber keeps one for its half
// of the loop (Subscriber.Metrics). Fields that do not apply to a side stay
// zero there: a subscriber never drops or suppresses, a publisher never
// counts plans it *received*.
type ChannelMetrics struct {
	// Published counts events pushed through the modulator (publisher) or
	// messages demodulated to completion (subscriber).
	Published uint64
	// Suppressed counts events the modulator filtered at the sender
	// (trivial-continuation suppression), so nothing crossed the wire.
	Suppressed uint64
	// Enqueued counts frames accepted into the outbound send queue.
	Enqueued uint64
	// Dropped counts enqueued frames that never reached the peer: evicted
	// by the overflow policy, abandoned in the queue at shutdown, or lost
	// to a failed transport write. Together with EventsSent this closes
	// the accounting identity Enqueued = EventsSent + Dropped once the
	// pipeline is quiescent.
	Dropped uint64
	// QueueHighWater is the maximum outbound queue depth observed.
	QueueHighWater uint64
	// BytesOnWire counts event-frame bytes actually sent (publisher) or
	// received (subscriber), including framing overhead. Control traffic
	// (heartbeats, feedback, plans, NACKs) is counted separately in
	// ControlBytesOnWire so the bytes-saved ratio divides by event bytes
	// only; before the split, quiet channels skewed the ratio with
	// heartbeat bytes.
	BytesOnWire uint64
	// ControlBytesOnWire counts control-frame bytes (heartbeats, profiling
	// feedback, plans, NACKs) sent or received, including framing overhead.
	ControlBytesOnWire uint64
	// EventsSent counts event frames that reached the wire, whether alone
	// or packed inside a batch frame (publisher side). At quiescence
	// Enqueued = EventsSent + Dropped.
	EventsSent uint64
	// BatchesSent counts batch wire frames written; frames carrying a
	// single event go unwrapped and are not counted here.
	BatchesSent uint64
	// BatchedEvents counts events that traveled inside a batch frame, so
	// BatchedEvents/BatchesSent is the mean batch size.
	BatchedEvents uint64
	// BatchesReceived counts batch frames unpacked by the subscriber.
	BatchesReceived uint64
	// BytesSaved estimates bytes modulation kept off the wire: for a
	// suppressed event the whole raw payload, for a continuation the
	// difference between the raw event encoding and the continuation.
	BytesSaved uint64
	// FeedbackSent counts profiling feedback frames that reached the wire.
	FeedbackSent uint64
	// FeedbackCoalesced counts feedback frames superseded by a newer
	// snapshot before they could be sent (slow-peer coalescing).
	FeedbackCoalesced uint64
	// PlanFlips counts plan installations that changed the split set —
	// the paper's atomic flag flips (applied at the publisher, pushed at
	// the subscriber).
	PlanFlips uint64
	// SendErrors counts transport write failures (each retires the
	// subscription on the publisher side).
	SendErrors uint64
	// HeartbeatsSent counts liveness frames written while the channel was
	// otherwise idle.
	HeartbeatsSent uint64
	// HeartbeatsReceived counts liveness frames from the peer.
	HeartbeatsReceived uint64
	// Reconnects counts successful automatic resubscriptions after a lost
	// connection (subscriber side).
	Reconnects uint64
	// DecodeFailures counts inbound frames wire.Unmarshal rejected. These
	// were previously only logged; counting them makes silent drops
	// observable.
	DecodeFailures uint64
	// DemodFailures counts decoded messages the demodulator failed on
	// (subscriber side): restore errors, runtime faults, budget overruns.
	DemodFailures uint64
	// ModFailures counts events the modulator failed on (publisher side).
	ModFailures uint64
	// NacksSent counts demod-failure reports pushed upstream (subscriber).
	NacksSent uint64
	// NacksReceived counts demod-failure reports from peers (publisher).
	NacksReceived uint64
	// DeadLettered counts messages quarantined in the dead-letter ring.
	DeadLettered uint64
	// BreakerTrips counts circuit-breaker transitions to open — each one
	// excluded a PSE from the split set until its cooldown.
	BreakerTrips uint64
	// AcksSent counts cumulative delivery acks written (subscriber side),
	// standalone and heartbeat-piggybacked alike.
	AcksSent uint64
	// AcksReceived counts cumulative delivery acks from the peer
	// (publisher side).
	AcksReceived uint64
	// RetransmitRequestsSent counts gap-repair requests pushed upstream
	// (subscriber side).
	RetransmitRequestsSent uint64
	// RetransmitRequestsReceived counts gap-repair requests from peers
	// (publisher side).
	RetransmitRequestsReceived uint64
	// Replayed counts event frames re-enqueued from the replay ring —
	// retransmissions and reconnect resumes (publisher side).
	Replayed uint64
	// RingEvictions counts unacked frames the replay ring evicted to stay
	// inside its byte budget; each is a potential future DataLoss.
	RingEvictions uint64
	// DuplicatesDropped counts sequenced events the subscriber's dedup
	// absorbed before the handler saw them (replay overshoot, ack races).
	DuplicatesDropped uint64
	// DataLoss counts sequenced events declared unrecoverable: the
	// publisher's ring evicted them before the gap could be repaired
	// (subscriber counts genuinely-missing events on Lost notices; the
	// publisher counts the events of the Lost ranges it declares). Loss is
	// loud and exact — never silent.
	DataLoss uint64
	// AcksClamped counts inbound cumulative acks claiming a seq beyond
	// anything ever staged (publisher side). Each is a corrupt or
	// misbehaving peer: the ack is clamped so it cannot release unsent
	// ring entries, and counted here so the anomaly is visible.
	AcksClamped uint64
	// StreamResets counts at-least-once stream restarts the subscriber
	// observed via a changed StreamStart epoch (publisher restart, orphan
	// state evicted past its cap): dedup state was discarded so the fresh
	// stream delivers instead of being dropped as duplicates. The old
	// stream's undelivered tail is unrecoverable and unquantifiable, so it
	// is surfaced here rather than fabricated into DataLoss.
	StreamResets uint64
	// DeadLettersRedelivered counts quarantined messages successfully
	// re-demodulated by RedeliverDeadLetters.
	DeadLettersRedelivered uint64
	// DeadLettersRequarantined counts redelivery attempts that failed
	// again and went back to quarantine.
	DeadLettersRequarantined uint64
}

// channelMetrics is the live, atomically-updated form behind a
// ChannelMetrics snapshot. All fields are independent counters; snapshot
// stabilises reads across them so callers can compare fields of one
// snapshot with each other.
type channelMetrics struct {
	published         atomic.Uint64
	suppressed        atomic.Uint64
	enqueued          atomic.Uint64
	dropped           atomic.Uint64
	queueHighWater    atomic.Uint64
	bytesOnWire       atomic.Uint64
	controlBytes      atomic.Uint64
	eventsSent        atomic.Uint64
	batchesSent       atomic.Uint64
	batchedEvents     atomic.Uint64
	batchesRecv       atomic.Uint64
	bytesSaved        atomic.Uint64
	feedbackSent      atomic.Uint64
	feedbackCoalesced atomic.Uint64
	planFlips         atomic.Uint64
	sendErrors        atomic.Uint64
	heartbeatsSent    atomic.Uint64
	heartbeatsRecv    atomic.Uint64
	reconnects        atomic.Uint64
	decodeFailures    atomic.Uint64
	demodFailures     atomic.Uint64
	modFailures       atomic.Uint64
	nacksSent         atomic.Uint64
	nacksRecv         atomic.Uint64
	deadLettered      atomic.Uint64
	breakerTrips      atomic.Uint64
	acksSent          atomic.Uint64
	acksRecv          atomic.Uint64
	retransReqSent    atomic.Uint64
	retransReqRecv    atomic.Uint64
	replayed          atomic.Uint64
	ringEvictions     atomic.Uint64
	duplicatesDropped atomic.Uint64
	dataLoss          atomic.Uint64
	acksClamped       atomic.Uint64
	streamResets      atomic.Uint64
	dlRedelivered     atomic.Uint64
	dlRequarantined   atomic.Uint64
}

// noteDepth records an observed queue depth, keeping the high-water mark.
func (m *channelMetrics) noteDepth(depth int) {
	d := uint64(depth)
	for {
		cur := m.queueHighWater.Load()
		if d <= cur || m.queueHighWater.CompareAndSwap(cur, d) {
			return
		}
	}
}

// snapshot materialises the counters as one consistent-enough cut: the
// field-by-field load is repeated until two consecutive passes agree (or a
// small retry budget runs out under sustained concurrent updates), so the
// common case — counters quiescent or slowly moving — yields a snapshot
// whose fields can be compared against each other (Published vs Suppressed,
// Enqueued vs Dropped) without tearing. Under continuous updates the
// residual skew is bounded by whatever was written during the final pass:
// a handful of single increments, never a partial write of one counter.
// Callers needing exact cross-field invariants must quiesce the endpoint
// first (tests do; dashboards don't care).
func (m *channelMetrics) snapshot() ChannelMetrics {
	cur := m.load()
	for i := 0; i < 3; i++ {
		again := m.load()
		if again == cur {
			return cur
		}
		cur = again
	}
	return cur
}

// load reads every counter once, in field order.
func (m *channelMetrics) load() ChannelMetrics {
	return ChannelMetrics{
		Published:          m.published.Load(),
		Suppressed:         m.suppressed.Load(),
		Enqueued:           m.enqueued.Load(),
		Dropped:            m.dropped.Load(),
		QueueHighWater:     m.queueHighWater.Load(),
		BytesOnWire:        m.bytesOnWire.Load(),
		ControlBytesOnWire: m.controlBytes.Load(),
		EventsSent:         m.eventsSent.Load(),
		BatchesSent:        m.batchesSent.Load(),
		BatchedEvents:      m.batchedEvents.Load(),
		BatchesReceived:    m.batchesRecv.Load(),
		BytesSaved:         m.bytesSaved.Load(),
		FeedbackSent:       m.feedbackSent.Load(),
		FeedbackCoalesced:  m.feedbackCoalesced.Load(),
		PlanFlips:          m.planFlips.Load(),
		SendErrors:         m.sendErrors.Load(),
		HeartbeatsSent:     m.heartbeatsSent.Load(),
		HeartbeatsReceived: m.heartbeatsRecv.Load(),
		Reconnects:         m.reconnects.Load(),
		DecodeFailures:     m.decodeFailures.Load(),
		DemodFailures:      m.demodFailures.Load(),
		ModFailures:        m.modFailures.Load(),
		NacksSent:          m.nacksSent.Load(),
		NacksReceived:      m.nacksRecv.Load(),
		DeadLettered:       m.deadLettered.Load(),
		BreakerTrips:       m.breakerTrips.Load(),

		AcksSent:                   m.acksSent.Load(),
		AcksReceived:               m.acksRecv.Load(),
		RetransmitRequestsSent:     m.retransReqSent.Load(),
		RetransmitRequestsReceived: m.retransReqRecv.Load(),
		Replayed:                   m.replayed.Load(),
		RingEvictions:              m.ringEvictions.Load(),
		DuplicatesDropped:          m.duplicatesDropped.Load(),
		DataLoss:                   m.dataLoss.Load(),
		AcksClamped:                m.acksClamped.Load(),
		StreamResets:               m.streamResets.Load(),
		DeadLettersRedelivered:     m.dlRedelivered.Load(),
		DeadLettersRequarantined:   m.dlRequarantined.Load(),
	}
}
