package methodpart_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example main end to end (each prints a
// deterministic marker on success). Skipped under -short.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are integration runs")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"./examples/quickstart", "Potential Split Edges"},
		{"./examples/imagestream", "the transform now runs at the sender"},
		{"./examples/sensornet", "the split moved toward the producer"},
		{"./examples/filtering", "phase B (converged)"},
		{"./examples/relaychain", "total frames delivered at the consumer sink: 10"},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("%s output missing %q:\n%s", c.dir, c.want, out)
			}
		})
	}
}
