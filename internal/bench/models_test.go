package bench

import "testing"

// TestModelComparisonShape: all three models sustain comparable throughput,
// and the energy model achieves the lowest receiver energy per frame (its
// optimization target), while the data-size model ships the fewest bytes.
func TestModelComparisonShape(t *testing.T) {
	cfg := DefaultImageConfig()
	cfg.Frames = 200
	rows, err := CompareModels(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ModelRow{}
	for _, r := range rows {
		byName[r.Model] = r
		t.Logf("%-9s fps=%5.2f kb/frame=%5.1f work/frame=%6.0f energy=%7.1fuJ",
			r.Model, r.FPS, r.KBPerFrame, r.ClientWorkPerFrame, r.ClientEnergyPerFrame)
	}
	ds, et, en := byName["datasize"], byName["exectime"], byName["energy"]
	if ds.Model == "" || et.Model == "" || en.Model == "" {
		t.Fatalf("rows = %+v", rows)
	}
	// Each model optimizes its own target.
	if en.ClientEnergyPerFrame > ds.ClientEnergyPerFrame*1.001 ||
		en.ClientEnergyPerFrame > et.ClientEnergyPerFrame*1.001 {
		t.Errorf("energy model not lowest energy: %g vs %g / %g",
			en.ClientEnergyPerFrame, ds.ClientEnergyPerFrame, et.ClientEnergyPerFrame)
	}
	if ds.KBPerFrame > en.KBPerFrame*1.05 {
		t.Errorf("datasize model ships more bytes (%g) than energy model (%g)",
			ds.KBPerFrame, en.KBPerFrame)
	}
	// No model collapses throughput.
	for _, r := range rows {
		if r.FPS < 0.8*ds.FPS {
			t.Errorf("%s throughput collapsed: %g vs %g", r.Model, r.FPS, ds.FPS)
		}
	}
}
