package main

import (
	"strings"
	"testing"
)

func TestTable2Experiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "table2", "-frames", "60"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Table 2", "Image<Display", "Method Partitioning", "Mixed"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestAblationExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "ablation", "-frames", "60"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no-receiver-profiling") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestCombinedExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "table3,figure8", "-frames", "40", "-seeds", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Table 3") || !strings.Contains(text, "Figure 8") {
		t.Errorf("output:\n%s", text)
	}
	if strings.Contains(text, "Table 4") {
		t.Error("unrequested experiment ran")
	}
}

func TestCSVOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "table2", "-frames", "60", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "# Table 2") {
		t.Errorf("missing CSV title comment:\n%s", text)
	}
	if !strings.Contains(text, "Implementation,Small (80x80),Large (200x200),Mixed") {
		t.Errorf("missing CSV header:\n%s", text)
	}
	if strings.Contains(text, "  ") {
		t.Errorf("CSV output contains aligned padding:\n%s", text)
	}
}

func TestModelsExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "models", "-frames", "60"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "energy") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestChannelExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "channel", "-frames", "80"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Channel backpressure", "drop-newest", "drop-oldest", "stalled", "healthy-1", "Channel per-stage latency", "demodulateMS"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "bogus"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}
