// Command mpdemo runs a two-process Method Partitioning demo over real TCP:
// start the subscriber (receiver) first, then point the publisher at it, or
// use -mode both to run the full loop in one process.
//
//	mpdemo -mode both
//	mpdemo -mode publish -addr 127.0.0.1:7000 -frames 50
//	mpdemo -mode subscribe -addr 127.0.0.1:7000
//
// In publish/subscribe mode the roles are reversed from the subscription
// flow: the *publisher* listens and the subscriber dials it, matching the
// jecho handshake.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"methodpart"
	"methodpart/internal/imaging"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpdemo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpdemo", flag.ContinueOnError)
	mode := fs.String("mode", "both", "both | publish | subscribe")
	addr := fs.String("addr", "127.0.0.1:0", "publisher listen address (publish/both) or target (subscribe)")
	frames := fs.Int("frames", 40, "frames to publish")
	display := fs.Int("display", 160, "subscriber display size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *mode {
	case "both":
		return runBoth(*addr, *frames, *display)
	case "publish":
		return runPublisher(*addr, *frames, true)
	case "subscribe":
		return runSubscriber(*addr, *display)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func newPublisher(addr string) (*methodpart.Publisher, error) {
	reg, _ := imaging.Builtins()
	return methodpart.NewPublisher(methodpart.PublisherConfig{
		Addr:          addr,
		Builtins:      reg,
		FeedbackEvery: 2,
	})
}

func runPublisher(addr string, frames int, wait bool) error {
	pub, err := newPublisher(addr)
	if err != nil {
		return err
	}
	defer pub.Close()
	fmt.Printf("publisher listening at %s\n", pub.Addr())
	if wait {
		fmt.Println("waiting for a subscriber...")
		for pub.Subscribers() == 0 {
			time.Sleep(50 * time.Millisecond)
		}
	}
	return publishFrames(pub, frames)
}

func publishFrames(pub *methodpart.Publisher, frames int) error {
	for i := 0; i < frames; i++ {
		size := 80
		if i >= frames/2 {
			size = 220
		}
		if _, err := pub.Publish(imaging.NewFrame(size, size, int64(i))); err != nil {
			return err
		}
		fmt.Printf("published frame %d (%dx%d)\n", i, size, size)
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	return nil
}

func runSubscriber(addr string, display int) error {
	sub, err := subscribe(addr, display)
	if err != nil {
		return err
	}
	defer sub.Close()
	fmt.Printf("subscribed to %s; waiting for frames (ctrl-c to quit)\n", addr)
	<-sub.Done()
	return nil
}

func subscribe(addr string, display int) (*methodpart.Subscriber, error) {
	reg, _ := imaging.Builtins()
	return methodpart.Subscribe(methodpart.SubscriberConfig{
		Addr:          addr,
		Name:          "mpdemo",
		Source:        imaging.HandlerSource(display),
		Handler:       imaging.HandlerName,
		CostModel:     "datasize",
		Natives:       []string{"displayImage"},
		Builtins:      reg,
		Environment:   methodpart.DefaultEnvironment(),
		ReconfigEvery: 2,
		DiffThreshold: 0.1,
		OnResult: func(r *methodpart.HandlerResult) {
			fmt.Printf("  received message (split PSE %d)\n", r.SplitPSE)
		},
	})
}

func runBoth(addr string, frames, display int) error {
	pub, err := newPublisher(addr)
	if err != nil {
		return err
	}
	defer pub.Close()
	sub, err := subscribe(pub.Addr(), display)
	if err != nil {
		return err
	}
	defer sub.Close()
	for pub.Subscribers() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := publishFrames(pub, frames); err != nil {
		return err
	}
	fmt.Printf("done: %d messages processed by the subscriber\n", sub.Processed())
	return nil
}
