package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const pushSrc = `
class ImageData {
  width int
  height int
  buff bytes
}

func push(event) {
  z0 = instanceof event ImageData
  ifnot z0 goto done
  r2 = cast event ImageData
  r3 = new ImageData
  call initResize r3 r2
  r4 = move r3
  call displayImage r4
done:
  return
}
`

func writeSrc(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "push.mir")
	if err := os.WriteFile(path, []byte(pushSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyze(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-native", "displayImage", "-handler", "push", writeSrc(t)}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"handler push: 8 instructions",
		"[StopNode]",
		"TargetPaths (2):",
		"PSE set under datasize (3 edges):",
		"Edge(1,7)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestFormatMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-format", writeSrc(t)}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "func push(event) {") {
		t.Errorf("format output:\n%s", out.String())
	}
}

func TestExecTimeModel(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-native", "displayImage", "-model", "exectime", writeSrc(t)}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "PSE set under exectime") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestDotOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-native", "displayImage", "-dot", writeSrc(t)}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		`digraph "push"`,
		"color=red",           // PSE edges highlighted
		"fillcolor=lightgrey", // StopNodes shaded
		"n7 -> n8",            // return flows to exit
	} {
		if !strings.Contains(text, want) {
			t.Errorf("dot output missing %q:\n%s", want, text)
		}
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("no file accepted")
	}
	if err := run([]string{"-handler", "nope", writeSrc(t)}, &out); err == nil {
		t.Error("missing handler accepted")
	}
	if err := run([]string{"-model", "bogus", writeSrc(t)}, &out); err == nil {
		t.Error("bogus model accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.mir")
	if err := os.WriteFile(bad, []byte("gibberish\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &out); err == nil {
		t.Error("gibberish accepted")
	}
}
