package interp

import (
	"strings"
	"testing"
	"testing/quick"

	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
)

func parseOrDie(t *testing.T, src string) *asm.Unit {
	t.Helper()
	u, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestEvalBinIntArithmetic(t *testing.T) {
	f := func(a, b int64) bool {
		if b == 0 {
			b = 1
		}
		checks := []struct {
			op   mir.BinKind
			want mir.Value
		}{
			{mir.BinAdd, mir.Int(a + b)},
			{mir.BinSub, mir.Int(a - b)},
			{mir.BinMul, mir.Int(a * b)},
			{mir.BinDiv, mir.Int(a / b)},
			{mir.BinMod, mir.Int(a % b)},
			{mir.BinLt, mir.Bool(a < b)},
			{mir.BinGe, mir.Bool(a >= b)},
			{mir.BinEq, mir.Bool(a == b)},
		}
		for _, c := range checks {
			got, err := evalBin(c.op, mir.Int(a), mir.Int(b))
			if err != nil || !mir.Equal(got, c.want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalBinTypeErrors(t *testing.T) {
	cases := []struct {
		op   mir.BinKind
		a, b mir.Value
	}{
		{mir.BinAdd, mir.Str("x"), mir.Int(1)},
		{mir.BinAnd, mir.Int(1), mir.Bool(true)},
		{mir.BinOr, mir.Bool(true), mir.Int(0)},
		{mir.BinLt, mir.Str("a"), mir.Int(1)},
		{mir.BinMod, mir.Float(1), mir.Float(2)},
		{mir.BinMul, mir.Bytes{1}, mir.Int(2)},
	}
	for _, c := range cases {
		if _, err := evalBin(c.op, c.a, c.b); err == nil {
			t.Errorf("%v %s %v succeeded", c.a, c.op, c.b)
		}
	}
}

func TestEvalBinBoolLogic(t *testing.T) {
	and, err := evalBin(mir.BinAnd, mir.Bool(true), mir.Bool(false))
	if err != nil || and != mir.Bool(false) {
		t.Errorf("and = %v, %v", and, err)
	}
	or, err := evalBin(mir.BinOr, mir.Bool(true), mir.Bool(false))
	if err != nil || or != mir.Bool(true) {
		t.Errorf("or = %v, %v", or, err)
	}
}

func TestEvalBinStringCompare(t *testing.T) {
	got, err := evalBin(mir.BinLt, mir.Str("abc"), mir.Str("abd"))
	if err != nil || got != mir.Bool(true) {
		t.Errorf("lt = %v, %v", got, err)
	}
	got, err = evalBin(mir.BinGe, mir.Str("b"), mir.Str("a"))
	if err != nil || got != mir.Bool(true) {
		t.Errorf("ge = %v, %v", got, err)
	}
}

func TestEvalBinFloatDivByZero(t *testing.T) {
	if _, err := evalBin(mir.BinDiv, mir.Float(1), mir.Float(0)); err == nil {
		t.Error("float div by zero succeeded")
	}
}

func TestEvalUn(t *testing.T) {
	cases := []struct {
		op   mir.UnKind
		in   mir.Value
		want mir.Value
	}{
		{mir.UnNeg, mir.Int(5), mir.Int(-5)},
		{mir.UnNeg, mir.Float(2.5), mir.Float(-2.5)},
		{mir.UnNot, mir.Bool(true), mir.Bool(false)},
		{mir.UnI2F, mir.Int(3), mir.Float(3)},
		{mir.UnF2I, mir.Float(3.9), mir.Int(3)},
	}
	for _, c := range cases {
		got, err := evalUn(c.op, c.in)
		if err != nil || !mir.Equal(got, c.want) {
			t.Errorf("%s %v = %v (%v), want %v", c.op, c.in, got, err, c.want)
		}
	}
	bad := []struct {
		op mir.UnKind
		in mir.Value
	}{
		{mir.UnNeg, mir.Str("x")},
		{mir.UnNot, mir.Int(1)},
		{mir.UnI2F, mir.Float(1)},
		{mir.UnF2I, mir.Int(1)},
	}
	for _, c := range bad {
		if _, err := evalUn(c.op, c.in); err == nil {
			t.Errorf("%s %v succeeded", c.op, c.in)
		}
	}
}

func TestArrayOutOfBounds(t *testing.T) {
	src := `
func f(arr, i) {
  v = arrget arr i
  return v
}
`
	out, m := mustFail(t, src, mir.IntArray{1, 2}, mir.Int(5))
	_ = out
	_ = m
}

func mustFail(t *testing.T, src string, args ...mir.Value) (Outcome, *Machine) {
	t.Helper()
	u := parseOrDie(t, src)
	env := envFor(t, u)
	prog := u.Programs[0]
	m, err := NewMachine(env, prog, args)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run()
	if err == nil {
		t.Fatalf("run succeeded: %+v", out)
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
	return out, m
}
