package jecho_test

import (
	"testing"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/mir"
)

// TestBrokerThirdPartyDerivation runs the §7 extension end to end:
// source → broker (hosting the modulator) → subscriber. The source never
// sees the handler; the subscriber's plans steer the broker's modulator.
func TestBrokerThirdPartyDerivation(t *testing.T) {
	reg, _ := imaging.Builtins()
	broker, err := jecho.NewBroker(jecho.BrokerConfig{
		DownstreamAddr: "127.0.0.1:0",
		UpstreamAddr:   "127.0.0.1:0",
		Publisher: jecho.PublisherConfig{
			Builtins:      reg,
			FeedbackEvery: 2,
			Logf:          t.Logf,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	subReg, disp := imaging.Builtins()
	res := &results{}
	sub, err := jecho.Subscribe(jecho.SubscriberConfig{
		Addr:          broker.DownstreamAddr(),
		Name:          "viewer",
		Source:        imaging.HandlerSource(120),
		Handler:       imaging.HandlerName,
		CostModel:     costmodel.DataSizeName,
		Natives:       []string{"displayImage"},
		Builtins:      subReg,
		Environment:   costmodel.DefaultEnvironment(),
		OnResult:      res.add,
		ReconfigEvery: 2,
		DiffThreshold: 0.1,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	deadline := time.Now().Add(5 * time.Second)
	for broker.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered at broker")
		}
		time.Sleep(time.Millisecond)
	}

	source, err := jecho.NewSource(broker.UpstreamAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer source.Close()

	const frames = 30
	for i := 0; i < frames; i++ {
		// Large frames: the optimal cut resizes 200² down to 120² at the
		// broker.
		if err := source.Emit(imaging.NewFrame(200, 200, int64(i))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitCount(t, res, frames)
	if broker.Received() != frames {
		t.Fatalf("broker received %d events", broker.Received())
	}
	if len(disp.Frames) != frames {
		t.Fatalf("displayed %d frames", len(disp.Frames))
	}
	for _, f := range disp.Frames {
		if f.Fields["width"] != mir.Int(120) {
			t.Fatalf("frame width = %v, want 120", f.Fields["width"])
		}
	}
	// Steady state: the broker's modulator must have converged to the
	// post-resize cut (third-party modulation, not raw forwarding).
	pses := res.splitPSEs()
	post := 0
	for _, pse := range pses[frames-10:] {
		if pse >= 3 {
			post++
		}
	}
	if post < 8 {
		t.Errorf("broker did not converge to post-resize cuts: %v", pses)
	}
}

// TestBrokerRejectsGarbageUpstream: a source that speaks garbage is
// disconnected without harming downstream service.
func TestBrokerRejectsGarbageUpstream(t *testing.T) {
	reg, _ := imaging.Builtins()
	broker, err := jecho.NewBroker(jecho.BrokerConfig{
		DownstreamAddr: "127.0.0.1:0",
		UpstreamAddr:   "127.0.0.1:0",
		Publisher:      jecho.PublisherConfig{Builtins: reg, Logf: t.Logf},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	src, err := jecho.NewSource(broker.UpstreamAddr())
	if err != nil {
		t.Fatal(err)
	}
	// A healthy event, then garbage bytes through a fresh raw connection.
	if err := src.Emit(mir.Int(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for broker.Received() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if broker.Received() != 1 {
		t.Fatalf("received = %d", broker.Received())
	}
	_ = src.Close()
}
