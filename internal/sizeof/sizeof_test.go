package sizeof

import (
	"testing"
	"testing/quick"
)

func TestSelfSizesMatchReflectAccounting(t *testing.T) {
	// The self-describing methods and the reflective walker must agree on
	// the subjects that have both (the self methods were "generated" from
	// the same accounting model).
	for _, subj := range Table1Subjects() {
		if !subj.HasSelfSize {
			continue
		}
		rs := ReflectSize(subj.Value)
		ss := subj.Value.(SelfSized).SizeOf()
		if rs != ss {
			t.Errorf("%s: reflect %d != self %d", subj.Name, rs, ss)
		}
	}
}

func TestReflectSizeValues(t *testing.T) {
	if got := ReflectSize(NewInt100()); got != SliceHeaderSize+400 {
		t.Errorf("Int100 = %d", got)
	}
	w := NewInt100Wrapper()
	if got := ReflectSize(w); got != ObjectHeaderSize+SliceHeaderSize+400 {
		t.Errorf("wrapper = %d", got)
	}
	b := NewAppBase()
	want := ObjectHeaderSize + 4 + 4 + 8 + StringHeaderSize + len(b.D)
	if got := ReflectSize(b); got != want {
		t.Errorf("AppBase = %d, want %d", got, want)
	}
}

func TestReflectSizeSharedPointers(t *testing.T) {
	type pair struct {
		A, B *AppBase
	}
	one := NewAppBase()
	shared := pair{A: one, B: one}
	distinct := pair{A: NewAppBase(), B: NewAppBase()}
	if ReflectSize(shared) >= ReflectSize(distinct) {
		t.Errorf("shared %d not smaller than distinct %d",
			ReflectSize(shared), ReflectSize(distinct))
	}
}

func TestReflectSizeNilHandling(t *testing.T) {
	c := &AppComp{S1: "x"}
	if got := ReflectSize(c); got <= 0 {
		t.Errorf("nil-heavy AppComp = %d", got)
	}
	var p *AppBase
	if got := ReflectSize(p); got != 1 {
		t.Errorf("nil pointer = %d", got)
	}
}

func TestSerializedSize(t *testing.T) {
	for _, subj := range Table1Subjects() {
		n, err := SerializedSize(subj.Value)
		if err != nil {
			t.Fatalf("%s: %v", subj.Name, err)
		}
		if n <= 0 {
			t.Errorf("%s serialized to %d bytes", subj.Name, n)
		}
	}
}

func TestSelfSizeFallback(t *testing.T) {
	// SelfSize falls back to the reflective walker for plain values.
	arr := NewInt100()
	if SelfSize(arr) != ReflectSize(arr) {
		t.Error("fallback mismatch")
	}
	w := NewInt100Wrapper()
	if SelfSize(w) != w.SizeOf() {
		t.Error("self-sized dispatch mismatch")
	}
}

func TestReflectSizeSliceProperty(t *testing.T) {
	// Property: primitive slice size is header + 8 per element and is
	// computed without walking (verified by equality at any length).
	f := func(xs []int64) bool {
		return ReflectSize(xs) == SliceHeaderSize+8*len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReflectSizeOtherKinds(t *testing.T) {
	type mixed struct {
		A [3]int16
		M map[string]int32
		I any
		F float32
		B bool
	}
	v := mixed{
		A: [3]int16{1, 2, 3},
		M: map[string]int32{"k": 1},
		I: int64(7),
		F: 1.5,
		B: true,
	}
	want := ObjectHeaderSize + // struct
		3*2 + // array of int16
		ObjectHeaderSize + (StringHeaderSize + 1) + 4 + // map w/ one entry
		8 + // interface holding int64
		4 + 1 // float32 + bool
	if got := ReflectSize(v); got != want {
		t.Errorf("mixed = %d, want %d", got, want)
	}
	var nilIface any
	if got := ReflectSize(nilIface); got != 0 {
		t.Errorf("nil interface = %d", got)
	}
	type holder struct{ I any }
	if got := ReflectSize(holder{}); got != ObjectHeaderSize+1 {
		t.Errorf("nil interface field = %d", got)
	}
	// Mutually shared slices count once.
	s := []int64{1, 2, 3}
	type twoSlices struct{ A, B []int64 }
	shared := ReflectSize(twoSlices{A: s, B: s})
	distinct := ReflectSize(twoSlices{A: []int64{1, 2, 3}, B: []int64{1, 2, 3}})
	if shared >= distinct {
		t.Errorf("shared slices %d not smaller than distinct %d", shared, distinct)
	}
	// Unsupported kinds size to zero rather than panicking.
	if got := ReflectSize(func() {}); got != 0 {
		t.Errorf("func = %d", got)
	}
	var ch chan int
	if got := ReflectSize(ch); got != 0 {
		t.Errorf("chan = %d", got)
	}
}

func TestTable1SubjectShapes(t *testing.T) {
	subs := Table1Subjects()
	if len(subs) != 4 {
		t.Fatalf("subjects = %d", len(subs))
	}
	if subs[1].HasSelfSize {
		t.Error("unwrapped array should have no self-size (the paper's n/a)")
	}
	// The paper's AppBase instance values.
	b := subs[2].Value.(*AppBase)
	if b.C != 1202 || b.D != "rrr" {
		t.Errorf("AppBase = %+v", b)
	}
	c := subs[3].Value.(*AppComp)
	if c.AB2 != nil {
		t.Error("AppComp.AB2 should be nil as in the paper's constructor")
	}
	if len(c.IA) != 20 || len(c.FA) != 10 {
		t.Errorf("AppComp arrays = %d/%d", len(c.IA), len(c.FA))
	}
}
