package bench

import (
	"fmt"
	"io"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/transport"
)

// FaultsConfig drives the fault-injection experiment: a publisher and an
// auto-resubscribing subscriber over a transport that severs the link on
// command, measuring how the channel recovers — does the subscriber come
// back, and does the selected split return to the pre-failure optimum
// without either process restarting?
type FaultsConfig struct {
	// Rounds is the number of injected link cuts.
	Rounds int
	// Frames is the number of events published per round (before the first
	// cut this also drives the initial convergence).
	Frames int
	// FrameSize is the square image edge length; large frames make the
	// post-resize split optimal, giving the experiment a non-trivial
	// optimum to return to.
	FrameSize int
	// Seed roots the deterministic fault randomness (frame delays).
	Seed int64
}

// DefaultFaultsConfig converges in well under a second per round.
func DefaultFaultsConfig() FaultsConfig {
	return FaultsConfig{Rounds: 3, Frames: 120, FrameSize: 200, Seed: 1}
}

// FaultsRow is one link-cut round's outcome.
type FaultsRow struct {
	// Round numbers the cut (1-based).
	Round int
	// Severed is how many live connections the cut closed.
	Severed int
	// RecoverMS is the time from the cut until a fresh session was
	// registered and its plan re-pushed.
	RecoverMS float64
	// SplitBefore and SplitAfter are the selected split sets on either
	// side of the failure.
	SplitBefore string
	SplitAfter  string
	// Converged reports SplitAfter == SplitBefore: the channel returned to
	// its pre-failure optimum from the resynced profiling snapshot alone.
	Converged bool
	// Reconnects is the subscriber's cumulative reconnect count.
	Reconnects uint64
	// PlanVersion is the active plan version after recovery (it must keep
	// rising across cuts — reconnection never rolls the plan back).
	PlanVersion uint64
}

// FaultsExperiment converges a channel on its optimal split, then cuts the
// link Rounds times. After every cut the subscriber must redial,
// resubscribe, and seed the fresh session from its merged profiling
// snapshot so the split returns to the pre-failure optimum.
func FaultsExperiment(cfg FaultsConfig) ([]FaultsRow, error) {
	flaky := transport.NewFlaky(transport.NewMem(), transport.FaultPlan{
		Seed:      cfg.Seed,
		DelayProb: 0.2,
		MaxDelay:  2 * time.Millisecond,
	})
	reg, _ := imaging.Builtins()
	pub, err := jecho.NewPublisher(jecho.PublisherConfig{
		Transport:         flaky,
		Builtins:          reg,
		FeedbackEvery:     5,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
		Logf:              func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	defer pub.Close()

	sreg, _ := imaging.Builtins()
	sub, err := jecho.Subscribe(jecho.SubscriberConfig{
		Addr:              pub.Addr(),
		Transport:         flaky,
		Name:              "chaos",
		Source:            imaging.HandlerSource(64),
		Handler:           imaging.HandlerName,
		CostModel:         costmodel.DataSizeName,
		Natives:           []string{"displayImage"},
		Builtins:          sreg,
		Environment:       costmodel.DefaultEnvironment(),
		ReconfigEvery:     5,
		Resubscribe:       true,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
		Logf:              func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	defer sub.Close()

	seq := int64(0)
	publish := func(n int) {
		for i := 0; i < n; i++ {
			// Publishes into a severed session fail until the fresh one
			// registers; that is part of the scenario, not an error.
			_, _ = pub.Publish(imaging.NewFrame(cfg.FrameSize, cfg.FrameSize, seq))
			seq++
			time.Sleep(time.Millisecond)
		}
	}
	session := func() (jecho.SubscriptionInfo, bool) {
		subs := pub.Subscriptions()
		if len(subs) != 1 {
			return jecho.SubscriptionInfo{}, false
		}
		return subs[0], true
	}

	publish(cfg.Frames)
	rows := make([]FaultsRow, 0, cfg.Rounds)
	for round := 1; round <= cfg.Rounds; round++ {
		before, ok := session()
		if !ok {
			return nil, fmt.Errorf("bench: faults: no session before round %d", round)
		}
		cut := time.Now()
		severed := flaky.SeverAll()
		// Recovery: a fresh session (new id) registered with a strictly
		// newer plan than the one that died.
		deadline := time.Now().Add(10 * time.Second)
		var after jecho.SubscriptionInfo
		for {
			if info, ok := session(); ok && info.ID != before.ID && info.PlanVersion > before.PlanVersion {
				after = info
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("bench: faults: round %d: no recovery after %v", round, time.Since(cut))
			}
			time.Sleep(time.Millisecond)
		}
		recover := time.Since(cut)
		rows = append(rows, FaultsRow{
			Round:       round,
			Severed:     severed,
			RecoverMS:   float64(recover.Microseconds()) / 1000,
			SplitBefore: fmt.Sprintf("%v", before.SplitIDs),
			SplitAfter:  fmt.Sprintf("%v", after.SplitIDs),
			Converged:   fmt.Sprintf("%v", before.SplitIDs) == fmt.Sprintf("%v", after.SplitIDs),
			Reconnects:  sub.Metrics().Reconnects,
			PlanVersion: after.PlanVersion,
		})
		publish(cfg.Frames)
	}
	return rows, nil
}

// WriteFaults renders the fault-injection experiment.
func WriteFaults(w io.Writer, rows []FaultsRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Round),
			fmt.Sprintf("%d", r.Severed),
			fmt.Sprintf("%.1f", r.RecoverMS),
			r.SplitBefore, r.SplitAfter,
			fmt.Sprintf("%v", r.Converged),
			fmt.Sprintf("%d", r.Reconnects),
			fmt.Sprintf("%d", r.PlanVersion),
		})
	}
	writeTable(w, "Fault injection: link cuts with auto-resubscribe (flaky mem transport)",
		[]string{"round", "severed", "recoverMS", "splitBefore", "splitAfter", "converged", "reconnects", "planVer"},
		out)
}
