// Command mpbench regenerates every table and figure of the paper's
// evaluation (§5) on the simulated testbed:
//
//	mpbench -experiment all
//	mpbench -experiment table2 -frames 500
//	mpbench -experiment figure7 -seeds 5
//
// Experiments: table1, table2, table3, table4, figure7, figure8, ablation,
// models, richimage, channel, fanout, faults, poison, loss, engine, pareto,
// drift, claims.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"methodpart/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpbench:", err)
		os.Exit(1)
	}
}

// benchFlags bundles mpbench's flag set so the EXPERIMENTS.md drift guard
// (flags_doc_test.go) can enumerate exactly the flags the binary registers.
type benchFlags struct {
	fs         *flag.FlagSet
	experiment *string
	frames     *int
	seeds      *int
	asCSV      *bool
	plot       *bool
	batchBytes *int
	batchDelay *time.Duration
	subs       *string
}

// newBenchFlags declares every mpbench flag on a fresh flag set.
func newBenchFlags() *benchFlags {
	fs := flag.NewFlagSet("mpbench", flag.ContinueOnError)
	return &benchFlags{
		fs:         fs,
		experiment: fs.String("experiment", "all", "which experiment to run (table1|table2|table3|table4|figure7|figure8|ablation|models|richimage|channel|fanout|faults|poison|loss|engine|pareto|drift|claims|all)"),
		frames:     fs.Int("frames", 0, "override frames per run (0 = experiment default)"),
		seeds:      fs.Int("seeds", 0, "override number of perturbation seeds (0 = default 5)"),
		asCSV:      fs.Bool("csv", false, "emit tables as CSV instead of aligned text"),
		plot:       fs.Bool("plot", false, "also render figure experiments as ASCII charts"),
		batchBytes: fs.Int("batch-bytes", 0, "batched-run coalescing budget in bytes for the channel experiment (0 = 64KiB default)"),
		batchDelay: fs.Duration("batch-delay", 0, "batched-run linger window for the channel experiment (0 = none)"),
		subs:       fs.String("subs", "", "comma-separated subscriber counts for the fanout experiment (empty = 16,100,1000,10000)"),
	}
}

func run(args []string, w io.Writer) error {
	bf := newBenchFlags()
	if err := bf.fs.Parse(args); err != nil {
		return err
	}
	experiment := bf.experiment
	frames := bf.frames
	seeds := bf.seeds
	plot := bf.plot
	batchBytes := bf.batchBytes
	batchDelay := bf.batchDelay
	subs := bf.subs
	if *bf.asCSV {
		w = bench.CSVWriter{W: w}
	}

	imgCfg := bench.DefaultImageConfig()
	senCfg := bench.DefaultSensorConfig()
	if *frames > 0 {
		imgCfg.Frames = *frames
		senCfg.Frames = *frames
	}
	if *seeds > 0 {
		senCfg.Seeds = senCfg.Seeds[:min(*seeds, len(senCfg.Seeds))]
	}

	wanted := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	all := wanted["all"]
	ran := false

	if all || wanted["table1"] {
		ran = true
		rows, err := bench.Table1()
		if err != nil {
			return err
		}
		bench.WriteTable1(w, rows)
	}
	if all || wanted["table2"] {
		ran = true
		rows, err := bench.Table2(imgCfg)
		if err != nil {
			return err
		}
		bench.WriteTable2(w, rows)
	}
	if all || wanted["table3"] {
		ran = true
		rows, err := bench.Table3(senCfg)
		if err != nil {
			return err
		}
		bench.WriteTable3(w, rows)
	}
	if all || wanted["table4"] {
		ran = true
		rows, err := bench.Table4(senCfg)
		if err != nil {
			return err
		}
		bench.WriteTable4(w, rows)
	}
	if all || wanted["figure7"] {
		ran = true
		pts, err := bench.Figure7(senCfg)
		if err != nil {
			return err
		}
		bench.WriteFigure7(w, pts)
		if *plot {
			bench.PlotFigure7(w, pts)
		}
	}
	if all || wanted["figure8"] {
		ran = true
		pts, err := bench.Figure8(senCfg)
		if err != nil {
			return err
		}
		bench.WriteFigure8(w, pts)
		if *plot {
			bench.PlotFigure8(w, pts)
		}
	}
	if all || wanted["ablation"] {
		ran = true
		rows, err := bench.Ablations(imgCfg)
		if err != nil {
			return err
		}
		bench.WriteAblations(w, rows)
	}
	if all || wanted["richimage"] {
		ran = true
		rows, err := bench.RichImage(imgCfg)
		if err != nil {
			return err
		}
		bench.WriteRichImage(w, rows)
	}
	if all || wanted["models"] {
		ran = true
		rows, err := bench.CompareModels(imgCfg)
		if err != nil {
			return err
		}
		bench.WriteModelComparison(w, rows)
	}
	if all || wanted["channel"] {
		ran = true
		chCfg := bench.DefaultChannelConfig()
		if *frames > 0 {
			chCfg.Frames = *frames
		}
		rows, stages, err := bench.ChannelExperiment(chCfg)
		if err != nil {
			return err
		}
		bench.WriteChannel(w, rows)
		bench.WriteChannelStages(w, stages)
		baCfg := bench.DefaultBatchConfig()
		if *frames > 0 {
			baCfg.Frames = *frames
		}
		if *batchBytes > 0 {
			baCfg.BatchBytes = *batchBytes
		}
		baCfg.BatchDelay = *batchDelay
		baRows, err := bench.BatchExperiment(baCfg)
		if err != nil {
			return err
		}
		bench.WriteBatch(w, baRows)
	}
	if all || wanted["fanout"] {
		ran = true
		foCfg := bench.DefaultFanoutConfig()
		if *frames > 0 {
			foCfg.Frames = *frames
		}
		if *subs != "" {
			counts, err := parseCounts(*subs)
			if err != nil {
				return fmt.Errorf("-subs: %w", err)
			}
			foCfg.Subs = counts
		}
		rows, err := bench.FanoutExperiment(foCfg)
		if err != nil {
			return err
		}
		bench.WriteFanout(w, rows)
	}
	if all || wanted["faults"] {
		ran = true
		faCfg := bench.DefaultFaultsConfig()
		if *frames > 0 {
			faCfg.Frames = *frames
		}
		if *seeds > 0 {
			faCfg.Rounds = *seeds
		}
		rows, err := bench.FaultsExperiment(faCfg)
		if err != nil {
			return err
		}
		bench.WriteFaults(w, rows)
	}
	if all || wanted["poison"] {
		ran = true
		poCfg := bench.DefaultPoisonConfig()
		if *frames > 0 {
			poCfg.Frames = *frames
		}
		row, err := bench.PoisonExperiment(poCfg)
		if err != nil {
			return err
		}
		bench.WritePoison(w, row)
	}
	if all || wanted["loss"] {
		ran = true
		loCfg := bench.DefaultLossConfig()
		if *frames > 0 {
			loCfg.Frames = *frames
		}
		if *seeds > 0 {
			loCfg.Rounds = *seeds
		}
		rows, err := bench.LossExperiment(loCfg)
		if err != nil {
			return err
		}
		bench.WriteLoss(w, rows)
	}
	if all || wanted["engine"] {
		ran = true
		rows, err := bench.EngineExperiment()
		if err != nil {
			return err
		}
		bench.WriteEngine(w, rows)
	}
	if all || wanted["pareto"] {
		ran = true
		paCfg := bench.DefaultParetoConfig()
		if *frames > 0 {
			paCfg.Frames = *frames
		}
		cmp, err := bench.RunPareto(paCfg)
		if err != nil {
			return err
		}
		bench.WritePareto(w, cmp)
	}
	if all || wanted["drift"] {
		ran = true
		drCfg := bench.DefaultDriftConfig()
		if *frames > 0 {
			drCfg.Image.Frames = *frames
		}
		cmp, err := bench.RunDrift(drCfg)
		if err != nil {
			return err
		}
		bench.WriteDrift(w, cmp)
	}
	if all || wanted["claims"] {
		ran = true
		cl, err := bench.ComputeClaims(imgCfg, senCfg)
		if err != nil {
			return err
		}
		bench.WriteClaims(w, cl)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return nil
}

func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad subscriber count %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
