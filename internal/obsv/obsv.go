// Package obsv is the observability layer of the Method Partitioning
// runtime: a bounded, lock-cheap trace of the split lifecycle plus a
// pull-based metrics surface, built on the standard library only.
//
// The paper's premise (§2.5, §4) is that the runtime watches itself —
// per-PSE profiling feeds a min-cut that re-picks the split — but the
// internal signals driving those decisions (profiled costs, breaker
// state, rejected plans) are otherwise invisible to an operator. This
// package makes the loop auditable without changing it:
//
//   - Tracer is a ring-buffered structured event stream. Endpoints emit
//     one typed Event per lifecycle step (modulation, demodulation,
//     feedback merge, min-cut run, plan flip, breaker transition, NACK,
//     dead-letter quarantine), each carrying the channel, subscription,
//     PSE id, plan version and a monotonic timestamp. Tracing is off by
//     default; a nil or disabled Tracer costs one predicted branch per
//     call site and zero allocations.
//
//   - Histogram is a fixed-bucket, allocation-free histogram for hot-path
//     measurements (per-PSE latency, continuation bytes, interpreter
//     work).
//
//   - Registry gathers Collectors — anything that can enumerate metric
//     Samples — and writes them in Prometheus text format or JSON.
//
//   - DebugServer is an opt-in net/http listener exposing /metrics,
//     /metrics.json, /debug/split (the live split table: UG/PSE stats,
//     current plan, breaker states, last min-cut explanation) and
//     /debug/trace.
//
// The event-system glue lives in internal/jecho (Publisher and Subscriber
// implement Collector and provide Status snapshots); this package holds
// only the neutral mechanism and schema, so any future endpoint (brokers,
// relays) can reuse it. Operator-facing documentation for every metric,
// event type and route is in OBSERVABILITY.md at the repository root.
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// EventKind types a trace event. The zero value is invalid, so an
// uninitialised Event is recognisable in dumps.
type EventKind uint8

// Trace event kinds, one per observable step of the split lifecycle.
const (
	// EvPublish: the modulator produced a wire message for one event
	// (Detail is "raw" or "cont"; PSE is the split edge taken, Bytes the
	// wire size, Work the sender-side work, Dur the modulation latency).
	EvPublish EventKind = iota + 1
	// EvSuppress: the modulator filtered the event at the sender; nothing
	// crossed the wire.
	EvSuppress
	// EvModFault: modulation failed (Detail carries the fault class and
	// error).
	EvModFault
	// EvDemod: the demodulator completed a message (PSE is the split edge
	// it arrived on, Work the receiver-side work, Dur the demodulation
	// latency).
	EvDemod
	// EvDemodFault: demodulation failed (Detail carries the fault class
	// and error; EventSeq the failing event when attributable).
	EvDemodFault
	// EvFeedback: a profiling feedback frame was merged at the receiver
	// (Plan is the publisher's active plan version it carried, Value the
	// number of per-PSE stat entries).
	EvFeedback
	// EvMinCut: the reconfiguration unit ran its min-cut (Plan is the
	// version selected, Value the cut capacity, Detail the chosen split
	// set and any tripped PSEs priced out of it).
	EvMinCut
	// EvPlanFlip: a plan whose split set differs from the previous one was
	// installed or pushed (Plan is the new version, Detail the new split
	// set).
	EvPlanFlip
	// EvPlanStale: an inbound plan was rejected because its version did
	// not advance past the active plan's.
	EvPlanStale
	// EvPlanBlocked: an inbound plan was dropped because it re-selected a
	// PSE whose breaker is open (PSE names the blocked edge).
	EvPlanBlocked
	// EvBreaker: a per-PSE circuit breaker changed state (Detail is the
	// new state: "open", "half-open" or "closed").
	EvBreaker
	// EvNackSent: the subscriber reported a demodulation failure upstream
	// (PSE is the blamed split edge, Detail the fault class).
	EvNackSent
	// EvNackRecv: the publisher received a failure report from a
	// subscriber (PSE is the blamed split edge, Detail the fault class).
	EvNackRecv
	// EvDeadLetter: a poison message was quarantined in the dead-letter
	// ring (Bytes is the retained frame size, Detail the fault class).
	EvDeadLetter
	// EvReplay: the publisher re-sent a range of sequenced events from its
	// replay ring — a retransmit request, an idle-tail repair or a
	// reconnect resume (Detail is the "from..to" sequence range).
	EvReplay
	// EvDataLoss: a range of sequenced events was declared unrecoverable —
	// the replay ring evicted them before the gap could be repaired
	// (Detail is the "from..to" sequence range; Value the event count).
	EvDataLoss
	// EvStreamReset: the subscriber observed a new publisher-side stream
	// epoch and discarded its old-stream dedup state — the old stream's
	// unreceived tail is unrecoverable and its size unknowable (Detail is
	// the "old->new" epoch transition).
	EvStreamReset
)

// String names the kind for dumps and logs.
func (k EventKind) String() string {
	switch k {
	case EvPublish:
		return "publish"
	case EvSuppress:
		return "suppress"
	case EvModFault:
		return "mod-fault"
	case EvDemod:
		return "demod"
	case EvDemodFault:
		return "demod-fault"
	case EvFeedback:
		return "feedback"
	case EvMinCut:
		return "min-cut"
	case EvPlanFlip:
		return "plan-flip"
	case EvPlanStale:
		return "plan-stale"
	case EvPlanBlocked:
		return "plan-blocked"
	case EvBreaker:
		return "breaker"
	case EvNackSent:
		return "nack-sent"
	case EvNackRecv:
		return "nack-recv"
	case EvDeadLetter:
		return "dead-letter"
	case EvReplay:
		return "replay"
	case EvDataLoss:
		return "data-loss"
	case EvStreamReset:
		return "stream-reset"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MarshalJSON writes the kind as its string name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// NoPSE marks an event not attributable to a split edge (PSE ids are
// dense and non-negative; the synthetic raw PSE is 0).
const NoPSE int32 = -1

// Event is one structured trace record. Fields not meaningful for a kind
// stay zero (NoPSE for PSE); the flat shape keeps ring slots
// allocation-free to overwrite and one line of JSON to dump.
type Event struct {
	// Seq is the tracer-assigned sequence number (1-based, gap-free; gaps
	// in a subscription stream mean the subscriber fell behind).
	Seq uint64 `json:"seq"`
	// At is the monotonic time of the event, in nanoseconds since the
	// tracer started.
	At int64 `json:"at_ns"`
	// Kind types the event.
	Kind EventKind `json:"kind"`
	// Channel is the event channel the subscription is attached to.
	Channel string `json:"channel,omitempty"`
	// Sub identifies the endpoint: the publisher-assigned subscription id
	// on the sender side, the subscriber name on the receiver side.
	Sub string `json:"sub,omitempty"`
	// PSE is the split edge the event concerns (NoPSE when not
	// attributable).
	PSE int32 `json:"pse"`
	// Plan is the partitioning plan version in force or being installed.
	Plan uint64 `json:"plan,omitempty"`
	// EventSeq is the wire sequence number of the message concerned.
	EventSeq uint64 `json:"event_seq,omitempty"`
	// Bytes is the kind's byte measure (wire size, retained frame size).
	Bytes int64 `json:"bytes,omitempty"`
	// Work is the kind's work measure (interpreter work units, or the cut
	// capacity for EvMinCut via Value).
	Work int64 `json:"work,omitempty"`
	// Dur is the kind's latency measure in nanoseconds (modulation or
	// demodulation time).
	Dur int64 `json:"dur_ns,omitempty"`
	// Value is a kind-specific number (min-cut capacity, feedback entry
	// count).
	Value int64 `json:"value,omitempty"`
	// Detail is a kind-specific short string (fault class, breaker state,
	// split set). Emitters only format it when the tracer is enabled.
	Detail string `json:"detail,omitempty"`
}

// WriteJSON writes the event as one JSON line.
func (e Event) WriteJSON(w io.Writer) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// now is the monotonic clock used by the tracer, injectable for tests.
var now = time.Now
