package sensor

import (
	"testing"
	"testing/quick"

	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
)

func TestHandlerSourceAssembles(t *testing.T) {
	for _, stages := range []int{1, 5, DefaultStages} {
		unit := HandlerUnit(stages)
		prog, ok := unit.Program(HandlerName)
		if !ok {
			t.Fatalf("stages=%d: handler missing", stages)
		}
		// instanceof, branch, cast, getfield, N stages, deliver, return.
		if got := len(prog.Instrs); got != 6+stages {
			t.Errorf("stages=%d: %d instructions, want %d", stages, got, 6+stages)
		}
	}
}

func TestStageWeightsRamp(t *testing.T) {
	w := StageWeights(DefaultStages)
	if len(w) != DefaultStages {
		t.Fatalf("weights = %d", len(w))
	}
	var first, second float64
	for i, v := range w {
		if v <= 0 {
			t.Fatalf("weight %d = %g", i, v)
		}
		if i < len(w)/2 {
			first += v
		} else {
			second += v
		}
	}
	if second <= first*1.2 {
		t.Errorf("weights not imbalanced enough for the Divided experiment: %.2f vs %.2f", first, second)
	}
}

func TestNewFrameDeterministic(t *testing.T) {
	a := NewFrame(3, 100)
	b := NewFrame(3, 100)
	if !mir.Equal(a, b) {
		t.Error("same id produced different frames")
	}
	c := NewFrame(4, 100)
	if mir.Equal(a, c) {
		t.Error("different ids produced identical frames")
	}
}

func TestStagePreservesLength(t *testing.T) {
	f := func(raw []float64, phase8 uint8) bool {
		out := Stage(mir.FloatArray(raw), int(phase8))
		return len(out) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStageDeterministic(t *testing.T) {
	in := NewFrame(1, 64).Fields["samples"].(mir.FloatArray)
	a := Stage(in, 3)
	b := Stage(in, 3)
	if !mir.Equal(a, b) {
		t.Error("stage not deterministic")
	}
}

func TestHandlerEndToEnd(t *testing.T) {
	const stages = 6
	unit := HandlerUnit(stages)
	prog, _ := unit.Program(HandlerName)
	classes, err := unit.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	reg, sink := Builtins(stages)
	env := interp.NewEnv(classes, reg)
	m, err := interp.NewMachine(env, prog, []mir.Value{mir.Value(NewFrame(1, 128))})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Done {
		t.Fatal("handler did not complete")
	}
	if len(sink.Outputs) != 1 || len(sink.Outputs[0]) != 128 {
		t.Fatalf("sink = %d outputs", len(sink.Outputs))
	}
	// Work must be dominated by the stage costs (weights*len each).
	var expect int64
	for _, w := range StageWeights(stages) {
		expect += int64(w * 128)
	}
	if out.Work < expect {
		t.Errorf("work = %d, want >= %d", out.Work, expect)
	}
	// Non-frame events are filtered.
	m2, _ := interp.NewMachine(env, prog, []mir.Value{mir.Int(9)})
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.Outputs) != 1 {
		t.Error("non-frame event reached the sink")
	}
}

func TestDeliverIsOnlyNative(t *testing.T) {
	reg, _ := Builtins(4)
	if !reg.IsNative("deliver") {
		t.Error("deliver must be native")
	}
	for i := 1; i <= 4; i++ {
		if reg.IsNative("stage1") {
			t.Error("stages must be movable")
		}
	}
}
