package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one line of an ASCII chart.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// Marker is the single character drawn for this series.
	Marker byte
	// Y holds the values (same length as the chart's X).
	Y []float64
}

// plotChart renders series against xs as a fixed-size ASCII chart — enough
// to eyeball the shapes of Figures 7 and 8 in a terminal.
func plotChart(w io.Writer, title, xLabel, yLabel string, xs []float64, series []Series) {
	const (
		width  = 64
		height = 16
	)
	if len(xs) == 0 || len(series) == 0 {
		return
	}
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Y {
			yMin = math.Min(yMin, v)
			yMax = math.Max(yMax, v)
		}
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	// A little headroom.
	span := yMax - yMin
	yMin -= span * 0.05
	yMax += span * 0.05

	xMin, xMax := xs[0], xs[len(xs)-1]
	if xMax == xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int((x - xMin) / (xMax - xMin) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int((yMax - y) / (yMax - yMin) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for _, s := range series {
		// Draw connected segments point to point.
		for i := 0; i+1 < len(xs) && i+1 < len(s.Y); i++ {
			c0, r0 := col(xs[i]), row(s.Y[i])
			c1, r1 := col(xs[i+1]), row(s.Y[i+1])
			steps := max(abs(c1-c0), abs(r1-r0))
			if steps == 0 {
				steps = 1
			}
			for t := 0; t <= steps; t++ {
				c := c0 + (c1-c0)*t/steps
				r := r0 + (r1-r0)*t/steps
				grid[r][c] = s.Marker
			}
		}
		if len(xs) == 1 && len(s.Y) == 1 {
			grid[row(s.Y[0])][col(xs[0])] = s.Marker
		}
	}

	fmt.Fprintf(w, "%s\n", title)
	for r, line := range grid {
		yTick := ""
		switch r {
		case 0:
			yTick = fmt.Sprintf("%8.1f", yMax)
		case height - 1:
			yTick = fmt.Sprintf("%8.1f", yMin)
		default:
			yTick = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(w, "  %s |%s\n", yTick, string(line))
	}
	fmt.Fprintf(w, "  %s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(w, "  %s  %-10.4g%s%10.4g  (%s)\n", strings.Repeat(" ", 8),
		xMin, strings.Repeat(" ", width-22), xMax, xLabel)
	// Legend, stable order.
	legend := make([]string, 0, len(series))
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Marker, s.Name))
	}
	sort.Strings(legend)
	fmt.Fprintf(w, "  %s in %s\n\n", strings.Join(legend, "  "), yLabel)
}

// PlotFigure7 renders the Figure 7 sweep as an ASCII chart.
func PlotFigure7(w io.Writer, pts []Figure7Point) {
	xs := make([]float64, len(pts))
	series := make([]Series, 4)
	markers := []byte{'c', 'p', 'd', '*'}
	for vi, v := range SensorVariants() {
		series[vi] = Series{Name: v.String(), Marker: markers[vi], Y: make([]float64, len(pts))}
	}
	for i, p := range pts {
		xs[i] = p.AProb
		for vi := range series {
			series[vi].Y[i] = p.MS[vi]
		}
	}
	plotChart(w, "Figure 7 (chart): consumer-side AProb vs avg message time", "AProb", "ms", xs, series)
}

// PlotFigure8 renders the Figure 8 sweep as an ASCII chart.
func PlotFigure8(w io.Writer, pts []Figure8Point) {
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.PLenMS
		ys[i] = p.MS
	}
	plotChart(w, "Figure 8 (chart): consumer-side PLen vs MP avg message time", "PLen (ms)", "ms",
		xs, []Series{{Name: "Method Partitioning", Marker: '*', Y: ys}})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
