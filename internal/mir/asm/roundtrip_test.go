package asm_test

import (
	"testing"

	"methodpart/internal/mir"
	"methodpart/internal/mir/asm"
	"methodpart/internal/mir/interp"
	"methodpart/internal/testprog"
)

// TestRandomProgramRoundTrip: for pseudo-random generated programs,
// rendering to assembler text and re-parsing yields an instruction-
// identical program — the disassembler and assembler are exact inverses on
// the reachable syntax.
func TestRandomProgramRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 80; seed++ {
		prog := testprog.RandomProgram(seed)
		src := prog.String() // Program.String renders full func syntax.
		reparsed, err := asm.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, src)
		}
		got, ok := reparsed.Program(prog.Name)
		if !ok {
			t.Fatalf("seed %d: program lost in round trip", seed)
		}
		if len(got.Instrs) != len(prog.Instrs) {
			t.Fatalf("seed %d: %d instrs became %d", seed, len(prog.Instrs), len(got.Instrs))
		}
		for i := range prog.Instrs {
			a := prog.Instrs[i]
			b := got.Instrs[i]
			if a.String() != b.String() || a.Label != b.Label {
				t.Errorf("seed %d instr %d: %q/%q became %q/%q",
					seed, i, a.String(), a.Label, b.String(), b.Label)
			}
		}
	}
}

// TestFormatIdempotent: Format(Parse(Format(u))) == Format(u).
func TestFormatIdempotent(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		prog := testprog.RandomProgram(seed)
		u1, err := asm.Parse(prog.String())
		if err != nil {
			t.Fatal(err)
		}
		once := asm.Format(u1)
		u2, err := asm.Parse(once)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		twice := asm.Format(u2)
		if once != twice {
			t.Errorf("seed %d: Format not idempotent:\n--- once ---\n%s\n--- twice ---\n%s", seed, once, twice)
		}
	}
}

// TestGeneratedProgramsExecutable sanity-checks the generator itself: every
// generated program runs to completion on a few inputs (definite
// assignment on all paths).
func TestGeneratedProgramsExecutable(t *testing.T) {
	for seed := int64(300); seed < 340; seed++ {
		prog := testprog.RandomProgram(seed)
		for _, input := range []int64{0, 1, -17, 1000} {
			reg, sunk := testprog.SinkRegistry()
			env := interp.NewEnv(nil, reg)
			m, err := interp.NewMachine(env, prog, []mir.Value{mir.Int(input)})
			if err != nil {
				t.Fatal(err)
			}
			out, err := m.Run()
			if err != nil {
				t.Fatalf("seed %d input %d: %v\n%s", seed, input, err, prog)
			}
			if !out.Done {
				t.Fatalf("seed %d input %d: did not complete", seed, input)
			}
			if len(*sunk) != 1 {
				t.Fatalf("seed %d input %d: sunk %d values", seed, input, len(*sunk))
			}
		}
	}
}
