package transport

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// DefaultDialTimeout bounds TCP.Dial when the config leaves DialTimeout
// zero: a peer that never answers its SYN fails the dial instead of
// hanging the caller for the kernel's (minutes-long) default.
const DefaultDialTimeout = 10 * time.Second

// DefaultKeepAlive is the TCP keepalive probe period when KeepAlive is
// zero. Keepalives are a second line of defence below the jecho-level
// heartbeats: they reap connections whose peer host vanished entirely.
const DefaultKeepAlive = 15 * time.Second

// TCP is the stdlib-socket transport: length-prefix framing over a TCP
// byte stream. The zero value is ready to use with sane timeouts; set the
// fields to tune them (negative disables).
type TCP struct {
	// DialTimeout bounds connection establishment
	// (0 = DefaultDialTimeout, <0 = no timeout).
	DialTimeout time.Duration
	// KeepAlive is the TCP keepalive probe period for dialed and accepted
	// connections (0 = DefaultKeepAlive, <0 = disabled).
	KeepAlive time.Duration
}

func (t TCP) keepAlive() time.Duration {
	if t.KeepAlive == 0 {
		return DefaultKeepAlive
	}
	if t.KeepAlive < 0 {
		return -1 // net.Dialer convention: negative disables
	}
	return t.KeepAlive
}

// Listen implements Transport.
func (t TCP) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return &tcpListener{ln: ln, keepAlive: t.keepAlive()}, nil
}

// Dial implements Transport. The connection attempt is bounded by
// DialTimeout, so an unresponsive address (blackholed route, dead host)
// fails promptly instead of blocking the subscriber for minutes.
func (t TCP) Dial(addr string) (Conn, error) {
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = DefaultDialTimeout
	} else if timeout < 0 {
		timeout = 0 // net.Dialer convention: zero means no timeout
	}
	d := net.Dialer{Timeout: timeout, KeepAlive: t.keepAlive()}
	c, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	return &tcpConn{c: c}, nil
}

type tcpListener struct {
	ln        net.Listener
	keepAlive time.Duration
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		if l.keepAlive > 0 {
			_ = tc.SetKeepAlive(true)
			_ = tc.SetKeepAlivePeriod(l.keepAlive)
		} else {
			_ = tc.SetKeepAlive(false)
		}
	}
	return &tcpConn{c: c}, nil
}

func (l *tcpListener) Close() error { return l.ln.Close() }

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

// tcpConn frames a net.Conn. The write mutex keeps a frame's header and
// payload contiguous when multiple goroutines write; the read mutex does
// the same for the header+payload pair of a read.
type tcpConn struct {
	c       net.Conn
	readMu  sync.Mutex
	writeMu sync.Mutex
}

func (c *tcpConn) ReadFrame() ([]byte, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	return ReadFrame(c.c)
}

func (c *tcpConn) WriteFrame(payload []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteFrame(c.c, payload)
}

func (c *tcpConn) Close() error { return c.c.Close() }

func (c *tcpConn) SetReadDeadline(t time.Time) error { return c.c.SetReadDeadline(t) }

func (c *tcpConn) SetWriteDeadline(t time.Time) error { return c.c.SetWriteDeadline(t) }

func (c *tcpConn) LocalAddr() string { return c.c.LocalAddr().String() }

func (c *tcpConn) RemoteAddr() string { return c.c.RemoteAddr().String() }
