package imaging

import (
	"testing"

	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
)

func TestDownsampleHalvesDimensions(t *testing.T) {
	src := NewFrame(64, 48, 1)
	out, err := Downsample(src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fields["width"] != mir.Int(32) || out.Fields["height"] != mir.Int(24) {
		t.Fatalf("dims = %v x %v", out.Fields["width"], out.Fields["height"])
	}
	if len(out.Fields["buff"].(mir.Bytes)) != 32*24 {
		t.Fatal("buffer size mismatch")
	}
}

func TestDownsampleAverages(t *testing.T) {
	img := mir.NewObject("ImageData")
	img.Fields["width"] = mir.Int(2)
	img.Fields["height"] = mir.Int(2)
	img.Fields["buff"] = mir.Bytes{10, 20, 30, 40}
	out, err := Downsample(img)
	if err != nil {
		t.Fatal(err)
	}
	buff := out.Fields["buff"].(mir.Bytes)
	if len(buff) != 1 || buff[0] != 25 {
		t.Fatalf("downsampled = %v, want [25]", buff)
	}
}

func TestDownsampleTiny(t *testing.T) {
	src := NewFrame(1, 1, 0)
	out, err := Downsample(src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fields["width"] != mir.Int(1) || out.Fields["height"] != mir.Int(1) {
		t.Fatalf("tiny dims = %v x %v", out.Fields["width"], out.Fields["height"])
	}
}

func TestDownsampleRejectsBroken(t *testing.T) {
	if _, err := Downsample(mir.NewObject("ImageData")); err == nil {
		t.Fatal("empty object accepted")
	}
}

func TestRichHandlerEndToEnd(t *testing.T) {
	unit := RichHandlerUnit(40)
	prog, ok := unit.Program(RichHandlerName)
	if !ok {
		t.Fatal("rich handler missing")
	}
	classes, err := unit.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	reg, disp := Builtins()
	env := interp.NewEnv(classes, reg)
	m, err := interp.NewMachine(env, prog, []mir.Value{mir.Value(NewFrame(160, 160, 5))})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Done {
		t.Fatal("did not complete")
	}
	if len(disp.Frames) != 1 {
		t.Fatalf("displayed %d", len(disp.Frames))
	}
	f := disp.Frames[0]
	if f.Fields["width"] != mir.Int(40) || f.Fields["height"] != mir.Int(40) {
		t.Fatalf("final size %v x %v", f.Fields["width"], f.Fields["height"])
	}
}
