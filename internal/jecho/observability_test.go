package jecho_test

import (
	"testing"
	"time"

	"methodpart/internal/imaging"
	"methodpart/internal/partition"
)

// TestObservability exercises the Subscriptions and Stats views: after
// traffic, the publisher reports the active plan per subscription and the
// subscriber exposes the merged profiling snapshot.
func TestObservability(t *testing.T) {
	pub, sub, _, res := startPair(t)
	for i := 0; i < 12; i++ {
		if _, err := pub.Publish(imaging.NewFrame(64, 64, int64(i))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitCount(t, res, 12)

	infos := pub.Subscriptions()
	if len(infos) != 1 {
		t.Fatalf("subscriptions = %+v", infos)
	}
	info := infos[0]
	if info.Handler != imaging.HandlerName {
		t.Errorf("handler = %q", info.Handler)
	}
	if info.PlanVersion == 0 {
		t.Error("plan never advanced past the bootstrap version")
	}
	if len(info.SplitIDs) == 0 {
		t.Errorf("no split flags in %+v", info)
	}

	stats := sub.Stats()
	raw, ok := stats[partition.RawPSEID]
	if !ok {
		t.Fatalf("stats missing raw PSE: %v", stats)
	}
	if raw.Bytes <= 0 {
		t.Errorf("raw bytes = %g", raw.Bytes)
	}
	if raw.DemodWork <= 0 {
		t.Errorf("raw demod work = %g", raw.DemodWork)
	}
}
