package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricType is the exposition type of a Sample.
type MetricType uint8

// Metric types, matching the Prometheus exposition format.
const (
	// CounterType is a monotonically increasing count.
	CounterType MetricType = iota
	// GaugeType is a value that can go up and down.
	GaugeType
	// HistogramType is a bucketed distribution.
	HistogramType
)

// String names the type as Prometheus spells it.
func (t MetricType) String() string {
	switch t {
	case CounterType:
		return "counter"
	case GaugeType:
		return "gauge"
	case HistogramType:
		return "histogram"
	default:
		return "untyped"
	}
}

// Label is one name=value pair attached to a Sample. Labels are emitted
// in the order given; collectors should keep a stable order so series
// identities are stable across scrapes.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Sample is one metric series at scrape time: a family (Name, Type,
// Help) plus one labelled value. Counter and gauge samples carry Value;
// histogram samples carry Hist.
type Sample struct {
	// Name is the metric family name (Prometheus conventions:
	// snake_case, unit-suffixed, e.g. methodpart_channel_published_total).
	Name string `json:"name"`
	// Type is the exposition type; samples of one family must agree.
	Type MetricType `json:"-"`
	// Help is the family's one-line description.
	Help string `json:"-"`
	// Labels distinguish series within the family.
	Labels []Label `json:"labels,omitempty"`
	// Value is the sample value for counters and gauges.
	Value float64 `json:"value"`
	// Hist is the snapshot for histogram samples.
	Hist *HistogramSnapshot `json:"hist,omitempty"`
}

// Collector enumerates metric samples on demand. Endpoints implement it
// over their live state (there is no register/unregister churn as
// subscriptions come and go — retired series simply stop being emitted).
type Collector interface {
	// Collect calls emit once per sample. Implementations must be safe
	// for concurrent use with the endpoint's normal operation.
	Collect(emit func(Sample))
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(emit func(Sample))

// Collect implements Collector.
func (f CollectorFunc) Collect(emit func(Sample)) { f(emit) }

// Registry fans a scrape out to its registered collectors and renders
// the gathered samples. Safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector to every future scrape.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Gather collects every sample, grouped by family name (stable order:
// families sorted by name, series in collector emission order).
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	var samples []Sample
	for _, c := range collectors {
		c.Collect(func(s Sample) { samples = append(samples, s) })
	}
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	return samples
}

// WritePrometheus renders every gathered sample in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE header per
// family, histogram series expanded into cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Gather()
	var b strings.Builder
	lastFamily := ""
	for _, s := range samples {
		if s.Name != lastFamily {
			fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, s.Help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Type)
			lastFamily = s.Name
		}
		switch s.Type {
		case HistogramType:
			writePromHistogram(&b, s)
		default:
			b.WriteString(s.Name)
			writePromLabels(&b, s.Labels, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatPromValue(s.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram expands one histogram sample into cumulative
// buckets, sum and count.
func writePromHistogram(b *strings.Builder, s Sample) {
	if s.Hist == nil {
		return
	}
	var cum uint64
	for i, bound := range s.Hist.Bounds {
		cum += s.Hist.Counts[i]
		b.WriteString(s.Name)
		b.WriteString("_bucket")
		writePromLabels(b, s.Labels, "le", bound)
		fmt.Fprintf(b, " %d\n", cum)
	}
	b.WriteString(s.Name)
	b.WriteString("_bucket")
	writePromLabels(b, s.Labels, "le", math.Inf(1))
	fmt.Fprintf(b, " %d\n", s.Hist.Count)
	b.WriteString(s.Name)
	b.WriteString("_sum")
	writePromLabels(b, s.Labels, "", 0)
	fmt.Fprintf(b, " %s\n", formatPromValue(s.Hist.Sum))
	b.WriteString(s.Name)
	b.WriteString("_count")
	writePromLabels(b, s.Labels, "", 0)
	fmt.Fprintf(b, " %d\n", s.Hist.Count)
}

// writePromLabels renders {k="v",...}, appending an le label when asked.
func writePromLabels(b *strings.Builder, labels []Label, le string, bound float64) {
	if len(labels) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(le)
		b.WriteString(`="`)
		if math.IsInf(bound, 1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatPromValue(bound))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatPromValue renders a float the way Prometheus expects (shortest
// round-trip form; integral values without an exponent where possible).
func formatPromValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders every gathered sample as a JSON array, each entry
// carrying name, type, labels and value (or the histogram snapshot).
func (r *Registry) WriteJSON(w io.Writer) error {
	type jsonSample struct {
		Name   string             `json:"name"`
		Type   string             `json:"type"`
		Labels map[string]string  `json:"labels,omitempty"`
		Value  *float64           `json:"value,omitempty"`
		Hist   *HistogramSnapshot `json:"hist,omitempty"`
	}
	samples := r.Gather()
	out := make([]jsonSample, 0, len(samples))
	for _, s := range samples {
		js := jsonSample{Name: s.Name, Type: s.Type.String()}
		if len(s.Labels) > 0 {
			js.Labels = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				js.Labels[l.Name] = l.Value
			}
		}
		if s.Type == HistogramType {
			js.Hist = s.Hist
		} else {
			v := s.Value
			js.Value = &v
		}
		out = append(out, js)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
