// Package wire implements the binary on-the-wire representation of MIR
// values, continuation messages and the control messages (profiling feedback
// and partitioning plans) exchanged between modulator and demodulator sides.
//
// Object and array values are encoded with reference sharing: the first
// occurrence carries the payload, later occurrences a 5-byte back-reference.
// This matches the paper's data-size cost definition (§4.1): "the total
// runtime size of the unique objects reachable ... plus the total number of
// duplicated references to those unique objects".
package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
	"unsafe"

	"methodpart/internal/mir"
)

// Value tag bytes.
const (
	tagNull byte = iota + 1
	tagBool
	tagInt
	tagFloat
	tagStr
	tagBytes
	tagIntArray
	tagFloatArray
	tagObject
	tagRef
)

// Encoder serialises MIR values with reference deduplication. One Encoder
// encodes one message; references are shared across all values written
// through it. Reset makes an Encoder reusable across messages (the pooled
// Marshal/AppendMarshal path relies on this), retaining the buffer and map
// capacity so steady-state encoding allocates nothing.
type Encoder struct {
	w       *bytes.Buffer
	objSeen map[*mir.Object]uint32
	memSeen map[memKey]uint32
	nextRef uint32
	// names is a scratch slice for sorting field/var names with stack
	// discipline: each (possibly nested) use appends its names after the
	// ones already in flight and truncates back when done, so recursion
	// reuses one allocation.
	names    []string
	scratch8 [8]byte
}

type memKey struct {
	ptr uintptr
	len int
	tag byte
}

// NewEncoder creates an encoder writing to an internal buffer.
func NewEncoder() *Encoder {
	return &Encoder{
		w:       &bytes.Buffer{},
		objSeen: make(map[*mir.Object]uint32),
		memSeen: make(map[memKey]uint32),
	}
}

// Reset clears the encoded output and the reference tables while keeping
// their capacity, so the encoder can serialise another message without
// reallocating.
func (e *Encoder) Reset() {
	e.w.Reset()
	clear(e.objSeen)
	clear(e.memSeen)
	e.nextRef = 0
	e.names = e.names[:0]
}

// Bytes returns the encoded output.
func (e *Encoder) Bytes() []byte { return e.w.Bytes() }

// Len returns the number of bytes written so far.
func (e *Encoder) Len() int { return e.w.Len() }

func (e *Encoder) writeU32(v uint32) {
	binary.LittleEndian.PutUint32(e.scratch8[:4], v)
	e.w.Write(e.scratch8[:4])
}

func (e *Encoder) writeU64(v uint64) {
	binary.LittleEndian.PutUint64(e.scratch8[:8], v)
	e.w.Write(e.scratch8[:8])
}

func (e *Encoder) writeString(s string) {
	e.writeU32(uint32(len(s)))
	e.w.WriteString(s)
}

// EncodeValue appends one value.
func (e *Encoder) EncodeValue(v mir.Value) error {
	if v == nil {
		e.w.WriteByte(tagNull)
		return nil
	}
	switch x := v.(type) {
	case mir.Null:
		e.w.WriteByte(tagNull)
	case mir.Bool:
		e.w.WriteByte(tagBool)
		if x {
			e.w.WriteByte(1)
		} else {
			e.w.WriteByte(0)
		}
	case mir.Int:
		e.w.WriteByte(tagInt)
		e.writeU64(uint64(x))
	case mir.Float:
		e.w.WriteByte(tagFloat)
		e.writeU64(math.Float64bits(float64(x)))
	case mir.Str:
		e.w.WriteByte(tagStr)
		e.writeString(string(x))
	case mir.Bytes:
		if e.writeSliceRef(tagBytes, slicePtr(x), len(x)) {
			return nil
		}
		e.w.WriteByte(tagBytes)
		e.writeU32(uint32(len(x)))
		e.w.Write(x)
		e.claimRef(tagBytes, slicePtr(x), len(x))
	case mir.IntArray:
		if e.writeSliceRef(tagIntArray, slicePtr(x), len(x)) {
			return nil
		}
		e.w.WriteByte(tagIntArray)
		e.writeU32(uint32(len(x)))
		for _, n := range x {
			e.writeU64(uint64(n))
		}
		e.claimRef(tagIntArray, slicePtr(x), len(x))
	case mir.FloatArray:
		if e.writeSliceRef(tagFloatArray, slicePtr(x), len(x)) {
			return nil
		}
		e.w.WriteByte(tagFloatArray)
		e.writeU32(uint32(len(x)))
		for _, f := range x {
			e.writeU64(math.Float64bits(f))
		}
		e.claimRef(tagFloatArray, slicePtr(x), len(x))
	case *mir.Object:
		if x == nil {
			e.w.WriteByte(tagNull)
			return nil
		}
		if ref, ok := e.objSeen[x]; ok {
			e.w.WriteByte(tagRef)
			e.writeU32(ref)
			return nil
		}
		e.w.WriteByte(tagObject)
		e.objSeen[x] = e.nextRef
		e.nextRef++
		e.writeString(x.Class)
		base := len(e.names)
		for n := range x.Fields {
			e.names = append(e.names, n)
		}
		names := e.names[base:]
		slices.Sort(names)
		e.writeU32(uint32(len(names)))
		for _, n := range names {
			e.writeString(n)
			if err := e.EncodeValue(x.Fields[n]); err != nil {
				e.names = e.names[:base]
				return err
			}
		}
		e.names = e.names[:base]
	default:
		return fmt.Errorf("wire: cannot encode %T", v)
	}
	return nil
}

// slicePtr identifies a slice's backing array for reference deduplication.
// It avoids reflect.ValueOf, whose interface boxing would allocate on every
// encoded slice; the resulting uintptr is only ever compared as a map key,
// never converted back to a pointer.
func slicePtr[T any](x []T) uintptr {
	if len(x) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&x[0]))
}

// writeSliceRef emits a back-reference if the slice was already encoded.
func (e *Encoder) writeSliceRef(tag byte, ptr uintptr, n int) bool {
	if ptr == 0 {
		return false
	}
	if ref, ok := e.memSeen[memKey{ptr: ptr, len: n, tag: tag}]; ok {
		e.w.WriteByte(tagRef)
		e.writeU32(ref)
		return true
	}
	return false
}

func (e *Encoder) claimRef(tag byte, ptr uintptr, n int) {
	if ptr != 0 {
		e.memSeen[memKey{ptr: ptr, len: n, tag: tag}] = e.nextRef
	}
	e.nextRef++
}

// Decoder deserialises values produced by an Encoder.
type Decoder struct {
	r    *bytes.Reader
	refs []mir.Value
}

// NewDecoder creates a decoder over the given bytes.
func NewDecoder(data []byte) *Decoder {
	return &Decoder{r: bytes.NewReader(data)}
}

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return d.r.Len() }

func (d *Decoder) readByte() (byte, error) { return d.r.ReadByte() }

func (d *Decoder) readU32() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (d *Decoder) readU64() (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (d *Decoder) readString() (string, error) {
	n, err := d.readU32()
	if err != nil {
		return "", err
	}
	if int64(n) > int64(d.r.Len()) {
		return "", fmt.Errorf("wire: string length %d exceeds remaining %d", n, d.r.Len())
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// DecodeValue reads one value.
func (d *Decoder) DecodeValue() (mir.Value, error) {
	tag, err := d.r.ReadByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNull:
		return mir.Null{}, nil
	case tagBool:
		b, err := d.r.ReadByte()
		if err != nil {
			return nil, err
		}
		return mir.Bool(b != 0), nil
	case tagInt:
		u, err := d.readU64()
		if err != nil {
			return nil, err
		}
		return mir.Int(int64(u)), nil
	case tagFloat:
		u, err := d.readU64()
		if err != nil {
			return nil, err
		}
		return mir.Float(math.Float64frombits(u)), nil
	case tagStr:
		s, err := d.readString()
		if err != nil {
			return nil, err
		}
		return mir.Str(s), nil
	case tagBytes:
		n, err := d.readU32()
		if err != nil {
			return nil, err
		}
		if int64(n) > int64(d.r.Len()) {
			return nil, fmt.Errorf("wire: bytes length %d exceeds remaining %d", n, d.r.Len())
		}
		buf := make(mir.Bytes, n)
		if _, err := io.ReadFull(d.r, buf); err != nil {
			return nil, err
		}
		d.refs = append(d.refs, buf)
		return buf, nil
	case tagIntArray:
		n, err := d.readU32()
		if err != nil {
			return nil, err
		}
		// int64 arithmetic so a 2^32-scale prefix cannot overflow the
		// comparison on 32-bit platforms and slip past the clamp.
		if int64(n)*8 > int64(d.r.Len()) {
			return nil, fmt.Errorf("wire: intarray length %d exceeds remaining %d", n, d.r.Len())
		}
		arr := make(mir.IntArray, n)
		for i := range arr {
			u, err := d.readU64()
			if err != nil {
				return nil, err
			}
			arr[i] = int64(u)
		}
		d.refs = append(d.refs, arr)
		return arr, nil
	case tagFloatArray:
		n, err := d.readU32()
		if err != nil {
			return nil, err
		}
		if int64(n)*8 > int64(d.r.Len()) {
			return nil, fmt.Errorf("wire: floatarray length %d exceeds remaining %d", n, d.r.Len())
		}
		arr := make(mir.FloatArray, n)
		for i := range arr {
			u, err := d.readU64()
			if err != nil {
				return nil, err
			}
			arr[i] = math.Float64frombits(u)
		}
		d.refs = append(d.refs, arr)
		return arr, nil
	case tagObject:
		// Reserve the ref slot before decoding fields so nested
		// back-references resolve in encoder order.
		obj := mir.NewObject("")
		d.refs = append(d.refs, obj)
		class, err := d.readString()
		if err != nil {
			return nil, err
		}
		obj.Class = class
		nf, err := d.readU32()
		if err != nil {
			return nil, err
		}
		// Each field costs at least a 4-byte name length plus a 1-byte
		// value tag; a count the remaining input cannot possibly satisfy is
		// corrupt, so fail before growing the field map toward it.
		if int64(nf) > int64(d.r.Len())/5 {
			return nil, fmt.Errorf("wire: field count %d exceeds remaining payload", nf)
		}
		for i := uint32(0); i < nf; i++ {
			name, err := d.readString()
			if err != nil {
				return nil, err
			}
			fv, err := d.DecodeValue()
			if err != nil {
				return nil, err
			}
			obj.Fields[name] = fv
		}
		return obj, nil
	case tagRef:
		ref, err := d.readU32()
		if err != nil {
			return nil, err
		}
		if int(ref) >= len(d.refs) {
			return nil, fmt.Errorf("wire: dangling reference %d (have %d)", ref, len(d.refs))
		}
		return d.refs[ref], nil
	default:
		return nil, fmt.Errorf("wire: unknown value tag %d", tag)
	}
}
