package jecho

import (
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/mir/interp"
	"methodpart/internal/partition"
	"methodpart/internal/wire"
)

// relFrame builds a refcounted frame of n bytes for ring tests.
func relFrame(n int) *wire.Frame {
	return wire.NewFrame(make([]byte, n))
}

// releaseReplay drops the caller-owned references a replaySet carries, so
// leak assertions on the underlying frames stay meaningful.
func releaseReplay(rep replaySet) {
	for _, q := range rep.frames {
		q.f.Release()
	}
}

func TestRelStateSequencesAndReleases(t *testing.T) {
	r := newRelState(1 << 20)
	var frames []*wire.Frame
	for i := 0; i < 5; i++ {
		f := relFrame(100)
		frames = append(frames, f)
		seq, evicted := r.stage(f)
		if want := uint64(i + 1); seq != want {
			t.Fatalf("stage %d assigned seq %d, want %d", i, seq, want)
		}
		if evicted != 0 {
			t.Fatalf("stage %d evicted %d entries under a huge budget", i, evicted)
		}
	}
	if staged, ringFrames, ringBytes, _ := r.stats(); staged != 5 || ringFrames != 5 || ringBytes != 500 {
		t.Fatalf("stats after staging = (%d, %d, %d), want (5, 5, 500)", staged, ringFrames, ringBytes)
	}
	released, _, replay := r.onAck(3)
	if released != 3 || replay {
		t.Fatalf("onAck(3) = released %d replay %v, want 3 false", released, replay)
	}
	if _, ringFrames, ringBytes, _ := r.stats(); ringFrames != 2 || ringBytes != 200 {
		t.Fatalf("ring after ack = (%d frames, %d bytes), want (2, 200)", ringFrames, ringBytes)
	}
	// A re-ack of an already-released position must be a no-op.
	if released, _, _ := r.onAck(2); released != 0 {
		t.Fatalf("stale ack released %d entries", released)
	}
	r.close()
	for i, f := range frames {
		if f.Refs() != 1 {
			t.Errorf("frame %d has %d refs after close, want the caller's 1", i, f.Refs())
		}
	}
}

func TestRelStateCorruptFarAheadAckClamped(t *testing.T) {
	r := newRelState(1 << 20)
	for i := 0; i < 4; i++ {
		r.stage(relFrame(50))
	}
	// A corrupt cumulative ack far beyond anything ever staged must release
	// at most what exists and must not derail the sequence counter.
	released, _, replay := r.onAck(1 << 60)
	if released != 4 || replay {
		t.Fatalf("far-ahead ack = released %d replay %v, want 4 false", released, replay)
	}
	if seq, _ := r.stage(relFrame(50)); seq != 5 {
		t.Fatalf("seq after corrupt ack = %d, want 5", seq)
	}
	// Repeating the corrupt ack with everything released must not fire the
	// idle-replay heuristic on an empty tail.
	r.onAck(1 << 60)
	if _, _, replay := r.onAck(1 << 60); replay {
		t.Fatal("repeated far-ahead ack with nothing unacked fired a replay")
	}
}

func TestRelStateIdleReplayHeuristic(t *testing.T) {
	r := newRelState(1 << 20)
	for i := 0; i < 5; i++ {
		r.stage(relFrame(10))
	}
	// First ack at 2: records the position, no replay yet.
	if _, _, replay := r.onAck(2); replay {
		t.Fatal("first ack fired a replay")
	}
	// Same ack again with nothing staged since: the tail 3..5 is stuck on
	// the subscriber side with no higher seq to reveal the gap — replay it.
	_, rep, replay := r.onAck(2)
	if !replay {
		t.Fatal("repeated idle ack did not fire the tail replay")
	}
	if len(rep.frames) != 3 || rep.frames[0].seq != 3 || rep.frames[2].seq != 5 {
		t.Fatalf("idle replay frames = %+v, want seqs 3..5", rep.frames)
	}
	if rep.lostTo != 0 {
		t.Fatalf("idle replay declared loss %d..%d with an intact ring", rep.lostFrom, rep.lostTo)
	}
	releaseReplay(rep)
	// The heuristic re-arms: the next identical ack only records, the one
	// after that replays again (a lost replay is retried, not spammed).
	if _, _, replay := r.onAck(2); replay {
		t.Fatal("heuristic did not re-arm after firing")
	}
	if _, rep, replay := r.onAck(2); !replay {
		t.Fatal("re-armed heuristic did not fire on the next repeat")
	} else {
		releaseReplay(rep)
	}
	// Staging between identical acks means the stream is moving: no replay.
	r.onAck(2)
	r.stage(relFrame(10))
	if _, _, replay := r.onAck(2); replay {
		t.Fatal("replay fired although frames were staged between acks")
	}
}

func TestRelStateEvictionDeclaresLostPrefix(t *testing.T) {
	r := newRelState(250) // holds two 100-byte frames, evicts beyond
	for i := 0; i < 5; i++ {
		r.stage(relFrame(100))
	}
	if _, ringFrames, _, evictions := r.stats(); ringFrames != 2 || evictions != 3 {
		t.Fatalf("ring = %d frames %d evictions, want 2 and 3", ringFrames, evictions)
	}
	rep := r.replayRange(1, 5)
	if rep.lostFrom != 1 || rep.lostTo != 3 {
		t.Fatalf("lost prefix = %d..%d, want 1..3", rep.lostFrom, rep.lostTo)
	}
	if len(rep.frames) != 2 || rep.frames[0].seq != 4 || rep.frames[1].seq != 5 {
		t.Fatalf("replayable tail = %+v, want seqs 4..5", rep.frames)
	}
	releaseReplay(rep)
	r.close()
}

func TestRelStateOversizedFrameStaysRepairable(t *testing.T) {
	r := newRelState(64)
	f := relFrame(1000) // alone over budget: kept anyway until displaced
	r.stage(f)
	rep := r.replayRange(1, 1)
	if rep.lostTo != 0 || len(rep.frames) != 1 {
		t.Fatalf("oversized frame not repairable: %+v", rep)
	}
	releaseReplay(rep)
	r.stage(relFrame(10)) // displaces the oversized entry
	if rep := r.replayRange(1, 1); rep.lostFrom != 1 || rep.lostTo != 1 {
		t.Fatalf("displaced oversized frame not declared lost: %+v", rep)
	}
	r.close()
	if f.Refs() != 1 {
		t.Fatalf("oversized frame has %d refs after close, want 1", f.Refs())
	}
}

func TestRelStateNegativeBudgetSequencesOnly(t *testing.T) {
	r := newRelState(-1)
	f := relFrame(100)
	if seq, _ := r.stage(f); seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	if f.Refs() != 1 {
		t.Fatalf("retention-disabled stage retained the frame (%d refs)", f.Refs())
	}
	rep := r.replayRange(1, 1)
	if rep.lostFrom != 1 || rep.lostTo != 1 || len(rep.frames) != 0 {
		t.Fatalf("replay with retention disabled = %+v, want all lost", rep)
	}
}

func TestRelStateResume(t *testing.T) {
	r := newRelState(1 << 20)
	for i := 0; i < 6; i++ {
		r.stage(relFrame(10))
	}
	rep := r.resume(4)
	if rep.lostTo != 0 {
		t.Fatalf("resume declared loss %d..%d with an intact ring", rep.lostFrom, rep.lostTo)
	}
	if len(rep.frames) != 2 || rep.frames[0].seq != 5 || rep.frames[1].seq != 6 {
		t.Fatalf("resume replay = %+v, want seqs 5..6", rep.frames)
	}
	releaseReplay(rep)
	// The resume point acts as a cumulative ack.
	if _, ringFrames, _, _ := r.stats(); ringFrames != 2 {
		t.Fatalf("ring after resume = %d frames, want 2", ringFrames)
	}
	// Fully caught up: nothing to replay, nothing lost.
	if rep := r.resume(6); len(rep.frames) != 0 || rep.lostTo != 0 {
		t.Fatalf("caught-up resume = %+v, want empty", rep)
	}
	r.close()
}

func TestRelReceiverAdmitOrderDupsAndGaps(t *testing.T) {
	r := newRelReceiver(1 << 60) // pacing off: acks tested separately
	for seq := uint64(1); seq <= 3; seq++ {
		deliver, _, gapTo, _, _ := r.admit(seq)
		if !deliver || gapTo != 0 {
			t.Fatalf("in-order admit(%d) = deliver %v gapTo %d", seq, deliver, gapTo)
		}
	}
	// Jump to 6: gap 4..5 must be requested exactly once.
	deliver, gapFrom, gapTo, _, _ := r.admit(6)
	if !deliver || gapFrom != 4 || gapTo != 5 {
		t.Fatalf("admit(6) = deliver %v gap %d..%d, want true 4..5", deliver, gapFrom, gapTo)
	}
	// A further jump requests only the uncovered part.
	if _, gapFrom, gapTo, _, _ := r.admit(8); gapFrom != 7 || gapTo != 7 {
		t.Fatalf("admit(8) requested %d..%d, want 7..7", gapFrom, gapTo)
	}
	// Duplicates: below contig and in the ahead set both drop, no request.
	if deliver, _, gapTo, _, _ := r.admit(2); deliver || gapTo != 0 {
		t.Fatal("admit of an old seq was delivered or re-requested")
	}
	if deliver, _, _, _, _ := r.admit(6); deliver {
		t.Fatal("admit of an ahead duplicate was delivered")
	}
	// Filling the gap merges the ahead set into contig.
	r.admit(4)
	if deliver, _, _, _, ackSeq := r.admit(5); !deliver || ackSeq != 6 {
		t.Fatalf("gap fill: deliver %v contig %d, want true 6", deliver, ackSeq)
	}
	r.admit(7)
	if got := r.contiguous(); got != 8 {
		t.Fatalf("contiguous = %d, want 8", got)
	}
}

func TestRelReceiverAckPacing(t *testing.T) {
	r := newRelReceiver(3)
	dues := 0
	for seq := uint64(1); seq <= 9; seq++ {
		if _, _, _, ackDue, _ := r.admit(seq); ackDue {
			dues++
		}
	}
	if dues != 3 {
		t.Fatalf("9 deliveries at AckEvery=3 paced %d acks, want 3", dues)
	}
}

func TestRelReceiverLostAdvancesAndCounts(t *testing.T) {
	r := newRelReceiver(1 << 60)
	r.admit(1)
	r.admit(2)
	r.admit(5) // ahead; 3..4 missing
	missing, ackSeq := r.lost(3, 6)
	// 3, 4 and 6 were never received; 5 was already here and must not be
	// counted as lost.
	if missing != 3 || ackSeq != 6 {
		t.Fatalf("lost(3,6) = %d missing ack %d, want 3 and 6", missing, ackSeq)
	}
	// A loss notice entirely in the past counts nothing.
	if missing, _ := r.lost(1, 4); missing != 0 {
		t.Fatalf("stale loss notice counted %d", missing)
	}
	// Delivery resumes cleanly after the advanced position.
	if deliver, _, gapTo, _, _ := r.admit(7); !deliver || gapTo != 0 {
		t.Fatalf("admit(7) after loss = deliver %v gapTo %d", deliver, gapTo)
	}
}

func TestRelReceiverResetRequests(t *testing.T) {
	r := newRelReceiver(1 << 60)
	r.admit(1)
	r.admit(4) // requests 2..3
	// Reconnect: the request died with the connection. After reset, a new
	// out-of-order arrival must re-request the still-open gap — but not the
	// already-received seq 4 at its edge.
	r.resetRequests()
	if _, gapFrom, gapTo, _, _ := r.admit(5); gapFrom != 2 || gapTo != 3 {
		t.Fatalf("post-reset admit(5) requested %d..%d, want 2..3", gapFrom, gapTo)
	}
}

func TestAcquireRelStateResumesAcrossRetire(t *testing.T) {
	p := &Publisher{cfg: PublisherConfig{ReplayRingBytes: 1 << 20}}
	key := relKey{subscriber: "s", channel: "c", handler: "h"}
	st := p.acquireRelState(key)
	st.stage(relFrame(10))

	// A duplicate live triple must get a fresh stream, not corrupt the
	// live one — and being unregistered, it is freed on detach.
	dup := p.acquireRelState(key)
	if dup == st {
		t.Fatal("duplicate live subscription adopted the live stream")
	}
	if dup.registered {
		t.Fatal("duplicate stream displaced the registered one")
	}
	p.detachRelState(dup)

	// Retire then resubscribe: the same triple adopts the parked state with
	// its sequence counter intact.
	p.detachRelState(st)
	again := p.acquireRelState(key)
	if again != st {
		t.Fatal("resubscribe did not adopt the detached stream")
	}
	if seq, _ := again.stage(relFrame(10)); seq != 2 {
		t.Fatalf("adopted stream staged seq %d, want 2", seq)
	}
	p.closeRelStates()
}

func TestDetachRelStateOrphanCap(t *testing.T) {
	p := &Publisher{cfg: PublisherConfig{ReplayRingBytes: 1 << 20}}
	var first *relState
	for i := 0; i <= maxOrphanRelStates; i++ {
		key := relKey{subscriber: string(rune('a' + i%26)), channel: "c", handler: string(rune('A' + i/26))}
		st := p.acquireRelState(key)
		st.stage(relFrame(10))
		if i == 0 {
			first = st
		}
		p.detachRelState(st)
	}
	p.relMu.Lock()
	n := len(p.relStates)
	p.relMu.Unlock()
	if n != maxOrphanRelStates {
		t.Fatalf("%d orphans parked, cap is %d", n, maxOrphanRelStates)
	}
	// The oldest orphan was evicted and its ring released.
	if len(first.ring) != 0 {
		t.Fatal("evicted oldest orphan still retains ring frames")
	}
	p.closeRelStates()
}

// newRedeliverSubscriber builds a connection-less Subscriber around a live
// demodulator — just enough for the dead-letter redelivery path, which is
// local and never touches the wire.
func newRedeliverSubscriber(t *testing.T) *Subscriber {
	t.Helper()
	reg, _ := imaging.Builtins()
	subMsg := &wire.Subscribe{
		Protocol:   wire.ProtocolVersion,
		Subscriber: "redeliver",
		Handler:    imaging.HandlerName,
		Source:     imaging.HandlerSource(64),
		CostModel:  costmodel.DataSizeName,
		Natives:    []string{"displayImage"},
	}
	compiled, err := compileSubscription(subMsg)
	if err != nil {
		t.Fatal(err)
	}
	env := interp.NewEnv(compiled.Classes, reg)
	return &Subscriber{
		cfg:      SubscriberConfig{Logf: func(string, ...any) {}},
		compiled: compiled,
		demod:    partition.NewDemodulator(compiled, env),
		letters:  newDeadLetterRing(8),
	}
}

func TestRedeliverDeadLetters(t *testing.T) {
	s := newRedeliverSubscriber(t)

	// One letter that demodulates cleanly now (quarantined for a since-fixed
	// transient), one wrapped in a delivery envelope, one poison forever.
	good, err := wire.Marshal(&wire.Raw{Handler: imaging.HandlerName, Seq: 1, Event: imaging.NewFrame(16, 16, 1)})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := wire.Marshal(&wire.Raw{Handler: imaging.HandlerName, Seq: 2, Event: imaging.NewFrame(16, 16, 2)})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := wire.AppendSeqEvent(nil, 2, inner)
	s.quarantine(DeadLetter{Class: wire.NackRuntime, Reason: "transient", Frame: good})
	s.quarantine(DeadLetter{Class: wire.NackRuntime, Reason: "transient", Frame: wrapped})
	s.quarantine(DeadLetter{Class: wire.NackDecode, Reason: "garbage", Frame: []byte{0xff, 0xfe, 0xfd}})

	var results int
	s.cfg.OnResult = func(*partition.Result) { results++ }
	redelivered, requarantined := s.RedeliverDeadLetters()
	if redelivered != 2 || requarantined != 1 {
		t.Fatalf("RedeliverDeadLetters = (%d, %d), want (2, 1)", redelivered, requarantined)
	}
	if results != 2 {
		t.Fatalf("OnResult saw %d redelivered events, want 2", results)
	}
	if got := s.Processed(); got != 2 {
		t.Fatalf("Processed = %d, want 2", got)
	}
	m := s.Metrics()
	if m.DeadLettersRedelivered != 2 || m.DeadLettersRequarantined != 1 {
		t.Fatalf("metrics = redelivered %d requarantined %d, want 2 and 1", m.DeadLettersRedelivered, m.DeadLettersRequarantined)
	}
	// The poison letter is back in quarantine and can be retried again.
	left := s.DeadLetters()
	if len(left) != 1 || left[0].Class != wire.NackDecode {
		t.Fatalf("quarantine after redelivery = %+v, want the one poison letter", left)
	}
	if redelivered, requarantined := s.RedeliverDeadLetters(); redelivered != 0 || requarantined != 1 {
		t.Fatalf("second pass = (%d, %d), want (0, 1)", redelivered, requarantined)
	}
	// An empty ring drains to nothing.
	s.letters.drain()
	if redelivered, requarantined := s.RedeliverDeadLetters(); redelivered != 0 || requarantined != 0 {
		t.Fatalf("empty-ring pass = (%d, %d), want zeros", redelivered, requarantined)
	}
}
