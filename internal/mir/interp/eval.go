package interp

import (
	"fmt"

	"methodpart/internal/mir"
)

// evalBin applies a binary operator with Java-like numeric promotion:
// int⊕int → int, any float operand promotes to float arithmetic.
func evalBin(op mir.BinKind, a, b mir.Value) (mir.Value, error) {
	switch op {
	case mir.BinAdd:
		if as, ok := a.(mir.Str); ok {
			if bs, ok := b.(mir.Str); ok {
				return as + bs, nil
			}
		}
		return arith(op, a, b)
	case mir.BinSub, mir.BinMul, mir.BinDiv, mir.BinMod:
		return arith(op, a, b)
	case mir.BinEq:
		return mir.Bool(mir.Equal(a, b)), nil
	case mir.BinNe:
		return mir.Bool(!mir.Equal(a, b)), nil
	case mir.BinLt, mir.BinLe, mir.BinGt, mir.BinGe:
		return compare(op, a, b)
	case mir.BinAnd, mir.BinOr:
		ab, ok := a.(mir.Bool)
		if !ok {
			return nil, fmt.Errorf("%s: left operand must be bool, got %s", op, a.Kind())
		}
		bb, ok := b.(mir.Bool)
		if !ok {
			return nil, fmt.Errorf("%s: right operand must be bool, got %s", op, b.Kind())
		}
		if op == mir.BinAnd {
			return ab && bb, nil
		}
		return ab || bb, nil
	default:
		return nil, fmt.Errorf("unknown binary op %d", uint8(op))
	}
}

func arith(op mir.BinKind, a, b mir.Value) (mir.Value, error) {
	ai, aIsInt := a.(mir.Int)
	bi, bIsInt := b.(mir.Int)
	if aIsInt && bIsInt {
		switch op {
		case mir.BinAdd:
			return ai + bi, nil
		case mir.BinSub:
			return ai - bi, nil
		case mir.BinMul:
			return ai * bi, nil
		case mir.BinDiv:
			if bi == 0 {
				return nil, fmt.Errorf("integer division by zero")
			}
			return ai / bi, nil
		case mir.BinMod:
			if bi == 0 {
				return nil, fmt.Errorf("integer modulo by zero")
			}
			return ai % bi, nil
		}
	}
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if !aok || !bok {
		return nil, fmt.Errorf("%s: operands must be numeric, got %s and %s", op, a.Kind(), b.Kind())
	}
	switch op {
	case mir.BinAdd:
		return mir.Float(af + bf), nil
	case mir.BinSub:
		return mir.Float(af - bf), nil
	case mir.BinMul:
		return mir.Float(af * bf), nil
	case mir.BinDiv:
		if bf == 0 {
			return nil, fmt.Errorf("float division by zero")
		}
		return mir.Float(af / bf), nil
	case mir.BinMod:
		return nil, fmt.Errorf("mod requires integer operands")
	}
	return nil, fmt.Errorf("unknown arithmetic op %d", uint8(op))
}

func compare(op mir.BinKind, a, b mir.Value) (mir.Value, error) {
	if as, ok := a.(mir.Str); ok {
		bs, ok := b.(mir.Str)
		if !ok {
			return nil, fmt.Errorf("%s: cannot compare string with %s", op, b.Kind())
		}
		switch op {
		case mir.BinLt:
			return mir.Bool(as < bs), nil
		case mir.BinLe:
			return mir.Bool(as <= bs), nil
		case mir.BinGt:
			return mir.Bool(as > bs), nil
		case mir.BinGe:
			return mir.Bool(as >= bs), nil
		}
	}
	ai, aIsInt := a.(mir.Int)
	bi, bIsInt := b.(mir.Int)
	if aIsInt && bIsInt {
		switch op {
		case mir.BinLt:
			return mir.Bool(ai < bi), nil
		case mir.BinLe:
			return mir.Bool(ai <= bi), nil
		case mir.BinGt:
			return mir.Bool(ai > bi), nil
		case mir.BinGe:
			return mir.Bool(ai >= bi), nil
		}
	}
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if !aok || !bok {
		return nil, fmt.Errorf("%s: operands must be numeric, got %s and %s", op, a.Kind(), b.Kind())
	}
	switch op {
	case mir.BinLt:
		return mir.Bool(af < bf), nil
	case mir.BinLe:
		return mir.Bool(af <= bf), nil
	case mir.BinGt:
		return mir.Bool(af > bf), nil
	case mir.BinGe:
		return mir.Bool(af >= bf), nil
	}
	return nil, fmt.Errorf("unknown comparison op %d", uint8(op))
}

// f2i converts float64 to int64 with Java-style (JLS §5.1.3) saturation:
// NaN maps to 0, values at or beyond the int64 range clamp to the nearest
// bound. A plain Go conversion is implementation-defined for these inputs,
// so the sender and receiver of a split could disagree on the same event;
// both engines funnel every float→int conversion through this function.
func f2i(f float64) int64 {
	switch {
	case f != f: // NaN
		return 0
	case f >= 9223372036854775808.0: // 2^63: +Inf and anything ≥ MaxInt64+1
		return 9223372036854775807
	case f <= -9223372036854775808.0: // -2^63: -Inf and anything ≤ MinInt64
		return -9223372036854775808
	default:
		return int64(f)
	}
}

func toFloat(v mir.Value) (float64, bool) {
	switch x := v.(type) {
	case mir.Int:
		return float64(x), true
	case mir.Float:
		return float64(x), true
	default:
		return 0, false
	}
}

func evalUn(op mir.UnKind, a mir.Value) (mir.Value, error) {
	switch op {
	case mir.UnNeg:
		switch x := a.(type) {
		case mir.Int:
			return -x, nil
		case mir.Float:
			return -x, nil
		default:
			return nil, fmt.Errorf("neg of %s", a.Kind())
		}
	case mir.UnNot:
		x, ok := a.(mir.Bool)
		if !ok {
			return nil, fmt.Errorf("not of %s", a.Kind())
		}
		return !x, nil
	case mir.UnI2F:
		x, ok := a.(mir.Int)
		if !ok {
			return nil, fmt.Errorf("i2f of %s", a.Kind())
		}
		return mir.Float(x), nil
	case mir.UnF2I:
		x, ok := a.(mir.Float)
		if !ok {
			return nil, fmt.Errorf("f2i of %s", a.Kind())
		}
		return mir.Int(f2i(float64(x))), nil
	default:
		return nil, fmt.Errorf("unknown unary op %d", uint8(op))
	}
}
