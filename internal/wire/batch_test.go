package wire

import (
	"bytes"
	"testing"

	"methodpart/internal/mir"
)

func eventFrames(t testing.TB) [][]byte {
	t.Helper()
	ev := mir.NewObject("ImageData")
	ev.Fields["buff"] = make(mir.Bytes, 32)
	ev.Fields["width"] = mir.Int(8)
	raw, err := Marshal(&Raw{Handler: "push", Seq: 1, Event: ev})
	if err != nil {
		t.Fatal(err)
	}
	cont, err := Marshal(&Continuation{Handler: "push", Seq: 2, PSEID: 1, ResumeNode: 5,
		Vars: map[string]mir.Value{"r2": ev, "z0": mir.Int(7)}})
	if err != nil {
		t.Fatal(err)
	}
	return [][]byte{raw, cont}
}

// TestBatchRoundTrip: a batch of event frames survives Marshal/Unmarshal
// with every entry byte-identical, and AppendBatch produces the same wire
// bytes as Marshal(&Batch{...}).
func TestBatchRoundTrip(t *testing.T) {
	entries := eventFrames(t)
	data, err := Marshal(&Batch{Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	if got := AppendBatch(nil, entries); !bytes.Equal(got, data) {
		t.Fatalf("AppendBatch disagrees with Marshal:\n%x\n%x", got, data)
	}
	msg, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := msg.(*Batch)
	if !ok {
		t.Fatalf("Unmarshal returned %T, want *Batch", msg)
	}
	if len(b.Entries) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(b.Entries), len(entries))
	}
	for i := range entries {
		if !bytes.Equal(b.Entries[i], entries[i]) {
			t.Fatalf("entry %d mismatch", i)
		}
		inner, err := Unmarshal(b.Entries[i])
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		switch inner.(type) {
		case *Raw, *Continuation:
		default:
			t.Fatalf("entry %d decoded to %T", i, inner)
		}
	}
}

// TestBatchDecodeClamps: corrupt counts and entry lengths must fail with an
// error before any allocation the input cannot back.
func TestBatchDecodeClamps(t *testing.T) {
	cases := map[string][]byte{
		"truncated header":     {byte(MsgBatch), 1, 0},
		"count exceeds input":  {byte(MsgBatch), 0xff, 0xff, 0xff, 0x7f, 1, 0, 0, 0, 1},
		"length exceeds input": {byte(MsgBatch), 1, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f, 1},
		"empty entry":          {byte(MsgBatch), 1, 0, 0, 0, 0, 0, 0, 0},
		"trailing bytes":       append(AppendBatch(nil, [][]byte{{byte(MsgHeartbeat)}}), 0xaa),
		"entry hdr truncated":  {byte(MsgBatch), 2, 0, 0, 0, 1, 0, 0, 0, 6, 0xff},
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestValueDecodeClamps: embedded length prefixes inside a value payload
// (object field counts, array lengths) are clamped against the remaining
// input rather than trusted.
func TestValueDecodeClamps(t *testing.T) {
	// Raw frame, empty handler, zero seq, object with poisoned field count.
	obj := []byte{byte(MsgRaw), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
		9 /* tagObject */, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f}
	if _, err := Unmarshal(obj); err == nil {
		t.Error("poisoned object field count decoded without error")
	}
	arr := []byte{byte(MsgRaw), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
		7 /* tagIntArray */, 0xff, 0xff, 0xff, 0x7f}
	if _, err := Unmarshal(arr); err == nil {
		t.Error("poisoned int-array length decoded without error")
	}
}

// TestAppendMarshalZeroAllocs pins the pooled encode path: appending a
// message into a recycled buffer must not allocate at steady state. This is
// the per-event cost of the batched send pipeline, so it is guarded in CI
// next to the observability allocation budgets.
func TestAppendMarshalZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode: sync.Pool drops Puts by design, path is not allocation-free")
	}
	ev := mir.NewObject("ImageData")
	ev.Fields["buff"] = make(mir.Bytes, 64)
	ev.Fields["width"] = mir.Int(8)
	ev.Fields["height"] = mir.Int(8)
	msg := &Raw{Handler: "push", Seq: 1, Event: ev}
	buf := make([]byte, 0, 4096)
	// Warm the pool (first use sizes the encoder buffer and maps).
	var err error
	if buf, err = AppendMarshal(buf[:0], msg); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		buf, err = AppendMarshal(buf[:0], msg)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AppendMarshal allocates %.1f per message, want 0", n)
	}
	hb := &Heartbeat{Seq: 9}
	if n := testing.AllocsPerRun(200, func() {
		buf, err = AppendMarshal(buf[:0], hb)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AppendMarshal heartbeat allocates %.1f per message, want 0", n)
	}
}

// TestAppendBatchZeroAllocs pins the batch-frame assembly: wrapping already
// encoded entries into one wire frame reuses the destination buffer.
func TestAppendBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode: sync.Pool drops Puts by design, path is not allocation-free")
	}
	entries := eventFrames(t)
	buf := AppendBatch(make([]byte, 0, 4096), entries)
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendBatch(buf[:0], entries)
	}); n != 0 {
		t.Fatalf("AppendBatch allocates %.1f per batch, want 0", n)
	}
}

func BenchmarkMarshalRaw(b *testing.B) {
	ev := mir.NewObject("ImageData")
	ev.Fields["buff"] = make(mir.Bytes, 256)
	ev.Fields["width"] = mir.Int(16)
	msg := &Raw{Handler: "push", Seq: 1, Event: ev}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendMarshalRaw(b *testing.B) {
	ev := mir.NewObject("ImageData")
	ev.Fields["buff"] = make(mir.Bytes, 256)
	ev.Fields["width"] = mir.Int(16)
	msg := &Raw{Handler: "push", Seq: 1, Event: ev}
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if buf, err = AppendMarshal(buf[:0], msg); err != nil {
			b.Fatal(err)
		}
	}
}
