package jecho

import (
	"time"

	"methodpart/internal/transport"
)

// Connection-supervision defaults. Every knob follows the repo's
// convention: zero selects the default, negative disables the mechanism.
const (
	// DefaultHeartbeatInterval is the idle-liveness probe period.
	DefaultHeartbeatInterval = 2 * time.Second
	// DefaultHeartbeatMisses is how many silent heartbeat periods a peer
	// may accumulate before it is declared dead (the read window is
	// interval × misses).
	DefaultHeartbeatMisses = 5
	// DefaultWriteTimeout bounds one frame write; a peer whose receive
	// path is wedged (full buffers, hung host) fails the write and is
	// retired instead of blocking its sender goroutine forever.
	DefaultWriteTimeout = 10 * time.Second
	// DefaultResubscribeAttempts bounds consecutive failed reconnect
	// attempts per outage before an auto-resubscribing subscriber gives
	// up.
	DefaultResubscribeAttempts = 8
)

// supervision is the resolved per-connection liveness policy shared by the
// publisher and subscriber endpoints: how often to prove liveness
// (interval), how long to tolerate peer silence (window), and how long one
// write may block (write). Zero fields disable the respective mechanism.
type supervision struct {
	interval time.Duration // heartbeat send period
	window   time.Duration // read deadline per ReadFrame
	write    time.Duration // write deadline per WriteFrame
}

// resolveSupervision applies the 0=default / negative=disabled convention.
func resolveSupervision(interval time.Duration, misses int, write time.Duration) supervision {
	var s supervision
	if interval == 0 {
		s.interval = DefaultHeartbeatInterval
	} else if interval > 0 {
		s.interval = interval
	}
	if misses == 0 {
		misses = DefaultHeartbeatMisses
	}
	if s.interval > 0 && misses > 0 {
		s.window = s.interval * time.Duration(misses)
	}
	if write == 0 {
		s.write = DefaultWriteTimeout
	} else if write > 0 {
		s.write = write
	}
	return s
}

// armRead starts the silence window before a blocking read.
func (s supervision) armRead(conn transport.Conn) {
	if s.window > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.window))
	}
}

// armWrite bounds the next frame write.
func (s supervision) armWrite(conn transport.Conn) {
	if s.write > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.write))
	}
}
