package reconfig

import (
	"fmt"
	"sort"
	"strings"

	"methodpart/internal/analysis"
	"methodpart/internal/costmodel"
	"methodpart/internal/graph"
	"methodpart/internal/partition"
)

func edgeOf(a, b int) analysis.Edge { return analysis.Edge{From: a, To: b} }

// SLOPolicy names the service-level objective a channel optimises for when
// picking its operating point off the Pareto front. The zero value is
// Balanced, which reproduces the pre-front behavior exactly: the scalarized
// min-cut under the channel's cost model. Existing deployments that never
// set a policy therefore keep selecting the same plans.
type SLOPolicy int

const (
	// Balanced is the default (zero value): take the cut the scalar
	// max-flow/min-cut picks under the channel's cost model, i.e. the
	// selection every release before the Pareto engine made.
	Balanced SLOPolicy = iota
	// LatencyFirst minimises the expected end-to-end latency estimate
	// (sender work + link set-up + transmission + receiver work), breaking
	// ties toward fewer bytes.
	LatencyFirst
	// CostFirst minimises expected bytes on the wire, breaking ties toward
	// lower latency. On metered or congested links this is the operating
	// point the data-size model approximates.
	CostFirst
	// ReceiverWeak minimises the receiver's energy proxy (radio bytes plus
	// demodulator work, weighted like the energy cost model's defaults) —
	// for channels whose subscriber is the battery-powered weak device of
	// §5.1.
	ReceiverWeak
)

// policyNames is the canonical wire/CLI spelling of each policy.
var policyNames = map[SLOPolicy]string{
	Balanced:     "balanced",
	LatencyFirst: "latency-first",
	CostFirst:    "cost-first",
	ReceiverWeak: "receiver-weak",
}

// String returns the policy's canonical name ("balanced", "latency-first",
// "cost-first", "receiver-weak"); unknown values render as policy(N).
func (p SLOPolicy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseSLOPolicy maps a policy name (as accepted on CLIs and configs) to
// its SLOPolicy. The empty string parses to Balanced so an unset knob keeps
// the legacy behavior.
func ParseSLOPolicy(name string) (SLOPolicy, error) {
	if name == "" {
		return Balanced, nil
	}
	for p, s := range policyNames {
		if s == name {
			return p, nil
		}
	}
	return Balanced, fmt.Errorf("reconfig: unknown SLO policy %q (want %s)", name, strings.Join(PolicyNames(), ", "))
}

// PolicyNames lists the accepted policy spellings in a stable order.
func PolicyNames() []string {
	return []string{"balanced", "latency-first", "cost-first", "receiver-weak"}
}

// DefaultMaxCandidates bounds the convex-cut enumeration behind the Pareto
// front when Unit.MaxCandidates is 0. Handlers small enough to partition
// have few convex cuts; 64 covers every fixture in this repo with room to
// spare while keeping pathological graphs from blowing up a selection.
const DefaultMaxCandidates = 64

// FrontPoint is one operating point on the Pareto front: a valid convex cut
// with its cost vector and the scalar capacity the balanced model assigns
// it. The point produced by the scalar min-cut is pinned to the front
// (Balanced=true) even where another point dominates it, so operators
// always see the legacy choice alongside the front.
type FrontPoint struct {
	// Cut is the split set (sorted PSE ids).
	Cut []int32
	// Vec is the cut's cost vector (sum of its PSE vectors).
	Vec costmodel.Vector
	// CutValue is the scalar capacity of the cut under the channel's cost
	// model, with the breaker overlay applied.
	CutValue int64
	// Balanced marks the scalar min-cut's point.
	Balanced bool
	// Chosen marks the point the active policy selected.
	Chosen bool
}

// nodeSet is a bitset over Unit Graph nodes.
type nodeSet []uint64

func newNodeSet(n int) nodeSet   { return make(nodeSet, (n+63)/64) }
func (s nodeSet) has(i int) bool { return s[i/64]&(1<<uint(i%64)) != 0 }
func (s nodeSet) add(i int)      { s[i/64] |= 1 << uint(i%64) }
func (s nodeSet) clone() nodeSet { return append(nodeSet(nil), s...) }
func (s nodeSet) key() string    { return fmt.Sprint([]uint64(s)) }

// enumerateCuts lists candidate convex cuts of the Unit Graph, each as a
// sorted PSE id set. A candidate is the PSE frontier of a "closed" source
// set S: closed under non-PSE edges (so the cut never crosses an uncuttable
// edge) and containing no StopNode (so no modulator-side path leaks past
// the cut — the same invariant partition.ValidateSplitSet checks). The
// enumeration BFSes from the minimal closed set, advancing one frontier PSE
// at a time, and stops after max candidates. The raw cut {RawPSEID} is
// always the first candidate.
func (u *Unit) enumerateCuts(max int) [][]int32 {
	ug := u.c.Analysis.UG
	n := ug.Exit + 1
	stops := u.c.Analysis.Stops

	// closure grows S along non-PSE edges; returns false if a StopNode
	// joins S (no valid cut separates this source set from the stops).
	closure := func(s nodeSet) bool {
		work := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if s.has(i) {
				work = append(work, i)
			}
		}
		for len(work) > 0 {
			a := work[len(work)-1]
			work = work[:len(work)-1]
			if stops[a] {
				return false
			}
			for _, b := range ug.G.Succ(a) {
				if s.has(b) {
					continue
				}
				if _, isPSE := u.c.PSEByEdge(edgeOf(a, b)); isPSE {
					continue
				}
				s.add(b)
				work = append(work, b)
			}
		}
		return true
	}

	// frontier returns the PSE ids crossing out of S, sorted.
	frontier := func(s nodeSet) []int32 {
		seen := map[int32]bool{}
		var ids []int32
		for a := 0; a < n; a++ {
			if !s.has(a) {
				continue
			}
			for _, b := range ug.G.Succ(a) {
				if s.has(b) {
					continue
				}
				if id, ok := u.c.PSEByEdge(edgeOf(a, b)); ok && !seen[id] {
					seen[id] = true
					ids = append(ids, id)
				}
			}
		}
		return partition.SortedIDs(ids)
	}

	cuts := [][]int32{{partition.RawPSEID}}
	cutSeen := map[string]bool{cutKey(cuts[0]): true}

	s0 := newNodeSet(n)
	s0.add(ug.Start)
	if !closure(s0) {
		return cuts
	}
	queue := []nodeSet{s0}
	setSeen := map[string]bool{s0.key(): true}

	for len(queue) > 0 && len(cuts) < max {
		s := queue[0]
		queue = queue[1:]
		cut := frontier(s)
		if len(cut) > 0 && !cutSeen[cutKey(cut)] {
			cutSeen[cutKey(cut)] = true
			cuts = append(cuts, cut)
		}
		// Advance across each frontier PSE edge in turn.
		for a := 0; a < n; a++ {
			if !s.has(a) {
				continue
			}
			for _, b := range ug.G.Succ(a) {
				if s.has(b) {
					continue
				}
				if _, ok := u.c.PSEByEdge(edgeOf(a, b)); !ok {
					continue
				}
				next := s.clone()
				next.add(b)
				if !closure(next) {
					continue
				}
				if k := next.key(); !setSeen[k] {
					setSeen[k] = true
					queue = append(queue, next)
				}
			}
		}
	}
	return cuts
}

// vectorFor is the per-PSE cost vector: profiled where statistics exist,
// the static estimate otherwise (mirroring Capacity's fallback).
func (u *Unit) vectorFor(id int32, stats map[int32]costmodel.Stat, env costmodel.Environment) costmodel.Vector {
	if st, ok := stats[id]; ok && st.Count > 0 {
		return costmodel.PSEVector(st, env)
	}
	pse, ok := u.c.PSE(id)
	if !ok {
		return costmodel.Vector{}
	}
	return costmodel.StaticVector(pse.Static, env)
}

// buildFront enumerates candidate cuts, prices each as a cost vector,
// drops dominated points and candidates priced out by the breaker overlay
// (any tripped member pushes the scalar value to InfCapacity), and pins the
// balanced min-cut's point. It returns the front sorted deterministically
// (bytes, then latency, then cut) and the index of the balanced point.
func (u *Unit) buildFront(stats map[int32]costmodel.Stat, env costmodel.Environment, balCut []int32, balValue int64) ([]FrontPoint, int) {
	max := u.MaxCandidates
	if max <= 0 {
		max = DefaultMaxCandidates
	}
	cuts := u.enumerateCuts(max)
	balKey := cutKey(balCut)
	if !containsCut(cuts, balKey) {
		cuts = append(cuts, balCut)
	}

	points := make([]FrontPoint, 0, len(cuts))
	for _, cut := range cuts {
		var value int64
		var vec costmodel.Vector
		for _, id := range cut {
			value += u.capacityFor(id, stats, env)
			vec = vec.Add(u.vectorFor(id, stats, env))
		}
		bal := cutKey(cut) == balKey
		if bal {
			value = balValue
		}
		if value >= graph.InfCapacity && !bal {
			continue // contains a tripped PSE; priced out
		}
		points = append(points, FrontPoint{Cut: cut, Vec: vec, CutValue: value, Balanced: bal})
	}

	front := points[:0:0]
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && q.Vec.Dominates(p.Vec) {
				dominated = true
				break
			}
		}
		if !dominated || p.Balanced {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Vec.Bytes != front[j].Vec.Bytes {
			return front[i].Vec.Bytes < front[j].Vec.Bytes
		}
		if front[i].Vec.LatencyMS != front[j].Vec.LatencyMS {
			return front[i].Vec.LatencyMS < front[j].Vec.LatencyMS
		}
		return cutLess(front[i].Cut, front[j].Cut)
	})
	balIdx := 0
	for i := range front {
		if front[i].Balanced {
			balIdx = i
			break
		}
	}
	return front, balIdx
}

// choosePoint picks the front index the policy selects. Ties break through
// a deterministic chain (secondary objective, failure rate, scalar cut
// value, then cut identity) so repeated selections over identical inputs
// never flip-flop between equivalent points.
func choosePoint(front []FrontPoint, balIdx int, policy SLOPolicy) int {
	if policy == Balanced || len(front) == 0 {
		return balIdx
	}
	key := func(p FrontPoint) []float64 {
		v := p.Vec
		switch policy {
		case LatencyFirst:
			return []float64{v.LatencyMS, v.Bytes, v.FailureRate, float64(p.CutValue)}
		case CostFirst:
			return []float64{v.Bytes, v.LatencyMS, v.FailureRate, float64(p.CutValue)}
		case ReceiverWeak:
			// Receiver energy proxy with the energy model's default
			// weights: radio nJ/byte and CPU nJ/work-unit.
			proxy := v.Bytes*250 + v.ReceiverWork*40
			return []float64{proxy, v.ReceiverWork, v.Bytes, float64(p.CutValue)}
		default:
			return []float64{float64(p.CutValue)}
		}
	}
	best := 0
	bestKey := key(front[0])
	for i := 1; i < len(front); i++ {
		k := key(front[i])
		if lessKeys(k, bestKey) || (equalKeys(k, bestKey) && cutLess(front[i].Cut, front[best].Cut)) {
			best, bestKey = i, k
		}
	}
	return best
}

// policyPrimary is the policy's primary objective for one front point —
// the scalar the flip-hysteresis margin is applied to. It mirrors the
// first element of choosePoint's key chain so "beats by the margin" and
// "is preferred" agree on what matters.
func policyPrimary(p FrontPoint, policy SLOPolicy) float64 {
	v := p.Vec
	switch policy {
	case LatencyFirst:
		return v.LatencyMS
	case CostFirst:
		return v.Bytes
	case ReceiverWeak:
		return v.Bytes*250 + v.ReceiverWork*40
	default:
		return float64(p.CutValue)
	}
}

func lessKeys(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func equalKeys(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cutLess orders cuts lexicographically, shorter first on shared prefixes.
func cutLess(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func cutKey(cut []int32) string { return fmt.Sprint(cut) }

func containsCut(cuts [][]int32, key string) bool {
	for _, c := range cuts {
		if cutKey(c) == key {
			return true
		}
	}
	return false
}

func equalCut(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
