package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestDebugServerRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Register(testCollector())
	tr := NewTracer(8)
	tr.Emit(Event{Kind: EvPlanFlip, Channel: "images", Plan: 3, Detail: "split=[2]"})
	srv, err := StartDebug(DebugConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Tracer:   tr,
		Split: func() []EndpointStatus {
			return []EndpointStatus{{Role: "publisher", Name: "127.0.0.1:1", Channels: []ChannelStatus{{
				ID: "s#1", Channel: "images", PlanVersion: 3, Split: []int32{2},
			}}}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, ctype, body := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "mp_test_published_total{role=\"publisher\",channel=\"images\"} 42") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	code, ctype, body = getBody(t, base+"/metrics.json")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/metrics.json status %d type %q", code, ctype)
	}
	var samples []map[string]any
	if err := json.Unmarshal([]byte(body), &samples); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}

	code, ctype, body = getBody(t, base+"/debug/split")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/debug/split status %d type %q", code, ctype)
	}
	var reply struct {
		Endpoints []EndpointStatus `json:"endpoints"`
	}
	if err := json.Unmarshal([]byte(body), &reply); err != nil {
		t.Fatalf("/debug/split invalid: %v", err)
	}
	if len(reply.Endpoints) != 1 || reply.Endpoints[0].Role != "publisher" {
		t.Fatalf("/debug/split reply: %+v", reply)
	}

	code, ctype, body = getBody(t, base+"/debug/trace")
	if code != http.StatusOK || ctype != "application/x-ndjson" {
		t.Fatalf("/debug/trace status %d type %q", code, ctype)
	}
	if !strings.Contains(body, `"kind":"plan-flip"`) {
		t.Fatalf("/debug/trace body: %s", body)
	}
}

func TestDebugServerNilRoutes(t *testing.T) {
	srv, err := StartDebug(DebugConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, route := range []string{"/metrics", "/metrics.json", "/debug/split", "/debug/trace"} {
		code, _, _ := getBody(t, base+route)
		if code != http.StatusNotFound {
			t.Fatalf("%s with nil config: status %d, want 404", route, code)
		}
	}
}
