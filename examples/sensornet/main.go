// Sensornet: the paper's second application (§5.2) in-process. A sensor
// producer feeds sample frames through an 18-stage processing chain under
// the execution-time cost model. When the consumer host slows down
// (simulated by a perturbation schedule), the reconfiguration unit shifts
// the split point toward the producer, rebalancing the chain — the paper's
// "load balancing by loop distribution".
package main

import (
	"fmt"
	"log"

	"methodpart"
	"methodpart/internal/perturb"
	"methodpart/internal/sensor"
	"methodpart/internal/simnet"
)

const (
	stages  = 18
	samples = 4000
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	source := sensor.HandlerSource(stages)
	handler, err := methodpart.CompileHandler(source, sensor.HandlerName,
		methodpart.Natives("deliver"),
		methodpart.WithModel(methodpart.ExecTimeModel()),
	)
	if err != nil {
		return err
	}
	fmt.Printf("sensor handler compiled: %d PSEs along the stage chain\n", handler.NumPSEs())

	prodReg, _ := sensor.Builtins(stages)
	consReg, sink := sensor.Builtins(stages)
	mod := methodpart.NewModulator(handler, methodpart.NewEnv(handler, prodReg))
	demod := methodpart.NewDemodulator(handler, methodpart.NewEnv(handler, consReg))
	coll := methodpart.NewCollector(handler)
	mod.Probe = coll
	demod.Probe = coll
	demod.CrossProbe = coll

	// Simulated hosts: equal speed at first; the consumer picks up heavy
	// competing load halfway through.
	producer := simnet.NewHost("producer", 900)
	consumer := simnet.NewHost("consumer", 900)
	link := &simnet.Link{BytesPerMS: 12500, LatencyMS: 0.5}
	pipe := simnet.NewPipeline(producer, consumer, link)

	env := methodpart.Environment{SenderSpeed: 900, ReceiverSpeed: 900, Bandwidth: 12500, LatencyMS: 0.5}
	unit := methodpart.NewReconfigUnit(handler, env)
	plan, _, err := unit.InitialPlan()
	if err != nil {
		return err
	}
	mod.SetPlan(plan)
	demod.SetProfilePlan(plan)

	const frames = 120
	recvSpeed := 900.0
	for i := 0; i < frames; i++ {
		if i == frames/2 {
			consumer.Load = perturb.MustNew(perturb.Config{
				Seed: 42, Threads: 2, PLenMS: 1000, AProb: 1, LIndex: 1, HorizonMS: 600000,
			})
			fmt.Println("--- consumer load applied (2 busy threads) ---")
		}
		out, err := mod.Process(sensor.NewFrame(int64(i), samples))
		if err != nil {
			return err
		}
		res, err := demod.Process(message(out))
		if err != nil {
			return err
		}
		tm := pipe.Deliver(0, out.ModWork, out.WireBytes+64, res.DemodWork)
		// Profiling observes the consumer's effective speed.
		if dt := tm.Done - tm.DemodStart; res.DemodWork > 0 && dt > 0 {
			recvSpeed += 0.3 * (float64(res.DemodWork)/dt - recvSpeed)
		}
		if i%4 == 3 {
			env.ReceiverSpeed = recvSpeed
			unit.SetEnvironment(env)
			newPlan, _, err := unit.SelectPlan(coll.Snapshot())
			if err != nil {
				return err
			}
			mod.SetPlan(newPlan)
			demod.SetProfilePlan(newPlan)
		}
		if i%12 == 11 {
			fmt.Printf("frame %3d: split resumes at node %2d of %d, sender work %6d, receiver work %6d, interval view %.1f ms\n",
				i, resumeNode(out), len(handler.Prog.Instrs), out.ModWork, res.DemodWork, tm.Done-tm.DemodStart)
		}
	}
	fmt.Printf("\nframes delivered to native sink: %d\n", len(sink.Outputs))
	fmt.Println("after the load hit, the split moved toward the producer (higher resume node).")
	return nil
}

func message(out *methodpart.ModulatorOutput) any {
	if out.Raw != nil {
		return out.Raw
	}
	return out.Cont
}

func resumeNode(out *methodpart.ModulatorOutput) int {
	if out.Cont != nil {
		return int(out.Cont.ResumeNode)
	}
	return 0
}
