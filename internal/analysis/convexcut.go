package analysis

import (
	"fmt"
	"sort"
)

// CostDesc is the static cost estimate of cutting at an edge, as produced by
// a cost model. Det is the deterministic lower bound; Vars lists the
// variables whose contribution is only determinable at runtime (they will be
// profiled). Infinite marks edges that must never be cut.
type CostDesc struct {
	// Det is the statically determinable part of the cost (a lower bound
	// on the true cost).
	Det int64
	// Vars are the (canonicalised) variables with runtime-determined cost.
	Vars VarSet
	// Infinite marks the edge as uncuttable.
	Infinite bool
}

// CostFunc estimates the static cost of splitting at edge e whose hand-over
// set is inter. Supplied by a cost model (§4).
type CostFunc func(e Edge, inter VarSet) CostDesc

// Result bundles everything the static analysis derives from one handler
// under one cost model. It is consumed by the runtime to build the
// modulator/demodulator pair.
type Result struct {
	// UG is the unit graph.
	UG *UnitGraph
	// Live is the liveness solution.
	Live *Liveness
	// DDG is the data-dependency graph (def-use edges).
	DDG []DefUse
	// Stops is the StopNode set (includes the virtual exit).
	Stops map[int]bool
	// Paths is the TargetPath list.
	Paths [][]int
	// Aliases maps registers to canonical representatives.
	Aliases map[string]string
	// Infinite marks convexity-violating edges.
	Infinite map[Edge]bool
	// Cost caches the cost descriptor of every TargetPath edge.
	Cost map[Edge]CostDesc
	// PSESet is the union of per-path minimal-cost edge sets, sorted.
	PSESet []Edge
	// PathPSEs gives, per TargetPath index, the PSEs selected on it.
	PathPSEs [][]Edge
	// Inter caches INTER(e) for every PSE.
	Inter map[Edge]VarSet
}

// Options tunes the analysis.
type Options struct {
	// MaxPaths bounds TargetPath enumeration (0 = DefaultMaxTargetPaths).
	MaxPaths int
}

// Analyze runs the complete §3 pipeline: UG, liveness, DDG, StopNodes,
// TargetPaths, convexity marking and per-path minimal-cost edge selection.
func Analyze(ug *UnitGraph, oracle NativeOracle, cost CostFunc, opts Options) (*Result, error) {
	live := ComputeLiveness(ug)
	ddg := ComputeDDG(ug)
	stops := MarkStopNodes(ug, oracle)
	paths, err := TargetPaths(ug, stops, opts.MaxPaths)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", ug.Prog.Name, err)
	}
	aliases := ComputeAliases(ug.Prog)
	infinite := markInfinite(ug, ddg)

	res := &Result{
		UG:       ug,
		Live:     live,
		DDG:      ddg,
		Stops:    stops,
		Paths:    paths,
		Aliases:  aliases,
		Infinite: infinite,
		Cost:     make(map[Edge]CostDesc),
		Inter:    make(map[Edge]VarSet),
	}

	costOf := func(e Edge) CostDesc {
		if c, ok := res.Cost[e]; ok {
			return c
		}
		inter := live.Inter(e)
		c := cost(e, inter)
		c.Vars = CanonicalSet(c.Vars, aliases)
		if infinite[e] {
			c.Infinite = true
		}
		res.Cost[e] = c
		return c
	}

	pseSet := make(map[Edge]bool)
	res.PathPSEs = make([][]Edge, len(paths))
	for pi, p := range paths {
		sel := minCostEdgeSet(PathEdges(p), costOf)
		res.PathPSEs[pi] = sel
		for _, e := range sel {
			pseSet[e] = true
		}
	}
	for e := range pseSet {
		res.PSESet = append(res.PSESet, e)
		res.Inter[e] = live.Inter(e)
	}
	sort.Slice(res.PSESet, func(i, j int) bool { return res.PSESet[i].Less(res.PSESet[j]) })
	return res, nil
}

// AnalyzeWithoutPaths produces a degenerate analysis result with an empty
// PSE set for handlers whose TargetPath enumeration explodes: the liveness,
// DDG and StopNode facts are still computed (the runtime needs StopNodes
// for its safety checks), but no candidate split edges are offered, so the
// only available partitioning ships raw events.
func AnalyzeWithoutPaths(ug *UnitGraph, oracle NativeOracle) (*Result, error) {
	return &Result{
		UG:       ug,
		Live:     ComputeLiveness(ug),
		DDG:      ComputeDDG(ug),
		Stops:    MarkStopNodes(ug, oracle),
		Aliases:  ComputeAliases(ug.Prog),
		Infinite: make(map[Edge]bool),
		Cost:     make(map[Edge]CostDesc),
		Inter:    make(map[Edge]VarSet),
	}, nil
}

// markInfinite implements lines 2–6 of the ConvexCut algorithm (Fig. 3):
// for each DDG edge (def→use), every UG edge lying on a path from the use
// node back to the def node gets infinite cost, preventing cuts that would
// make data flow from the demodulator back to the modulator.
//
// An edge (a,b) lies on some use→def path iff a is reachable from use and
// def is reachable from b; this reachability formulation marks a (safe)
// superset of the per-path marking without enumerating paths.
func markInfinite(ug *UnitGraph, ddg []DefUse) map[Edge]bool {
	infinite := make(map[Edge]bool)
	// Cache reachability per source node.
	fwd := make(map[int]map[int]bool)
	reach := func(n int) map[int]bool {
		if r, ok := fwd[n]; ok {
			return r
		}
		r := ug.G.Reachable(n)
		fwd[n] = r
		return r
	}
	for _, du := range ddg {
		fromUse := reach(du.Use)
		for _, e := range ug.Edges() {
			if infinite[e] {
				continue
			}
			if fromUse[e.From] && reach(e.To)[du.Def] {
				infinite[e] = true
			}
		}
	}
	return infinite
}

// minCostEdgeSet implements the paper's MinCostEdgeSet(p): the non-dominated
// edges of the path under comparative cost. Edge A (earlier or not)
// eliminates edge B when A's cost is determinably no greater than B's —
// A.Det ≤ B.Det with A.Vars ⊆ B.Vars — and either strictly smaller on one
// component or exactly equal (in which case the earlier edge is kept,
// mirroring the paper's "arbitrarily remove one of them").
func minCostEdgeSet(edges []Edge, costOf func(Edge) CostDesc) []Edge {
	type cand struct {
		e    Edge
		c    CostDesc
		dead bool
	}
	var cands []cand
	for _, e := range edges {
		c := costOf(e)
		if c.Infinite {
			continue
		}
		cands = append(cands, cand{e: e, c: c})
	}
	for i := range cands {
		if cands[i].dead {
			continue
		}
		for j := range cands {
			if i == j || cands[j].dead {
				continue
			}
			if dominates(cands[i].c, cands[j].c, i < j) {
				cands[j].dead = true
			}
		}
	}
	var out []Edge
	for _, c := range cands {
		if !c.dead {
			out = append(out, c.e)
		}
	}
	return out
}

// dominates reports whether cost a determinably does not exceed cost b, with
// aFirst breaking exact ties in favour of a.
func dominates(a, b CostDesc, aFirst bool) bool {
	if !a.Vars.SubsetOf(b.Vars) || a.Det > b.Det {
		return false
	}
	if a.Det < b.Det || len(a.Vars) < len(b.Vars) {
		return true
	}
	// Exactly equal cost descriptors: keep the earlier edge.
	return aFirst
}
