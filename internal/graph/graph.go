// Package graph provides the directed-graph utilities shared by the static
// analysis and the runtime reconfiguration unit: reachability, topological
// helpers, and a Dinic max-flow / min-cut solver used to (re-)select optimal
// partitioning plans.
package graph

import "fmt"

// Digraph is a directed graph over nodes 0..N-1 with adjacency lists.
type Digraph struct {
	succ [][]int
	pred [][]int
}

// NewDigraph creates a graph with n nodes and no edges.
func NewDigraph(n int) *Digraph {
	return &Digraph{
		succ: make([][]int, n),
		pred: make([][]int, n),
	}
}

// Len returns the node count.
func (g *Digraph) Len() int { return len(g.succ) }

// AddEdge inserts the edge u→v. Duplicate edges are ignored.
func (g *Digraph) AddEdge(u, v int) {
	for _, w := range g.succ[u] {
		if w == v {
			return
		}
	}
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
}

// HasEdge reports whether u→v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	for _, w := range g.succ[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Succ returns the successors of u. The returned slice must not be modified.
func (g *Digraph) Succ(u int) []int { return g.succ[u] }

// Pred returns the predecessors of u. The returned slice must not be
// modified.
func (g *Digraph) Pred(u int) []int { return g.pred[u] }

// Edges returns all edges as (u,v) pairs in node order.
func (g *Digraph) Edges() [][2]int {
	var out [][2]int
	for u, vs := range g.succ {
		for _, v := range vs {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// Reachable returns the set of nodes reachable from start (inclusive).
func (g *Digraph) Reachable(start int) map[int]bool {
	seen := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.succ[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// ReachableReverse returns the set of nodes from which start is reachable
// (inclusive).
func (g *Digraph) ReachableReverse(start int) map[int]bool {
	seen := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.pred[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// PathsBetween enumerates all simple paths from src that end at the first
// node in dests they reach (src itself never terminates a path). Each path
// is a node sequence including both endpoints. Enumeration fails after
// maxPaths paths to bound worst-case blowup.
func (g *Digraph) PathsBetween(src int, dests map[int]bool, maxPaths int) ([][]int, error) {
	var (
		out  [][]int
		path []int
		walk func(u int) error
	)
	onPath := make([]bool, g.Len())
	walk = func(u int) error {
		path = append(path, u)
		onPath[u] = true
		defer func() {
			path = path[:len(path)-1]
			onPath[u] = false
		}()
		if dests[u] && len(path) > 1 {
			cp := make([]int, len(path))
			copy(cp, path)
			out = append(out, cp)
			if len(out) > maxPaths {
				return fmt.Errorf("graph: more than %d paths", maxPaths)
			}
			return nil
		}
		for _, v := range g.succ[u] {
			if onPath[v] {
				continue
			}
			if err := walk(v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(src); err != nil {
		return nil, err
	}
	return out, nil
}
