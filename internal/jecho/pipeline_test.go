package jecho

import (
	"errors"
	"sync"
	"testing"
	"time"

	"methodpart/internal/wire"
)

// stubConn is a transport.Conn for exercising the send pipeline in
// isolation: writes optionally block on a gate until the test releases
// them, and every written frame is recorded.
type stubConn struct {
	mu     sync.Mutex
	frames [][]byte
	gate   chan struct{} // nil = writes never block
	closed chan struct{}
	once   sync.Once
}

func newStubConn(gated bool) *stubConn {
	c := &stubConn{closed: make(chan struct{})}
	if gated {
		c.gate = make(chan struct{})
	}
	return c
}

func (c *stubConn) release() { close(c.gate) }

func (c *stubConn) WriteFrame(payload []byte) error {
	if c.gate != nil {
		select {
		case <-c.gate:
		case <-c.closed:
			return errors.New("stubConn: closed")
		}
	}
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), payload...))
	c.mu.Unlock()
	return nil
}

func (c *stubConn) ReadFrame() ([]byte, error) {
	<-c.closed
	return nil, errors.New("stubConn: closed")
}

func (c *stubConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *stubConn) SetReadDeadline(time.Time) error  { return nil }
func (c *stubConn) SetWriteDeadline(time.Time) error { return nil }
func (c *stubConn) LocalAddr() string                { return "stub:local" }
func (c *stubConn) RemoteAddr() string               { return "stub:remote" }

func (c *stubConn) written() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, len(c.frames))
	copy(out, c.frames)
	return out
}

// checkAccounting asserts the shutdown identity: every frame accepted into
// the queue was either written or counted dropped once the pipeline is
// quiescent.
func checkAccounting(t *testing.T, m *channelMetrics) {
	t.Helper()
	snap := m.snapshot()
	if snap.Enqueued != snap.EventsSent+snap.Dropped {
		t.Errorf("enqueued %d != sent %d + dropped %d",
			snap.Enqueued, snap.EventsSent, snap.Dropped)
	}
}

// TestShutdownDrainAccounting: frames still queued when the sender shuts
// down must be counted dropped, not leak as permanently "enqueued". One
// frame is in flight (blocked in WriteFrame) at shutdown; it completes and
// counts as sent, the rest of the queue drains as drops.
func TestShutdownDrainAccounting(t *testing.T) {
	conn := newStubConn(true)
	m := &channelMetrics{}
	p := newSendPipeline(conn, 8, Block, supervision{}, batchConfig{}, m, nil)
	go p.run()

	// First frame is popped by the sender and blocks in WriteFrame; the
	// next 8 fill the queue.
	for i := 0; i < 9; i++ {
		if err := p.enqueue(queuedFrame{f: wire.NewFrame([]byte{byte(i)})}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	p.shutdown()
	conn.release()
	<-p.done

	checkAccounting(t, m)
	snap := m.snapshot()
	if snap.Enqueued != 9 {
		t.Fatalf("enqueued = %d, want 9", snap.Enqueued)
	}
	if snap.EventsSent != 1 || snap.Dropped != 8 {
		t.Errorf("sent %d dropped %d, want 1 sent (the in-flight frame) and 8 dropped",
			snap.EventsSent, snap.Dropped)
	}
}

// TestDropOldestConcurrentAccounting hammers a pipeline whose writer is
// wedged with concurrent publishers under DropOldest. Run with -race. Every
// enqueue must return promptly (no livelock against the evict-retry loop)
// and the drop accounting must balance exactly after shutdown.
func TestDropOldestConcurrentAccounting(t *testing.T) {
	conn := newStubConn(true)
	m := &channelMetrics{}
	p := newSendPipeline(conn, 4, DropOldest, supervision{}, batchConfig{}, m, nil)
	go p.run()

	const publishers = 8
	const perPublisher = 500
	var wg sync.WaitGroup
	for g := 0; g < publishers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				if err := p.enqueue(queuedFrame{f: wire.NewFrame([]byte{1, 2, 3})}); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("livelock: concurrent DropOldest enqueues did not finish")
	}

	p.shutdown()
	conn.release()
	<-p.done

	snap := m.snapshot()
	if want := uint64(publishers * perPublisher); snap.Enqueued != want {
		t.Fatalf("enqueued = %d, want %d", snap.Enqueued, want)
	}
	checkAccounting(t, m)
}

// TestConcurrentEnqueueDuringShutdown races enqueuers against shutdown
// itself: whichever side of the stop/commit race each frame lands on, the
// accounting identity must hold once everything quiesces. Run with -race.
func TestConcurrentEnqueueDuringShutdown(t *testing.T) {
	for round := 0; round < 50; round++ {
		conn := newStubConn(false)
		m := &channelMetrics{}
		p := newSendPipeline(conn, 2, DropOldest, supervision{}, batchConfig{}, m, nil)
		go p.run()
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if err := p.enqueue(queuedFrame{f: wire.NewFrame([]byte{9})}); err != nil {
						return // retired mid-loop: expected
					}
				}
			}()
		}
		p.shutdown()
		wg.Wait()
		<-p.done
		checkAccounting(t, m)
	}
}

// TestBatchCoalescing: a queue backlog leaves as one batch frame whose
// entries are the queued frames in order; a lone frame goes unwrapped.
func TestBatchCoalescing(t *testing.T) {
	conn := newStubConn(false)
	m := &channelMetrics{}
	p := newSendPipeline(conn, 16, Block, supervision{}, batchConfig{Bytes: 1 << 16}, m, nil)

	// Preload the queue before the sender starts so the first sendEvents
	// sees a backlog.
	want := [][]byte{{1}, {2, 2}, {3, 3, 3}, {4}, {5}}
	for _, f := range want {
		if err := p.enqueue(queuedFrame{f: wire.NewFrame(f)}); err != nil {
			t.Fatal(err)
		}
	}
	go p.run()
	deadline := time.Now().Add(5 * time.Second)
	for len(conn.written()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no frame written")
		}
		time.Sleep(time.Millisecond)
	}
	p.shutdown()
	<-p.done

	frames := conn.written()
	if len(frames) != 1 {
		t.Fatalf("wrote %d frames, want 1 batch", len(frames))
	}
	msg, err := wire.Unmarshal(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	b, ok := msg.(*wire.Batch)
	if !ok {
		t.Fatalf("wrote %T, want *wire.Batch", msg)
	}
	if len(b.Entries) != len(want) {
		t.Fatalf("batch carried %d entries, want %d", len(b.Entries), len(want))
	}
	for i, e := range b.Entries {
		if string(e) != string(want[i]) {
			t.Errorf("entry %d = %v, want %v", i, e, want[i])
		}
	}
	snap := m.snapshot()
	if snap.EventsSent != 5 || snap.BatchesSent != 1 || snap.BatchedEvents != 5 {
		t.Errorf("sent=%d batches=%d batched=%d, want 5/1/5",
			snap.EventsSent, snap.BatchesSent, snap.BatchedEvents)
	}
	checkAccounting(t, m)

	// A single queued frame must go out unwrapped even with batching on.
	conn2 := newStubConn(false)
	m2 := &channelMetrics{}
	p2 := newSendPipeline(conn2, 16, Block, supervision{}, batchConfig{Bytes: 1 << 16}, m2, nil)
	if err := p2.enqueue(queuedFrame{f: wire.NewFrame([]byte{7, 7})}); err != nil {
		t.Fatal(err)
	}
	go p2.run()
	deadline = time.Now().Add(5 * time.Second)
	for len(conn2.written()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no frame written")
		}
		time.Sleep(time.Millisecond)
	}
	p2.shutdown()
	<-p2.done
	frames = conn2.written()
	if len(frames) != 1 || string(frames[0]) != string([]byte{7, 7}) {
		t.Fatalf("lone frame arrived as %v, want unwrapped {7,7}", frames)
	}
	if snap := m2.snapshot(); snap.BatchesSent != 0 || snap.EventsSent != 1 {
		t.Errorf("lone frame: batches=%d sent=%d, want 0/1", snap.BatchesSent, snap.EventsSent)
	}
}

// TestBatchBytesBudget: coalescing stops once the payload budget is
// reached, so a burst splits into multiple batches instead of one
// arbitrarily large frame.
func TestBatchBytesBudget(t *testing.T) {
	conn := newStubConn(true)
	m := &channelMetrics{}
	// Budget of 8 bytes: three 4-byte frames = first two coalesce (4, then
	// 8 ≥ 8 stops the fill), third goes alone.
	p := newSendPipeline(conn, 16, Block, supervision{}, batchConfig{Bytes: 8}, m, nil)
	for i := 0; i < 3; i++ {
		if err := p.enqueue(queuedFrame{f: wire.NewFrame([]byte{byte(i), 0, 0, 0})}); err != nil {
			t.Fatal(err)
		}
	}
	go p.run()
	conn.release()
	deadline := time.Now().Add(5 * time.Second)
	for len(conn.written()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("wrote %d frames, want 2", len(conn.written()))
		}
		time.Sleep(time.Millisecond)
	}
	p.shutdown()
	<-p.done
	frames := conn.written()
	if len(frames) != 2 {
		t.Fatalf("wrote %d frames, want 2", len(frames))
	}
	first, err := wire.Unmarshal(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := first.(*wire.Batch); !ok || len(b.Entries) != 2 {
		t.Fatalf("first frame %T (%v), want batch of 2", first, first)
	}
	if string(frames[1]) != string([]byte{2, 0, 0, 0}) {
		t.Errorf("second frame = %v, want the third event unwrapped", frames[1])
	}
	checkAccounting(t, m)
}
