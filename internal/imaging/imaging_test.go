package imaging

import (
	"testing"
	"testing/quick"

	"methodpart/internal/mir"
	"methodpart/internal/mir/interp"
)

func TestNewFrameShape(t *testing.T) {
	f := NewFrame(8, 6, 1)
	if f.Fields["width"] != mir.Int(8) || f.Fields["height"] != mir.Int(6) {
		t.Fatalf("frame dims = %v x %v", f.Fields["width"], f.Fields["height"])
	}
	buff := f.Fields["buff"].(mir.Bytes)
	if len(buff) != 48 {
		t.Fatalf("buff len = %d", len(buff))
	}
	g := NewFrame(8, 6, 1)
	if !mir.Equal(f, g) {
		t.Error("same seed produced different frames")
	}
}

func TestResizeDimensions(t *testing.T) {
	src := NewFrame(100, 100, 2)
	out, err := Resize(src, 25, 50)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fields["width"] != mir.Int(25) || out.Fields["height"] != mir.Int(50) {
		t.Fatalf("resized to %v x %v", out.Fields["width"], out.Fields["height"])
	}
	if len(out.Fields["buff"].(mir.Bytes)) != 25*50 {
		t.Fatal("buffer size mismatch")
	}
}

func TestResizeIdentityPreservesPixels(t *testing.T) {
	src := NewFrame(16, 16, 3)
	out, err := Resize(src, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !mir.Equal(src.Fields["buff"], out.Fields["buff"]) {
		t.Error("identity resize changed pixels")
	}
}

func TestResizeRejectsBadInput(t *testing.T) {
	src := NewFrame(4, 4, 0)
	if _, err := Resize(src, 0, 10); err == nil {
		t.Error("zero width accepted")
	}
	broken := mir.NewObject("ImageData")
	if _, err := Resize(broken, 4, 4); err == nil {
		t.Error("object without fields accepted")
	}
}

func TestResizeProperty(t *testing.T) {
	f := func(w8, h8, dw8, dh8 uint8) bool {
		w, h := int(w8%40)+1, int(h8%40)+1
		dw, dh := int(dw8%40)+1, int(dh8%40)+1
		src := NewFrame(w, h, int64(w*h))
		out, err := Resize(src, dw, dh)
		if err != nil {
			return false
		}
		buff := out.Fields["buff"].(mir.Bytes)
		return len(buff) == dw*dh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResizeCost(t *testing.T) {
	src := NewFrame(10, 10, 0)
	cost := ResizeCost([]mir.Value{src, mir.Int(20), mir.Int(20)})
	if cost != 100+400 {
		t.Errorf("cost = %d, want 500", cost)
	}
}

func TestBuiltinsThroughHandler(t *testing.T) {
	unit := HandlerUnit(32)
	prog, ok := unit.Program(HandlerName)
	if !ok {
		t.Fatal("handler missing")
	}
	classes, err := unit.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	reg, disp := Builtins()
	env := interp.NewEnv(classes, reg)
	m, err := interp.NewMachine(env, prog, []mir.Value{mir.Value(NewFrame(64, 64, 7))})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Done {
		t.Fatal("handler did not complete")
	}
	if len(disp.Frames) != 1 {
		t.Fatalf("displayed %d frames", len(disp.Frames))
	}
	if disp.Frames[0].Fields["width"] != mir.Int(32) {
		t.Errorf("displayed width = %v", disp.Frames[0].Fields["width"])
	}
	if disp.Pixels != 32*32 {
		t.Errorf("pixels = %d", disp.Pixels)
	}
	// Non-image events take the filter path.
	m2, _ := interp.NewMachine(env, prog, []mir.Value{mir.Str("junk")})
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(disp.Frames) != 1 {
		t.Error("junk event reached the display")
	}
}

func TestDisplayIsNative(t *testing.T) {
	reg, _ := Builtins()
	if !reg.IsNative("displayImage") {
		t.Error("displayImage must be native")
	}
	if reg.IsNative("resizeTo") {
		t.Error("resizeTo must be movable")
	}
}
