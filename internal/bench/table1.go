package bench

import (
	"fmt"
	"time"

	"methodpart/internal/sizeof"
)

// Table1Row is one row of Table 1: serialization vs size-calculation vs
// self-describing size costs for one object shape.
type Table1Row struct {
	// Name is the object class label.
	Name string
	// SerializedSize is the encoded size in bytes.
	SerializedSize int
	// SerializationNS is the mean cost of full serialization.
	SerializationNS float64
	// SizeCalcNS is the mean cost of reflective size calculation.
	SizeCalcNS float64
	// SelfSizeNS is the mean cost of the self-describing method
	// (negative when unavailable — the paper's "n/a").
	SelfSizeNS float64
	// ReflectSize and SelfSize are the computed sizes (consistency
	// checks; self-describing methods must agree with the walker's
	// accounting model on the payload they both count).
	ReflectSize, SelfSize int
}

// timeOp measures the mean ns of fn over enough iterations to be stable.
func timeOp(fn func()) float64 {
	// Warm up.
	for i := 0; i < 10; i++ {
		fn()
	}
	const minDuration = 20 * time.Millisecond
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= minDuration {
			return float64(elapsed.Nanoseconds()) / float64(iters)
		}
		iters *= 4
	}
}

// Table1 measures the three size mechanisms for the four Appendix B object
// shapes.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, subj := range sizeof.Table1Subjects() {
		row := Table1Row{Name: subj.Name, SelfSizeNS: -1, SelfSize: -1}
		n, err := sizeof.SerializedSize(subj.Value)
		if err != nil {
			return nil, fmt.Errorf("bench: table1 %s: %w", subj.Name, err)
		}
		row.SerializedSize = n
		row.ReflectSize = sizeof.ReflectSize(subj.Value)
		row.SerializationNS = timeOp(func() {
			_, _ = sizeof.SerializedSize(subj.Value)
		})
		row.SizeCalcNS = timeOp(func() {
			_ = sizeof.ReflectSize(subj.Value)
		})
		if subj.HasSelfSize {
			ss := subj.Value.(sizeof.SelfSized)
			row.SelfSize = ss.SizeOf()
			row.SelfSizeNS = timeOp(func() {
				_ = ss.SizeOf()
			})
		}
		rows = append(rows, row)
	}
	return rows, nil
}
