package bench

import "testing"

func fastSensorConfig() SensorConfig {
	cfg := DefaultSensorConfig()
	cfg.Frames = 80
	cfg.Seeds = []int64{11, 22}
	return cfg
}

// TestTable3Shape checks the heterogeneous-platform result: MP beats all
// three manual versions in both directions, and each manual version suffers
// when its fixed side is the slow host.
func TestTable3Shape(t *testing.T) {
	rows, err := Table3(fastSensorConfig())
	if err != nil {
		t.Fatal(err)
	}
	byV := map[SensorVariant]Table3Row{}
	for _, r := range rows {
		byV[r.Variant] = r
		t.Logf("%-20s PC->Sun=%7.2f Sun->PC=%7.2f", r.Variant, r.PCToSun, r.SunToPC)
	}
	mp := byV[VariantMP]
	for _, v := range []SensorVariant{VariantConsumer, VariantProducer, VariantDivided} {
		if mp.PCToSun >= byV[v].PCToSun {
			t.Errorf("PC->Sun: MP %.2f not better than %s %.2f", mp.PCToSun, v, byV[v].PCToSun)
		}
		if mp.SunToPC >= byV[v].SunToPC {
			t.Errorf("Sun->PC: MP %.2f not better than %s %.2f", mp.SunToPC, v, byV[v].SunToPC)
		}
	}
	// Consumer version is worst when the consumer is the slow Sun.
	if byV[VariantConsumer].PCToSun <= byV[VariantProducer].PCToSun {
		t.Errorf("PC->Sun: consumer version (%.2f) should lose to producer version (%.2f)",
			byV[VariantConsumer].PCToSun, byV[VariantProducer].PCToSun)
	}
	// Producer version is worst when the producer is the slow Sun.
	if byV[VariantProducer].SunToPC <= byV[VariantConsumer].SunToPC {
		t.Errorf("Sun->PC: producer version (%.2f) should lose to consumer version (%.2f)",
			byV[VariantProducer].SunToPC, byV[VariantConsumer].SunToPC)
	}
}

// TestTable4Shape checks the load-adaptation result on the homogeneous
// cluster: MP is best (or ties within 5%) in every load configuration, the
// consumer version degrades with consumer load, and the producer version
// degrades with producer load.
func TestTable4Shape(t *testing.T) {
	cfg := fastSensorConfig()
	rows, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[SensorVariant]int{}
	for i, v := range SensorVariants() {
		idx[v] = i
	}
	var byLoad = map[Table4Load][4]float64{}
	for _, r := range rows {
		byLoad[r.Load] = r.MS
		t.Logf("%.1f/%.1f  consumer=%7.2f producer=%7.2f divided=%7.2f mp=%7.2f",
			r.Load.Producer, r.Load.Consumer, r.MS[0], r.MS[1], r.MS[2], r.MS[3])
	}
	for _, r := range rows {
		mp := r.MS[idx[VariantMP]]
		for _, v := range []SensorVariant{VariantConsumer, VariantProducer, VariantDivided} {
			if mp > 1.05*r.MS[idx[v]] {
				t.Errorf("load %v: MP %.2f worse than %s %.2f", r.Load, mp, v, r.MS[idx[v]])
			}
		}
	}
	// Consumer version degrades monotonically with consumer load.
	c0 := byLoad[Table4Load{0, 0}][idx[VariantConsumer]]
	c6 := byLoad[Table4Load{0, 0.6}][idx[VariantConsumer]]
	c10 := byLoad[Table4Load{0, 1.0}][idx[VariantConsumer]]
	if !(c0 < c6 && c6 < c10) {
		t.Errorf("consumer version not monotone in consumer load: %.2f %.2f %.2f", c0, c6, c10)
	}
	// Producer version degrades with producer load.
	p0 := byLoad[Table4Load{0, 0}][idx[VariantProducer]]
	p10 := byLoad[Table4Load{1.0, 0}][idx[VariantProducer]]
	if !(p0 < p10) {
		t.Errorf("producer version not degraded by producer load: %.2f vs %.2f", p0, p10)
	}
	// Producer version is immune to consumer load.
	pc10 := byLoad[Table4Load{0, 1.0}][idx[VariantProducer]]
	if pc10 > 1.15*p0 {
		t.Errorf("producer version degraded by consumer load: %.2f vs %.2f", pc10, p0)
	}
	// MP under heavy one-sided load stays within 2x of its unloaded time
	// (the paper: 48.4 -> 60-65 ms).
	mp0 := byLoad[Table4Load{0, 0}][idx[VariantMP]]
	mp10 := byLoad[Table4Load{0, 1.0}][idx[VariantMP]]
	if mp10 > 2*mp0 {
		t.Errorf("MP degraded too much under consumer load: %.2f vs %.2f", mp10, mp0)
	}
}
