package wire

import (
	"testing"

	"methodpart/internal/mir"
)

// FuzzUnmarshal: arbitrary bytes must decode to a message or fail with an
// error — never panic and never allocate absurd amounts. The corpus is
// seeded with one valid frame of every protocol message so the fuzzer
// starts from deep, structurally interesting inputs.
func FuzzUnmarshal(f *testing.F) {
	ev := mir.NewObject("ImageData")
	ev.Fields["buff"] = make(mir.Bytes, 64)
	ev.Fields["width"] = mir.Int(8)
	ev.Fields["height"] = mir.Int(8)
	seeds := []any{
		&Raw{Handler: "push", Seq: 1, Event: ev},
		&Continuation{Handler: "push", Seq: 2, PSEID: 1, ResumeNode: 5,
			Vars: map[string]mir.Value{"r2": ev, "z0": mir.Int(1), "s": mir.Str("x"),
				"a": mir.IntArray{1, 2, 3}, "n": mir.Null{}}},
		&Feedback{Handler: "push", Stats: []PSEStat{
			{ID: 0, Count: 9, Bytes: 100},
			{ID: 1, Count: 5, Bytes: 10, Failures: 2},
		}},
		&Plan{Handler: "push", Version: 7, Split: []int32{1, 3}, Profile: []int32{0, 1, 2, 3}},
		&Subscribe{Subscriber: "s", Handler: "push", Source: "func push(event) {\n  return\n}",
			CostModel: "datasize", Natives: []string{"displayImage"}},
		&Nack{Handler: "push", Seq: 3, PSEID: 2, Class: NackRestore},
		&Heartbeat{},
		&Heartbeat{Seq: 4, HasAck: true, AckSeq: 1 << 40},
		&Subscribe{Subscriber: "s", Handler: "push", Source: "func push(event) {\n  return\n}",
			CostModel: "datasize", Natives: []string{"displayImage"},
			Reliability: ReliabilityAtLeastOnce, ResumeSeq: 12345, ResumeEpoch: 67890},
		&Ack{Seq: 99},
		&Retransmit{From: 10, To: 20},
		&Lost{From: 21, To: 21},
		&StreamStart{Epoch: 1 << 50},
	}
	rawFrame, err := Marshal(seeds[0])
	if err != nil {
		f.Fatal(err)
	}
	contFrame, err := Marshal(seeds[1])
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, &Batch{Entries: [][]byte{rawFrame, contFrame}})
	seeds = append(seeds, &SeqEvent{Seq: 6, Payload: rawFrame})
	// A batch of sequence envelopes — the shape a reliable subscription
	// actually receives when batching is on.
	seeds = append(seeds, &Batch{Entries: [][]byte{
		AppendSeqEvent(nil, 7, rawFrame),
		AppendSeqEvent(nil, 8, contFrame),
	}})
	for _, m := range seeds {
		data, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	// Corrupt embedded length prefixes: the in-frame counts claim far more
	// than the remaining input holds. The decoder must clamp each against
	// what is actually present instead of allocating toward the claim.
	f.Add([]byte{byte(MsgRaw), 0xff, 0xff, 0xff, 0x7f, 'x'})             // string length ≫ remaining
	f.Add([]byte{byte(MsgBatch), 0xff, 0xff, 0xff, 0x7f, 1, 0, 0, 0, 1}) // batch count ≫ remaining
	f.Add([]byte{byte(MsgBatch), 1, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f, 1}) // entry length ≫ remaining
	// A Raw frame whose event object claims ~2^31 fields with no bytes to
	// back them: empty handler, zero seq, empty class, poisoned field count.
	corruptObj := []byte{byte(MsgRaw), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	corruptObj = append(corruptObj, 9 /* tagObject */, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f)
	f.Add(corruptObj)
	// Reliability-frame corruption: a cumulative ack absurdly far ahead of
	// anything ever sent (the publisher must clamp, not release unsent ring
	// entries), inverted retransmit/lost ranges, a truncated sequence
	// envelope header, and an envelope wrapping garbage instead of a frame.
	f.Add([]byte{byte(MsgAck), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{byte(MsgRetransmit), 9, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{byte(MsgLost), 9, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{byte(MsgSeqEvent), 1, 2, 3})
	f.Add(AppendSeqEvent(nil, 5, []byte{0xfe, 0xfd}))
	// Stream-start corruption: a truncated epoch and the forbidden zero
	// epoch (the receiver-side "no stream adopted" sentinel).
	f.Add([]byte{byte(MsgStreamStart), 1, 2})
	f.Add([]byte{byte(MsgStreamStart), 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err == nil && msg == nil {
			t.Fatalf("Unmarshal(%x): nil message with nil error", data)
		}
	})
}
