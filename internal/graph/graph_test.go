package graph

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestDigraphBasics(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // duplicate ignored
	g.AddEdge(2, 3)
	if g.Len() != 4 {
		t.Fatalf("len = %d", g.Len())
	}
	if len(g.Succ(1)) != 1 {
		t.Fatalf("duplicate edge not ignored: %v", g.Succ(1))
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if len(g.Edges()) != 3 {
		t.Fatalf("edges = %v", g.Edges())
	}
	if len(g.Pred(2)) != 1 || g.Pred(2)[0] != 1 {
		t.Fatalf("pred(2) = %v", g.Pred(2))
	}
}

func TestReachable(t *testing.T) {
	g := NewDigraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	r := g.Reachable(0)
	for _, n := range []int{0, 1, 2} {
		if !r[n] {
			t.Errorf("%d not reachable", n)
		}
	}
	if r[3] || r[4] {
		t.Error("disconnected nodes reachable")
	}
	rr := g.ReachableReverse(2)
	if !rr[0] || !rr[1] || !rr[2] || rr[3] {
		t.Errorf("reverse reach = %v", rr)
	}
}

func TestPathsBetween(t *testing.T) {
	// Diamond with a tail: 0→1→3, 0→2→3, 3→4.
	g := NewDigraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	paths, err := g.PathsBetween(0, map[int]bool{3: true}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	// Paths end at the FIRST dest hit: node 4 must never appear.
	for _, p := range paths {
		if p[len(p)-1] != 3 {
			t.Errorf("path %v does not end at 3", p)
		}
	}
}

func TestPathsBetweenLimit(t *testing.T) {
	// 2^10 paths through 10 diamonds; limit must trip.
	n := 10
	g := NewDigraph(3*n + 1)
	for i := 0; i < n; i++ {
		base := 3 * i
		g.AddEdge(base, base+1)
		g.AddEdge(base, base+2)
		g.AddEdge(base+1, base+3)
		g.AddEdge(base+2, base+3)
	}
	_, err := g.PathsBetween(0, map[int]bool{3 * n: true}, 100)
	if err == nil {
		t.Fatal("expected path-limit error")
	}
}

func TestMaxFlowClassic(t *testing.T) {
	// Classic 6-node network with max flow 23.
	f := NewFlowNetwork(6)
	add := func(u, v int, c int64) {
		if err := f.AddEdge(u, v, c, -1); err != nil {
			t.Fatal(err)
		}
	}
	add(0, 1, 16)
	add(0, 2, 13)
	add(1, 2, 10)
	add(2, 1, 4)
	add(1, 3, 12)
	add(3, 2, 9)
	add(2, 4, 14)
	add(4, 3, 7)
	add(3, 5, 20)
	add(4, 5, 4)
	if got := f.MaxFlow(0, 5); got != 23 {
		t.Fatalf("max flow = %d, want 23", got)
	}
}

func TestMinCutSelectsCheapEdges(t *testing.T) {
	// 0 →(100)→ 1 →(5)→ 2 →(100)→ 3: min cut is the 5-capacity edge.
	f := NewFlowNetwork(4)
	_ = f.AddEdge(0, 1, 100, 10)
	_ = f.AddEdge(1, 2, 5, 20)
	_ = f.AddEdge(2, 3, 100, 30)
	cut, value := f.MinCut(0, 3)
	if value != 5 {
		t.Fatalf("cut value = %d", value)
	}
	if len(cut) != 1 || cut[0].ID != 20 {
		t.Fatalf("cut = %+v", cut)
	}
}

func TestMinCutParallelPaths(t *testing.T) {
	// Two parallel paths; the cut must take the cheapest edge of each.
	f := NewFlowNetwork(6)
	_ = f.AddEdge(0, 1, 10, 1)
	_ = f.AddEdge(1, 5, 2, 2)
	_ = f.AddEdge(0, 2, 3, 3)
	_ = f.AddEdge(2, 5, 7, 4)
	cut, value := f.MinCut(0, 5)
	if value != 5 {
		t.Fatalf("cut value = %d, want 5", value)
	}
	ids := []int{}
	for _, c := range cut {
		ids = append(ids, c.ID)
	}
	sort.Ints(ids)
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("cut ids = %v, want [2 3]", ids)
	}
}

func TestMinCutWithInfEdges(t *testing.T) {
	// Inf edges must never be cut when a finite alternative exists.
	f := NewFlowNetwork(4)
	_ = f.AddEdge(0, 1, InfCapacity, -1)
	_ = f.AddEdge(1, 2, 50, 7)
	_ = f.AddEdge(2, 3, InfCapacity, -1)
	cut, value := f.MinCut(0, 3)
	if value != 50 || len(cut) != 1 || cut[0].ID != 7 {
		t.Fatalf("cut = %+v value %d", cut, value)
	}
}

func TestFlowNetworkErrors(t *testing.T) {
	f := NewFlowNetwork(2)
	if err := f.AddEdge(0, 5, 1, 0); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := f.AddEdge(0, 1, -1, 0); err == nil {
		t.Error("negative capacity accepted")
	}
}

// Property: max-flow equals min-cut value on random layered graphs.
func TestMaxFlowMinCutDuality(t *testing.T) {
	f := func(caps [12]uint8) bool {
		// Layered graph: 0 → {1,2} → {3,4} → 5 with random capacities.
		fn := NewFlowNetwork(6)
		c := func(i int) int64 { return int64(caps[i]%50) + 1 }
		_ = fn.AddEdge(0, 1, c(0), 0)
		_ = fn.AddEdge(0, 2, c(1), 1)
		_ = fn.AddEdge(1, 3, c(2), 2)
		_ = fn.AddEdge(1, 4, c(3), 3)
		_ = fn.AddEdge(2, 3, c(4), 4)
		_ = fn.AddEdge(2, 4, c(5), 5)
		_ = fn.AddEdge(3, 5, c(6), 6)
		_ = fn.AddEdge(4, 5, c(7), 7)
		cut, value := fn.MinCut(0, 5)
		var sum int64
		for _, e := range cut {
			sum += e.Capacity
		}
		return sum == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
