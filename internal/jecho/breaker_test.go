package jecho

import (
	"testing"
	"time"

	"methodpart/internal/costmodel"
	"methodpart/internal/partition"
	"methodpart/internal/reconfig"
	"methodpart/internal/testprog"
)

// testClock is a manually-advanced clock for driving the breaker's
// window/cooldown arithmetic deterministically.
type testClock struct{ t time.Time }

func newTestClock() *testClock               { return &testClock{t: time.Unix(1000, 0)} }
func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(threshold int, window, cooldown time.Duration) (*pseBreaker, *testClock) {
	b := newPSEBreaker(breakerConfig{threshold: threshold, window: window, cooldown: cooldown})
	clk := newTestClock()
	b.now = clk.now
	return b, clk
}

func TestBreakerStateMachine(t *testing.T) {
	b, clk := testBreaker(3, 10*time.Second, 30*time.Second)

	// Closed: failures below the threshold don't trip.
	if b.Fail(1) || b.Fail(1) {
		t.Fatal("tripped below threshold")
	}
	if b.Open(1) {
		t.Fatal("open below threshold")
	}
	// Success clears the window: failures must cluster to trip.
	b.Succeed(1)
	if b.Fail(1) || b.Fail(1) {
		t.Fatal("tripped after Succeed cleared the window")
	}
	// Third consecutive failure trips.
	if !b.Fail(1) {
		t.Fatal("threshold failure did not trip")
	}
	if !b.Open(1) {
		t.Fatal("not open after trip")
	}
	// Failures while open don't re-trip (no cooldown extension).
	if b.Fail(1) {
		t.Fatal("re-tripped while open")
	}
	// Cooldown elapses: half-open re-admission.
	clk.advance(31 * time.Second)
	if b.Open(1) {
		t.Fatal("still open after cooldown")
	}
	// A failure during the probe re-opens immediately.
	if !b.Fail(1) {
		t.Fatal("probe failure did not re-open")
	}
	if !b.Open(1) {
		t.Fatal("not open after failed probe")
	}
	// Second cooldown, successful probe: breaker closes for good.
	clk.advance(31 * time.Second)
	if b.Open(1) {
		t.Fatal("still open after second cooldown")
	}
	b.Succeed(1)
	if b.Open(1) {
		t.Fatal("open after successful probe")
	}
	if b.Fail(1) {
		t.Fatal("single failure tripped a closed breaker")
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b, clk := testBreaker(3, 10*time.Second, 30*time.Second)
	b.Fail(2)
	b.Fail(2)
	// The first two failures age out of the window; the next two don't trip.
	clk.advance(11 * time.Second)
	if b.Fail(2) || b.Fail(2) {
		t.Fatal("stale failures counted toward the threshold")
	}
	if !b.Fail(2) {
		t.Fatal("three in-window failures did not trip")
	}
}

func TestBreakerFailN(t *testing.T) {
	b, _ := testBreaker(3, 10*time.Second, 30*time.Second)
	// A feedback delta carrying the whole threshold at once trips in one call.
	if !b.FailN(4, 3) {
		t.Fatal("FailN(3) did not trip")
	}
	if b.FailN(4, 0) {
		t.Fatal("FailN(0) tripped")
	}
	b2, _ := testBreaker(3, 10*time.Second, 30*time.Second)
	if b2.FailN(4, 100) != true {
		t.Fatal("large delta did not trip")
	}
}

func TestBreakerFailNClampsDelta(t *testing.T) {
	b, _ := testBreaker(3, 10*time.Second, 30*time.Second)
	// A wire feedback frame can carry an arbitrary (corrupt or malicious)
	// failure-counter delta; FailN must trip without materialising it as
	// stamps. An unclamped loop would allocate ~2^64 entries here.
	done := make(chan bool, 1)
	go func() { done <- b.FailN(7, ^uint64(0)) }()
	select {
	case tripped := <-done:
		if !tripped {
			t.Fatal("huge delta did not trip")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("FailN(max uint64) did not return; delta not clamped")
	}
	b.mu.Lock()
	if n := len(b.states[7].stamps); n > b.cfg.threshold {
		t.Fatalf("%d stamps retained, want <= threshold %d", n, b.cfg.threshold)
	}
	b.mu.Unlock()
}

// TestBreakerProbePassesImplicitly: an endpoint with no positive success
// signal (the publisher) must not stay half-open forever — once a probe
// survives a full failure window, the breaker closes and later failures
// count against the normal threshold instead of re-tripping singly.
func TestBreakerProbePassesImplicitly(t *testing.T) {
	b, clk := testBreaker(3, 10*time.Second, 30*time.Second)
	b.Fail(1)
	b.Fail(1)
	if !b.Fail(1) {
		t.Fatal("threshold failure did not trip")
	}
	// Cooldown elapses: half-open probe starts.
	clk.advance(31 * time.Second)
	if b.Open(1) {
		t.Fatal("still open after cooldown")
	}
	// The probe survives a full failure window with no failures.
	clk.advance(11 * time.Second)
	// A single failure now must NOT re-open: the probe passed implicitly,
	// so the breaker is closed and the threshold applies afresh.
	if b.Fail(1) {
		t.Fatal("single post-probe failure re-tripped the breaker")
	}
	if b.Open(1) {
		t.Fatal("open after one post-probe failure")
	}
	// Clustered failures still trip as usual.
	b.Fail(1)
	if !b.Fail(1) {
		t.Fatal("threshold failures after passed probe did not trip")
	}
}

// TestBreakerProbeExpiryViaOpen: the implicit probe pass is also observed
// through Open/OpenIDs polling, not just through the next failure.
func TestBreakerProbeExpiryViaOpen(t *testing.T) {
	b, clk := testBreaker(1, 10*time.Second, 30*time.Second)
	b.Fail(2)
	clk.advance(31 * time.Second)
	if b.Open(2) { // flips half-open
		t.Fatal("still open after cooldown")
	}
	clk.advance(11 * time.Second)
	if b.Open(2) {
		t.Fatal("open after probe window elapsed")
	}
	b.mu.Lock()
	st := b.states[2]
	if st.probing || !st.openUntil.IsZero() {
		t.Fatalf("state = %+v, want fully closed after implicit probe pass", st)
	}
	b.mu.Unlock()
}

func TestBreakerOpenIDsSorted(t *testing.T) {
	b, _ := testBreaker(1, 10*time.Second, 30*time.Second)
	b.Fail(5)
	b.Fail(1)
	b.Fail(3)
	got := b.OpenIDs()
	want := []int32{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("OpenIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OpenIDs = %v, want %v", got, want)
		}
	}
}

func TestBreakerDisabled(t *testing.T) {
	if b := resolveBreaker(-1, 0, 0); b != nil {
		t.Fatal("negative threshold did not disable the breaker")
	}
	var b *pseBreaker
	// Every method must be a nil-safe no-op.
	if b.Fail(1) || b.FailN(1, 10) || b.Open(1) {
		t.Fatal("nil breaker reported activity")
	}
	b.Succeed(1)
	if ids := b.OpenIDs(); ids != nil {
		t.Fatalf("nil breaker OpenIDs = %v", ids)
	}
}

func TestResolveBreakerDefaults(t *testing.T) {
	b := resolveBreaker(0, 0, 0)
	if b == nil {
		t.Fatal("zero config disabled the breaker")
	}
	if b.cfg.threshold != DefaultBreakerThreshold ||
		b.cfg.window != DefaultBreakerWindow ||
		b.cfg.cooldown != DefaultBreakerCooldown {
		t.Fatalf("cfg = %+v, want defaults", b.cfg)
	}
}

// --- Breaker / plan-selection interaction -------------------------------

func breakerCompiled(t *testing.T) *partition.Compiled {
	t.Helper()
	u := testprog.PushUnit()
	prog, _ := u.Program("push")
	classes, err := u.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := testprog.PushBuiltins()
	c, err := partition.Compile(prog, classes, reg, costmodel.NewDataSize())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// breakerPSE finds the PSE id for an edge, as in the reconfig tests.
func breakerPSE(t *testing.T, c *partition.Compiled, from, to int) int32 {
	t.Helper()
	for id := int32(0); id < int32(c.NumPSEs()); id++ {
		p, _ := c.PSE(id)
		if p.Edge.From == from && p.Edge.To == to {
			return id
		}
	}
	t.Fatalf("no PSE for edge (%d,%d)", from, to)
	return -1
}

// pushStats fabricates the profile that makes the post-transform cut
// optimal: large incoming images, small resized continuations.
func pushStats(c *partition.Compiled, t *testing.T) (map[int32]costmodel.Stat, int32, int32) {
	preID := breakerPSE(t, c, 2, 3)
	postID := breakerPSE(t, c, 4, 5)
	filterID := breakerPSE(t, c, 1, 7)
	stats := map[int32]costmodel.Stat{
		partition.RawPSEID: {Count: 100, Prob: 1, Bytes: 40100},
		preID:              {Count: 100, Prob: 1, Bytes: 40100},
		postID:             {Count: 100, Prob: 1, Bytes: 10100},
		filterID:           {Count: 0},
	}
	return stats, preID, postID
}

// TestTrippedPSERoutedAround: tripping the optimal PSE's breaker must push
// the min-cut to a valid plan that excludes it — the failure-aware
// degradation path the publisher and subscriber both run.
func TestTrippedPSERoutedAround(t *testing.T) {
	c := breakerCompiled(t)
	unit := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
	stats, _, postID := pushStats(c, t)

	plan, _, err := unit.SelectPlan(stats)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Split(postID) {
		t.Fatalf("baseline plan %v does not select the post-transform cut", plan)
	}

	b, _ := testBreaker(1, 10*time.Second, 30*time.Second)
	b.Fail(postID)
	unit.SetTripped(b.OpenIDs())
	degraded, _, err := unit.SelectPlan(stats)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Split(postID) {
		t.Fatalf("degraded plan %v still selects tripped PSE %d", degraded, postID)
	}
	if err := c.ValidateSplitSet(degraded.SplitIDs()); err != nil {
		t.Fatalf("degraded plan invalid: %v", err)
	}
	if degraded.Version() <= plan.Version() {
		t.Fatalf("version did not advance: %d then %d", plan.Version(), degraded.Version())
	}
}

// TestAllTrippedFallsBackToRaw: with every non-raw PSE excluded, the only
// finite cut left is shipping the raw event.
func TestAllTrippedFallsBackToRaw(t *testing.T) {
	c := breakerCompiled(t)
	unit := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
	stats, _, _ := pushStats(c, t)

	b, _ := testBreaker(1, 10*time.Second, 30*time.Second)
	for id := int32(1); id < int32(c.NumPSEs()); id++ {
		b.Fail(id)
	}
	unit.SetTripped(b.OpenIDs())
	plan, _, err := unit.SelectPlan(stats)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Raw() {
		t.Fatalf("plan %v, want raw fallback with all PSEs tripped", plan)
	}
	if err := c.ValidateSplitSet(plan.SplitIDs()); err != nil {
		t.Fatalf("raw fallback invalid: %v", err)
	}
}

// TestHalfOpenReadmission: once the cooldown elapses the PSE leaves
// OpenIDs, so the next plan selection may re-admit it — the probe. A
// failure during the probe excludes it again.
func TestHalfOpenReadmission(t *testing.T) {
	c := breakerCompiled(t)
	unit := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
	stats, _, postID := pushStats(c, t)

	b, clk := testBreaker(1, 10*time.Second, 30*time.Second)
	b.Fail(postID)
	unit.SetTripped(b.OpenIDs())
	if plan, _, err := unit.SelectPlan(stats); err != nil || plan.Split(postID) {
		t.Fatalf("plan %v err %v, want tripped PSE excluded", plan, err)
	}

	// Cooldown elapses: OpenIDs empties and the optimizer re-selects the
	// probed PSE.
	clk.advance(31 * time.Second)
	if ids := b.OpenIDs(); len(ids) != 0 {
		t.Fatalf("OpenIDs = %v after cooldown", ids)
	}
	unit.SetTripped(b.OpenIDs())
	probe, _, err := unit.SelectPlan(stats)
	if err != nil {
		t.Fatal(err)
	}
	if !probe.Split(postID) {
		t.Fatalf("probe plan %v did not re-admit PSE %d", probe, postID)
	}

	// The probe fails: immediate re-exclusion.
	if !b.Fail(postID) {
		t.Fatal("probe failure did not re-open")
	}
	unit.SetTripped(b.OpenIDs())
	again, _, err := unit.SelectPlan(stats)
	if err != nil {
		t.Fatal(err)
	}
	if again.Split(postID) {
		t.Fatalf("plan %v re-selected PSE %d after failed probe", again, postID)
	}
}
