package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sync"

	"methodpart/internal/mir"
)

// ProtocolVersion is the wire protocol revision. A subscription handshake
// carries it; peers reject revisions they cannot speak rather than
// misinterpreting frames. Revision 2 added heartbeat control frames.
// Revision 3 added Nack frames (demodulation-failure reports) plus per-PSE
// failure counts and the sender's active plan version in Feedback.
// Revision 4 added Batch frames (multiple event frames coalesced into one
// wire frame). Revision 5 added the opt-in at-least-once delivery layer:
// SeqEvent envelopes, cumulative Ack frames, Retransmit requests, Lost
// notices, and the Reliability/ResumeSeq handshake fields (see
// reliable.go). Revision 6 added heartbeat echoes (Heartbeat.HasEcho /
// EchoSeq): either side reflects the peer's heartbeat Seq back so each
// endpoint measures round-trip time on its own clock, feeding the link
// estimator behind live environment refinement.
const ProtocolVersion uint32 = 6

// MinProtocolVersion is the oldest peer revision a current endpoint still
// interoperates with: a publisher speaking revision 6 downgrades to
// unbatched frames for a revision-3 subscriber, never sends reliability
// frames to a revision-4 one, and never solicits heartbeat echoes from a
// revision-5 one, since everything in revisions 4 through 6 is additive.
const MinProtocolVersion uint32 = 3

// BatchProtocolVersion is the first revision whose subscribers understand
// Batch frames; senders must not batch toward older peers.
const BatchProtocolVersion uint32 = 4

// EchoProtocolVersion is the first revision whose peers understand heartbeat
// echoes; endpoints must not solicit echoes from older peers (they would
// never answer, leaving the RTT estimator stuck at its default).
const EchoProtocolVersion uint32 = 6

// MsgType identifies a framed message.
type MsgType byte

// Message types exchanged between modulator (sender) and demodulator
// (receiver) sides.
const (
	// MsgRaw carries an unmodulated event (no split executed at sender).
	MsgRaw MsgType = iota + 1
	// MsgContinuation carries a remote continuation: split point + live vars.
	MsgContinuation
	// MsgFeedback carries profiling statistics to the reconfiguration unit.
	MsgFeedback
	// MsgPlan carries a new partitioning plan to the modulator side.
	MsgPlan
	// MsgSubscribe installs a handler (modulator) at the sender.
	MsgSubscribe
	// MsgHeartbeat is the liveness probe either side sends while idle, so
	// a silent peer is distinguishable from a silent channel.
	MsgHeartbeat
	// MsgNack reports a demodulation failure upstream (protocol revision
	// 3): the receiver could not complete a message and quarantined it.
	MsgNack
	// MsgBatch coalesces multiple event frames (MsgRaw/MsgContinuation)
	// into one wire frame (protocol revision 4), amortising per-frame
	// transport overhead on busy channels. Receivers unpack and process
	// each entry independently, so per-entry fault containment (NACKs,
	// dead-lettering) is preserved.
	MsgBatch
	// MsgAck is the cumulative delivery acknowledgement (protocol
	// revision 5): everything up to Ack.Seq arrived, release the replay
	// ring behind it.
	MsgAck
	// MsgRetransmit asks the publisher to replay a sequence range the
	// subscriber detected as a gap (protocol revision 5).
	MsgRetransmit
	// MsgLost declares a sequence range unrecoverable — evicted from the
	// replay ring before it could be repaired (protocol revision 5).
	MsgLost
	// MsgSeqEvent is the per-subscription delivery-sequence envelope
	// around one event frame (protocol revision 5).
	MsgSeqEvent
	// MsgStreamStart announces the delivery stream's epoch as the first
	// frame of an at-least-once subscription (protocol revision 5), so a
	// resuming subscriber can tell a continued stream from a fresh one.
	MsgStreamStart
)

// NackClass classifies why a message failed demodulation, so the sender's
// circuit breaker can distinguish a poisoned split point from a slow one.
type NackClass uint8

const (
	// NackUnknown is the zero value; a well-formed Nack never carries it.
	NackUnknown NackClass = iota
	// NackDecode: the message decoded at the frame level but failed
	// message-level validation (wrong handler, malformed payload).
	NackDecode
	// NackRestore: the continuation could not be restored (resume node out
	// of range, unusable variable snapshot).
	NackRestore
	// NackRuntime: the interpreter failed (runtime error or recovered
	// panic) while completing the message.
	NackRuntime
	// NackBudget: the receiver cancelled the message because it exceeded
	// the work or step budget (a runaway continuation).
	NackBudget
)

// String names the class for logs and tables.
func (c NackClass) String() string {
	switch c {
	case NackDecode:
		return "decode"
	case NackRestore:
		return "restore"
	case NackRuntime:
		return "runtime"
	case NackBudget:
		return "budget"
	default:
		return "unknown"
	}
}

// Nack reports one demodulation failure from the receiver back to the
// sender (protocol revision 3). The sender feeds it into the per-PSE
// circuit breaker: enough Nacks against one PSE trip it out of the
// eligible split set.
type Nack struct {
	// Handler names the handler whose message failed.
	Handler string
	// Seq is the failed message's per-subscription sequence number.
	Seq uint64
	// PSEID is the PSE the failed message was split at (RawPSEID for raw
	// events).
	PSEID int32
	// Class is the failure classification.
	Class NackClass
}

// Batch is one coalesced wire frame holding several event frames (protocol
// revision 4). Entries are complete Marshal outputs (tag byte included) of
// MsgRaw or MsgContinuation messages; control frames never batch, because
// feedback coalesces to-latest and heartbeats are only sent on idle
// channels. Decoded entries alias the frame they were unmarshalled from.
type Batch struct {
	// Entries holds the constituent event frames, in send order.
	Entries [][]byte
}

// Heartbeat trailing-flag bits: the byte after Seq is a bitmask naming the
// optional fields that follow, in bit order.
const (
	hbFlagAck  byte = 1 << 0 // AckSeq follows (revision 5)
	hbFlagEcho byte = 1 << 1 // EchoSeq follows (revision 6)
)

// Heartbeat is the liveness control message (protocol revision 2). Any
// received frame counts as liveness; heartbeats exist so liveness frames
// keep flowing when no events, feedback or plans are due.
type Heartbeat struct {
	// Seq increases per heartbeat sent on one connection.
	Seq uint64
	// HasAck marks a subscriber heartbeat carrying a piggybacked
	// cumulative delivery ack (protocol revision 5): an at-least-once
	// subscriber restates its last contiguous delivery seq on every idle
	// heartbeat, so the publisher's replay ring drains — and trailing
	// gaps get repaired — even when no events flow. Legacy heartbeats
	// decode with HasAck false.
	HasAck bool
	// AckSeq is the piggybacked cumulative ack (meaningful only when
	// HasAck is set); same semantics as Ack.Seq.
	AckSeq uint64
	// HasEcho marks a heartbeat reflecting a peer's probe (protocol
	// revision 6): EchoSeq repeats the Seq of a heartbeat the peer sent, so
	// the peer can subtract its recorded send time and obtain one
	// round-trip sample per heartbeat interval. A pure echo carries Seq 0;
	// endpoints only echo heartbeats with Seq > 0, so two v6 peers cannot
	// reflect echoes back and forth forever. Legacy heartbeats decode with
	// HasEcho false.
	HasEcho bool
	// EchoSeq is the reflected probe Seq (meaningful only when HasEcho is
	// set).
	EchoSeq uint64
}

// Raw is an unmodulated event message.
type Raw struct {
	// Handler names the receiving handler.
	Handler string
	// Seq is the per-subscription sequence number.
	Seq uint64
	// Event is the event value.
	Event mir.Value
}

// Continuation is the remote-continuation message (§2.4): the PSE where
// modulator-side processing stopped, the node at which the demodulator must
// resume, and the live variables of the split edge.
type Continuation struct {
	// Handler names the receiving handler.
	Handler string
	// Seq is the per-subscription sequence number.
	Seq uint64
	// PSEID is the unique id of the split edge.
	PSEID int32
	// ResumeNode is the instruction index at which to resume.
	ResumeNode int32
	// Vars is the live-variable snapshot (register name → value).
	Vars map[string]mir.Value
	// ModWork is the work (in work units) the modulator spent on this
	// message, carried for demodulator-side profiling.
	ModWork int64
}

// PSEStat is one PSE's profiling record inside a Feedback message.
type PSEStat struct {
	// ID is the PSE id.
	ID int32
	// Count is the number of messages observed through this PSE.
	Count uint64
	// Bytes is the mean continuation size in bytes.
	Bytes float64
	// ModWork is the mean modulator-side work per message (work units).
	ModWork float64
	// DemodWork is the mean demodulator-side work per message.
	DemodWork float64
	// Prob is the observed probability that a message's execution path
	// crosses this PSE.
	Prob float64
	// Failures is the cumulative count of messages that failed while split
	// at this PSE (modulator failures at the sender, demodulation failures
	// at the receiver), carried so the reconfiguration unit can route the
	// min-cut around broken split points.
	Failures uint64
}

// Feedback carries profiling statistics from the demodulator side to the
// reconfiguration unit (§2.5).
type Feedback struct {
	// Handler names the handler the statistics describe.
	Handler string
	// PlanVersion is the sender's active plan version at snapshot time
	// (zero when unknown). It lets the reconfiguration unit fast-forward
	// its version counter past plans installed behind its back — the
	// publisher's breaker degrades with a locally forced version, and a
	// plan selected against a lagging counter would be rejected as stale.
	PlanVersion uint64
	// Stats holds one record per profiled PSE.
	Stats []PSEStat
}

// Plan is a partitioning plan pushed to the modulator: which PSEs have their
// split flag set and which have their profiling flag set.
type Plan struct {
	// Handler names the handler the plan applies to.
	Handler string
	// Version increases with every reconfiguration.
	Version uint64
	// Split lists the PSE ids whose split flag is set.
	Split []int32
	// Profile lists the PSE ids whose profiling flag is set.
	Profile []int32
}

// Subscribe installs a handler at the sender side: the handler source is
// assembled, analysed and turned into a modulator there.
type Subscribe struct {
	// Protocol is the subscriber's wire protocol revision
	// (ProtocolVersion; zero-valued legacy messages are rejected).
	Protocol uint32
	// Subscriber identifies the subscribing component.
	Subscriber string
	// Channel names the event channel to attach to ("" = the default
	// channel; broadcasts reach every channel).
	Channel string
	// Handler names the handler (must match the func name in Source).
	Handler string
	// Source is the MIR assembler source (classes + func).
	Source string
	// CostModel names the cost model to analyse under.
	CostModel string
	// Natives lists the handler's native (receiver-pinned) functions, so
	// both ends mark identical StopNodes.
	Natives []string
	// Reliability selects the delivery mode (protocol revision 5):
	// ReliabilityBestEffort (the zero value, and the only behaviour older
	// revisions have) or ReliabilityAtLeastOnce. Publishers ignore it on
	// handshakes older than ReliableProtocolVersion.
	Reliability uint32
	// ResumeSeq is the subscriber's last contiguously received delivery
	// sequence number (protocol revision 5, at-least-once only): a
	// reconnecting subscriber resumes mid-stream — the publisher releases
	// ring entries up to it and replays what it still retains beyond it.
	// Zero on a first subscribe.
	ResumeSeq uint64
	// ResumeEpoch is the stream epoch ResumeSeq belongs to — the value of
	// the StreamStart frame that opened the stream the subscriber was
	// receiving. A publisher whose state carries a different epoch ignores
	// ResumeSeq (it numbers a dead stream) and the subscriber resets on
	// the new StreamStart. Zero on a first subscribe.
	ResumeEpoch uint64
}

// encoderPool recycles Encoders (buffer + reference tables) across Marshal
// and AppendMarshal calls, so steady-state message encoding allocates only
// what the caller asks for (the returned slice in Marshal, nothing in
// AppendMarshal when dst has capacity).
var encoderPool = sync.Pool{New: func() any { return NewEncoder() }}

// Marshal encodes the message with its type tag (but no length frame). The
// returned slice is freshly allocated and owned by the caller; hot paths
// that can reuse a buffer should prefer AppendMarshal.
func Marshal(msg any) ([]byte, error) {
	e := encoderPool.Get().(*Encoder)
	defer func() {
		e.Reset()
		encoderPool.Put(e)
	}()
	if err := e.encodeMessage(msg); err != nil {
		return nil, err
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

// AppendMarshal encodes the message and appends it to dst, returning the
// extended slice. It reuses a pooled encoder, so a caller that recycles its
// destination buffer (dst[:0] of the previous result) encodes with zero
// steady-state allocations — the send-pipeline batching and heartbeat paths
// rely on this.
func AppendMarshal(dst []byte, msg any) ([]byte, error) {
	e := encoderPool.Get().(*Encoder)
	defer func() {
		e.Reset()
		encoderPool.Put(e)
	}()
	if err := e.encodeMessage(msg); err != nil {
		return nil, err
	}
	return append(dst, e.Bytes()...), nil
}

// encodeMessage appends one tagged message to the encoder's buffer.
func (e *Encoder) encodeMessage(msg any) error {
	switch m := msg.(type) {
	case *Raw:
		e.w.WriteByte(byte(MsgRaw))
		e.writeString(m.Handler)
		e.writeU64(m.Seq)
		if err := e.EncodeValue(m.Event); err != nil {
			return err
		}
	case *Continuation:
		e.w.WriteByte(byte(MsgContinuation))
		e.writeString(m.Handler)
		e.writeU64(m.Seq)
		e.writeU32(uint32(m.PSEID))
		e.writeU32(uint32(m.ResumeNode))
		e.writeU64(uint64(m.ModWork))
		base := len(e.names)
		for n := range m.Vars {
			e.names = append(e.names, n)
		}
		names := e.names[base:]
		slices.Sort(names)
		e.writeU32(uint32(len(names)))
		for _, n := range names {
			e.writeString(n)
			if err := e.EncodeValue(m.Vars[n]); err != nil {
				e.names = e.names[:base]
				return err
			}
		}
		e.names = e.names[:base]
	case *Batch:
		e.w.WriteByte(byte(MsgBatch))
		e.writeU32(uint32(len(m.Entries)))
		for _, entry := range m.Entries {
			e.writeU32(uint32(len(entry)))
			e.w.Write(entry)
		}
	case *Feedback:
		e.w.WriteByte(byte(MsgFeedback))
		e.writeString(m.Handler)
		e.writeU64(m.PlanVersion)
		e.writeU32(uint32(len(m.Stats)))
		for _, s := range m.Stats {
			e.writeU32(uint32(s.ID))
			e.writeU64(s.Count)
			e.writeU64(math.Float64bits(s.Bytes))
			e.writeU64(math.Float64bits(s.ModWork))
			e.writeU64(math.Float64bits(s.DemodWork))
			e.writeU64(math.Float64bits(s.Prob))
			e.writeU64(s.Failures)
		}
	case *Plan:
		e.w.WriteByte(byte(MsgPlan))
		e.writeString(m.Handler)
		e.writeU64(m.Version)
		e.writeU32(uint32(len(m.Split)))
		for _, id := range m.Split {
			e.writeU32(uint32(id))
		}
		e.writeU32(uint32(len(m.Profile)))
		for _, id := range m.Profile {
			e.writeU32(uint32(id))
		}
	case *Heartbeat:
		e.w.WriteByte(byte(MsgHeartbeat))
		e.writeU64(m.Seq)
		// Trailing fields: a flag bitmask (revision 5 defined bit 0 as the
		// piggybacked ack; revision 6 added bit 1 for the echo), then the
		// flagged fields in bit order. Pre-5 decoders ignored trailing
		// bytes on control frames and the revision-5 decoder tested the
		// flag byte for exactly 1, so both extensions are transparent to
		// older peers.
		var flag byte
		if m.HasAck {
			flag |= hbFlagAck
		}
		if m.HasEcho {
			flag |= hbFlagEcho
		}
		e.w.WriteByte(flag)
		if m.HasAck {
			e.writeU64(m.AckSeq)
		}
		if m.HasEcho {
			e.writeU64(m.EchoSeq)
		}
	case *Ack:
		e.w.WriteByte(byte(MsgAck))
		e.writeU64(m.Seq)
	case *Retransmit:
		e.w.WriteByte(byte(MsgRetransmit))
		e.writeU64(m.From)
		e.writeU64(m.To)
	case *Lost:
		e.w.WriteByte(byte(MsgLost))
		e.writeU64(m.From)
		e.writeU64(m.To)
	case *StreamStart:
		if m.Epoch == 0 {
			return fmt.Errorf("wire: stream start needs a non-zero epoch")
		}
		e.w.WriteByte(byte(MsgStreamStart))
		e.writeU64(m.Epoch)
	case *SeqEvent:
		if len(m.Payload) == 0 {
			return fmt.Errorf("wire: seq envelope needs a payload")
		}
		if m.Seq == 0 {
			return fmt.Errorf("wire: seq envelope needs a non-zero sequence")
		}
		e.w.WriteByte(byte(MsgSeqEvent))
		e.writeU64(m.Seq)
		e.w.Write(m.Payload)
	case *Nack:
		e.w.WriteByte(byte(MsgNack))
		e.writeString(m.Handler)
		e.writeU64(m.Seq)
		e.writeU32(uint32(m.PSEID))
		e.writeU32(uint32(m.Class))
	case *Subscribe:
		e.w.WriteByte(byte(MsgSubscribe))
		e.writeU32(m.Protocol)
		e.writeString(m.Subscriber)
		e.writeString(m.Channel)
		e.writeString(m.Handler)
		e.writeString(m.Source)
		e.writeString(m.CostModel)
		e.writeU32(uint32(len(m.Natives)))
		for _, n := range m.Natives {
			e.writeString(n)
		}
		// Revision-5 trailing fields; pre-5 decoders stop at the natives
		// and ignore them.
		e.writeU32(m.Reliability)
		e.writeU64(m.ResumeSeq)
		e.writeU64(m.ResumeEpoch)
	default:
		return fmt.Errorf("wire: cannot marshal %T", msg)
	}
	return nil
}

// AppendBatch appends one Batch frame wrapping the given event frames to
// dst, returning the extended slice. It is the allocation-free fast path of
// Marshal(&Batch{...}) for senders that assemble batches into a recycled
// buffer.
func AppendBatch(dst []byte, entries [][]byte) []byte {
	dst = append(dst, byte(MsgBatch))
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], uint32(len(entries)))
	dst = append(dst, u[:]...)
	for _, entry := range entries {
		binary.LittleEndian.PutUint32(u[:], uint32(len(entry)))
		dst = append(dst, u[:]...)
		dst = append(dst, entry...)
	}
	return dst
}

// Unmarshal decodes a message produced by Marshal. The concrete type of the
// result is *Raw, *Continuation, *Feedback, *Plan, *Subscribe, *Heartbeat,
// *Nack, *Batch, *Ack, *Retransmit, *Lost, *SeqEvent or *StreamStart.
// Batch entries and SeqEvent payloads alias data; they stay valid only as
// long as the input does.
func Unmarshal(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("wire: empty message")
	}
	if MsgType(data[0]) == MsgBatch {
		return unmarshalBatch(data[1:])
	}
	if MsgType(data[0]) == MsgSeqEvent {
		return unmarshalSeqEvent(data[1:])
	}
	d := NewDecoder(data[1:])
	switch MsgType(data[0]) {
	case MsgRaw:
		m := &Raw{}
		var err error
		if m.Handler, err = d.readString(); err != nil {
			return nil, err
		}
		if m.Seq, err = d.readU64(); err != nil {
			return nil, err
		}
		if m.Event, err = d.DecodeValue(); err != nil {
			return nil, err
		}
		return m, nil
	case MsgContinuation:
		m := &Continuation{}
		var err error
		if m.Handler, err = d.readString(); err != nil {
			return nil, err
		}
		if m.Seq, err = d.readU64(); err != nil {
			return nil, err
		}
		pse, err := d.readU32()
		if err != nil {
			return nil, err
		}
		m.PSEID = int32(pse)
		node, err := d.readU32()
		if err != nil {
			return nil, err
		}
		m.ResumeNode = int32(node)
		work, err := d.readU64()
		if err != nil {
			return nil, err
		}
		m.ModWork = int64(work)
		n, err := d.readU32()
		if err != nil {
			return nil, err
		}
		// Each var costs at least a 4-byte name length + 1-byte value tag.
		if int64(n) > int64(d.Remaining())/5 {
			return nil, fmt.Errorf("wire: var count %d exceeds remaining payload", n)
		}
		m.Vars = make(map[string]mir.Value, n)
		for i := uint32(0); i < n; i++ {
			name, err := d.readString()
			if err != nil {
				return nil, err
			}
			v, err := d.DecodeValue()
			if err != nil {
				return nil, err
			}
			m.Vars[name] = v
		}
		return m, nil
	case MsgFeedback:
		m := &Feedback{}
		var err error
		if m.Handler, err = d.readString(); err != nil {
			return nil, err
		}
		if m.PlanVersion, err = d.readU64(); err != nil {
			return nil, err
		}
		n, err := d.readU32()
		if err != nil {
			return nil, err
		}
		// Each stat record is 52 bytes on the wire.
		if int64(n) > int64(d.Remaining())/52 {
			return nil, fmt.Errorf("wire: stat count %d exceeds remaining payload", n)
		}
		m.Stats = make([]PSEStat, n)
		for i := range m.Stats {
			s := &m.Stats[i]
			id, err := d.readU32()
			if err != nil {
				return nil, err
			}
			s.ID = int32(id)
			if s.Count, err = d.readU64(); err != nil {
				return nil, err
			}
			vals := [4]*float64{&s.Bytes, &s.ModWork, &s.DemodWork, &s.Prob}
			for _, p := range vals {
				u, err := d.readU64()
				if err != nil {
					return nil, err
				}
				*p = math.Float64frombits(u)
			}
			if s.Failures, err = d.readU64(); err != nil {
				return nil, err
			}
		}
		return m, nil
	case MsgPlan:
		m := &Plan{}
		var err error
		if m.Handler, err = d.readString(); err != nil {
			return nil, err
		}
		if m.Version, err = d.readU64(); err != nil {
			return nil, err
		}
		ns, err := d.readU32()
		if err != nil {
			return nil, err
		}
		if int64(ns) > int64(d.Remaining())/4 {
			return nil, fmt.Errorf("wire: split count %d exceeds remaining payload", ns)
		}
		m.Split = make([]int32, ns)
		for i := range m.Split {
			v, err := d.readU32()
			if err != nil {
				return nil, err
			}
			m.Split[i] = int32(v)
		}
		np, err := d.readU32()
		if err != nil {
			return nil, err
		}
		if int64(np) > int64(d.Remaining())/4 {
			return nil, fmt.Errorf("wire: profile count %d exceeds remaining payload", np)
		}
		m.Profile = make([]int32, np)
		for i := range m.Profile {
			v, err := d.readU32()
			if err != nil {
				return nil, err
			}
			m.Profile[i] = int32(v)
		}
		return m, nil
	case MsgHeartbeat:
		m := &Heartbeat{}
		var err error
		if m.Seq, err = d.readU64(); err != nil {
			return nil, err
		}
		// Trailing fields: absent on legacy frames (flags stay false),
		// otherwise a flag bitmask followed by the flagged fields in bit
		// order (ack, then echo). Unknown bits are tolerated — a future
		// revision's extra fields simply go unread, like trailing bytes
		// always have on control frames.
		if d.Remaining() > 0 {
			flag, err := d.readByte()
			if err != nil {
				return nil, err
			}
			if flag&hbFlagAck != 0 {
				if m.AckSeq, err = d.readU64(); err != nil {
					return nil, err
				}
				m.HasAck = true
			}
			if flag&hbFlagEcho != 0 {
				if m.EchoSeq, err = d.readU64(); err != nil {
					return nil, err
				}
				m.HasEcho = true
			}
		}
		return m, nil
	case MsgAck:
		m := &Ack{}
		var err error
		if m.Seq, err = d.readU64(); err != nil {
			return nil, err
		}
		return m, nil
	case MsgRetransmit:
		m := &Retransmit{}
		var err error
		if m.From, err = d.readU64(); err != nil {
			return nil, err
		}
		if m.To, err = d.readU64(); err != nil {
			return nil, err
		}
		if m.To < m.From {
			return nil, fmt.Errorf("wire: retransmit range [%d, %d] is inverted", m.From, m.To)
		}
		return m, nil
	case MsgStreamStart:
		m := &StreamStart{}
		var err error
		if m.Epoch, err = d.readU64(); err != nil {
			return nil, err
		}
		if m.Epoch == 0 {
			return nil, fmt.Errorf("wire: stream start with zero epoch")
		}
		return m, nil
	case MsgLost:
		m := &Lost{}
		var err error
		if m.From, err = d.readU64(); err != nil {
			return nil, err
		}
		if m.To, err = d.readU64(); err != nil {
			return nil, err
		}
		if m.To < m.From {
			return nil, fmt.Errorf("wire: lost range [%d, %d] is inverted", m.From, m.To)
		}
		return m, nil
	case MsgNack:
		m := &Nack{}
		var err error
		if m.Handler, err = d.readString(); err != nil {
			return nil, err
		}
		if m.Seq, err = d.readU64(); err != nil {
			return nil, err
		}
		pse, err := d.readU32()
		if err != nil {
			return nil, err
		}
		m.PSEID = int32(pse)
		class, err := d.readU32()
		if err != nil {
			return nil, err
		}
		m.Class = NackClass(class)
		return m, nil
	case MsgSubscribe:
		m := &Subscribe{}
		var err error
		if m.Protocol, err = d.readU32(); err != nil {
			return nil, err
		}
		if m.Subscriber, err = d.readString(); err != nil {
			return nil, err
		}
		if m.Channel, err = d.readString(); err != nil {
			return nil, err
		}
		if m.Handler, err = d.readString(); err != nil {
			return nil, err
		}
		if m.Source, err = d.readString(); err != nil {
			return nil, err
		}
		if m.CostModel, err = d.readString(); err != nil {
			return nil, err
		}
		nn, err := d.readU32()
		if err != nil {
			return nil, err
		}
		// Each native name costs at least its 4-byte length prefix.
		if int64(nn) > int64(d.Remaining())/4 {
			return nil, fmt.Errorf("wire: native count %d exceeds remaining payload", nn)
		}
		for i := uint32(0); i < nn; i++ {
			n, err := d.readString()
			if err != nil {
				return nil, err
			}
			m.Natives = append(m.Natives, n)
		}
		// Revision-5 trailing fields: absent on legacy handshakes, which
		// decode as best-effort with no resume point. ResumeEpoch is a
		// later addition with its own guard, so handshakes from earlier
		// revision-5 builds decode with epoch 0 (no stream adopted).
		if d.Remaining() > 0 {
			if m.Reliability, err = d.readU32(); err != nil {
				return nil, err
			}
			if m.ResumeSeq, err = d.readU64(); err != nil {
				return nil, err
			}
			if d.Remaining() > 0 {
				if m.ResumeEpoch, err = d.readU64(); err != nil {
					return nil, err
				}
			}
		}
		return m, nil
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", data[0])
	}
}

// unmarshalBatch splits a batch payload into its entry frames without
// copying. Every embedded length is clamped against the bytes actually
// present, so a corrupt count or entry length fails fast instead of forcing
// an allocation the input cannot back.
func unmarshalBatch(data []byte) (*Batch, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("wire: batch header truncated")
	}
	count := binary.LittleEndian.Uint32(data[:4])
	data = data[4:]
	// Each entry costs at least a 4-byte length prefix plus a 1-byte
	// message tag.
	if int64(count) > int64(len(data))/5 {
		return nil, fmt.Errorf("wire: batch count %d exceeds remaining payload", count)
	}
	b := &Batch{Entries: make([][]byte, 0, count)}
	for i := uint32(0); i < count; i++ {
		if len(data) < 4 {
			return nil, fmt.Errorf("wire: batch entry %d header truncated", i)
		}
		n := binary.LittleEndian.Uint32(data[:4])
		data = data[4:]
		if int64(n) > int64(len(data)) {
			return nil, fmt.Errorf("wire: batch entry %d length %d exceeds remaining %d", i, n, len(data))
		}
		if n == 0 {
			return nil, fmt.Errorf("wire: batch entry %d is empty", i)
		}
		b.Entries = append(b.Entries, data[:n:n])
		data = data[n:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("wire: batch has %d trailing bytes", len(data))
	}
	return b, nil
}
