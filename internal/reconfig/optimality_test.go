package reconfig_test

import (
	"math/rand"
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/partition"
	"methodpart/internal/reconfig"
)

// bruteForceBest enumerates every subset of PSE ids, keeps the valid cuts,
// and returns the minimum total capacity — ground truth for the min-cut.
func bruteForceBest(t *testing.T, c *partition.Compiled, u *reconfig.Unit, stats map[int32]costmodel.Stat) int64 {
	t.Helper()
	n := c.NumPSEs()
	if n > 16 {
		t.Fatalf("brute force infeasible for %d PSEs", n)
	}
	best := int64(-1)
	for mask := 1; mask < 1<<n; mask++ {
		var ids []int32
		var cost int64
		for id := 0; id < n; id++ {
			if mask&(1<<id) != 0 {
				ids = append(ids, int32(id))
				cost += u.Capacity(int32(id), stats)
			}
		}
		if c.ValidateSplitSet(ids) != nil {
			continue
		}
		if best < 0 || cost < best {
			best = cost
		}
	}
	if best < 0 {
		t.Fatal("no valid cut exists")
	}
	return best
}

// TestMinCutOptimality: across random profiled capacities, the plan the
// reconfiguration unit selects costs exactly the brute-force optimum.
// (The selected set need not be identical — ties — but its total capacity
// must be.)
func TestMinCutOptimality(t *testing.T) {
	// Use the two-transform image handler: a 6-PSE ladder with branching.
	unit := imaging.RichHandlerUnit(100)
	prog, _ := unit.Program(imaging.RichHandlerName)
	classes, err := unit.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	oracle, _ := imaging.Builtins()
	c, err := partition.Compile(prog, classes, oracle, costmodel.NewDataSize())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("handler has %d PSEs", c.NumPSEs())

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		stats := make(map[int32]costmodel.Stat, c.NumPSEs())
		for id := int32(0); id < int32(c.NumPSEs()); id++ {
			stats[id] = costmodel.Stat{
				Count: 10,
				Prob:  1,
				Bytes: float64(1 + rng.Intn(100000)),
			}
		}
		u := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
		plan, _, err := u.SelectPlan(stats)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := c.ValidateSplitSet(plan.SplitIDs()); err != nil {
			t.Fatalf("trial %d: selected plan invalid: %v", trial, err)
		}
		var got int64
		for _, id := range plan.SplitIDs() {
			got += u.Capacity(id, stats)
		}
		want := bruteForceBest(t, c, u, stats)
		if got != want {
			t.Errorf("trial %d: selected cut costs %d, optimum is %d (plan %v)",
				trial, got, want, plan.SplitIDs())
		}
	}
}

// TestMinCutOptimalityExecTime repeats the optimality check under the
// exec-time capacities (bottleneck-based, very different magnitudes).
func TestMinCutOptimalityExecTime(t *testing.T) {
	unit := imaging.RichHandlerUnit(100)
	prog, _ := unit.Program(imaging.RichHandlerName)
	classes, _ := unit.ClassTable()
	oracle, _ := imaging.Builtins()
	c, err := partition.Compile(prog, classes, oracle, costmodel.NewExecTime())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPSEs() > 16 {
		t.Skipf("PSE set too large for brute force: %d", c.NumPSEs())
	}
	rng := rand.New(rand.NewSource(7))
	env := costmodel.Environment{SenderSpeed: 1000, ReceiverSpeed: 300, Bandwidth: 500, LatencyMS: 1}
	for trial := 0; trial < 100; trial++ {
		total := 10000 + rng.Float64()*50000
		stats := make(map[int32]costmodel.Stat, c.NumPSEs())
		for id := int32(0); id < int32(c.NumPSEs()); id++ {
			mod := rng.Float64() * total
			stats[id] = costmodel.Stat{
				Count:     10,
				Prob:      1,
				Bytes:     float64(1 + rng.Intn(50000)),
				ModWork:   mod,
				DemodWork: total - mod,
			}
		}
		u := reconfig.NewUnit(c, env)
		plan, _, err := u.SelectPlan(stats)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var got int64
		for _, id := range plan.SplitIDs() {
			got += u.Capacity(id, stats)
		}
		want := bruteForceBest(t, c, u, stats)
		if got != want {
			t.Errorf("trial %d: selected cut costs %d, optimum is %d", trial, got, want)
		}
	}
}
