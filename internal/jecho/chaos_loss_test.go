package jecho_test

import (
	"testing"
	"time"

	"methodpart/internal/imaging"
	"methodpart/internal/jecho"
	"methodpart/internal/partition"
	"methodpart/internal/transport"
)

// lossSession returns the publisher's single live session, waiting for one
// whose id differs from before (the post-reconnect replacement).
func lossSession(t *testing.T, pub *jecho.Publisher, beforeID string) jecho.SubscriptionInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if info, ok := theSession(pub); ok && info.ID != beforeID {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("no fresh session after the cut (subs=%+v)", pub.Subscriptions())
		}
		time.Sleep(time.Millisecond)
	}
}

// waitDeliveryAccounted polls until every staged event is accounted for —
// processed by the handler or loudly declared lost — and the identity
//
//	staged == processed + dataLoss
//
// holds exactly. Because processed counts post-dedup handler deliveries,
// the equality simultaneously proves no event was delivered twice.
func waitDeliveryAccounted(t *testing.T, pub *jecho.Publisher, sub *jecho.Subscriber) (staged, processed, dataLoss uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		info, ok := theSession(pub)
		processed = sub.Processed()
		dataLoss = sub.Metrics().DataLoss
		if ok && info.StagedSeq == processed+dataLoss {
			return info.StagedSeq, processed, dataLoss
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivery never converged: staged=%d processed=%d dataLoss=%d",
				info.StagedSeq, processed, dataLoss)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosReconnectAtLeastOnceExactDelivery is the tentpole acceptance
// scenario: an at-least-once subscription with an ample replay ring is
// severed mid-stream, resubscribes, resumes from its last contiguous seq,
// and ends with *every* staged event processed exactly once — zero
// DataLoss, zero demod failures — even though the reconnect handshake
// pushed a plan flip and the replayed frames were modulated under the old
// plan (replay ships original self-describing frames, so a flip mid-replay
// cannot desync the demodulator). Batching is on, so sequence envelopes
// also ride inside batch frames.
func TestChaosReconnectAtLeastOnceExactDelivery(t *testing.T) {
	flaky := transport.NewFlaky(transport.NewMem(), transport.FaultPlan{Seed: 1})
	pub := chaosPublisher(t, flaky, jecho.PublisherConfig{
		FeedbackEvery:     5,
		ReplayRingBytes:   8 << 20,
		BatchBytes:        4096,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
	})
	sub := chaosSubscribe(t, flaky, pub.Addr(), jecho.SubscriberConfig{
		Name:              "loss-exact",
		Reliability:       jecho.AtLeastOnce,
		AckEvery:          8,
		ReconfigEvery:     5,
		Resubscribe:       true,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
	})

	seq := int64(0)
	publish := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := pub.Publish(imaging.NewFrame(200, 200, seq)); err != nil {
				t.Fatal(err)
			}
			seq++
			time.Sleep(time.Millisecond)
		}
	}

	publish(60)
	before, ok := theSession(pub)
	if !ok {
		t.Fatal("no session after warmup")
	}
	if !before.Reliable {
		t.Fatal("session did not negotiate at-least-once delivery")
	}

	if n := flaky.SeverAll(); n == 0 {
		t.Fatal("SeverAll cut nothing")
	}
	after := lossSession(t, pub, before.ID)
	if after.PlanVersion <= before.PlanVersion {
		t.Errorf("resync did not flip the plan across the reconnect (%d -> %d)",
			before.PlanVersion, after.PlanVersion)
	}
	// Keep the stream moving through the replay window: reconfiguration
	// stays armed, so plan pushes interleave with replayed frames.
	publish(60)

	staged, processed, dataLoss := waitDeliveryAccounted(t, pub, sub)
	if dataLoss != 0 {
		t.Errorf("ample ring still lost %d events", dataLoss)
	}
	if processed != staged {
		t.Errorf("processed %d of %d staged events", processed, staged)
	}
	m := sub.Metrics()
	if m.DemodFailures != 0 {
		t.Errorf("replay across the plan flip caused %d demod failures", m.DemodFailures)
	}
	if m.DataLoss != 0 {
		t.Errorf("DataLoss = %d on a repairable stream", m.DataLoss)
	}
	if m.AcksSent == 0 {
		t.Error("subscriber never acked")
	}
	if m.Reconnects == 0 {
		t.Error("subscriber recorded no reconnects")
	}
	if pm, ok := theSession(pub); ok && pm.StagedSeq == 0 {
		t.Error("publisher staged nothing")
	}
}

// TestChaosReconnectUndersizedRingCountsLoss is the loud-loss half of the
// contract: the same sever/resume cycle against a deliberately undersized
// replay ring. The subscriber is slowed so unacked frames pile up and get
// evicted before the cut; the resume replay then has an evicted prefix
// which must surface as a counted DataLoss — and the accounting identity
// staged == processed + dataLoss must still hold exactly: loss is loud,
// bounded, and never double- or under-counted.
func TestChaosReconnectUndersizedRingCountsLoss(t *testing.T) {
	flaky := transport.NewFlaky(transport.NewMem(), transport.FaultPlan{Seed: 2})
	pub := chaosPublisher(t, flaky, jecho.PublisherConfig{
		FeedbackEvery:     5,
		ReplayRingBytes:   2048, // a frame or two: eviction is the norm
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
	})
	slow := make(chan struct{}, 1)
	sub := chaosSubscribe(t, flaky, pub.Addr(), jecho.SubscriberConfig{
		Name:              "loss-ring",
		Reliability:       jecho.AtLeastOnce,
		AckEvery:          4,
		ReconfigEvery:     1 << 30, // keep the plan still: this test is about loss accounting
		Resubscribe:       true,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
		OnResult: func(*partition.Result) {
			select {
			case <-slow:
				time.Sleep(5 * time.Millisecond)
			default:
			}
		},
	})

	seq := int64(0)
	publish := func(n int, pace time.Duration) {
		for i := 0; i < n; i++ {
			if _, err := pub.Publish(imaging.NewFrame(64, 64, seq)); err != nil {
				t.Fatal(err)
			}
			seq++
			time.Sleep(pace)
		}
	}

	publish(20, time.Millisecond)
	before, ok := theSession(pub)
	if !ok {
		t.Fatal("no session after warmup")
	}

	// Slow the handler, burst unpaced so unacked frames overflow the tiny
	// ring, then cut the link while the backlog is in flight.
	for i := 0; i < cap(slow); i++ {
		slow <- struct{}{}
	}
	publish(40, 0)
	if n := flaky.SeverAll(); n == 0 {
		t.Fatal("SeverAll cut nothing")
	}
	lossSession(t, pub, before.ID)
	publish(20, time.Millisecond)

	staged, processed, dataLoss := waitDeliveryAccounted(t, pub, sub)
	t.Logf("staged=%d processed=%d dataLoss=%d", staged, processed, dataLoss)
	m := sub.Metrics()
	if m.DemodFailures != 0 {
		t.Errorf("loss accounting caused %d demod failures", m.DemodFailures)
	}
	// The identity is asserted by waitDeliveryAccounted; the stream must
	// also still be live past the loss.
	processedBefore := sub.Processed()
	publish(10, time.Millisecond)
	waitProcessedAbove(t, sub, processedBefore)
}

// TestChaosPublisherRestartFreshStreamNoSilentDrop covers the fresh-stream
// reconnect: the publisher restarts, so the resubscribing at-least-once
// subscriber — whose dedup state says "I have everything through seq 30" —
// meets a brand-new stream re-sequenced from 1. The StreamStart epoch
// handshake must make it reset that state, so the new stream's first 30
// events are processed instead of being silently dropped as duplicates of
// the dead stream's numbering, and the break must be counted on
// StreamResets.
func TestChaosPublisherRestartFreshStreamNoSilentDrop(t *testing.T) {
	mem := transport.NewMem()
	pubCfg := jecho.PublisherConfig{
		Addr:              "mem:restart",
		FeedbackEvery:     5,
		ReplayRingBytes:   8 << 20,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
	}
	pub := chaosPublisher(t, mem, pubCfg)
	sub := chaosSubscribe(t, mem, pub.Addr(), jecho.SubscriberConfig{
		Name:              "restart",
		Reliability:       jecho.AtLeastOnce,
		AckEvery:          4,
		ReconfigEvery:     1 << 30, // keep the plan still: this test is about stream identity
		Resubscribe:       true,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
	})

	seq := int64(0)
	publish := func(p *jecho.Publisher, n int) {
		for i := 0; i < n; i++ {
			if _, err := p.Publish(imaging.NewFrame(64, 64, seq)); err != nil {
				t.Fatal(err)
			}
			seq++
			time.Sleep(time.Millisecond)
		}
	}

	publish(pub, 30)
	// Old stream fully drained before the restart: everything the first
	// publisher staged was processed, nothing lost.
	if _, _, dataLoss := waitDeliveryAccounted(t, pub, sub); dataLoss != 0 {
		t.Fatalf("pre-restart phase lost %d events", dataLoss)
	}
	if m := sub.Metrics(); m.StreamResets != 0 {
		t.Fatalf("stream reset counted before any restart: %d", m.StreamResets)
	}
	processedBefore := sub.Processed()

	// Restart: the replacement publisher relistens on the same address with
	// no memory of the old stream — its relState is fresh and re-sequences
	// from 1 while the subscriber still believes it has everything through
	// the old stream's contig.
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	pub2 := chaosPublisher(t, mem, pubCfg)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := theSession(pub2); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never resubscribed to the restarted publisher")
		}
		time.Sleep(time.Millisecond)
	}

	publish(pub2, 30)
	// Every event the fresh stream staged must reach the handler: before
	// the epoch handshake they were dropped as duplicates of the dead
	// stream's numbering. The accounting identity runs against the *new*
	// stream's staged count and this phase's deliveries only.
	deadline = time.Now().Add(15 * time.Second)
	for {
		info, ok := theSession(pub2)
		processed := sub.Processed() - processedBefore
		dataLoss := sub.Metrics().DataLoss
		if ok && info.StagedSeq > 0 && info.StagedSeq == processed+dataLoss {
			if dataLoss != 0 {
				t.Errorf("fresh stream on an ample ring lost %d events", dataLoss)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fresh stream never converged: staged=%d processed=%d dataLoss=%d (silent duplicate drop?)",
				info.StagedSeq, processed, dataLoss)
		}
		time.Sleep(time.Millisecond)
	}
	m := sub.Metrics()
	if m.StreamResets == 0 {
		t.Error("fresh stream adopted without counting a StreamReset")
	}
	if m.DemodFailures != 0 {
		t.Errorf("restart caused %d demod failures", m.DemodFailures)
	}
}

// TestChaosReconnectBestEffortUnchanged pins the opt-in boundary: a
// best-effort subscription through the same sever/resubscribe cycle uses no
// reliability machinery at all — no envelopes, no acks, no replay, no ring
// — and its session reports Reliable == false with nothing staged.
func TestChaosReconnectBestEffortUnchanged(t *testing.T) {
	flaky := transport.NewFlaky(transport.NewMem(), transport.FaultPlan{Seed: 3})
	pub := chaosPublisher(t, flaky, jecho.PublisherConfig{
		FeedbackEvery:     5,
		ReplayRingBytes:   8 << 20, // configured but must stay unused
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
	})
	sub := chaosSubscribe(t, flaky, pub.Addr(), jecho.SubscriberConfig{
		Name:              "loss-besteffort",
		ReconfigEvery:     5,
		Resubscribe:       true,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      time.Second,
	})

	seq := int64(0)
	publish := func(n int) {
		for i := 0; i < n; i++ {
			_, _ = pub.Publish(imaging.NewFrame(64, 64, seq))
			seq++
			time.Sleep(time.Millisecond)
		}
	}

	publish(40)
	before, ok := theSession(pub)
	if !ok {
		t.Fatal("no session after warmup")
	}
	if before.Reliable || before.StagedSeq != 0 || before.RingFrames != 0 {
		t.Fatalf("best-effort session carries reliability state: %+v", before)
	}
	processedBefore := sub.Processed()
	if n := flaky.SeverAll(); n == 0 {
		t.Fatal("SeverAll cut nothing")
	}
	lossSession(t, pub, before.ID)
	publish(40)
	waitProcessedAbove(t, sub, processedBefore)

	m := sub.Metrics()
	if m.AcksSent != 0 || m.Replayed != 0 || m.DataLoss != 0 || m.DuplicatesDropped != 0 {
		t.Errorf("best-effort stream touched reliability counters: %+v", m)
	}
	if info, ok := theSession(pub); ok && (info.Reliable || info.StagedSeq != 0) {
		t.Errorf("post-reconnect best-effort session carries reliability state: %+v", info)
	}
}
