package jecho

import (
	"testing"
	"time"

	"methodpart/internal/obsv"
	"methodpart/internal/partition"
	"methodpart/internal/wire"
)

// These tests pin the observability overhead budget on the modulator and
// demodulator hot paths (DESIGN.md §9): with tracing disabled — a nil or
// paused tracer — instrumenting one published event must not allocate.
// The histograms stay on unconditionally, so they are inside the budget.

func TestObservePublishDisabledAllocs(t *testing.T) {
	h := newPSEHistograms(4)
	out := &partition.Output{
		SplitPSE:  1,
		WireBytes: 512,
		ModWork:   100,
		Cont:      &wire.Continuation{Seq: 7},
	}
	var nilTr *obsv.Tracer
	if n := testing.AllocsPerRun(500, func() {
		observePublish(nilTr, h, "images", "s#1", 3, out, time.Millisecond)
	}); n != 0 {
		t.Fatalf("observePublish with nil tracer allocates %.1f per event, want 0", n)
	}
	tr := obsv.NewTracer(8)
	tr.SetEnabled(false)
	if n := testing.AllocsPerRun(500, func() {
		observePublish(tr, h, "images", "s#1", 3, out, time.Millisecond)
	}); n != 0 {
		t.Fatalf("observePublish with disabled tracer allocates %.1f per event, want 0", n)
	}
}

// Even enabled, the publish path allocates nothing: the Detail strings are
// constants and Tracer.Emit copies into a preallocated ring slot.
func TestObservePublishEnabledAllocs(t *testing.T) {
	h := newPSEHistograms(4)
	out := &partition.Output{
		SplitPSE:  1,
		WireBytes: 512,
		ModWork:   100,
		Cont:      &wire.Continuation{Seq: 7},
	}
	tr := obsv.NewTracer(64)
	if n := testing.AllocsPerRun(500, func() {
		observePublish(tr, h, "images", "s#1", 3, out, time.Millisecond)
	}); n != 0 {
		t.Fatalf("observePublish with enabled tracer allocates %.1f per event, want 0", n)
	}
}

func TestObserveDemodDisabledAllocs(t *testing.T) {
	h := newPSEHistograms(4)
	var nilTr *obsv.Tracer
	if n := testing.AllocsPerRun(500, func() {
		observeDemod(nilTr, h, "images", "client", 7, 1, 512, 100, time.Millisecond)
	}); n != 0 {
		t.Fatalf("observeDemod with nil tracer allocates %.1f per event, want 0", n)
	}
}

func BenchmarkObservePublishDisabled(b *testing.B) {
	h := newPSEHistograms(4)
	out := &partition.Output{SplitPSE: 1, WireBytes: 512, ModWork: 100, Cont: &wire.Continuation{Seq: 7}}
	var nilTr *obsv.Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		observePublish(nilTr, h, "images", "s#1", 3, out, time.Millisecond)
	}
}

func BenchmarkObservePublishEnabled(b *testing.B) {
	h := newPSEHistograms(4)
	out := &partition.Output{SplitPSE: 1, WireBytes: 512, ModWork: 100, Cont: &wire.Continuation{Seq: 7}}
	tr := obsv.NewTracer(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		observePublish(tr, h, "images", "s#1", 3, out, time.Millisecond)
	}
}
