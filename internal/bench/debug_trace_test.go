package bench

import (
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/mir/interp"
	"methodpart/internal/obsv"
	"methodpart/internal/simnet"
)

// TestTraceMixedAdaptation runs the MP variant under the mixed workload
// with the trace ring attached and checks the stream is coherent: one
// publish-kind event per frame in sequence order, demod events paired to
// unsuppressed publishes, and plan flips visible as split changes in the
// publish stream. It doubles as a diagnostic view of adaptation lag
// (-v prints the per-frame split decisions).
func TestTraceMixedAdaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic trace")
	}
	cfg := DefaultImageConfig()
	cfg.Frames = 60
	f, err := newImageFixture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	server := simnet.NewHost("server", cfg.ServerSpeed)
	client := simnet.NewHost("client", cfg.ClientSpeed)
	link := &simnet.Link{BytesPerMS: cfg.LinkBytesPerMS, LatencyMS: cfg.LinkLatencyMS}
	tr := obsv.NewTracer(4 * cfg.Frames)
	rc := RunConfig{
		Compiled:      f.c,
		SenderEnv:     interp.NewEnv(f.classes, f.builtins()),
		ReceiverEnv:   interp.NewEnv(f.classes, f.builtins()),
		Sender:        server,
		Receiver:      client,
		Link:          link,
		Frames:        cfg.Frames,
		Workload:      imageWorkload(cfg, ScenarioMixed),
		OverheadBytes: 64,
		Warmup:        5,
		Adaptive:      true,
		Nominal: costmodel.Environment{
			SenderSpeed:   cfg.ServerSpeed,
			ReceiverSpeed: cfg.ClientSpeed,
			Bandwidth:     cfg.LinkBytesPerMS,
			LatencyMS:     cfg.LinkLatencyMS,
		},
		Tracer: tr,
	}
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("trace ring overflowed (%d dropped); capacity miscalculated", tr.Dropped())
	}

	events := tr.Snapshot()
	published := map[uint64]obsv.Event{}
	var lastSeq uint64
	flips := 0
	for _, ev := range events {
		switch ev.Kind {
		case obsv.EvPublish, obsv.EvSuppress:
			if ev.EventSeq != lastSeq+1 {
				t.Fatalf("publish stream out of order: seq %d after %d", ev.EventSeq, lastSeq)
			}
			lastSeq = ev.EventSeq
			published[ev.EventSeq] = ev
			t.Logf("frame %3d split=%2d bytes=%6d done=%8.1fms",
				ev.EventSeq-1, ev.PSE, ev.Bytes, float64(ev.Value)/1e6)
		case obsv.EvDemod:
			pub, ok := published[ev.EventSeq]
			if !ok {
				t.Fatalf("demod for seq %d without a publish", ev.EventSeq)
			}
			if pub.Kind == obsv.EvSuppress {
				t.Fatalf("demod for suppressed seq %d", ev.EventSeq)
			}
			if pub.PSE != ev.PSE {
				t.Fatalf("seq %d split mismatch: publish pse %d, demod pse %d", ev.EventSeq, pub.PSE, ev.PSE)
			}
		case obsv.EvPlanFlip:
			flips++
		}
	}
	if int(lastSeq) != cfg.Frames {
		t.Fatalf("traced %d frames, want %d", lastSeq, cfg.Frames)
	}
	if res.PlanSwitches != flips {
		t.Fatalf("result reports %d plan switches, trace shows %d flips", res.PlanSwitches, flips)
	}
	t.Logf("fps=%.2f switches=%d final=%s traced=%d events", res.FPS, res.PlanSwitches, res.FinalPlan, len(events))
}
