package analysis

import (
	"sort"

	"methodpart/internal/mir"
)

// NativeOracle answers whether a callable is host-native. Native calls pin
// their instruction to the receiver (StopNodes). interp.Registry satisfies
// this interface.
type NativeOracle interface {
	// IsNative reports whether the named function must run at the receiver.
	IsNative(fn string) bool
}

// MarkStopNodes identifies the nodes that must reside at the receiver side
// (§3): return instructions, instructions touching globals (mutable outside
// the handler), and invocations of native methods. The virtual exit node is
// also a stop node.
func MarkStopNodes(ug *UnitGraph, oracle NativeOracle) map[int]bool {
	stops := make(map[int]bool)
	for i := range ug.Prog.Instrs {
		in := &ug.Prog.Instrs[i]
		switch in.Op {
		case mir.OpReturn:
			stops[i] = true
		case mir.OpGetGlobal, mir.OpSetGlobal:
			stops[i] = true
		case mir.OpCall:
			if oracle == nil || oracle.IsNative(in.Fn) {
				stops[i] = true
			}
		}
	}
	stops[ug.Exit] = true
	return stops
}

// DefaultMaxTargetPaths bounds TargetPath enumeration for pathological
// control flow.
const DefaultMaxTargetPaths = 4096

// TargetPaths enumerates all paths from the StartNode that end at the first
// StopNode (or the exit) they reach, with no intermediate StopNodes —
// the paper's TargetPath definition.
func TargetPaths(ug *UnitGraph, stops map[int]bool, maxPaths int) ([][]int, error) {
	if maxPaths <= 0 {
		maxPaths = DefaultMaxTargetPaths
	}
	paths, err := ug.G.PathsBetween(ug.Start, stops, maxPaths)
	if err != nil {
		return nil, err
	}
	sort.Slice(paths, func(a, b int) bool {
		pa, pb := paths[a], paths[b]
		for i := 0; i < len(pa) && i < len(pb); i++ {
			if pa[i] != pb[i] {
				return pa[i] < pb[i]
			}
		}
		return len(pa) < len(pb)
	})
	return paths, nil
}

// PathEdges converts a node path into its consecutive edges.
func PathEdges(path []int) []Edge {
	if len(path) < 2 {
		return nil
	}
	out := make([]Edge, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		out[i] = Edge{From: path[i], To: path[i+1]}
	}
	return out
}
