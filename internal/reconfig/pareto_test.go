package reconfig_test

import (
	"fmt"
	"math/rand"
	"testing"

	"methodpart/internal/costmodel"
	"methodpart/internal/imaging"
	"methodpart/internal/partition"
	"methodpart/internal/reconfig"
)

// compileRich compiles the two-transform image handler (a 6-PSE ladder
// with branching) — the richest convex-cut space in the repo.
func compileRich(t *testing.T, model costmodel.Model) *partition.Compiled {
	t.Helper()
	unit := imaging.RichHandlerUnit(100)
	prog, _ := unit.Program(imaging.RichHandlerName)
	classes, err := unit.ClassTable()
	if err != nil {
		t.Fatal(err)
	}
	oracle, _ := imaging.Builtins()
	c, err := partition.Compile(prog, classes, oracle, model)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFrontProperties is the front's property test: across random profiled
// statistics, every selection's front (a) is non-empty and contains the
// balanced min-cut's point exactly once, (b) contains no point dominated
// by another front point — except possibly the pinned balanced point —
// and (c) only valid convex cuts, with the chosen index consistent.
func TestFrontProperties(t *testing.T) {
	c := compileRich(t, costmodel.NewDataSize())
	rng := rand.New(rand.NewSource(7))
	policies := []reconfig.SLOPolicy{
		reconfig.Balanced, reconfig.LatencyFirst, reconfig.CostFirst, reconfig.ReceiverWeak,
	}
	for trial := 0; trial < 100; trial++ {
		stats := make(map[int32]costmodel.Stat, c.NumPSEs())
		for id := int32(0); id < int32(c.NumPSEs()); id++ {
			stats[id] = costmodel.Stat{
				Count:     10,
				Prob:      1,
				Bytes:     float64(1 + rng.Intn(100000)),
				ModWork:   float64(rng.Intn(50000)),
				DemodWork: float64(rng.Intn(50000)),
				Failures:  uint64(rng.Intn(3)),
			}
		}
		u := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
		u.Policy = policies[trial%len(policies)]
		plan, _, err := u.SelectPlan(stats)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ex := u.LastExplanation()
		if ex == nil || len(ex.Front) == 0 {
			t.Fatalf("trial %d: no front", trial)
		}
		balanced := 0
		for i, p := range ex.Front {
			if err := c.ValidateSplitSet(p.Cut); err != nil {
				t.Errorf("trial %d: front[%d] cut %v invalid: %v", trial, i, p.Cut, err)
			}
			if p.Balanced {
				balanced++
			}
			for j, q := range ex.Front {
				if i != j && q.Vec.Dominates(p.Vec) && !p.Balanced {
					t.Errorf("trial %d: front[%d] %v dominated by front[%d] %v",
						trial, i, p, j, q)
				}
			}
		}
		if balanced != 1 {
			t.Errorf("trial %d: %d balanced points on the front, want exactly 1", trial, balanced)
		}
		if ex.Chosen < 0 || ex.Chosen >= len(ex.Front) {
			t.Fatalf("trial %d: chosen index %d out of range", trial, ex.Chosen)
		}
		cp := ex.Front[ex.Chosen]
		if !cp.Chosen {
			t.Errorf("trial %d: front[%d] not flagged chosen", trial, ex.Chosen)
		}
		if fmt.Sprint(cp.Cut) != fmt.Sprint(ex.Cut) || fmt.Sprint(plan.SplitIDs()) != fmt.Sprint(ex.Cut) {
			t.Errorf("trial %d: chosen point %v != explanation cut %v != plan %v",
				trial, cp.Cut, ex.Cut, plan.SplitIDs())
		}
	}
}

// TestBalancedPolicyMatchesLegacyMinCut: the zero-value policy must choose
// the balanced (scalar min-cut) point itself, preserving pre-front
// behavior bit for bit.
func TestBalancedPolicyMatchesLegacyMinCut(t *testing.T) {
	c := compileRich(t, costmodel.NewDataSize())
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		stats := make(map[int32]costmodel.Stat, c.NumPSEs())
		for id := int32(0); id < int32(c.NumPSEs()); id++ {
			stats[id] = costmodel.Stat{Count: 10, Prob: 1, Bytes: float64(1 + rng.Intn(100000))}
		}
		u := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
		if _, _, err := u.SelectPlan(stats); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ex := u.LastExplanation()
		if !ex.Front[ex.Chosen].Balanced {
			t.Fatalf("trial %d: balanced policy chose a non-balanced point %+v",
				trial, ex.Front[ex.Chosen])
		}
	}
}

// TestPoliciesPickDifferentPoints constructs statistics where the front
// forks — an early cut that is latency-optimal (slow sender) and a late
// cut that is bytes-optimal — and checks each policy lands on its own
// objective's point.
func TestPoliciesPickDifferentPoints(t *testing.T) {
	c := compilePush(t, costmodel.NewDataSize())
	preID := pse(t, c, 2, 3)
	postID := pse(t, c, 4, 5)
	filterID := pse(t, c, 1, 7)
	rawID := partition.RawPSEID

	// Slow sender: resizing before shipping costs 450 virtual ms.
	env := costmodel.Environment{SenderSpeed: 100, ReceiverSpeed: 1000, Bandwidth: 1000, LatencyMS: 1}
	stats := map[int32]costmodel.Stat{
		rawID:    {Count: 100, Prob: 1, Bytes: 45000, ModWork: 0, DemodWork: 50000},
		preID:    {Count: 100, Prob: 1, Bytes: 40000, ModWork: 100, DemodWork: 49900},
		postID:   {Count: 100, Prob: 1, Bytes: 10000, ModWork: 45000, DemodWork: 5000},
		filterID: {Count: 100, Prob: 0},
	}

	cutFor := func(policy reconfig.SLOPolicy) []int32 {
		u := reconfig.NewUnit(c, env)
		u.Policy = policy
		plan, _, err := u.SelectPlan(stats)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		return plan.SplitIDs()
	}

	latCut := cutFor(reconfig.LatencyFirst)
	costCut := cutFor(reconfig.CostFirst)
	weakCut := cutFor(reconfig.ReceiverWeak)
	if !contains(latCut, preID) {
		t.Errorf("latency-first chose %v, want the pre-resize cut (PSE %d)", latCut, preID)
	}
	if !contains(costCut, postID) {
		t.Errorf("cost-first chose %v, want the post-resize cut (PSE %d)", costCut, postID)
	}
	if fmt.Sprint(latCut) == fmt.Sprint(costCut) {
		t.Errorf("policies collapsed to the same cut %v", latCut)
	}
	if !contains(weakCut, postID) {
		t.Errorf("receiver-weak chose %v, want the low-bytes/low-work cut (PSE %d)", weakCut, postID)
	}
}

// TestTrippedExcludedFromFront: a tripped PSE is priced at InfCapacity, so
// no front point may contain it.
func TestTrippedExcludedFromFront(t *testing.T) {
	c := compilePush(t, costmodel.NewDataSize())
	postID := pse(t, c, 4, 5)
	u := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
	u.SetTripped([]int32{postID})
	if _, _, err := u.SelectPlan(nil); err != nil {
		t.Fatal(err)
	}
	ex := u.LastExplanation()
	for _, p := range ex.Front {
		if contains(p.Cut, postID) {
			t.Errorf("front point %v contains tripped PSE %d", p.Cut, postID)
		}
	}
}

// TestPolicyFlipsCounter: consecutive selections that change the chosen
// cut increment PolicyFlips; stable selections do not.
func TestPolicyFlipsCounter(t *testing.T) {
	c := compilePush(t, costmodel.NewDataSize())
	preID := pse(t, c, 2, 3)
	postID := pse(t, c, 4, 5)
	filterID := pse(t, c, 1, 7)
	rawID := partition.RawPSEID
	u := reconfig.NewUnit(c, costmodel.DefaultEnvironment())

	large := map[int32]costmodel.Stat{
		rawID:  {Count: 100, Prob: 1, Bytes: 40100},
		preID:  {Count: 100, Prob: 1, Bytes: 40100},
		postID: {Count: 100, Prob: 1, Bytes: 10100},
	}
	small := map[int32]costmodel.Stat{
		rawID:  {Count: 100, Prob: 1, Bytes: 6500},
		preID:  {Count: 100, Prob: 1, Bytes: 6400},
		postID: {Count: 100, Prob: 1, Bytes: 10100},
	}
	_ = filterID
	for _, st := range []map[int32]costmodel.Stat{large, large, small, small} {
		if _, _, err := u.SelectPlan(st); err != nil {
			t.Fatal(err)
		}
	}
	if got := u.PolicyFlips(); got != 1 {
		t.Errorf("PolicyFlips = %d, want 1 (large→large→small→small)", got)
	}
}

func TestParseSLOPolicy(t *testing.T) {
	for _, name := range reconfig.PolicyNames() {
		p, err := reconfig.ParseSLOPolicy(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.String() != name {
			t.Errorf("round trip %q -> %v -> %q", name, p, p.String())
		}
	}
	if p, err := reconfig.ParseSLOPolicy(""); err != nil || p != reconfig.Balanced {
		t.Errorf("empty policy = %v, %v; want Balanced, nil", p, err)
	}
	if _, err := reconfig.ParseSLOPolicy("speed-demon"); err == nil {
		t.Error("unknown policy parsed without error")
	}
}

// TestEnvironmentRace is the -race regression for the SetEnvironment /
// Environment / SelectPlan data race: environment updates may arrive from
// a measurement goroutine while the endpoint goroutine selects plans.
func TestEnvironmentRace(t *testing.T) {
	c := compilePush(t, costmodel.NewDataSize())
	u := reconfig.NewUnit(c, costmodel.DefaultEnvironment())
	stats := map[int32]costmodel.Stat{
		partition.RawPSEID: {Count: 10, Prob: 1, Bytes: 1000},
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			env := costmodel.DefaultEnvironment()
			env.SenderSpeed = float64(100 + i)
			u.SetEnvironment(env)
			_ = u.Environment()
		}
	}()
	for i := 0; i < 300; i++ {
		if _, _, err := u.SelectPlan(stats); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

func contains(cut []int32, id int32) bool {
	for _, c := range cut {
		if c == id {
			return true
		}
	}
	return false
}
