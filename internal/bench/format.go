package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// CSVWriter wraps an io.Writer to make every Write* table render as CSV
// (title as a comment line, then header and data records) instead of the
// aligned human-readable layout — for piping experiment output into
// plotting tools.
type CSVWriter struct {
	// W receives the CSV bytes.
	W io.Writer
}

// Write implements io.Writer (pass-through for non-table output).
func (c CSVWriter) Write(p []byte) (int, error) { return c.W.Write(p) }

// writeTable renders rows with a header, column-aligned — or as CSV when
// the writer is a CSVWriter.
func writeTable(w io.Writer, title string, header []string, rows [][]string) {
	if cw, ok := w.(CSVWriter); ok {
		fmt.Fprintf(cw.W, "# %s\n", title)
		enc := csv.NewWriter(cw.W)
		_ = enc.Write(header)
		for _, row := range rows {
			_ = enc.Write(row)
		}
		enc.Flush()
		fmt.Fprintln(cw.W)
		return
	}
	fmt.Fprintf(w, "%s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		self := "n/a"
		if r.SelfSizeNS >= 0 {
			self = fmt.Sprintf("%.3f", r.SelfSizeNS/1000)
		}
		out = append(out, []string{
			r.Name,
			fmt.Sprintf("%d", r.SerializedSize),
			fmt.Sprintf("%.2f", r.SerializationNS/1000),
			fmt.Sprintf("%.2f", r.SizeCalcNS/1000),
			self,
		})
	}
	writeTable(w, "Table 1: Object serialization and size calculation costs",
		[]string{"Class of Objects", "Serialized size (B)", "Serialization (us)", "Size calc (us)", "Self-desc (us)"}, out)
}

// WriteTable2 renders Table 2.
func WriteTable2(w io.Writer, rows []Table2Row) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Variant.String(),
			fmt.Sprintf("%.2f", r.FPS[0]),
			fmt.Sprintf("%.2f", r.FPS[1]),
			fmt.Sprintf("%.2f", r.FPS[2]),
		})
	}
	writeTable(w, "Table 2: Runtime adaptation with Method Partitioning (avg frames/s, display 160x160)",
		[]string{"Implementation", "Small (80x80)", "Large (200x200)", "Mixed"}, out)
}

// WriteTable3 renders Table 3.
func WriteTable3(w io.Writer, rows []Table3Row) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Variant.String(),
			fmt.Sprintf("%.2f", r.PCToSun),
			fmt.Sprintf("%.2f", r.SunToPC),
		})
	}
	writeTable(w, "Table 3: Heterogeneous platforms (avg message processing time, ms)",
		[]string{"Implementation", "PC->Sun", "Sun->PC"}, out)
}

// WriteTable4 renders Table 4.
func WriteTable4(w io.Writer, rows []Table4Row) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%.1f/%.1f", r.Load.Producer, r.Load.Consumer),
			fmt.Sprintf("%.2f", r.MS[0]),
			fmt.Sprintf("%.2f", r.MS[1]),
			fmt.Sprintf("%.2f", r.MS[2]),
			fmt.Sprintf("%.2f", r.MS[3]),
		})
	}
	writeTable(w, "Table 4: Reducing program execution time (ms; avg of seeds; PLen=1000ms)",
		[]string{"ProdL/ConsL", "Consumer", "Producer", "Divided", "Method Partitioning"}, out)
}

// WriteFigure7 renders the Figure 7 series.
func WriteFigure7(w io.Writer, pts []Figure7Point) {
	out := make([][]string, 0, len(pts))
	for _, p := range pts {
		out = append(out, []string{
			fmt.Sprintf("%.1f", p.AProb),
			fmt.Sprintf("%.2f", p.MS[0]),
			fmt.Sprintf("%.2f", p.MS[1]),
			fmt.Sprintf("%.2f", p.MS[2]),
			fmt.Sprintf("%.2f", p.MS[3]),
		})
	}
	writeTable(w, "Figure 7: Consumer-side active-period probability sweep (ms; LIndex=0.8, PLen=1000ms)",
		[]string{"AProb", "Consumer", "Producer", "Divided", "Method Partitioning"}, out)
}

// WriteFigure8 renders the Figure 8 series.
func WriteFigure8(w io.Writer, pts []Figure8Point) {
	out := make([][]string, 0, len(pts))
	for _, p := range pts {
		out = append(out, []string{
			fmt.Sprintf("%.0f", p.PLenMS),
			fmt.Sprintf("%.2f", p.MS),
		})
	}
	writeTable(w, "Figure 8: Consumer-side expected period length sweep, MP version (ms; LIndex=0.8)",
		[]string{"PLen (ms)", "Method Partitioning"}, out)
}

// WriteClaims renders the headline claims summary.
func WriteClaims(w io.Writer, c *Claims) {
	fmt.Fprintf(w, "Headline claims (paper section 1)\n")
	fmt.Fprintf(w, "  MP vs manually optimized (static scenarios): within %.1f%% of the best manual version\n", c.StaticGapPct)
	fmt.Fprintf(w, "  MP vs non-optimal manual version (static):   up to %.0f%% better (paper: up to 223%%)\n", c.BestOverNonOptimalPct)
	fmt.Fprintf(w, "  MP vs non-adaptive versions (dynamics):      %.0f%% to %.0f%% better (paper: 22%% to 305%%)\n",
		c.DynamicMinPct, c.DynamicMaxPct)
	fmt.Fprintln(w)
}
