//go:build race

package wire

// raceEnabled reports whether the race detector is compiled in. Under it
// sync.Pool deliberately drops a fraction of Puts to widen the interleaving
// space, so the pooled encode path cannot be allocation-free and the
// zero-alloc guards skip themselves.
const raceEnabled = true
