package obsv

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: EvPublish, EventSeq: uint64(i + 1)})
	}
	if got := tr.Emitted(); got != 10 {
		t.Fatalf("Emitted() = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6 (10 emitted into a 4-slot ring)", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot() holds %d events, want 4", len(snap))
	}
	// Oldest events are the ones dropped: the ring retains the last four,
	// oldest first.
	for i, ev := range snap {
		if want := uint64(i + 7); ev.EventSeq != want {
			t.Fatalf("snap[%d].EventSeq = %d, want %d (oldest-first, newest retained)", i, ev.EventSeq, want)
		}
		if ev.Seq != uint64(i+7) {
			t.Fatalf("snap[%d].Seq = %d, want %d", i, ev.Seq, i+7)
		}
	}
}

func TestTracerSnapshotBeforeWrap(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Kind: EvPublish})
	tr.Emit(Event{Kind: EvDemod})
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot() holds %d events, want 2", len(snap))
	}
	if snap[0].Kind != EvPublish || snap[1].Kind != EvDemod {
		t.Fatalf("snapshot order wrong: %v, %v", snap[0].Kind, snap[1].Kind)
	}
	if snap[0].Seq != 1 || snap[1].Seq != 2 {
		t.Fatalf("seq stamping wrong: %d, %d", snap[0].Seq, snap[1].Seq)
	}
	if snap[1].At < snap[0].At {
		t.Fatalf("timestamps not monotone: %d then %d", snap[0].At, snap[1].At)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetEnabled(true) // must not panic
	tr.Emit(Event{Kind: EvPublish})
	if tr.Emitted() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer has state")
	}
	if snap := tr.Snapshot(); snap != nil {
		t.Fatalf("nil tracer snapshot = %v", snap)
	}
	ch, cancel := tr.Subscribe(1)
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("nil tracer subscription delivered an event")
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil tracer WriteJSON = %q, %v", sb.String(), err)
	}
}

func TestTracerSetEnabled(t *testing.T) {
	tr := NewTracer(4)
	tr.Emit(Event{Kind: EvPublish})
	tr.SetEnabled(false)
	tr.Emit(Event{Kind: EvPublish})
	if got := tr.Emitted(); got != 1 {
		t.Fatalf("disabled tracer recorded: Emitted() = %d, want 1", got)
	}
	tr.SetEnabled(true)
	tr.Emit(Event{Kind: EvPublish})
	if got := tr.Emitted(); got != 2 {
		t.Fatalf("re-enabled tracer: Emitted() = %d, want 2", got)
	}
}

// TestTracerConcurrentEmit exercises emission, snapshots, subscription
// churn and enable toggling at once; run under -race it is the tracer's
// thread-safety proof.
func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Emit(Event{Kind: EvPublish, PSE: int32(g), EventSeq: uint64(i)})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			tr.Snapshot()
			tr.Dropped()
			ch, cancel := tr.Subscribe(4)
			// Drain a little, then cancel mid-stream.
			select {
			case <-ch:
			case <-time.After(time.Millisecond):
			}
			cancel()
		}
	}()
	wg.Wait()
	if got := tr.Emitted(); got != goroutines*perG {
		t.Fatalf("Emitted() = %d, want %d", got, goroutines*perG)
	}
	snap := tr.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("snapshot seq gap: %d then %d", snap[i-1].Seq, snap[i].Seq)
		}
	}
}

func TestTracerSubscribe(t *testing.T) {
	tr := NewTracer(16)
	ch, cancel := tr.Subscribe(4)
	tr.Emit(Event{Kind: EvPlanFlip, Plan: 7})
	select {
	case ev := <-ch:
		if ev.Kind != EvPlanFlip || ev.Plan != 7 {
			t.Fatalf("subscription delivered %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("subscription did not deliver")
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after cancel")
	}
	// Emission after cancel must not panic (send on closed channel).
	tr.Emit(Event{Kind: EvPublish})
}

func TestTracerSubscribeOverflowDrops(t *testing.T) {
	tr := NewTracer(16)
	ch, cancel := tr.Subscribe(1)
	defer cancel()
	tr.Emit(Event{Kind: EvPublish})
	tr.Emit(Event{Kind: EvPublish}) // buffer full: dropped from stream
	tr.Emit(Event{Kind: EvPublish}) // likewise
	ev := <-ch
	if ev.Seq != 1 {
		t.Fatalf("first delivered event Seq = %d, want 1", ev.Seq)
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected second delivery: %+v", ev)
	default:
	}
	// The ring itself saw everything.
	if got := tr.Emitted(); got != 3 {
		t.Fatalf("Emitted() = %d, want 3", got)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Kind: EvPublish, Channel: "images", Sub: "s#1", PSE: 3, Plan: 2, EventSeq: 1, Bytes: 100, Dur: 5000})
	tr.Emit(Event{Kind: EvBreaker, Channel: "images", Sub: "s#1", PSE: 3, Detail: "open"})
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSON lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "publish" || lines[1]["kind"] != "breaker" {
		t.Fatalf("kinds = %v, %v", lines[0]["kind"], lines[1]["kind"])
	}
	if lines[0]["channel"] != "images" || lines[0]["bytes"] != float64(100) {
		t.Fatalf("publish line = %v", lines[0])
	}
	if lines[1]["detail"] != "open" {
		t.Fatalf("breaker line = %v", lines[1])
	}
	// omitempty: the breaker line has no bytes field.
	if _, present := lines[1]["bytes"]; present {
		t.Fatalf("breaker line carries zero bytes field: %v", lines[1])
	}
}

// TestEmitDisabledAllocs is the hot-path budget: a disabled or nil tracer
// must not allocate per event.
func TestEmitDisabledAllocs(t *testing.T) {
	tr := NewTracer(8)
	tr.SetEnabled(false)
	ev := Event{Kind: EvPublish, Channel: "c", Sub: "s", PSE: 1, Bytes: 10}
	if n := testing.AllocsPerRun(200, func() { tr.Emit(ev) }); n != 0 {
		t.Fatalf("disabled Emit allocates %.1f per call, want 0", n)
	}
	var nilTr *Tracer
	if n := testing.AllocsPerRun(200, func() { nilTr.Emit(ev) }); n != 0 {
		t.Fatalf("nil Emit allocates %.1f per call, want 0", n)
	}
}

// TestEmitEnabledAllocs: even enabled, emission into the preallocated
// ring is allocation-free (subscriber sends use buffered channels).
func TestEmitEnabledAllocs(t *testing.T) {
	tr := NewTracer(8)
	ev := Event{Kind: EvPublish, Channel: "c", Sub: "s", PSE: 1, Bytes: 10}
	if n := testing.AllocsPerRun(200, func() { tr.Emit(ev) }); n != 0 {
		t.Fatalf("enabled Emit allocates %.1f per call, want 0", n)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	tr := NewTracer(64)
	tr.SetEnabled(false)
	ev := Event{Kind: EvPublish, Channel: "c", Sub: "s", PSE: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	tr := NewTracer(4096)
	ev := Event{Kind: EvPublish, Channel: "c", Sub: "s", PSE: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}
