// Command mpasm assembles and analyses MIR handler source: it prints the
// Unit Graph, live-variable sets, StopNodes, TargetPaths and the PSE set a
// cost model selects — the static half of Method Partitioning, as a tool.
//
//	mpasm -handler push -model datasize -native displayImage push.mir
//	mpasm -format push.mir          # parse and pretty-print
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"methodpart/internal/analysis"
	"methodpart/internal/costmodel"
	"methodpart/internal/mir/asm"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpasm:", err)
		os.Exit(1)
	}
}

type nativeSet map[string]bool

func (s nativeSet) IsNative(fn string) bool { return s[fn] }

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mpasm", flag.ContinueOnError)
	handler := fs.String("handler", "", "handler to analyse (default: first func)")
	modelName := fs.String("model", costmodel.DataSizeName, "cost model (datasize|exectime)")
	natives := fs.String("native", "", "comma-separated native function names")
	format := fs.Bool("format", false, "only parse and pretty-print the unit")
	dot := fs.Bool("dot", false, "emit the Unit Graph as Graphviz DOT with PSEs highlighted")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mpasm [flags] file.mir (or '-' for stdin)")
	}
	var (
		src []byte
		err error
	)
	if fs.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		return err
	}
	unit, err := asm.Parse(string(src))
	if err != nil {
		return err
	}
	if *format {
		fmt.Fprintln(w, asm.Format(unit))
		return nil
	}

	name := *handler
	if name == "" {
		name = unit.Programs[0].Name
	}
	prog, ok := unit.Program(name)
	if !ok {
		return fmt.Errorf("handler %q not found", name)
	}
	classes, err := unit.ClassTable()
	if err != nil {
		return err
	}
	model, err := costmodel.ByName(*modelName)
	if err != nil {
		return err
	}
	oracle := nativeSet{}
	for _, n := range strings.Split(*natives, ",") {
		if n = strings.TrimSpace(n); n != "" {
			oracle[n] = true
		}
	}

	ug, err := analysis.BuildUnitGraph(prog)
	if err != nil {
		return err
	}
	live := analysis.ComputeLiveness(ug)
	res, err := analysis.Analyze(ug, oracle, model.StaticCost(prog, classes, live), analysis.Options{})
	if err != nil {
		return err
	}
	if *dot {
		writeDot(w, res)
		return nil
	}

	fmt.Fprintf(w, "handler %s: %d instructions, exit node %d\n\n", name, len(prog.Instrs), ug.Exit)
	fmt.Fprintln(w, "Unit Graph (node: instruction | successors | IN/OUT live sets):")
	for i := range prog.Instrs {
		marks := ""
		if res.Stops[i] {
			marks = "  [StopNode]"
		}
		fmt.Fprintf(w, "  %2d: %-40s -> %v%s\n", i, prog.Instrs[i].String(), ug.G.Succ(i), marks)
		fmt.Fprintf(w, "      in=%v out=%v\n", live.In[i].Sorted(), live.Out[i].Sorted())
	}
	fmt.Fprintf(w, "\nTargetPaths (%d):\n", len(res.Paths))
	for _, p := range res.Paths {
		fmt.Fprintf(w, "  %v\n", p)
	}
	if len(res.Infinite) > 0 {
		fmt.Fprintf(w, "\nConvexity-protected (infinite-cost) edges:\n")
		for _, e := range ug.Edges() {
			if res.Infinite[e] {
				fmt.Fprintf(w, "  %v\n", e)
			}
		}
	}
	fmt.Fprintf(w, "\nPSE set under %s (%d edges):\n", model.Name(), len(res.PSESet))
	for _, e := range res.PSESet {
		desc := res.Cost[e]
		fmt.Fprintf(w, "  %v  hand-over=%v  det=%d dynamic=%v\n",
			e, res.Inter[e].Sorted(), desc.Det, desc.Vars.Sorted())
	}
	return nil
}
